# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/provenance_core_test[1]_include.cmake")
include("/root/repo/build/tests/provenance_tracked_test[1]_include.cmake")
include("/root/repo/build/tests/provenance_security_test[1]_include.cmake")
include("/root/repo/build/tests/provenance_ext_test[1]_include.cmake")
include("/root/repo/build/tests/provenance_property_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_end_to_end_test[1]_include.cmake")
include("/root/repo/build/tests/integration_scenarios_test[1]_include.cmake")
