# Empty dependencies file for provenance_tracked_test.
# This may be replaced when dependencies are built.
