file(REMOVE_RECURSE
  "CMakeFiles/provenance_tracked_test.dir/provenance/figure3_test.cc.o"
  "CMakeFiles/provenance_tracked_test.dir/provenance/figure3_test.cc.o.d"
  "CMakeFiles/provenance_tracked_test.dir/provenance/tracked_database_test.cc.o"
  "CMakeFiles/provenance_tracked_test.dir/provenance/tracked_database_test.cc.o.d"
  "CMakeFiles/provenance_tracked_test.dir/provenance/tracked_relational_test.cc.o"
  "CMakeFiles/provenance_tracked_test.dir/provenance/tracked_relational_test.cc.o.d"
  "provenance_tracked_test"
  "provenance_tracked_test.pdb"
  "provenance_tracked_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provenance_tracked_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
