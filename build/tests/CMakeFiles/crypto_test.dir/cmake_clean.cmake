file(REMOVE_RECURSE
  "CMakeFiles/crypto_test.dir/crypto/bignum_test.cc.o"
  "CMakeFiles/crypto_test.dir/crypto/bignum_test.cc.o.d"
  "CMakeFiles/crypto_test.dir/crypto/bignum_vectors_test.cc.o"
  "CMakeFiles/crypto_test.dir/crypto/bignum_vectors_test.cc.o.d"
  "CMakeFiles/crypto_test.dir/crypto/digest_test.cc.o"
  "CMakeFiles/crypto_test.dir/crypto/digest_test.cc.o.d"
  "CMakeFiles/crypto_test.dir/crypto/hash_test.cc.o"
  "CMakeFiles/crypto_test.dir/crypto/hash_test.cc.o.d"
  "CMakeFiles/crypto_test.dir/crypto/hmac_test.cc.o"
  "CMakeFiles/crypto_test.dir/crypto/hmac_test.cc.o.d"
  "CMakeFiles/crypto_test.dir/crypto/pki_test.cc.o"
  "CMakeFiles/crypto_test.dir/crypto/pki_test.cc.o.d"
  "CMakeFiles/crypto_test.dir/crypto/rsa_test.cc.o"
  "CMakeFiles/crypto_test.dir/crypto/rsa_test.cc.o.d"
  "CMakeFiles/crypto_test.dir/crypto/signer_test.cc.o"
  "CMakeFiles/crypto_test.dir/crypto/signer_test.cc.o.d"
  "crypto_test"
  "crypto_test.pdb"
  "crypto_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
