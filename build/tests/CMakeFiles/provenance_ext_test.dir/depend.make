# Empty dependencies file for provenance_ext_test.
# This may be replaced when dependencies are built.
