
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/provenance/auditor_test.cc" "tests/CMakeFiles/provenance_ext_test.dir/provenance/auditor_test.cc.o" "gcc" "tests/CMakeFiles/provenance_ext_test.dir/provenance/auditor_test.cc.o.d"
  "/root/repo/tests/provenance/deep_export_test.cc" "tests/CMakeFiles/provenance_ext_test.dir/provenance/deep_export_test.cc.o" "gcc" "tests/CMakeFiles/provenance_ext_test.dir/provenance/deep_export_test.cc.o.d"
  "/root/repo/tests/provenance/json_export_test.cc" "tests/CMakeFiles/provenance_ext_test.dir/provenance/json_export_test.cc.o" "gcc" "tests/CMakeFiles/provenance_ext_test.dir/provenance/json_export_test.cc.o.d"
  "/root/repo/tests/provenance/merkle_proof_test.cc" "tests/CMakeFiles/provenance_ext_test.dir/provenance/merkle_proof_test.cc.o" "gcc" "tests/CMakeFiles/provenance_ext_test.dir/provenance/merkle_proof_test.cc.o.d"
  "/root/repo/tests/provenance/query_test.cc" "tests/CMakeFiles/provenance_ext_test.dir/provenance/query_test.cc.o" "gcc" "tests/CMakeFiles/provenance_ext_test.dir/provenance/query_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/provdb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/provenance/CMakeFiles/provdb_provenance.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/provdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/provdb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/provdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
