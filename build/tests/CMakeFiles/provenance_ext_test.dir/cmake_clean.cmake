file(REMOVE_RECURSE
  "CMakeFiles/provenance_ext_test.dir/provenance/auditor_test.cc.o"
  "CMakeFiles/provenance_ext_test.dir/provenance/auditor_test.cc.o.d"
  "CMakeFiles/provenance_ext_test.dir/provenance/deep_export_test.cc.o"
  "CMakeFiles/provenance_ext_test.dir/provenance/deep_export_test.cc.o.d"
  "CMakeFiles/provenance_ext_test.dir/provenance/json_export_test.cc.o"
  "CMakeFiles/provenance_ext_test.dir/provenance/json_export_test.cc.o.d"
  "CMakeFiles/provenance_ext_test.dir/provenance/merkle_proof_test.cc.o"
  "CMakeFiles/provenance_ext_test.dir/provenance/merkle_proof_test.cc.o.d"
  "CMakeFiles/provenance_ext_test.dir/provenance/query_test.cc.o"
  "CMakeFiles/provenance_ext_test.dir/provenance/query_test.cc.o.d"
  "provenance_ext_test"
  "provenance_ext_test.pdb"
  "provenance_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provenance_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
