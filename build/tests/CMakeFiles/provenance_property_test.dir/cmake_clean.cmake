file(REMOVE_RECURSE
  "CMakeFiles/provenance_property_test.dir/provenance/decoder_fuzz_test.cc.o"
  "CMakeFiles/provenance_property_test.dir/provenance/decoder_fuzz_test.cc.o.d"
  "CMakeFiles/provenance_property_test.dir/provenance/hashing_work_test.cc.o"
  "CMakeFiles/provenance_property_test.dir/provenance/hashing_work_test.cc.o.d"
  "CMakeFiles/provenance_property_test.dir/provenance/property_test.cc.o"
  "CMakeFiles/provenance_property_test.dir/provenance/property_test.cc.o.d"
  "provenance_property_test"
  "provenance_property_test.pdb"
  "provenance_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provenance_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
