# Empty dependencies file for provenance_property_test.
# This may be replaced when dependencies are built.
