file(REMOVE_RECURSE
  "CMakeFiles/provenance_security_test.dir/provenance/attack_test.cc.o"
  "CMakeFiles/provenance_security_test.dir/provenance/attack_test.cc.o.d"
  "CMakeFiles/provenance_security_test.dir/provenance/verifier_test.cc.o"
  "CMakeFiles/provenance_security_test.dir/provenance/verifier_test.cc.o.d"
  "provenance_security_test"
  "provenance_security_test.pdb"
  "provenance_security_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provenance_security_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
