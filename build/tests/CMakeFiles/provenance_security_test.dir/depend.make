# Empty dependencies file for provenance_security_test.
# This may be replaced when dependencies are built.
