# Empty compiler generated dependencies file for provenance_core_test.
# This may be replaced when dependencies are built.
