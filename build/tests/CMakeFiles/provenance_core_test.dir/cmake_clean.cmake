file(REMOVE_RECURSE
  "CMakeFiles/provenance_core_test.dir/provenance/bundle_test.cc.o"
  "CMakeFiles/provenance_core_test.dir/provenance/bundle_test.cc.o.d"
  "CMakeFiles/provenance_core_test.dir/provenance/chain_test.cc.o"
  "CMakeFiles/provenance_core_test.dir/provenance/chain_test.cc.o.d"
  "CMakeFiles/provenance_core_test.dir/provenance/checksum_test.cc.o"
  "CMakeFiles/provenance_core_test.dir/provenance/checksum_test.cc.o.d"
  "CMakeFiles/provenance_core_test.dir/provenance/provenance_store_test.cc.o"
  "CMakeFiles/provenance_core_test.dir/provenance/provenance_store_test.cc.o.d"
  "CMakeFiles/provenance_core_test.dir/provenance/serialization_test.cc.o"
  "CMakeFiles/provenance_core_test.dir/provenance/serialization_test.cc.o.d"
  "CMakeFiles/provenance_core_test.dir/provenance/streaming_hasher_test.cc.o"
  "CMakeFiles/provenance_core_test.dir/provenance/streaming_hasher_test.cc.o.d"
  "CMakeFiles/provenance_core_test.dir/provenance/subtree_hasher_test.cc.o"
  "CMakeFiles/provenance_core_test.dir/provenance/subtree_hasher_test.cc.o.d"
  "provenance_core_test"
  "provenance_core_test.pdb"
  "provenance_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provenance_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
