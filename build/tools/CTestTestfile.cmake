# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(provdb_cli_roundtrip "sh" "-c" "set -e; d=\$(mktemp -d);     /root/repo/build/tools/provdb demo \$d;     /root/repo/build/tools/provdb inspect \$d/bundle.bin > /dev/null;     /root/repo/build/tools/provdb json \$d/bundle.bin > /dev/null;     /root/repo/build/tools/provdb verify \$d/bundle.bin \$d/ca.key \$d/certs.bin;     /root/repo/build/tools/provdb tamper \$d/bundle.bin \$d/bad.bin;     if /root/repo/build/tools/provdb verify \$d/bad.bin \$d/ca.key \$d/certs.bin; then exit 1; fi;     rm -rf \$d")
set_tests_properties(provdb_cli_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
