file(REMOVE_RECURSE
  "CMakeFiles/provdb.dir/provdb_cli.cc.o"
  "CMakeFiles/provdb.dir/provdb_cli.cc.o.d"
  "provdb"
  "provdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
