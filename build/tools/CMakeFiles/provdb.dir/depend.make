# Empty dependencies file for provdb.
# This may be replaced when dependencies are built.
