file(REMOVE_RECURSE
  "CMakeFiles/provdb_provenance.dir/attack.cc.o"
  "CMakeFiles/provdb_provenance.dir/attack.cc.o.d"
  "CMakeFiles/provdb_provenance.dir/auditor.cc.o"
  "CMakeFiles/provdb_provenance.dir/auditor.cc.o.d"
  "CMakeFiles/provdb_provenance.dir/bundle.cc.o"
  "CMakeFiles/provdb_provenance.dir/bundle.cc.o.d"
  "CMakeFiles/provdb_provenance.dir/checksum.cc.o"
  "CMakeFiles/provdb_provenance.dir/checksum.cc.o.d"
  "CMakeFiles/provdb_provenance.dir/json_export.cc.o"
  "CMakeFiles/provdb_provenance.dir/json_export.cc.o.d"
  "CMakeFiles/provdb_provenance.dir/merkle_proof.cc.o"
  "CMakeFiles/provdb_provenance.dir/merkle_proof.cc.o.d"
  "CMakeFiles/provdb_provenance.dir/provenance_store.cc.o"
  "CMakeFiles/provdb_provenance.dir/provenance_store.cc.o.d"
  "CMakeFiles/provdb_provenance.dir/query.cc.o"
  "CMakeFiles/provdb_provenance.dir/query.cc.o.d"
  "CMakeFiles/provdb_provenance.dir/record.cc.o"
  "CMakeFiles/provdb_provenance.dir/record.cc.o.d"
  "CMakeFiles/provdb_provenance.dir/serialization.cc.o"
  "CMakeFiles/provdb_provenance.dir/serialization.cc.o.d"
  "CMakeFiles/provdb_provenance.dir/streaming_hasher.cc.o"
  "CMakeFiles/provdb_provenance.dir/streaming_hasher.cc.o.d"
  "CMakeFiles/provdb_provenance.dir/subtree_hasher.cc.o"
  "CMakeFiles/provdb_provenance.dir/subtree_hasher.cc.o.d"
  "CMakeFiles/provdb_provenance.dir/tracked_database.cc.o"
  "CMakeFiles/provdb_provenance.dir/tracked_database.cc.o.d"
  "CMakeFiles/provdb_provenance.dir/tracked_relational.cc.o"
  "CMakeFiles/provdb_provenance.dir/tracked_relational.cc.o.d"
  "CMakeFiles/provdb_provenance.dir/verifier.cc.o"
  "CMakeFiles/provdb_provenance.dir/verifier.cc.o.d"
  "libprovdb_provenance.a"
  "libprovdb_provenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provdb_provenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
