
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/provenance/attack.cc" "src/provenance/CMakeFiles/provdb_provenance.dir/attack.cc.o" "gcc" "src/provenance/CMakeFiles/provdb_provenance.dir/attack.cc.o.d"
  "/root/repo/src/provenance/auditor.cc" "src/provenance/CMakeFiles/provdb_provenance.dir/auditor.cc.o" "gcc" "src/provenance/CMakeFiles/provdb_provenance.dir/auditor.cc.o.d"
  "/root/repo/src/provenance/bundle.cc" "src/provenance/CMakeFiles/provdb_provenance.dir/bundle.cc.o" "gcc" "src/provenance/CMakeFiles/provdb_provenance.dir/bundle.cc.o.d"
  "/root/repo/src/provenance/checksum.cc" "src/provenance/CMakeFiles/provdb_provenance.dir/checksum.cc.o" "gcc" "src/provenance/CMakeFiles/provdb_provenance.dir/checksum.cc.o.d"
  "/root/repo/src/provenance/json_export.cc" "src/provenance/CMakeFiles/provdb_provenance.dir/json_export.cc.o" "gcc" "src/provenance/CMakeFiles/provdb_provenance.dir/json_export.cc.o.d"
  "/root/repo/src/provenance/merkle_proof.cc" "src/provenance/CMakeFiles/provdb_provenance.dir/merkle_proof.cc.o" "gcc" "src/provenance/CMakeFiles/provdb_provenance.dir/merkle_proof.cc.o.d"
  "/root/repo/src/provenance/provenance_store.cc" "src/provenance/CMakeFiles/provdb_provenance.dir/provenance_store.cc.o" "gcc" "src/provenance/CMakeFiles/provdb_provenance.dir/provenance_store.cc.o.d"
  "/root/repo/src/provenance/query.cc" "src/provenance/CMakeFiles/provdb_provenance.dir/query.cc.o" "gcc" "src/provenance/CMakeFiles/provdb_provenance.dir/query.cc.o.d"
  "/root/repo/src/provenance/record.cc" "src/provenance/CMakeFiles/provdb_provenance.dir/record.cc.o" "gcc" "src/provenance/CMakeFiles/provdb_provenance.dir/record.cc.o.d"
  "/root/repo/src/provenance/serialization.cc" "src/provenance/CMakeFiles/provdb_provenance.dir/serialization.cc.o" "gcc" "src/provenance/CMakeFiles/provdb_provenance.dir/serialization.cc.o.d"
  "/root/repo/src/provenance/streaming_hasher.cc" "src/provenance/CMakeFiles/provdb_provenance.dir/streaming_hasher.cc.o" "gcc" "src/provenance/CMakeFiles/provdb_provenance.dir/streaming_hasher.cc.o.d"
  "/root/repo/src/provenance/subtree_hasher.cc" "src/provenance/CMakeFiles/provdb_provenance.dir/subtree_hasher.cc.o" "gcc" "src/provenance/CMakeFiles/provdb_provenance.dir/subtree_hasher.cc.o.d"
  "/root/repo/src/provenance/tracked_database.cc" "src/provenance/CMakeFiles/provdb_provenance.dir/tracked_database.cc.o" "gcc" "src/provenance/CMakeFiles/provdb_provenance.dir/tracked_database.cc.o.d"
  "/root/repo/src/provenance/tracked_relational.cc" "src/provenance/CMakeFiles/provdb_provenance.dir/tracked_relational.cc.o" "gcc" "src/provenance/CMakeFiles/provdb_provenance.dir/tracked_relational.cc.o.d"
  "/root/repo/src/provenance/verifier.cc" "src/provenance/CMakeFiles/provdb_provenance.dir/verifier.cc.o" "gcc" "src/provenance/CMakeFiles/provdb_provenance.dir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/provdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/provdb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/provdb_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
