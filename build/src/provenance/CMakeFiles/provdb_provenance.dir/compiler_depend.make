# Empty compiler generated dependencies file for provdb_provenance.
# This may be replaced when dependencies are built.
