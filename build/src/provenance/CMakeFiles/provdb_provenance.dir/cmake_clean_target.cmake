file(REMOVE_RECURSE
  "libprovdb_provenance.a"
)
