# Empty dependencies file for provdb_workload.
# This may be replaced when dependencies are built.
