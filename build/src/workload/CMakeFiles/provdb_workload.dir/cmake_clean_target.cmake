file(REMOVE_RECURSE
  "libprovdb_workload.a"
)
