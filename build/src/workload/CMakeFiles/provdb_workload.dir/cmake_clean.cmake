file(REMOVE_RECURSE
  "CMakeFiles/provdb_workload.dir/operations.cc.o"
  "CMakeFiles/provdb_workload.dir/operations.cc.o.d"
  "CMakeFiles/provdb_workload.dir/synthetic.cc.o"
  "CMakeFiles/provdb_workload.dir/synthetic.cc.o.d"
  "CMakeFiles/provdb_workload.dir/title_source.cc.o"
  "CMakeFiles/provdb_workload.dir/title_source.cc.o.d"
  "libprovdb_workload.a"
  "libprovdb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provdb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
