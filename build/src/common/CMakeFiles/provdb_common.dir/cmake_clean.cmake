file(REMOVE_RECURSE
  "CMakeFiles/provdb_common.dir/bytes.cc.o"
  "CMakeFiles/provdb_common.dir/bytes.cc.o.d"
  "CMakeFiles/provdb_common.dir/crc32.cc.o"
  "CMakeFiles/provdb_common.dir/crc32.cc.o.d"
  "CMakeFiles/provdb_common.dir/hex.cc.o"
  "CMakeFiles/provdb_common.dir/hex.cc.o.d"
  "CMakeFiles/provdb_common.dir/rng.cc.o"
  "CMakeFiles/provdb_common.dir/rng.cc.o.d"
  "CMakeFiles/provdb_common.dir/status.cc.o"
  "CMakeFiles/provdb_common.dir/status.cc.o.d"
  "CMakeFiles/provdb_common.dir/varint.cc.o"
  "CMakeFiles/provdb_common.dir/varint.cc.o.d"
  "libprovdb_common.a"
  "libprovdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
