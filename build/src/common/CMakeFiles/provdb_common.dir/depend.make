# Empty dependencies file for provdb_common.
# This may be replaced when dependencies are built.
