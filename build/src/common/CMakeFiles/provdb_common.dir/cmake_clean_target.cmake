file(REMOVE_RECURSE
  "libprovdb_common.a"
)
