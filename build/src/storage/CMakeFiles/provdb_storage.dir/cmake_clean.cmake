file(REMOVE_RECURSE
  "CMakeFiles/provdb_storage.dir/record_log.cc.o"
  "CMakeFiles/provdb_storage.dir/record_log.cc.o.d"
  "CMakeFiles/provdb_storage.dir/relational.cc.o"
  "CMakeFiles/provdb_storage.dir/relational.cc.o.d"
  "CMakeFiles/provdb_storage.dir/tree_store.cc.o"
  "CMakeFiles/provdb_storage.dir/tree_store.cc.o.d"
  "CMakeFiles/provdb_storage.dir/value.cc.o"
  "CMakeFiles/provdb_storage.dir/value.cc.o.d"
  "libprovdb_storage.a"
  "libprovdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
