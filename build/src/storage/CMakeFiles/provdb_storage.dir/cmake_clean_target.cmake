file(REMOVE_RECURSE
  "libprovdb_storage.a"
)
