
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/record_log.cc" "src/storage/CMakeFiles/provdb_storage.dir/record_log.cc.o" "gcc" "src/storage/CMakeFiles/provdb_storage.dir/record_log.cc.o.d"
  "/root/repo/src/storage/relational.cc" "src/storage/CMakeFiles/provdb_storage.dir/relational.cc.o" "gcc" "src/storage/CMakeFiles/provdb_storage.dir/relational.cc.o.d"
  "/root/repo/src/storage/tree_store.cc" "src/storage/CMakeFiles/provdb_storage.dir/tree_store.cc.o" "gcc" "src/storage/CMakeFiles/provdb_storage.dir/tree_store.cc.o.d"
  "/root/repo/src/storage/value.cc" "src/storage/CMakeFiles/provdb_storage.dir/value.cc.o" "gcc" "src/storage/CMakeFiles/provdb_storage.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/provdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
