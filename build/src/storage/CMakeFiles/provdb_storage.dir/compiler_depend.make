# Empty compiler generated dependencies file for provdb_storage.
# This may be replaced when dependencies are built.
