file(REMOVE_RECURSE
  "libprovdb_crypto.a"
)
