file(REMOVE_RECURSE
  "CMakeFiles/provdb_crypto.dir/bignum.cc.o"
  "CMakeFiles/provdb_crypto.dir/bignum.cc.o.d"
  "CMakeFiles/provdb_crypto.dir/digest.cc.o"
  "CMakeFiles/provdb_crypto.dir/digest.cc.o.d"
  "CMakeFiles/provdb_crypto.dir/hash.cc.o"
  "CMakeFiles/provdb_crypto.dir/hash.cc.o.d"
  "CMakeFiles/provdb_crypto.dir/hmac.cc.o"
  "CMakeFiles/provdb_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/provdb_crypto.dir/md5.cc.o"
  "CMakeFiles/provdb_crypto.dir/md5.cc.o.d"
  "CMakeFiles/provdb_crypto.dir/pki.cc.o"
  "CMakeFiles/provdb_crypto.dir/pki.cc.o.d"
  "CMakeFiles/provdb_crypto.dir/rsa.cc.o"
  "CMakeFiles/provdb_crypto.dir/rsa.cc.o.d"
  "CMakeFiles/provdb_crypto.dir/sha1.cc.o"
  "CMakeFiles/provdb_crypto.dir/sha1.cc.o.d"
  "CMakeFiles/provdb_crypto.dir/sha256.cc.o"
  "CMakeFiles/provdb_crypto.dir/sha256.cc.o.d"
  "CMakeFiles/provdb_crypto.dir/signer.cc.o"
  "CMakeFiles/provdb_crypto.dir/signer.cc.o.d"
  "libprovdb_crypto.a"
  "libprovdb_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provdb_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
