# Empty compiler generated dependencies file for provdb_crypto.
# This may be replaced when dependencies are built.
