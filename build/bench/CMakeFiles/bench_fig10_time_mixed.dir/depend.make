# Empty dependencies file for bench_fig10_time_mixed.
# This may be replaced when dependencies are built.
