file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_space_mixed.dir/bench_fig11_space_mixed.cc.o"
  "CMakeFiles/bench_fig11_space_mixed.dir/bench_fig11_space_mixed.cc.o.d"
  "bench_fig11_space_mixed"
  "bench_fig11_space_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_space_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
