# Empty dependencies file for bench_fig6_hashing.
# This may be replaced when dependencies are built.
