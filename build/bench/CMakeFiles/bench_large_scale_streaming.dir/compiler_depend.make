# Empty compiler generated dependencies file for bench_large_scale_streaming.
# This may be replaced when dependencies are built.
