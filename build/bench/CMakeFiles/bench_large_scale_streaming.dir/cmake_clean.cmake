file(REMOVE_RECURSE
  "CMakeFiles/bench_large_scale_streaming.dir/bench_large_scale_streaming.cc.o"
  "CMakeFiles/bench_large_scale_streaming.dir/bench_large_scale_streaming.cc.o.d"
  "bench_large_scale_streaming"
  "bench_large_scale_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_large_scale_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
