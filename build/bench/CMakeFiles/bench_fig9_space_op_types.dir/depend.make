# Empty dependencies file for bench_fig9_space_op_types.
# This may be replaced when dependencies are built.
