# Empty dependencies file for bench_fig8_time_op_types.
# This may be replaced when dependencies are built.
