file(REMOVE_RECURSE
  "CMakeFiles/bench_merkle_proofs.dir/bench_merkle_proofs.cc.o"
  "CMakeFiles/bench_merkle_proofs.dir/bench_merkle_proofs.cc.o.d"
  "bench_merkle_proofs"
  "bench_merkle_proofs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_merkle_proofs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
