# Empty dependencies file for bench_merkle_proofs.
# This may be replaced when dependencies are built.
