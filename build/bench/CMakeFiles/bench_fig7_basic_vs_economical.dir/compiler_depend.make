# Empty compiler generated dependencies file for bench_fig7_basic_vs_economical.
# This may be replaced when dependencies are built.
