file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_basic_vs_economical.dir/bench_fig7_basic_vs_economical.cc.o"
  "CMakeFiles/bench_fig7_basic_vs_economical.dir/bench_fig7_basic_vs_economical.cc.o.d"
  "bench_fig7_basic_vs_economical"
  "bench_fig7_basic_vs_economical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_basic_vs_economical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
