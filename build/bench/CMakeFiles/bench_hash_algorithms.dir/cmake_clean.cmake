file(REMOVE_RECURSE
  "CMakeFiles/bench_hash_algorithms.dir/bench_hash_algorithms.cc.o"
  "CMakeFiles/bench_hash_algorithms.dir/bench_hash_algorithms.cc.o.d"
  "bench_hash_algorithms"
  "bench_hash_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hash_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
