# Empty dependencies file for bench_hash_algorithms.
# This may be replaced when dependencies are built.
