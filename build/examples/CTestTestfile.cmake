# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart_runs "/root/repo/build/examples/example_quickstart")
set_tests_properties(example_quickstart_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_clinical_trial_runs "/root/repo/build/examples/example_clinical_trial")
set_tests_properties(example_clinical_trial_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tamper_detection_runs "/root/repo/build/examples/example_tamper_detection")
set_tests_properties(example_tamper_detection_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_curated_database_runs "/root/repo/build/examples/example_curated_database")
set_tests_properties(example_curated_database_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_nonlinear_dag_runs "/root/repo/build/examples/example_nonlinear_dag")
set_tests_properties(example_nonlinear_dag_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fine_grained_audit_runs "/root/repo/build/examples/example_fine_grained_audit")
set_tests_properties(example_fine_grained_audit_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
