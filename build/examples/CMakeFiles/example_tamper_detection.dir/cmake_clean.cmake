file(REMOVE_RECURSE
  "CMakeFiles/example_tamper_detection.dir/tamper_detection.cpp.o"
  "CMakeFiles/example_tamper_detection.dir/tamper_detection.cpp.o.d"
  "example_tamper_detection"
  "example_tamper_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tamper_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
