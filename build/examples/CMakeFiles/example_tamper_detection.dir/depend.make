# Empty dependencies file for example_tamper_detection.
# This may be replaced when dependencies are built.
