file(REMOVE_RECURSE
  "CMakeFiles/example_nonlinear_dag.dir/nonlinear_dag.cpp.o"
  "CMakeFiles/example_nonlinear_dag.dir/nonlinear_dag.cpp.o.d"
  "example_nonlinear_dag"
  "example_nonlinear_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_nonlinear_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
