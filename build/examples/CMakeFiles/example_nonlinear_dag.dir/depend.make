# Empty dependencies file for example_nonlinear_dag.
# This may be replaced when dependencies are built.
