# Empty dependencies file for example_curated_database.
# This may be replaced when dependencies are built.
