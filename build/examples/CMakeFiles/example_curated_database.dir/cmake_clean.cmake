file(REMOVE_RECURSE
  "CMakeFiles/example_curated_database.dir/curated_database.cpp.o"
  "CMakeFiles/example_curated_database.dir/curated_database.cpp.o.d"
  "example_curated_database"
  "example_curated_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_curated_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
