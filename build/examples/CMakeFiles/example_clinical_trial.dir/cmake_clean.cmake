file(REMOVE_RECURSE
  "CMakeFiles/example_clinical_trial.dir/clinical_trial.cpp.o"
  "CMakeFiles/example_clinical_trial.dir/clinical_trial.cpp.o.d"
  "example_clinical_trial"
  "example_clinical_trial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_clinical_trial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
