# Empty compiler generated dependencies file for example_clinical_trial.
# This may be replaced when dependencies are built.
