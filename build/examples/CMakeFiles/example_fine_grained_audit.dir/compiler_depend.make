# Empty compiler generated dependencies file for example_fine_grained_audit.
# This may be replaced when dependencies are built.
