file(REMOVE_RECURSE
  "CMakeFiles/example_fine_grained_audit.dir/fine_grained_audit.cpp.o"
  "CMakeFiles/example_fine_grained_audit.dir/fine_grained_audit.cpp.o.d"
  "example_fine_grained_audit"
  "example_fine_grained_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fine_grained_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
