#ifndef PROVDB_BENCH_BENCH_COMMON_H_
#define PROVDB_BENCH_BENCH_COMMON_H_

// Shared helpers for the figure/table reproduction harnesses. Each bench
// binary reproduces one table or figure from the paper's §5 and prints
// the corresponding rows/series. Absolute numbers differ from the paper's
// 2009 Celeron/MySQL testbed; the *shapes* are what EXPERIMENTS.md checks.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "crypto/pki.h"
#include "observability/metrics.h"
#include "observability/trace.h"

namespace provdb::bench {

/// Aborts the bench when `s` is not OK. Setup failures must stop the run,
/// not silently skew the numbers.
inline void OrAbort(const Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "bench setup failed: %s\n", s.ToString().c_str());
    std::abort();
  }
}

/// Minimal --flag=value / --flag value parser for the harness binaries.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      arg = arg.substr(2);
      size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && argv[i + 1][0] != '-') {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "1";
      }
    }
  }

  int64_t GetInt(const std::string& name, int64_t fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }

  std::string GetString(const std::string& name,
                        const std::string& fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  bool GetBool(const std::string& name, bool fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return it->second != "0" && it->second != "false";
  }

 private:
  std::map<std::string, std::string> values_;
};

/// One CA + one participant with a paper-faithful RSA-1024 key, generated
/// deterministically. Key generation takes ~0.1s; reused per binary.
struct BenchPki {
  std::unique_ptr<crypto::CertificateAuthority> ca;
  std::unique_ptr<crypto::Participant> participant;
  std::unique_ptr<crypto::ParticipantRegistry> registry;

  static BenchPki Create(size_t rsa_bits = 1024, uint64_t seed = 0xBE7C) {
    Rng rng(seed);
    BenchPki pki;
    pki.ca = std::make_unique<crypto::CertificateAuthority>(
        crypto::CertificateAuthority::Create(rsa_bits, &rng).value());
    pki.participant = std::make_unique<crypto::Participant>(
        crypto::Participant::Create(1, "bench", rsa_bits, &rng, *pki.ca)
            .value());
    pki.registry =
        std::make_unique<crypto::ParticipantRegistry>(pki.ca->public_key());
    OrAbort(pki.registry->Register(pki.participant->certificate()));
    return pki;
  }
};

/// Prints a standard bench header.
inline void PrintHeader(const char* what, const char* paper_ref) {
  std::printf("=== %s ===\n", what);
  std::printf("reproduces: %s\n", paper_ref);
}

/// Formats "mean +- ci95" in milliseconds.
inline std::string FormatMs(const RunningStats& stats) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%10.2f +- %6.2f", stats.mean() * 1e3,
                stats.ci95_half_width() * 1e3);
  return buf;
}

/// Prints the global metrics snapshot as the run's final stdout line:
///   metrics: {"counters":{...},"gauges":{...},"histograms":{...}}
/// Every bench binary ends with this footer so each recorded run carries
/// its instrumentation (schema: docs/OBSERVABILITY.md).
inline void EmitMetricsSnapshot() {
  std::printf("metrics: %s\n",
              observability::GlobalMetrics().SnapshotJson().c_str());
}

/// Standard bench main body: enable tracing when PROVDB_TRACE is set, run
/// the harness, then append the metrics footer (also on failure — partial
/// counters help diagnose an aborted run).
inline int BenchMain(int argc, char** argv, int (*run)(int, char**)) {
  observability::InitTraceFromEnv();
  int rc = run(argc, argv);
  EmitMetricsSnapshot();
  return rc;
}

inline int BenchMain(int (*run)()) {
  observability::InitTraceFromEnv();
  int rc = run();
  EmitMetricsSnapshot();
  return rc;
}

}  // namespace provdb::bench

#endif  // PROVDB_BENCH_BENCH_COMMON_H_
