// Reproduces Figure 8: time overhead (hashing trees, encrypting/signing,
// and inserting checksums) for the four complex operations of
// Experimental Setup B (Table 2):
//   * 500 deletes of rows
//   * 500 inserts of rows
//   * 4000 updates of cells in 500 rows
//   * 4000 updates of cells in 4000 rows
//
// Expected shape: all-deletes is the smallest (deleted objects get no
// records of their own, §5.2); all-inserts and all-updates are similar.

#include "setup_runner.h"

namespace provdb::bench {
namespace {

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const int runs = static_cast<int>(flags.GetInt("runs", 3));
  const size_t rsa_bits =
      static_cast<size_t>(flags.GetInt("rsa-bits", 1024));

  PrintHeader("Figure 8 — time overhead by operation type",
              "Fig. 8, §5.2; Experimental Setup B (Table 2)");
  std::printf("table 1 (8x4000), RSA-%zu, SHA-1, economical hashing; "
              "runs: %d (paper: 100)\n\n",
              rsa_bits, runs);

  BenchPki pki = BenchPki::Create(rsa_bits);
  const std::vector<workload::SyntheticTableSpec> specs = {
      workload::PaperTableSpecs()[0]};

  struct Item {
    const char* label;
    std::function<Result<workload::ComplexOpScript>(
        const workload::SyntheticLayout&, Rng*)>
        make;
  };
  const Item items[] = {
      {"500 row deletes",
       [](const workload::SyntheticLayout& layout, Rng* rng) {
         return workload::MakeDeleteScript(layout.tables[0], 500, rng);
       }},
      {"500 row inserts",
       [](const workload::SyntheticLayout& layout, Rng* rng) {
         return workload::MakeInsertScript(layout.tables[0], 500, rng);
       }},
      {"4000 updates/500 rows",
       [](const workload::SyntheticLayout& layout, Rng* rng) {
         return workload::MakeUpdateScript(layout.tables[0], 4000, 500, rng);
       }},
      {"4000 updates/4000 rows",
       [](const workload::SyntheticLayout& layout, Rng* rng) {
         return workload::MakeUpdateScript(layout.tables[0], 4000, 4000,
                                           rng);
       }},
  };

  std::printf("%-24s %-10s %-14s %-12s %-12s %-12s\n", "complex operation",
              "checksums", "total (ms)", "hash (ms)", "sign (ms)",
              "store (ms)");
  for (const Item& item : items) {
    RunningStats total, hash, sign, store;
    uint64_t checksums = 0;
    for (int r = 0; r < runs; ++r) {
      ComplexOpResult result = RunComplexOp(
          pki, provenance::HashingMode::kEconomical, specs,
          /*data_seed=*/7, /*script_seed=*/100 + r, item.make);
      total.Add(result.metrics.total_seconds());
      hash.Add(result.metrics.hash_seconds);
      sign.Add(result.metrics.sign_seconds);
      store.Add(result.metrics.store_seconds);
      checksums = result.metrics.checksums;
    }
    std::printf("%-24s %-10llu %-14.1f %-12.1f %-12.1f %-12.3f\n", item.label,
                static_cast<unsigned long long>(checksums),
                total.mean() * 1e3, hash.mean() * 1e3, sign.mean() * 1e3,
                store.mean() * 1e3);
  }

  std::printf(
      "\nshape check: deletes smallest; inserts ~= updates-in-500-rows\n"
      "(equal checksum counts); updates-in-4000-rows largest (one record\n"
      "per distinct row). Signing (the paper's 'encrypting') dominates.\n");
  return 0;
}

}  // namespace
}  // namespace provdb::bench

int main(int argc, char** argv) {
  return provdb::bench::BenchMain(argc, argv, provdb::bench::Run);
}
