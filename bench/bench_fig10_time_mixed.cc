// Reproduces Figure 10: time overhead (hashing, signing, storing) for the
// four mixed complex operations of Experimental Setup C (Table 2) — 500
// primitives with an increasing share of deletes.
//
// Expected shape: total time decreases as the delete percentage rises
// (deleted objects generate no records of their own).

#include "setup_runner.h"

namespace provdb::bench {
namespace {

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const int runs = static_cast<int>(flags.GetInt("runs", 3));
  const size_t rsa_bits =
      static_cast<size_t>(flags.GetInt("rsa-bits", 1024));

  PrintHeader("Figure 10 — time overhead for mixed complex operations",
              "Fig. 10, §5.2; Experimental Setup C (Table 2)");
  std::printf("table 1 (8x4000), RSA-%zu, SHA-1, economical hashing; "
              "runs: %d (paper: 100)\n\n",
              rsa_bits, runs);

  BenchPki pki = BenchPki::Create(rsa_bits);
  const std::vector<workload::SyntheticTableSpec> specs = {
      workload::PaperTableSpecs()[0]};

  std::printf("%-30s %-10s %-14s %-12s %-12s\n",
              "mix (del/ins/upd of 500)", "checksums", "total (ms)",
              "hash (ms)", "sign (ms)");
  double previous_total = -1;
  bool monotonic = true;
  for (const workload::MixSpec& mix : workload::PaperSetupCMixes()) {
    RunningStats total, hash, sign;
    uint64_t checksums = 0;
    for (int r = 0; r < runs; ++r) {
      ComplexOpResult result = RunComplexOp(
          pki, provenance::HashingMode::kEconomical, specs,
          /*data_seed=*/7, /*script_seed=*/200 + r,
          [&mix](const workload::SyntheticLayout& layout, Rng* rng) {
            return workload::MakeMixedScript(layout.tables[0], mix.deletes,
                                             mix.inserts, mix.updates, rng);
          });
      total.Add(result.metrics.total_seconds());
      hash.Add(result.metrics.hash_seconds);
      sign.Add(result.metrics.sign_seconds);
      checksums = result.metrics.checksums;
    }
    char label[64];
    std::snprintf(label, sizeof(label), "%zu/%zu/%zu (%.1f%% deletes)",
                  mix.deletes, mix.inserts, mix.updates,
                  100.0 * static_cast<double>(mix.deletes) / 500.0);
    std::printf("%-30s %-10llu %-14.1f %-12.1f %-12.1f\n", label,
                static_cast<unsigned long long>(checksums),
                total.mean() * 1e3, hash.mean() * 1e3, sign.mean() * 1e3);
    if (previous_total >= 0 && total.mean() > previous_total) {
      monotonic = false;
    }
    previous_total = total.mean();
  }

  std::printf(
      "\nshape check: time overhead decreases as the delete share rises "
      "(%s).\n",
      monotonic ? "holds" : "VIOLATED");
  return 0;
}

}  // namespace
}  // namespace provdb::bench

int main(int argc, char** argv) {
  return provdb::bench::BenchMain(argc, argv, provdb::bench::Run);
}
