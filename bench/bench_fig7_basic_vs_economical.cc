// Reproduces Figure 7: hashing the *output tree* after a complex update
// operation, comparing the Basic approach (rehash the whole tree) with the
// Economical approach (recompute only changed paths), over Experimental
// Setup A (Table 2): 1 update; 400n updates in 400n rows (n = 1..10);
// 4000n updates on 4000n cells in 4000 rows (n = 2..8).
//
// Expected shape: Basic is flat; Economical grows with the number of
// updated cells and approaches Basic as most of the table is touched.

#include <set>

#include "bench_common.h"
#include "provenance/subtree_hasher.h"
#include "storage/tree_store.h"
#include "workload/synthetic.h"

namespace provdb::bench {
namespace {

struct SweepPoint {
  size_t updates;
  size_t rows;
};

std::vector<SweepPoint> SetupASweep() {
  std::vector<SweepPoint> points;
  points.push_back({1, 1});
  for (size_t n = 1; n <= 10; ++n) {
    points.push_back({400 * n, 400 * n});
  }
  for (size_t n = 2; n <= 8; ++n) {
    points.push_back({4000 * n, 4000});
  }
  return points;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const int runs = static_cast<int>(flags.GetInt("runs", 10));

  PrintHeader("Figure 7 — hashing the output tree: Basic vs Economical",
              "Fig. 7, §4.3/§5.2; Experimental Setup A (Table 2)");
  std::printf("table 1: 8 integer attrs x 4000 rows (36002 nodes); "
              "runs per point: %d (paper: 100)\n\n",
              runs);

  // One shared back-end table; update values are irrelevant to hash cost.
  storage::TreeStore tree;
  Rng data_rng(7);
  auto layout = workload::BuildSyntheticDatabase(
      &tree, {workload::PaperTableSpecs()[0]}, &data_rng);
  if (!layout.ok()) return 1;
  const auto& table = layout->tables[0];

  std::printf("%-9s %-6s | %-22s %-10s | %-22s %-10s\n", "updates", "rows",
              "basic (ms, 95% CI)", "nodes", "economical (ms)", "nodes");

  Rng rng(42);
  for (const SweepPoint& point : SetupASweep()) {
    // Choose the target cells: `updates` cells spread over `rows` rows.
    size_t per_row = point.updates / point.rows;
    std::vector<storage::ObjectId> cells;
    std::set<size_t> row_indices;
    while (row_indices.size() < point.rows) {
      row_indices.insert(rng.NextBelow(table.rows.size()));
    }
    for (size_t row_idx : row_indices) {
      const storage::TreeNode* row =
          tree.GetNode(table.rows[row_idx]).value();
      for (size_t c = 0; c < per_row && c < row->children.size(); ++c) {
        cells.push_back(row->children[c]);
      }
    }

    // Basic: one full output walk, independent of the update count.
    provenance::SubtreeHasher basic(&tree);
    RunningStats basic_stats;
    uint64_t basic_nodes = 0;
    for (int r = 0; r < runs; ++r) {
      basic.ResetCounters();
      Stopwatch watch;
      basic.HashSubtreeBasic(layout->root).value();
      basic_stats.Add(watch.ElapsedSeconds());
      basic_nodes = basic.nodes_hashed();
    }

    // Economical: warm cache, then per run mutate the cells, invalidate,
    // and time only the output-tree recomputation.
    provenance::EconomicalHasher econ(&tree);
    econ.HashSubtree(layout->root).value();
    RunningStats econ_stats;
    uint64_t econ_nodes = 0;
    for (int r = 0; r < runs; ++r) {
      for (storage::ObjectId cell : cells) {
        OrAbort(tree.Update(
            cell, storage::Value::Int(static_cast<int64_t>(
                      rng.NextUint64()))));
        econ.Invalidate(cell);
      }
      econ.ResetCounters();
      Stopwatch watch;
      econ.HashSubtree(layout->root).value();
      econ_stats.Add(watch.ElapsedSeconds());
      econ_nodes = econ.nodes_hashed();
    }

    std::printf("%-9zu %-6zu | %-22s %-10llu | %-22s %-10llu\n",
                point.updates, point.rows, FormatMs(basic_stats).c_str(),
                static_cast<unsigned long long>(basic_nodes),
                FormatMs(econ_stats).c_str(),
                static_cast<unsigned long long>(econ_nodes));
  }

  std::printf(
      "\nshape check: Basic stays ~constant (full 36002-node walk);\n"
      "Economical grows with updated cells (dirty paths only) and\n"
      "approaches Basic as the whole table is updated.\n");
  return 0;
}

}  // namespace
}  // namespace provdb::bench

int main(int argc, char** argv) {
  return provdb::bench::BenchMain(argc, argv, provdb::bench::Run);
}
