// Sharded batched ingest throughput: the IngestPipeline (parallel
// signing + per-shard WAL group commit) against the sequential
// sync-every-record baseline, over a Table-1 synthetic database with a
// Fig-10-style mixed op stream (inserts / updates / aggregations).
//
// Matrix: {1, 2, 4, 8} shards x {sync every record, group commit}.
// The request stream is pre-generated (untimed), so the timed region is
// exactly what the pipeline owns: signing, batching, WAL appends, and
// fsyncs. After every configuration the full cross-shard verify pass
// must accept the store — a throughput number for a store that fails
// verification is worthless — and the run exits nonzero if the 4-shard
// group-commit configuration fails to clear 2x over the baseline. On a
// single-core machine the parallel-signing axis cannot express itself
// (all signing serializes onto one CPU), so there the run is held to the
// machine's own fsync-amortization bound instead, computed from the
// measured per-config fsync time and printed alongside the verdict.

#include <string>
#include <vector>

#include "common/thread_pool.h"

#include "bench_common.h"
#include "provenance/chain.h"
#include "provenance/checksum.h"
#include "provenance/ingest_pipeline.h"
#include "provenance/subtree_hasher.h"
#include "storage/env.h"
#include "storage/tree_store.h"
#include "storage/value.h"
#include "workload/synthetic.h"

namespace provdb::bench {
namespace {

using provenance::BuildSignedIngestRecord;
using provenance::IngestOptions;
using provenance::IngestPipeline;
using provenance::IngestRequest;
using provenance::ObjectState;
using provenance::OperationType;
using provenance::ShardedProvenanceStore;
using storage::Env;
using storage::ObjectId;
using storage::TreeStore;
using storage::Value;

/// Generates the request stream against a live tree, signing each record
/// once (untimed) so later aggregate requests can carry the previous
/// checksums of their inputs — the same resolution the tracked database
/// performs at emit time. The pipeline re-signs during the timed run.
class RequestGenerator {
 public:
  RequestGenerator(crypto::HashAlgorithm alg,
                   const crypto::Participant* participant)
      : engine_(alg), hasher_(&tree_, alg), participant_(participant) {}

  TreeStore* mutable_tree() { return &tree_; }
  const TreeStore& tree() const { return tree_; }
  const std::vector<IngestRequest>& requests() const { return requests_; }
  const std::vector<ObjectId>& tracked() const { return tracked_; }

  void InsertRow(ObjectId table, int num_attributes, Rng* rng) {
    ObjectId row = tree_.Insert(Value::String("row"), table).value();
    for (int a = 0; a < num_attributes; ++a) {
      OrAbort(tree_.Insert(Value::Int(rng->NextInRange(0, 1 << 20)), row)
                  .status());
    }
    IngestRequest request;
    request.op = OperationType::kInsert;
    request.object = row;
    request.post_hash = hasher_.HashSubtreeBasic(row).value();
    request.participant = participant_;
    Apply(std::move(request));
    tracked_.push_back(row);
  }

  void UpdateCell(ObjectId row, size_t column, Rng* rng) {
    ObjectId cell = workload::CellIdOf(tree_, row, column).value();
    const bool first = !chains_.Get(row).exists;
    IngestRequest request;
    request.op = OperationType::kUpdate;
    request.object = row;
    request.has_pre_hash = true;
    request.pre_hash = hasher_.HashSubtreeBasic(row).value();
    OrAbort(tree_.Update(cell, Value::Int(rng->NextInRange(0, 1 << 20))));
    request.post_hash = hasher_.HashSubtreeBasic(row).value();
    request.participant = participant_;
    Apply(std::move(request));
    if (first) tracked_.push_back(row);
  }

  void AggregateRows(std::vector<ObjectId> inputs) {
    std::sort(inputs.begin(), inputs.end());
    inputs.erase(std::unique(inputs.begin(), inputs.end()), inputs.end());
    IngestRequest request;
    request.op = OperationType::kAggregate;
    provenance::SeqId max_seq = 0;
    for (ObjectId in : inputs) {
      request.inputs.push_back(
          ObjectState{in, hasher_.HashSubtreeBasic(in).value()});
      provenance::LocalChainState::Tail tail = chains_.Get(in);
      request.input_prev_checksums.push_back(tail.checksum);
      if (tail.exists && tail.seq_id > max_seq) max_seq = tail.seq_id;
    }
    ObjectId out = tree_.Aggregate(inputs, Value::String("agg")).value();
    request.object = out;
    request.post_hash = hasher_.HashSubtreeBasic(out).value();
    request.aggregate_seq = max_seq + 1;
    request.participant = participant_;
    Apply(std::move(request));
    tracked_.push_back(out);
  }

 private:
  void Apply(IngestRequest request) {
    provenance::ProvenanceRecord record =
        BuildSignedIngestRecord(engine_, chains_.Get(request.object), request)
            .value();
    chains_.Set(record.output.object_id, record.seq_id, record.checksum);
    requests_.push_back(std::move(request));
  }

  provenance::ChecksumEngine engine_;
  TreeStore tree_;
  provenance::SubtreeHasher hasher_;
  provenance::LocalChainState chains_;
  const crypto::Participant* participant_;
  std::vector<IngestRequest> requests_;
  std::vector<ObjectId> tracked_;
};

void CleanRoot(Env* env, const std::string& root) {
  auto entries = env->ListDir(root);
  if (!entries.ok()) return;
  for (const std::string& entry : *entries) {
    std::string dir = root + "/" + entry;
    auto files = env->ListDir(dir);
    if (!files.ok()) continue;
    for (const std::string& f : *files) OrAbort(env->RemoveFile(dir + "/" + f));
  }
}

struct ConfigResult {
  double seconds = 0;
  uint64_t fsyncs = 0;
  double fsync_seconds = 0;  // measured time inside fsync, this config
};

ConfigResult RunConfig(Env* env, const std::string& root,
                       const std::vector<IngestRequest>& requests,
                       const crypto::ParticipantRegistry& registry,
                       size_t shards, bool sync_every) {
  CleanRoot(env, root);
  IngestOptions options;
  options.num_shards = shards;
  options.sync_every_record = sync_every;
  options.signing.num_threads = static_cast<int>(shards);
  observability::Counter* wal_syncs =
      observability::GlobalMetrics().counter("wal.syncs");
  observability::Histogram* sync_latency =
      observability::GlobalMetrics().histogram("wal.sync.latency_us");
  const uint64_t syncs_before = wal_syncs->value();
  const uint64_t sync_us_before = sync_latency->sum_micros();

  auto pipeline = IngestPipeline::Open(env, root, options);
  OrAbort(pipeline.status());
  ConfigResult result;
  Stopwatch watch;
  for (const IngestRequest& request : requests) {
    OrAbort((*pipeline)->Submit(request));
  }
  OrAbort((*pipeline)->Close());
  result.seconds = watch.ElapsedSeconds();
  result.fsyncs = wal_syncs->value() - syncs_before;
  result.fsync_seconds =
      static_cast<double>(sync_latency->sum_micros() - sync_us_before) / 1e6;

  // The verify pass is the bench's admission ticket, not part of the
  // timed region.
  auto report = (*pipeline)->store().VerifyChains(registry);
  if (!report.ok()) {
    std::fprintf(stderr, "FATAL: %zu shards (%s): verify rejected: %s\n",
                 shards, sync_every ? "sync-every" : "group-commit",
                 report.ToString().c_str());
    std::abort();
  }
  return result;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t bootstrap_rows =
      static_cast<size_t>(flags.GetInt("bootstrap_rows", 200));
  const size_t ops = static_cast<size_t>(flags.GetInt("ops", 1200));
  // Test-PKI-scale keys by default so the durability policy stays visible
  // next to signing cost; --rsa_bits=1024 for paper-faithful keys (there
  // signing dominates and the gain comes from the parallel-signing axis).
  const size_t rsa_bits = static_cast<size_t>(flags.GetInt("rsa_bits", 512));
  const std::string root =
      flags.GetString("dir", "/tmp/provdb_bench_ingest_pipeline");

  PrintHeader("Sharded batched ingest: shards x durability policy",
              "Table 1 data, Fig-10-style mixed ops (no paper figure)");

  // Table 1's first synthetic table shape (8 integer attributes), scaled
  // to `bootstrap_rows` of untracked pre-existing data plus a tracked
  // mixed op stream over it.
  const workload::SyntheticTableSpec spec{
      workload::PaperTableSpecs()[0].num_attributes,
      static_cast<int>(bootstrap_rows)};
  BenchPki pki = BenchPki::Create(rsa_bits);
  RequestGenerator gen(crypto::HashAlgorithm::kSha1, pki.participant.get());
  Rng rng(0x1A6E57);
  auto layout =
      workload::BuildSyntheticDatabase(gen.mutable_tree(), {spec}, &rng);
  OrAbort(layout.status());
  const auto& rows = layout->tables[0].rows;

  // Mixed stream: ~40% row inserts, ~45% cell updates (row-level
  // records), ~15% aggregations of tracked rows — Fig 10's mix.
  std::vector<ObjectId> updatable(rows.begin(), rows.end());
  for (size_t i = 0; i < ops; ++i) {
    const double r = rng.NextDouble();
    if (r < 0.40) {
      gen.InsertRow(layout->tables[0].table_id, spec.num_attributes, &rng);
      updatable.push_back(gen.tracked().back());
    } else if (r < 0.85 || gen.tracked().size() < 2) {
      ObjectId row = updatable[rng.NextBelow(updatable.size())];
      gen.UpdateCell(row, rng.NextBelow(spec.num_attributes), &rng);
    } else {
      const auto& tracked = gen.tracked();
      std::vector<ObjectId> inputs;
      for (size_t k = 0; k < 2 + rng.NextBelow(3); ++k) {
        inputs.push_back(tracked[rng.NextBelow(tracked.size())]);
      }
      gen.AggregateRows(std::move(inputs));
    }
  }
  std::printf("%zu bootstrap rows x %d attrs, %zu mixed ops -> %zu records, "
              "RSA-%zu\n\n",
              bootstrap_rows, spec.num_attributes, ops,
              gen.requests().size(), rsa_bits);

  Env* env = Env::Default();
  std::printf("%-14s %7s %10s %12s %8s %9s\n", "mode", "shards", "seconds",
              "records/s", "fsyncs", "speedup");
  ConfigResult baseline;
  ConfigResult four_shard_gc;
  for (bool sync_every : {true, false}) {
    for (size_t shards : {1u, 2u, 4u, 8u}) {
      ConfigResult result = RunConfig(env, root, gen.requests(),
                                      *pki.registry, shards, sync_every);
      if (sync_every && shards == 1) baseline = result;
      if (!sync_every && shards == 4) four_shard_gc = result;
      std::printf("%-14s %7zu %10.3f %12.0f %8llu %8.2fx\n",
                  sync_every ? "sync-every" : "group-commit", shards,
                  result.seconds,
                  static_cast<double>(gen.requests().size()) / result.seconds,
                  static_cast<unsigned long long>(result.fsyncs),
                  baseline.seconds / result.seconds);
    }
  }
  CleanRoot(env, root);

  std::printf(
      "\nshape check: group commit amortizes fsyncs per batch and signing\n"
      "fans out across shards, so throughput scales with shard count until\n"
      "fsync or core count saturates. every configuration passed the full\n"
      "cross-shard verify pass.\n");

  const double speedup = baseline.seconds / four_shard_gc.seconds;
  const int cores = ParallelismConfig::Hardware().num_threads;
  bool pass;
  if (cores >= 2) {
    pass = speedup >= 2.0;
    std::printf("speedup check (4-shard group commit >= 2x baseline, "
                "%d cores): %.2fx -> %s\n",
                cores, speedup, pass ? "PASS" : "FAIL");
  } else {
    // One core: signing cannot fan out, so the best any policy can do is
    // remove the baseline's fsync time. Hold the run to 85% of that
    // measured bound instead of the multicore 2x target.
    const double fsync_saved = baseline.fsync_seconds -
                               four_shard_gc.fsync_seconds;
    const double bound = baseline.seconds /
                         (baseline.seconds - fsync_saved);
    pass = speedup >= 2.0 || speedup >= 0.85 * bound;
    std::printf("speedup check: single core — parallel signing cannot fan "
                "out;\nfsync-amortization bound for this machine/disk is "
                "%.2fx.\n4-shard group commit: %.2fx (>= 2x or >= 85%% of "
                "bound) -> %s\n",
                bound, speedup, pass ? "PASS" : "FAIL");
  }
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace provdb::bench

int main(int argc, char** argv) {
  return provdb::bench::BenchMain(argc, argv, provdb::bench::Run);
}
