// Reproduces Figure 11: space overhead of stored checksums for the Setup C
// mixed complex operations, under the paper's tuple schema (§5.1).
//
// Expected shape: space overhead inversely proportional to the number of
// deletions in the mix.

#include "setup_runner.h"

namespace provdb::bench {
namespace {

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t rsa_bits =
      static_cast<size_t>(flags.GetInt("rsa-bits", 1024));

  PrintHeader("Figure 11 — space overhead for mixed complex operations",
              "Fig. 11, §5.2; Experimental Setup C (Table 2)");
  std::printf("schema: <SeqID(4), Participant(4), Oid(4), Checksum(%zu)> "
              "per record\n\n",
              rsa_bits / 8);

  BenchPki pki = BenchPki::Create(rsa_bits);
  const std::vector<workload::SyntheticTableSpec> specs = {
      workload::PaperTableSpecs()[0]};

  std::printf("%-30s %-12s %-14s\n", "mix (del/ins/upd of 500)", "checksums",
              "space (KB)");
  uint64_t previous_bytes = 0;
  bool monotonic = true;
  bool first = true;
  for (const workload::MixSpec& mix : workload::PaperSetupCMixes()) {
    ComplexOpResult result = RunComplexOp(
        pki, provenance::HashingMode::kEconomical, specs,
        /*data_seed=*/7, /*script_seed=*/200,
        [&mix](const workload::SyntheticLayout& layout, Rng* rng) {
          return workload::MakeMixedScript(layout.tables[0], mix.deletes,
                                           mix.inserts, mix.updates, rng);
        });
    char label[64];
    std::snprintf(label, sizeof(label), "%zu/%zu/%zu (%.1f%% deletes)",
                  mix.deletes, mix.inserts, mix.updates,
                  100.0 * static_cast<double>(mix.deletes) / 500.0);
    std::printf("%-30s %-12llu %-14.1f\n", label,
                static_cast<unsigned long long>(result.records),
                result.paper_schema_bytes / 1024.0);
    if (!first && result.paper_schema_bytes > previous_bytes) {
      monotonic = false;
    }
    previous_bytes = result.paper_schema_bytes;
    first = false;
  }

  std::printf(
      "\nshape check: space overhead falls as the delete share rises "
      "(%s).\n",
      monotonic ? "holds" : "VIOLATED");
  return 0;
}

}  // namespace
}  // namespace provdb::bench

int main(int argc, char** argv) {
  return provdb::bench::BenchMain(argc, argv, provdb::bench::Run);
}
