// Reproduces Figure 6: average time to hash each of the four synthetic
// databases (whole-database recursive compound hash). The paper reports
// roughly linear growth in the node count.

#include "bench_common.h"
#include "provenance/subtree_hasher.h"
#include "storage/tree_store.h"
#include "workload/synthetic.h"

namespace provdb::bench {
namespace {

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const int runs = static_cast<int>(flags.GetInt("runs", 20));

  PrintHeader("Figure 6 — average hashing time for a database",
              "Fig. 6, §5.2 'Hashing'");
  std::printf("runs per point: %d (paper: 100)\n\n", runs);
  std::printf("%-22s %-10s %-22s %-14s\n", "tables", "nodes",
              "hash time (ms, 95% CI)", "us per node");

  const auto& specs = workload::PaperTableSpecs();
  std::vector<workload::SyntheticTableSpec> cumulative;
  std::string combo;
  double first_per_node = 0;
  for (size_t i = 0; i < specs.size(); ++i) {
    cumulative.push_back(specs[i]);
    combo += (i == 0 ? "" : ",") + std::to_string(i + 1);

    storage::TreeStore tree;
    Rng rng(7);
    auto layout = workload::BuildSyntheticDatabase(&tree, cumulative, &rng);
    if (!layout.ok()) return 1;

    provenance::SubtreeHasher hasher(&tree);
    RunningStats stats;
    for (int r = 0; r < runs; ++r) {
      Stopwatch watch;
      auto digest = hasher.HashSubtreeBasic(layout->root);
      if (!digest.ok()) return 1;
      stats.Add(watch.ElapsedSeconds());
    }
    double per_node = stats.mean() * 1e6 / static_cast<double>(tree.size());
    if (i == 0) first_per_node = per_node;
    std::printf("%-22s %-10zu %-22s %10.4f\n", combo.c_str(), tree.size(),
                FormatMs(stats).c_str(), per_node);
  }
  std::printf(
      "\nshape check: per-node cost should stay ~constant across sizes\n"
      "(linear total growth, as in Fig. 6); first point: %.4f us/node\n",
      first_per_node);
  return 0;
}

}  // namespace
}  // namespace provdb::bench

int main(int argc, char** argv) {
  return provdb::bench::BenchMain(argc, argv, provdb::bench::Run);
}
