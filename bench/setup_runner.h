#ifndef PROVDB_BENCH_SETUP_RUNNER_H_
#define PROVDB_BENCH_SETUP_RUNNER_H_

// Executes one Table 2 complex operation against a freshly built
// synthetic back-end database and reports the paper's overhead metrics.

#include <functional>

#include "bench_common.h"
#include "provenance/tracked_database.h"
#include "workload/operations.h"
#include "workload/synthetic.h"

namespace provdb::bench {

/// Result of one complex-operation execution.
struct ComplexOpResult {
  provenance::OperationMetrics metrics;
  uint64_t records = 0;            // checksums generated
  uint64_t paper_schema_bytes = 0; // <seq,participant,oid,checksum> tuples
};

/// Builds a fresh back-end database from `specs` (untracked bootstrap,
/// §5.1), generates a script with `make_script`, executes it as one
/// complex operation, and returns the overhead metrics.
inline ComplexOpResult RunComplexOp(
    const BenchPki& pki, provenance::HashingMode mode,
    const std::vector<workload::SyntheticTableSpec>& specs,
    uint64_t data_seed, uint64_t script_seed,
    const std::function<Result<workload::ComplexOpScript>(
        const workload::SyntheticLayout&, Rng*)>& make_script) {
  provenance::TrackedDatabaseOptions options;
  options.hashing_mode = mode;
  provenance::TrackedDatabase db(options);

  Rng data_rng(data_seed);
  auto layout =
      workload::BuildSyntheticDatabase(&db.bootstrap_tree(), specs, &data_rng);
  if (!layout.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 layout.status().ToString().c_str());
    std::exit(1);
  }

  Rng script_rng(script_seed);
  auto script = make_script(*layout, &script_rng);
  if (!script.ok()) {
    std::fprintf(stderr, "script failed: %s\n",
                 script.status().ToString().c_str());
    std::exit(1);
  }

  Status executed = workload::ExecuteAsComplexOperation(
      &db, *pki.participant, *script, &script_rng);
  if (!executed.ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 executed.ToString().c_str());
    std::exit(1);
  }

  ComplexOpResult result;
  result.metrics = db.last_op_metrics();
  result.records = db.provenance().record_count();
  result.paper_schema_bytes = db.provenance().PaperSchemaBytes();
  return result;
}

}  // namespace provdb::bench

#endif  // PROVDB_BENCH_SETUP_RUNNER_H_
