// Append throughput of the durable write-ahead provenance log: what one
// fsync per record costs against batched durability points. No paper
// figure — this quantifies the WalOptions::sync_every_append trade-off
// documented in DESIGN.md §8 so deployments can pick a batch size.

#include <string>
#include <vector>

#include "bench_common.h"
#include "storage/env.h"
#include "storage/wal.h"

namespace provdb::bench {
namespace {

using storage::Env;
using storage::WalOptions;
using storage::WalWriter;

struct ModeResult {
  double seconds = 0;
  uint64_t syncs = 0;
};

/// Appends every payload under the given durability policy: `sync_every`
/// fsyncs inside Append; otherwise an explicit Sync lands every `batch`
/// records (batch 0 = only the final Sync in Close).
ModeResult RunMode(Env* env, const std::string& dir,
                   const std::vector<Bytes>& payloads, bool sync_every,
                   size_t batch) {
  WalOptions options;
  options.sync_every_append = sync_every;
  WalWriter wal = WalWriter::Open(env, dir, options).value();
  ModeResult result;
  Stopwatch watch;
  for (size_t i = 0; i < payloads.size(); ++i) {
    OrAbort(wal.Append(payloads[i]));
    if (!sync_every && batch > 0 && (i + 1) % batch == 0) {
      OrAbort(wal.Sync());
      ++result.syncs;
    }
  }
  OrAbort(wal.Close());  // Close syncs: every mode ends fully durable
  ++result.syncs;
  result.seconds = watch.ElapsedSeconds();
  if (sync_every) {
    result.syncs = payloads.size();
  }
  return result;
}

void CleanDir(Env* env, const std::string& dir) {
  auto names = env->ListDir(dir);
  if (!names.ok()) return;
  for (const std::string& name : *names) {
    OrAbort(env->RemoveFile(dir + "/" + name));
  }
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t records = static_cast<size_t>(flags.GetInt("records", 20000));
  const size_t payload_bytes =
      static_cast<size_t>(flags.GetInt("payload", 300));
  const std::string dir =
      flags.GetString("dir", "/tmp/provdb_bench_wal_append");

  PrintHeader("WAL append throughput: sync-every-record vs batched",
              "durability ablation (no paper figure)");
  std::printf(
      "%zu records x %zu B payload (~ one encoded provenance record)\n\n",
      records, payload_bytes);

  Rng rng(0x5A1);
  std::vector<Bytes> payloads(records);
  for (Bytes& payload : payloads) {
    rng.NextBytes(&payload, payload_bytes);
  }

  Env* env = Env::Default();
  struct Mode {
    const char* name;
    bool sync_every;
    size_t batch;
  };
  const Mode kModes[] = {
      {"sync every append", true, 0},  {"sync per 10", false, 10},
      {"sync per 100", false, 100},    {"sync per 1000", false, 1000},
      {"sync at close only", false, 0},
  };

  std::printf("%-22s %10s %12s %12s %8s\n", "mode", "seconds", "records/s",
              "MB/s", "fsyncs");
  const double total_mb = static_cast<double>(records * payload_bytes) / 1e6;
  for (const Mode& mode : kModes) {
    CleanDir(env, dir);
    ModeResult result =
        RunMode(env, dir, payloads, mode.sync_every, mode.batch);
    std::printf("%-22s %10.3f %12.0f %12.1f %8llu\n", mode.name,
                result.seconds,
                static_cast<double>(records) / result.seconds,
                total_mb / result.seconds,
                static_cast<unsigned long long>(result.syncs));
  }
  CleanDir(env, dir);

  std::printf(
      "\nshape check: throughput rises with batch size and saturates once\n"
      "fsync cost is amortized; sync-every-append pays one fsync per\n"
      "record and bounds loss to zero acknowledged records, batched modes\n"
      "bound loss to one batch.\n");
  return 0;
}

}  // namespace
}  // namespace provdb::bench

int main(int argc, char** argv) {
  return provdb::bench::BenchMain(argc, argv, provdb::bench::Run);
}
