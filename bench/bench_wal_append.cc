// Append throughput of the durable write-ahead provenance log: what one
// fsync per record costs against batched durability points. No paper
// figure — this quantifies the WalOptions group-commit trade-off
// documented in DESIGN.md §8/§12 so deployments can pick a batch size.
//
// Batched modes exercise the real group-commit machinery
// (WalOptions::group_commit_records), not a hand-rolled modulo loop, so
// the bench measures exactly what the ingest pipeline ships. After every
// mode a WalReader verify pass replays the log; a recovery error, an
// unclean report, or a record-count/byte mismatch fails the bench — a
// throughput number for a log that does not recover is worthless.

// A second pass measures checkpoint-bounded recovery (DESIGN.md §13):
// the same store is recovered behind checkpoints taken at different
// points, and the bench asserts the replayed WAL suffix shrinks with the
// checkpoint horizon — recovery cost is O(suffix), not O(history).

#include <string>
#include <vector>

#include "bench_common.h"
#include "crypto/signer.h"
#include "provenance/checkpoint.h"
#include "provenance/provenance_store.h"
#include "storage/env.h"
#include "storage/wal.h"

namespace provdb::bench {
namespace {

using provdb::provenance::CheckpointWriter;
using provdb::provenance::ProvenanceStore;
using provdb::provenance::ProvenanceRecord;
using storage::Env;
using storage::WalOptions;
using storage::WalReader;
using storage::WalRecoveryReport;
using storage::WalWriter;

struct ModeResult {
  double seconds = 0;
  uint64_t syncs = 0;
};

/// Appends every payload under the given durability policy: `sync_every`
/// fsyncs inside Append; otherwise WalOptions::group_commit_records
/// auto-syncs every `batch` records (batch 0 = only the final Sync in
/// Close).
ModeResult RunMode(Env* env, const std::string& dir,
                   const std::vector<Bytes>& payloads, bool sync_every,
                   uint64_t batch) {
  WalOptions options;
  options.sync_every_append = sync_every;
  options.group_commit_records = sync_every ? 0 : batch;
  WalWriter wal = WalWriter::Open(env, dir, options).value();
  ModeResult result;
  Stopwatch watch;
  for (const Bytes& payload : payloads) {
    OrAbort(wal.Append(payload));
  }
  uint64_t synced_inline = wal.synced_records();
  OrAbort(wal.Close());  // Close syncs: every mode ends fully durable
  result.seconds = watch.ElapsedSeconds();
  if (sync_every) {
    result.syncs = payloads.size();
  } else if (batch > 0) {
    result.syncs = synced_inline / batch + 1;  // group commits + Close
  } else {
    result.syncs = 1;  // only the Close
  }
  return result;
}

/// Replays the finished log and aborts the bench unless recovery is
/// clean and byte-complete. Returns so the caller can print a check.
void VerifyLog(Env* env, const std::string& dir,
               const std::vector<Bytes>& payloads, const char* mode) {
  auto reader = WalReader::Open(env, dir);
  if (!reader.ok()) {
    std::fprintf(stderr, "FATAL: mode '%s': WAL verify pass failed: %s\n",
                 mode, reader.status().ToString().c_str());
    std::abort();
  }
  uint64_t expected_bytes = 0;
  for (const Bytes& payload : payloads) expected_bytes += payload.size();
  const storage::RecordLog& log = reader->log();
  if (!reader->report().clean() || log.record_count() != payloads.size() ||
      log.total_payload_bytes() != expected_bytes) {
    std::fprintf(stderr,
                 "FATAL: mode '%s': recovered %llu records / %llu B, "
                 "expected %zu / %llu (report: %s)\n",
                 mode, static_cast<unsigned long long>(log.record_count()),
                 static_cast<unsigned long long>(log.total_payload_bytes()),
                 payloads.size(),
                 static_cast<unsigned long long>(expected_bytes),
                 reader->report().detail.c_str());
    std::abort();
  }
}

void CleanDir(Env* env, const std::string& dir) {
  auto names = env->ListDir(dir);
  if (!names.ok()) return;
  for (const std::string& name : *names) {
    OrAbort(env->RemoveFile(dir + "/" + name));
  }
}

/// A synthetic single-record chain (no RSA signing — the pass measures
/// log replay and snapshot load, not signature cost).
ProvenanceRecord MakeRecord(uint64_t i) {
  ProvenanceRecord rec;
  rec.seq_id = 0;
  rec.participant = 1;
  rec.op = provenance::OperationType::kInsert;
  rec.output = provenance::ObjectState{
      static_cast<storage::ObjectId>(i + 1),
      crypto::Digest::FromBytes(Bytes(20, static_cast<uint8_t>(i)))};
  rec.checksum = Bytes(128, static_cast<uint8_t>(i * 7 + 1));
  return rec;
}

/// Recovers a `total`-record store whose first `total - suffix` records
/// sit behind a sealed checkpoint. Asserts the structural invariant that
/// makes the wall-clock shape inevitable: exactly `suffix` WAL frames
/// are replayed, everything else loads from the snapshot.
void RecoveryPass(Env* env, const std::string& dir, uint64_t total,
                  uint64_t suffix, const BenchPki& pki) {
  CleanDir(env, dir);
  const uint64_t prefix = total - suffix;
  {
    ProvenanceStore store;
    WalWriter wal = WalWriter::Open(env, dir).value();
    OrAbort(store.AttachWal(&wal, /*checkpoint_existing=*/false));
    for (uint64_t i = 0; i < prefix; ++i) OrAbort(store.AddRecord(MakeRecord(i)).status());
    if (prefix > 0) {
      // Roll -> seal -> GC, the same order as TrackedDatabase::CheckpointWal.
      uint64_t horizon = wal.RollSegment().value();
      OrAbort(CheckpointWriter::Write(env, dir, store, horizon,
                                      pki.participant->signer(),
                                      pki.participant->id()));
      OrAbort(provenance::RemoveStaleCheckpoints(env, dir, horizon));
      OrAbort(wal.GarbageCollect(horizon));
    }
    for (uint64_t i = prefix; i < total; ++i) {
      OrAbort(store.AddRecord(MakeRecord(i)).status());
    }
    OrAbort(wal.Close());
  }

  crypto::RsaSignatureVerifier verifier(pki.participant->public_key());
  WalRecoveryReport report;
  Stopwatch watch;
  auto recovered = ProvenanceStore::RecoverFromWal(env, dir, &report, &verifier);
  const double seconds = watch.ElapsedSeconds();
  if (!recovered.ok() || recovered->record_count() != total ||
      report.records != suffix || report.checkpoint_records != prefix) {
    std::fprintf(stderr,
                 "FATAL: recovery pass (suffix %llu): %s — recovered %llu "
                 "records, replayed %llu frames, %llu from checkpoint\n",
                 static_cast<unsigned long long>(suffix),
                 recovered.status().ToString().c_str(),
                 static_cast<unsigned long long>(
                     recovered.ok() ? recovered->record_count() : 0),
                 static_cast<unsigned long long>(report.records),
                 static_cast<unsigned long long>(report.checkpoint_records));
    std::abort();
  }
  std::printf("%14llu %14llu %14llu %10.4f\n",
              static_cast<unsigned long long>(prefix),
              static_cast<unsigned long long>(suffix),
              static_cast<unsigned long long>(report.records), seconds);
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t records = static_cast<size_t>(flags.GetInt("records", 20000));
  const size_t payload_bytes =
      static_cast<size_t>(flags.GetInt("payload", 300));
  const std::string dir =
      flags.GetString("dir", "/tmp/provdb_bench_wal_append");

  PrintHeader("WAL append throughput: sync-every-record vs group commit",
              "durability ablation (no paper figure)");
  std::printf(
      "%zu records x %zu B payload (~ one encoded provenance record)\n\n",
      records, payload_bytes);

  Rng rng(0x5A1);
  std::vector<Bytes> payloads(records);
  for (Bytes& payload : payloads) {
    rng.NextBytes(&payload, payload_bytes);
  }

  Env* env = Env::Default();
  struct Mode {
    const char* name;
    bool sync_every;
    uint64_t batch;
  };
  const Mode kModes[] = {
      {"sync every append", true, 0},
      {"group commit 10", false, 10},
      {"group commit 100", false, 100},
      {"group commit 1000", false, 1000},
      {"sync at close only", false, 0},
  };

  std::printf("%-22s %10s %12s %12s %8s %8s\n", "mode", "seconds",
              "records/s", "MB/s", "fsyncs", "verify");
  const double total_mb = static_cast<double>(records * payload_bytes) / 1e6;
  for (const Mode& mode : kModes) {
    CleanDir(env, dir);
    ModeResult result =
        RunMode(env, dir, payloads, mode.sync_every, mode.batch);
    VerifyLog(env, dir, payloads, mode.name);
    std::printf("%-22s %10.3f %12.0f %12.1f %8llu %8s\n", mode.name,
                result.seconds,
                static_cast<double>(records) / result.seconds,
                total_mb / result.seconds,
                static_cast<unsigned long long>(result.syncs), "ok");
  }
  CleanDir(env, dir);

  std::printf(
      "\nshape check: throughput rises with batch size and saturates once\n"
      "fsync cost is amortized; sync-every-append pays one fsync per\n"
      "record and bounds loss to zero acknowledged records, group commit\n"
      "bounds loss to one batch. every mode's log passed the verify pass.\n");

  // Checkpoint-bounded recovery: same total history, shrinking WAL
  // suffix behind a sealed checkpoint. The replayed-frames column is
  // asserted equal to the suffix — the structural proof that recovery is
  // O(delta) — and the seconds column shows the wall-clock consequence.
  const uint64_t recovery_records =
      static_cast<uint64_t>(flags.GetInt("recovery_records", 6000));
  std::printf(
      "\ncheckpoint-bounded recovery (%llu records total, DESIGN.md §13)\n",
      static_cast<unsigned long long>(recovery_records));
  std::printf("%14s %14s %14s %10s\n", "in checkpoint", "wal suffix",
              "replayed", "seconds");
  BenchPki pki = BenchPki::Create();
  const uint64_t kSuffixes[] = {recovery_records, recovery_records / 2,
                                recovery_records / 10, 0};
  for (uint64_t suffix : kSuffixes) {
    RecoveryPass(env, dir, recovery_records, suffix, pki);
  }
  CleanDir(env, dir);
  std::printf(
      "\nshape check: replayed frames equal the WAL suffix at every row\n"
      "(asserted), so recovery cost tracks the un-checkpointed delta, not\n"
      "total history; the full-suffix row is the old bounded-only cost.\n");
  return 0;
}

}  // namespace
}  // namespace provdb::bench

int main(int argc, char** argv) {
  return provdb::bench::BenchMain(argc, argv, provdb::bench::Run);
}
