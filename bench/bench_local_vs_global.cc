// Ablation for §3.2 "Local vs. Global Checksum Chaining". The paper argues
// for per-object chains on two grounds; this harness demonstrates both:
//
//  1. Concurrency: a global chain forces every participant to serialize
//     checksum generation (the signature must cover the latest global
//     checksum, so hash+sign sits inside the critical section). We measure
//     the serialized critical-section time per operation under both
//     designs and report the implied maximum multi-participant throughput.
//
//  2. Failure isolation: corrupting one record breaks verification of
//     everything chained after it. With local chains only the damaged
//     object is lost; with a global chain every object that appended later
//     becomes unverifiable.

#include <mutex>

#include "bench_common.h"
#include "provenance/chain.h"
#include "provenance/checksum.h"
#include "crypto/signer.h"

namespace provdb::bench {
namespace {

using provenance::ChecksumEngine;
using provenance::GlobalChainState;
using provenance::LocalChainState;

struct SimRecord {
  uint64_t object;
  crypto::Digest in_hash;
  crypto::Digest out_hash;
  Bytes prev;  // the previous checksum the signer saw
  Bytes checksum;
};

crypto::Digest StateHash(uint64_t object, uint64_t version) {
  Bytes raw;
  AppendFixed64(&raw, object);
  AppendFixed64(&raw, version);
  return crypto::HashBytes(crypto::HashAlgorithm::kSha1, raw);
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t objects = static_cast<size_t>(flags.GetInt("objects", 20));
  const size_t updates_per_object =
      static_cast<size_t>(flags.GetInt("updates", 10));

  PrintHeader("Local vs global checksum chaining",
              "§3.2 (design ablation; no paper figure)");
  std::printf("%zu objects x %zu updates each, RSA-1024/SHA-1\n\n", objects,
              updates_per_object);

  BenchPki pki = BenchPki::Create();
  ChecksumEngine engine;
  const crypto::Signer& signer = pki.participant->signer();

  // ---- Part 1: serialized critical-section time ---------------------
  // Local chains: the only shared state is the per-object tail; distinct
  // objects never contend. Global chain: payload building + signing must
  // happen while holding the tail.
  {
    LocalChainState local;
    Stopwatch watch;
    for (size_t o = 0; o < objects; ++o) {
      for (size_t u = 0; u < updates_per_object; ++u) {
        auto tail = local.Get(o);
        Bytes payload = engine.BuildUpdatePayload(
            StateHash(o, u), StateHash(o, u + 1), tail.checksum);
        Bytes checksum = signer.Sign(payload).value();
        local.Set(o, u, std::move(checksum));
      }
    }
    double local_total = watch.ElapsedSeconds();

    GlobalChainState global;
    double serialized_seconds = 0;
    watch.Restart();
    for (size_t o = 0; o < objects; ++o) {
      for (size_t u = 0; u < updates_per_object; ++u) {
        global.WithLock([&](GlobalChainState& g) {
          Stopwatch critical;
          auto tail = g.Get();
          Bytes payload = engine.BuildUpdatePayload(
              StateHash(o, u), StateHash(o, u + 1), tail.checksum);
          Bytes checksum = signer.Sign(payload).value();
          g.Set(tail.seq_id + 1, std::move(checksum));
          serialized_seconds += critical.ElapsedSeconds();
          return 0;
        });
      }
    }
    double global_total = watch.ElapsedSeconds();
    size_t ops = objects * updates_per_object;

    std::printf("per-operation cost (single participant):\n");
    std::printf("  local chains:  %8.3f ms/op (no shared critical section)\n",
                local_total * 1e3 / static_cast<double>(ops));
    std::printf("  global chain:  %8.3f ms/op, of which %8.3f ms "
                "inside the global lock\n",
                global_total * 1e3 / static_cast<double>(ops),
                serialized_seconds * 1e3 / static_cast<double>(ops));
    double serialized_per_op = serialized_seconds / static_cast<double>(ops);
    std::printf(
        "\nimplied multi-participant throughput ceiling:\n"
        "  global chain:  %8.0f ops/s regardless of participant count "
        "(Amdahl: the\n                 signature covers the global tail, "
        "so signing serializes)\n"
        "  local chains:  scales with participants working on distinct "
        "objects\n",
        1.0 / serialized_per_op);
  }

  // ---- Part 2: failure isolation ------------------------------------
  // Scenario: object 0's provenance records are later pruned (exactly the
  // optimization footnote 3 allows for deleted objects) or corrupted.
  // With local chains nothing else references them; with a global chain,
  // every record whose signed "previous checksum" was one of object 0's
  // records can no longer be verified — and with randomly interleaved
  // appends those victims are spread across many objects.
  {
    Rng rng(0x1507);
    std::vector<uint64_t> append_order;
    for (size_t o = 0; o < objects; ++o) {
      for (size_t u = 0; u < updates_per_object; ++u) {
        append_order.push_back(o);
      }
    }
    for (size_t i = append_order.size(); i > 1; --i) {
      std::swap(append_order[i - 1], append_order[rng.NextBelow(i)]);
    }

    std::vector<SimRecord> local_records, global_records;
    std::map<uint64_t, uint64_t> version;
    LocalChainState local;
    GlobalChainState global;
    for (uint64_t o : append_order) {
      uint64_t u = version[o]++;
      SimRecord rec;
      rec.object = o;
      rec.in_hash = StateHash(o, u);
      rec.out_hash = StateHash(o, u + 1);

      rec.prev = local.Get(o).checksum;
      Bytes payload =
          engine.BuildUpdatePayload(rec.in_hash, rec.out_hash, rec.prev);
      rec.checksum = signer.Sign(payload).value();
      local.Set(o, u, rec.checksum);
      local_records.push_back(rec);

      SimRecord grec = rec;
      grec.prev = global.Get().checksum;
      Bytes gpayload =
          engine.BuildUpdatePayload(grec.in_hash, grec.out_hash, grec.prev);
      grec.checksum = signer.Sign(gpayload).value();
      global.WithLock([&](GlobalChainState& g) {
        g.Set(g.Get().seq_id + 1, grec.checksum);
        return 0;
      });
      global_records.push_back(grec);
    }

    // Prune object 0's records from both histories.
    auto prune = [](std::vector<SimRecord> records) {
      std::vector<SimRecord> out;
      for (SimRecord& rec : records) {
        if (rec.object != 0) out.push_back(std::move(rec));
      }
      return out;
    };
    std::vector<SimRecord> local_pruned = prune(local_records);
    std::vector<SimRecord> global_pruned = prune(global_records);

    // Re-verify from the surviving records only: a record is good if its
    // signature verifies over the payload rebuilt from the last surviving
    // predecessor's checksum.
    crypto::RsaSignatureVerifier verifier(pki.participant->public_key());
    auto count_verifiable_objects = [&](const std::vector<SimRecord>& records,
                                        bool global_chain) {
      std::map<uint64_t, Bytes> local_prev;
      Bytes global_prev;
      std::map<uint64_t, bool> object_ok;
      for (const SimRecord& rec : records) {
        Bytes& prev = global_chain ? global_prev : local_prev[rec.object];
        Bytes payload =
            engine.BuildUpdatePayload(rec.in_hash, rec.out_hash, prev);
        bool ok = verifier.Verify(payload, rec.checksum).ok();
        if (object_ok.find(rec.object) == object_ok.end()) {
          object_ok[rec.object] = true;
        }
        if (!ok) object_ok[rec.object] = false;
        prev = rec.checksum;
      }
      size_t good = 0;
      for (const auto& [object, ok] : object_ok) {
        if (ok) ++good;
      }
      return good;
    };

    size_t local_good = count_verifiable_objects(local_pruned, false);
    size_t global_good = count_verifiable_objects(global_pruned, true);
    std::printf(
        "\nfailure isolation (object 0's %zu records pruned, as footnote 3\n"
        "permits for deleted objects; appends were randomly interleaved):\n"
        "  local chains:  %zu of %zu remaining objects still fully verify\n"
        "  global chain:  %zu of %zu remaining objects still fully verify\n",
        updates_per_object, local_good, objects - 1, global_good,
        objects - 1);
    std::printf(
        "\nshape check: local chaining is unaffected by pruning another\n"
        "object's history; the global chain loses every object whose\n"
        "records chained directly onto a pruned record.\n");
  }
  return 0;
}

}  // namespace
}  // namespace provdb::bench

int main(int argc, char** argv) {
  return provdb::bench::BenchMain(argc, argv, provdb::bench::Run);
}
