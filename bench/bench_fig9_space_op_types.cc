// Reproduces Figure 9: space overhead of storing the (actual and
// inherited) checksums for the Setup B complex operations, under the
// paper's stored-tuple schema <SeqID(int), Participant(int), Oid(int),
// Checksum(binary(128))> (§5.1).
//
// Expected shape: inserts and updates cost far more than deletes (they
// produce one record per surviving touched object; deleted objects get
// none).

#include "setup_runner.h"

namespace provdb::bench {
namespace {

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t rsa_bits =
      static_cast<size_t>(flags.GetInt("rsa-bits", 1024));

  PrintHeader("Figure 9 — space overhead by operation type",
              "Fig. 9, §5.2; Experimental Setup B (Table 2)");
  std::printf("schema: <SeqID(4), Participant(4), Oid(4), Checksum(%zu)> "
              "per record\n\n",
              rsa_bits / 8);

  BenchPki pki = BenchPki::Create(rsa_bits);
  const std::vector<workload::SyntheticTableSpec> specs = {
      workload::PaperTableSpecs()[0]};

  struct Item {
    const char* label;
    std::function<Result<workload::ComplexOpScript>(
        const workload::SyntheticLayout&, Rng*)>
        make;
  };
  const Item items[] = {
      {"500 row deletes",
       [](const workload::SyntheticLayout& layout, Rng* rng) {
         return workload::MakeDeleteScript(layout.tables[0], 500, rng);
       }},
      {"500 row inserts",
       [](const workload::SyntheticLayout& layout, Rng* rng) {
         return workload::MakeInsertScript(layout.tables[0], 500, rng);
       }},
      {"4000 updates/500 rows",
       [](const workload::SyntheticLayout& layout, Rng* rng) {
         return workload::MakeUpdateScript(layout.tables[0], 4000, 500, rng);
       }},
      {"4000 updates/4000 rows",
       [](const workload::SyntheticLayout& layout, Rng* rng) {
         return workload::MakeUpdateScript(layout.tables[0], 4000, 4000,
                                           rng);
       }},
  };

  std::printf("%-24s %-12s %-16s %-12s\n", "complex operation", "checksums",
              "space (KB)", "bytes/record");
  for (const Item& item : items) {
    ComplexOpResult result =
        RunComplexOp(pki, provenance::HashingMode::kEconomical, specs,
                     /*data_seed=*/7, /*script_seed=*/100, item.make);
    std::printf("%-24s %-12llu %-16.1f %-12.1f\n", item.label,
                static_cast<unsigned long long>(result.records),
                result.paper_schema_bytes / 1024.0,
                result.records == 0
                    ? 0.0
                    : static_cast<double>(result.paper_schema_bytes) /
                          static_cast<double>(result.records));
  }

  std::printf(
      "\nshape check: space is proportional to the checksum count —\n"
      "inserts/updates >> deletes, as in Fig. 9.\n");
  return 0;
}

}  // namespace
}  // namespace provdb::bench

int main(int argc, char** argv) {
  return provdb::bench::BenchMain(argc, argv, provdb::bench::Run);
}
