// Reproduces Table 1 of the paper: the synthetic tables (1a) and the
// node counts of the cumulative database combinations (1b), measured from
// actually built databases.

#include "bench_common.h"
#include "storage/tree_store.h"
#include "workload/synthetic.h"

namespace provdb::bench {
namespace {

int Run() {
  PrintHeader("Table 1 — synthetic tables and databases",
              "Table 1(a)/(b), §5.1");

  const auto& specs = workload::PaperTableSpecs();
  std::printf("\nTable 1(a): synthetic tables\n");
  std::printf("%-10s %-11s %-9s %s\n", "Table No.", "Num. Attr.", "Num. Row",
              "Attr. types");
  for (size_t i = 0; i < specs.size(); ++i) {
    std::printf("%-10zu %-11d %-9d all integer\n", i + 1,
                specs[i].num_attributes, specs[i].num_rows);
  }

  std::printf("\nTable 1(b): synthetic databases (measured node counts)\n");
  std::printf("%-22s %-14s %-14s %s\n", "Combination of tables",
              "Nodes (built)", "Nodes (calc)", "Paper");
  const uint64_t paper_counts[] = {36002, 66000, 88004, 118006};
  std::string combo;
  std::vector<workload::SyntheticTableSpec> cumulative;
  for (size_t i = 0; i < specs.size(); ++i) {
    cumulative.push_back(specs[i]);
    combo += (i == 0 ? "" : ",") + std::to_string(i + 1);
    storage::TreeStore tree;
    Rng rng(7);
    auto layout = workload::BuildSyntheticDatabase(&tree, cumulative, &rng);
    if (!layout.ok()) {
      std::fprintf(stderr, "%s\n", layout.status().ToString().c_str());
      return 1;
    }
    std::printf("%-22s %-14zu %-14zu %llu%s\n", combo.c_str(), tree.size(),
                workload::ExpectedNodeCount(cumulative),
                static_cast<unsigned long long>(paper_counts[i]),
                tree.size() == paper_counts[i] ? "" : "  (paper slip)");
  }
  std::printf(
      "\nNote: the paper's 66000 and 118006 entries are +-2/3 off the exact\n"
      "arithmetic (1 root + tables + rows + rows*attrs); 36002 and 88004\n"
      "match exactly.\n");
  return 0;
}

}  // namespace
}  // namespace provdb::bench

int main() { return provdb::bench::BenchMain(provdb::bench::Run); }
