// Reproduces §5.2's large-scale experiment: streaming, row-at-a-time hash
// of a "Title" table (paper: 18,962,041 rows / 56,886,125 nodes in 1226.7
// seconds — 0.02156 ms per node on 2009 hardware). The paper's table was
// proprietary; this uses the synthetic equivalent from
// workload/title_source.h, exercising the identical streaming code path.
//
// Default row count is scaled down so the full bench suite stays fast;
// pass --rows=18962041 for the paper's full size.

#include "bench_common.h"
#include "provenance/streaming_hasher.h"
#include "workload/title_source.h"

namespace provdb::bench {
namespace {

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t rows =
      static_cast<uint64_t>(flags.GetInt("rows", 1000000));

  PrintHeader("Large-scale streaming hash of the 'Title' table",
              "§5.2 'Hashing' (scale-out paragraph)");
  std::printf("rows: %llu (paper: 18,962,041); 2 fields per row "
              "(doc id int, title varchar)\n\n",
              static_cast<unsigned long long>(rows));

  workload::TitleTableSource source(rows, /*seed=*/0x717);
  provenance::StreamingTableHasher table_hasher(
      crypto::HashAlgorithm::kSha1, source.table_id(), source.table_value());
  provenance::StreamingDatabaseHasher db_hasher(
      crypto::HashAlgorithm::kSha1, source.database_id(),
      source.database_value());

  Stopwatch watch;
  workload::TitleTableSource::Row row;
  while (source.Next(&row)) {
    table_hasher.AddRow(row.row_id, row.row_value, row.cells);
  }
  crypto::Digest table_hash = table_hasher.Finish();
  db_hasher.AddTable(table_hash);
  crypto::Digest db_hash = db_hasher.Finish();
  double seconds = watch.ElapsedSeconds();

  uint64_t nodes = source.TotalNodes();
  std::printf("nodes hashed:        %llu\n",
              static_cast<unsigned long long>(nodes));
  std::printf("total time:          %.2f s\n", seconds);
  std::printf("per-node time:       %.6f ms (paper: 0.02156 ms on a 2009 "
              "Celeron)\n",
              seconds * 1e3 / static_cast<double>(nodes));
  std::printf("table hash:          %s\n", table_hash.ToHex().c_str());
  std::printf("database hash:       %s\n", db_hash.ToHex().c_str());
  std::printf(
      "\nshape check: memory stays O(1) in the table size (one row at a\n"
      "time), and per-node cost is within an order of magnitude of the\n"
      "in-memory per-node cost reported by bench_fig6_hashing.\n");
  return 0;
}

}  // namespace
}  // namespace provdb::bench

int main(int argc, char** argv) {
  return provdb::bench::BenchMain(argc, argv, provdb::bench::Run);
}
