// Re-derives Figure 3: the worked non-linear provenance example with
// integrity checksums (objects A, B, C, D; checksums C1..C7), printed in
// the paper's tabular form, then runs the data recipient's verification
// procedure over D's bundle.

#include <map>

#include "bench_common.h"
#include "provenance/tracked_database.h"
#include "provenance/verifier.h"

namespace provdb::bench {
namespace {

using provenance::OperationType;
using provenance::ProvenanceRecord;
using storage::Value;

int Run() {
  PrintHeader("Figure 3 — non-linear provenance with integrity checksums",
              "Fig. 2/3, §3, Example 2/3");

  Rng rng(0xF16);
  auto ca = crypto::CertificateAuthority::Create(1024, &rng).value();
  auto p1 = crypto::Participant::Create(1, "p1", 1024, &rng, ca).value();
  auto p2 = crypto::Participant::Create(2, "p2", 1024, &rng, ca).value();
  auto p3 = crypto::Participant::Create(3, "p3", 1024, &rng, ca).value();
  crypto::ParticipantRegistry registry(ca.public_key());
  OrAbort(registry.Register(p1.certificate()));
  OrAbort(registry.Register(p2.certificate()));
  OrAbort(registry.Register(p3.certificate()));

  provenance::TrackedDatabase db;
  auto a = *db.Insert(p2, Value::String("a1"));                  // C1
  auto b = *db.Insert(p2, Value::String("b1"));                  // C2
  db.Update(p2, b, Value::String("b2")).ok();                    // C4
  auto c = *db.Aggregate(p3, {a, b}, Value::String("c1"));       // C6
  db.Update(p1, a, Value::String("a2")).ok();                    // C3
  db.Update(p2, a, Value::String("a3")).ok();                    // C5
  auto d = *db.Aggregate(p1, {a, c}, Value::String("d1"));       // C7

  std::map<storage::ObjectId, const char*> names = {
      {a, "A"}, {b, "B"}, {c, "C"}, {d, "D"}};

  std::printf("\n%-6s %-12s %-16s %-8s %s\n", "seqID", "participant",
              "input", "output", "checksum (first 16 hex)");
  auto bundle = db.ExportForRecipient(d).value();
  for (const ProvenanceRecord& rec : bundle.records) {
    std::string inputs = "{";
    for (size_t i = 0; i < rec.inputs.size(); ++i) {
      if (i > 0) inputs += ",";
      inputs += names.count(rec.inputs[i].object_id)
                    ? names[rec.inputs[i].object_id]
                    : "?";
    }
    inputs += "}";
    std::string checksum_hex;
    for (int i = 0; i < 8; ++i) {
      char hex[3];
      std::snprintf(hex, sizeof(hex), "%02x", rec.checksum[i]);
      checksum_hex += hex;
    }
    std::printf("%-6llu p%-11llu %-16s %-8s %s... (%s)\n",
                static_cast<unsigned long long>(rec.seq_id),
                static_cast<unsigned long long>(rec.participant),
                inputs.c_str(), names[rec.output.object_id],
                checksum_hex.c_str(),
                std::string(OperationTypeName(rec.op)).c_str());
  }

  provenance::ProvenanceVerifier verifier(&registry);
  auto report = verifier.Verify(bundle);
  std::printf("\nrecipient verification of D: %s\n",
              report.ToString().c_str());
  std::printf("(7 records = Fig. 3's C1..C7; both recipient checks of §3 "
              "executed)\n");
  return report.ok() ? 0 : 1;
}

}  // namespace
}  // namespace provdb::bench

int main() { return provdb::bench::BenchMain(provdb::bench::Run); }
