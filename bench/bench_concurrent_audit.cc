// Snapshot-read overhead on the ingest write path (DESIGN.md §16): the
// same pre-generated request stream replayed through the IngestPipeline
// with 0, 1, and 4 concurrent auditors, each continuously opening
// epoch-pinned snapshots and running the full check-2 verification pass
// over the cut. Snapshots never take the pipeline lock, so the only cost
// an auditor can impose on the writer is deferred reclamation plus CPU
// contention — the design's claim is that one auditor costs the writer
// less than 10% of its throughput, which this harness gates (on machines
// with at least 2 hardware threads; on a single core writer and auditor
// trivially timeshare and the gate says nothing about the design).
//
// The stream is inserts + updates only: aggregate input resolution is
// orthogonal to the snapshot mechanism and would only add noise to the
// ratio under test. Every configuration must still pass the full
// cross-shard verify afterwards — a throughput number for a store that
// fails verification is worthless.

#include <atomic>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/thread_pool.h"
#include "provenance/ingest_pipeline.h"
#include "provenance/verifier.h"
#include "storage/env.h"

namespace provdb::bench {
namespace {

using provenance::IngestOptions;
using provenance::IngestPipeline;
using provenance::IngestRequest;
using provenance::ObjectState;
using provenance::OperationType;
using provenance::ProvenanceVerifier;
using provenance::VerificationReport;
using storage::Env;
using storage::ObjectId;

crypto::Digest RandomDigest(Rng* rng) {
  Bytes bytes;
  rng->NextBytes(&bytes, 20);
  return crypto::Digest::FromBytes(bytes);
}

/// ~40% inserts / 60% updates over a growing object population, with the
/// per-object last state threaded through so updates carry a plausible
/// pre hash. The pipeline signs during the timed run.
std::vector<IngestRequest> GenerateStream(size_t ops,
                                          const crypto::Participant* p,
                                          Rng* rng) {
  std::vector<IngestRequest> requests;
  std::vector<ObjectId> objects;
  std::vector<crypto::Digest> last_hash;
  ObjectId next_id = 1;
  for (size_t i = 0; i < ops; ++i) {
    IngestRequest request;
    request.participant = p;
    if (objects.empty() || rng->NextDouble() < 0.40) {
      request.op = OperationType::kInsert;
      request.object = next_id++;
      request.post_hash = RandomDigest(rng);
      objects.push_back(request.object);
      last_hash.push_back(request.post_hash);
    } else {
      size_t pick = rng->NextBelow(objects.size());
      request.op = OperationType::kUpdate;
      request.object = objects[pick];
      request.has_pre_hash = true;
      request.pre_hash = last_hash[pick];
      request.post_hash = RandomDigest(rng);
      last_hash[pick] = request.post_hash;
    }
    requests.push_back(std::move(request));
  }
  return requests;
}

void CleanRoot(Env* env, const std::string& root) {
  auto entries = env->ListDir(root);
  if (!entries.ok()) return;
  for (const std::string& entry : *entries) {
    std::string dir = root + "/" + entry;
    auto files = env->ListDir(dir);
    if (!files.ok()) continue;
    for (const std::string& f : *files) OrAbort(env->RemoveFile(dir + "/" + f));
  }
}

struct ConfigResult {
  double seconds = 0;       // best-of-reps writer wall time
  uint64_t audits = 0;      // snapshot verify passes completed (last rep)
  uint64_t cut_issues = 0;  // non-clean audit reports seen (must be 0)
};

ConfigResult RunConfig(Env* env, const std::string& root,
                       const std::vector<IngestRequest>& requests,
                       const crypto::ParticipantRegistry& registry,
                       size_t num_auditors, int reps) {
  ConfigResult best;
  for (int rep = 0; rep < reps; ++rep) {
    CleanRoot(env, root);
    IngestOptions options;
    options.num_shards = 2;
    options.max_batch_records = 64;
    auto pipeline = IngestPipeline::Open(env, root, options);
    OrAbort(pipeline.status());

    std::atomic<bool> done{false};
    std::atomic<uint64_t> audits{0};
    std::atomic<uint64_t> issues{0};
    std::unique_ptr<ThreadPool> pool;
    std::vector<std::future<void>> auditors;
    if (num_auditors > 0) {
      pool = std::make_unique<ThreadPool>(num_auditors);
      IngestPipeline* live = pipeline->get();
      for (size_t a = 0; a < num_auditors; ++a) {
        auditors.push_back(pool->Submit([live, &registry, &done, &audits,
                                         &issues] {
          ProvenanceVerifier verifier(&registry);
          while (!done.load(std::memory_order_acquire)) {
            provenance::StoreSnapshot snapshot = live->OpenSnapshot();
            VerificationReport report = verifier.VerifyStore(snapshot);
            // Insert/update-only stream: every batch-boundary cut must
            // verify completely clean.
            if (!report.ok()) issues.fetch_add(1, std::memory_order_relaxed);
            audits.fetch_add(1, std::memory_order_relaxed);
          }
        }));
      }
    }

    Stopwatch watch;
    for (const IngestRequest& request : requests) {
      OrAbort((*pipeline)->Submit(request));
    }
    OrAbort((*pipeline)->Drain());
    const double seconds = watch.ElapsedSeconds();
    done.store(true, std::memory_order_release);
    for (std::future<void>& f : auditors) f.get();
    OrAbort((*pipeline)->Close());

    auto report = (*pipeline)->store().VerifyChains(registry);
    if (!report.ok()) {
      std::fprintf(stderr, "FATAL: %zu auditors: final verify rejected: %s\n",
                   num_auditors, report.ToString().c_str());
      std::abort();
    }
    if (rep == 0 || seconds < best.seconds) best.seconds = seconds;
    best.audits = audits.load();
    best.cut_issues += issues.load();
  }
  return best;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t ops = static_cast<size_t>(flags.GetInt("ops", 2000));
  const int reps = static_cast<int>(flags.GetInt("reps", 3));
  const size_t rsa_bits = static_cast<size_t>(flags.GetInt("rsa_bits", 512));
  const std::string root =
      flags.GetString("dir", "/tmp/provdb_bench_concurrent_audit");

  PrintHeader("Ingest throughput vs concurrent snapshot auditors",
              "DESIGN.md §16 (no paper figure; the paper audits offline)");

  BenchPki pki = BenchPki::Create(rsa_bits);
  Rng rng(0xCA0DB575);
  std::vector<IngestRequest> requests =
      GenerateStream(ops, pki.participant.get(), &rng);
  std::printf("%zu mixed insert/update ops, 2 shards, batch 64, RSA-%zu, "
              "best of %d reps\n\n",
              ops, rsa_bits, reps);

  Env* env = Env::Default();
  std::printf("%9s %10s %12s %14s %10s\n", "auditors", "seconds",
              "records/s", "audit passes", "overhead");
  double baseline_seconds = 0;
  double one_auditor_seconds = 0;
  uint64_t total_cut_issues = 0;
  for (size_t auditors : {0u, 1u, 4u}) {
    ConfigResult result =
        RunConfig(env, root, requests, *pki.registry, auditors, reps);
    if (auditors == 0) baseline_seconds = result.seconds;
    if (auditors == 1) one_auditor_seconds = result.seconds;
    total_cut_issues += result.cut_issues;
    std::printf("%9zu %10.3f %12.0f %14llu %9.1f%%\n", auditors,
                result.seconds,
                static_cast<double>(requests.size()) / result.seconds,
                static_cast<unsigned long long>(result.audits),
                (result.seconds / baseline_seconds - 1.0) * 100.0);
  }
  CleanRoot(env, root);

  if (total_cut_issues > 0) {
    std::printf("\nFAIL: %llu snapshot cuts did not verify clean\n",
                static_cast<unsigned long long>(total_cut_issues));
    return 1;
  }

  std::printf(
      "\nshape check: snapshots take no pipeline lock, so auditors cost the\n"
      "writer only CPU contention and deferred reclamation; every cut an\n"
      "auditor verified was a clean durable batch prefix.\n");

  const double degradation =
      one_auditor_seconds / baseline_seconds - 1.0;
  const int cores = ParallelismConfig::Hardware().num_threads;
  if (cores < 2) {
    std::printf("degradation check: single hardware thread — writer and\n"
                "auditor timeshare one core, ratio is meaningless -> SKIP\n");
    return 0;
  }
  const bool pass = degradation < 0.10;
  std::printf("degradation check (1 auditor < 10%% over 0 auditors, "
              "%d cores): %.1f%% -> %s\n",
              cores, degradation * 100.0, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace provdb::bench

int main(int argc, char** argv) {
  return provdb::bench::BenchMain(argc, argv, provdb::bench::Run);
}
