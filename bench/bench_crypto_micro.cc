// Micro-benchmarks (google-benchmark) of the cryptographic primitives
// behind every checksum (§2.3/§5.1): hash throughput for the three
// algorithms, HMAC, RSA sign/verify at several key sizes, per-node tree
// hashing, and the end-to-end cost of producing one checksum.

#include <cstdio>
#include <cstring>

#include <benchmark/benchmark.h>

#include "bench_common.h"

#include "common/rng.h"
#include "crypto/bignum.h"
#include "crypto/bignum_kernels.h"
#include "crypto/hash.h"
#include "crypto/hmac.h"
#include "crypto/rsa.h"
#include "crypto/signer.h"
#include "provenance/checksum.h"
#include "provenance/subtree_hasher.h"
#include "storage/value.h"

namespace provdb::bench {
namespace {

using crypto::HashAlgorithm;

Bytes MakePayload(size_t size) {
  Rng rng(size);
  Bytes out;
  rng.NextBytes(&out, size);
  return out;
}

void BM_Hash(benchmark::State& state, HashAlgorithm alg) {
  Bytes payload = MakePayload(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::HashBytes(alg, payload));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK_CAPTURE(BM_Hash, sha1, HashAlgorithm::kSha1)
    ->Arg(64)->Arg(1024)->Arg(65536);
BENCHMARK_CAPTURE(BM_Hash, sha256, HashAlgorithm::kSha256)
    ->Arg(64)->Arg(1024)->Arg(65536);
BENCHMARK_CAPTURE(BM_Hash, md5, HashAlgorithm::kMd5)
    ->Arg(64)->Arg(1024)->Arg(65536);

void BM_Hmac(benchmark::State& state) {
  Bytes key = MakePayload(20);
  Bytes payload = MakePayload(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::HmacCompute(HashAlgorithm::kSha1, key, payload));
  }
}
BENCHMARK(BM_Hmac)->Arg(64)->Arg(1024);

const crypto::RsaKeyPair& KeyPair(size_t bits) {
  static std::map<size_t, crypto::RsaKeyPair>* pairs =
      new std::map<size_t, crypto::RsaKeyPair>();
  auto it = pairs->find(bits);
  if (it == pairs->end()) {
    Rng rng(bits);
    it = pairs->emplace(bits, crypto::GenerateRsaKeyPair(bits, &rng).value())
             .first;
  }
  return it->second;
}

void BM_RsaSign(benchmark::State& state) {
  const auto& pair = KeyPair(static_cast<size_t>(state.range(0)));
  auto signer = crypto::RsaSigner::Create(pair.private_key).value();
  Bytes payload = MakePayload(168);  // typical update-checksum payload
  for (auto _ : state) {
    benchmark::DoNotOptimize(signer.Sign(payload));
  }
}
BENCHMARK(BM_RsaSign)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMicrosecond);

void BM_RsaVerify(benchmark::State& state) {
  const auto& pair = KeyPair(static_cast<size_t>(state.range(0)));
  auto signer = crypto::RsaSigner::Create(pair.private_key).value();
  Bytes payload = MakePayload(168);
  Bytes signature = signer.Sign(payload).value();
  crypto::RsaSignatureVerifier verifier(pair.public_key);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.Verify(payload, signature));
  }
}
BENCHMARK(BM_RsaVerify)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMicrosecond);

// Per-kernel ladder cost on a CRT-half-shaped problem: `bits`-bit odd
// modulus, `bits`-bit exponent — the shape RSA signing actually runs.
// Kernel A/B without touching the global selection (docs/CRYPTO.md).
void BM_ModExp(benchmark::State& state, crypto::ModExpKernel kernel) {
  const size_t bits = static_cast<size_t>(state.range(0));
  Rng rng(bits);
  Bytes raw;
  rng.NextBytes(&raw, bits / 8);
  crypto::BigUInt m = crypto::BigUInt::FromBytesBigEndian(raw);
  if (!m.IsOdd()) m = crypto::BigUInt::Add(m, crypto::BigUInt(1));
  auto ctx = crypto::MontgomeryContext::Create(m).value();
  rng.NextBytes(&raw, bits / 8);
  crypto::BigUInt base = crypto::BigUInt::FromBytesBigEndian(raw);
  rng.NextBytes(&raw, bits / 8);
  crypto::BigUInt exp = crypto::BigUInt::FromBytesBigEndian(raw);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.ModExpWithKernel(base, exp, kernel));
  }
}
BENCHMARK_CAPTURE(BM_ModExp, binary, crypto::ModExpKernel::kBinary)
    ->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_ModExp, window4, crypto::ModExpKernel::kWindow4)
    ->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_ModExp, window5, crypto::ModExpKernel::kWindow5)
    ->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

// Per-kernel full-width multiply at Karatsuba-relevant sizes (the sign
// path never calls this — keygen, verify padding, and DivMod do).
void BM_BigMul(benchmark::State& state, crypto::MulKernel kernel) {
  const size_t bytes = static_cast<size_t>(state.range(0));
  Rng rng(bytes);
  Bytes raw;
  rng.NextBytes(&raw, bytes);
  crypto::BigUInt a = crypto::BigUInt::FromBytesBigEndian(raw);
  rng.NextBytes(&raw, bytes);
  crypto::BigUInt b = crypto::BigUInt::FromBytesBigEndian(raw);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::BigUInt::MulWithKernel(a, b, kernel));
  }
}
BENCHMARK_CAPTURE(BM_BigMul, schoolbook, crypto::MulKernel::kSchoolbook)
    ->Arg(64)->Arg(128)->Arg(256)->Arg(1024);
BENCHMARK_CAPTURE(BM_BigMul, karatsuba, crypto::MulKernel::kKaratsuba)
    ->Arg(64)->Arg(128)->Arg(256)->Arg(1024);

void BM_HmacSignerAblation(benchmark::State& state) {
  // The symmetric alternative: ~3 orders of magnitude faster than RSA but
  // forfeits non-repudiation (R8).
  crypto::HmacSigner signer(MakePayload(32));
  Bytes payload = MakePayload(168);
  for (auto _ : state) {
    benchmark::DoNotOptimize(signer.Sign(payload));
  }
}
BENCHMARK(BM_HmacSignerAblation);

void BM_NodeHash(benchmark::State& state) {
  // One tree-node hash: the unit of Figures 6/7 and the streaming bench.
  storage::Value value = storage::Value::Int(123456);
  std::vector<crypto::Digest> children(
      static_cast<size_t>(state.range(0)),
      crypto::HashBytes(HashAlgorithm::kSha1, MakePayload(8)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(provenance::HashTreeNode(
        HashAlgorithm::kSha1, 42, value, children));
  }
}
BENCHMARK(BM_NodeHash)->Arg(0)->Arg(8)->Arg(64);

void BM_ChecksumEndToEnd(benchmark::State& state) {
  // Full cost of one update checksum: payload build + RSA-1024 signature.
  const auto& pair = KeyPair(1024);
  auto signer = crypto::RsaSigner::Create(pair.private_key).value();
  provenance::ChecksumEngine engine;
  crypto::Digest in = crypto::HashBytes(HashAlgorithm::kSha1, MakePayload(8));
  crypto::Digest out =
      crypto::HashBytes(HashAlgorithm::kSha1, MakePayload(9));
  Bytes prev = MakePayload(128);
  for (auto _ : state) {
    Bytes payload = engine.BuildUpdatePayload(in, out, prev);
    benchmark::DoNotOptimize(engine.SignPayload(signer, payload));
  }
}
BENCHMARK(BM_ChecksumEndToEnd)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace provdb::bench

// BENCHMARK_MAIN() expanded so the run can end with the standard
// provdb metrics footer (the checksum/hashing micro-benches record into
// the global registry like everything else), and so --kernel= can pin
// the bignum kernel set for the whole run (same spec grammar as
// PROVDB_BIGNUM_KERNEL; see docs/CRYPTO.md and docs/BENCHMARKS.md).
int main(int argc, char** argv) {
  provdb::observability::InitTraceFromEnv();
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    constexpr const char* kFlag = "--kernel=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      const char* spec = argv[i] + std::strlen(kFlag);
      auto parsed = provdb::crypto::ParseBigNumKernelSpec(spec);
      if (!parsed.ok()) {
        std::fprintf(stderr, "bad --kernel= spec \"%s\": %s\n", spec,
                     parsed.status().message().c_str());
        return 1;
      }
      provdb::crypto::ForceBigNumKernels(parsed.value());
      continue;  // consumed: don't hand it to google-benchmark
    }
    argv[out++] = argv[i];
  }
  argc = out;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  provdb::bench::EmitMetricsSnapshot();
  return 0;
}
