// Ablation: cost of Merkle inclusion proofs over the compound-object hash
// (§4.3 extension). Measures proof size, build time, and verification
// time for one cell as the table width (rows) grows — proof size is
// dominated by the table node's fan-out, verification stays sublinear in
// the database size.

#include "bench_common.h"
#include "provenance/merkle_proof.h"
#include "provenance/subtree_hasher.h"
#include "workload/synthetic.h"

namespace provdb::bench {
namespace {

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const int runs = static_cast<int>(flags.GetInt("runs", 20));

  PrintHeader("Merkle inclusion proofs over compound objects",
              "§4.3 extension (no paper figure)");
  std::printf("proving one cell of an 8-attribute table, varying rows; "
              "runs: %d\n\n",
              runs);

  std::printf("%-8s %-10s %-12s %-12s %-22s %-22s\n", "rows", "nodes",
              "proof (B)", "siblings", "build (ms, 95% CI)",
              "verify (ms, 95% CI)");

  for (int rows : {100, 500, 1000, 2000, 4000}) {
    storage::TreeStore tree;
    Rng rng(9);
    auto layout =
        workload::BuildSyntheticDatabase(&tree, {{8, rows}}, &rng);
    if (!layout.ok()) return 1;
    provenance::SubtreeHasher hasher(&tree);
    crypto::Digest root_hash =
        hasher.HashSubtreeBasic(layout->root).value();

    storage::ObjectId row = layout->tables[0].rows[rows / 2];
    storage::ObjectId cell = workload::CellIdOf(tree, row, 3).value();

    RunningStats build_stats, verify_stats;
    size_t proof_bytes = 0, siblings = 0;
    for (int r = 0; r < runs; ++r) {
      Stopwatch watch;
      auto proof = provenance::BuildInclusionProof(
          tree, cell, layout->root, crypto::HashAlgorithm::kSha1);
      build_stats.Add(watch.ElapsedSeconds());
      if (!proof.ok()) return 1;
      proof_bytes = proof->Serialize().size();
      siblings = proof->SiblingCount();

      watch.Restart();
      Status ok = provenance::VerifyInclusionProof(
          *proof, root_hash, crypto::HashAlgorithm::kSha1);
      verify_stats.Add(watch.ElapsedSeconds());
      if (!ok.ok()) return 1;
    }
    std::printf("%-8d %-10zu %-12zu %-12zu %-22s %-22s\n", rows, tree.size(),
                proof_bytes, siblings, FormatMs(build_stats).c_str(),
                FormatMs(verify_stats).c_str());
  }

  std::printf(
      "\nshape check: verification cost is O(path + fan-out) — far below\n"
      "re-hashing the whole database; proof size grows with the table's\n"
      "row fan-out (the depth-4 relational tree is wide, not deep).\n"
      "note: proof *construction* by the data owner walks the subtree\n"
      "(siblings' hashes), so build time tracks database size; owners\n"
      "amortize it with the economical cache.\n");
  return 0;
}

}  // namespace
}  // namespace provdb::bench

int main(int argc, char** argv) {
  return provdb::bench::BenchMain(argc, argv, provdb::bench::Run);
}
