// Parallel verification & audit (§3.2): the paper's checksum chains are
// per-object and local precisely so that "chains can be verified in
// parallel". This harness measures that claim on the Table-1 synthetic
// databases: chain verification (check 2), the store-wide audit, and the
// parallel basic subtree hash, each at 1/2/4/8 threads against the
// sequential baseline — asserting along the way that every parallel
// report/digest is identical to the sequential one.
//
// Flags:
//   --dataset=N    cumulative Table-1 combination 1..4 (default 4, largest)
//   --updates=N    tracked cell updates seeding the chains (default 400)
//   --runs=N       timed repetitions per configuration (default 5)
//   --rsa-bits=N   participant key size (default 1024, paper-faithful)

#include <map>
#include <vector>

#include "bench_common.h"
#include "common/thread_pool.h"
#include "provenance/auditor.h"
#include "provenance/subtree_hasher.h"
#include "provenance/tracked_database.h"
#include "provenance/verifier.h"
#include "workload/synthetic.h"

namespace provdb::bench {
namespace {

using provenance::ProvenanceRecord;
using storage::ObjectId;

struct TimedResult {
  RunningStats stats;
  std::string report;  // rendering of the last run's outcome
};

void PrintRow(int threads, const TimedResult& result, double baseline_mean) {
  std::printf("  %7d %s   %5.2fx\n", threads, FormatMs(result.stats).c_str(),
              result.stats.mean() > 0 ? baseline_mean / result.stats.mean()
                                      : 0.0);
}

int Run(const Flags& flags) {
  const int dataset = static_cast<int>(flags.GetInt("dataset", 4));
  const size_t updates = static_cast<size_t>(flags.GetInt("updates", 400));
  const int runs = static_cast<int>(flags.GetInt("runs", 5));
  const size_t rsa_bits = static_cast<size_t>(flags.GetInt("rsa-bits", 1024));
  const std::vector<int> thread_counts = {1, 2, 4, 8};

  PrintHeader("Parallel chain verification & audit",
              "§3.2 (local chains verify in parallel), Table 1 datasets");

  // -- Setup: tracked Table-1 database with per-cell update chains -------
  const auto& all_specs = workload::PaperTableSpecs();
  if (dataset < 1 || static_cast<size_t>(dataset) > all_specs.size()) {
    std::fprintf(stderr, "--dataset must be in 1..%zu (got %d)\n",
                 all_specs.size(), dataset);
    return 1;
  }
  BenchPki pki = BenchPki::Create(rsa_bits);
  provenance::TrackedDatabase db;
  std::vector<workload::SyntheticTableSpec> specs(
      all_specs.begin(), all_specs.begin() + dataset);
  Rng rng(7);
  auto layout = workload::BuildSyntheticDatabase(&db.bootstrap_tree(), specs,
                                                 &rng);
  if (!layout.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 layout.status().ToString().c_str());
    return 1;
  }

  std::printf("\ndataset: tables 1..%zu (%zu nodes), %zu cell updates, "
              "RSA-%zu\n",
              specs.size(), db.tree().size(), updates, rsa_bits);
  Stopwatch setup;
  for (size_t u = 0; u < updates; ++u) {
    // Round-robin across tables and rows so chains spread over the whole
    // database (distinct cells -> independent per-object chains).
    const auto& table = layout->tables[u % layout->tables.size()];
    ObjectId row = table.rows[(u / layout->tables.size()) % table.rows.size()];
    size_t column = u % static_cast<size_t>(table.num_attributes);
    auto cell = workload::CellIdOf(db.tree(), row, column);
    if (!cell.ok()) {
      std::fprintf(stderr, "cell lookup failed: %s\n",
                   cell.status().ToString().c_str());
      return 1;
    }
    Status updated = db.Update(*pki.participant, *cell,
                               storage::Value::Int(static_cast<int64_t>(u)));
    if (!updated.ok()) {
      std::fprintf(stderr, "update failed: %s\n", updated.ToString().c_str());
      return 1;
    }
  }
  std::printf("seeded %llu records in %.1fs\n",
              static_cast<unsigned long long>(db.provenance().record_count()),
              setup.ElapsedSeconds());

  // Per-object chains, exactly as the auditor groups them.
  std::map<ObjectId, std::vector<const ProvenanceRecord*>> chains;
  for (uint64_t i = 0; i < db.provenance().record_count(); ++i) {
    const ProvenanceRecord& rec = db.provenance().record(i);
    chains[rec.output.object_id].push_back(&rec);
  }
  std::printf("%zu independent chains\n", chains.size());
  const provenance::ChecksumEngine engine;

  // -- (a) Chain verification (check 2 only) -----------------------------
  std::printf("\n(a) chain verification, %d runs        mean +- ci95 (ms)  "
              "speedup\n", runs);
  std::string chain_baseline;
  double chain_baseline_mean = 0;
  for (int threads : thread_counts) {
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
    TimedResult result;
    for (int r = 0; r < runs; ++r) {
      provenance::VerificationReport report;
      Stopwatch timer;
      VerifyRecordChains(*pki.registry, engine, chains, &report, pool.get());
      result.stats.Add(timer.ElapsedSeconds());
      result.report = report.ToString();
    }
    if (threads == 1) {
      chain_baseline = result.report;
      chain_baseline_mean = result.stats.mean();
    } else if (result.report != chain_baseline) {
      std::fprintf(stderr, "FAIL: %d-thread report differs from sequential\n",
                   threads);
      return 1;
    }
    PrintRow(threads, result, chain_baseline_mean);
  }

  // -- (b) Store-wide audit (check 2 + in-place check 1) -----------------
  std::printf("\n(b) store audit, %d runs               mean +- ci95 (ms)  "
              "speedup\n", runs);
  std::string audit_baseline;
  double audit_baseline_mean = 0;
  for (int threads : thread_counts) {
    provenance::StoreAuditor auditor(pki.registry.get(),
                                     crypto::HashAlgorithm::kSha1,
                                     ParallelismConfig{threads});
    TimedResult result;
    for (int r = 0; r < runs; ++r) {
      Stopwatch timer;
      provenance::VerificationReport report =
          auditor.Audit(db.provenance(), db.tree());
      result.stats.Add(timer.ElapsedSeconds());
      result.report = report.ToString();
    }
    if (threads == 1) {
      audit_baseline = result.report;
      audit_baseline_mean = result.stats.mean();
    } else if (result.report != audit_baseline) {
      std::fprintf(stderr, "FAIL: %d-thread audit differs from sequential\n",
                   threads);
      return 1;
    }
    PrintRow(threads, result, audit_baseline_mean);
  }
  std::printf("  audit outcome: %s\n", audit_baseline.c_str());

  // -- (c) Parallel basic subtree hash (fan-out over children) -----------
  // The largest table has thousands of row children — the embarrassingly
  // parallel case; the database root has only `dataset` table children.
  const auto& big_table = layout->tables.front();
  provenance::SubtreeHasher hasher(&db.tree());
  std::printf("\n(c) basic hash of table subtree, %d runs  mean +- ci95 (ms) "
              " speedup\n", runs);
  crypto::Digest hash_baseline;
  double hash_baseline_mean = 0;
  for (int threads : thread_counts) {
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
    TimedResult result;
    crypto::Digest digest;
    for (int r = 0; r < runs; ++r) {
      Stopwatch timer;
      auto hashed = hasher.HashSubtreeBasic(big_table.table_id, pool.get());
      result.stats.Add(timer.ElapsedSeconds());
      if (!hashed.ok()) {
        std::fprintf(stderr, "hash failed: %s\n",
                     hashed.status().ToString().c_str());
        return 1;
      }
      digest = *hashed;
    }
    if (threads == 1) {
      hash_baseline = digest;
      hash_baseline_mean = result.stats.mean();
    } else if (!(digest == hash_baseline)) {
      std::fprintf(stderr, "FAIL: %d-thread digest differs from sequential\n",
                   threads);
      return 1;
    }
    PrintRow(threads, result, hash_baseline_mean);
  }

  std::printf("\nAll parallel reports and digests are identical to the "
              "sequential baselines.\n");
  return 0;
}

}  // namespace
}  // namespace provdb::bench

int main(int argc, char** argv) {
  provdb::observability::InitTraceFromEnv();
  provdb::bench::Flags flags(argc, argv);
  int rc = provdb::bench::Run(flags);
  provdb::bench::EmitMetricsSnapshot();
  return rc;
}
