// Ablation: the paper fixes SHA-1 ("SHA", §5.1) but names MD5 as the
// other candidate (§2.3); SHA-256 is the modern choice. This harness
// re-runs the Figure 6 whole-database hashing measurement under all three
// algorithms and reports the projected per-checksum cost difference.

#include "bench_common.h"
#include "provenance/subtree_hasher.h"
#include "storage/tree_store.h"
#include "workload/synthetic.h"

namespace provdb::bench {
namespace {

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const int runs = static_cast<int>(flags.GetInt("runs", 10));

  PrintHeader("Hash-algorithm ablation for database hashing",
              "§2.3 / §5.1 design choice (no paper figure)");
  std::printf("whole-database hash of table 1 (36002 nodes); runs: %d\n\n",
              runs);

  storage::TreeStore tree;
  Rng rng(7);
  auto layout = workload::BuildSyntheticDatabase(
      &tree, {workload::PaperTableSpecs()[0]}, &rng);
  if (!layout.ok()) return 1;

  std::printf("%-10s %-8s %-22s %-14s\n", "algorithm", "digest",
              "hash time (ms, 95% CI)", "us per node");
  double sha1_mean = 0;
  for (crypto::HashAlgorithm alg :
       {crypto::HashAlgorithm::kSha1, crypto::HashAlgorithm::kSha256,
        crypto::HashAlgorithm::kMd5}) {
    provenance::SubtreeHasher hasher(&tree, alg);
    RunningStats stats;
    for (int r = 0; r < runs; ++r) {
      Stopwatch watch;
      hasher.HashSubtreeBasic(layout->root).value();
      stats.Add(watch.ElapsedSeconds());
    }
    if (alg == crypto::HashAlgorithm::kSha1) sha1_mean = stats.mean();
    std::printf("%-10s %-8zu %-22s %-14.4f\n",
                std::string(crypto::HashAlgorithmName(alg)).c_str(),
                crypto::HashDigestSize(alg), FormatMs(stats).c_str(),
                stats.mean() * 1e6 / static_cast<double>(tree.size()));
  }

  std::printf(
      "\nnote: node preimages are tens of bytes, so per-hash setup cost\n"
      "dominates over throughput; all three algorithms land within ~2x of\n"
      "the paper's SHA-1 configuration (%.1f ms). Checksum *generation*\n"
      "cost is dominated by the RSA signature either way (see\n"
      "bench_crypto_micro), so the hash choice is a security decision,\n"
      "not a performance one.\n",
      sha1_mean * 1e3);
  return 0;
}

}  // namespace
}  // namespace provdb::bench

int main(int argc, char** argv) {
  return provdb::bench::BenchMain(argc, argv, provdb::bench::Run);
}
