// Network provenance service throughput: the full wire path (frame
// decode, admission, executor validation, pipeline group commit, framed
// response) under a skewed multi-client workload, at 1 / 8 / 64 / 512
// simulated clients.
//
// Each phase boots a fresh pipeline + server on an ephemeral loopback
// port, resets the metrics registry, and drives a fixed total request
// budget split evenly across that phase's clients (so every phase does
// comparable work and the axis is concurrency, not volume). Clients obey
// the load generator's chain discipline — disjoint object slices, Zipf
// skew inside each slice, at most one in-flight request per object — so
// after the run every accepted record must belong to a perfectly linked,
// signature-valid chain. The phase gate enforces exactly that: the
// post-run cross-shard VerifyChains pass must be clean AND account for
// every accepted submit (accepted == records checked). Sustained
// records/sec comes from the load report; p50/p95/p99 come from the
// server's own `server.request.latency` histogram, i.e. arrival at the
// poll thread to durable-and-acked on the executor.

#include <string>
#include <vector>

#include "common/thread_pool.h"

#include "bench_common.h"
#include "net/server.h"
#include "provenance/ingest_pipeline.h"
#include "storage/env.h"
#include "workload/load_generator.h"

namespace provdb::bench {
namespace {

using provenance::IngestOptions;
using provenance::IngestPipeline;
using storage::Env;

/// CA + `n` participants (ids 1..n) so submits exercise multi-signer
/// chains the way a real deployment would.
struct ServerPki {
  std::unique_ptr<crypto::CertificateAuthority> ca;
  std::vector<std::unique_ptr<crypto::Participant>> participants;
  std::unique_ptr<crypto::ParticipantRegistry> registry;

  static ServerPki Create(size_t n, size_t rsa_bits) {
    Rng rng(0x5E17E5);
    ServerPki pki;
    pki.ca = std::make_unique<crypto::CertificateAuthority>(
        crypto::CertificateAuthority::Create(rsa_bits, &rng).value());
    pki.registry =
        std::make_unique<crypto::ParticipantRegistry>(pki.ca->public_key());
    for (size_t i = 1; i <= n; ++i) {
      pki.participants.push_back(std::make_unique<crypto::Participant>(
          crypto::Participant::Create(i, "client-" + std::to_string(i),
                                      rsa_bits, &rng, *pki.ca)
              .value()));
      OrAbort(pki.registry->Register(pki.participants.back()->certificate()));
    }
    return pki;
  }
};

void CleanRoot(Env* env, const std::string& root) {
  auto entries = env->ListDir(root);
  if (!entries.ok()) return;
  for (const std::string& entry : *entries) {
    std::string dir = root + "/" + entry;
    auto files = env->ListDir(dir);
    if (!files.ok()) continue;
    for (const std::string& f : *files) OrAbort(env->RemoveFile(dir + "/" + f));
  }
}

struct PhaseResult {
  workload::LoadReport load;
  double p50 = 0, p95 = 0, p99 = 0;
  uint64_t records_checked = 0;
  uint64_t issues = 0;
  bool verify_ok = false;

  bool pass() const {
    return verify_ok && load.failed == 0 &&
           records_checked == load.accepted;
  }
};

Result<PhaseResult> RunPhase(Env* env, const std::string& root,
                             const ServerPki& pki, size_t clients,
                             uint64_t requests_per_client, size_t shards) {
  CleanRoot(env, root);

  IngestOptions ingest;
  ingest.num_shards = shards;
  ingest.signing = ParallelismConfig::Hardware();
  PROVDB_ASSIGN_OR_RETURN(std::unique_ptr<IngestPipeline> pipeline,
                          IngestPipeline::Open(env, root, ingest));

  observability::GlobalMetrics().Reset();

  std::map<crypto::ParticipantId, const crypto::Participant*> participants;
  workload::LoadOptions load;
  for (const auto& p : pki.participants) {
    participants[p->certificate().participant_id] = p.get();
    load.participant_ids.push_back(p->certificate().participant_id);
  }
  PROVDB_ASSIGN_OR_RETURN(
      std::unique_ptr<net::ProvenanceServer> server,
      net::ProvenanceServer::Start(pipeline.get(), pki.registry.get(),
                                   std::move(participants),
                                   net::ServerOptions{}));

  load.port = server->port();
  load.num_clients = clients;
  load.requests_per_client = requests_per_client;

  PhaseResult result;
  PROVDB_ASSIGN_OR_RETURN(result.load, workload::RunLoad(load));

  // Latency percentiles from the server's own histogram, read before the
  // server stops (nothing records after the last response is acked).
  for (const auto& h : observability::GlobalMetrics().Snapshot().histograms) {
    if (h.name == "server.request.latency") {
      result.p50 = h.p50_micros;
      result.p95 = h.p95_micros;
      result.p99 = h.p99_micros;
    }
  }

  server->Stop();
  server.reset();
  PROVDB_RETURN_IF_ERROR(pipeline->Drain());

  // The gate: a throughput number for a store that fails verification —
  // or that silently dropped accepted records — is worthless.
  ThreadPool pool(ParallelismConfig::Hardware().num_threads);
  provenance::VerificationReport report = pipeline->store().VerifyChains(
      *pki.registry, ingest.hash_algorithm, &pool);
  result.records_checked = report.records_checked;
  result.issues = report.issues.size();
  result.verify_ok = report.ok();
  return result;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t total_requests =
      static_cast<uint64_t>(flags.GetInt("requests", 2048));
  const size_t rsa_bits = static_cast<size_t>(flags.GetInt("rsa-bits", 1024));
  const size_t shards = static_cast<size_t>(flags.GetInt("shards", 4));
  const std::string root =
      flags.GetString("dir", "/tmp/provdb_bench_server_throughput");

  PrintHeader("Network service: sustained ingest vs client concurrency",
              "no paper figure; service layer over the Fig-10 pipeline");
  std::printf("%llu total requests per phase, RSA-%zu, %zu shards\n\n",
              static_cast<unsigned long long>(total_requests), rsa_bits,
              shards);

  Env* env = Env::Default();
  ServerPki pki = ServerPki::Create(4, rsa_bits);

  std::printf("%8s %9s %9s %6s %11s %9s %9s %9s %7s\n", "clients", "sent",
              "accepted", "shed", "records/s", "p50(us)", "p95(us)",
              "p99(us)", "verify");
  bool all_pass = true;
  for (size_t clients : {1u, 8u, 64u, 512u}) {
    const uint64_t per_client =
        total_requests / clients == 0 ? 1 : total_requests / clients;
    auto result = RunPhase(env, root, pki, clients, per_client, shards);
    OrAbort(result.status());
    all_pass = all_pass && result->pass();
    std::printf("%8zu %9llu %9llu %6llu %11.0f %9.0f %9.0f %9.0f %7s\n",
                clients,
                static_cast<unsigned long long>(result->load.requests_sent),
                static_cast<unsigned long long>(result->load.accepted),
                static_cast<unsigned long long>(result->load.shed),
                result->load.records_per_second, result->p50, result->p95,
                result->p99,
                result->pass() ? "PASS" : "FAIL");
  }
  CleanRoot(env, root);

  std::printf(
      "\ngate: every phase must end with a clean cross-shard VerifyChains\n"
      "pass covering exactly the accepted record count (accepted == checked,\n"
      "zero issues, zero non-shed failures) -> %s\n",
      all_pass ? "PASS" : "FAIL");
  return all_pass ? 0 : 1;
}

}  // namespace
}  // namespace provdb::bench

int main(int argc, char** argv) {
  return provdb::bench::BenchMain(argc, argv, provdb::bench::Run);
}
