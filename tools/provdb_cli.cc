// provdb — command-line tool for working with recipient bundles.
//
//   provdb demo <dir>               build a demo deployment: writes
//                                   bundle.bin, ca.key (CA public key),
//                                   certs.bin (participant certificates)
//   provdb inspect <bundle>         print the records of a bundle
//   provdb json <bundle>            dump a bundle as JSON
//   provdb verify <bundle> <ca> <certs>
//                                   run the recipient verification
//   provdb tamper <bundle> <out>    flip one byte of the newest record's
//                                   checksum (for demos)
//   provdb stats [--json]           run an instrumented workload touching
//                                   every subsystem, then print the
//                                   metrics snapshot (docs/OBSERVABILITY.md)
//
// Exit code 0 on success / verified; 1 on failure / tampering detected.
// Setting PROVDB_TRACE=/path/to/spans.jsonl streams trace spans there.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "common/hex.h"
#include "common/rng.h"
#include "common/varint.h"
#include "crypto/pki.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "provenance/auditor.h"
#include "provenance/ingest_pipeline.h"
#include "provenance/json_export.h"
#include "provenance/query.h"
#include "provenance/subtree_hasher.h"
#include "provenance/tracked_database.h"
#include "provenance/verifier.h"
#include "storage/wal.h"

namespace provdb::cli {
namespace {

Result<Bytes> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path);
  }
  Bytes out;
  uint8_t buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.insert(out.end(), buf, buf + n);
  }
  std::fclose(f);
  return out;
}

Status WriteFile(const std::string& path, ByteView data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  size_t written = std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (written != data.size()) {
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

Bytes SerializeCertificates(
    const std::vector<crypto::ParticipantCertificate>& certs) {
  Bytes out;
  AppendVarint64(&out, certs.size());
  for (const auto& cert : certs) {
    AppendVarint64(&out, cert.participant_id);
    AppendLengthPrefixed(&out, ByteView(cert.name));
    AppendLengthPrefixed(&out, cert.public_key.Serialize());
    AppendLengthPrefixed(&out, cert.ca_signature);
  }
  return out;
}

Result<std::vector<crypto::ParticipantCertificate>> ParseCertificates(
    ByteView data) {
  VarintReader reader(data);
  PROVDB_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint64());
  std::vector<crypto::ParticipantCertificate> certs;
  for (uint64_t i = 0; i < count; ++i) {
    crypto::ParticipantCertificate cert;
    PROVDB_ASSIGN_OR_RETURN(cert.participant_id, reader.ReadVarint64());
    PROVDB_ASSIGN_OR_RETURN(Bytes name, reader.ReadLengthPrefixed());
    cert.name = ByteView(name).ToString();
    PROVDB_ASSIGN_OR_RETURN(Bytes key_raw, reader.ReadLengthPrefixed());
    PROVDB_ASSIGN_OR_RETURN(cert.public_key,
                            crypto::RsaPublicKey::Deserialize(key_raw));
    PROVDB_ASSIGN_OR_RETURN(cert.ca_signature, reader.ReadLengthPrefixed());
    certs.push_back(std::move(cert));
  }
  return certs;
}

int Demo(const std::string& dir) {
  Rng rng(0xDE110);
  auto ca = crypto::CertificateAuthority::Create(1024, &rng).value();
  auto alice = crypto::Participant::Create(1, "alice", 1024, &rng, ca).value();
  auto bob = crypto::Participant::Create(2, "bob", 1024, &rng, ca).value();

  provenance::TrackedDatabase db;
  auto doc = db.Insert(alice, storage::Value::String("draft-1")).value();
  db.Update(bob, doc, storage::Value::String("draft-2")).ok();
  db.Update(alice, doc, storage::Value::String("final")).ok();
  auto archive =
      db.Aggregate(bob, {doc}, storage::Value::String("archive-2026"))
          .value();

  auto bundle = db.ExportForRecipient(archive).value();
  Status s = WriteFile(dir + "/bundle.bin", bundle.Serialize());
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  WriteFile(dir + "/ca.key", ca.public_key().Serialize()).ok();
  WriteFile(dir + "/certs.bin",
            SerializeCertificates({alice.certificate(), bob.certificate()}))
      .ok();
  std::printf("wrote %s/bundle.bin, ca.key, certs.bin\n", dir.c_str());
  std::printf("try: provdb verify %s/bundle.bin %s/ca.key %s/certs.bin\n",
              dir.c_str(), dir.c_str(), dir.c_str());
  return 0;
}

int Inspect(const std::string& path) {
  auto raw = ReadFile(path);
  if (!raw.ok()) {
    std::fprintf(stderr, "%s\n", raw.status().ToString().c_str());
    return 1;
  }
  auto bundle = provenance::RecipientBundle::Deserialize(*raw);
  if (!bundle.ok()) {
    std::fprintf(stderr, "malformed bundle: %s\n",
                 bundle.status().ToString().c_str());
    return 1;
  }
  std::printf("subject object: %llu\n",
              static_cast<unsigned long long>(bundle->subject));
  std::printf("data snapshot:  %zu node(s)\n", bundle->data.nodes().size());
  std::printf("records:        %zu\n\n", bundle->records.size());
  for (const auto& rec : bundle->records) {
    std::printf("  %s\n", rec.ToString().c_str());
  }
  return 0;
}

int Json(const std::string& path) {
  auto raw = ReadFile(path);
  if (!raw.ok()) {
    std::fprintf(stderr, "%s\n", raw.status().ToString().c_str());
    return 1;
  }
  auto bundle = provenance::RecipientBundle::Deserialize(*raw);
  if (!bundle.ok()) {
    std::fprintf(stderr, "malformed bundle: %s\n",
                 bundle.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", provenance::BundleToJson(*bundle).c_str());
  return 0;
}

int Verify(const std::string& bundle_path, const std::string& ca_path,
           const std::string& certs_path) {
  auto bundle_raw = ReadFile(bundle_path);
  auto ca_raw = ReadFile(ca_path);
  auto certs_raw = ReadFile(certs_path);
  if (!bundle_raw.ok() || !ca_raw.ok() || !certs_raw.ok()) {
    std::fprintf(stderr, "cannot read inputs\n");
    return 1;
  }
  auto bundle = provenance::RecipientBundle::Deserialize(*bundle_raw);
  auto ca_key = crypto::RsaPublicKey::Deserialize(*ca_raw);
  auto certs = ParseCertificates(*certs_raw);
  if (!bundle.ok() || !ca_key.ok() || !certs.ok()) {
    std::fprintf(stderr, "malformed inputs\n");
    return 1;
  }

  crypto::ParticipantRegistry registry(*ca_key);
  for (const auto& cert : *certs) {
    Status s = registry.Register(cert);
    if (!s.ok()) {
      std::fprintf(stderr, "certificate for '%s' rejected: %s\n",
                   cert.name.c_str(), s.ToString().c_str());
      return 1;
    }
  }

  provenance::ProvenanceVerifier verifier(&registry);
  auto report = verifier.Verify(*bundle);
  std::printf("%s\n", report.ToString().c_str());
  return report.ok() ? 0 : 1;
}

int Tamper(const std::string& in_path, const std::string& out_path) {
  auto raw = ReadFile(in_path);
  if (!raw.ok()) {
    std::fprintf(stderr, "%s\n", raw.status().ToString().c_str());
    return 1;
  }
  auto bundle = provenance::RecipientBundle::Deserialize(*raw);
  if (!bundle.ok() || bundle->records.empty()) {
    std::fprintf(stderr, "malformed or empty bundle\n");
    return 1;
  }
  bundle->records.back().checksum[0] ^= 0x01;
  Status s = WriteFile(out_path, bundle->Serialize());
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote tampered bundle to %s\n", out_path.c_str());
  return 0;
}

/// Runs one workload that exercises every instrumented subsystem —
/// checksum signing, subtree hashing (Basic and Economical), WAL
/// append/sync/recovery, parallel verification, and a store audit — then
/// prints the global metrics snapshot. The workload is fixed-seed, so
/// the counter section of the output is deterministic.
int Stats(bool as_json) {
  Rng rng(0x57A75);
  auto ca = crypto::CertificateAuthority::Create(1024, &rng).value();
  auto alice = crypto::Participant::Create(1, "alice", 1024, &rng, ca).value();
  auto bob = crypto::Participant::Create(2, "bob", 1024, &rng, ca).value();
  crypto::ParticipantRegistry registry(ca.public_key());
  registry.Register(alice.certificate()).ok();
  registry.Register(bob.certificate()).ok();

  std::filesystem::path wal_dir =
      std::filesystem::temp_directory_path() / "provdb-stats-wal";
  std::error_code ec;
  std::filesystem::remove_all(wal_dir, ec);

  provenance::TrackedDatabase db;
  auto wal = storage::WalWriter::Open(storage::Env::Default(),
                                      wal_dir.string());
  if (!wal.ok() || !db.AttachWal(&*wal).ok()) {
    std::fprintf(stderr, "cannot open WAL under %s\n", wal_dir.c_str());
    return 1;
  }

  std::vector<storage::ObjectId> docs;
  for (int i = 0; i < 8; ++i) {
    docs.push_back(
        db.Insert(alice, storage::Value::Int(i)).value());
  }
  for (int i = 0; i < 8; ++i) {
    db.Update(bob, docs[static_cast<size_t>(i % 4)],
              storage::Value::Int(100 + i))
        .ok();
  }
  auto archive =
      db.Aggregate(bob, {docs[0], docs[1], docs[2]},
                   storage::Value::String("archive"))
          .value();
  if (!db.SyncWal().ok()) {
    std::fprintf(stderr, "WAL sync failed\n");
    return 1;
  }

  auto bundle = db.ExportForRecipient(archive).value();
  provenance::ProvenanceVerifier verifier(&registry,
                                          crypto::HashAlgorithm::kSha1,
                                          ParallelismConfig{4});
  auto report = verifier.Verify(bundle);
  provenance::StoreAuditor auditor(&registry, crypto::HashAlgorithm::kSha1,
                                   ParallelismConfig{4});
  auto audit = auditor.Audit(db.provenance(), db.tree());

  // Checkpoint + bounded recovery: seal a signed snapshot (rolling the
  // WAL and garbage-collecting the segments it covers), append a small
  // suffix, then recover from checkpoint + suffix — populating the
  // checkpoint.* and wal.gc.* instruments.
  crypto::RsaSignatureVerifier seal_verifier(alice.public_key());
  if (!db.CheckpointWal(alice.signer(), alice.id()).ok()) {
    std::fprintf(stderr, "WAL checkpoint failed\n");
    return 1;
  }
  for (int i = 0; i < 4; ++i) {
    db.Update(alice, docs[static_cast<size_t>(4 + i % 4)],
              storage::Value::Int(200 + i))
        .ok();
  }
  if (!db.SyncWal().ok()) {
    std::fprintf(stderr, "WAL sync failed\n");
    return 1;
  }
  auto recovered = provenance::ProvenanceStore::RecoverFromWal(
      storage::Env::Default(), wal_dir.string(), nullptr, &seal_verifier);
  std::filesystem::remove_all(wal_dir, ec);
  if (!report.ok() || !audit.ok() || !recovered.ok() ||
      recovered->record_count() != db.provenance().record_count()) {
    std::fprintf(stderr, "stats workload failed its own verification\n");
    return 1;
  }

  // Sharded batched ingest: a small 2-shard group-commit run, drained
  // and verified across shards (populates the ingest.* instruments).
  std::filesystem::path ingest_dir =
      std::filesystem::temp_directory_path() / "provdb-stats-ingest";
  std::filesystem::remove_all(ingest_dir, ec);
  storage::TreeStore ingest_tree;
  provenance::SubtreeHasher ingest_hasher(&ingest_tree,
                                          crypto::HashAlgorithm::kSha1);
  provenance::IngestOptions ingest_options;
  ingest_options.num_shards = 2;
  ingest_options.max_batch_records = 4;
  ingest_options.signing.num_threads = 2;
  ingest_options.checkpoint.every_records = 4;
  ingest_options.checkpoint.signer = &alice.signer();
  ingest_options.checkpoint.sealer_id = alice.id();
  ingest_options.checkpoint.verifier = &seal_verifier;
  auto pipeline = provenance::IngestPipeline::Open(
      storage::Env::Default(), ingest_dir.string(), ingest_options);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "cannot open ingest pipeline under %s\n",
                 ingest_dir.c_str());
    return 1;
  }
  for (int i = 0; i < 10; ++i) {
    storage::ObjectId id =
        ingest_tree.Insert(storage::Value::Int(i)).value();
    provenance::IngestRequest insert;
    insert.op = provenance::OperationType::kInsert;
    insert.object = id;
    insert.post_hash = ingest_hasher.HashSubtreeBasic(id).value();
    insert.participant = &alice;
    provenance::IngestRequest update;
    update.op = provenance::OperationType::kUpdate;
    update.object = id;
    update.has_pre_hash = true;
    update.pre_hash = insert.post_hash;
    ingest_tree.Update(id, storage::Value::Int(100 + i)).ok();
    update.post_hash = ingest_hasher.HashSubtreeBasic(id).value();
    update.participant = &bob;
    if (!(*pipeline)->Submit(insert).ok() ||
        !(*pipeline)->Submit(update).ok()) {
      std::fprintf(stderr, "ingest pipeline rejected the stats workload\n");
      return 1;
    }
  }
  if (!(*pipeline)->Close().ok()) {
    std::fprintf(stderr, "ingest pipeline close failed\n");
    return 1;
  }
  // Verify the sharded run through a pinned snapshot — the live read
  // path (DESIGN.md §16) — which also exercises the epoch.* instruments
  // so they show up in the stats output.
  auto ingest_verify = [&] {
    provenance::StoreSnapshot snapshot = (*pipeline)->OpenSnapshot();
    return verifier.VerifyStore(snapshot);
  }();
  std::filesystem::remove_all(ingest_dir, ec);
  if (!ingest_verify.ok()) {
    std::fprintf(stderr, "sharded ingest failed verification:\n%s\n",
                 ingest_verify.ToString().c_str());
    return 1;
  }

  observability::MetricsRegistry& metrics = observability::GlobalMetrics();
  if (as_json) {
    std::printf("%s\n", metrics.SnapshotJson().c_str());
  } else {
    std::printf("%s", metrics.SnapshotText().c_str());
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage:\n"
                 "  provdb demo <dir>\n"
                 "  provdb inspect <bundle>\n"
                 "  provdb json <bundle>\n"
                 "  provdb verify <bundle> <ca.key> <certs.bin>\n"
                 "  provdb tamper <bundle-in> <bundle-out>\n"
                 "  provdb stats [--json]\n");
    return 2;
  }
  observability::InitTraceFromEnv();
  std::string cmd = argv[1];
  if (cmd == "demo" && argc == 3) return Demo(argv[2]);
  if (cmd == "inspect" && argc == 3) return Inspect(argv[2]);
  if (cmd == "json" && argc == 3) return Json(argv[2]);
  if (cmd == "verify" && argc == 5) return Verify(argv[2], argv[3], argv[4]);
  if (cmd == "tamper" && argc == 4) return Tamper(argv[2], argv[3]);
  if (cmd == "stats" && argc == 2) return Stats(/*as_json=*/false);
  if (cmd == "stats" && argc == 3 && std::strcmp(argv[2], "--json") == 0) {
    return Stats(/*as_json=*/true);
  }
  std::fprintf(stderr, "unknown command or wrong arguments\n");
  return 2;
}

}  // namespace
}  // namespace provdb::cli

int main(int argc, char** argv) { return provdb::cli::Main(argc, argv); }
