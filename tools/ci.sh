#!/bin/sh
# CI driver: regular build + full test suite, then sanitizer passes over
# the paths where they pay off — TSan for the parallel verification/audit
# engine, ASan+UBSan for the wire-format decoder fuzz tests.
#
# Usage: tools/ci.sh [build-root]   (default: ./ci-out)
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT="${1:-$ROOT/ci-out}"
JOBS="$(nproc 2>/dev/null || echo 2)"

run() {
  echo "==> $*"
  "$@"
}

# -- 1. Regular build + full ctest suite --------------------------------
run cmake -S "$ROOT" -B "$OUT/release" -DCMAKE_BUILD_TYPE=Release
run cmake --build "$OUT/release" -j "$JOBS"
run ctest --test-dir "$OUT/release" --output-on-failure -j "$JOBS"

# -- 2. TSan over the parallel paths ------------------------------------
# Benchmarks/examples are skipped: TSan only needs the thread pool, the
# parallel verifier/auditor, and the parallel subtree hasher, which the
# unit tests below exercise.
run cmake -S "$ROOT" -B "$OUT/tsan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPROVDB_SANITIZE=thread -DPROVDB_BUILD_BENCHMARKS=OFF \
  -DPROVDB_BUILD_EXAMPLES=OFF
run cmake --build "$OUT/tsan" -j "$JOBS" \
  --target common_test provenance_core_test provenance_security_test \
  provenance_ext_test
run ctest --test-dir "$OUT/tsan" --output-on-failure -j "$JOBS" \
  -R 'ThreadPool|Parallel|Audit'

# -- 3. ASan+UBSan over the decoder fuzz tests --------------------------
run cmake -S "$ROOT" -B "$OUT/asan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPROVDB_SANITIZE=address -DPROVDB_BUILD_BENCHMARKS=OFF \
  -DPROVDB_BUILD_EXAMPLES=OFF
run cmake --build "$OUT/asan" -j "$JOBS" --target provenance_property_test
run ctest --test-dir "$OUT/asan" --output-on-failure -j "$JOBS" \
  -R 'Decoder|Fuzz|Property'

echo "CI: all passes green."
