#!/bin/sh
# CI driver, organised as named stages:
#
#   release-tests  regular Release build + full ctest suite
#   lint           provdb_lint over src/ (determinism / checked-verify rules)
#   werror         src/ under the hardened tier: -Wconversion -Wshadow
#                  -Wextra-semi -Werror (PROVDB_WERROR=ON)
#   thread-safety  clang -Wthread-safety[-beta] as errors over src/
#                  (PROVDB_THREAD_SAFETY=ON): every PROVDB_GUARDED_BY /
#                  PROVDB_REQUIRES contract machine-checked, plus a
#                  negative control — the deliberately-racy fixture in
#                  tests/thread_safety/ must FAIL to compile. Skipped
#                  when clang is absent (analysis-only stage)
#   format         clang-format --dry-run over first-party sources
#                  (check-only; skipped when clang-format is absent)
#   crash-recovery the durability suite (ctest -L crash-recovery): WAL
#                  recovery matrix + fault-injection crash sweep, run
#                  under ASan+UBSan so torn-write salvage is also
#                  memory-clean
#   checkpoint     signed checkpoints (DESIGN.md §13) under ASan+UBSan:
#                  seal/load round trip, the every-byte-flip tamper
#                  matrix, checkpoint-bounded recovery, and the crash
#                  sweep over every mutating op of seal + segment GC
#   server         the network provenance service under ASan+UBSan: the
#                  wire-codec bijection suites, the loopback integration
#                  suites (live server, pipelined clients, admission
#                  overload), the load-generator suites, and the
#                  every-byte-flip / every-truncation wire tamper matrix
#   tsan           ThreadSanitizer over the parallel verify/audit paths,
#                  the sharded ingest pipeline's parallel signing, the
#                  concurrent metrics-recording tests, the epoch/snapshot
#                  suites, and the network server's poll/executor/
#                  multi-client thread soup (the Server* suites)
#   snapshot       the epoch-based snapshot read path (DESIGN.md §16)
#                  under TSan: the epoch-domain reader/writer/reclaimer
#                  stress suites, the snapshot byte-equality suites, and
#                  the concurrent-auditor differential (an auditor racing
#                  the live pipeline at 1/2/8 shards) — exactly where a
#                  missed fence or a premature reclaim would hide
#   soak           NOT in the default list (long-running): 30 seconds of
#                  ingest + continuous snapshot audit + periodic
#                  checkpoints (ctest -L soak, PROVDB_SOAK_SECONDS=30),
#                  asserting the epoch retired backlog drains to zero at
#                  quiescence and RSS stays flat
#   crypto         the bignum kernel sweep under strict UBSan: for every
#                  PROVDB_BIGNUM_KERNEL= spec (each multiply x ladder
#                  combination plus the default), run the full crypto
#                  suite, the randomized kernel cross-checks, and the
#                  golden-digest corpus — byte-identical signatures under
#                  every kernel, with no UB executed (docs/CRYPTO.md)
#   asan           ASan+UBSan over the wire-format decoder fuzz tests
#   ubsan          strict UBSan (PROVDB_SANITIZE=undefined,
#                  -fno-sanitize-recover) over the full release-test
#                  suite: any diagnosed undefined behavior aborts the
#                  test instead of printing and passing
#   differential   the randomized differential + tamper-matrix harness
#                  (ctest -L differential) under ASan+UBSan: sequential
#                  store vs sharded pipeline byte-equality, single-field
#                  tamper detection, WAL byte-flip refusal
#   docs           markdown link check plus the src/ <-> OBSERVABILITY.md
#                  metric-name cross-check (both directions)
#   tidy           clang-tidy (.clang-tidy profile) over src/
#                  (skipped when clang-tidy is absent)
#
# Usage: tools/ci.sh [stage...]
#   No arguments runs the default order:
#     release-tests lint werror thread-safety format crash-recovery
#     checkpoint server tsan snapshot crypto asan ubsan differential docs
#   plus tidy when PROVDB_TIDY=1 (clang-tidy may be absent, so it is
#   opt-in). Build trees go under $PROVDB_CI_OUT (default: ./ci-out).
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT="${PROVDB_CI_OUT:-$ROOT/ci-out}"
JOBS="$(nproc 2>/dev/null || echo 2)"

run() {
  echo "==> $*"
  "$@"
}

stage_release_tests() {
  run cmake -S "$ROOT" -B "$OUT/release" -DCMAKE_BUILD_TYPE=Release
  run cmake --build "$OUT/release" -j "$JOBS"
  run ctest --test-dir "$OUT/release" --output-on-failure -j "$JOBS"
}

stage_lint() {
  run cmake -S "$ROOT" -B "$OUT/release" -DCMAKE_BUILD_TYPE=Release
  run cmake --build "$OUT/release" -j "$JOBS" --target provdb_lint
  run "$OUT/release/tools/lint/provdb_lint" --root "$ROOT" src
}

stage_werror() {
  run cmake -S "$ROOT" -B "$OUT/werror" -DCMAKE_BUILD_TYPE=Release \
    -DPROVDB_WERROR=ON -DPROVDB_BUILD_TESTS=OFF \
    -DPROVDB_BUILD_BENCHMARKS=OFF -DPROVDB_BUILD_EXAMPLES=OFF
  run cmake --build "$OUT/werror" -j "$JOBS" \
    --target provdb_provenance provdb_workload
}

stage_thread_safety() {
  # Clang's thread-safety analysis is the machine check behind the
  # PROVDB_GUARDED_BY / PROVDB_REQUIRES annotations; GCC parses the
  # macros to nothing, so this stage needs a real clang.
  CLANGXX=""
  for candidate in clang++ clang++-20 clang++-19 clang++-18 clang++-17 \
      clang++-16 clang++-15 clang++-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      CLANGXX="$candidate"
      break
    fi
  done
  if [ -z "$CLANGXX" ]; then
    echo "==> thread-safety: clang++ not installed, skipping" \
      "(analysis-only stage; annotations still compile away under GCC)"
    return 0
  fi
  run cmake -S "$ROOT" -B "$OUT/thread-safety" -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_COMPILER="$CLANGXX" -DPROVDB_THREAD_SAFETY=ON \
    -DPROVDB_BUILD_TESTS=OFF -DPROVDB_BUILD_BENCHMARKS=OFF \
    -DPROVDB_BUILD_EXAMPLES=OFF
  run cmake --build "$OUT/thread-safety" -j "$JOBS" \
    --target provdb_provenance provdb_workload
  # Negative control: the deliberately-racy fixture (an unlocked write to
  # a PROVDB_GUARDED_BY member) must FAIL to compile. If it passes, the
  # analysis is not armed and the green build above certified nothing.
  echo "==> thread-safety: negative control (racy fixture must fail)"
  if "$CLANGXX" -std=c++20 -fsyntax-only -I "$ROOT/src" \
      -Wthread-safety -Wthread-safety-beta \
      -Werror=thread-safety -Werror=thread-safety-beta \
      "$ROOT/tests/thread_safety/racy_guarded_write.cc" 2>/dev/null; then
    echo "==> thread-safety: racy fixture compiled CLEAN —" \
      "the analysis is not armed" >&2
    exit 1
  fi
  echo "==> thread-safety: src/ clean, racy fixture rejected"
}

stage_format() {
  if ! command -v clang-format >/dev/null 2>&1; then
    echo "==> format: clang-format not installed, skipping (check-only stage)"
    return 0
  fi
  # Check-only: --dry-run -Werror fails on any diff but rewrites nothing,
  # so formatting is enforced without a mass-reformat commit.
  find "$ROOT/src" "$ROOT/tools" "$ROOT/tests" "$ROOT/bench" "$ROOT/examples" \
    -name '*.cc' -o -name '*.h' -o -name '*.cpp' -o -name '*.hpp' \
    | sort | xargs clang-format --dry-run -Werror
  echo "==> format: clean"
}

stage_crash_recovery() {
  # The durability suite under ASan+UBSan: the recovery matrix parses
  # deliberately torn and corrupted segment files, exactly where an
  # out-of-bounds read would hide.
  run cmake -S "$ROOT" -B "$OUT/asan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPROVDB_SANITIZE=address -DPROVDB_BUILD_BENCHMARKS=OFF \
    -DPROVDB_BUILD_EXAMPLES=OFF
  run cmake --build "$OUT/asan" -j "$JOBS" \
    --target storage_durability_test integration_crash_recovery_test \
    provenance_checkpoint_test integration_checkpoint_recovery_test
  run ctest --test-dir "$OUT/asan" --output-on-failure -j "$JOBS" \
    -L crash-recovery
}

stage_checkpoint() {
  # The checkpoint subsystem in isolation (its suites also run inside
  # crash-recovery via the shared label): tamper refusal parses
  # deliberately corrupted seals, exactly where an out-of-bounds read
  # would hide, so it runs under ASan+UBSan.
  run cmake -S "$ROOT" -B "$OUT/asan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPROVDB_SANITIZE=address -DPROVDB_BUILD_BENCHMARKS=OFF \
    -DPROVDB_BUILD_EXAMPLES=OFF
  run cmake --build "$OUT/asan" -j "$JOBS" \
    --target provenance_checkpoint_test integration_checkpoint_recovery_test
  run ctest --test-dir "$OUT/asan" --output-on-failure -j "$JOBS" \
    -R 'Checkpoint'
}

stage_server() {
  # The network boundary under ASan+UBSan: the tamper matrix feeds the
  # server every single-byte flip and every truncation of real frames,
  # exactly where an out-of-bounds read in the wire decoder would hide,
  # and the overload suites stress the admission/charge accounting.
  run cmake -S "$ROOT" -B "$OUT/asan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPROVDB_SANITIZE=address -DPROVDB_BUILD_BENCHMARKS=OFF \
    -DPROVDB_BUILD_EXAMPLES=OFF
  run cmake --build "$OUT/asan" -j "$JOBS" \
    --target net_wire_test net_server_test net_server_corruption_test \
    workload_load_generator_test
  run ctest --test-dir "$OUT/asan" --output-on-failure -j "$JOBS" \
    -R 'Wire|Admission|Server'
}

stage_tsan() {
  # Benchmarks/examples are skipped: TSan only needs the thread pool, the
  # parallel verifier/auditor, the parallel subtree hasher, and the
  # lock-cheap metrics registry, which the unit tests below exercise.
  run cmake -S "$ROOT" -B "$OUT/tsan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPROVDB_SANITIZE=thread -DPROVDB_BUILD_BENCHMARKS=OFF \
    -DPROVDB_BUILD_EXAMPLES=OFF
  run cmake --build "$OUT/tsan" -j "$JOBS" \
    --target common_test provenance_core_test provenance_security_test \
    provenance_ext_test provenance_ingest_test provenance_snapshot_test \
    observability_test net_server_test workload_load_generator_test
  run ctest --test-dir "$OUT/tsan" --output-on-failure -j "$JOBS" \
    -R 'ThreadPool|Parallel|Audit|Concurrent|Ingest|Server|Epoch|Snapshot'
}

stage_snapshot() {
  # The snapshot read path's threading story end to end under TSan: the
  # seeded epoch-domain stress (readers racing a publishing writer and a
  # reclaimer), the snapshot suites, and the concurrent-auditor
  # differential where an auditor validates batch-prefix cuts against a
  # moving pipeline. Shares the tsan build tree.
  run cmake -S "$ROOT" -B "$OUT/tsan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPROVDB_SANITIZE=thread -DPROVDB_BUILD_BENCHMARKS=OFF \
    -DPROVDB_BUILD_EXAMPLES=OFF
  run cmake --build "$OUT/tsan" -j "$JOBS" \
    --target common_test provenance_snapshot_test \
    integration_differential_test
  run ctest --test-dir "$OUT/tsan" --output-on-failure -j "$JOBS" \
    -R 'Epoch|Snapshot|ConcurrentAudit'
}

stage_soak() {
  # Long-running; not in the default stage list. The seeded soak at its
  # CI duration: 30s of ingest + continuous snapshot audits + periodic
  # checkpoint/GC, then the quiesce + RSS assertions.
  run cmake -S "$ROOT" -B "$OUT/release" -DCMAKE_BUILD_TYPE=Release
  run cmake --build "$OUT/release" -j "$JOBS" \
    --target integration_epoch_soak_test
  run env PROVDB_SOAK_SECONDS=30 ctest --test-dir "$OUT/release" \
    --output-on-failure -L soak
}

stage_crypto() {
  # The kernel-dispatch contract (docs/CRYPTO.md): selection trades speed,
  # never results. Each spec pins a multiply+ladder combination through
  # the same env override production honors, then runs the crypto suites
  # and the golden-digest corpus, so a wrong carry in any kernel shows up
  # as a digest mismatch, not just a unit-test delta. Strict UBSan
  # (-fno-sanitize-recover) because the ladders lean on wide arithmetic
  # where overflowed intermediates would otherwise pass silently.
  run cmake -S "$ROOT" -B "$OUT/ubsan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPROVDB_SANITIZE=undefined -DPROVDB_BUILD_BENCHMARKS=OFF \
    -DPROVDB_BUILD_EXAMPLES=OFF
  run cmake --build "$OUT/ubsan" -j "$JOBS" \
    --target crypto_test crypto_kernel_differential_test \
    provenance_core_test
  for SPEC in schoolbook+binary schoolbook+window5 karatsuba+binary \
      karatsuba+window4 karatsuba+window5 default; do
    echo "==> crypto: PROVDB_BIGNUM_KERNEL=$SPEC"
    run env PROVDB_BIGNUM_KERNEL="$SPEC" "$OUT/ubsan/tests/crypto_test"
    run env PROVDB_BIGNUM_KERNEL="$SPEC" \
      "$OUT/ubsan/tests/crypto_kernel_differential_test"
    run env PROVDB_BIGNUM_KERNEL="$SPEC" \
      "$OUT/ubsan/tests/provenance_core_test" \
      --gtest_filter='GoldenDigestTest.*'
  done
}

stage_asan() {
  run cmake -S "$ROOT" -B "$OUT/asan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPROVDB_SANITIZE=address -DPROVDB_BUILD_BENCHMARKS=OFF \
    -DPROVDB_BUILD_EXAMPLES=OFF
  run cmake --build "$OUT/asan" -j "$JOBS" --target provenance_property_test
  run ctest --test-dir "$OUT/asan" --output-on-failure -j "$JOBS" \
    -R 'Decoder|Fuzz|Property'
}

stage_ubsan() {
  # Strict UBSan over the full suite: -fno-sanitize-recover makes any
  # diagnosed undefined behavior abort the test, so a green run means no
  # UB was *executed* anywhere the tests reach. (The asan tier's UBSan
  # half runs in the default recoverable mode; this one cannot be talked
  # past.)
  run cmake -S "$ROOT" -B "$OUT/ubsan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPROVDB_SANITIZE=undefined -DPROVDB_BUILD_BENCHMARKS=OFF \
    -DPROVDB_BUILD_EXAMPLES=OFF
  run cmake --build "$OUT/ubsan" -j "$JOBS"
  run ctest --test-dir "$OUT/ubsan" --output-on-failure -j "$JOBS"
}

stage_differential() {
  # The randomized differential + tamper-matrix harness under ASan+UBSan:
  # it deliberately mutates serialized records and raw WAL bytes, exactly
  # where an out-of-bounds read in the decoder or verifier would hide.
  run cmake -S "$ROOT" -B "$OUT/asan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPROVDB_SANITIZE=address -DPROVDB_BUILD_BENCHMARKS=OFF \
    -DPROVDB_BUILD_EXAMPLES=OFF
  run cmake --build "$OUT/asan" -j "$JOBS" \
    --target integration_differential_test
  run ctest --test-dir "$OUT/asan" --output-on-failure -j "$JOBS" \
    -L differential
}

stage_docs() {
  run sh "$ROOT/tools/check_doc_links.sh"
  run sh "$ROOT/tools/check_metrics_docs.sh"
}

stage_tidy() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "==> tidy: clang-tidy not installed, skipping"
    return 0
  fi
  run cmake -S "$ROOT" -B "$OUT/release" -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  find "$ROOT/src" -name '*.cc' | sort \
    | xargs clang-tidy -p "$OUT/release" --quiet
  echo "==> tidy: clean"
}

run_stage() {
  echo ""
  echo "=== stage: $1 ==="
  case "$1" in
    release-tests) stage_release_tests ;;
    lint)          stage_lint ;;
    werror)        stage_werror ;;
    thread-safety) stage_thread_safety ;;
    format)        stage_format ;;
    crash-recovery) stage_crash_recovery ;;
    checkpoint)    stage_checkpoint ;;
    server)        stage_server ;;
    tsan)          stage_tsan ;;
    snapshot)      stage_snapshot ;;
    soak)          stage_soak ;;
    crypto)        stage_crypto ;;
    asan)          stage_asan ;;
    ubsan)         stage_ubsan ;;
    differential)  stage_differential ;;
    docs)          stage_docs ;;
    tidy)          stage_tidy ;;
    *)
      echo "tools/ci.sh: unknown stage '$1'" >&2
      echo "stages: release-tests lint werror thread-safety format" \
        "crash-recovery checkpoint server tsan snapshot soak crypto asan" \
        "ubsan differential docs tidy" >&2
      exit 2
      ;;
  esac
}

if [ "$#" -gt 0 ]; then
  STAGES="$*"
else
  STAGES="release-tests lint werror thread-safety format crash-recovery checkpoint server tsan snapshot crypto asan ubsan differential docs"
  if [ "${PROVDB_TIDY:-0}" = "1" ]; then
    STAGES="$STAGES tidy"
  fi
fi

for STAGE in $STAGES; do
  run_stage "$STAGE"
done

echo ""
echo "CI: all stages green ($STAGES)."
