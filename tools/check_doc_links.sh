#!/bin/sh
# Checks every relative markdown link in the repo's first-party *.md
# files: `[text](path)` must point at a file or directory that exists,
# resolved against the linking file's own directory. External links
# (http/https/mailto) and pure in-page anchors (#...) are skipped;
# `path#anchor` is checked for the file half only.
#
# Run directly or via `tools/ci.sh docs`.
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
FAIL=0
CHECKED=0

# PAPER.md / PAPERS.md are retrieved source-paper material whose image
# references point outside the repo — not first-party docs.
FILES="$(find "$ROOT" -name '*.md' \
  -not -path '*/build/*' -not -path '*/ci-out/*' \
  -not -path '*/.git/*' -not -path '*/third_party/*' \
  -not -name 'PAPER.md' -not -name 'PAPERS.md' | sort)"

for MD in $FILES; do
  DIR="$(dirname "$MD")"
  # One link per line; inline code and images share the ](...) shape, so
  # both are covered.
  LINKS="$(grep -oE '\]\([^)]+\)' "$MD" 2>/dev/null \
    | sed -E 's/^\]\(//; s/\)$//' | sort -u)" || continue
  for LINK in $LINKS; do
    case "$LINK" in
      http://*|https://*|mailto:*|'#'*) continue ;;
    esac
    TARGET="${LINK%%#*}"
    [ -z "$TARGET" ] && continue
    CHECKED=$((CHECKED + 1))
    if [ ! -e "$DIR/$TARGET" ]; then
      echo "check_doc_links: broken link in ${MD#"$ROOT"/}: ($LINK)" >&2
      FAIL=1
    fi
  done
done

if [ "$FAIL" -ne 0 ]; then
  exit 1
fi
echo "check_doc_links: $CHECKED relative links resolve."
