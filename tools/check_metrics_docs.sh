#!/bin/sh
# Cross-checks the observability name inventory between code and docs:
#
#   1. every metric registered in src/ (counter("x") / gauge("x") /
#      histogram("x")) and every trace span name (TraceSpan("x")) must be
#      documented — backticked — in docs/OBSERVABILITY.md, and
#   2. every dotted, backticked name in docs/OBSERVABILITY.md must exist
#      in the code, so the doc cannot drift into describing metrics that
#      were renamed or removed.
#
# Registration names are string literals by convention (the lint rule
# set and this check both depend on that), so plain grep is sufficient.
# Run directly or via `tools/ci.sh docs`.
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
DOC="$ROOT/docs/OBSERVABILITY.md"

if [ ! -f "$DOC" ]; then
  echo "check_metrics_docs: $DOC missing" >&2
  exit 1
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Names the code registers or emits. Registrations wrap across lines
# (clang-format puts the literal under the call), so each file is
# flattened to one line before matching.
find "$ROOT/src" -name '*.cc' -o -name '*.h' | sort \
  | while IFS= read -r F; do tr '\n' ' ' < "$F"; printf '\n'; done \
  > "$TMP/flat"
grep -oE '(counter|gauge|histogram)\([[:space:]]*"[a-z0-9._]+"\)' \
    "$TMP/flat" \
  | sed -E 's/.*"([^"]+)".*/\1/' | sort -u > "$TMP/metrics"
grep -oE 'TraceSpan[^("]*\([[:space:]]*"[a-z0-9._]+"' "$TMP/flat" \
  | sed -E 's/.*"([^"]+)".*/\1/' | sort -u > "$TMP/spans"
sort -u "$TMP/metrics" "$TMP/spans" > "$TMP/code"

# Dotted backticked names in the doc. File names (`metrics.h`, `ci.sh`,
# ...) also match the dotted shape, so known source/doc suffixes are
# filtered out; metric and span names never use them.
grep -oE '`[a-z0-9_]+(\.[a-z0-9_]+)+`' "$DOC" | tr -d '`' \
  | grep -vE '\.(h|hpp|cc|cpp|sh|py|md|txt|json|jsonl|cmake)$' \
  | sort -u > "$TMP/doc" || true

FAIL=0

UNDOCUMENTED="$(comm -23 "$TMP/code" "$TMP/doc")"
if [ -n "$UNDOCUMENTED" ]; then
  echo "check_metrics_docs: registered in src/ but missing from" \
    "docs/OBSERVABILITY.md:" >&2
  echo "$UNDOCUMENTED" | sed 's/^/  /' >&2
  FAIL=1
fi

STALE="$(comm -13 "$TMP/code" "$TMP/doc")"
if [ -n "$STALE" ]; then
  echo "check_metrics_docs: documented in docs/OBSERVABILITY.md but" \
    "never registered in src/:" >&2
  echo "$STALE" | sed 's/^/  /' >&2
  FAIL=1
fi

if [ "$FAIL" -ne 0 ]; then
  exit 1
fi

echo "check_metrics_docs: $(wc -l < "$TMP/metrics" | tr -d ' ') metrics," \
  "$(wc -l < "$TMP/spans" | tr -d ' ') span names — code and docs agree."
