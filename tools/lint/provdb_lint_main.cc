// provdb_lint CLI: scans the repository's src/ tree (or explicit paths)
// for violations of the determinism / checked-verification rules in
// lint.h. Registered as a ctest so `ctest` alone catches violations.
//
// Usage:
//   provdb_lint [--root <repo-root>] [--fix-suggestions] [--list-rules]
//               [paths...]
//
// Paths are repo-relative files or directories (default: src). Exit
// status: 0 clean, 1 findings, 2 usage/IO error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace fs = std::filesystem;
using provdb::lint::Finding;
using provdb::lint::Linter;
using provdb::lint::TestFile;

namespace {

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
}

/// Repo-relative path with '/' separators.
std::string Relative(const fs::path& path, const fs::path& root) {
  std::string rel = fs::relative(path, root).generic_string();
  return rel;
}

/// All source files under `start` (file or directory), sorted so output
/// and exit behaviour are deterministic.
std::vector<fs::path> CollectSources(const fs::path& start) {
  std::vector<fs::path> files;
  std::error_code ec;
  if (fs::is_regular_file(start, ec)) {
    files.push_back(start);
  } else if (fs::is_directory(start, ec)) {
    for (const auto& entry :
         fs::recursive_directory_iterator(start, ec)) {
      if (entry.is_regular_file() && IsSourceFile(entry.path())) {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  bool fix_suggestions = false;
  std::vector<std::string> targets;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--fix-suggestions") {
      fix_suggestions = true;
    } else if (arg == "--list-rules") {
      for (const auto& rule : provdb::lint::Rules()) {
        std::printf("%s  %-18s %s\n", rule.id, rule.name, rule.summary);
      }
      return 0;
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(std::string("--root=").size());
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: provdb_lint [--root <repo-root>] [--fix-suggestions] "
          "[--list-rules] [paths...]\n");
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "provdb_lint: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      targets.push_back(arg);
    }
  }
  std::error_code ec;
  root = fs::canonical(root, ec);
  if (ec) {
    std::fprintf(stderr, "provdb_lint: bad --root: %s\n",
                 ec.message().c_str());
    return 2;
  }
  if (targets.empty()) targets.push_back("src");

  // Test corpus for R05: every source file under tests/.
  Linter linter;
  std::vector<TestFile> corpus;
  for (const fs::path& path : CollectSources(root / "tests")) {
    TestFile test;
    test.path = Relative(path, root);
    if (ReadFile(path, &test.content)) corpus.push_back(std::move(test));
  }
  linter.SetTestCorpus(std::move(corpus));

  size_t files_scanned = 0;
  std::vector<Finding> findings;
  for (const std::string& target : targets) {
    fs::path start = fs::path(target).is_absolute() ? fs::path(target)
                                                    : root / target;
    std::vector<fs::path> files = CollectSources(start);
    if (files.empty()) {
      std::fprintf(stderr, "provdb_lint: no source files under %s\n",
                   start.string().c_str());
      return 2;
    }
    for (const fs::path& file : files) {
      std::string content;
      if (!ReadFile(file, &content)) {
        std::fprintf(stderr, "provdb_lint: cannot read %s\n",
                     file.string().c_str());
        return 2;
      }
      ++files_scanned;
      for (Finding& finding :
           linter.LintContent(Relative(file, root), content)) {
        findings.push_back(std::move(finding));
      }
    }
  }

  for (const Finding& finding : findings) {
    std::printf("%s\n", finding.ToString(fix_suggestions).c_str());
  }
  std::printf("provdb_lint: %zu file%s scanned, %zu finding%s\n",
              files_scanned, files_scanned == 1 ? "" : "s", findings.size(),
              findings.size() == 1 ? "" : "s");
  return findings.empty() ? 0 : 1;
}
