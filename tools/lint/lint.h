#ifndef PROVDB_TOOLS_LINT_LINT_H_
#define PROVDB_TOOLS_LINT_LINT_H_

// provdb-lint: project-specific static analysis for the determinism and
// checked-verification invariants the compiler cannot enforce.
//
// ProvDB's tamper-evidence (paper §3–§4) rests on two properties:
//
//   1. every byte fed into a checksum or subtree hash is canonical and
//      deterministic — a digest that depends on unordered_map iteration
//      order or wall-clock time silently breaks requirements R1–R4, and
//   2. every Status / verification result is actually inspected — an
//      ignored Verify/Audit return is an undetected tamper.
//
// The compile-time half of (2) is the [[nodiscard]] sweep; this linter
// covers the patterns the type system cannot see. Rules:
//
//   R01 nondet-iteration   no unordered_map/unordered_set iteration in
//                          src/crypto/ or src/provenance/ (hash inputs
//                          must not depend on hash-table order)
//   R02 banned-randomness  no rand()/time()/std::random_device etc.
//                          outside src/common/rng.* (reproducible
//                          workloads, deterministic digests)
//   R03 raw-thread         no std::thread/std::async outside
//                          src/common/thread_pool.* (all parallelism
//                          goes through the deterministic-merge pool)
//   R04 ct-memcmp          no memcmp in src/crypto/ or src/provenance/
//                          (digest/MAC equality must be constant time:
//                          common/bytes.h ConstantTimeEqual)
//   R05 no-test            every .cc under src/ has a matching
//                          <stem>_test.cc or is #included-referenced by
//                          a test file
//   R06 raw-file-io        no fopen/rename/fstream in src/ outside
//                          src/storage/env.* (persistence must go
//                          through storage::Env so the durability
//                          protocol and fault-injection hooks apply)
//   R07 adhoc-chrono       no direct std::chrono in src/ outside
//                          src/common/stopwatch.* and
//                          src/observability/ (durations go through
//                          Stopwatch or a metrics histogram, so timing
//                          is visible to observability and wall-clock
//                          types stay out of deterministic code)
//   R08 unannotated-mutex  every mutex declared in src/ must have a
//                          PROVDB_GUARDED_BY / PROVDB_REQUIRES user in
//                          the same file — an unannotated mutex guards
//                          nothing the clang -Wthread-safety tier can
//                          check (common/thread_annotations.h)
//   R09 io-under-lock      no blocking file call (Sync/Flush/Append/
//                          Rename) lexically inside a live lock_guard/
//                          unique_lock/scoped_lock/MutexLock scope;
//                          exempt: src/storage/env.* and the
//                          fault-injection env (sanctioned I/O layer)
//   R10 naked-lock         no manual .lock()/.unlock()/.try_lock()
//                          member calls; critical sections use RAII
//                          guards so early returns cannot leak a lock.
//                          Exempt: src/common/thread_pool.* and
//                          thread_annotations.h (the lock plumbing)
//
// Any finding can be suppressed with a pragma on the offending line or
// the line above it:   // lint:allow <rule>   where <rule> is the id
// ("R04") or the name ("ct-memcmp"). See DESIGN.md §7 for the mapping
// from each rule to the paper's security requirements.

#include <cstddef>
#include <string>
#include <vector>

namespace provdb::lint {

/// One rule violation.
struct Finding {
  std::string rule_id;    // "R01"
  std::string rule_name;  // "nondet-iteration"
  std::string path;       // repo-relative, '/'-separated
  size_t line = 0;        // 1-based
  std::string message;
  std::string suggestion;  // printed under --fix-suggestions

  /// "path:line: [R01/nondet-iteration] message".
  std::string ToString(bool with_suggestion = false) const;
};

/// Static description of one rule, for --list-rules and docs.
struct RuleInfo {
  const char* id;
  const char* name;
  const char* summary;
};

/// All rules, in id order.
const std::vector<RuleInfo>& Rules();

/// A file from the test corpus (everything under tests/), used by R05 to
/// decide whether a source file is test-referenced.
struct TestFile {
  std::string path;     // repo-relative
  std::string content;  // raw bytes
};

/// The rule engine. Paths are matched textually, so callers (including
/// unit tests) may lint in-memory content under any claimed path.
class Linter {
 public:
  Linter() = default;

  /// Corpus for R05. Without a corpus R05 is skipped entirely, so
  /// single-file invocations don't drown in false positives.
  void SetTestCorpus(std::vector<TestFile> corpus);

  /// Runs every applicable rule over `content` as if it lived at `path`
  /// (repo-relative). Findings are ordered by line, then rule id.
  std::vector<Finding> LintContent(const std::string& path,
                                   const std::string& content) const;

 private:
  std::vector<TestFile> corpus_;
  bool has_corpus_ = false;
};

}  // namespace provdb::lint

#endif  // PROVDB_TOOLS_LINT_LINT_H_
