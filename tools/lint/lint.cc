#include "lint.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace provdb::lint {
namespace {

// ---------------------------------------------------------------------------
// Source preprocessing: split into lines, blank out comments and literal
// contents (so rule patterns never fire inside strings), and collect
// `lint:allow` pragmas from the comment text.
// ---------------------------------------------------------------------------

struct AnnotatedSource {
  std::vector<std::string> code;      // literals/comments blanked
  std::vector<std::string> comments;  // comment text, per line
};

/// Blanks comments and the *contents* of string/char literals with spaces,
/// preserving line structure and column positions. Handles //, /*...*/,
/// "..." with escapes, '...' with escapes, and R"delim(...)delim".
AnnotatedSource Annotate(const std::string& content) {
  AnnotatedSource out;
  std::string code_line;
  std::string comment_line;

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_terminator;  // ")delim\"" for the active raw string

  auto flush_line = [&] {
    out.code.push_back(code_line);
    out.comments.push_back(comment_line);
    code_line.clear();
    comment_line.clear();
  };

  const size_t n = content.size();
  for (size_t i = 0; i < n; ++i) {
    char c = content[i];
    char next = i + 1 < n ? content[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      flush_line();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          code_line += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code_line += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (code_line.empty() ||
                    (!std::isalnum(static_cast<unsigned char>(
                         code_line.back())) &&
                     code_line.back() != '_'))) {
          // Raw string literal: R"delim( ... )delim"
          size_t paren = content.find('(', i + 2);
          if (paren == std::string::npos) {
            code_line += c;
            break;
          }
          raw_terminator =
              ")" + content.substr(i + 2, paren - (i + 2)) + "\"";
          state = State::kRawString;
          code_line.append(paren - i + 1, ' ');
          code_line[code_line.size() - (paren - i + 1)] = '"';
          i = paren;
        } else if (c == '"') {
          state = State::kString;
          code_line += '"';
        } else if (c == '\'') {
          state = State::kChar;
          code_line += '\'';
        } else {
          code_line += c;
        }
        break;
      case State::kLineComment:
        comment_line += c;
        code_line += ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          code_line += "  ";
          ++i;
        } else {
          comment_line += c;
          code_line += ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          code_line += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          code_line += '"';
        } else {
          code_line += ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          code_line += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          code_line += '\'';
        } else {
          code_line += ' ';
        }
        break;
      case State::kRawString:
        if (content.compare(i, raw_terminator.size(), raw_terminator) == 0) {
          state = State::kCode;
          code_line.append(raw_terminator.size(), ' ');
          code_line.back() = '"';
          i += raw_terminator.size() - 1;
        } else {
          code_line += ' ';
        }
        break;
    }
  }
  flush_line();
  return out;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// True when `text` contains `token` as a whole word (not preceded or
/// followed by an identifier character).
bool ContainsWord(const std::string& text, const std::string& token,
                  size_t* pos_out = nullptr) {
  size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    size_t end = pos + token.size();
    bool right_ok = end >= text.size() || !IsIdentChar(text[end]);
    if (left_ok && right_ok) {
      if (pos_out != nullptr) *pos_out = pos;
      return true;
    }
    ++pos;
  }
  return false;
}

/// `token` as a whole word followed (after whitespace) by '(' — method
/// invocations included. Unlike ContainsCall, a '.', '->', or '::'
/// qualifier on the left counts: R09 hunts `wal.Sync()` and
/// `file->Append(...)`, exactly the spellings ContainsCall rejects.
bool ContainsInvocation(const std::string& text, const std::string& token,
                        size_t* pos_out = nullptr) {
  size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    size_t end = pos + token.size();
    bool word_end = end >= text.size() || !IsIdentChar(text[end]);
    size_t after = end;
    while (after < text.size() &&
           std::isspace(static_cast<unsigned char>(text[after]))) {
      ++after;
    }
    if (left_ok && word_end && after < text.size() && text[after] == '(') {
      if (pos_out != nullptr) *pos_out = pos;
      return true;
    }
    pos = end;
  }
  return false;
}

/// `token` as a member call: preceded by '.' or '->', followed (after
/// whitespace) by '('. `guard.lock()` matches; the RAII declaration
/// `MutexLock lock(&mu_)` does not.
bool ContainsMemberCall(const std::string& text, const std::string& token) {
  size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    bool member =
        (pos > 0 && text[pos - 1] == '.') ||
        (pos > 1 && text[pos - 1] == '>' && text[pos - 2] == '-');
    size_t end = pos + token.size();
    bool word_end = end >= text.size() || !IsIdentChar(text[end]);
    size_t after = end;
    while (after < text.size() &&
           std::isspace(static_cast<unsigned char>(text[after]))) {
      ++after;
    }
    if (member && word_end && after < text.size() && text[after] == '(') {
      return true;
    }
    ++pos;
  }
  return false;
}

/// `token` as a whole word followed (after whitespace) by '('.
bool ContainsCall(const std::string& text, const std::string& token) {
  size_t pos = 0;
  std::string t = text;
  while ((pos = t.find(token, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || (!IsIdentChar(t[pos - 1]) && t[pos - 1] != ':' &&
                                t[pos - 1] != '.' && t[pos - 1] != '>');
    // Allow a std:: / :: qualifier on the left.
    if (!left_ok && pos >= 2 && t[pos - 1] == ':' && t[pos - 2] == ':') {
      left_ok = true;
    }
    size_t end = pos + token.size();
    while (end < t.size() &&
           std::isspace(static_cast<unsigned char>(t[end]))) {
      ++end;
    }
    if (left_ok && end < t.size() && t[end] == '(') return true;
    ++pos;
  }
  return false;
}

// --- Pragma handling -------------------------------------------------------

std::string CanonicalRule(std::string token) {
  for (char& c : token) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  for (const RuleInfo& rule : Rules()) {
    std::string id = rule.id;
    for (char& c : id) c = static_cast<char>(std::tolower(
        static_cast<unsigned char>(c)));
    if (token == id || token == rule.name) return rule.id;
  }
  return "";
}

/// Per-line sets of suppressed rule ids. A pragma suppresses findings on
/// its own line and on the following line, so both trailing pragmas and
/// pragma-comment lines above the offending statement work.
std::vector<std::set<std::string>> ParseAllows(
    const std::vector<std::string>& comments) {
  std::vector<std::set<std::string>> allows(comments.size());
  for (size_t i = 0; i < comments.size(); ++i) {
    const std::string& comment = comments[i];
    size_t at = comment.find("lint:allow");
    if (at == std::string::npos) continue;
    size_t cursor = at + std::string("lint:allow").size();
    // Tokens: rule ids/names separated by commas or spaces, until a token
    // that is not a known rule (e.g. trailing prose).
    while (cursor < comment.size()) {
      while (cursor < comment.size() &&
             (std::isspace(static_cast<unsigned char>(comment[cursor])) ||
              comment[cursor] == ',')) {
        ++cursor;
      }
      size_t start = cursor;
      while (cursor < comment.size() &&
             (IsIdentChar(comment[cursor]) || comment[cursor] == '-')) {
        ++cursor;
      }
      if (cursor == start) break;
      std::string id = CanonicalRule(comment.substr(start, cursor - start));
      if (id.empty()) break;
      allows[i].insert(id);
      if (i + 1 < comments.size()) allows[i + 1].insert(id);
    }
  }
  return allows;
}

// --- Path scoping ----------------------------------------------------------

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string Stem(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  size_t dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

bool InDigestLayer(const std::string& path) {
  return StartsWith(path, "src/crypto/") || StartsWith(path, "src/provenance/");
}

// ---------------------------------------------------------------------------
// R01 nondet-iteration
// ---------------------------------------------------------------------------

/// Names declared (or returned) with an unordered container type. Scans a
/// three-line window so declarations split across lines still resolve.
std::set<std::string> CollectUnorderedNames(
    const std::vector<std::string>& code) {
  std::set<std::string> names;
  for (size_t i = 0; i < code.size(); ++i) {
    std::string window = code[i];
    for (size_t j = i + 1; j < code.size() && j < i + 3; ++j) {
      window += ' ';
      window += code[j];
    }
    size_t pos = 0;
    while (true) {
      size_t m = window.find("unordered_map<", pos);
      size_t s = window.find("unordered_set<", pos);
      size_t hit = std::min(m, s);
      if (hit == std::string::npos) break;
      size_t open = window.find('<', hit);
      int depth = 0;
      size_t cursor = open;
      for (; cursor < window.size(); ++cursor) {
        if (window[cursor] == '<') ++depth;
        if (window[cursor] == '>' && --depth == 0) break;
      }
      pos = hit + 1;
      if (cursor >= window.size()) continue;  // unbalanced in window
      ++cursor;
      while (cursor < window.size() &&
             (std::isspace(static_cast<unsigned char>(window[cursor])) ||
              window[cursor] == '*' || window[cursor] == '&')) {
        ++cursor;
      }
      if (cursor + 1 < window.size() && window[cursor] == ':' &&
          window[cursor + 1] == ':') {
        continue;  // ...>::iterator etc. — not a declaration
      }
      size_t id_start = cursor;
      while (cursor < window.size() && IsIdentChar(window[cursor])) ++cursor;
      if (cursor > id_start) {
        names.insert(window.substr(id_start, cursor - id_start));
      }
    }
  }
  return names;
}

/// Root identifier of an expression like `state.pre_hashes` or
/// `this->cache_` — the last '.'/'->' component, stripped of calls.
std::string LastComponent(std::string expr) {
  // Trim whitespace and trailing call parens.
  auto trim = [](std::string& s) {
    while (!s.empty() &&
           std::isspace(static_cast<unsigned char>(s.back()))) {
      s.pop_back();
    }
    while (!s.empty() &&
           std::isspace(static_cast<unsigned char>(s.front()))) {
      s.erase(s.begin());
    }
  };
  trim(expr);
  while (EndsWith(expr, "()")) expr.resize(expr.size() - 2);
  trim(expr);
  size_t dot = expr.find_last_of('.');
  size_t arrow = expr.rfind("->");
  size_t cut = std::string::npos;
  if (dot != std::string::npos) cut = dot + 1;
  if (arrow != std::string::npos &&
      (cut == std::string::npos || arrow + 2 > cut)) {
    cut = arrow + 2;
  }
  if (cut != std::string::npos && cut <= expr.size()) {
    expr = expr.substr(cut);
  }
  trim(expr);
  return expr;
}

void RunR01(const std::string& path, const std::vector<std::string>& code,
            std::vector<Finding>* findings) {
  if (!InDigestLayer(path)) return;
  std::set<std::string> unordered = CollectUnorderedNames(code);
  for (size_t i = 0; i < code.size(); ++i) {
    size_t for_pos;
    if (!ContainsWord(code[i], "for", &for_pos)) continue;
    // Join a window so multi-line for-headers are matched.
    std::string window = code[i].substr(for_pos);
    for (size_t j = i + 1; j < code.size() && j < i + 3; ++j) {
      window += ' ';
      window += code[j];
    }
    size_t open = window.find('(');
    if (open == std::string::npos) continue;
    // Range-for: single ':' (not '::') at paren depth 1.
    int depth = 0;
    size_t colon = std::string::npos;
    size_t close = std::string::npos;
    for (size_t k = open; k < window.size(); ++k) {
      if (window[k] == '(') ++depth;
      if (window[k] == ')') {
        if (--depth == 0) {
          close = k;
          break;
        }
      }
      if (window[k] == ';') break;  // classic for loop
      if (window[k] == ':' && depth == 1 &&
          (k + 1 >= window.size() || window[k + 1] != ':') &&
          (k == 0 || window[k - 1] != ':') && colon == std::string::npos) {
        colon = k;
      }
    }
    std::string iterated;
    if (colon != std::string::npos && close != std::string::npos) {
      std::string range = window.substr(colon + 1, close - colon - 1);
      if (range.find("unordered_") != std::string::npos) {
        iterated = "an unordered container";
      } else {
        std::string root = LastComponent(range);
        if (unordered.count(root) > 0) iterated = "`" + root + "`";
      }
    }
    if (iterated.empty()) {
      // Iterator-style loop: for (auto it = x.begin(); ...).
      for (const std::string& name : unordered) {
        if (window.find(name + ".begin()") != std::string::npos ||
            window.find(name + "->begin()") != std::string::npos) {
          iterated = "`" + name + "`";
          break;
        }
      }
    }
    if (!iterated.empty()) {
      findings->push_back(Finding{
          "R01", "nondet-iteration", path, i + 1,
          "iterates " + iterated +
              " (unordered container) in hashing/serialization code; "
              "iteration order is nondeterministic, so any digest or "
              "wire encoding derived from it silently breaks R1-R4",
          "iterate a sorted view instead: copy the keys into a "
          "std::vector and std::sort, or use std::map/std::set when the "
          "container is iterated on the canonical path"});
    }
  }
}

// ---------------------------------------------------------------------------
// R02 banned-randomness / wall-clock
// ---------------------------------------------------------------------------

void RunR02(const std::string& path, const std::vector<std::string>& code,
            std::vector<Finding>* findings) {
  if (!StartsWith(path, "src/")) return;
  if (StartsWith(path, "src/common/rng.")) return;  // the sanctioned RNG
  struct Banned {
    const char* token;
    bool call_only;  // must be followed by '(' to count
  };
  static const Banned kBanned[] = {
      {"rand", true},          {"srand", true},   {"drand48", true},
      {"random_device", false}, {"time", true},    {"clock", true},
      {"gettimeofday", true},  {"localtime", true}, {"gmtime", true},
  };
  for (size_t i = 0; i < code.size(); ++i) {
    for (const Banned& banned : kBanned) {
      bool hit = banned.call_only ? ContainsCall(code[i], banned.token)
                                  : ContainsWord(code[i], banned.token);
      if (!hit) continue;
      findings->push_back(Finding{
          "R02", "banned-randomness", path, i + 1,
          std::string("uses `") + banned.token +
              "`: ambient randomness / wall-clock time makes workloads "
              "unreproducible and, if it reaches a hashed payload, makes "
              "digests nondeterministic",
          "take a provdb::Rng (src/common/rng.h) with an explicit seed, "
          "or a Stopwatch (steady_clock) for durations"});
      break;  // one finding per line is enough
    }
  }
}

// ---------------------------------------------------------------------------
// R03 raw-thread
// ---------------------------------------------------------------------------

void RunR03(const std::string& path, const std::vector<std::string>& code,
            std::vector<Finding>* findings) {
  if (!StartsWith(path, "src/")) return;
  if (StartsWith(path, "src/common/thread_pool.")) return;
  static const char* kBanned[] = {"std::thread", "std::jthread",
                                  "std::async", "pthread_create"};
  for (size_t i = 0; i < code.size(); ++i) {
    for (const char* token : kBanned) {
      size_t pos = code[i].find(token);
      if (pos == std::string::npos) continue;
      // Reject matches inside longer identifiers (std::this_thread is a
      // different token and allowed).
      size_t end = pos + std::string(token).size();
      if (end < code[i].size() && IsIdentChar(code[i][end])) continue;
      if (pos > 0 && IsIdentChar(code[i][pos - 1])) continue;
      findings->push_back(Finding{
          "R03", "raw-thread", path, i + 1,
          std::string("spawns `") + token +
              "` directly; ad-hoc threads bypass ParallelismConfig and "
              "the pool's deterministic result merge (reports must stay "
              "byte-identical to the sequential path)",
          "submit tasks to provdb::ThreadPool "
          "(src/common/thread_pool.h) instead"});
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// R04 ct-memcmp
// ---------------------------------------------------------------------------

void RunR04(const std::string& path, const std::vector<std::string>& code,
            std::vector<Finding>* findings) {
  if (!InDigestLayer(path)) return;
  for (size_t i = 0; i < code.size(); ++i) {
    if (!ContainsCall(code[i], "memcmp")) continue;
    findings->push_back(Finding{
        "R04", "ct-memcmp", path, i + 1,
        "calls `memcmp` in the digest/MAC layer; early-exit comparison "
        "leaks the length of the matching prefix (a remote timing "
        "oracle against checksum verification)",
        "use provdb::ConstantTimeEqual (src/common/bytes.h); ordering "
        "comparators may keep memcmp under `// lint:allow ct-memcmp`"});
  }
}

// ---------------------------------------------------------------------------
// R05 no-test
// ---------------------------------------------------------------------------

void RunR05(const std::string& path, const std::vector<TestFile>& corpus,
            std::vector<Finding>* findings) {
  if (!StartsWith(path, "src/") || !EndsWith(path, ".cc")) return;
  std::string stem = Stem(path);
  // The include spelling tests use: path relative to src/ with .h.
  std::string header_ref =
      "\"" + path.substr(std::string("src/").size(),
                         path.size() - std::string("src/").size() - 3) +
      ".h\"";
  std::string test_name = "/" + stem + "_test.cc";
  for (const TestFile& test : corpus) {
    if (EndsWith(test.path, test_name)) return;
    if (test.content.find(header_ref) != std::string::npos) return;
  }
  findings->push_back(Finding{
      "R05", "no-test", path, 1,
      "no test references this file: no tests/**/" + stem +
          "_test.cc and no test includes " + header_ref +
          " — untested code guarding tamper-evidence is unverified code",
      "add tests/<layer>/" + stem +
          "_test.cc (or include the header from an existing test); for "
          "genuinely untestable glue, annotate line 1 with "
          "// lint:allow no-test"});
}

// ---------------------------------------------------------------------------
// R06 raw-file-io
// ---------------------------------------------------------------------------

void RunR06(const std::string& path, const std::vector<std::string>& code,
            std::vector<Finding>* findings) {
  if (!StartsWith(path, "src/")) return;
  // The Env layer is the sanctioned owner of raw file primitives.
  if (StartsWith(path, "src/storage/env.")) return;
  struct Banned {
    const char* token;
    bool call_only;  // must be followed by '(' to count
  };
  static const Banned kBanned[] = {
      {"fopen", true},     {"freopen", true},   {"fdopen", true},
      {"tmpfile", true},   {"rename", true},    {"fsync", true},
      {"fdatasync", true}, {"ofstream", false}, {"ifstream", false},
      {"fstream", false},
  };
  for (size_t i = 0; i < code.size(); ++i) {
    for (const Banned& banned : kBanned) {
      bool hit = banned.call_only ? ContainsCall(code[i], banned.token)
                                  : ContainsWord(code[i], banned.token);
      if (!hit) continue;
      findings->push_back(Finding{
          "R06", "raw-file-io", path, i + 1,
          std::string("uses `") + banned.token +
              "` directly; persistence that bypasses storage::Env skips "
              "the fsync-before-rename / fsync-parent-dir durability "
              "protocol and is invisible to FaultInjectionEnv, so the "
              "crash-recovery suite cannot prove it loses nothing",
          "route file I/O through storage::Env (src/storage/env.h): "
          "NewWritableFile + Sync for writes, RenameFile for atomic "
          "publication, ReadFileToBytes for reads"});
      break;  // one finding per line is enough
    }
  }
}

// ---------------------------------------------------------------------------
// R07 adhoc-chrono
// ---------------------------------------------------------------------------

void RunR07(const std::string& path, const std::vector<std::string>& code,
            std::vector<Finding>* findings) {
  if (!StartsWith(path, "src/")) return;
  // The two sanctioned clock owners: Stopwatch wraps steady_clock for
  // inline duration measurement; the observability layer wraps it for
  // latency histograms and trace spans.
  if (StartsWith(path, "src/common/stopwatch.")) return;
  if (StartsWith(path, "src/observability/")) return;
  for (size_t i = 0; i < code.size(); ++i) {
    if (!ContainsWord(code[i], "chrono")) continue;
    findings->push_back(Finding{
        "R07", "adhoc-chrono", path, i + 1,
        "uses std::chrono directly; ad-hoc timing scatters clock reads "
        "that observability cannot see and invites wall-clock types "
        "(system_clock) into code that must stay deterministic",
        "measure durations with provdb::Stopwatch "
        "(src/common/stopwatch.h) or record them into a metrics "
        "histogram via observability::ScopedLatencyTimer "
        "(src/observability/metrics.h)"});
  }
}

// ---------------------------------------------------------------------------
// R08 unannotated-mutex
// ---------------------------------------------------------------------------

/// Declared mutex member/variable on `line` after the type token ending
/// at `after`: skips '*', '&', cv-qualifiers, then takes the identifier,
/// and accepts it only when the declarator ends in ';', '{', or '=' —
/// so parameters (`Mutex* mu)`) and template arguments never count.
std::string MutexDeclName(const std::string& line, size_t after) {
  size_t cursor = after;
  while (cursor < line.size()) {
    char c = line[cursor];
    if (std::isspace(static_cast<unsigned char>(c)) || c == '*' ||
        c == '&') {
      ++cursor;
      continue;
    }
    if (line.compare(cursor, 5, "const") == 0 &&
        (cursor + 5 >= line.size() || !IsIdentChar(line[cursor + 5]))) {
      cursor += 5;
      continue;
    }
    break;
  }
  size_t start = cursor;
  while (cursor < line.size() && IsIdentChar(line[cursor])) ++cursor;
  if (cursor == start) return "";
  std::string name = line.substr(start, cursor - start);
  while (cursor < line.size() &&
         std::isspace(static_cast<unsigned char>(line[cursor]))) {
    ++cursor;
  }
  if (cursor < line.size() &&
      (line[cursor] == ';' || line[cursor] == '{' || line[cursor] == '=')) {
    return name;
  }
  return "";
}

void RunR08(const std::string& path, const std::vector<std::string>& code,
            std::vector<Finding>* findings) {
  if (!StartsWith(path, "src/")) return;
  // The annotation vocabulary itself wraps the raw primitive.
  if (StartsWith(path, "src/common/thread_annotations.h")) return;
  std::string joined;
  for (const std::string& line : code) {
    joined += line;
    joined += '\n';
  }
  for (size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    std::string name;
    size_t pos;
    if (ContainsWord(line, "Mutex", &pos)) {
      name = MutexDeclName(line, pos + std::string("Mutex").size());
    }
    if (name.empty() && ContainsWord(line, "mutex", &pos)) {
      // std::mutex / pthread-style lowercase spellings.
      name = MutexDeclName(line, pos + std::string("mutex").size());
    }
    if (name.empty()) continue;
    bool used =
        joined.find("PROVDB_GUARDED_BY(" + name + ")") != std::string::npos ||
        joined.find("PROVDB_PT_GUARDED_BY(" + name + ")") !=
            std::string::npos ||
        joined.find("PROVDB_REQUIRES(" + name + ")") != std::string::npos ||
        joined.find("PROVDB_REQUIRES(" + name + ",") != std::string::npos;
    if (used) continue;
    findings->push_back(Finding{
        "R08", "unannotated-mutex", path, i + 1,
        "declares mutex `" + name +
            "` but nothing in this file is PROVDB_GUARDED_BY(" + name +
            ") or PROVDB_REQUIRES(" + name +
            "); an unannotated mutex guards nothing the clang "
            "thread-safety analysis can check, so a forgotten lock "
            "compiles silently",
        "declare the mutex as provdb::Mutex "
        "(src/common/thread_annotations.h), mark every member it "
        "protects PROVDB_GUARDED_BY(" +
            name +
            "), and give lock-requiring helpers PROVDB_REQUIRES(" + name +
            ")"});
  }
}

// ---------------------------------------------------------------------------
// R09 io-under-lock
// ---------------------------------------------------------------------------

void RunR09(const std::string& path, const std::vector<std::string>& code,
            std::vector<Finding>* findings) {
  if (!StartsWith(path, "src/")) return;
  // The Env layer owns the blocking primitives; its fault-injecting test
  // double deliberately holds a coarse lock across forwarded calls so
  // its bookkeeping matches the disk image (see its class comment).
  if (StartsWith(path, "src/storage/env.")) return;
  if (StartsWith(path, "src/storage/fault_injection_env.")) return;
  static const char* kGuards[] = {"lock_guard", "unique_lock",
                                  "scoped_lock", "MutexLock"};
  static const char* kBlocking[] = {"Sync",   "SyncDir",   "Flush",
                                    "Append", "RenameFile", "Rename"};
  int depth = 0;
  std::vector<int> live;  // depth at which each live guard was declared
  for (size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    // Events in this line, processed left to right: braces move scope
    // depth, a guard declaration arms the lock, a blocking invocation
    // under an armed guard is the finding.
    struct Event {
      size_t pos;
      int kind;  // 0 = '{', 1 = '}', 2 = guard decl, 3 = blocking call
      const char* token;
    };
    std::vector<Event> events;
    for (size_t p = 0; p < line.size(); ++p) {
      if (line[p] == '{') events.push_back(Event{p, 0, nullptr});
      if (line[p] == '}') events.push_back(Event{p, 1, nullptr});
    }
    for (const char* guard : kGuards) {
      size_t pos;
      if (ContainsWord(line, guard, &pos)) {
        events.push_back(Event{pos, 2, guard});
      }
    }
    for (const char* token : kBlocking) {
      size_t pos;
      if (ContainsInvocation(line, token, &pos)) {
        events.push_back(Event{pos, 3, token});
        break;  // one finding per line is enough
      }
    }
    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) { return a.pos < b.pos; });
    for (const Event& event : events) {
      switch (event.kind) {
        case 0:
          ++depth;
          break;
        case 1:
          --depth;
          while (!live.empty() && live.back() > depth) live.pop_back();
          break;
        case 2:
          live.push_back(depth);
          break;
        case 3:
          if (!live.empty()) {
            findings->push_back(Finding{
                "R09", "io-under-lock", path, i + 1,
                std::string("calls blocking `") + event.token +
                    "` inside a live lock scope; an fsync-class stall "
                    "under a mutex freezes every thread contending for "
                    "it (the latency cliff DESIGN.md's group-commit "
                    "design exists to avoid)",
                "move the I/O outside the critical section, or factor "
                "the locked part into a FooLocked() helper marked "
                "PROVDB_REQUIRES(mu) and do the I/O after release"});
          }
          break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R10 naked-lock
// ---------------------------------------------------------------------------

void RunR10(const std::string& path, const std::vector<std::string>& code,
            std::vector<Finding>* findings) {
  if (!StartsWith(path, "src/")) return;
  // The annotated Mutex wrapper and the pool's wait loop are the two
  // sanctioned owners of bare lock()/unlock() plumbing.
  if (StartsWith(path, "src/common/thread_annotations.h")) return;
  if (StartsWith(path, "src/common/thread_pool.")) return;
  static const char* kNaked[] = {"lock", "unlock", "try_lock"};
  for (size_t i = 0; i < code.size(); ++i) {
    for (const char* token : kNaked) {
      if (!ContainsMemberCall(code[i], token)) continue;
      findings->push_back(Finding{
          "R10", "naked-lock", path, i + 1,
          std::string("calls `.") + token +
              "()` manually; a lock without RAII leaks on every early "
              "return and exception path, and the clang thread-safety "
              "analysis cannot pair manual acquire/release across "
              "branches",
          "hold the mutex with provdb::MutexLock "
          "(src/common/thread_annotations.h) — or std::lock_guard for "
          "a bare std::mutex — scoped to the critical section"});
      break;  // one finding per line is enough
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public interface
// ---------------------------------------------------------------------------

std::string Finding::ToString(bool with_suggestion) const {
  std::ostringstream os;
  os << path << ":" << line << ": [" << rule_id << "/" << rule_name << "] "
     << message;
  if (with_suggestion && !suggestion.empty()) {
    os << "\n    fix: " << suggestion;
  }
  return os.str();
}

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo>* rules = new std::vector<RuleInfo>{
      {"R01", "nondet-iteration",
       "no unordered_map/unordered_set iteration in src/crypto/ or "
       "src/provenance/ (nondeterministic digest hazard)"},
      {"R02", "banned-randomness",
       "no rand()/time()/std::random_device outside src/common/rng.*"},
      {"R03", "raw-thread",
       "no std::thread/std::async outside src/common/thread_pool.*"},
      {"R04", "ct-memcmp",
       "no memcmp in the digest/MAC layer; use ConstantTimeEqual"},
      {"R05", "no-test",
       "every .cc under src/ needs a matching test reference"},
      {"R06", "raw-file-io",
       "no fopen/rename/fstream outside src/storage/env.*; all "
       "persistence goes through storage::Env"},
      {"R07", "adhoc-chrono",
       "no direct std::chrono outside src/common/stopwatch.* and "
       "src/observability/; time via Stopwatch or ScopedLatencyTimer"},
      {"R08", "unannotated-mutex",
       "every mutex declared in src/ needs a PROVDB_GUARDED_BY / "
       "PROVDB_REQUIRES user in the same file, so the clang "
       "thread-safety analysis has something to check"},
      {"R09", "io-under-lock",
       "no blocking file call (Sync/Flush/Append/Rename) lexically "
       "inside a live lock scope outside src/storage/env.* and the "
       "fault-injection env"},
      {"R10", "naked-lock",
       "no manual .lock()/.unlock(); critical sections are held by RAII "
       "guards (MutexLock) outside src/common/thread_pool.* and "
       "thread_annotations.h"},
  };
  return *rules;
}

void Linter::SetTestCorpus(std::vector<TestFile> corpus) {
  corpus_ = std::move(corpus);
  has_corpus_ = true;
}

std::vector<Finding> Linter::LintContent(const std::string& path,
                                         const std::string& content) const {
  AnnotatedSource source = Annotate(content);
  std::vector<std::set<std::string>> allows = ParseAllows(source.comments);

  std::vector<Finding> findings;
  RunR01(path, source.code, &findings);
  RunR02(path, source.code, &findings);
  RunR03(path, source.code, &findings);
  RunR04(path, source.code, &findings);
  if (has_corpus_) RunR05(path, corpus_, &findings);
  RunR06(path, source.code, &findings);
  RunR07(path, source.code, &findings);
  RunR08(path, source.code, &findings);
  RunR09(path, source.code, &findings);
  RunR10(path, source.code, &findings);

  findings.erase(
      std::remove_if(findings.begin(), findings.end(),
                     [&](const Finding& finding) {
                       size_t idx = finding.line - 1;
                       return idx < allows.size() &&
                              allows[idx].count(finding.rule_id) > 0;
                     }),
      findings.end());
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule_id < b.rule_id;
            });
  return findings;
}

}  // namespace provdb::lint
