// Randomized differential test: the same seeded workload driven into a
// sequential reference ProvenanceStore and into the sharded ingest
// pipeline at 1/2/8 shards must agree on every per-object chain (byte
// for byte), every live subtree digest, and every verifier/auditor
// verdict. Failures log the seed so the exact run can be replayed.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "provenance/auditor.h"
#include "provenance/serialization.h"
#include "provenance/subtree_hasher.h"
#include "testing/differential.h"

namespace provdb::provenance {
namespace {

using provdb::testing::DifferentialWorkloadOptions;
using provdb::testing::IngestWorkloadBuilder;
using provdb::testing::RandomDifferentialWorkload;
using provdb::testing::ReplayThroughPipeline;
using provdb::testing::TestPki;
using provdb::testing::WipeIngestRoot;
using storage::Env;
using storage::ObjectId;

/// Reference chains in the exact shape VerifyRecordChains consumes,
/// mirroring how the auditor groups a sequential store.
std::map<ObjectId, std::vector<const ProvenanceRecord*>> ReferenceChains(
    const ProvenanceStore& store) {
  std::map<ObjectId, std::vector<const ProvenanceRecord*>> chains;
  for (uint64_t i = 0; i < store.record_count(); ++i) {
    if (store.is_pruned(i)) continue;
    const ProvenanceRecord& rec = store.record(i);
    chains[rec.output.object_id].push_back(&rec);
  }
  return chains;
}

void RunDifferential(uint64_t seed, size_t num_shards) {
  SCOPED_TRACE("replay with seed=" + std::to_string(seed) +
               " num_shards=" + std::to_string(num_shards));
  IngestWorkloadBuilder builder;
  Status s = RandomDifferentialWorkload(&builder, seed);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_GT(builder.requests().size(), 0u);

  IngestOptions options;
  options.num_shards = num_shards;
  options.max_batch_records = 5;  // several batches per shard
  options.signing.num_threads = 4;
  std::string root = ::testing::TempDir() + "/provdb_diff_" +
                     std::to_string(seed) + "_" + std::to_string(num_shards);
  ASSERT_TRUE(WipeIngestRoot(Env::Default(), root).ok());
  auto pipeline =
      ReplayThroughPipeline(Env::Default(), root, builder.requests(), options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  const ShardedProvenanceStore& sharded = (*pipeline)->store();
  const ProvenanceStore& reference = builder.reference_store();

  // (1) Identical per-object chains, byte for byte.
  EXPECT_EQ(sharded.record_count(), reference.record_count());
  for (ObjectId id : builder.tracked_objects()) {
    SCOPED_TRACE("object " + std::to_string(id));
    std::vector<uint64_t> ref_chain = reference.ChainOf(id);
    std::vector<const ProvenanceRecord*> shard_chain =
        sharded.ChainRecords(id);
    ASSERT_EQ(shard_chain.size(), ref_chain.size());
    for (size_t i = 0; i < ref_chain.size(); ++i) {
      EXPECT_EQ(EncodeRecord(*shard_chain[i]),
                EncodeRecord(reference.record(ref_chain[i])))
          << "record " << i << " of chain " << id << " differs";
    }
  }

  // (2) Every tracked object's latest record hashes to the live subtree.
  SubtreeHasher hasher(&builder.tree(), builder.algorithm());
  for (ObjectId id : builder.tracked_objects()) {
    std::vector<const ProvenanceRecord*> chain = sharded.ChainRecords(id);
    ASSERT_FALSE(chain.empty());
    auto live = hasher.HashSubtreeBasic(id);
    ASSERT_TRUE(live.ok()) << live.status().ToString();
    EXPECT_TRUE(chain.back()->output.state_hash == *live)
        << "live digest diverged for object " << id;
  }

  // (3) Identical verifier verdicts (full report text, not just ok()).
  ChecksumEngine engine(builder.algorithm());
  VerificationReport ref_verify;
  VerifyRecordChains(builder.registry(), engine, ReferenceChains(reference),
                     &ref_verify);
  VerificationReport sharded_verify =
      sharded.VerifyChains(builder.registry(), builder.algorithm());
  EXPECT_TRUE(sharded_verify.ok()) << sharded_verify.ToString();
  EXPECT_EQ(sharded_verify.ToString(), ref_verify.ToString());
  EXPECT_EQ(sharded_verify.records_checked, ref_verify.records_checked);
  EXPECT_EQ(sharded_verify.signatures_verified,
            ref_verify.signatures_verified);

  // (4) Identical audit verdicts against the live tree, via the merged
  // cross-shard store.
  auto merged = sharded.MergedStore();
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  StoreAuditor auditor(&builder.registry(), builder.algorithm());
  VerificationReport audit_sharded = auditor.Audit(*merged, builder.tree());
  VerificationReport audit_ref = auditor.Audit(reference, builder.tree());
  EXPECT_TRUE(audit_sharded.ok()) << audit_sharded.ToString();
  EXPECT_EQ(audit_sharded.ToString(), audit_ref.ToString());

  // (5) Recovery round-trip: the on-disk WALs rebuild the same store.
  auto recovered =
      ShardedProvenanceStore::Recover(Env::Default(), root, num_shards);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->record_count(), reference.record_count());
  for (ObjectId id : builder.tracked_objects()) {
    std::vector<const ProvenanceRecord*> a = sharded.ChainRecords(id);
    std::vector<const ProvenanceRecord*> b = recovered->ChainRecords(id);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(EncodeRecord(*a[i]), EncodeRecord(*b[i]));
    }
  }
  VerificationReport rec_verify =
      recovered->VerifyChains(builder.registry(), builder.algorithm());
  EXPECT_TRUE(rec_verify.ok()) << rec_verify.ToString();
}

TEST(IngestDifferentialTest, RandomWorkloadsAgreeAtEveryShardCount) {
  const uint64_t seeds[] = {0xD1FF0001u, 0xD1FF0002u, 0xD1FF0003u};
  const size_t shard_counts[] = {1, 2, 8};
  for (uint64_t seed : seeds) {
    for (size_t shards : shard_counts) {
      RunDifferential(seed, shards);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(IngestDifferentialTest, SyncEveryRecordModeAlsoAgrees) {
  // The baseline write path (fsync per record) must produce the same
  // bytes as group commit — durability cadence must never change what
  // gets signed.
  const uint64_t seed = 0xD1FFBEEF;
  IngestWorkloadBuilder builder;
  DifferentialWorkloadOptions wl;
  wl.num_ops = 30;
  ASSERT_TRUE(RandomDifferentialWorkload(&builder, seed, wl).ok());

  IngestOptions options;
  options.num_shards = 2;
  options.sync_every_record = true;
  std::string root = ::testing::TempDir() + "/provdb_diff_synceach";
  ASSERT_TRUE(WipeIngestRoot(Env::Default(), root).ok());
  auto pipeline =
      ReplayThroughPipeline(Env::Default(), root, builder.requests(), options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

  const ProvenanceStore& reference = builder.reference_store();
  EXPECT_EQ((*pipeline)->store().record_count(), reference.record_count());
  for (ObjectId id : builder.tracked_objects()) {
    std::vector<uint64_t> ref_chain = reference.ChainOf(id);
    std::vector<const ProvenanceRecord*> chain =
        (*pipeline)->store().ChainRecords(id);
    ASSERT_EQ(chain.size(), ref_chain.size());
    for (size_t i = 0; i < ref_chain.size(); ++i) {
      EXPECT_EQ(EncodeRecord(*chain[i]),
                EncodeRecord(reference.record(ref_chain[i])));
    }
  }
}

}  // namespace
}  // namespace provdb::provenance
