// Durable lifecycle integration: TrackedDatabase -> WAL -> crash ->
// RecoverFromWal -> verification, including a fault-injection sweep that
// crashes the workload at every single file write.

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "provenance/auditor.h"
#include "provenance/ingest_pipeline.h"
#include "provenance/serialization.h"
#include "provenance/tracked_database.h"
#include "provenance/verifier.h"
#include "storage/fault_injection_env.h"
#include "storage/wal.h"
#include "testing/differential.h"
#include "testing/test_pki.h"

namespace provdb::provenance {
namespace {

using provdb::testing::DifferentialWorkloadOptions;
using provdb::testing::IngestWorkloadBuilder;
using provdb::testing::RandomDifferentialWorkload;
using provdb::testing::TestPki;
using provdb::testing::WipeIngestRoot;
using storage::Env;
using storage::FaultInjectionEnv;
using storage::ObjectId;
using storage::Value;
using storage::WalOptions;
using storage::WalRecoveryReport;
using storage::WalWriter;

const crypto::Participant& P(int i) {
  return TestPki::Instance().participant(i - 1);
}

std::string FreshDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "/provdb_wal_recovery_" + tag;
  // Leftover segments from a previous run would be recovered as live
  // history; every caller starts from an empty log directory.
  auto names = Env::Default()->ListDir(dir);
  if (names.ok()) {
    for (const std::string& name : *names) {
      EXPECT_TRUE(Env::Default()->RemoveFile(dir + "/" + name).ok());
    }
  }
  return dir;
}

/// The tracked workload every crash point is injected into: a small tree,
/// updates, an aggregation, and a post-aggregation update. Mirrors the
/// persistence integration test so the recovered store faces the same
/// verifier and auditor. Stops at the first failed operation, exactly as
/// a real writer hitting an I/O error would.
Status RunWorkload(TrackedDatabase& db, ObjectId* agg_out = nullptr) {
  PROVDB_ASSIGN_OR_RETURN(ObjectId root, db.Insert(P(1), Value::String("db")));
  PROVDB_ASSIGN_OR_RETURN(ObjectId row, db.Insert(P(1), Value::Int(0), root));
  PROVDB_ASSIGN_OR_RETURN(ObjectId cell, db.Insert(P(2), Value::Int(5), row));
  PROVDB_RETURN_IF_ERROR(db.Update(P(1), cell, Value::Int(6)));
  PROVDB_ASSIGN_OR_RETURN(ObjectId agg,
                          db.Aggregate(P(2), {root}, Value::String("agg")));
  PROVDB_RETURN_IF_ERROR(db.Update(P(2), agg, Value::String("agg-v2")));
  if (agg_out != nullptr) {
    *agg_out = agg;
  }
  return Status::OK();
}

TEST(WalRecoveryTest, DurableLifecycleRoundTripVerifies) {
  std::string dir = FreshDir("lifecycle");
  ObjectId agg = storage::kInvalidObjectId;
  TrackedDatabase db;
  auto wal = WalWriter::Open(Env::Default(), dir);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_TRUE(db.AttachWal(&*wal).ok());
  ASSERT_TRUE(RunWorkload(db, &agg).ok());
  ASSERT_TRUE(db.SyncWal().ok());

  WalRecoveryReport report;
  auto restored = ProvenanceStore::RecoverFromWal(Env::Default(), dir, &report);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(restored->record_count(), db.provenance().record_count());

  // A bundle built from the recovered store + a live snapshot verifies.
  RecipientBundle bundle;
  bundle.subject = agg;
  bundle.data = *SubtreeSnapshot::Capture(db.tree(), agg);
  bundle.records = *restored->ExtractProvenance(agg);
  ProvenanceVerifier verifier(&TestPki::Instance().registry());
  auto verdict = verifier.Verify(bundle);
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();

  // And the whole recovered store audits clean against the live tree.
  StoreAuditor auditor(&TestPki::Instance().registry());
  auto audit = auditor.Audit(*restored, db.tree());
  EXPECT_TRUE(audit.ok()) << audit.ToString();
}

TEST(WalRecoveryTest, AttachCheckpointsPreexistingRecords) {
  std::string dir = FreshDir("checkpoint");
  TrackedDatabase db;
  // Half the workload happens before the WAL exists...
  ASSERT_TRUE(RunWorkload(db).ok());
  uint64_t before_attach = db.provenance().record_count();
  ASSERT_GT(before_attach, 0u);

  auto wal = WalWriter::Open(Env::Default(), dir);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(db.AttachWal(&*wal).ok());
  // ...and more after. Recovery must replay both halves.
  ASSERT_TRUE(db.Update(P(1), *db.Insert(P(1), Value::Int(1)),
                        Value::Int(2)).ok());
  ASSERT_TRUE(db.SyncWal().ok());

  auto restored = ProvenanceStore::RecoverFromWal(Env::Default(), dir);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_GT(db.provenance().record_count(), before_attach);
  EXPECT_EQ(restored->record_count(), db.provenance().record_count());
}

TEST(WalRecoveryTest, FailedAttachCheckpointLeavesStoreUsableAndUnattached) {
  // If the attach-time checkpoint of pre-existing records fails partway
  // through its WAL appends, the attach must not half-happen: the store
  // stays detached (no write-ahead contract against a log holding a
  // partial history) and remains fully usable in memory.
  std::string dir = FreshDir("attach_fault");
  FaultInjectionEnv env(Env::Default());
  TrackedDatabase db;
  ASSERT_TRUE(RunWorkload(db).ok());
  uint64_t before_attach = db.provenance().record_count();
  ASSERT_GT(before_attach, 1u);

  auto wal = WalWriter::Open(&env, dir);
  ASSERT_TRUE(wal.ok());
  env.ScheduleAppendFailure(2);  // fail mid-checkpoint, not on record 1
  EXPECT_EQ(db.AttachWal(&*wal).code(), StatusCode::kIoError);
  env.ClearFaults();

  // Unattached: durability calls refuse, mutations bypass the WAL.
  EXPECT_EQ(db.SyncWal().code(), StatusCode::kFailedPrecondition);
  uint64_t appended = wal->appended_records();
  ASSERT_TRUE(db.Insert(P(1), Value::Int(42)).ok());
  EXPECT_EQ(db.provenance().record_count(), before_attach + 1);
  EXPECT_EQ(wal->appended_records(), appended)
      << "a failed attach must not leave the WAL wired to the store";

  // A later attach to a fresh log works and checkpoints everything.
  std::string dir2 = FreshDir("attach_fault_retry");
  auto wal2 = WalWriter::Open(Env::Default(), dir2);
  ASSERT_TRUE(wal2.ok());
  ASSERT_TRUE(db.AttachWal(&*wal2).ok());
  ASSERT_TRUE(db.SyncWal().ok());
  auto restored = ProvenanceStore::RecoverFromWal(Env::Default(), dir2);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->record_count(), db.provenance().record_count());
}

TEST(WalRecoveryTest, SecondAttachRejected) {
  std::string dir = FreshDir("reattach");
  TrackedDatabase db;
  auto wal = WalWriter::Open(Env::Default(), dir);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(db.AttachWal(&*wal).ok());
  EXPECT_EQ(db.AttachWal(&*wal).code(), StatusCode::kFailedPrecondition);
}

TEST(WalRecoveryTest, SyncWithoutAttachedWalFails) {
  TrackedDatabase db;
  EXPECT_EQ(db.SyncWal().code(), StatusCode::kFailedPrecondition);
}

TEST(WalRecoveryTest, FailedWalAppendLeavesStoreUnchanged) {
  // The write-ahead contract: if the log cannot take the record, the
  // in-memory store must not either (no divergence from disk).
  std::string dir = FreshDir("rejected");
  FaultInjectionEnv env(Env::Default());
  TrackedDatabase db;
  auto wal = WalWriter::Open(&env, dir);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(db.AttachWal(&*wal).ok());
  ASSERT_TRUE(db.Insert(P(1), Value::String("db")).ok());
  uint64_t committed = db.provenance().record_count();

  env.ScheduleAppendFailure(1);
  EXPECT_FALSE(db.Insert(P(1), Value::Int(7)).ok());
  EXPECT_EQ(db.provenance().record_count(), committed);
  env.ClearFaults();

  // The store is usable again once the fault clears.
  EXPECT_TRUE(db.Insert(P(1), Value::Int(8)).ok());
  EXPECT_EQ(db.provenance().record_count(), committed + 1);
}

TEST(WalRecoveryTest, PruneSurvivesCrashRecovery) {
  std::string dir = FreshDir("prune");
  TrackedDatabase db;
  auto wal = WalWriter::Open(Env::Default(), dir);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(db.AttachWal(&*wal).ok());

  ObjectId solo = *db.Insert(P(1), Value::String("solo"));
  ASSERT_TRUE(db.Update(P(1), solo, Value::String("solo-v2")).ok());
  ObjectId agg = *db.Aggregate(P(2), {solo}, Value::String("agg"));
  ASSERT_TRUE(db.Insert(P(1), Value::Int(7)).ok());  // unrelated survivor
  // Pruning the aggregate releases its input refs, which is what makes
  // pruning `solo` legal — an ordering a replay of appends alone cannot
  // reproduce: it would re-inflate the refs and refuse the second prune.
  ASSERT_TRUE(db.mutable_provenance()->PruneObject(agg).ok());
  auto dropped = db.mutable_provenance()->PruneObject(solo);
  ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();
  EXPECT_GT(*dropped, 0u);
  ASSERT_TRUE(db.SyncWal().ok());

  auto restored = ProvenanceStore::RecoverFromWal(Env::Default(), dir);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->record_count(), db.provenance().record_count());
  EXPECT_EQ(restored->live_record_count(),
            db.provenance().live_record_count());
  EXPECT_TRUE(restored->ChainOf(solo).empty()) << "prune resurrected";
  EXPECT_TRUE(restored->ChainOf(agg).empty()) << "prune resurrected";
}

TEST(WalRecoveryTest, BatchedSyncPowerCutRecoversExactlySyncedPrefix) {
  std::string dir = FreshDir("batched");
  FaultInjectionEnv env(Env::Default());
  TrackedDatabase db;
  auto wal = WalWriter::Open(&env, dir);  // sync_every_append = false
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(db.AttachWal(&*wal).ok());

  ObjectId root = *db.Insert(P(1), Value::String("db"));
  ASSERT_TRUE(db.Insert(P(1), Value::Int(0), root).ok());
  ASSERT_TRUE(db.SyncWal().ok());
  uint64_t synced = wal->synced_records();
  // More records after the durability point, never synced.
  ASSERT_TRUE(db.Insert(P(2), Value::Int(1), root).ok());
  ASSERT_TRUE(db.Update(P(2), root, Value::String("db-v2")).ok());
  ASSERT_GT(wal->appended_records(), synced);

  ASSERT_TRUE(env.DropUnsyncedFileData().ok());

  WalRecoveryReport report;
  auto restored = ProvenanceStore::RecoverFromWal(&env, dir, &report);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(report.clean()) << report.detail;
  EXPECT_EQ(restored->record_count(), synced);
  EXPECT_LT(restored->record_count(), db.provenance().record_count());
}

/// One sweep iteration: run the workload against a WAL whose `k`-th file
/// write fails (optionally tearing mid-write), optionally power-cut the
/// machine (dropping unsynced data), then recover and check the two
/// invariants of ISSUE acceptance: every record appended before a
/// successful Sync survives, and no half-written frame is resurrected.
void CrashAtWrite(uint64_t k, bool torn, bool power_cut) {
  SCOPED_TRACE("crash at write " + std::to_string(k) +
               (torn ? " (torn)" : " (clean)") +
               (power_cut ? " + power cut" : ""));
  std::string dir = FreshDir("sweep_" + std::to_string(k) +
                             (torn ? "t" : "c") + (power_cut ? "p" : ""));
  FaultInjectionEnv env(Env::Default());
  env.ScheduleAppendFailure(k, torn);

  WalOptions options;
  options.sync_every_append = true;
  TrackedDatabase db;
  auto wal = WalWriter::Open(&env, dir, options);
  if (wal.ok()) {
    ASSERT_TRUE(db.AttachWal(&*wal).ok());
    Status crash = RunWorkload(db);  // expected to die at crash point k
    (void)crash;
  }
  // Every record the store committed was synced before commit.
  uint64_t committed = db.provenance().record_count();
  if (wal.ok()) {
    EXPECT_EQ(wal->synced_records(), committed);
  }

  env.ClearFaults();
  if (power_cut) {
    ASSERT_TRUE(env.DropUnsyncedFileData().ok());
  }

  WalRecoveryReport report;
  auto restored = ProvenanceStore::RecoverFromWal(&env, dir, &report);
  ASSERT_TRUE(restored.ok())
      << "crash point must salvage or report, never fail to recover: "
      << restored.status().ToString();
  // Exactly the committed prefix — nothing lost, nothing resurrected.
  EXPECT_EQ(restored->record_count(), committed);
  if (power_cut) {
    // The torn half-frame was never synced, so the power cut erases it:
    // recovery sees a byte-exact log.
    EXPECT_TRUE(report.clean()) << report.detail;
  } else if (torn && k > 1) {
    // Process crash without power cut: the flushed half-frame is still on
    // disk and must be reported as dropped, not silently absorbed.
    EXPECT_GT(report.dropped_bytes, 0u);
  }

  // Second cycle: after the first recovery repaired the tail, a writer
  // restarts on the directory (as the recovered process would) and a
  // later recovery must still be clean. Guards the double-crash case
  // where the crash tore a segment *header* — the remnant must not
  // survive as a headerless segment stranded before the new tail.
  {
    auto wal2 = WalWriter::Open(&env, dir, options);
    ASSERT_TRUE(wal2.ok()) << wal2.status().ToString();
    ASSERT_TRUE(wal2->Close().ok());
  }
  auto restored2 = ProvenanceStore::RecoverFromWal(&env, dir, &report);
  ASSERT_TRUE(restored2.ok())
      << "recovery after restart must stay clean: "
      << restored2.status().ToString();
  EXPECT_TRUE(report.clean()) << report.detail;
  EXPECT_EQ(restored2->record_count(), committed);
}

TEST(WalCrashSweepTest, CrashAtEveryWrite) {
  // Dry run: count every file write the full workload performs (segment
  // header included) so the sweep covers each one.
  uint64_t total_writes = 0;
  {
    FaultInjectionEnv env(Env::Default());
    WalOptions options;
    options.sync_every_append = true;
    TrackedDatabase db;
    auto wal = WalWriter::Open(&env, FreshDir("sweep_dry"), options);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(db.AttachWal(&*wal).ok());
    ASSERT_TRUE(RunWorkload(db).ok());
    ASSERT_TRUE(wal->Close().ok());
    total_writes = env.append_count();
  }
  ASSERT_GT(total_writes, 5u) << "workload too small to be a sweep";

  for (uint64_t k = 1; k <= total_writes; ++k) {
    CrashAtWrite(k, /*torn=*/false, /*power_cut=*/false);
    CrashAtWrite(k, /*torn=*/true, /*power_cut=*/false);
    CrashAtWrite(k, /*torn=*/true, /*power_cut=*/true);
  }
}

// ---------------------------------------------------------------------
// Sharded group-commit crash sweep: the batched ingest pipeline under
// fault injection. Invariants from the write-ahead contract:
//   * a record is committed in memory only after its batch is fsynced,
//     so per shard synced_records == committed count at any crash point;
//   * after a power cut, recovery yields *exactly* the committed records
//     (nothing un-fsynced resurrected, nothing durable lost);
//   * without a power cut, recovery yields at least the committed prefix
//     and never anything beyond the golden (crash-free) run;
//   * resuming ingest of the not-yet-durable requests reproduces the
//     golden store byte for byte.
// ---------------------------------------------------------------------

constexpr size_t kSweepShards = 2;

IngestOptions SweepIngestOptions() {
  IngestOptions options;
  options.num_shards = kSweepShards;
  options.max_batch_records = 3;  // several flushes, each one fsync
  // Default (sequential) signing: FaultInjectionEnv is single-threaded.
  return options;
}

struct ShardedSweepFixture {
  std::vector<IngestRequest> requests;
  // Per shard, the EncodeRecord bytes of the crash-free run, in commit
  // order. Per-shard commit order is fully determined by submit order,
  // so any crashed run must be a byte-prefix of this.
  std::array<std::vector<Bytes>, kSweepShards> golden;
  uint64_t total_appends = 0;
  uint64_t total_syncs = 0;
};

std::string FreshIngestRoot(const std::string& tag) {
  std::string root = ::testing::TempDir() + "/provdb_ingest_sweep_" + tag;
  EXPECT_TRUE(WipeIngestRoot(Env::Default(), root).ok());
  return root;
}

/// Builds the seeded workload once, replays it crash-free through a
/// fault-counting env to freeze the golden per-shard record bytes and
/// the append/sync counts the sweeps iterate over.
void BuildShardedSweepFixture(ShardedSweepFixture* fx) {
  IngestWorkloadBuilder builder;
  DifferentialWorkloadOptions wl;
  wl.num_ops = 30;
  ASSERT_TRUE(RandomDifferentialWorkload(&builder, 0xC4A54u, wl).ok());
  fx->requests = builder.requests();
  ASSERT_GT(fx->requests.size(), 10u);

  FaultInjectionEnv env(Env::Default());
  std::string root = FreshIngestRoot("golden");
  auto pipeline = IngestPipeline::Open(&env, root, SweepIngestOptions());
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  for (const IngestRequest& request : fx->requests) {
    ASSERT_TRUE((*pipeline)->Submit(request).ok());
  }
  ASSERT_TRUE((*pipeline)->Close().ok());
  for (size_t s = 0; s < kSweepShards; ++s) {
    const ProvenanceStore& shard = (*pipeline)->store().shard(s);
    for (uint64_t i = 0; i < shard.record_count(); ++i) {
      fx->golden[s].push_back(EncodeRecord(shard.record(i)));
    }
    ASSERT_FALSE(fx->golden[s].empty()) << "shard " << s << " never used";
  }
  fx->total_appends = env.append_count();
  fx->total_syncs = env.sync_count();
}

/// One crash cycle: ingest under an injected fault, crash (destroy the
/// pipeline without Close), optionally power-cut, recover, check the
/// durability invariants, then resume the missing suffix and require the
/// end state to equal the golden run.
void RunShardedCrashCycle(const ShardedSweepFixture& fx,
                          const std::function<void(FaultInjectionEnv*)>& arm,
                          bool power_cut, const std::string& tag) {
  std::string root = FreshIngestRoot(tag);
  FaultInjectionEnv env(Env::Default());
  arm(&env);

  std::array<uint64_t, kSweepShards> committed{};
  {
    auto pipeline = IngestPipeline::Open(&env, root, SweepIngestOptions());
    if (pipeline.ok()) {
      for (const IngestRequest& request : fx.requests) {
        if (!(*pipeline)->Submit(request).ok()) break;  // pipeline poisoned
      }
      for (size_t s = 0; s < kSweepShards; ++s) {
        committed[s] = (*pipeline)->store().shard(s).record_count();
        const WalWriter* wal = (*pipeline)->shard_wal(s);
        ASSERT_NE(wal, nullptr);
        // The write-ahead contract under group commit: nothing commits
        // in memory before its batch hit fsync.
        EXPECT_EQ(wal->synced_records(), committed[s]);
      }
    }
    // Scope exit without Close(): the crash.
  }

  env.ClearFaults();
  if (power_cut) {
    ASSERT_TRUE(env.DropUnsyncedFileData().ok());
  }

  std::vector<WalRecoveryReport> reports;
  auto recovered =
      ShardedProvenanceStore::Recover(&env, root, kSweepShards, &reports);
  ASSERT_TRUE(recovered.ok())
      << "crash point must salvage or report, never fail to recover: "
      << recovered.status().ToString();
  std::array<uint64_t, kSweepShards> durable{};
  for (size_t s = 0; s < kSweepShards; ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    const ProvenanceStore& shard = recovered->shard(s);
    durable[s] = shard.record_count();
    if (power_cut) {
      // A power cut erases everything un-fsynced: recovery must see
      // exactly the committed records — no resurrection, no loss.
      EXPECT_EQ(durable[s], committed[s]);
    } else {
      // A process crash leaves OS-buffered appends on disk; recovery may
      // keep them, but never less than what was committed durable.
      EXPECT_GE(durable[s], committed[s]);
    }
    ASSERT_LE(durable[s], fx.golden[s].size());
    for (uint64_t i = 0; i < durable[s]; ++i) {
      EXPECT_EQ(EncodeRecord(shard.record(i)), fx.golden[s][i])
          << "recovered record " << i << " diverged from the golden run";
    }
  }

  // Resume: a fresh pipeline recovers the shard tails and ingests every
  // request that is not yet durable. The result must be byte-identical
  // to never having crashed (chains continue from recovered tails).
  {
    auto pipeline = IngestPipeline::Open(&env, root, SweepIngestOptions());
    ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    std::array<uint64_t, kSweepShards> seen{};
    for (const IngestRequest& request : fx.requests) {
      const size_t s =
          ShardedProvenanceStore::ShardOf(request.object, kSweepShards);
      if (seen[s]++ < durable[s]) continue;  // already recovered
      ASSERT_TRUE((*pipeline)->Submit(request).ok());
    }
    ASSERT_TRUE((*pipeline)->Close().ok());
    for (size_t s = 0; s < kSweepShards; ++s) {
      SCOPED_TRACE("shard " + std::to_string(s) + " after resume");
      const ProvenanceStore& shard = (*pipeline)->store().shard(s);
      ASSERT_EQ(shard.record_count(), fx.golden[s].size());
      for (uint64_t i = 0; i < shard.record_count(); ++i) {
        EXPECT_EQ(EncodeRecord(shard.record(i)), fx.golden[s][i]);
      }
    }
  }
}

TEST(ShardedIngestCrashSweepTest, CrashAtEveryAppend) {
  ShardedSweepFixture fx;
  BuildShardedSweepFixture(&fx);
  if (::testing::Test::HasFatalFailure()) return;
  ASSERT_GT(fx.total_appends, 10u) << "workload too small to be a sweep";

  // Small k crashes the shard WAL *header* writes during Open — the
  // mid-shard-directory-creation case — before any record lands.
  for (uint64_t k = 1; k <= fx.total_appends; ++k) {
    for (bool torn : {false, true}) {
      for (bool power_cut : {false, true}) {
        SCOPED_TRACE("append " + std::to_string(k) +
                     (torn ? " torn" : " clean") +
                     (power_cut ? " + power cut" : ""));
        RunShardedCrashCycle(
            fx,
            [k, torn](FaultInjectionEnv* env) {
              env->ScheduleAppendFailure(k, torn);
            },
            power_cut,
            "a" + std::to_string(k) + (torn ? "t" : "c") +
                (power_cut ? "p" : ""));
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

TEST(ShardedIngestCrashSweepTest, CrashAtEveryBatchFsync) {
  ShardedSweepFixture fx;
  BuildShardedSweepFixture(&fx);
  if (::testing::Test::HasFatalFailure()) return;
  ASSERT_GT(fx.total_syncs, 4u) << "not enough batches to sweep";

  // Failing the n-th fsync kills a whole batch at its durability point:
  // none of that batch's records may commit, and after a power cut none
  // may survive on disk.
  for (uint64_t n = 1; n <= fx.total_syncs; ++n) {
    for (bool power_cut : {false, true}) {
      SCOPED_TRACE("sync " + std::to_string(n) +
                   (power_cut ? " + power cut" : ""));
      RunShardedCrashCycle(
          fx,
          [n](FaultInjectionEnv* env) { env->ScheduleSyncFailure(n); },
          power_cut, "s" + std::to_string(n) + (power_cut ? "p" : ""));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

}  // namespace
}  // namespace provdb::provenance
