// End-to-end integration: tracked operations -> provenance records with
// checksums -> recipient bundle -> verification, including the Figure 2
// non-linear scenario and tamper detection across module boundaries.

#include <gtest/gtest.h>

#include "provenance/attack.h"
#include "provenance/tracked_database.h"
#include "provenance/verifier.h"
#include "testing/test_pki.h"

namespace provdb::provenance {
namespace {

using storage::ObjectId;
using storage::Value;
using testing_pki = provdb::testing::TestPki;

class EndToEndTest : public ::testing::Test {
 protected:
  const crypto::Participant& p1() { return testing_pki::Instance().participant(0); }
  const crypto::Participant& p2() { return testing_pki::Instance().participant(1); }
  const crypto::Participant& p3() { return testing_pki::Instance().participant(2); }

  ProvenanceVerifier MakeVerifier() {
    return ProvenanceVerifier(&testing_pki::Instance().registry());
  }
};

// Reproduces Figure 2: A and B inserted by p2, updated several times,
// C = Aggregate(A@a1? no: A original and updated B) ... concretely:
//   p2 inserts A=a1, B=b1; p1 updates A->a2; p2 updates B->b2;
//   p2 updates A->a3; p3 aggregates {A(a1-era snapshot is gone; we use
//   current states}, producing the DAG shape; p1 aggregates {A, C} -> D.
TEST_F(EndToEndTest, NonLinearProvenanceVerifies) {
  TrackedDatabase db;
  auto a = db.Insert(p2(), Value::String("a1"));
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  auto b = db.Insert(p2(), Value::String("b1"));
  ASSERT_TRUE(b.ok());

  ASSERT_TRUE(db.Update(p1(), *a, Value::String("a2")).ok());
  ASSERT_TRUE(db.Update(p2(), *b, Value::String("b2")).ok());

  auto c = db.Aggregate(p3(), {*a, *b}, Value::String("c1"));
  ASSERT_TRUE(c.ok()) << c.status().ToString();

  ASSERT_TRUE(db.Update(p2(), *a, Value::String("a3")).ok());

  auto d = db.Aggregate(p1(), {*a, *c}, Value::String("d1"));
  ASSERT_TRUE(d.ok());

  auto bundle = db.ExportForRecipient(*d);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();

  // D's provenance object must include the history of A, B, and C.
  bool saw_a = false, saw_b = false, saw_c = false;
  for (const ProvenanceRecord& rec : bundle->records) {
    saw_a |= rec.output.object_id == *a;
    saw_b |= rec.output.object_id == *b;
    saw_c |= rec.output.object_id == *c;
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
  EXPECT_TRUE(saw_c);

  VerificationReport report = MakeVerifier().Verify(*bundle);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(report.signatures_verified, 5u);
}

TEST_F(EndToEndTest, CompoundObjectsWithInheritanceVerify) {
  TrackedDatabase db;
  auto root = db.Insert(p1(), Value::String("db"));
  ASSERT_TRUE(root.ok());
  auto table = db.Insert(p1(), Value::String("patients"), *root);
  ASSERT_TRUE(table.ok());
  auto row = db.Insert(p2(), Value::Int(0), *table);
  ASSERT_TRUE(row.ok());
  auto age = db.Insert(p2(), Value::Int(44), *row);
  ASSERT_TRUE(age.ok());
  auto weight = db.Insert(p2(), Value::Double(81.5), *row);
  ASSERT_TRUE(weight.ok());

  // Update a cell: the row, table, and root inherit records.
  ASSERT_TRUE(db.Update(p3(), *age, Value::Int(45)).ok());

  // Export at every granularity; each bundle verifies independently.
  for (ObjectId subject : {*age, *row, *table, *root}) {
    auto bundle = db.ExportForRecipient(subject);
    ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
    VerificationReport report = MakeVerifier().Verify(*bundle);
    EXPECT_TRUE(report.ok())
        << "subject " << subject << ": " << report.ToString();
  }

  // The update produced an actual record for the cell plus inherited
  // records for row, table, and root.
  EXPECT_EQ(db.last_op_metrics().checksums, 4u);
}

TEST_F(EndToEndTest, TamperingDetectedAfterRoundTrip) {
  TrackedDatabase db;
  auto a = db.Insert(p1(), Value::String("v1"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(db.Update(p2(), *a, Value::String("v2")).ok());
  ASSERT_TRUE(db.Update(p1(), *a, Value::String("v3")).ok());

  auto bundle = db.ExportForRecipient(*a);
  ASSERT_TRUE(bundle.ok());

  // Serialize / deserialize (the wire trip a real recipient would see).
  Bytes wire = bundle->Serialize();
  auto received = RecipientBundle::Deserialize(wire);
  ASSERT_TRUE(received.ok()) << received.status().ToString();
  EXPECT_TRUE(MakeVerifier().Verify(*received).ok());

  // R4: tamper the shipped data without provenance.
  RecipientBundle tampered = *received;
  ASSERT_TRUE(
      attacks::TamperDataValue(&tampered, *a, Value::String("evil")).ok());
  VerificationReport report = MakeVerifier().Verify(tampered);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasIssue(IssueKind::kDataHashMismatch));
}

TEST_F(EndToEndTest, ComplexOperationProducesOneRecordPerTouchedObject) {
  TrackedDatabase db;
  auto root = db.Insert(p1(), Value::String("db"));
  auto table = db.Insert(p1(), Value::String("t"), *root);
  std::vector<ObjectId> rows, cells;
  for (int r = 0; r < 3; ++r) {
    auto row = db.Insert(p1(), Value::Int(r), *table);
    rows.push_back(*row);
    for (int c = 0; c < 2; ++c) {
      auto cell = db.Insert(p1(), Value::Int(10 * r + c), *row);
      cells.push_back(*cell);
    }
  }

  uint64_t before = db.provenance().record_count();
  ASSERT_TRUE(db.BeginComplexOperation(p2()).ok());
  // Update both cells of row 0 and one cell of row 1.
  ASSERT_TRUE(db.Update(p2(), cells[0], Value::Int(100)).ok());
  ASSERT_TRUE(db.Update(p2(), cells[1], Value::Int(101)).ok());
  ASSERT_TRUE(db.Update(p2(), cells[2], Value::Int(102)).ok());
  ASSERT_TRUE(db.EndComplexOperation().ok());

  // Records: 3 cells + 2 rows + table + root = 7 (not 3 x 4 = 12).
  EXPECT_EQ(db.provenance().record_count() - before, 7u);

  auto bundle = db.ExportForRecipient(*root);
  ASSERT_TRUE(bundle.ok());
  VerificationReport report = MakeVerifier().Verify(*bundle);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(EndToEndTest, BasicAndEconomicalModesAgreeOnHashesAndVerify) {
  TrackedDatabaseOptions basic_opts;
  basic_opts.hashing_mode = HashingMode::kBasic;
  TrackedDatabase basic_db(basic_opts);
  TrackedDatabase econ_db;  // economical default

  for (TrackedDatabase* db : {&basic_db, &econ_db}) {
    auto root = db->Insert(p1(), Value::String("db"));
    auto table = db->Insert(p1(), Value::String("t"), *root);
    auto row = db->Insert(p1(), Value::Int(0), *table);
    auto cell = db->Insert(p1(), Value::Int(7), *row);
    ASSERT_TRUE(db->Update(p2(), *cell, Value::Int(8)).ok());
  }

  // Same operations, same ids (fresh stores) -> identical hashes.
  auto h_basic = basic_db.CurrentHash(1);
  auto h_econ = econ_db.CurrentHash(1);
  ASSERT_TRUE(h_basic.ok());
  ASSERT_TRUE(h_econ.ok());
  EXPECT_EQ(h_basic->ToHex(), h_econ->ToHex());

  for (TrackedDatabase* db : {&basic_db, &econ_db}) {
    auto bundle = db->ExportForRecipient(1);
    ASSERT_TRUE(bundle.ok());
    EXPECT_TRUE(MakeVerifier().Verify(*bundle).ok());
  }
}

}  // namespace
}  // namespace provdb::provenance
