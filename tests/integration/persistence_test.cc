// Durable-provenance integration: TrackedDatabase -> ProvenanceStore ->
// RecordLog -> disk -> reload -> extraction -> verification, with
// corruption injected at each layer.

#include <gtest/gtest.h>

#include <cstdio>

#include "provenance/auditor.h"
#include "provenance/serialization.h"
#include "provenance/tracked_database.h"
#include "provenance/verifier.h"
#include "storage/record_log.h"
#include "testing/test_pki.h"

namespace provdb::provenance {
namespace {

using provdb::testing::TestPki;
using storage::ObjectId;
using storage::Value;

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/provdb_persist_test.log";
    root_ = *db_.Insert(p(1), Value::String("db"));
    row_ = *db_.Insert(p(1), Value::Int(0), root_);
    cell_ = *db_.Insert(p(2), Value::Int(5), row_);
    EXPECT_TRUE(db_.Update(p(1), cell_, Value::Int(6)).ok());
    auto agg = db_.Aggregate(p(2), {root_}, Value::String("agg"));
    EXPECT_TRUE(agg.ok());
    agg_ = *agg;
  }

  void TearDown() override { std::remove(path_.c_str()); }

  const crypto::Participant& p(int i) {
    return TestPki::Instance().participant(i - 1);
  }

  TrackedDatabase db_;
  ObjectId root_, row_, cell_, agg_;
  std::string path_;
};

TEST_F(PersistenceTest, FullRoundTripVerifies) {
  storage::RecordLog log;
  ASSERT_TRUE(db_.provenance().SaveToLog(&log).ok());
  ASSERT_TRUE(log.SaveToFile(path_).ok());

  auto loaded_log = storage::RecordLog::LoadFromFile(path_);
  ASSERT_TRUE(loaded_log.ok());
  auto restored = ProvenanceStore::LoadFromLog(*loaded_log);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->record_count(), db_.provenance().record_count());

  // Bundle built from the restored store + a live snapshot verifies.
  RecipientBundle bundle;
  bundle.subject = agg_;
  bundle.data = *SubtreeSnapshot::Capture(db_.tree(), agg_);
  bundle.records = *restored->ExtractProvenance(agg_);
  ProvenanceVerifier verifier(&TestPki::Instance().registry());
  auto report = verifier.Verify(bundle);
  EXPECT_TRUE(report.ok()) << report.ToString();

  // The restored store audits clean against the live tree.
  StoreAuditor auditor(&TestPki::Instance().registry());
  auto audit = auditor.Audit(*restored, db_.tree());
  EXPECT_TRUE(audit.ok()) << audit.ToString();
}

TEST_F(PersistenceTest, RestoredStorePreservesChainsAndAccounting) {
  storage::RecordLog log;
  ASSERT_TRUE(db_.provenance().SaveToLog(&log).ok());
  auto restored = ProvenanceStore::LoadFromLog(log);
  ASSERT_TRUE(restored.ok());
  for (ObjectId object : {root_, row_, cell_, agg_}) {
    EXPECT_EQ(restored->ChainOf(object).size(),
              db_.provenance().ChainOf(object).size())
        << object;
  }
  EXPECT_EQ(restored->PaperSchemaBytes(), db_.provenance().PaperSchemaBytes());
  EXPECT_EQ(restored->SerializedBytes(), db_.provenance().SerializedBytes());
}

TEST_F(PersistenceTest, OnDiskBitFlipCaughtByCrc) {
  storage::RecordLog log;
  ASSERT_TRUE(db_.provenance().SaveToLog(&log).ok());
  ASSERT_TRUE(log.SaveToFile(path_).ok());

  std::FILE* f = std::fopen(path_.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 40, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, 40, SEEK_SET);
  std::fputc(c ^ 0x20, f);
  std::fclose(f);

  auto loaded = storage::RecordLog::LoadFromFile(path_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(PersistenceTest, TamperedRecordInLogCaughtCryptographically) {
  // An attacker who rewrites a record *and* fixes the CRC still cannot
  // fix the signature: re-frame a modified record through a fresh log.
  storage::RecordLog log;
  ASSERT_TRUE(db_.provenance().SaveToLog(&log).ok());

  storage::RecordLog tampered_log;
  for (uint64_t i = 0; i < log.record_count(); ++i) {
    Bytes payload = log.Get(i)->ToBytes();
    if (i == 1) {
      auto rec = DecodeRecord(payload);
      ASSERT_TRUE(rec.ok());
      rec->output.state_hash.mutable_data()[0] ^= 1;
      payload = EncodeRecord(*rec);  // valid encoding, valid CRC
    }
    ASSERT_TRUE(tampered_log.Append(payload).ok());
  }
  ASSERT_TRUE(tampered_log.SaveToFile(path_).ok());

  auto loaded_log = storage::RecordLog::LoadFromFile(path_);
  ASSERT_TRUE(loaded_log.ok());  // CRC passes — framing is intact
  auto restored = ProvenanceStore::LoadFromLog(*loaded_log);
  ASSERT_TRUE(restored.ok());

  StoreAuditor auditor(&TestPki::Instance().registry());
  auto audit = auditor.Audit(*restored, db_.tree());
  EXPECT_FALSE(audit.ok());  // signatures catch what CRC cannot
}

TEST_F(PersistenceTest, ReorderedLogStillRejectedOrDetected) {
  // Reordering records of one object violates the store's seq
  // monotonicity on load.
  storage::RecordLog log;
  ASSERT_TRUE(db_.provenance().SaveToLog(&log).ok());
  storage::RecordLog reordered;
  // Append in reverse order.
  for (uint64_t i = log.record_count(); i-- > 0;) {
    ASSERT_TRUE(reordered.Append(*log.Get(i)).ok());
  }
  auto restored = ProvenanceStore::LoadFromLog(reordered);
  EXPECT_FALSE(restored.ok());
}

TEST_F(PersistenceTest, SnapshotOfStaleStateFailsVerification) {
  // Verification against restored records requires the *current* data:
  // roll the data forward after saving and the old bundle's snapshot
  // stays consistent, but a stale snapshot with the new records fails.
  storage::RecordLog log;
  ASSERT_TRUE(db_.provenance().SaveToLog(&log).ok());
  SubtreeSnapshot stale = *SubtreeSnapshot::Capture(db_.tree(), agg_);

  // Advance the aggregate after the snapshot.
  ASSERT_TRUE(db_.Update(p(1), agg_, Value::String("agg-v2")).ok());

  RecipientBundle bundle;
  bundle.subject = agg_;
  bundle.data = stale;
  bundle.records = *db_.provenance().ExtractProvenance(agg_);
  ProvenanceVerifier verifier(&TestPki::Instance().registry());
  auto report = verifier.Verify(bundle);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasIssue(IssueKind::kDataHashMismatch));
}

}  // namespace
}  // namespace provdb::provenance
