// Reduced-scale dress rehearsal of the §5 experiment pipeline: builds a
// scaled-down synthetic database, runs one complex operation of every
// Setup B/C category, checks the record-count arithmetic the figures
// depend on, and verifies + audits the result end to end.

#include <gtest/gtest.h>

#include "provenance/auditor.h"
#include "provenance/tracked_database.h"
#include "provenance/verifier.h"
#include "testing/test_pki.h"
#include "workload/operations.h"
#include "workload/synthetic.h"

namespace provdb::workload {
namespace {

using provdb::testing::TestPki;
using provenance::TrackedDatabase;

// 1/100th of table 1: 8 attrs x 40 rows.
constexpr int kRows = 40;
constexpr int kAttrs = 8;

class WorkloadScaleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(123);
    auto layout =
        BuildSyntheticDatabase(&db_.bootstrap_tree(), {{kAttrs, kRows}}, &rng);
    ASSERT_TRUE(layout.ok());
    layout_ = *layout;
  }

  const crypto::Participant& participant() {
    return TestPki::Instance().participant(0);
  }

  void VerifyAndAudit() {
    auto bundle = db_.ExportForRecipient(layout_.root);
    ASSERT_TRUE(bundle.ok());
    provenance::ProvenanceVerifier verifier(&TestPki::Instance().registry());
    auto report = verifier.Verify(*bundle);
    EXPECT_TRUE(report.ok()) << report.ToString();

    provenance::StoreAuditor auditor(&TestPki::Instance().registry());
    auto audit = auditor.Audit(db_.provenance(), db_.tree());
    EXPECT_TRUE(audit.ok()) << audit.ToString();
  }

  TrackedDatabase db_;
  SyntheticLayout layout_;
};

TEST_F(WorkloadScaleTest, SetupBDeleteArithmetic) {
  Rng rng(1);
  auto script = MakeDeleteScript(layout_.tables[0], 5, &rng);
  ASSERT_TRUE(script.ok());
  ASSERT_TRUE(
      ExecuteAsComplexOperation(&db_, participant(), *script, &rng).ok());
  // x inherited checksums only: table + root (the per-delete §5.2 rule
  // collapses under batching to the surviving ancestors).
  EXPECT_EQ(db_.last_op_metrics().checksums, 2u);
  VerifyAndAudit();
}

TEST_F(WorkloadScaleTest, SetupBInsertArithmetic) {
  Rng rng(2);
  auto script = MakeInsertScript(layout_.tables[0], 5, &rng);
  ASSERT_TRUE(script.ok());
  ASSERT_TRUE(
      ExecuteAsComplexOperation(&db_, participant(), *script, &rng).ok());
  // 5 rows + 5*8 cells + table + root.
  EXPECT_EQ(db_.last_op_metrics().checksums, 5u + 40u + 2u);
  VerifyAndAudit();
}

TEST_F(WorkloadScaleTest, SetupBUpdateArithmetic) {
  Rng rng(3);
  // 40 updates in 5 rows vs 40 updates in 40 rows: the Figure 8 contrast.
  auto concentrated = MakeUpdateScript(layout_.tables[0], 40, 5, &rng);
  ASSERT_TRUE(concentrated.ok());
  ASSERT_TRUE(ExecuteAsComplexOperation(&db_, participant(), *concentrated,
                                        &rng)
                  .ok());
  EXPECT_EQ(db_.last_op_metrics().checksums, 40u + 5u + 2u);

  auto spread = MakeUpdateScript(layout_.tables[0], 40, 40, &rng);
  ASSERT_TRUE(spread.ok());
  ASSERT_TRUE(
      ExecuteAsComplexOperation(&db_, participant(), *spread, &rng).ok());
  EXPECT_EQ(db_.last_op_metrics().checksums, 40u + 40u + 2u);
  VerifyAndAudit();
}

TEST_F(WorkloadScaleTest, SetupCMixedOpsVerify) {
  Rng rng(4);
  auto script = MakeMixedScript(layout_.tables[0], 6, 4, 10, &rng);
  ASSERT_TRUE(script.ok());
  ASSERT_TRUE(
      ExecuteAsComplexOperation(&db_, participant(), *script, &rng).ok());
  VerifyAndAudit();
}

TEST_F(WorkloadScaleTest, RecordCountMonotoneInDeleteShare) {
  // The Figure 10/11 mechanism at test scale: more deletes, fewer records.
  uint64_t previous = UINT64_MAX;
  for (size_t deletes : {2u, 6u, 10u}) {
    TrackedDatabase db;
    Rng rng(5);
    auto layout =
        BuildSyntheticDatabase(&db.bootstrap_tree(), {{kAttrs, kRows}}, &rng);
    ASSERT_TRUE(layout.ok());
    auto script = MakeMixedScript(layout->tables[0], deletes, 12u - deletes,
                                  10, &rng);
    ASSERT_TRUE(script.ok());
    ASSERT_TRUE(
        ExecuteAsComplexOperation(&db, participant(), *script, &rng).ok());
    uint64_t records = db.provenance().record_count();
    EXPECT_LT(records, previous) << deletes;
    previous = records;
  }
}

TEST_F(WorkloadScaleTest, BasicModeProducesSameRecordsAtScale) {
  provenance::TrackedDatabaseOptions basic_opts;
  basic_opts.hashing_mode = provenance::HashingMode::kBasic;
  TrackedDatabase basic_db(basic_opts);
  Rng rng_a(6), rng_b(6);
  auto layout_basic = BuildSyntheticDatabase(&basic_db.bootstrap_tree(),
                                             {{kAttrs, kRows}}, &rng_a);
  ASSERT_TRUE(layout_basic.ok());

  TrackedDatabase econ_db;
  auto layout_econ = BuildSyntheticDatabase(&econ_db.bootstrap_tree(),
                                            {{kAttrs, kRows}}, &rng_b);
  ASSERT_TRUE(layout_econ.ok());

  Rng s1(7), s2(7);
  auto script1 = MakeUpdateScript(layout_basic->tables[0], 16, 8, &s1);
  auto script2 = MakeUpdateScript(layout_econ->tables[0], 16, 8, &s2);
  ASSERT_TRUE(script1.ok());
  ASSERT_TRUE(script2.ok());
  ASSERT_TRUE(
      ExecuteAsComplexOperation(&basic_db, participant(), *script1, &s1).ok());
  ASSERT_TRUE(
      ExecuteAsComplexOperation(&econ_db, participant(), *script2, &s2).ok());

  ASSERT_EQ(basic_db.provenance().record_count(),
            econ_db.provenance().record_count());
  for (uint64_t i = 0; i < basic_db.provenance().record_count(); ++i) {
    EXPECT_EQ(basic_db.provenance().record(i).output.state_hash,
              econ_db.provenance().record(i).output.state_hash)
        << i;
  }
  // Basic hashed far more nodes for the same work.
  EXPECT_GT(basic_db.cumulative_metrics().nodes_hashed,
            econ_db.cumulative_metrics().nodes_hashed);
}

TEST_F(WorkloadScaleTest, SequentialSetupsComposeAndStayVerifiable) {
  Rng rng(8);
  // update, insert, delete — back to back on one database. (The update
  // script samples from the bootstrap layout, so it runs before rows are
  // deleted.)
  auto upd = MakeUpdateScript(layout_.tables[0], 10, 10, &rng);
  ASSERT_TRUE(
      ExecuteAsComplexOperation(&db_, participant(), *upd, &rng).ok());
  auto ins = MakeInsertScript(layout_.tables[0], 3, &rng);
  ASSERT_TRUE(
      ExecuteAsComplexOperation(&db_, participant(), *ins, &rng).ok());
  auto del = MakeDeleteScript(layout_.tables[0], 3, &rng);
  ASSERT_TRUE(
      ExecuteAsComplexOperation(&db_, participant(), *del, &rng).ok());
  VerifyAndAudit();
  // Root chain advanced exactly once per complex operation.
  EXPECT_EQ(db_.provenance().ChainOf(layout_.root).size(), 3u);
}

}  // namespace
}  // namespace provdb::workload
