// Integration tests for aggregation over *compound* inputs (whole rows /
// tables rather than atomic cells) and for post-aggregation evolution of
// both the inputs and the aggregate copy — the scenarios §4's extension
// to compound objects exists for.

#include <gtest/gtest.h>

#include "provenance/query.h"
#include "provenance/tracked_database.h"
#include "provenance/verifier.h"
#include "testing/test_pki.h"

namespace provdb::provenance {
namespace {

using provdb::testing::TestPki;
using storage::ObjectId;
using storage::Value;

class CompoundAggregationTest : public ::testing::Test {
 protected:
  // Two source tables owned by different participants.
  void SetUp() override {
    table_a_ = *db_.Insert(p(1), Value::String("lab_A"));
    row_a_ = *db_.Insert(p(1), Value::Int(0), table_a_);
    cell_a_ = *db_.Insert(p(1), Value::Int(11), row_a_);

    table_b_ = *db_.Insert(p(2), Value::String("lab_B"));
    row_b_ = *db_.Insert(p(2), Value::Int(0), table_b_);
    cell_b_ = *db_.Insert(p(2), Value::Int(22), row_b_);
  }

  const crypto::Participant& p(int i) {
    return TestPki::Instance().participant(i - 1);
  }

  VerificationReport Verify(ObjectId subject) {
    auto bundle = db_.ExportForRecipient(subject);
    EXPECT_TRUE(bundle.ok());
    ProvenanceVerifier verifier(&TestPki::Instance().registry());
    return verifier.Verify(*bundle);
  }

  TrackedDatabase db_;
  ObjectId table_a_, row_a_, cell_a_;
  ObjectId table_b_, row_b_, cell_b_;
};

TEST_F(CompoundAggregationTest, AggregateWholeTables) {
  auto merged =
      db_.Aggregate(p(3), {table_a_, table_b_}, Value::String("merged"));
  ASSERT_TRUE(merged.ok());
  // The merged object contains deep copies of both tables: 1 + 2*3 nodes.
  EXPECT_EQ(*db_.tree().SubtreeSize(*merged), 7u);
  VerificationReport report = Verify(*merged);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(CompoundAggregationTest, AggregateNonRootInputs) {
  // Aggregating *rows* out of the middle of their tables — inputs need
  // not be roots.
  auto merged = db_.Aggregate(p(3), {row_a_, row_b_}, Value::String("rows"));
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*db_.tree().SubtreeSize(*merged), 5u);
  // Originals still in place under their tables.
  EXPECT_EQ((*db_.tree().GetNode(row_a_))->parent, table_a_);
  VerificationReport report = Verify(*merged);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(CompoundAggregationTest, InputsEvolveAfterAggregation) {
  auto merged =
      db_.Aggregate(p(3), {table_a_, table_b_}, Value::String("merged"));
  ASSERT_TRUE(merged.ok());
  crypto::Digest merged_hash_before = *db_.CurrentHash(*merged);

  // Updating the *source* after aggregation must not disturb the
  // aggregate or its provenance.
  ASSERT_TRUE(db_.Update(p(1), cell_a_, Value::Int(999)).ok());
  EXPECT_EQ(*db_.CurrentHash(*merged), merged_hash_before);
  EXPECT_TRUE(Verify(*merged).ok());
  EXPECT_TRUE(Verify(table_a_).ok());
}

TEST_F(CompoundAggregationTest, AggregateCopyEvolvesIndependently) {
  auto merged =
      db_.Aggregate(p(3), {table_a_, table_b_}, Value::String("merged"));
  ASSERT_TRUE(merged.ok());

  // Find the copied cell inside the aggregate and update it there.
  const storage::TreeNode* m = db_.tree().GetNode(*merged).value();
  ObjectId copy_table = m->children[0];
  ObjectId copy_row = db_.tree().GetNode(copy_table).value()->children[0];
  ObjectId copy_cell = db_.tree().GetNode(copy_row).value()->children[0];
  ASSERT_TRUE(db_.Update(p(3), copy_cell, Value::Int(-5)).ok());

  // The original is untouched; both histories verify.
  EXPECT_EQ((*db_.tree().GetNode(cell_a_))->value, Value::Int(11));
  VerificationReport merged_report = Verify(*merged);
  EXPECT_TRUE(merged_report.ok()) << merged_report.ToString();
  EXPECT_TRUE(Verify(table_a_).ok());

  // The copy's update chained through inheritance onto the aggregate's
  // record: merged's chain is [aggregate, inherited update].
  std::vector<uint64_t> chain = db_.provenance().ChainOf(*merged);
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(db_.provenance().record(chain[0]).op, OperationType::kAggregate);
  EXPECT_TRUE(db_.provenance().record(chain[1]).inherited);
}

TEST_F(CompoundAggregationTest, NestedAggregationsOfCompounds) {
  auto level1 =
      db_.Aggregate(p(3), {table_a_, table_b_}, Value::String("l1"));
  ASSERT_TRUE(level1.ok());
  ASSERT_TRUE(db_.Update(p(2), cell_b_, Value::Int(23)).ok());
  auto level2 =
      db_.Aggregate(p(1), {*level1, table_b_}, Value::String("l2"));
  ASSERT_TRUE(level2.ok());

  VerificationReport report = Verify(*level2);
  EXPECT_TRUE(report.ok()) << report.ToString();

  // The level-2 provenance includes table_b's post-update state and
  // level-1's aggregation, which froze table_b's *pre-update* state.
  auto bundle = db_.ExportForRecipient(*level2);
  ASSERT_TRUE(bundle.ok());
  int table_b_records = 0;
  for (const auto& rec : bundle->records) {
    if (rec.output.object_id == table_b_) ++table_b_records;
  }
  // insert(table), inherited(row insert), inherited(cell insert),
  // inherited(cell update) = 4 records of table_b's chain included.
  EXPECT_EQ(table_b_records, 4);

  auto summary = SummarizeLineage(db_.provenance(), *level2);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->aggregate_count, 2u);
  EXPECT_EQ(summary->participants.size(), 3u);
}

TEST_F(CompoundAggregationTest, EveryGranularityOfCompoundInputVerifies) {
  // Export/verify at cell, row, and table granularity of a source that
  // fed an aggregation.
  auto merged = db_.Aggregate(p(3), {table_a_}, Value::String("m"));
  ASSERT_TRUE(merged.ok());
  for (ObjectId subject : {cell_a_, row_a_, table_a_, *merged}) {
    VerificationReport report = Verify(subject);
    EXPECT_TRUE(report.ok()) << subject << ": " << report.ToString();
  }
}

}  // namespace
}  // namespace provdb::provenance
