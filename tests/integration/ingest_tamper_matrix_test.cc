// Tamper matrix over the sharded ingest write path: every serialized
// field of every record produced by the pipeline — seqID, participant,
// each input/output attribute, checksum bytes — is mutated in turn, and
// every single mutation must be caught by chain verification or the
// store audit (the executable form of R1–R3 over the new write path).
// A second sweep flips raw bytes of the on-disk WAL segments (header,
// mid-log frame, tail CRC) and asserts recovery refuses or reports them.

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "provenance/auditor.h"
#include "provenance/serialization.h"
#include "storage/env.h"
#include "testing/differential.h"

namespace provdb::provenance {
namespace {

using provdb::testing::IngestWorkloadBuilder;
using provdb::testing::ReplayThroughPipeline;
using provdb::testing::TestPki;
using provdb::testing::WipeIngestRoot;
using storage::Env;
using storage::ObjectId;

/// The fixed tamper workload. Every chain gets at least two records: a
/// chain with exactly one record can be re-attributed to an unused
/// object id without any cross-record link to break, so single-record
/// chains would make some rename mutations undetectable by design.
/// Every aggregate input is tracked (non-empty previous checksum), so
/// re-pointing an aggregate input always breaks checksum resolution.
void BuildTamperWorkload(IngestWorkloadBuilder* b) {
  ObjectId a = *b->Insert(0, storage::Value::String("a"));
  ASSERT_TRUE(b->Update(a, 1, storage::Value::String("a2")).ok());
  ObjectId x = *b->Insert(1, storage::Value::Int(10));
  ASSERT_TRUE(b->Update(x, 0, storage::Value::Int(11)).ok());
  ObjectId boot = *b->AddBootstrapObject(storage::Value::String("legacy"));
  ASSERT_TRUE(b->Update(boot, 2, storage::Value::String("legacy2")).ok());
  ASSERT_TRUE(b->Update(boot, 3, storage::Value::String("legacy3")).ok());
  ObjectId agg = *b->Aggregate({a, x}, 2, storage::Value::String("agg"));
  ASSERT_TRUE(b->Update(agg, 3, storage::Value::String("agg2")).ok());
  ObjectId agg2 = *b->Aggregate({x, boot}, 3, storage::Value::String("agg3"));
  ASSERT_TRUE(b->Update(agg2, 0, storage::Value::String("agg4")).ok());
}

/// Rebuilds a store from `records` and audits it against the live tree.
/// True when the tampering is caught anywhere along the way — the store
/// itself may already refuse structurally broken chains.
bool MutationCaught(const std::vector<ProvenanceRecord>& records,
                    const storage::TreeStore& tree,
                    const crypto::ParticipantRegistry& registry,
                    crypto::HashAlgorithm alg) {
  ProvenanceStore store;
  for (size_t i = 0; i < records.size(); ++i) {
    if (!store.AddRecord(records[i]).ok()) return true;
  }
  StoreAuditor auditor(&registry, alg);
  VerificationReport report = auditor.Audit(store, tree);
  return !report.ok();
}

TEST(IngestTamperMatrixTest, EverySingleFieldMutationIsDetected) {
  IngestWorkloadBuilder builder;
  BuildTamperWorkload(&builder);
  if (::testing::Test::HasFatalFailure()) return;

  IngestOptions options;
  options.num_shards = 2;
  options.max_batch_records = 3;
  std::string root = ::testing::TempDir() + "/provdb_tamper_fields";
  ASSERT_TRUE(WipeIngestRoot(Env::Default(), root).ok());
  auto pipeline =
      ReplayThroughPipeline(Env::Default(), root, builder.requests(), options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

  // Canonical flattening of the sharded store (ascending object id,
  // seqID order) — the same order MergedStore uses.
  std::vector<ProvenanceRecord> base;
  const auto chains = (*pipeline)->store().AllChains();
  for (auto it = chains.begin(); it != chains.end(); ++it) {
    for (const ProvenanceRecord* rec : it->second) {
      base.push_back(*rec);
    }
  }
  ASSERT_GE(base.size(), 10u);

  // The untampered pipeline output must audit clean, or the matrix below
  // would "detect" everything vacuously.
  ASSERT_FALSE(MutationCaught(base, builder.tree(),
                              builder.registry(), builder.algorithm()));

  struct Mutation {
    std::string name;
    std::function<bool(ProvenanceRecord*)> apply;  // false = not applicable
  };
  const std::vector<Mutation> mutations = {
      {"seq_id+1",
       [](ProvenanceRecord* r) {
         r->seq_id += 1;
         return true;
       }},
      {"participant->other",
       [](ProvenanceRecord* r) {
         r->participant = (r->participant % TestPki::kNumParticipants) + 1;
         return true;
       }},
      {"participant->unknown",
       [](ProvenanceRecord* r) {
         r->participant = 999;
         return true;
       }},
      {"output.object_id rename",
       [](ProvenanceRecord* r) {
         r->output.object_id += 1000000;
         return true;
       }},
      {"output.state_hash flip",
       [](ProvenanceRecord* r) {
         if (r->output.state_hash.size() == 0) return false;
         Bytes raw(r->output.state_hash.data(),
                   r->output.state_hash.data() + r->output.state_hash.size());
         raw[0] ^= 0x01;
         r->output.state_hash =
             crypto::Digest::FromBytes(ByteView(raw.data(), raw.size()));
         return true;
       }},
      {"checksum byte flip",
       [](ProvenanceRecord* r) {
         if (r->checksum.empty()) return false;
         r->checksum[r->checksum.size() / 2] ^= 0x40;
         return true;
       }},
      {"checksum truncation",
       [](ProvenanceRecord* r) {
         if (r->checksum.empty()) return false;
         r->checksum.pop_back();
         return true;
       }},
      {"checksum cleared",
       [](ProvenanceRecord* r) {
         if (r->checksum.empty()) return false;
         r->checksum.clear();
         return true;
       }},
  };

  size_t applied = 0;
  for (size_t i = 0; i < base.size(); ++i) {
    for (const Mutation& m : mutations) {
      std::vector<ProvenanceRecord> tampered = base;
      if (!m.apply(&tampered[i])) continue;
      SCOPED_TRACE("record " + std::to_string(i) + " (object " +
                   std::to_string(base[i].output.object_id) + " seq " +
                   std::to_string(base[i].seq_id) + "): " + m.name);
      EXPECT_TRUE(MutationCaught(tampered, builder.tree(), builder.registry(),
                                 builder.algorithm()))
          << "tampering escaped both verify and audit";
      ++applied;
    }
    // Per-input-attribute mutations.
    for (size_t k = 0; k < base[i].inputs.size(); ++k) {
      {
        std::vector<ProvenanceRecord> tampered = base;
        tampered[i].inputs[k].object_id += 1000000;
        SCOPED_TRACE("record " + std::to_string(i) + " input " +
                     std::to_string(k) + ": object_id rename");
        EXPECT_TRUE(MutationCaught(tampered, builder.tree(),
                                   builder.registry(), builder.algorithm()))
            << "tampering escaped both verify and audit";
        ++applied;
      }
      {
        std::vector<ProvenanceRecord> tampered = base;
        const crypto::Digest& d = tampered[i].inputs[k].state_hash;
        Bytes raw(d.data(), d.data() + d.size());
        ASSERT_FALSE(raw.empty());
        raw[0] ^= 0x01;
        tampered[i].inputs[k].state_hash =
            crypto::Digest::FromBytes(ByteView(raw.data(), raw.size()));
        SCOPED_TRACE("record " + std::to_string(i) + " input " +
                     std::to_string(k) + ": state_hash flip");
        EXPECT_TRUE(MutationCaught(tampered, builder.tree(),
                                   builder.registry(), builder.algorithm()))
            << "tampering escaped both verify and audit";
        ++applied;
      }
    }
  }
  // 8 record-level mutations × records (minus inapplicable) + 2 per
  // input; sanity-check the sweep actually ran wide.
  EXPECT_GE(applied, base.size() * 8);
}

// Snapshot-path entry of the matrix (DESIGN.md §16): an auditor holding
// an epoch-pinned snapshot reads the same stable record storage the
// writer committed — so in-place tampering with any serialized record
// field is visible through the held snapshot and must be 100% detected
// by snapshot verify/audit. Mutations are applied between verification
// passes on this thread (tamper-evidence needs no racing mutator; the
// racing-writer case is the concurrent-audit differential's job), which
// also keeps the test TSan-clean. The snapshot itself must only ever
// observe whole durable batches.
TEST(IngestTamperMatrixTest, SnapshotHeldByAuditorDetectsEveryFieldMutation) {
  IngestWorkloadBuilder builder;
  BuildTamperWorkload(&builder);
  if (::testing::Test::HasFatalFailure()) return;

  IngestOptions options;
  options.num_shards = 2;
  options.max_batch_records = 3;
  std::string root = ::testing::TempDir() + "/provdb_tamper_snapshot";
  ASSERT_TRUE(WipeIngestRoot(Env::Default(), root).ok());
  auto pipeline =
      ReplayThroughPipeline(Env::Default(), root, builder.requests(), options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

  // The held cut: exactly the full drained workload, never a partial
  // batch.
  StoreSnapshot snapshot = (*pipeline)->OpenSnapshot();
  ASSERT_EQ(snapshot.record_count(), builder.requests().size());

  StoreAuditor auditor(&builder.registry(), builder.algorithm());
  ProvenanceVerifier verifier(&builder.registry(), builder.algorithm());
  ASSERT_TRUE(verifier.VerifyStore(snapshot).ok());
  ASSERT_TRUE(auditor.Audit(snapshot, builder.tree()).ok());

  const std::vector<std::pair<std::string,
                              std::function<bool(ProvenanceRecord*)>>>
      mutations = {
          {"seq_id+1",
           [](ProvenanceRecord* r) {
             r->seq_id += 1;
             return true;
           }},
          {"participant->other",
           [](ProvenanceRecord* r) {
             r->participant =
                 (r->participant % TestPki::kNumParticipants) + 1;
             return true;
           }},
          {"output.object_id rename",
           [](ProvenanceRecord* r) {
             r->output.object_id += 1000000;
             return true;
           }},
          {"output.state_hash flip",
           [](ProvenanceRecord* r) {
             if (r->output.state_hash.size() == 0) return false;
             Bytes raw(
                 r->output.state_hash.data(),
                 r->output.state_hash.data() + r->output.state_hash.size());
             raw[0] ^= 0x01;
             r->output.state_hash =
                 crypto::Digest::FromBytes(ByteView(raw.data(), raw.size()));
             return true;
           }},
          {"checksum byte flip",
           [](ProvenanceRecord* r) {
             if (r->checksum.empty()) return false;
             r->checksum[r->checksum.size() / 2] ^= 0x40;
             return true;
           }},
      };

  size_t applied = 0;
  ShardedProvenanceStore* store = (*pipeline)->mutable_store();
  for (size_t s = 0; s < store->num_shards(); ++s) {
    ProvenanceStore& shard = store->shard(s);
    for (uint64_t i = 0; i < shard.record_count(); ++i) {
      for (const auto& [name, apply] : mutations) {
        ProvenanceRecord* live = shard.mutable_record(i);
        const ProvenanceRecord original = *live;
        if (!apply(live)) continue;
        SCOPED_TRACE("shard " + std::to_string(s) + " record " +
                     std::to_string(i) + " (object " +
                     std::to_string(original.output.object_id) + " seq " +
                     std::to_string(original.seq_id) + "): " + name);
        // The held snapshot reads the tampered bytes — and catches them.
        VerificationReport verify = verifier.VerifyStore(snapshot);
        VerificationReport audit = auditor.Audit(snapshot, builder.tree());
        EXPECT_TRUE(!verify.ok() || !audit.ok())
            << "in-place tampering escaped the snapshot audit";
        *live = original;
        ++applied;
      }
    }
  }
  EXPECT_GE(applied, builder.requests().size() * 4);

  // Restored store verifies clean again through the same held snapshot.
  EXPECT_TRUE(verifier.VerifyStore(snapshot).ok());
  EXPECT_TRUE(auditor.Audit(snapshot, builder.tree()).ok());
}

TEST(IngestTamperMatrixTest, WalByteFlipsAreRefusedOrReported) {
  IngestWorkloadBuilder builder;
  BuildTamperWorkload(&builder);
  if (::testing::Test::HasFatalFailure()) return;

  IngestOptions options;
  options.num_shards = 2;
  options.max_batch_records = 3;
  std::string root = ::testing::TempDir() + "/provdb_tamper_wal";
  ASSERT_TRUE(WipeIngestRoot(Env::Default(), root).ok());
  auto pipeline =
      ReplayThroughPipeline(Env::Default(), root, builder.requests(), options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

  Env* env = Env::Default();
  for (size_t s = 0; s < 2; ++s) {
    const uint64_t expected = (*pipeline)->store().shard(s).record_count();
    if (expected == 0) continue;
    const std::string dir = ShardedProvenanceStore::ShardDirName(root, s);
    const std::string segment = storage::WalWriter::SegmentFileName(dir, 1);
    auto original = env->ReadFileToBytes(segment);
    ASSERT_TRUE(original.ok()) << original.status().ToString();
    ASSERT_GT(original->size(), storage::kWalHeaderSize + 8);

    const std::vector<std::pair<std::string, size_t>> offsets = {
        {"segment header", 3},
        {"mid-log frame", storage::kWalHeaderSize + 6},
        {"tail CRC", original->size() - 2},
    };
    auto rewrite = [&](const Bytes& content) {
      auto file = env->NewWritableFile(segment);
      ASSERT_TRUE(file.ok());
      ASSERT_TRUE((*file)->Append(content).ok());
      ASSERT_TRUE((*file)->Close().ok());
    };

    for (const auto& [what, offset] : offsets) {
      SCOPED_TRACE("shard " + std::to_string(s) + ": flip in " + what +
                   " at offset " + std::to_string(offset));
      Bytes tampered = *original;
      tampered[offset] ^= 0x01;
      rewrite(tampered);
      if (::testing::Test::HasFatalFailure()) return;

      storage::WalRecoveryReport report;
      auto recovered = ProvenanceStore::RecoverFromWal(env, dir, &report);
      const bool caught = !recovered.ok() || !report.clean() ||
                          recovered->record_count() != expected;
      EXPECT_TRUE(caught) << "flipped WAL byte recovered as a clean log";

      rewrite(*original);  // restore for the next offset
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

}  // namespace
}  // namespace provdb::provenance
