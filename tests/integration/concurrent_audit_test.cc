// Concurrent-auditor differential (DESIGN.md §16): an auditor races the
// live ingest pipeline over a seeded workload, continuously opening
// epoch-pinned snapshots. Every cut it observes must be an *exact
// durable batch prefix* — per-shard record counts on group-commit
// boundaries, chains byte-identical to a quiesced replay of that exact
// prefix, and the verification report byte-identical too. Runs at
// 1/2/8 shards; failures log the seed so the run replays. The suite
// name carries "ConcurrentAudit" so the TSan CI stage selects it.

#include <gtest/gtest.h>

#include <string>

#include "storage/env.h"
#include "testing/differential.h"

namespace provdb::provenance {
namespace {

using provdb::testing::ConcurrentAuditStats;
using provdb::testing::DifferentialWorkloadOptions;
using provdb::testing::IngestWorkloadBuilder;
using provdb::testing::RandomDifferentialWorkload;
using provdb::testing::RunConcurrentAuditDifferential;
using storage::Env;

void RunConcurrentAudit(uint64_t seed, size_t num_shards,
                        int signing_threads) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " num_shards=" + std::to_string(num_shards) +
               " signing_threads=" + std::to_string(signing_threads));
  IngestWorkloadBuilder builder;
  DifferentialWorkloadOptions workload;
  workload.num_ops = 120;  // enough batches that cuts race real motion
  Status built = RandomDifferentialWorkload(&builder, seed, workload);
  ASSERT_TRUE(built.ok()) << built.ToString();

  IngestOptions options;
  options.num_shards = num_shards;
  options.max_batch_records = 4;
  options.signing.num_threads = signing_threads;
  std::string root = ::testing::TempDir() + "/provdb_concaudit_" +
                     std::to_string(seed) + "_" + std::to_string(num_shards);
  auto stats = RunConcurrentAuditDifferential(Env::Default(), root, builder,
                                              options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // At minimum the quiesced epilogue cut validated; when the scheduler
  // let the auditor in mid-run there were live cuts too.
  EXPECT_GE(stats->snapshots_checked, 1u);
  EXPECT_GE(stats->nonempty_snapshots, 1u);
  EXPECT_GE(stats->distinct_cuts, 1u);
}

TEST(ConcurrentAuditDifferentialTest, CutsAreDurablePrefixesAtEveryShardCount) {
  const uint64_t seeds[] = {0xCA0D0001u, 0xCA0D0002u};
  const size_t shard_counts[] = {1, 2, 8};
  for (uint64_t seed : seeds) {
    for (size_t shards : shard_counts) {
      RunConcurrentAudit(seed, shards, /*signing_threads=*/1);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(ConcurrentAuditDifferentialTest, CutsSurviveParallelSigningFanOut) {
  // Parallel signing inside each flush plus the lock-free snapshot path:
  // the combination the TSan stage exists to check.
  RunConcurrentAudit(0xCA0D0003u, 2, /*signing_threads=*/4);
}

}  // namespace
}  // namespace provdb::provenance
