// Seeded soak (ctest label `soak`): continuous ingest with a racing
// snapshot auditor and periodic checkpoint+GC, asserting the epoch
// domain's deferred-reclamation machinery is leak-free in steady state —
// `epoch.retired` drains to zero at quiesce and resident memory stays
// flat. Runs a few seconds by default so the tier-1 suite stays fast;
// the CI soak stage sets PROVDB_SOAK_SECONDS=30 for the real run.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "crypto/signer.h"
#include "provenance/verifier.h"
#include "storage/env.h"
#include "testing/differential.h"

namespace provdb::provenance {
namespace {

using provdb::testing::IngestWorkloadBuilder;
using provdb::testing::TestPki;
using provdb::testing::WipeIngestRoot;
using storage::Env;
using storage::ObjectId;

double SoakSeconds() {
  const char* env = std::getenv("PROVDB_SOAK_SECONDS");
  if (env != nullptr) {
    double v = std::atof(env);
    if (v > 0) return v;
  }
  return 2.5;  // default: a smoke-length soak inside tier-1 budgets
}

/// Resident set size in bytes, from /proc/self/statm (0 when the
/// platform has no procfs — the RSS assertion is skipped then).
uint64_t ResidentBytes() {
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return 0;
  unsigned long long size = 0;
  unsigned long long resident = 0;
  int got = std::fscanf(statm, "%llu %llu", &size, &resident);
  std::fclose(statm);
  if (got != 2) return 0;
  return static_cast<uint64_t>(resident) * 4096u;
}

TEST(EpochSoakTest, ConcurrentIngestAuditCheckpointStaysFlat) {
  const uint64_t kSeed = 0x50AC0001ull;
  SCOPED_TRACE("seed=" + std::to_string(kSeed));
  const double seconds = SoakSeconds();

  IngestWorkloadBuilder builder;
  const TestPki& pki = TestPki::InstanceFor(builder.algorithm());
  crypto::RsaSignatureVerifier seal_verifier(
      pki.participant(0).public_key());

  IngestOptions options;
  options.num_shards = 2;
  options.max_batch_records = 8;
  options.checkpoint.every_records = 0;  // checkpoints driven manually
  options.checkpoint.signer = &pki.participant(0).signer();
  options.checkpoint.sealer_id = pki.participant(0).id();
  options.checkpoint.verifier = &seal_verifier;
  std::string root = ::testing::TempDir() + "/provdb_epoch_soak";
  ASSERT_TRUE(WipeIngestRoot(Env::Default(), root).ok());
  auto pipeline = IngestPipeline::Open(Env::Default(), root, options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

  // Auditor: continuously pins snapshots and spot-verifies them while
  // the writer below keeps ingesting and checkpointing.
  std::atomic<bool> done{false};
  std::atomic<uint64_t> audits{0};
  ThreadPool pool(1);
  // Destroyed before `pool`, so the auditor always unblocks even when an
  // ASSERT below returns from the test early.
  struct StopOnExit {
    std::atomic<bool>* flag;
    ~StopOnExit() { flag->store(true, std::memory_order_release); }
  } stop_on_exit{&done};
  IngestPipeline* live = pipeline->get();
  std::future<bool> auditor = pool.Submit([live, &done, &audits, &builder] {
    ProvenanceVerifier verifier(&builder.registry(), builder.algorithm());
    bool all_clean = true;
    while (!done.load(std::memory_order_acquire)) {
      StoreSnapshot snapshot = live->OpenSnapshot();
      VerificationReport report = verifier.VerifyStore(snapshot);
      // Cross-shard cuts may legitimately leave an aggregate input
      // unresolved; nothing else is tolerable.
      for (const VerificationIssue& issue : report.issues) {
        if (issue.kind != IssueKind::kAggregateInputUnresolved) {
          all_clean = false;
        }
      }
      audits.fetch_add(1, std::memory_order_relaxed);
    }
    return all_clean;
  });

  // Writer: seeded endless insert/update mix, submitted as produced,
  // with periodic full checkpoints (roll + seal + segment GC).
  Rng rng(kSeed);
  Stopwatch clock;
  uint64_t rss_warm = 0;
  uint64_t ops = 0;
  size_t submitted = 0;
  std::vector<ObjectId> objects;
  while (clock.ElapsedSeconds() < seconds) {
    if (objects.empty() || rng.NextBelow(3) == 0) {
      auto id = builder.Insert(rng.NextBelow(TestPki::kNumParticipants),
                               storage::Value::Int(static_cast<int64_t>(ops)));
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      objects.push_back(*id);
    } else {
      ObjectId victim = objects[rng.NextBelow(objects.size())];
      ASSERT_TRUE(builder
                      .Update(victim,
                              rng.NextBelow(TestPki::kNumParticipants),
                              storage::Value::Int(
                                  static_cast<int64_t>(ops) + 1000))
                      .ok());
    }
    ++ops;
    for (; submitted < builder.requests().size(); ++submitted) {
      ASSERT_TRUE((*pipeline)->Submit(builder.requests()[submitted]).ok());
    }
    if (ops % 256 == 0) {
      ASSERT_TRUE((*pipeline)->CheckpointNow().ok());
    }
    if (rss_warm == 0 && clock.ElapsedSeconds() > seconds * 0.25) {
      rss_warm = ResidentBytes();
    }
  }
  ASSERT_TRUE((*pipeline)->Drain().ok());
  done.store(true, std::memory_order_release);
  EXPECT_TRUE(auditor.get()) << "auditor saw a non-cut-induced issue";
  EXPECT_GT(audits.load(), 0u);
  ASSERT_TRUE((*pipeline)->Close().ok());

  // Quiesce: no pinned readers remain, so one advance+collect must
  // drain every deferred node — the epoch.retired backlog goes to zero.
  EpochDomain* domain = (*pipeline)->store().epoch_domain();
  ASSERT_NE(domain, nullptr);
  domain->Advance();
  domain->Collect();
  EXPECT_EQ(domain->retired_pending(), 0u);
  EXPECT_EQ(domain->min_pinned_epoch(), 0u);

  // Steady-state RSS: growth after warmup stays bounded (a retired-node
  // leak at this op rate would dwarf the allowance).
  const uint64_t rss_end = ResidentBytes();
  if (rss_warm != 0 && rss_end != 0) {
    const uint64_t record_growth =
        ((*pipeline)->store().record_count() + 1) * 2048;  // live data
    EXPECT_LT(rss_end, rss_warm + record_growth + (64u << 20))
        << "resident set grew unboundedly during the soak";
  }

  // The soak's output is still a fully verifiable store.
  VerificationReport final_report =
      (*pipeline)->store().VerifyChains(builder.registry(),
                                        builder.algorithm());
  EXPECT_TRUE(final_report.ok()) << final_report.ToString();
}

}  // namespace
}  // namespace provdb::provenance
