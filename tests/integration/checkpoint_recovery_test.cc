// Checkpoint + WAL-suffix recovery, end to end: bounded replay after a
// seal, compaction of covered segments, reopen-and-continue across
// checkpoints, and a fault-injection sweep that crashes the checkpointed
// ingest workload at every single mutating filesystem operation —
// including every write, sync, and rename of the checkpoint seal and
// every remove of segment GC.
//
// Invariants the sweep holds at every crash point: durable records are
// never lost, pruned history stays pruned, GC'd segments never come
// back, and a tampered or torn checkpoint is refused rather than
// half-loaded.

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "provenance/checkpoint.h"
#include "provenance/ingest_pipeline.h"
#include "provenance/serialization.h"
#include "provenance/tracked_database.h"
#include "storage/fault_injection_env.h"
#include "storage/wal.h"
#include "testing/differential.h"
#include "testing/test_pki.h"

namespace provdb::provenance {
namespace {

using provdb::testing::DifferentialWorkloadOptions;
using provdb::testing::IngestWorkloadBuilder;
using provdb::testing::RandomDifferentialWorkload;
using provdb::testing::TestPki;
using provdb::testing::WipeIngestRoot;
using storage::Env;
using storage::FaultInjectionEnv;
using storage::ObjectId;
using storage::Value;
using storage::WalRecoveryReport;
using storage::WalWriter;

const crypto::Participant& P(int i) {
  return TestPki::Instance().participant(static_cast<size_t>(i - 1));
}

crypto::RsaSignatureVerifier SealVerifier() {
  return crypto::RsaSignatureVerifier(P(1).public_key());
}

/// Empties `dir` of both flat WAL/checkpoint files (TrackedDatabase
/// layout) and shard-NNN subdirectories (ingest layout), so reruns never
/// recover a previous run's history.
std::string FreshDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "/provdb_ckpt_recovery_" + tag;
  EXPECT_TRUE(WipeIngestRoot(Env::Default(), dir).ok());
  auto names = Env::Default()->ListDir(dir);
  if (names.ok()) {
    for (const std::string& name : *names) {
      if (name.rfind("shard-", 0) == 0) continue;
      EXPECT_TRUE(Env::Default()->RemoveFile(dir + "/" + name).ok());
    }
  }
  return dir;
}

// ---------------------------------------------------------------------------
// TrackedDatabase::CheckpointWal: bounded recovery and compaction.
// ---------------------------------------------------------------------------

TEST(CheckpointRecoveryTest, RecoveryReplaysOnlyTheSuffix) {
  std::string dir = FreshDir("suffix");
  TrackedDatabase db;
  auto wal = WalWriter::Open(Env::Default(), dir);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(db.AttachWal(&*wal).ok());

  std::vector<ObjectId> docs;
  for (int i = 0; i < 12; ++i) {
    docs.push_back(db.Insert(P(1), Value::Int(i)).value());
  }
  ASSERT_TRUE(db.CheckpointWal(P(1).signer(), P(1).id()).ok());
  // The sealed history is compacted away: segment 1 must be gone.
  EXPECT_FALSE(Env::Default()->FileExists(WalWriter::SegmentFileName(dir, 1)));
  EXPECT_TRUE(Env::Default()->FileExists(CheckpointFileName(dir, 1)));

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(db.Update(P(2), docs[static_cast<size_t>(i)],
                          Value::Int(100 + i))
                    .ok());
  }
  ASSERT_TRUE(db.SyncWal().ok());

  auto verifier = SealVerifier();
  WalRecoveryReport report;
  auto recovered = ProvenanceStore::RecoverFromWal(Env::Default(), dir,
                                                   &report, &verifier);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  // O(delta): 12 records came from the checkpoint, only the 3-record
  // suffix was replayed from WAL frames.
  EXPECT_EQ(report.checkpoint_horizon, 1u);
  EXPECT_EQ(report.checkpoint_records, 12u);
  EXPECT_EQ(report.records, 3u);
  ASSERT_EQ(recovered->record_count(), 15u);
  // Record-for-record equality with the live store.
  for (uint64_t i = 0; i < recovered->record_count(); ++i) {
    EXPECT_EQ(EncodeRecord(recovered->record(i)),
              EncodeRecord(db.provenance().record(i)))
        << "record " << i;
  }
}

TEST(CheckpointRecoveryTest, CheckpointWithoutVerifierIsRefused) {
  std::string dir = FreshDir("no_verifier");
  TrackedDatabase db;
  auto wal = WalWriter::Open(Env::Default(), dir);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(db.AttachWal(&*wal).ok());
  ASSERT_TRUE(db.Insert(P(1), Value::Int(1)).ok());
  ASSERT_TRUE(db.CheckpointWal(P(1).signer(), P(1).id()).ok());

  // Recovering *around* an unverifiable snapshot would silently drop its
  // history — refuse instead.
  auto recovered = ProvenanceStore::RecoverFromWal(Env::Default(), dir);
  EXPECT_EQ(recovered.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CheckpointRecoveryTest, TamperedCheckpointIsRefusedAtRecovery) {
  std::string dir = FreshDir("tampered");
  TrackedDatabase db;
  auto wal = WalWriter::Open(Env::Default(), dir);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(db.AttachWal(&*wal).ok());
  ASSERT_TRUE(db.Insert(P(1), Value::Int(1)).ok());
  ASSERT_TRUE(db.Insert(P(1), Value::Int(2)).ok());
  ASSERT_TRUE(db.CheckpointWal(P(1).signer(), P(1).id()).ok());

  const std::string path = CheckpointFileName(dir, 1);
  auto content = Env::Default()->ReadFileToBytes(path);
  ASSERT_TRUE(content.ok());
  (*content)[content->size() / 2] ^= 0x01;
  auto file = Env::Default()->NewWritableFile(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(*content).ok());
  ASSERT_TRUE((*file)->Close().ok());

  auto verifier = SealVerifier();
  auto recovered = ProvenanceStore::RecoverFromWal(Env::Default(), dir,
                                                   nullptr, &verifier);
  ASSERT_FALSE(recovered.ok());
  EXPECT_TRUE(recovered.status().code() == StatusCode::kCorruption ||
              recovered.status().code() == StatusCode::kVerificationFailed)
      << recovered.status().ToString();
}

TEST(CheckpointRecoveryTest, PrunedHistoryStaysPrunedAcrossCheckpoint) {
  std::string dir = FreshDir("pruned");
  TrackedDatabase db;
  auto wal = WalWriter::Open(Env::Default(), dir);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(db.AttachWal(&*wal).ok());

  ObjectId keep = db.Insert(P(1), Value::Int(1)).value();
  ObjectId doomed = db.Insert(P(1), Value::Int(2)).value();
  ASSERT_TRUE(db.Update(P(2), doomed, Value::Int(3)).ok());
  ASSERT_TRUE(db.Delete(P(2), doomed).ok());
  ASSERT_TRUE(db.mutable_provenance()->PruneObject(doomed).ok());
  ASSERT_TRUE(db.CheckpointWal(P(1).signer(), P(1).id()).ok());
  ASSERT_TRUE(db.Update(P(2), keep, Value::Int(4)).ok());
  ASSERT_TRUE(db.SyncWal().ok());

  auto verifier = SealVerifier();
  auto recovered = ProvenanceStore::RecoverFromWal(Env::Default(), dir,
                                                   nullptr, &verifier);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->ChainOf(doomed).empty())
      << "checkpoint resurrection of pruned history";
  EXPECT_EQ(recovered->ChainOf(keep).size(), 2u);
}

TEST(CheckpointRecoveryTest, SecondCheckpointSupersedesTheFirst) {
  std::string dir = FreshDir("supersede");
  TrackedDatabase db;
  auto wal = WalWriter::Open(Env::Default(), dir);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(db.AttachWal(&*wal).ok());

  ObjectId doc = db.Insert(P(1), Value::Int(1)).value();
  ASSERT_TRUE(db.CheckpointWal(P(1).signer(), P(1).id()).ok());
  // Nothing new: re-checkpointing is a no-op, not a fresh seal.
  ASSERT_TRUE(db.CheckpointWal(P(1).signer(), P(1).id()).ok());
  EXPECT_TRUE(Env::Default()->FileExists(CheckpointFileName(dir, 1)));

  ASSERT_TRUE(db.Update(P(2), doc, Value::Int(2)).ok());
  ASSERT_TRUE(db.CheckpointWal(P(1).signer(), P(1).id()).ok());
  // The old seal and every covered segment are gone; only the newest
  // checkpoint plus the fresh (empty) active segment remain.
  EXPECT_FALSE(Env::Default()->FileExists(CheckpointFileName(dir, 1)));
  auto latest = LatestCheckpointHorizon(Env::Default(), dir);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, 2u);
  EXPECT_FALSE(Env::Default()->FileExists(WalWriter::SegmentFileName(dir, 1)));
  EXPECT_FALSE(Env::Default()->FileExists(WalWriter::SegmentFileName(dir, 2)));

  auto verifier = SealVerifier();
  WalRecoveryReport report;
  auto recovered = ProvenanceStore::RecoverFromWal(Env::Default(), dir,
                                                   &report, &verifier);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(report.checkpoint_horizon, 2u);
  EXPECT_EQ(recovered->record_count(), 2u);
}

// ---------------------------------------------------------------------------
// Crash sweep over TrackedDatabase::CheckpointWal — every mutating
// filesystem op of the seal (tmp write, sync, rename) and the GC
// (segment removes, dir syncs) fails in turn, then the power cut hits.
// ---------------------------------------------------------------------------

/// Phase A (never faulted): a base workload with a durable prune.
/// Returns the ids of the surviving object and the pruned one.
void RunCheckpointSweepBase(TrackedDatabase& db, ObjectId* keep,
                            ObjectId* doomed) {
  *keep = db.Insert(P(1), Value::Int(1)).value();
  *doomed = db.Insert(P(1), Value::Int(2)).value();
  ASSERT_TRUE(db.Update(P(2), *keep, Value::Int(3)).ok());
  ASSERT_TRUE(db.Delete(P(2), *doomed).ok());
  ASSERT_TRUE(db.mutable_provenance()->PruneObject(*doomed).ok());
  ASSERT_TRUE(db.SyncWal().ok());
}

/// Phase B (swept): checkpoint, more updates, second checkpoint.
Status RunCheckpointSweepPhaseB(TrackedDatabase& db, ObjectId keep) {
  PROVDB_RETURN_IF_ERROR(db.CheckpointWal(P(1).signer(), P(1).id()));
  PROVDB_RETURN_IF_ERROR(db.Update(P(2), keep, Value::Int(4)));
  PROVDB_RETURN_IF_ERROR(db.Update(P(1), keep, Value::Int(5)));
  PROVDB_RETURN_IF_ERROR(db.SyncWal());
  return db.CheckpointWal(P(1).signer(), P(1).id());
}

TEST(CheckpointCrashSweepTest, CrashAtEveryCheckpointAndGcOp) {
  // Dry run: count the mutating ops of phase B so the sweep covers every
  // one of them (checkpoint tmp append, file sync, rename, stale-seal
  // removes, segment removes, dir syncs — all of it).
  uint64_t phase_a_ops = 0;
  uint64_t total_ops = 0;
  {
    FaultInjectionEnv env(Env::Default());
    std::string dir = FreshDir("sweep_dry");
    TrackedDatabase db;
    auto wal = WalWriter::Open(&env, dir);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(db.AttachWal(&*wal).ok());
    ObjectId keep = 0, doomed = 0;
    RunCheckpointSweepBase(db, &keep, &doomed);
    if (::testing::Test::HasFatalFailure()) return;
    phase_a_ops = env.mutating_ops();
    ASSERT_TRUE(RunCheckpointSweepPhaseB(db, keep).ok());
    total_ops = env.mutating_ops();
  }
  ASSERT_GT(total_ops, phase_a_ops + 10)
      << "phase B too small to be a sweep";

  for (uint64_t k = phase_a_ops + 1; k <= total_ops; ++k) {
    SCOPED_TRACE("crash at mutating op " + std::to_string(k));
    FaultInjectionEnv env(Env::Default());
    std::string dir = FreshDir("sweep_" + std::to_string(k));
    ObjectId keep = 0, doomed = 0;
    uint64_t live_at_crash = 0;
    {
      TrackedDatabase db;
      auto wal = WalWriter::Open(&env, dir);
      ASSERT_TRUE(wal.ok());
      ASSERT_TRUE(db.AttachWal(&*wal).ok());
      RunCheckpointSweepBase(db, &keep, &doomed);
      if (::testing::Test::HasFatalFailure()) return;
      env.ScheduleCrashAtOp(k - env.mutating_ops());
      // The workload stops at its first I/O error, like a real writer.
      RunCheckpointSweepPhaseB(db, keep).ok();
      live_at_crash = db.provenance().live_record_count();
      // Scope exit without Close(): the crash.
    }
    env.ClearFaults();
    ASSERT_TRUE(env.DropUnsyncedFileData().ok());

    auto verifier = SealVerifier();
    WalRecoveryReport report;
    auto recovered =
        ProvenanceStore::RecoverFromWal(&env, dir, &report, &verifier);
    ASSERT_TRUE(recovered.ok())
        << "crash point must salvage or report, never fail to recover: "
        << recovered.status().ToString();
    // Durable records are never lost: phase A (keep's insert + update
    // surviving the prune) was synced before the sweep window, and
    // everything the store committed was WAL'd write-ahead behind a sync
    // by the time a checkpoint touched it.
    EXPECT_GE(recovered->live_record_count(), 2u)
        << "phase A records lost at crash point " << k;
    EXPECT_LE(recovered->live_record_count(), live_at_crash);
    // Pruned history stays pruned — no checkpoint or replay path may
    // resurrect it.
    EXPECT_TRUE(recovered->ChainOf(doomed).empty());
    EXPECT_GE(recovered->ChainOf(keep).size(), 2u);
  }
}

// ---------------------------------------------------------------------------
// IngestPipeline: periodic per-shard checkpoints, reopen-and-continue,
// and the full-workload crash sweep.
// ---------------------------------------------------------------------------

constexpr size_t kSweepShards = 2;

IngestOptions CheckpointedIngestOptions(
    const crypto::SignatureVerifier* verifier) {
  IngestOptions options;
  options.num_shards = kSweepShards;
  options.max_batch_records = 3;
  options.checkpoint.every_records = 4;
  options.checkpoint.signer = &P(1).signer();
  options.checkpoint.sealer_id = P(1).id();
  options.checkpoint.verifier = verifier;
  return options;
}

TEST(CheckpointedIngestTest, PeriodicCheckpointsCompactAndReopen) {
  auto verifier = SealVerifier();
  IngestWorkloadBuilder builder;
  DifferentialWorkloadOptions wl;
  wl.num_ops = 40;
  ASSERT_TRUE(RandomDifferentialWorkload(&builder, 0xC4B57u, wl).ok());
  const std::vector<IngestRequest>& requests = builder.requests();

  std::string root = FreshDir("periodic");
  std::array<uint64_t, kSweepShards> counts{};
  {
    auto pipeline = IngestPipeline::Open(Env::Default(), root,
                                         CheckpointedIngestOptions(&verifier));
    ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    for (const IngestRequest& request : requests) {
      ASSERT_TRUE((*pipeline)->Submit(request).ok());
    }
    ASSERT_TRUE((*pipeline)->Drain().ok());
    uint64_t total_checkpoints = 0;
    for (size_t s = 0; s < kSweepShards; ++s) {
      counts[s] = (*pipeline)->store().shard(s).record_count();
      total_checkpoints += (*pipeline)->shard_checkpoints(s);
    }
    EXPECT_GT(total_checkpoints, 0u)
        << "the policy thresholds never fired — the test is vacuous";
    ASSERT_TRUE((*pipeline)->Close().ok());
  }

  // Reopen: recovery must thread each shard's checkpoint horizon through
  // to its writer and reproduce the exact store.
  std::vector<WalRecoveryReport> reports;
  auto pipeline = IngestPipeline::Open(Env::Default(), root,
                                       CheckpointedIngestOptions(&verifier),
                                       &reports);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  bool any_checkpointed = false;
  for (size_t s = 0; s < kSweepShards; ++s) {
    EXPECT_EQ((*pipeline)->store().shard(s).record_count(), counts[s]);
    any_checkpointed |= reports[s].checkpoint_horizon > 0;
  }
  EXPECT_TRUE(any_checkpointed);
  auto verify = (*pipeline)->store().VerifyChains(TestPki::Instance().registry());
  EXPECT_TRUE(verify.ok()) << verify.ToString();
  ASSERT_TRUE((*pipeline)->Close().ok());

  // Without the verifier, a checkpointed shard must refuse to open.
  auto blind = IngestPipeline::Open(Env::Default(), root,
                                    CheckpointedIngestOptions(nullptr));
  EXPECT_EQ(blind.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CheckpointedIngestTest, CheckpointNowSealsEveryShard) {
  auto verifier = SealVerifier();
  IngestWorkloadBuilder builder;
  DifferentialWorkloadOptions wl;
  wl.num_ops = 16;
  ASSERT_TRUE(RandomDifferentialWorkload(&builder, 0xC4B58u, wl).ok());

  std::string root = FreshDir("now");
  IngestOptions options = CheckpointedIngestOptions(&verifier);
  options.checkpoint.every_records = 0;  // thresholds off; manual only
  options.checkpoint.every_bytes = 0;
  auto pipeline = IngestPipeline::Open(Env::Default(), root, options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  for (const IngestRequest& request : builder.requests()) {
    ASSERT_TRUE((*pipeline)->Submit(request).ok());
  }
  ASSERT_TRUE((*pipeline)->CheckpointNow().ok());
  for (size_t s = 0; s < kSweepShards; ++s) {
    if ((*pipeline)->store().shard(s).record_count() == 0) continue;
    const std::string dir = ShardedProvenanceStore::ShardDirName(root, s);
    auto latest = LatestCheckpointHorizon(Env::Default(), dir);
    EXPECT_TRUE(latest.ok()) << "shard " << s << " never sealed";
  }
  ASSERT_TRUE((*pipeline)->Close().ok());
}

TEST(CheckpointedIngestCrashSweepTest, CrashAtEveryMutatingOp) {
  auto verifier = SealVerifier();
  IngestWorkloadBuilder builder;
  DifferentialWorkloadOptions wl;
  wl.num_ops = 18;
  ASSERT_TRUE(RandomDifferentialWorkload(&builder, 0xC4B59u, wl).ok());
  const std::vector<IngestRequest>& requests = builder.requests();

  // Golden crash-free run: per-shard record bytes and the op budget.
  std::array<std::vector<Bytes>, kSweepShards> golden;
  uint64_t total_ops = 0;
  {
    FaultInjectionEnv env(Env::Default());
    std::string root = FreshDir("golden");
    auto pipeline = IngestPipeline::Open(&env, root,
                                         CheckpointedIngestOptions(&verifier));
    ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    uint64_t checkpoints = 0;
    for (const IngestRequest& request : requests) {
      ASSERT_TRUE((*pipeline)->Submit(request).ok());
    }
    ASSERT_TRUE((*pipeline)->Close().ok());
    for (size_t s = 0; s < kSweepShards; ++s) {
      const ProvenanceStore& shard = (*pipeline)->store().shard(s);
      for (uint64_t i = 0; i < shard.record_count(); ++i) {
        golden[s].push_back(EncodeRecord(shard.record(i)));
      }
      checkpoints += (*pipeline)->shard_checkpoints(s);
    }
    ASSERT_GT(checkpoints, 0u) << "no checkpoint in the sweep window";
    total_ops = env.mutating_ops();
  }
  ASSERT_GT(total_ops, 20u) << "workload too small to be a sweep";

  for (uint64_t k = 1; k <= total_ops; ++k) {
    SCOPED_TRACE("crash at mutating op " + std::to_string(k));
    FaultInjectionEnv env(Env::Default());
    std::string root = FreshDir("op" + std::to_string(k));
    env.ScheduleCrashAtOp(k);

    std::array<uint64_t, kSweepShards> committed{};
    {
      auto pipeline = IngestPipeline::Open(
          &env, root, CheckpointedIngestOptions(&verifier));
      if (pipeline.ok()) {
        for (const IngestRequest& request : requests) {
          if (!(*pipeline)->Submit(request).ok()) break;
        }
        for (size_t s = 0; s < kSweepShards; ++s) {
          committed[s] = (*pipeline)->store().shard(s).record_count();
        }
      }
      // Scope exit without Close(): the crash.
    }
    env.ClearFaults();
    ASSERT_TRUE(env.DropUnsyncedFileData().ok());

    // Recovery must succeed at every crash point, and the power cut
    // model pins it exactly: nothing un-fsynced survives, nothing
    // committed is lost, GC'd segments never resurrect records.
    std::vector<WalRecoveryReport> reports;
    auto recovered = ShardedProvenanceStore::Recover(&env, root, kSweepShards,
                                                     &reports, &verifier);
    ASSERT_TRUE(recovered.ok())
        << "crash point must salvage or report, never fail to recover: "
        << recovered.status().ToString();
    for (size_t s = 0; s < kSweepShards; ++s) {
      SCOPED_TRACE("shard " + std::to_string(s));
      const ProvenanceStore& shard = recovered->shard(s);
      EXPECT_EQ(shard.record_count(), committed[s]);
      ASSERT_LE(shard.record_count(), golden[s].size());
      for (uint64_t i = 0; i < shard.record_count(); ++i) {
        EXPECT_EQ(EncodeRecord(shard.record(i)), golden[s][i])
            << "recovered record " << i << " diverged from the golden run";
      }
    }

    // Resume: reopen (threading the recovered horizons), ingest the
    // missing suffix, and require byte-equality with the golden run.
    {
      auto pipeline = IngestPipeline::Open(
          &env, root, CheckpointedIngestOptions(&verifier));
      ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
      std::array<uint64_t, kSweepShards> seen{};
      for (const IngestRequest& request : requests) {
        const size_t s =
            ShardedProvenanceStore::ShardOf(request.object, kSweepShards);
        if (seen[s]++ < committed[s]) continue;  // already durable
        ASSERT_TRUE((*pipeline)->Submit(request).ok());
      }
      ASSERT_TRUE((*pipeline)->Close().ok());
      for (size_t s = 0; s < kSweepShards; ++s) {
        SCOPED_TRACE("shard " + std::to_string(s) + " after resume");
        const ProvenanceStore& shard = (*pipeline)->store().shard(s);
        ASSERT_EQ(shard.record_count(), golden[s].size());
        for (uint64_t i = 0; i < shard.record_count(); ++i) {
          EXPECT_EQ(EncodeRecord(shard.record(i)), golden[s][i]);
        }
      }
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace provdb::provenance
