// Determinism of the parallel verification engine: with any thread count,
// the ProvenanceVerifier and StoreAuditor must produce reports identical
// to the sequential path — same issues, same order, same counters — on
// clean and on tampered inputs. Chains are per-object and local (§3.2),
// which is exactly what makes this fan-out sound.

#include <gtest/gtest.h>

#include "provenance/attack.h"
#include "provenance/auditor.h"
#include "provenance/tracked_database.h"
#include "provenance/verifier.h"
#include "testing/test_pki.h"

namespace provdb::provenance {
namespace {

using provdb::testing::TestPki;
using storage::ObjectId;
using storage::Value;

void ExpectReportsIdentical(const VerificationReport& sequential,
                            const VerificationReport& parallel) {
  EXPECT_EQ(sequential.records_checked, parallel.records_checked);
  EXPECT_EQ(sequential.signatures_verified, parallel.signatures_verified);
  ASSERT_EQ(sequential.issues.size(), parallel.issues.size());
  for (size_t i = 0; i < sequential.issues.size(); ++i) {
    EXPECT_EQ(sequential.issues[i].kind, parallel.issues[i].kind) << i;
    EXPECT_EQ(sequential.issues[i].object, parallel.issues[i].object) << i;
    EXPECT_EQ(sequential.issues[i].seq_id, parallel.issues[i].seq_id) << i;
    EXPECT_EQ(sequential.issues[i].message, parallel.issues[i].message) << i;
  }
  // Byte-stable rendering, the contract consumers see.
  EXPECT_EQ(sequential.ToString(), parallel.ToString());
}

class ParallelVerifyTest : public ::testing::Test {
 protected:
  // A multi-object history: several independent chains plus an aggregate
  // whose verification resolves inputs across chains.
  void SetUp() override {
    a_ = *db_.Insert(p(1), Value::String("a1"));
    ASSERT_TRUE(db_.Update(p(2), a_, Value::String("a2")).ok());
    ASSERT_TRUE(db_.Update(p(1), a_, Value::String("a3")).ok());
    b_ = *db_.Insert(p(2), Value::String("b1"));
    ASSERT_TRUE(db_.Update(p(3), b_, Value::String("b2")).ok());
    c_ = *db_.Insert(p(3), Value::String("c1"));
    agg_ = *db_.Aggregate(p(1), {a_, b_}, Value::String("agg"));
    bundle_ = *db_.ExportForRecipient(a_);
  }

  const crypto::Participant& p(int i) {
    return TestPki::Instance().participant(i - 1);
  }

  VerificationReport VerifySequential(const RecipientBundle& bundle) {
    ProvenanceVerifier verifier(&TestPki::Instance().registry());
    return verifier.Verify(bundle);
  }

  VerificationReport VerifyParallel(const RecipientBundle& bundle,
                                    int threads) {
    ProvenanceVerifier verifier(&TestPki::Instance().registry(),
                                crypto::HashAlgorithm::kSha1,
                                ParallelismConfig{threads});
    return verifier.Verify(bundle);
  }

  void ExpectAllThreadCountsAgree(const RecipientBundle& bundle) {
    VerificationReport sequential = VerifySequential(bundle);
    for (int threads : {1, 2, 4, 8}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      ExpectReportsIdentical(sequential, VerifyParallel(bundle, threads));
    }
  }

  TrackedDatabase db_;
  ObjectId a_ = storage::kInvalidObjectId;
  ObjectId b_ = storage::kInvalidObjectId;
  ObjectId c_ = storage::kInvalidObjectId;
  ObjectId agg_ = storage::kInvalidObjectId;
  RecipientBundle bundle_;
};

TEST_F(ParallelVerifyTest, CleanBundleReportsIdentical) {
  ASSERT_TRUE(VerifySequential(bundle_).ok());
  ExpectAllThreadCountsAgree(bundle_);
}

TEST_F(ParallelVerifyTest, CleanAggregateBundleReportsIdentical) {
  RecipientBundle bundle = *db_.ExportForRecipient(agg_);
  ASSERT_TRUE(VerifySequential(bundle).ok());
  ExpectAllThreadCountsAgree(bundle);
}

TEST_F(ParallelVerifyTest, TamperedBundleReportsIdentical) {
  // One tampered bundle per attack primitive from the R1-R8 suite.
  {
    RecipientBundle tampered = bundle_;
    ASSERT_TRUE(attacks::TamperRecordOutputHash(&tampered, 1).ok());
    EXPECT_FALSE(VerifySequential(tampered).ok());
    ExpectAllThreadCountsAgree(tampered);
  }
  {
    RecipientBundle tampered = bundle_;
    ASSERT_TRUE(attacks::RemoveRecord(&tampered, 1).ok());
    ExpectAllThreadCountsAgree(tampered);
  }
  {
    RecipientBundle tampered = bundle_;
    ASSERT_TRUE(
        attacks::TamperDataValue(&tampered, a_, Value::String("forged"))
            .ok());
    ExpectAllThreadCountsAgree(tampered);
  }
  {
    RecipientBundle tampered = bundle_;
    ASSERT_TRUE(attacks::ReassignRecordParticipant(&tampered, 0, 999).ok());
    ExpectAllThreadCountsAgree(tampered);
  }
}

TEST_F(ParallelVerifyTest, TamperedAggregateReportsIdentical) {
  RecipientBundle bundle = *db_.ExportForRecipient(agg_);
  for (size_t i = 0; i < bundle.records.size(); ++i) {
    if (bundle.records[i].op == OperationType::kAggregate) {
      ASSERT_TRUE(attacks::TamperRecordInputHash(&bundle, i, 0).ok());
      break;
    }
  }
  EXPECT_FALSE(VerifySequential(bundle).ok());
  ExpectAllThreadCountsAgree(bundle);
}

TEST_F(ParallelVerifyTest, MultiIssueBundleKeepsIssueOrder) {
  // Several independent chains broken at once: the merged parallel report
  // must list them in the same (object id, seq) order as the sequential.
  RecipientBundle bundle = *db_.ExportForRecipientDeep(agg_);
  size_t tampered_count = 0;
  for (size_t i = 0; i < bundle.records.size() && tampered_count < 3; ++i) {
    if (attacks::TamperRecordOutputHash(&bundle, i).ok()) {
      ++tampered_count;
    }
  }
  ASSERT_GE(tampered_count, 3u);
  VerificationReport sequential = VerifySequential(bundle);
  EXPECT_GE(sequential.issues.size(), 3u);
  ExpectAllThreadCountsAgree(bundle);
}

class ParallelAuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = *db_.Insert(p(1), Value::String("db"));
    table_ = *db_.Insert(p(1), Value::String("t"), root_);
    for (int r = 0; r < 6; ++r) {
      ObjectId row = *db_.Insert(p(2), Value::Int(r), table_);
      rows_.push_back(row);
      cells_.push_back(*db_.Insert(p(2), Value::Int(r * 10), row));
    }
    ASSERT_TRUE(db_.Update(p(1), cells_[0], Value::Int(-1)).ok());
    ASSERT_TRUE(db_.Update(p(3), cells_[3], Value::Int(-2)).ok());
  }

  const crypto::Participant& p(int i) {
    return TestPki::Instance().participant(i - 1);
  }

  void ExpectAllThreadCountsAgree() {
    StoreAuditor sequential(&TestPki::Instance().registry());
    VerificationReport expected =
        sequential.Audit(db_.provenance(), db_.tree());
    for (int threads : {1, 2, 4, 8}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      StoreAuditor parallel(&TestPki::Instance().registry(),
                            crypto::HashAlgorithm::kSha1,
                            ParallelismConfig{threads});
      ExpectReportsIdentical(expected,
                             parallel.Audit(db_.provenance(), db_.tree()));
    }
  }

  TrackedDatabase db_;
  ObjectId root_, table_;
  std::vector<ObjectId> rows_, cells_;
};

TEST_F(ParallelAuditTest, CleanStoreReportsIdentical) {
  StoreAuditor auditor(&TestPki::Instance().registry(),
                       crypto::HashAlgorithm::kSha1, ParallelismConfig{4});
  EXPECT_TRUE(auditor.Audit(db_.provenance(), db_.tree()).ok());
  ExpectAllThreadCountsAgree();
}

TEST_F(ParallelAuditTest, TamperedLiveObjectReportsIdentical) {
  ASSERT_TRUE(db_.bootstrap_tree().Update(cells_[2], Value::Int(666)).ok());
  StoreAuditor auditor(&TestPki::Instance().registry(),
                       crypto::HashAlgorithm::kSha1, ParallelismConfig{4});
  VerificationReport report = auditor.Audit(db_.provenance(), db_.tree());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasIssue(IssueKind::kDataHashMismatch));
  ExpectAllThreadCountsAgree();
}

TEST_F(ParallelAuditTest, TamperedChecksumReportsIdentical) {
  db_.mutable_provenance()->mutable_record(2)->checksum[1] ^= 0x40;
  StoreAuditor auditor(&TestPki::Instance().registry(),
                       crypto::HashAlgorithm::kSha1, ParallelismConfig{4});
  EXPECT_TRUE(auditor.Audit(db_.provenance(), db_.tree())
                  .HasIssue(IssueKind::kBadSignature));
  ExpectAllThreadCountsAgree();
}

TEST_F(ParallelAuditTest, AuditorReusesPoolAcrossAudits) {
  // One auditor, several audits: the owned pool must survive reuse.
  StoreAuditor auditor(&TestPki::Instance().registry(),
                       crypto::HashAlgorithm::kSha1, ParallelismConfig{4});
  for (int round = 0; round < 3; ++round) {
    EXPECT_TRUE(auditor.Audit(db_.provenance(), db_.tree()).ok()) << round;
  }
}

}  // namespace
}  // namespace provdb::provenance
