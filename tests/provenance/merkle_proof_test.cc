#include "provenance/merkle_proof.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "provenance/subtree_hasher.h"
#include "workload/synthetic.h"

namespace provdb::provenance {
namespace {

using storage::ObjectId;
using storage::TreeStore;
using storage::Value;

constexpr auto kAlg = crypto::HashAlgorithm::kSha1;

class MerkleProofTest : public ::testing::Test {
 protected:
  // root -> {table} -> rows -> cells (3 rows x 3 cells).
  void SetUp() override {
    root_ = *tree_.Insert(Value::String("db"));
    table_ = *tree_.Insert(Value::String("t"), root_);
    for (int r = 0; r < 3; ++r) {
      ObjectId row = *tree_.Insert(Value::Int(r), table_);
      rows_.push_back(row);
      for (int c = 0; c < 3; ++c) {
        cells_.push_back(*tree_.Insert(Value::Int(10 * r + c), row));
      }
    }
    SubtreeHasher hasher(&tree_, kAlg);
    root_hash_ = *hasher.HashSubtreeBasic(root_);
  }

  TreeStore tree_;
  ObjectId root_, table_;
  std::vector<ObjectId> rows_, cells_;
  crypto::Digest root_hash_;
};

TEST_F(MerkleProofTest, LeafProofVerifies) {
  for (ObjectId cell : cells_) {
    auto proof = BuildInclusionProof(tree_, cell, root_, kAlg);
    ASSERT_TRUE(proof.ok());
    EXPECT_EQ(proof->subject, cell);
    EXPECT_EQ(proof->steps.size(), 3u);  // row, table, root
    EXPECT_TRUE(VerifyInclusionProof(*proof, root_hash_, kAlg).ok());
  }
}

TEST_F(MerkleProofTest, InteriorProofVerifies) {
  auto proof = BuildInclusionProof(tree_, rows_[1], root_, kAlg);
  ASSERT_TRUE(proof.ok());
  EXPECT_EQ(proof->steps.size(), 2u);  // table, root
  EXPECT_TRUE(VerifyInclusionProof(*proof, root_hash_, kAlg).ok());
}

TEST_F(MerkleProofTest, SelfProofIsEmptySteps) {
  auto proof = BuildInclusionProof(tree_, root_, root_, kAlg);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(proof->steps.empty());
  EXPECT_EQ(proof->subject_hash, root_hash_);
  EXPECT_TRUE(VerifyInclusionProof(*proof, root_hash_, kAlg).ok());
}

TEST_F(MerkleProofTest, ProofAgainstSubtreeRoot) {
  // Prove a cell against its *row* hash rather than the database root.
  SubtreeHasher hasher(&tree_, kAlg);
  crypto::Digest row_hash = *hasher.HashSubtreeBasic(rows_[0]);
  auto proof = BuildInclusionProof(tree_, cells_[0], rows_[0], kAlg);
  ASSERT_TRUE(proof.ok());
  EXPECT_EQ(proof->steps.size(), 1u);
  EXPECT_TRUE(VerifyInclusionProof(*proof, row_hash, kAlg).ok());
  // The same proof does NOT verify against the database root.
  EXPECT_FALSE(VerifyInclusionProof(*proof, root_hash_, kAlg).ok());
}

TEST_F(MerkleProofTest, TargetOutsideSubtreeRejected) {
  ObjectId stranger = *tree_.Insert(Value::Int(99));  // separate root
  EXPECT_FALSE(BuildInclusionProof(tree_, stranger, root_, kAlg).ok());
  EXPECT_FALSE(BuildInclusionProof(tree_, root_, rows_[0], kAlg).ok());
}

TEST_F(MerkleProofTest, MissingObjectsRejected) {
  EXPECT_FALSE(BuildInclusionProof(tree_, 9999, root_, kAlg).ok());
  EXPECT_FALSE(BuildInclusionProof(tree_, cells_[0], 9999, kAlg).ok());
}

TEST_F(MerkleProofTest, TamperedSubjectHashFails) {
  auto proof = BuildInclusionProof(tree_, cells_[0], root_, kAlg);
  ASSERT_TRUE(proof.ok());
  proof->subject_hash.mutable_data()[0] ^= 1;
  EXPECT_FALSE(VerifyInclusionProof(*proof, root_hash_, kAlg).ok());
}

TEST_F(MerkleProofTest, TamperedSiblingFails) {
  auto proof = BuildInclusionProof(tree_, cells_[0], root_, kAlg);
  ASSERT_TRUE(proof.ok());
  ASSERT_FALSE(proof->steps[0].right_siblings.empty());
  proof->steps[0].right_siblings[0].mutable_data()[0] ^= 1;
  EXPECT_FALSE(VerifyInclusionProof(*proof, root_hash_, kAlg).ok());
}

TEST_F(MerkleProofTest, PositionIsProven) {
  // Moving the subject between sibling positions must break the proof:
  // swap a left sibling into the hole.
  auto proof = BuildInclusionProof(tree_, cells_[1], root_, kAlg);
  ASSERT_TRUE(proof.ok());
  ProofStep& step = proof->steps[0];
  ASSERT_FALSE(step.left_siblings.empty());
  std::swap(step.left_siblings[0], proof->subject_hash);
  EXPECT_FALSE(VerifyInclusionProof(*proof, root_hash_, kAlg).ok());
}

TEST_F(MerkleProofTest, WrongValueForLeafFails) {
  auto proof = BuildInclusionProof(tree_, cells_[0], root_, kAlg);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(
      VerifyLeafInclusion(*proof, Value::Int(0), root_hash_, kAlg).ok());
  EXPECT_FALSE(
      VerifyLeafInclusion(*proof, Value::Int(1), root_hash_, kAlg).ok());
}

TEST_F(MerkleProofTest, StaleProofFailsAfterUpdateElsewhere) {
  // A proof anchors a *specific* root state; any change in the tree
  // yields a new root hash the old proof no longer matches.
  auto proof = BuildInclusionProof(tree_, cells_[0], root_, kAlg);
  ASSERT_TRUE(proof.ok());
  ASSERT_TRUE(tree_.Update(cells_[8], Value::Int(777)).ok());
  SubtreeHasher hasher(&tree_, kAlg);
  crypto::Digest new_root = *hasher.HashSubtreeBasic(root_);
  EXPECT_FALSE(VerifyInclusionProof(*proof, new_root, kAlg).ok());
  EXPECT_TRUE(VerifyInclusionProof(*proof, root_hash_, kAlg).ok());
}

TEST_F(MerkleProofTest, SerializationRoundTrip) {
  auto proof = BuildInclusionProof(tree_, cells_[4], root_, kAlg);
  ASSERT_TRUE(proof.ok());
  Bytes wire = proof->Serialize();
  auto back = InclusionProof::Deserialize(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->subject, proof->subject);
  EXPECT_EQ(back->subject_hash, proof->subject_hash);
  EXPECT_EQ(back->steps.size(), proof->steps.size());
  EXPECT_TRUE(VerifyInclusionProof(*back, root_hash_, kAlg).ok());
  EXPECT_FALSE(InclusionProof::Deserialize(Bytes{0xFF}).ok());
}

TEST_F(MerkleProofTest, SiblingCountMatchesFanOut) {
  auto proof = BuildInclusionProof(tree_, cells_[0], root_, kAlg);
  ASSERT_TRUE(proof.ok());
  // cell step: 2 siblings; row step: 2; table step: 0 (table is the only
  // child of root)... root has 1 child (table), table has 3 rows.
  EXPECT_EQ(proof->SiblingCount(), 2u + 2u + 0u);
}

TEST_F(MerkleProofTest, WorksOnSyntheticTableScale) {
  TreeStore tree;
  Rng rng(5);
  auto layout =
      workload::BuildSyntheticDatabase(&tree, {{8, 100}}, &rng);
  ASSERT_TRUE(layout.ok());
  SubtreeHasher hasher(&tree, kAlg);
  crypto::Digest root_hash = *hasher.HashSubtreeBasic(layout->root);

  ObjectId row = layout->tables[0].rows[42];
  ObjectId cell = *workload::CellIdOf(tree, row, 3);
  auto proof = BuildInclusionProof(tree, cell, layout->root, kAlg);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(VerifyInclusionProof(*proof, root_hash, kAlg).ok());
  // Proof size is dominated by the table's row fan-out (99 siblings) plus
  // the row's cells (7) — far less than the 901-node database.
  EXPECT_EQ(proof->SiblingCount(), 7u + 99u + 0u);
}

TEST_F(MerkleProofTest, AlgorithmsAreNotInterchangeable) {
  auto proof = BuildInclusionProof(tree_, cells_[0], root_, kAlg);
  ASSERT_TRUE(proof.ok());
  SubtreeHasher sha256(&tree_, crypto::HashAlgorithm::kSha256);
  crypto::Digest root256 = *sha256.HashSubtreeBasic(root_);
  EXPECT_FALSE(
      VerifyInclusionProof(*proof, root256, crypto::HashAlgorithm::kSha256)
          .ok());
}

}  // namespace
}  // namespace provdb::provenance
