#include "provenance/record.h"

#include <gtest/gtest.h>

namespace provdb::provenance {
namespace {

TEST(OperationTypeNameTest, CoversEveryOperation) {
  EXPECT_EQ(OperationTypeName(OperationType::kInsert), "insert");
  EXPECT_EQ(OperationTypeName(OperationType::kUpdate), "update");
  EXPECT_EQ(OperationTypeName(OperationType::kAggregate), "aggregate");
}

TEST(ObjectStateTest, EqualityComparesIdAndHash) {
  ObjectState a;
  a.object_id = 7;
  a.state_hash = crypto::Digest::FromBytes(Bytes{1, 2, 3});
  ObjectState b = a;
  EXPECT_TRUE(a == b);

  b.object_id = 8;
  EXPECT_FALSE(a == b);

  b = a;
  b.state_hash = crypto::Digest::FromBytes(Bytes{1, 2, 4});
  EXPECT_FALSE(a == b);
}

TEST(ProvenanceRecordTest, ToStringRendersChainPosition) {
  ProvenanceRecord rec;
  rec.seq_id = 3;
  rec.participant = 42;
  rec.op = OperationType::kAggregate;
  rec.inputs.resize(2);
  rec.inputs[0].object_id = 10;
  rec.inputs[1].object_id = 11;
  rec.output.object_id = 12;
  rec.checksum = Bytes(128, 0xAB);

  std::string text = rec.ToString();
  EXPECT_NE(text.find("seq=3"), std::string::npos);
  EXPECT_NE(text.find("p=42"), std::string::npos);
  EXPECT_NE(text.find("aggregate"), std::string::npos);
  EXPECT_NE(text.find("in={10,11}"), std::string::npos);
  EXPECT_NE(text.find("out=12"), std::string::npos);
  // Not inherited unless flagged.
  EXPECT_EQ(text.find("inherited"), std::string::npos);

  rec.inherited = true;
  EXPECT_NE(rec.ToString().find("inherited"), std::string::npos);
}

TEST(ProvenanceRecordTest, PaperTupleSchemaIsPinned) {
  // §5.1 overhead accounting depends on this constant; changing it
  // silently re-scales every space figure.
  EXPECT_EQ(kPaperTupleBytes, 4u + 4u + 4u + 128u);
}

}  // namespace
}  // namespace provdb::provenance
