// Signed checkpoints: seal/load round trip, tamper refusal (every bit
// flip is caught by a CRC or by the seal), wrong-key refusal, stale
// checkpoint GC, and the in-flight .tmp handling around crashes.

#include "provenance/checkpoint.h"

#include <gtest/gtest.h>

#include <string>

#include "common/crc32.h"
#include "crypto/signer.h"
#include "testing/test_pki.h"

namespace provdb::provenance {
namespace {

using provdb::testing::TestPki;
using storage::Env;

crypto::Digest D(uint8_t fill) {
  return crypto::Digest::FromBytes(Bytes(20, fill));
}

ProvenanceRecord Rec(storage::ObjectId object, SeqId seq, OperationType op,
                     uint8_t fill) {
  ProvenanceRecord rec;
  rec.seq_id = seq;
  rec.participant = 1;
  rec.op = op;
  if (op != OperationType::kInsert) {
    rec.inputs.push_back(ObjectState{object, D(fill ^ 0x55)});
  }
  rec.output = ObjectState{object, D(fill)};
  rec.checksum = Bytes(128, fill);
  return rec;
}

const crypto::Signer& Sealer() {
  return TestPki::Instance().participant(0).signer();
}

crypto::RsaSignatureVerifier SealVerifier() {
  return crypto::RsaSignatureVerifier(
      TestPki::Instance().participant(0).public_key());
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = ::testing::TempDir() + "/provdb_checkpoint_" + info->name();
    env_ = Env::Default();
    auto names = env_->ListDir(dir_);
    if (names.ok()) {
      for (const std::string& name : *names) {
        ASSERT_TRUE(env_->RemoveFile(dir_ + "/" + name).ok());
      }
    }
    ASSERT_TRUE(env_->CreateDir(dir_).ok());
  }

  /// A store with two chains: object 7 (insert + update) and object 9
  /// (insert), three live records total.
  ProvenanceStore SmallStore() {
    ProvenanceStore store;
    EXPECT_TRUE(store.AddRecord(Rec(7, 0, OperationType::kInsert, 1)).ok());
    EXPECT_TRUE(store.AddRecord(Rec(7, 1, OperationType::kUpdate, 2)).ok());
    EXPECT_TRUE(store.AddRecord(Rec(9, 0, OperationType::kInsert, 3)).ok());
    return store;
  }

  Bytes ReadAll(const std::string& path) {
    auto content = env_->ReadFileToBytes(path);
    EXPECT_TRUE(content.ok());
    return std::move(content).value();
  }

  void WriteAll(const std::string& path, const Bytes& content) {
    auto file = env_->NewWritableFile(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(content).ok());
    ASSERT_TRUE((*file)->Close().ok());
  }

  Env* env_ = nullptr;
  std::string dir_;
};

size_t ReadVarintAt(const Bytes& bytes, size_t* pos) {
  uint64_t value = 0;
  int shift = 0;
  while (true) {
    uint8_t c = bytes[*pos];
    ++*pos;
    value |= static_cast<uint64_t>(c & 0x7F) << shift;
    if ((c & 0x80) == 0) break;
    shift += 7;
  }
  return static_cast<size_t>(value);
}

TEST_F(CheckpointTest, RoundTripRestoresStoreAndManifest) {
  ProvenanceStore store = SmallStore();
  ASSERT_TRUE(CheckpointWriter::Write(env_, dir_, store, /*wal_horizon=*/3,
                                      Sealer(), /*sealer_id=*/1)
                  .ok());
  ASSERT_TRUE(env_->FileExists(CheckpointFileName(dir_, 3)));

  auto verifier = SealVerifier();
  auto loaded = CheckpointReader::Load(env_, CheckpointFileName(dir_, 3),
                                       verifier);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->manifest.wal_horizon, 3u);
  EXPECT_EQ(loaded->manifest.sealer, 1u);
  EXPECT_EQ(loaded->manifest.live_records, 3u);
  EXPECT_EQ(loaded->manifest.chain_count, 2u);
  EXPECT_EQ(loaded->store.record_count(), 3u);
  EXPECT_EQ(loaded->store.ChainOf(7), (std::vector<uint64_t>{0, 1}));
  EXPECT_EQ(loaded->store.record(1).checksum, Bytes(128, 2));
}

TEST_F(CheckpointTest, EmptyStoreStillSeals) {
  ProvenanceStore store;
  ASSERT_TRUE(
      CheckpointWriter::Write(env_, dir_, store, 1, Sealer(), 1).ok());
  auto verifier = SealVerifier();
  auto loaded =
      CheckpointReader::Load(env_, CheckpointFileName(dir_, 1), verifier);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->store.record_count(), 0u);
  EXPECT_EQ(loaded->manifest.chain_count, 0u);
}

TEST_F(CheckpointTest, PrunedRecordsAreNotResurrected) {
  ProvenanceStore store = SmallStore();
  ASSERT_TRUE(store.PruneObject(9).ok());
  ASSERT_TRUE(
      CheckpointWriter::Write(env_, dir_, store, 2, Sealer(), 1).ok());

  auto verifier = SealVerifier();
  auto loaded =
      CheckpointReader::Load(env_, CheckpointFileName(dir_, 2), verifier);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->manifest.live_records, 2u);
  EXPECT_EQ(loaded->store.live_record_count(), 2u);
  EXPECT_TRUE(loaded->store.ChainOf(9).empty())
      << "pruned history must stay pruned across a checkpoint";
}

TEST_F(CheckpointTest, WriteRejectsHorizonZero) {
  ProvenanceStore store = SmallStore();
  EXPECT_EQ(CheckpointWriter::Write(env_, dir_, store, 0, Sealer(), 1).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CheckpointTest, EveryByteFlipIsRefused) {
  ProvenanceStore store = SmallStore();
  ASSERT_TRUE(
      CheckpointWriter::Write(env_, dir_, store, 1, Sealer(), 1).ok());
  const std::string path = CheckpointFileName(dir_, 1);
  const Bytes pristine = ReadAll(path);
  auto verifier = SealVerifier();
  ASSERT_TRUE(CheckpointReader::Load(env_, path, verifier).ok());

  // Flip every byte of the file, one at a time: each flip must be
  // refused — by the header check, a frame CRC, the framing parse, or
  // the seal — and never partially loaded.
  for (size_t i = 0; i < pristine.size(); ++i) {
    Bytes tampered = pristine;
    tampered[i] ^= 0xFF;
    WriteAll(path, tampered);
    auto loaded = CheckpointReader::Load(env_, path, verifier);
    EXPECT_FALSE(loaded.ok()) << "byte " << i << " flip was accepted";
  }
}

TEST_F(CheckpointTest, TamperedRecordWithPatchedCrcFailsTheSeal) {
  ProvenanceStore store = SmallStore();
  ASSERT_TRUE(
      CheckpointWriter::Write(env_, dir_, store, 1, Sealer(), 1).ok());
  const std::string path = CheckpointFileName(dir_, 1);
  Bytes content = ReadAll(path);

  // Walk to the second frame (the first record), flip a payload byte,
  // and recompute that frame's CRC so the tamper passes every integrity
  // check short of the signature.
  size_t pos = kCheckpointHeaderSize;
  size_t manifest_len = ReadVarintAt(content, &pos);
  pos += manifest_len + 4;
  size_t record_len = ReadVarintAt(content, &pos);
  content[pos + record_len / 2] ^= 0x01;
  const uint32_t patched =
      Crc32(ByteView(content.data() + pos, record_len));
  Bytes crc;
  AppendFixed32(&crc, patched);
  for (size_t i = 0; i < 4; ++i) {
    content[pos + record_len + i] = crc[i];
  }
  WriteAll(path, content);

  auto verifier = SealVerifier();
  auto loaded = CheckpointReader::Load(env_, path, verifier);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kVerificationFailed)
      << loaded.status().ToString();
}

TEST_F(CheckpointTest, WrongKeyIsRefused) {
  ProvenanceStore store = SmallStore();
  ASSERT_TRUE(
      CheckpointWriter::Write(env_, dir_, store, 1, Sealer(), 1).ok());
  // Participant 2's key did not seal this checkpoint.
  crypto::RsaSignatureVerifier wrong_key(
      TestPki::Instance().participant(1).public_key());
  auto loaded =
      CheckpointReader::Load(env_, CheckpointFileName(dir_, 1), wrong_key);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kVerificationFailed);
}

TEST_F(CheckpointTest, LatestHorizonPicksNewestAndIgnoresTmp) {
  EXPECT_EQ(LatestCheckpointHorizon(env_, dir_).status().code(),
            StatusCode::kNotFound);

  ProvenanceStore store = SmallStore();
  ASSERT_TRUE(
      CheckpointWriter::Write(env_, dir_, store, 2, Sealer(), 1).ok());
  ASSERT_TRUE(
      CheckpointWriter::Write(env_, dir_, store, 5, Sealer(), 1).ok());
  // An in-flight .tmp (crash mid-write) must never win, whatever its
  // number claims.
  WriteAll(dir_ + "/checkpoint-000009.pvck.tmp", Bytes(8, 0xAB));

  auto latest = LatestCheckpointHorizon(env_, dir_);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, 5u);
}

TEST_F(CheckpointTest, RemoveStaleKeepsTheSealAtKeepHorizon) {
  ProvenanceStore store = SmallStore();
  ASSERT_TRUE(
      CheckpointWriter::Write(env_, dir_, store, 2, Sealer(), 1).ok());
  ASSERT_TRUE(
      CheckpointWriter::Write(env_, dir_, store, 5, Sealer(), 1).ok());
  WriteAll(dir_ + "/checkpoint-000009.pvck.tmp", Bytes(8, 0xAB));

  ASSERT_TRUE(RemoveStaleCheckpoints(env_, dir_, 5).ok());
  EXPECT_FALSE(env_->FileExists(CheckpointFileName(dir_, 2)));
  EXPECT_TRUE(env_->FileExists(CheckpointFileName(dir_, 5)));
  EXPECT_FALSE(env_->FileExists(dir_ + "/checkpoint-000009.pvck.tmp"));
  // Idempotent, like WAL GC.
  EXPECT_TRUE(RemoveStaleCheckpoints(env_, dir_, 5).ok());
}

}  // namespace
}  // namespace provdb::provenance
