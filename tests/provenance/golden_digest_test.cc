// Golden-digest regression test: the runtime backstop for lint rule R01
// (canonical encoding must never drift).
//
// A fixed workload — fixed PKI seed, fixed operation sequence — must
// serialize to byte-identical provenance bundles forever: the SHA-256 of
// the wire encoding is pinned below. Any change to record encoding, value
// canonicalization, signature formatting, or (the R01 hazard) an
// iteration-order-dependent serialization path flips the digest and fails
// this test, even if verification still happens to pass.
//
// If this test fails because you *intentionally* changed the wire format,
// treat it as a compatibility break: bump the format, then re-pin the
// constant from the test's failure output.

#include <gtest/gtest.h>

#include "common/hex.h"
#include "crypto/hash.h"
#include "provenance/tracked_database.h"
#include "provenance/verifier.h"
#include "testing/test_pki.h"

namespace provdb::provenance {
namespace {

using provdb::testing::TestPki;
using storage::ObjectId;
using storage::Value;

/// SHA-256 of the serialized recipient bundle produced by BuildBundle().
/// Pinned 2026-08-06; every byte of the encoding (varints, value
/// canonicalization, record layout, RSA signatures from the fixed-seed
/// test PKI) is covered.
constexpr char kGoldenBundleSha256[] =
    "bcca8d0f95604b6196af16574a5e94eafcc3776dfaae84bfab8085b0bd84d358";

/// The fixed workload: three chains (insert + updates), one aggregation
/// across them, and a compound object, exercising every record kind the
/// wire format encodes.
RecipientBundle BuildBundle() {
  const TestPki& pki = TestPki::Instance();
  const auto& alice = pki.participant(0);
  const auto& bob = pki.participant(1);
  const auto& carol = pki.participant(2);

  TrackedDatabase db;
  ObjectId a = db.Insert(alice, Value::String("alpha-0")).value();
  ObjectId b = db.Insert(bob, Value::Int(42)).value();
  ObjectId c = db.Insert(carol, Value::Double(2.5)).value();

  EXPECT_TRUE(db.Update(bob, a, Value::String("alpha-1")).ok());
  EXPECT_TRUE(db.Update(alice, a, Value::String("alpha-2")).ok());
  EXPECT_TRUE(db.Update(carol, b, Value::Int(43)).ok());

  // A compound object under a fresh root, then one nested update.
  ObjectId root = db.Insert(alice, Value::String("table")).value();
  ObjectId row = db.Insert(alice, Value::Int(1), root).value();
  ObjectId cell = db.Insert(bob, Value::String("cell"), row).value();
  EXPECT_TRUE(db.Update(bob, cell, Value::String("cell'")).ok());

  // Aggregate the three chains into a report object.
  ObjectId report =
      db.Aggregate(carol, {a, b, c}, Value::String("summary")).value();
  EXPECT_TRUE(db.Update(carol, report, Value::String("summary-v2")).ok());

  return db.ExportForRecipient(report).value();
}

TEST(GoldenDigestTest, BundleEncodingIsPinned) {
  RecipientBundle bundle = BuildBundle();
  Bytes wire = bundle.Serialize();
  std::string digest =
      HexEncode(crypto::HashBytes(crypto::HashAlgorithm::kSha256, wire)
                    .view());
  EXPECT_EQ(digest, kGoldenBundleSha256)
      << "canonical bundle encoding drifted (" << wire.size()
      << " wire bytes). If intentional, re-pin kGoldenBundleSha256.";
}

TEST(GoldenDigestTest, EncodingIsStableAcrossRebuilds) {
  // Two independently built databases running the same workload must
  // serialize identically — no address-, allocation-, or hash-seed-
  // dependent bytes may reach the wire.
  Bytes first = BuildBundle().Serialize();
  Bytes second = BuildBundle().Serialize();
  ASSERT_EQ(first.size(), second.size());
  EXPECT_TRUE(first == second);
}

TEST(GoldenDigestTest, PinnedBundleVerifiesSequentiallyAndParallel) {
  RecipientBundle bundle = BuildBundle();

  ProvenanceVerifier sequential(&TestPki::Instance().registry());
  VerificationReport seq_report = sequential.Verify(bundle);
  EXPECT_TRUE(seq_report.ok()) << seq_report.ToString();

  ProvenanceVerifier parallel(&TestPki::Instance().registry(),
                              crypto::HashAlgorithm::kSha1,
                              ParallelismConfig{4});
  VerificationReport par_report = parallel.Verify(bundle);
  EXPECT_TRUE(par_report.ok()) << par_report.ToString();

  // Same report, byte for byte (the parallel engine's contract).
  EXPECT_EQ(seq_report.ToString(), par_report.ToString());
  EXPECT_EQ(seq_report.records_checked, par_report.records_checked);
  EXPECT_EQ(seq_report.signatures_verified, par_report.signatures_verified);
}

}  // namespace
}  // namespace provdb::provenance
