#include "provenance/query.h"

#include <gtest/gtest.h>

#include "provenance/tracked_database.h"
#include "provenance/verifier.h"
#include "testing/test_pki.h"

namespace provdb::provenance {
namespace {

using provdb::testing::TestPki;
using storage::ObjectId;
using storage::Value;

class QueryTest : public ::testing::Test {
 protected:
  // Figure-2-shaped history: A, B evolve; C aggregates them; D aggregates
  // A (later version) and C.
  void SetUp() override {
    a_ = *db_.Insert(p(1), Value::String("a1"));
    b_ = *db_.Insert(p(1), Value::String("b1"));
    ASSERT_TRUE(db_.Update(p(2), b_, Value::String("b2")).ok());
    c_ = *db_.Aggregate(p(3), {a_, b_}, Value::String("c1"));
    ASSERT_TRUE(db_.Update(p(2), a_, Value::String("a2")).ok());
    d_ = *db_.Aggregate(p(1), {a_, c_}, Value::String("d1"));
  }

  const crypto::Participant& p(int i) {
    return TestPki::Instance().participant(i - 1);
  }

  TrackedDatabase db_;
  ObjectId a_, b_, c_, d_;
};

TEST_F(QueryTest, SummarizeLineageCountsEverything) {
  auto summary = SummarizeLineage(db_.provenance(), d_);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->record_count, 6u);  // 2 ins, 2 upd, 2 agg
  EXPECT_EQ(summary->insert_count, 2u);
  EXPECT_EQ(summary->update_count, 2u);
  EXPECT_EQ(summary->aggregate_count, 2u);
  EXPECT_EQ(summary->participants.size(), 3u);
  // Contributing objects: A, B, C (not D itself).
  EXPECT_EQ(summary->contributing_objects,
            (std::set<ObjectId>{a_, b_, c_}));
  EXPECT_EQ(summary->max_seq_id, 3u);  // D: 1 + max(A@1, C@2)
  EXPECT_NE(summary->ToString().find("6 records"), std::string::npos);
}

TEST_F(QueryTest, SummarizeLineageOfLeafChain) {
  auto summary = SummarizeLineage(db_.provenance(), a_);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->record_count, 2u);  // insert + update
  EXPECT_TRUE(summary->contributing_objects.empty());
}

TEST_F(QueryTest, SummarizeUnknownObjectFails) {
  EXPECT_FALSE(SummarizeLineage(db_.provenance(), 999).ok());
}

TEST_F(QueryTest, RecordsByParticipant) {
  auto p2_records = RecordsByParticipant(db_.provenance(), p(2).id());
  EXPECT_EQ(p2_records.size(), 2u);  // the two updates
  for (uint64_t idx : p2_records) {
    EXPECT_EQ(db_.provenance().record(idx).op, OperationType::kUpdate);
  }
  EXPECT_TRUE(RecordsByParticipant(db_.provenance(), 999).empty());
}

TEST_F(QueryTest, ParticipantTouchedFollowsTheDag) {
  // p3 only signed C's aggregation — which is part of D's history.
  auto touched = ParticipantTouched(db_.provenance(), d_, p(3).id());
  ASSERT_TRUE(touched.ok());
  EXPECT_TRUE(*touched);
  // ...but p3 never touched A's own history.
  touched = ParticipantTouched(db_.provenance(), a_, p(3).id());
  ASSERT_TRUE(touched.ok());
  EXPECT_FALSE(*touched);
}

TEST_F(QueryTest, HistorySliceSelectsSeqRange) {
  auto slice = HistorySlice(db_.provenance(), a_, 1, 1);
  ASSERT_TRUE(slice.ok());
  ASSERT_EQ(slice->size(), 1u);
  EXPECT_EQ((*slice)[0].op, OperationType::kUpdate);

  slice = HistorySlice(db_.provenance(), a_, 0, 100);
  EXPECT_EQ(slice->size(), 2u);

  EXPECT_FALSE(HistorySlice(db_.provenance(), a_, 2, 1).ok());
  EXPECT_FALSE(HistorySlice(db_.provenance(), 999, 0, 1).ok());
}

TEST_F(QueryTest, DirectSourcesOfAggregate) {
  auto sources = DirectSources(db_.provenance(), d_);
  ASSERT_TRUE(sources.ok());
  ASSERT_EQ(sources->size(), 2u);
  EXPECT_EQ((*sources)[0].object_id, a_);
  EXPECT_EQ((*sources)[1].object_id, c_);
}

TEST_F(QueryTest, DirectSourcesOfNonAggregateIsEmpty) {
  auto sources = DirectSources(db_.provenance(), a_);
  ASSERT_TRUE(sources.ok());
  EXPECT_TRUE(sources->empty());
  EXPECT_FALSE(DirectSources(db_.provenance(), 999).ok());
}

// ---------------------------------------------------------------------
// Pruning (footnote 3) behavior.

TEST_F(QueryTest, PruneUnreferencedObject) {
  // A fresh object not feeding any aggregation can be pruned.
  ObjectId solo = *db_.Insert(p(1), Value::Int(7));
  ASSERT_TRUE(db_.Update(p(1), solo, Value::Int(8)).ok());
  uint64_t live_before = db_.mutable_provenance()->live_record_count();

  auto pruned = db_.mutable_provenance()->PruneObject(solo);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(*pruned, 2u);
  EXPECT_EQ(db_.provenance().live_record_count(), live_before - 2);
  EXPECT_TRUE(db_.provenance().ChainOf(solo).empty());
  EXPECT_FALSE(db_.provenance().LatestFor(solo).ok());
}

TEST_F(QueryTest, PruneAggregationInputRefused) {
  // A and B feed aggregations; pruning them would orphan C/D's proofs.
  auto status = db_.mutable_provenance()->PruneObject(a_);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(db_.mutable_provenance()->PruneObject(b_).ok());
}

TEST_F(QueryTest, PruningUpdatesSpaceAccounting) {
  ObjectId solo = *db_.Insert(p(1), Value::Int(7));
  uint64_t bytes_before = db_.provenance().PaperSchemaBytes();
  db_.mutable_provenance()->PruneObject(solo).value();
  EXPECT_LT(db_.provenance().PaperSchemaBytes(), bytes_before);
}

TEST_F(QueryTest, PrunedRecordsExcludedFromPersistence) {
  ObjectId solo = *db_.Insert(p(1), Value::Int(7));
  db_.mutable_provenance()->PruneObject(solo).value();
  storage::RecordLog log;
  ASSERT_TRUE(db_.provenance().SaveToLog(&log).ok());
  EXPECT_EQ(log.record_count(), db_.provenance().live_record_count());
}

TEST_F(QueryTest, PruneIsIdempotentAndSafeOnUnknown) {
  auto r = db_.mutable_provenance()->PruneObject(424242);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 0u);
}

TEST_F(QueryTest, OtherObjectsStillVerifyAfterPrune) {
  // Local chaining (§3.2): pruning one object's history never impairs
  // verification of others.
  ObjectId solo = *db_.Insert(p(1), Value::Int(7));
  db_.mutable_provenance()->PruneObject(solo).value();
  auto bundle = db_.ExportForRecipient(d_);
  ASSERT_TRUE(bundle.ok());
  ProvenanceVerifier verifier(&TestPki::Instance().registry());
  EXPECT_TRUE(verifier.Verify(*bundle).ok());
}

}  // namespace
}  // namespace provdb::provenance
