#include "provenance/serialization.h"

#include <gtest/gtest.h>

namespace provdb::provenance {
namespace {

ProvenanceRecord MakeSampleRecord() {
  ProvenanceRecord rec;
  rec.seq_id = 17;
  rec.participant = 3;
  rec.op = OperationType::kAggregate;
  rec.inherited = true;
  rec.inputs.push_back(
      ObjectState{5, crypto::Digest::FromBytes(Bytes(20, 0xAA))});
  rec.inputs.push_back(
      ObjectState{9, crypto::Digest::FromBytes(Bytes(20, 0xBB))});
  rec.output = ObjectState{42, crypto::Digest::FromBytes(Bytes(20, 0xCC))};
  rec.checksum = Bytes(128, 0xDD);
  rec.output_snapshot = storage::Value::String("snapshot");
  rec.has_output_snapshot = true;
  return rec;
}

void ExpectRecordsEqual(const ProvenanceRecord& a, const ProvenanceRecord& b) {
  EXPECT_EQ(a.seq_id, b.seq_id);
  EXPECT_EQ(a.participant, b.participant);
  EXPECT_EQ(a.op, b.op);
  EXPECT_EQ(a.inherited, b.inherited);
  ASSERT_EQ(a.inputs.size(), b.inputs.size());
  for (size_t i = 0; i < a.inputs.size(); ++i) {
    EXPECT_EQ(a.inputs[i], b.inputs[i]);
  }
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.has_output_snapshot, b.has_output_snapshot);
  if (a.has_output_snapshot) {
    EXPECT_EQ(a.output_snapshot, b.output_snapshot);
  }
}

TEST(SerializationTest, RoundTripFullRecord) {
  ProvenanceRecord rec = MakeSampleRecord();
  Bytes wire = EncodeRecord(rec);
  auto back = DecodeRecord(wire);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectRecordsEqual(rec, *back);
}

TEST(SerializationTest, RoundTripMinimalRecord) {
  ProvenanceRecord rec;  // insert, no inputs, no snapshot
  rec.output = ObjectState{1, crypto::Digest::FromBytes(Bytes(20, 1))};
  rec.checksum = Bytes(64, 2);
  Bytes wire = EncodeRecord(rec);
  auto back = DecodeRecord(wire);
  ASSERT_TRUE(back.ok());
  ExpectRecordsEqual(rec, *back);
}

TEST(SerializationTest, RoundTripAllOperationTypes) {
  for (OperationType op : {OperationType::kInsert, OperationType::kUpdate,
                           OperationType::kAggregate}) {
    ProvenanceRecord rec = MakeSampleRecord();
    rec.op = op;
    if (op == OperationType::kInsert) rec.inputs.clear();
    auto back = DecodeRecord(EncodeRecord(rec));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->op, op);
  }
}

TEST(SerializationTest, EmptyInputFails) {
  EXPECT_FALSE(DecodeRecord(ByteView()).ok());
}

TEST(SerializationTest, WrongVersionFails) {
  Bytes wire = EncodeRecord(MakeSampleRecord());
  wire[0] = 0x7F;
  EXPECT_FALSE(DecodeRecord(wire).ok());
}

TEST(SerializationTest, TruncationAnywhereFails) {
  Bytes wire = EncodeRecord(MakeSampleRecord());
  // Every strict prefix must fail to decode (no silent partial parses),
  // except prefixes that happen to end exactly at the optional-snapshot
  // flag boundary — the format is self-delimiting up to trailing fields.
  for (size_t len = 0; len + 1 < wire.size(); len += 5) {
    auto r = DecodeRecord(ByteView(wire.data(), len));
    EXPECT_FALSE(r.ok()) << "prefix of length " << len << " decoded";
  }
}

TEST(SerializationTest, InvalidOpTagFails) {
  ProvenanceRecord rec = MakeSampleRecord();
  Bytes wire = EncodeRecord(rec);
  // The op byte follows version + seq varint + participant varint.
  // Locate it by re-encoding with a distinctive participant value.
  rec.participant = 1;
  rec.seq_id = 1;
  wire = EncodeRecord(rec);
  wire[3] = 0x77;  // version(1) + seq(1) + participant(1) -> op at index 3
  EXPECT_FALSE(DecodeRecord(wire).ok());
}

TEST(SerializationTest, HugeClaimedInputCountFails) {
  // A record claiming more inputs than bytes available must be rejected
  // without attempting a giant allocation.
  Bytes wire;
  wire.push_back(1);     // version
  wire.push_back(0);     // seq
  wire.push_back(0);     // participant
  wire.push_back(2);     // op = aggregate
  wire.push_back(0);     // inherited
  // varint 2^40 as the input count
  for (uint8_t b : {0x80, 0x80, 0x80, 0x80, 0x80, 0x20}) wire.push_back(b);
  EXPECT_FALSE(DecodeRecord(wire).ok());
}

TEST(SerializationTest, EncodingIsDeterministic) {
  ProvenanceRecord rec = MakeSampleRecord();
  EXPECT_EQ(EncodeRecord(rec), EncodeRecord(rec));
}

}  // namespace
}  // namespace provdb::provenance
