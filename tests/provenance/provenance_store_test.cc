#include "provenance/provenance_store.h"

#include <gtest/gtest.h>

#include "storage/record_log.h"

namespace provdb::provenance {
namespace {

crypto::Digest D(uint8_t fill) {
  return crypto::Digest::FromBytes(Bytes(20, fill));
}

ProvenanceRecord Rec(storage::ObjectId object, SeqId seq, OperationType op,
                     uint8_t out_fill, uint8_t in_fill = 0) {
  ProvenanceRecord rec;
  rec.seq_id = seq;
  rec.participant = 1;
  rec.op = op;
  if (op != OperationType::kInsert) {
    rec.inputs.push_back(ObjectState{object, D(in_fill)});
  }
  rec.output = ObjectState{object, D(out_fill)};
  rec.checksum = Bytes(128, out_fill);
  return rec;
}

TEST(ProvenanceStoreTest, AddAndLookup) {
  ProvenanceStore store;
  auto i0 = store.AddRecord(Rec(7, 0, OperationType::kInsert, 1));
  ASSERT_TRUE(i0.ok());
  EXPECT_EQ(*i0, 0u);
  auto i1 = store.AddRecord(Rec(7, 1, OperationType::kUpdate, 2, 1));
  ASSERT_TRUE(i1.ok());
  EXPECT_EQ(store.record_count(), 2u);
  EXPECT_EQ(store.ChainOf(7), (std::vector<uint64_t>{0, 1}));
  auto latest = store.LatestFor(7);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ((*latest)->seq_id, 1u);
}

TEST(ProvenanceStoreTest, SeqMustIncreasePerObject) {
  ProvenanceStore store;
  ASSERT_TRUE(store.AddRecord(Rec(7, 3, OperationType::kUpdate, 1)).ok());
  EXPECT_FALSE(store.AddRecord(Rec(7, 3, OperationType::kUpdate, 2)).ok());
  EXPECT_FALSE(store.AddRecord(Rec(7, 1, OperationType::kUpdate, 2)).ok());
  // Other objects are independent chains.
  EXPECT_TRUE(store.AddRecord(Rec(8, 0, OperationType::kInsert, 2)).ok());
}

TEST(ProvenanceStoreTest, LatestForUnknownObjectFails) {
  ProvenanceStore store;
  EXPECT_FALSE(store.LatestFor(99).ok());
  EXPECT_TRUE(store.ChainOf(99).empty());
}

TEST(ProvenanceStoreTest, SpaceAccountingMatchesPaperSchema) {
  ProvenanceStore store;
  // <SeqID, Participant, Oid, Checksum> = 12 + checksum bytes.
  store.AddRecord(Rec(1, 0, OperationType::kInsert, 1)).value();
  EXPECT_EQ(store.PaperSchemaBytes(), 12 + 128u);
  EXPECT_EQ(store.ChecksumBytes(), 128u);
  store.AddRecord(Rec(1, 1, OperationType::kUpdate, 2, 1)).value();
  EXPECT_EQ(store.PaperSchemaBytes(), 2 * (12 + 128u));
}

TEST(ProvenanceStoreTest, ExtractLinearChain) {
  ProvenanceStore store;
  store.AddRecord(Rec(5, 0, OperationType::kInsert, 1)).value();
  store.AddRecord(Rec(5, 1, OperationType::kUpdate, 2, 1)).value();
  store.AddRecord(Rec(5, 2, OperationType::kUpdate, 3, 2)).value();
  store.AddRecord(Rec(6, 0, OperationType::kInsert, 9)).value();  // unrelated

  auto prov = store.ExtractProvenance(5);
  ASSERT_TRUE(prov.ok());
  EXPECT_EQ(prov->size(), 3u);
  for (const ProvenanceRecord& rec : *prov) {
    EXPECT_EQ(rec.output.object_id, 5u);
  }
}

TEST(ProvenanceStoreTest, ExtractFollowsAggregationInputs) {
  ProvenanceStore store;
  // A: insert(h1) -> update(h2); B: insert(h3);
  // C = aggregate(A@h2, B@h3); A updated again afterwards (h4).
  store.AddRecord(Rec(1, 0, OperationType::kInsert, 0x01)).value();
  store.AddRecord(Rec(1, 1, OperationType::kUpdate, 0x02, 0x01)).value();
  store.AddRecord(Rec(2, 0, OperationType::kInsert, 0x03)).value();

  ProvenanceRecord agg;
  agg.seq_id = 2;
  agg.participant = 1;
  agg.op = OperationType::kAggregate;
  agg.inputs = {ObjectState{1, D(0x02)}, ObjectState{2, D(0x03)}};
  agg.output = ObjectState{3, D(0x05)};
  agg.checksum = Bytes(128, 0x05);
  store.AddRecord(agg).value();

  store.AddRecord(Rec(1, 2, OperationType::kUpdate, 0x04, 0x02)).value();

  auto prov = store.ExtractProvenance(3);
  ASSERT_TRUE(prov.ok());
  // Includes: A@0, A@1 (up to the matched state), B@0, the aggregate —
  // but NOT A@2 (which post-dates C's input snapshot).
  EXPECT_EQ(prov->size(), 4u);
  for (const ProvenanceRecord& rec : *prov) {
    EXPECT_FALSE(rec.output.object_id == 1 && rec.seq_id == 2)
        << "post-aggregation update of A leaked into C's provenance";
  }
}

TEST(ProvenanceStoreTest, ExtractHandlesSharedHistoryDiamonds) {
  ProvenanceStore store;
  // A feeds two aggregates B and C, which feed D: a diamond DAG. The
  // shared A-history must be included exactly once.
  store.AddRecord(Rec(1, 0, OperationType::kInsert, 0x01)).value();

  for (storage::ObjectId mid : {2u, 3u}) {
    ProvenanceRecord agg;
    agg.seq_id = 1;
    agg.participant = 1;
    agg.op = OperationType::kAggregate;
    agg.inputs = {ObjectState{1, D(0x01)}};
    agg.output = ObjectState{mid, D(static_cast<uint8_t>(mid))};
    agg.checksum = Bytes(128, static_cast<uint8_t>(mid));
    store.AddRecord(agg).value();
  }

  ProvenanceRecord top;
  top.seq_id = 2;
  top.participant = 1;
  top.op = OperationType::kAggregate;
  top.inputs = {ObjectState{2, D(0x02)}, ObjectState{3, D(0x03)}};
  top.output = ObjectState{4, D(0x04)};
  top.checksum = Bytes(128, 0x04);
  store.AddRecord(top).value();

  auto prov = store.ExtractProvenance(4);
  ASSERT_TRUE(prov.ok());
  EXPECT_EQ(prov->size(), 4u);  // A insert + 2 mids + top, no duplicates
}

TEST(ProvenanceStoreTest, ExtractUnknownSubjectFails) {
  ProvenanceStore store;
  EXPECT_FALSE(store.ExtractProvenance(1).ok());
}

TEST(ProvenanceStoreTest, SaveLoadThroughRecordLog) {
  ProvenanceStore store;
  store.AddRecord(Rec(1, 0, OperationType::kInsert, 0x01)).value();
  store.AddRecord(Rec(1, 1, OperationType::kUpdate, 0x02, 0x01)).value();
  store.AddRecord(Rec(2, 0, OperationType::kInsert, 0x03)).value();

  storage::RecordLog log;
  ASSERT_TRUE(store.SaveToLog(&log).ok());
  EXPECT_EQ(log.record_count(), 3u);

  auto restored = ProvenanceStore::LoadFromLog(log);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->record_count(), 3u);
  EXPECT_EQ(restored->ChainOf(1).size(), 2u);
  EXPECT_EQ(restored->ChainOf(2).size(), 1u);
  EXPECT_EQ(restored->PaperSchemaBytes(), store.PaperSchemaBytes());
  auto latest = restored->LatestFor(1);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ((*latest)->output.state_hash, D(0x02));
}

TEST(ProvenanceStoreTest, SerializedBytesIsPositiveAndConsistent) {
  ProvenanceStore store;
  store.AddRecord(Rec(1, 0, OperationType::kInsert, 0x01)).value();
  uint64_t one = store.SerializedBytes();
  EXPECT_GT(one, 0u);
  store.AddRecord(Rec(1, 1, OperationType::kUpdate, 0x02, 0x01)).value();
  EXPECT_GT(store.SerializedBytes(), one);
}

}  // namespace
}  // namespace provdb::provenance
