// Regression pin for the epoch-based snapshot read path (DESIGN.md §16):
// on a quiesced store, everything read through a StoreSnapshot must be
// byte-identical to the direct (writer-current) read path, and a snapshot
// held across further ingest must keep returning its original batch
// prefix. Also unit-tests the COW ChainIndex the snapshots traverse.

#include "provenance/snapshot.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "provenance/auditor.h"
#include "provenance/chain_index.h"
#include "provenance/query.h"
#include "provenance/serialization.h"
#include "provenance/verifier.h"
#include "testing/differential.h"

namespace provdb::provenance {
namespace {

using provdb::testing::IngestWorkloadBuilder;
using provdb::testing::RandomDifferentialWorkload;
using provdb::testing::ReplayThroughPipeline;
using provdb::testing::WipeIngestRoot;
using storage::Env;
using storage::ObjectId;

// ---------------------------------------------------------------------
// ChainIndex: the 16-way path-copying radix trie under every snapshot.
// ---------------------------------------------------------------------

TEST(ChainIndexTest, FindOnEmptyTrieIsNull) {
  EXPECT_EQ(ChainIndex::Find(nullptr, 42), nullptr);
}

TEST(ChainIndexTest, InsertThenFindManyKeys) {
  const ChainIndex::Node* root = nullptr;
  // Keys chosen to collide in low nibbles (0x10 apart) and to include
  // wide spreads, so both BuildSplit and deep descent are exercised.
  std::vector<ObjectId> keys;
  for (uint64_t i = 0; i < 300; ++i) {
    keys.push_back(i * 16 + (i % 3));
    keys.push_back(0xABCD000000000000ull + i);
  }
  for (ObjectId key : keys) {
    auto* leaf = new ChainIndex::Leaf;
    leaf->key = key;
    leaf->head = nullptr;
    root = ChainIndex::Insert(root, leaf, nullptr);
  }
  for (ObjectId key : keys) {
    const ChainIndex::Leaf* found = ChainIndex::Find(root, key);
    ASSERT_NE(found, nullptr) << "key " << key;
    EXPECT_EQ(found->key, key);
  }
  EXPECT_EQ(ChainIndex::Find(root, 0xFFFFFFFFFFFFFFFFull), nullptr);
  ChainIndex::FreeAll(root);
}

TEST(ChainIndexTest, SameKeyInsertReplacesTheLeaf) {
  const ChainIndex::Node* root = nullptr;
  auto* first = new ChainIndex::Leaf;
  first->key = 7;
  first->head = nullptr;
  root = ChainIndex::Insert(root, first, nullptr);

  auto* cell = new ChainNode;
  cell->record = nullptr;
  cell->index = 0;
  cell->prev = nullptr;
  cell->length = 1;
  auto* second = new ChainIndex::Leaf;
  second->key = 7;
  second->head = cell;
  // No domain: the replaced leaf is deleted immediately (covered by ASan).
  root = ChainIndex::Insert(root, second, nullptr);

  const ChainIndex::Leaf* found = ChainIndex::Find(root, 7);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->head, cell);
  ChainIndex::FreeAll(root);
}

TEST(ChainIndexTest, ForEachLeafVisitsEveryKeyOnce) {
  const ChainIndex::Node* root = nullptr;
  for (uint64_t key = 100; key < 164; ++key) {
    auto* leaf = new ChainIndex::Leaf;
    leaf->key = key;
    leaf->head = nullptr;
    root = ChainIndex::Insert(root, leaf, nullptr);
  }
  std::map<ObjectId, int> seen;
  ChainIndex::ForEachLeaf(root,
                          [&](const ChainIndex::Leaf& leaf) {
                            ++seen[leaf.key];
                          });
  EXPECT_EQ(seen.size(), 64u);
  for (const auto& [key, count] : seen) {
    EXPECT_EQ(count, 1) << "key " << key;
    EXPECT_GE(key, 100u);
    EXPECT_LT(key, 164u);
  }
  ChainIndex::FreeAll(root);
}

// ---------------------------------------------------------------------
// Snapshot reads vs the direct path, on a quiesced store.
// ---------------------------------------------------------------------

struct QuiescedFixture {
  IngestWorkloadBuilder builder;
  std::unique_ptr<IngestPipeline> pipeline;

  // In-place init (the builder is neither copyable nor movable).
  void Build(uint64_t seed, size_t num_shards) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Status s = RandomDifferentialWorkload(&builder, seed);
    ASSERT_TRUE(s.ok()) << s.ToString();
    IngestOptions options;
    options.num_shards = num_shards;
    options.max_batch_records = 5;
    std::string root = ::testing::TempDir() + "/provdb_snap_" +
                       std::to_string(seed) + "_" +
                       std::to_string(num_shards);
    ASSERT_TRUE(WipeIngestRoot(Env::Default(), root).ok());
    auto replayed = ReplayThroughPipeline(Env::Default(), root,
                                          builder.requests(), options);
    ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
    pipeline = std::move(*replayed);
  }
};

TEST(StoreSnapshotTest, SnapshotReadsMatchDirectReadsByteForByte) {
  for (size_t num_shards : {size_t{1}, size_t{2}, size_t{8}}) {
    SCOPED_TRACE("num_shards=" + std::to_string(num_shards));
    QuiescedFixture fx;
    fx.Build(0x5A4B0001u, num_shards);
    if (::testing::Test::HasFatalFailure()) return;
    const ShardedProvenanceStore& store = fx.pipeline->store();
    StoreSnapshot snapshot = fx.pipeline->OpenSnapshot();

    EXPECT_EQ(snapshot.num_shards(), num_shards);
    EXPECT_GT(snapshot.epoch(), 0u);
    EXPECT_EQ(snapshot.record_count(), store.record_count());
    EXPECT_EQ(snapshot.live_record_count(), store.live_record_count());

    // Chain maps: identical keys and byte-identical records.
    auto direct = store.AllChains();
    auto snapped = snapshot.AllChains();
    ASSERT_EQ(snapped.size(), direct.size());
    for (const auto& [object, chain] : direct) {
      SCOPED_TRACE("object " + std::to_string(object));
      auto it = snapped.find(object);
      ASSERT_NE(it, snapped.end());
      ASSERT_EQ(it->second.size(), chain.size());
      for (size_t i = 0; i < chain.size(); ++i) {
        EXPECT_EQ(EncodeRecord(*it->second[i]), EncodeRecord(*chain[i]));
      }
    }

    // Per-object chain lookups agree, including unknown objects.
    for (ObjectId id : fx.builder.tracked_objects()) {
      EXPECT_EQ(snapshot.ChainRecords(id).size(),
                store.ChainRecords(id).size());
    }
    EXPECT_TRUE(snapshot.ChainRecords(0xFFFFFFFFull).empty());

    // Extraction closure agrees with the canonical merged-store order.
    auto merged = store.MergedStore();
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    for (ObjectId id : fx.builder.tracked_objects()) {
      SCOPED_TRACE("extract object " + std::to_string(id));
      auto from_snapshot = snapshot.ExtractProvenance(id);
      auto from_merged = merged->ExtractProvenance(id);
      ASSERT_TRUE(from_snapshot.ok()) << from_snapshot.status().ToString();
      ASSERT_TRUE(from_merged.ok()) << from_merged.status().ToString();
      ASSERT_EQ(from_snapshot->size(), from_merged->size());
      for (size_t i = 0; i < from_snapshot->size(); ++i) {
        EXPECT_EQ(EncodeRecord((*from_snapshot)[i]),
                  EncodeRecord((*from_merged)[i]));
      }
    }
  }
}

TEST(StoreSnapshotTest, VerifierAndAuditorAgreeOnSnapshotAndStore) {
  QuiescedFixture fx;
  fx.Build(0x5A4B0002u, 2);
  if (::testing::Test::HasFatalFailure()) return;
  const ShardedProvenanceStore& store = fx.pipeline->store();
  StoreSnapshot snapshot = fx.pipeline->OpenSnapshot();

  ProvenanceVerifier verifier(&fx.builder.registry(),
                              fx.builder.algorithm());
  VerificationReport via_snapshot = verifier.VerifyStore(snapshot);
  VerificationReport via_store =
      store.VerifyChains(fx.builder.registry(), fx.builder.algorithm());
  EXPECT_TRUE(via_snapshot.ok()) << via_snapshot.ToString();
  EXPECT_EQ(via_snapshot.ToString(), via_store.ToString());

  auto merged = store.MergedStore();
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  StoreAuditor auditor(&fx.builder.registry(), fx.builder.algorithm());
  VerificationReport audit_snapshot = auditor.Audit(snapshot,
                                                    fx.builder.tree());
  VerificationReport audit_store = auditor.Audit(*merged, fx.builder.tree());
  EXPECT_TRUE(audit_snapshot.ok()) << audit_snapshot.ToString();
  EXPECT_EQ(audit_snapshot.ToString(), audit_store.ToString());
}

TEST(StoreSnapshotTest, QueryOverloadsAgreeOnSnapshotAndStore) {
  QuiescedFixture fx;
  fx.Build(0x5A4B0003u, 2);
  if (::testing::Test::HasFatalFailure()) return;
  StoreSnapshot snapshot = fx.pipeline->OpenSnapshot();
  auto merged = fx.pipeline->store().MergedStore();
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  for (ObjectId id : fx.builder.tracked_objects()) {
    SCOPED_TRACE("object " + std::to_string(id));
    auto sum_snapshot = SummarizeLineage(snapshot, id);
    auto sum_store = SummarizeLineage(*merged, id);
    ASSERT_TRUE(sum_snapshot.ok()) << sum_snapshot.status().ToString();
    ASSERT_TRUE(sum_store.ok()) << sum_store.status().ToString();
    EXPECT_EQ(sum_snapshot->ToString(), sum_store->ToString());

    auto slice_snapshot = HistorySlice(snapshot, id, 0, 1000);
    auto slice_store = HistorySlice(*merged, id, 0, 1000);
    ASSERT_TRUE(slice_snapshot.ok());
    ASSERT_TRUE(slice_store.ok());
    ASSERT_EQ(slice_snapshot->size(), slice_store->size());
    for (size_t i = 0; i < slice_snapshot->size(); ++i) {
      EXPECT_EQ(EncodeRecord((*slice_snapshot)[i]),
                EncodeRecord((*slice_store)[i]));
    }

    auto sources_snapshot = DirectSources(snapshot, id);
    auto sources_store = DirectSources(*merged, id);
    ASSERT_TRUE(sources_snapshot.ok());
    ASSERT_TRUE(sources_store.ok());
    EXPECT_EQ(sources_snapshot->size(), sources_store->size());
  }

  // Participant queries: the snapshot overload returns records in
  // ascending (object, seq) order — same multiset as the merged store's
  // index-based overload (whose indices are already in that order).
  for (size_t p = 0; p < provdb::testing::TestPki::kNumParticipants; ++p) {
    const crypto::ParticipantId participant = p + 1;  // 1-based test ids
    std::vector<const ProvenanceRecord*> via_snapshot =
        RecordsByParticipant(snapshot, participant);
    std::vector<uint64_t> via_store =
        RecordsByParticipant(*merged, participant);
    ASSERT_EQ(via_snapshot.size(), via_store.size());
    for (size_t i = 0; i < via_snapshot.size(); ++i) {
      EXPECT_EQ(EncodeRecord(*via_snapshot[i]),
                EncodeRecord(merged->record(via_store[i])));
    }
  }
}

// ---------------------------------------------------------------------
// Prefix stability: a held snapshot is immune to later ingest, and new
// snapshots only ever observe whole durable batches.
// ---------------------------------------------------------------------

TEST(StoreSnapshotTest, HeldSnapshotKeepsItsPrefixAcrossFurtherIngest) {
  IngestWorkloadBuilder builder;
  ASSERT_TRUE(RandomDifferentialWorkload(&builder, 0x5A4B0004u).ok());
  const auto& requests = builder.requests();
  ASSERT_GT(requests.size(), 20u);

  IngestOptions options;
  options.num_shards = 2;
  options.max_batch_records = 4;
  std::string root = ::testing::TempDir() + "/provdb_snap_prefix";
  ASSERT_TRUE(WipeIngestRoot(Env::Default(), root).ok());
  auto pipeline = IngestPipeline::Open(Env::Default(), root, options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

  const size_t half = requests.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    ASSERT_TRUE((*pipeline)->Submit(requests[i]).ok());
  }
  ASSERT_TRUE((*pipeline)->Drain().ok());

  StoreSnapshot held = (*pipeline)->OpenSnapshot();
  const uint64_t count_at_cut = held.record_count();
  EXPECT_EQ(count_at_cut, half);
  auto chains_at_cut = held.AllChains();

  for (size_t i = half; i < requests.size(); ++i) {
    ASSERT_TRUE((*pipeline)->Submit(requests[i]).ok());
  }
  ASSERT_TRUE((*pipeline)->Drain().ok());

  // The held snapshot still reads its original cut, byte for byte.
  EXPECT_EQ(held.record_count(), count_at_cut);
  auto chains_after = held.AllChains();
  ASSERT_EQ(chains_after.size(), chains_at_cut.size());
  for (const auto& [object, chain] : chains_at_cut) {
    auto it = chains_after.find(object);
    ASSERT_NE(it, chains_after.end());
    ASSERT_EQ(it->second.size(), chain.size());
    for (size_t i = 0; i < chain.size(); ++i) {
      EXPECT_EQ(EncodeRecord(*it->second[i]), EncodeRecord(*chain[i]));
    }
  }

  // A fresh snapshot sees the full drained state.
  StoreSnapshot fresh = (*pipeline)->OpenSnapshot();
  EXPECT_EQ(fresh.record_count(), requests.size());
  EXPECT_GE(fresh.epoch(), held.epoch());
  ASSERT_TRUE((*pipeline)->Close().ok());
}

TEST(StoreSnapshotTest, SnapshotObservesOnlyWholeBatches) {
  IngestWorkloadBuilder builder;
  ASSERT_TRUE(RandomDifferentialWorkload(&builder, 0x5A4B0005u).ok());
  const auto& requests = builder.requests();
  ASSERT_GT(requests.size(), 10u);

  IngestOptions options;
  options.num_shards = 1;
  options.max_batch_records = 5;
  std::string root = ::testing::TempDir() + "/provdb_snap_batch";
  ASSERT_TRUE(WipeIngestRoot(Env::Default(), root).ok());
  auto pipeline = IngestPipeline::Open(Env::Default(), root, options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

  // Submit 7: the first 5 flush as a batch, 2 stay pending. A snapshot
  // must see exactly the durable batch — never the half-submitted tail.
  for (size_t i = 0; i < 7; ++i) {
    ASSERT_TRUE((*pipeline)->Submit(requests[i]).ok());
  }
  StoreSnapshot snapshot = (*pipeline)->OpenSnapshot();
  EXPECT_EQ(snapshot.record_count(), 5u);
  ASSERT_TRUE((*pipeline)->Drain().ok());
  EXPECT_EQ(snapshot.record_count(), 5u);  // the cut is immutable
  EXPECT_EQ((*pipeline)->OpenSnapshot().record_count(), 7u);
  ASSERT_TRUE((*pipeline)->Close().ok());
}

// A store that never attached a domain (standalone, recovered, tests)
// exposes the same data through CurrentView under quiescence.
TEST(StoreSnapshotTest, CurrentViewOnDomainlessStoreReadsWriterState) {
  IngestWorkloadBuilder builder;
  ASSERT_TRUE(RandomDifferentialWorkload(&builder, 0x5A4B0006u).ok());
  const ProvenanceStore& reference = builder.reference_store();
  StoreReadView view = reference.CurrentView();
  EXPECT_EQ(view.record_count(), reference.record_count());
  for (ObjectId id : builder.tracked_objects()) {
    std::vector<const ProvenanceRecord*> via_view = view.ChainRecords(id);
    std::vector<uint64_t> via_store = reference.ChainOf(id);
    ASSERT_EQ(via_view.size(), via_store.size());
    for (size_t i = 0; i < via_view.size(); ++i) {
      EXPECT_EQ(EncodeRecord(*via_view[i]),
                EncodeRecord(reference.record(via_store[i])));
    }
  }
}

}  // namespace
}  // namespace provdb::provenance
