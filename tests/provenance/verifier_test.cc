#include "provenance/verifier.h"

#include <gtest/gtest.h>

#include "provenance/tracked_database.h"
#include "testing/test_pki.h"

namespace provdb::provenance {
namespace {

using provdb::testing::TestPki;
using storage::ObjectId;
using storage::Value;

class VerifierTest : public ::testing::Test {
 protected:
  const crypto::Participant& p1() { return TestPki::Instance().participant(0); }
  const crypto::Participant& p2() { return TestPki::Instance().participant(1); }

  VerificationReport Verify(const RecipientBundle& bundle) {
    ProvenanceVerifier verifier(&TestPki::Instance().registry());
    return verifier.Verify(bundle);
  }
};

TEST_F(VerifierTest, HonestLinearChainVerifies) {
  TrackedDatabase db;
  auto a = db.Insert(p1(), Value::Int(1));
  ASSERT_TRUE(db.Update(p2(), *a, Value::Int(2)).ok());
  auto bundle = db.ExportForRecipient(*a);
  ASSERT_TRUE(bundle.ok());
  VerificationReport report = Verify(*bundle);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.records_checked, 2u);
  EXPECT_EQ(report.signatures_verified, 2u);
}

TEST_F(VerifierTest, ReportRendersIssues) {
  TrackedDatabase db;
  auto a = db.Insert(p1(), Value::Int(1));
  auto bundle = db.ExportForRecipient(*a);
  RecipientBundle broken = *bundle;
  broken.records.clear();
  VerificationReport report = Verify(broken);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasIssue(IssueKind::kMissingRecords));
  EXPECT_NE(report.ToString().find("MissingRecords"), std::string::npos);
  EXPECT_FALSE(report.HasIssue(IssueKind::kBadSignature));
}

TEST_F(VerifierTest, EmptyBundleReportsMissingRecords) {
  RecipientBundle empty;
  empty.subject = 5;
  VerificationReport report = Verify(empty);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasIssue(IssueKind::kMissingRecords));
  EXPECT_TRUE(report.HasIssue(IssueKind::kSubjectMismatch));
}

TEST_F(VerifierTest, MalformedRecordsFlagged) {
  TrackedDatabase db;
  auto a = db.Insert(p1(), Value::Int(1));
  ASSERT_TRUE(db.Update(p1(), *a, Value::Int(2)).ok());
  auto bundle = db.ExportForRecipient(*a);

  // Insert with inputs.
  RecipientBundle broken = *bundle;
  broken.records[0].inputs.push_back(broken.records[0].output);
  EXPECT_TRUE(Verify(broken).HasIssue(IssueKind::kMalformedRecord));

  // Update with no inputs.
  broken = *bundle;
  for (ProvenanceRecord& rec : broken.records) {
    if (rec.op == OperationType::kUpdate) rec.inputs.clear();
  }
  EXPECT_TRUE(Verify(broken).HasIssue(IssueKind::kMalformedRecord));

  // Update whose input names a different object.
  broken = *bundle;
  for (ProvenanceRecord& rec : broken.records) {
    if (rec.op == OperationType::kUpdate) rec.inputs[0].object_id = 777;
  }
  EXPECT_TRUE(Verify(broken).HasIssue(IssueKind::kMalformedRecord));
}

TEST_F(VerifierTest, SeqDisciplineEnforced) {
  TrackedDatabase db;
  auto a = db.Insert(p1(), Value::Int(1));
  ASSERT_TRUE(db.Update(p1(), *a, Value::Int(2)).ok());
  ASSERT_TRUE(db.Update(p1(), *a, Value::Int(3)).ok());
  auto bundle = db.ExportForRecipient(*a);

  // Insert not at seq 0.
  RecipientBundle broken = *bundle;
  for (ProvenanceRecord& rec : broken.records) {
    rec.seq_id += 5;  // shift the whole chain
  }
  EXPECT_TRUE(Verify(broken).HasIssue(IssueKind::kSeqViolation));

  // Gap in updates.
  broken = *bundle;
  for (ProvenanceRecord& rec : broken.records) {
    if (rec.seq_id == 2) rec.seq_id = 9;
  }
  EXPECT_TRUE(Verify(broken).HasIssue(IssueKind::kSeqViolation));

  // A second insert mid-chain.
  broken = *bundle;
  for (ProvenanceRecord& rec : broken.records) {
    if (rec.seq_id == 1) {
      rec.op = OperationType::kInsert;
      rec.inputs.clear();
    }
  }
  EXPECT_TRUE(Verify(broken).HasIssue(IssueKind::kSeqViolation));
}

TEST_F(VerifierTest, AggregateWithUnsortedInputsFlagged) {
  TrackedDatabase db;
  auto x = db.Insert(p1(), Value::Int(1));
  auto y = db.Insert(p1(), Value::Int(2));
  auto agg = db.Aggregate(p1(), {*x, *y}, Value::Int(0));
  auto bundle = db.ExportForRecipient(*agg);
  RecipientBundle broken = *bundle;
  for (ProvenanceRecord& rec : broken.records) {
    if (rec.op == OperationType::kAggregate) {
      std::swap(rec.inputs[0], rec.inputs[1]);
    }
  }
  EXPECT_TRUE(Verify(broken).HasIssue(IssueKind::kMalformedRecord));
}

TEST_F(VerifierTest, AggregateSeqRuleEnforced) {
  TrackedDatabase db;
  auto x = db.Insert(p1(), Value::Int(1));
  auto agg = db.Aggregate(p1(), {*x}, Value::Int(0));
  auto bundle = db.ExportForRecipient(*agg);
  RecipientBundle broken = *bundle;
  for (ProvenanceRecord& rec : broken.records) {
    if (rec.op == OperationType::kAggregate) rec.seq_id = 7;
  }
  VerificationReport report = Verify(broken);
  EXPECT_TRUE(report.HasIssue(IssueKind::kSeqViolation));
}

TEST_F(VerifierTest, BootstrapChainsVerify) {
  // Chains that begin with an update (data predating collection) verify.
  TrackedDatabase db;
  ObjectId leaf = *db.bootstrap_tree().Insert(Value::Int(1));
  ASSERT_TRUE(db.Update(p1(), leaf, Value::Int(2)).ok());
  auto bundle = db.ExportForRecipient(leaf);
  ASSERT_TRUE(bundle.ok());
  EXPECT_TRUE(Verify(*bundle).ok());
}

TEST_F(VerifierTest, CompoundBundleWithInheritedRecordsVerifies) {
  TrackedDatabase db;
  auto root = db.Insert(p1(), Value::String("db"));
  auto table = db.Insert(p1(), Value::String("t"), *root);
  auto row = db.Insert(p2(), Value::Int(0), *table);
  auto cell = db.Insert(p2(), Value::Int(5), *row);
  ASSERT_TRUE(db.Update(p1(), *cell, Value::Int(6)).ok());
  ASSERT_TRUE(db.Delete(p1(), *cell).ok());

  auto bundle = db.ExportForRecipient(*root);
  ASSERT_TRUE(bundle.ok());
  VerificationReport report = Verify(*bundle);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(VerifierTest, VerifierReportsAllIssuesNotJustFirst) {
  TrackedDatabase db;
  auto a = db.Insert(p1(), Value::Int(1));
  ASSERT_TRUE(db.Update(p1(), *a, Value::Int(2)).ok());
  auto bundle = db.ExportForRecipient(*a);
  RecipientBundle broken = *bundle;
  // Two independent problems: tampered data AND a tampered checksum.
  ASSERT_TRUE(broken.data.TamperValue(*a, Value::Int(99)).ok());
  broken.records[0].checksum[5] ^= 0xFF;
  VerificationReport report = Verify(broken);
  EXPECT_TRUE(report.HasIssue(IssueKind::kDataHashMismatch));
  EXPECT_TRUE(report.HasIssue(IssueKind::kBadSignature));
  EXPECT_GE(report.issues.size(), 2u);
}

TEST_F(VerifierTest, IssueKindNamesAreStable) {
  EXPECT_EQ(IssueKindName(IssueKind::kDataHashMismatch), "DataHashMismatch");
  EXPECT_EQ(IssueKindName(IssueKind::kBadSignature), "BadSignature");
  EXPECT_EQ(IssueKindName(IssueKind::kUnknownParticipant),
            "UnknownParticipant");
  EXPECT_EQ(IssueKindName(IssueKind::kSnapshotMalformed),
            "SnapshotMalformed");
}

TEST_F(VerifierTest, CorruptSnapshotFlagged) {
  TrackedDatabase db;
  auto root = db.Insert(p1(), Value::String("db"));
  auto child = db.Insert(p1(), Value::Int(1), *root);
  (void)child;
  auto bundle = db.ExportForRecipient(*root);
  // Rebuild the snapshot with a dangling parent by deserializing a
  // corrupted form: simplest is to re-point the root and keep the child.
  RecipientBundle broken = *bundle;
  broken.data.TamperRootId(999);
  broken.data.TamperRootId(*root);  // root restored, but child parents now 999
  // The double-rename leaves children pointing at a non-existent id only
  // if the first rename moved them; verify the verifier reports either a
  // malformed snapshot or a hash mismatch rather than crashing.
  VerificationReport report = Verify(broken);
  (void)report;  // must not crash; outcome depends on structure
  SUCCEED();
}

TEST_F(VerifierTest, DagBundleRoundTripThroughWireVerifies) {
  TrackedDatabase db;
  auto a = db.Insert(p1(), Value::String("a"));
  auto b = db.Insert(p2(), Value::String("b"));
  ASSERT_TRUE(db.Update(p1(), *a, Value::String("a2")).ok());
  auto c = db.Aggregate(p2(), {*a, *b}, Value::String("c"));
  ASSERT_TRUE(db.Update(p2(), *a, Value::String("a3")).ok());
  auto d = db.Aggregate(p1(), {*a, *c}, Value::String("d"));

  auto bundle = db.ExportForRecipient(*d);
  ASSERT_TRUE(bundle.ok());
  auto wire = bundle->Serialize();
  auto received = RecipientBundle::Deserialize(wire);
  ASSERT_TRUE(received.ok());
  VerificationReport report = Verify(*received);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

}  // namespace
}  // namespace provdb::provenance
