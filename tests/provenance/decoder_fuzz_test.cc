// Decoder robustness: the wire parsers (records, snapshots, bundles,
// proofs, values, public keys) must never crash, hang, or over-allocate
// on arbitrary input — only return a clean error or a (harmless) value.
// Exercised with random byte strings and with bit-mutated valid
// encodings.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/rsa.h"
#include "provenance/bundle.h"
#include "provenance/merkle_proof.h"
#include "provenance/serialization.h"
#include "storage/value.h"

namespace provdb::provenance {
namespace {

using storage::Value;

// A valid record encoding to mutate.
Bytes ValidRecordBytes() {
  ProvenanceRecord rec;
  rec.seq_id = 3;
  rec.participant = 2;
  rec.op = OperationType::kAggregate;
  rec.inputs.push_back(
      ObjectState{1, crypto::Digest::FromBytes(Bytes(20, 0x11))});
  rec.inputs.push_back(
      ObjectState{2, crypto::Digest::FromBytes(Bytes(20, 0x22))});
  rec.output = ObjectState{5, crypto::Digest::FromBytes(Bytes(20, 0x33))};
  rec.checksum = Bytes(64, 0x44);
  rec.output_snapshot = Value::String("snap");
  rec.has_output_snapshot = true;
  return EncodeRecord(rec);
}

Bytes ValidBundleBytes() {
  storage::TreeStore tree;
  auto root = tree.Insert(Value::String("r")).value();
  tree.Insert(Value::Int(1), root).value();
  RecipientBundle bundle;
  bundle.subject = root;
  bundle.data = SubtreeSnapshot::Capture(tree, root).value();
  ProvenanceRecord rec;
  rec.output = ObjectState{root, crypto::Digest::FromBytes(Bytes(20, 1))};
  rec.checksum = Bytes(64, 2);
  bundle.records.push_back(rec);
  return bundle.Serialize();
}

class DecoderFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DecoderFuzzTest, RandomBytesNeverCrashDecoders) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 400; ++trial) {
    Bytes junk;
    rng.NextBytes(&junk, rng.NextBelow(300));
    // None of these may crash; results are simply ignored.
    DecodeRecord(junk).ok();
    SubtreeSnapshot::Deserialize(junk).ok();
    RecipientBundle::Deserialize(junk).ok();
    InclusionProof::Deserialize(junk).ok();
    Value::CanonicalDecode(junk, nullptr).ok();
    crypto::RsaPublicKey::Deserialize(junk).ok();
  }
  SUCCEED();
}

TEST_P(DecoderFuzzTest, MutatedRecordsEitherFailOrDecodeCleanly) {
  Rng rng(GetParam() + 1);
  Bytes valid = ValidRecordBytes();
  int decoded = 0, rejected = 0;
  for (int trial = 0; trial < 400; ++trial) {
    Bytes mutated = valid;
    // 1-3 random byte mutations.
    size_t n = 1 + rng.NextBelow(3);
    for (size_t i = 0; i < n; ++i) {
      mutated[rng.NextBelow(mutated.size())] =
          static_cast<uint8_t>(rng.NextBelow(256));
    }
    auto rec = DecodeRecord(mutated);
    if (rec.ok()) {
      ++decoded;
      // A successful decode must re-encode without crashing.
      EncodeRecord(*rec);
    } else {
      ++rejected;
    }
  }
  // Both outcomes occur across 400 trials; neither crashes.
  EXPECT_GT(decoded + rejected, 0);
}

TEST_P(DecoderFuzzTest, TruncatedBundlesAlwaysRejected) {
  Rng rng(GetParam() + 2);
  Bytes valid = ValidBundleBytes();
  for (int trial = 0; trial < 100; ++trial) {
    size_t len = rng.NextBelow(valid.size());  // strict prefix
    auto bundle =
        RecipientBundle::Deserialize(ByteView(valid.data(), len));
    EXPECT_FALSE(bundle.ok()) << "prefix " << len << " decoded";
  }
}

TEST_P(DecoderFuzzTest, RoundTripStabilityUnderReEncoding) {
  // decode(encode(x)) == x implies encode(decode(encode(x))) ==
  // encode(x): the encoding is a fixed point.
  Bytes valid = ValidRecordBytes();
  auto rec = DecodeRecord(valid);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(EncodeRecord(*rec), valid);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzzTest,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace provdb::provenance
