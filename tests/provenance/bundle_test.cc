#include "provenance/bundle.h"

#include <gtest/gtest.h>

#include "provenance/subtree_hasher.h"

namespace provdb::provenance {
namespace {

using storage::ObjectId;
using storage::TreeStore;
using storage::Value;

struct SmallTree {
  TreeStore tree;
  ObjectId root, row, c1, c2;

  SmallTree() {
    root = *tree.Insert(Value::String("r"));
    row = *tree.Insert(Value::Int(0), root);
    c1 = *tree.Insert(Value::Int(1), row);
    c2 = *tree.Insert(Value::Int(2), row);
  }
};

TEST(SubtreeSnapshotTest, CaptureCopiesSubtree) {
  SmallTree t;
  auto snap = SubtreeSnapshot::Capture(t.tree, t.root);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->root(), t.root);
  EXPECT_EQ(snap->nodes().size(), 4u);
  EXPECT_EQ(*snap->ValueOf(t.c1), Value::Int(1));
  EXPECT_FALSE(snap->ValueOf(999).ok());
}

TEST(SubtreeSnapshotTest, CaptureOfSubtreeExcludesSiblings) {
  SmallTree t;
  auto snap = SubtreeSnapshot::Capture(t.tree, t.row);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->nodes().size(), 3u);
  EXPECT_FALSE(snap->ValueOf(t.root).ok());
}

TEST(SubtreeSnapshotTest, CaptureMissingRootFails) {
  TreeStore tree;
  EXPECT_FALSE(SubtreeSnapshot::Capture(tree, 1).ok());
}

TEST(SubtreeSnapshotTest, HashMatchesLiveTree) {
  SmallTree t;
  SubtreeHasher hasher(&t.tree);
  for (ObjectId subject : {t.root, t.row, t.c1}) {
    auto snap = SubtreeSnapshot::Capture(t.tree, subject);
    ASSERT_TRUE(snap.ok());
    auto snap_hash = snap->Hash(crypto::HashAlgorithm::kSha1);
    ASSERT_TRUE(snap_hash.ok());
    EXPECT_EQ(*snap_hash, *hasher.HashSubtreeBasic(subject)) << subject;
  }
}

TEST(SubtreeSnapshotTest, HashIndependentOfLaterTreeMutation) {
  SmallTree t;
  auto snap = SubtreeSnapshot::Capture(t.tree, t.root);
  auto before = snap->Hash(crypto::HashAlgorithm::kSha1);
  ASSERT_TRUE(t.tree.Update(t.c1, Value::Int(999)).ok());
  auto after = snap->Hash(crypto::HashAlgorithm::kSha1);
  EXPECT_EQ(*before, *after);
}

TEST(SubtreeSnapshotTest, TamperValueChangesHash) {
  SmallTree t;
  auto snap = SubtreeSnapshot::Capture(t.tree, t.root);
  auto before = snap->Hash(crypto::HashAlgorithm::kSha1);
  ASSERT_TRUE(snap->TamperValue(t.c1, Value::Int(666)).ok());
  auto after = snap->Hash(crypto::HashAlgorithm::kSha1);
  EXPECT_NE(*before, *after);
  EXPECT_FALSE(snap->TamperValue(999, Value::Int(0)).ok());
}

TEST(SubtreeSnapshotTest, TamperRootIdRewritesStructure) {
  SmallTree t;
  auto snap = SubtreeSnapshot::Capture(t.tree, t.root);
  snap->TamperRootId(777);
  EXPECT_EQ(snap->root(), 777u);
  // Still structurally valid (children re-pointed), so it hashes — to a
  // different digest than before.
  auto h = snap->Hash(crypto::HashAlgorithm::kSha1);
  ASSERT_TRUE(h.ok());
}

TEST(SubtreeSnapshotTest, SerializeRoundTrip) {
  SmallTree t;
  auto snap = SubtreeSnapshot::Capture(t.tree, t.root);
  Bytes wire = snap->Serialize();
  auto back = SubtreeSnapshot::Deserialize(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->root(), snap->root());
  EXPECT_EQ(back->nodes().size(), snap->nodes().size());
  EXPECT_EQ(*back->Hash(crypto::HashAlgorithm::kSha1),
            *snap->Hash(crypto::HashAlgorithm::kSha1));
}

TEST(SubtreeSnapshotTest, MalformedSnapshotsRejectedByHash) {
  // Dangling parent.
  SubtreeSnapshot snap;
  {
    SmallTree t;
    snap = *SubtreeSnapshot::Capture(t.tree, t.row);
  }
  Bytes wire = snap.Serialize();
  auto parsed = SubtreeSnapshot::Deserialize(wire);
  ASSERT_TRUE(parsed.ok());

  // Empty snapshot has no hash.
  SubtreeSnapshot empty;
  EXPECT_FALSE(empty.Hash(crypto::HashAlgorithm::kSha1).ok());
}

TEST(SubtreeSnapshotTest, DeserializeGarbageFails) {
  Bytes garbage = {0xFF, 0x00, 0x12};
  EXPECT_FALSE(SubtreeSnapshot::Deserialize(garbage).ok());
}

TEST(RecipientBundleTest, SerializeRoundTripWithRecords) {
  SmallTree t;
  RecipientBundle bundle;
  bundle.subject = t.root;
  bundle.data = *SubtreeSnapshot::Capture(t.tree, t.root);

  ProvenanceRecord rec;
  rec.seq_id = 0;
  rec.participant = 2;
  rec.op = OperationType::kInsert;
  rec.output = ObjectState{t.root, crypto::Digest::FromBytes(Bytes(20, 1))};
  rec.checksum = Bytes(64, 0xEE);
  bundle.records.push_back(rec);

  Bytes wire = bundle.Serialize();
  auto back = RecipientBundle::Deserialize(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->subject, t.root);
  ASSERT_EQ(back->records.size(), 1u);
  EXPECT_EQ(back->records[0].checksum, rec.checksum);
  EXPECT_EQ(*back->data.Hash(crypto::HashAlgorithm::kSha1),
            *bundle.data.Hash(crypto::HashAlgorithm::kSha1));
}

TEST(RecipientBundleTest, TruncatedWireFails) {
  SmallTree t;
  RecipientBundle bundle;
  bundle.subject = t.root;
  bundle.data = *SubtreeSnapshot::Capture(t.tree, t.root);
  Bytes wire = bundle.Serialize();
  for (size_t len = 1; len + 1 < wire.size(); len += 3) {
    EXPECT_FALSE(
        RecipientBundle::Deserialize(ByteView(wire.data(), len)).ok())
        << len;
  }
}

}  // namespace
}  // namespace provdb::provenance
