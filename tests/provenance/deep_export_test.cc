// Fine-grained (deep) export: recipients of a compound object can request
// the own chains of every contained object, so cell-level attribution —
// "who amended this cell" — ships with the data and verifies.

#include <gtest/gtest.h>

#include "provenance/tracked_database.h"
#include "provenance/verifier.h"
#include "testing/test_pki.h"

namespace provdb::provenance {
namespace {

using provdb::testing::TestPki;
using storage::ObjectId;
using storage::Value;

class DeepExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = *db_.Insert(p(1), Value::String("db"));
    row_ = *db_.Insert(p(1), Value::Int(0), root_);
    cell_ = *db_.Insert(p(2), Value::Int(5), row_);
    // The amendment whose attribution shallow bundles lose at cell level.
    ASSERT_TRUE(db_.Update(p(3), cell_, Value::Int(6)).ok());
  }

  const crypto::Participant& p(int i) {
    return TestPki::Instance().participant(i - 1);
  }

  VerificationReport Verify(const RecipientBundle& bundle) {
    ProvenanceVerifier verifier(&TestPki::Instance().registry());
    return verifier.Verify(bundle);
  }

  size_t CountRecordsFor(const RecipientBundle& bundle, ObjectId object) {
    size_t count = 0;
    for (const auto& rec : bundle.records) {
      if (rec.output.object_id == object) ++count;
    }
    return count;
  }

  TrackedDatabase db_;
  ObjectId root_, row_, cell_;
};

TEST_F(DeepExportTest, ShallowBundleOmitsDescendantChains) {
  auto shallow = db_.ExportForRecipient(root_);
  ASSERT_TRUE(shallow.ok());
  EXPECT_EQ(CountRecordsFor(*shallow, cell_), 0u);
  EXPECT_TRUE(Verify(*shallow).ok());
}

TEST_F(DeepExportTest, DeepBundleIncludesDescendantChainsAndVerifies) {
  auto deep = db_.ExportForRecipientDeep(root_);
  ASSERT_TRUE(deep.ok());
  // The cell's chain (insert by p2 + update by p3) ships too.
  EXPECT_EQ(CountRecordsFor(*deep, cell_), 2u);
  EXPECT_EQ(CountRecordsFor(*deep, row_), 3u);  // insert + 2 inherited
  EXPECT_GT(deep->records.size(),
            db_.ExportForRecipient(root_)->records.size());

  VerificationReport report = Verify(*deep);
  EXPECT_TRUE(report.ok()) << report.ToString();

  // The recipient can now pin the amendment to its true author.
  bool p3_updated_cell = false;
  for (const auto& rec : deep->records) {
    if (rec.output.object_id == cell_ && rec.op == OperationType::kUpdate &&
        rec.participant == p(3).id() && !rec.inherited) {
      p3_updated_cell = true;
    }
  }
  EXPECT_TRUE(p3_updated_cell);
}

TEST_F(DeepExportTest, RemovingDescendantRecordFromDeepBundleDetected) {
  auto deep = db_.ExportForRecipientDeep(root_);
  ASSERT_TRUE(deep.ok());
  // Scrub the cell's update record (the attribution an attacker wants
  // gone). In a deep bundle, the cell's own chain breaks check 1? No —
  // check 1 binds only the subject; the *chain* checks catch it: the
  // remaining cell insert is no longer the chain tail matching...
  // Actually the chain (insert alone) is internally consistent, so the
  // deep bundle alone cannot anchor the cell's tail — its protection
  // comes from the inherited ancestor records. Verify the removal leaves
  // the bundle either detected OR harmless-but-inconsistent with the
  // shipped data: the cell value 6 has no record producing it.
  RecipientBundle tampered = *deep;
  for (size_t i = 0; i < tampered.records.size(); ++i) {
    const auto& rec = tampered.records[i];
    if (rec.output.object_id == cell_ && rec.op == OperationType::kUpdate) {
      tampered.records.erase(tampered.records.begin() + i);
      break;
    }
  }
  // The subject-level records still verify, so the verifier's bundle
  // checks pass — demonstrating precisely why inherited records exist:
  // the root's chain still pins the post-amendment state.
  VerificationReport report = Verify(tampered);
  // Root chain intact -> data binding holds; cell truncation alone is
  // outside the shallow guarantees (R2 covers records *with a
  // successor*). Document the behavior:
  EXPECT_TRUE(report.ok());
  // But the inconsistency is visible to a fine-grained consumer: the
  // shipped cell value does not hash to the cell chain's tail state.
  crypto::Digest shipped_cell_hash =
      HashTreeNode(crypto::HashAlgorithm::kSha1, cell_,
                   *tampered.data.ValueOf(cell_), {});
  const ProvenanceRecord* cell_tail = nullptr;
  for (const auto& rec : tampered.records) {
    if (rec.output.object_id == cell_) cell_tail = &rec;
  }
  ASSERT_NE(cell_tail, nullptr);
  EXPECT_NE(cell_tail->output.state_hash, shipped_cell_hash);
}

TEST_F(DeepExportTest, DeepExportOfLeafEqualsShallow) {
  auto shallow = db_.ExportForRecipient(cell_);
  auto deep = db_.ExportForRecipientDeep(cell_);
  ASSERT_TRUE(shallow.ok());
  ASSERT_TRUE(deep.ok());
  EXPECT_EQ(shallow->records.size(), deep->records.size());
}

TEST_F(DeepExportTest, DeepExportWithAggregationFollowsBothDimensions) {
  auto agg = db_.Aggregate(p(2), {root_}, Value::String("agg"));
  ASSERT_TRUE(agg.ok());
  auto deep = db_.ExportForRecipientDeep(*agg);
  ASSERT_TRUE(deep.ok());
  // Depth dimension: the copies inside the aggregate (no chains yet) are
  // silently skipped; DAG dimension: the source root's history arrives
  // via the aggregation edge.
  EXPECT_GT(CountRecordsFor(*deep, root_), 0u);
  EXPECT_TRUE(Verify(*deep).ok());
}

}  // namespace
}  // namespace provdb::provenance
