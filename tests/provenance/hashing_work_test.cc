// Deterministic work-asymptotics tests: the paper's Basic vs Economical
// cost model (§4.3) expressed in exact node-hash counts, independent of
// wall-clock noise. These pin the complexity claims behind Figure 7.

#include <gtest/gtest.h>

#include "provenance/tracked_database.h"
#include "testing/test_pki.h"
#include "workload/synthetic.h"

namespace provdb::provenance {
namespace {

using provdb::testing::TestPki;
using storage::ObjectId;

constexpr int kRows = 50;
constexpr int kAttrs = 8;
// Nodes of the depth-4 tree: root + table + rows + cells.
constexpr uint64_t kNodes = 1 + 1 + kRows + kRows * kAttrs;

class HashingWorkTest : public ::testing::TestWithParam<HashingMode> {
 protected:
  void SetUp() override {
    TrackedDatabaseOptions options;
    options.hashing_mode = GetParam();
    db_ = std::make_unique<TrackedDatabase>(options);
    Rng rng(55);
    auto layout = workload::BuildSyntheticDatabase(
        &db_->bootstrap_tree(), {{kAttrs, kRows}}, &rng);
    ASSERT_TRUE(layout.ok());
    layout_ = *layout;
  }

  const crypto::Participant& p() { return TestPki::Instance().participant(0); }

  ObjectId Cell(size_t row, size_t col) {
    return workload::CellIdOf(db_->tree(), layout_.tables[0].rows[row], col)
        .value();
  }

  std::unique_ptr<TrackedDatabase> db_;
  workload::SyntheticLayout layout_;
};

TEST_P(HashingWorkTest, FirstUpdateWorksColdThenWarm) {
  // First tracked update: both modes must compute the whole tree once for
  // the input state. Basic additionally re-walks for the output; the
  // economical cache then turns subsequent updates into path-work.
  ASSERT_TRUE(db_->Update(p(), Cell(0, 0), storage::Value::Int(1)).ok());
  uint64_t first = db_->last_op_metrics().nodes_hashed;

  ASSERT_TRUE(db_->Update(p(), Cell(1, 1), storage::Value::Int(2)).ok());
  uint64_t second = db_->last_op_metrics().nodes_hashed;

  if (GetParam() == HashingMode::kBasic) {
    // Exactly two full walks per update, every time.
    EXPECT_EQ(first, 2 * kNodes);
    EXPECT_EQ(second, 2 * kNodes);
  } else {
    // Cold: one full input walk + the dirty output path
    // (cell + row + table + root = 4).
    EXPECT_EQ(first, kNodes + 4);
    // Warm: input states are cache reads; only the dirty path re-hashes.
    EXPECT_EQ(second, 4u);
  }
}

TEST_P(HashingWorkTest, ComplexOpWorkMatchesSetupAModel) {
  // Warm up (prime caches / establish steady state).
  ASSERT_TRUE(db_->Update(p(), Cell(0, 0), storage::Value::Int(9)).ok());
  db_->ResetMetrics();

  // Complex op updating one cell in each of 10 rows.
  ASSERT_TRUE(db_->BeginComplexOperation(p()).ok());
  for (size_t r = 0; r < 10; ++r) {
    ASSERT_TRUE(
        db_->Update(p(), Cell(r, 2), storage::Value::Int(100 + r)).ok());
  }
  ASSERT_TRUE(db_->EndComplexOperation().ok());
  uint64_t work = db_->last_op_metrics().nodes_hashed;

  if (GetParam() == HashingMode::kBasic) {
    // One input walk at first touch + one output walk at End.
    EXPECT_EQ(work, 2 * kNodes);
  } else {
    // Output recompute: 10 cells + 10 rows + table + root.
    EXPECT_EQ(work, 10 + 10 + 1 + 1u);
  }
}

TEST_P(HashingWorkTest, DeleteWorkIsAncestorBound) {
  ASSERT_TRUE(db_->Update(p(), Cell(0, 0), storage::Value::Int(9)).ok());
  db_->ResetMetrics();

  ASSERT_TRUE(db_->Delete(p(), Cell(5, 5)).ok());
  uint64_t work = db_->last_op_metrics().nodes_hashed;
  if (GetParam() == HashingMode::kBasic) {
    // Input walk (kNodes) + output walk (kNodes - deleted node).
    EXPECT_EQ(work, kNodes + kNodes - 1);
  } else {
    // Only the ancestors re-hash: row + table + root.
    EXPECT_EQ(work, 3u);
  }
}

TEST_P(HashingWorkTest, ChecksumCountIndependentOfHashingMode) {
  ASSERT_TRUE(db_->BeginComplexOperation(p()).ok());
  for (size_t r = 0; r < 5; ++r) {
    ASSERT_TRUE(db_->Update(p(), Cell(r, 0), storage::Value::Int(7)).ok());
  }
  ASSERT_TRUE(db_->EndComplexOperation().ok());
  // 5 cells + 5 rows + table + root, regardless of mode.
  EXPECT_EQ(db_->last_op_metrics().checksums, 12u);
}

INSTANTIATE_TEST_SUITE_P(Modes, HashingWorkTest,
                         ::testing::Values(HashingMode::kBasic,
                                           HashingMode::kEconomical),
                         [](const auto& info) {
                           return std::string(HashingModeName(info.param));
                         });

}  // namespace
}  // namespace provdb::provenance
