#include "provenance/tracked_database.h"

#include <gtest/gtest.h>

#include "testing/test_pki.h"

namespace provdb::provenance {
namespace {

using provdb::testing::TestPki;
using storage::ObjectId;
using storage::Value;

class TrackedDatabaseTest : public ::testing::Test {
 protected:
  const crypto::Participant& p1() { return TestPki::Instance().participant(0); }
  const crypto::Participant& p2() { return TestPki::Instance().participant(1); }
};

TEST_F(TrackedDatabaseTest, InsertEmitsSeqZeroInsertRecord) {
  TrackedDatabase db;
  auto a = db.Insert(p1(), Value::Int(7));
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(db.provenance().record_count(), 1u);
  const ProvenanceRecord& rec = db.provenance().record(0);
  EXPECT_EQ(rec.seq_id, 0u);
  EXPECT_EQ(rec.op, OperationType::kInsert);
  EXPECT_EQ(rec.participant, p1().id());
  EXPECT_TRUE(rec.inputs.empty());
  EXPECT_EQ(rec.output.object_id, *a);
  EXPECT_FALSE(rec.inherited);
  EXPECT_EQ(rec.checksum.size(), 64u);  // RSA-512 test keys
}

TEST_F(TrackedDatabaseTest, UpdateChainsSeqIds) {
  TrackedDatabase db;
  auto a = db.Insert(p1(), Value::Int(1));
  ASSERT_TRUE(db.Update(p2(), *a, Value::Int(2)).ok());
  ASSERT_TRUE(db.Update(p1(), *a, Value::Int(3)).ok());

  std::vector<uint64_t> chain = db.provenance().ChainOf(*a);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(db.provenance().record(chain[0]).seq_id, 0u);
  EXPECT_EQ(db.provenance().record(chain[1]).seq_id, 1u);
  EXPECT_EQ(db.provenance().record(chain[2]).seq_id, 2u);

  // Chain linkage: each update's input hash is the previous output hash.
  const ProvenanceRecord& u1 = db.provenance().record(chain[1]);
  const ProvenanceRecord& u2 = db.provenance().record(chain[2]);
  EXPECT_EQ(u1.inputs[0].state_hash,
            db.provenance().record(chain[0]).output.state_hash);
  EXPECT_EQ(u2.inputs[0].state_hash, u1.output.state_hash);
}

TEST_F(TrackedDatabaseTest, UpdateOfLeafEmitsInheritedAncestorRecords) {
  TrackedDatabase db;
  auto root = db.Insert(p1(), Value::String("db"));
  auto table = db.Insert(p1(), Value::String("t"), *root);
  auto row = db.Insert(p1(), Value::Int(0), *table);
  auto cell = db.Insert(p1(), Value::Int(5), *row);

  uint64_t before = db.provenance().record_count();
  ASSERT_TRUE(db.Update(p2(), *cell, Value::Int(6)).ok());
  EXPECT_EQ(db.provenance().record_count() - before, 4u);  // cell + 3

  // Cell record is actual; the rest are inherited updates by the same
  // participant.
  auto cell_latest = db.provenance().LatestFor(*cell);
  EXPECT_FALSE((*cell_latest)->inherited);
  for (ObjectId anc : {*row, *table, *root}) {
    auto latest = db.provenance().LatestFor(anc);
    ASSERT_TRUE(latest.ok());
    EXPECT_TRUE((*latest)->inherited);
    EXPECT_EQ((*latest)->op, OperationType::kUpdate);
    EXPECT_EQ((*latest)->participant, p2().id());
  }
}

TEST_F(TrackedDatabaseTest, InsertUnderParentInheritsUpward) {
  TrackedDatabase db;
  auto root = db.Insert(p1(), Value::String("db"));
  EXPECT_EQ(db.last_op_metrics().checksums, 1u);
  auto table = db.Insert(p1(), Value::String("t"), *root);
  EXPECT_EQ(db.last_op_metrics().checksums, 2u);  // insert + root inherit
  auto row = db.Insert(p1(), Value::Int(0), *table);
  EXPECT_EQ(db.last_op_metrics().checksums, 3u);
  (void)row;
}

TEST_F(TrackedDatabaseTest, DeleteEmitsOnlyInheritedRecords) {
  TrackedDatabase db;
  auto root = db.Insert(p1(), Value::String("db"));
  auto leaf = db.Insert(p1(), Value::Int(1), *root);
  uint64_t before = db.provenance().record_count();
  ASSERT_TRUE(db.Delete(p2(), *leaf).ok());
  // Only the root's inherited record; the deleted object gets none (§5.2:
  // x checksums for a delete, x+1 for insert/update).
  EXPECT_EQ(db.provenance().record_count() - before, 1u);
  EXPECT_FALSE(db.tree().Contains(*leaf));
}

TEST_F(TrackedDatabaseTest, DeleteOfRootLeafEmitsNothing) {
  TrackedDatabase db;
  auto solo = db.Insert(p1(), Value::Int(1));
  uint64_t before = db.provenance().record_count();
  ASSERT_TRUE(db.Delete(p1(), *solo).ok());
  EXPECT_EQ(db.provenance().record_count(), before);
}

TEST_F(TrackedDatabaseTest, DeleteInteriorRejected) {
  TrackedDatabase db;
  auto root = db.Insert(p1(), Value::String("db"));
  db.Insert(p1(), Value::Int(1), *root).value();
  EXPECT_FALSE(db.Delete(p1(), *root).ok());
}

TEST_F(TrackedDatabaseTest, AggregateSeqIsOnePlusMaxInputSeq) {
  TrackedDatabase db;
  auto a = db.Insert(p1(), Value::Int(1));       // seq 0
  auto b = db.Insert(p1(), Value::Int(2));       // seq 0
  ASSERT_TRUE(db.Update(p1(), *a, Value::Int(3)).ok());  // a at seq 1
  ASSERT_TRUE(db.Update(p1(), *a, Value::Int(4)).ok());  // a at seq 2

  auto c = db.Aggregate(p2(), {*a, *b}, Value::String("agg"));
  ASSERT_TRUE(c.ok());
  auto rec = db.provenance().LatestFor(*c);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ((*rec)->seq_id, 3u);  // 1 + max(2, 0)
  EXPECT_EQ((*rec)->op, OperationType::kAggregate);
  ASSERT_EQ((*rec)->inputs.size(), 2u);
  // Inputs sorted by object id.
  EXPECT_LT((*rec)->inputs[0].object_id, (*rec)->inputs[1].object_id);
}

TEST_F(TrackedDatabaseTest, AggregateRecordsCurrentInputStates) {
  TrackedDatabase db;
  auto a = db.Insert(p1(), Value::Int(1));
  auto b = db.Insert(p1(), Value::Int(2));
  crypto::Digest a_hash = *db.CurrentHash(*a);
  auto c = db.Aggregate(p2(), {*a, *b}, Value::String("agg"));
  ASSERT_TRUE(c.ok());
  auto rec = db.provenance().LatestFor(*c);
  EXPECT_EQ((*rec)->inputs[0].state_hash, a_hash);
  // Output hash matches the live aggregate subtree.
  EXPECT_EQ((*rec)->output.state_hash, *db.CurrentHash(*c));
}

TEST_F(TrackedDatabaseTest, AggregateDeduplicatesInputs) {
  TrackedDatabase db;
  auto a = db.Insert(p1(), Value::Int(1));
  auto c = db.Aggregate(p2(), {*a, *a, *a}, Value::String("agg"));
  ASSERT_TRUE(c.ok());
  auto rec = db.provenance().LatestFor(*c);
  EXPECT_EQ((*rec)->inputs.size(), 1u);
}

TEST_F(TrackedDatabaseTest, UpdatesAfterAggregationChainFromAggregate) {
  TrackedDatabase db;
  auto a = db.Insert(p1(), Value::Int(1));
  auto c = db.Aggregate(p2(), {*a}, Value::String("agg"));
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(db.Update(p1(), *c, Value::String("agg2")).ok());
  std::vector<uint64_t> chain = db.provenance().ChainOf(*c);
  ASSERT_EQ(chain.size(), 2u);
  const ProvenanceRecord& agg = db.provenance().record(chain[0]);
  const ProvenanceRecord& upd = db.provenance().record(chain[1]);
  EXPECT_EQ(upd.seq_id, agg.seq_id + 1);
  EXPECT_EQ(upd.inputs[0].state_hash, agg.output.state_hash);
}

TEST_F(TrackedDatabaseTest, BootstrapDataStartsChainsAtUpdate) {
  TrackedDatabase db;
  // Load initial data untracked (the experiment pattern, §5.1).
  storage::TreeStore& tree = db.bootstrap_tree();
  ObjectId root = *tree.Insert(Value::String("db"));
  ObjectId leaf = *tree.Insert(Value::Int(1), root);
  EXPECT_EQ(db.provenance().record_count(), 0u);

  ASSERT_TRUE(db.Update(p1(), leaf, Value::Int(2)).ok());
  std::vector<uint64_t> chain = db.provenance().ChainOf(leaf);
  ASSERT_EQ(chain.size(), 1u);
  const ProvenanceRecord& rec = db.provenance().record(chain[0]);
  EXPECT_EQ(rec.seq_id, 0u);
  EXPECT_EQ(rec.op, OperationType::kUpdate);
}

TEST_F(TrackedDatabaseTest, MetricsAccumulateAcrossOperations) {
  TrackedDatabase db;
  db.Insert(p1(), Value::Int(1)).value();
  OperationMetrics first = db.last_op_metrics();
  EXPECT_EQ(first.checksums, 1u);
  EXPECT_GT(first.sign_seconds, 0.0);
  EXPECT_GT(first.nodes_hashed, 0u);

  db.Insert(p1(), Value::Int(2)).value();
  EXPECT_EQ(db.cumulative_metrics().checksums, 2u);
  db.ResetMetrics();
  EXPECT_EQ(db.cumulative_metrics().checksums, 0u);
}

TEST_F(TrackedDatabaseTest, ValueSnapshotsStoredWhenEnabled) {
  TrackedDatabaseOptions opts;
  opts.store_value_snapshots = true;
  TrackedDatabase db(opts);
  auto a = db.Insert(p1(), Value::Int(7));
  const ProvenanceRecord& rec = db.provenance().record(0);
  ASSERT_TRUE(rec.has_output_snapshot);
  EXPECT_EQ(rec.output_snapshot, Value::Int(7));
  (void)a;
}

TEST_F(TrackedDatabaseTest, OperationsOnMissingObjectsFail) {
  TrackedDatabase db;
  EXPECT_FALSE(db.Update(p1(), 42, Value::Int(1)).ok());
  EXPECT_FALSE(db.Delete(p1(), 42).ok());
  EXPECT_FALSE(db.Aggregate(p1(), {42}, Value::Int(0)).ok());
  EXPECT_FALSE(db.Aggregate(p1(), {}, Value::Int(0)).ok());
  EXPECT_FALSE(db.Insert(p1(), Value::Int(1), 42).ok());
  EXPECT_EQ(db.provenance().record_count(), 0u);
}

// ---------------------------------------------------------------------
// Complex operations

TEST_F(TrackedDatabaseTest, ComplexOpLifecycleEnforced) {
  TrackedDatabase db;
  EXPECT_FALSE(db.EndComplexOperation().ok());  // none in progress
  ASSERT_TRUE(db.BeginComplexOperation(p1()).ok());
  EXPECT_TRUE(db.in_complex_operation());
  EXPECT_FALSE(db.BeginComplexOperation(p1()).ok());  // nested
  EXPECT_FALSE(db.BeginComplexOperation(p2()).ok());
  ASSERT_TRUE(db.EndComplexOperation().ok());
  EXPECT_FALSE(db.in_complex_operation());
}

TEST_F(TrackedDatabaseTest, ComplexOpRejectsOtherParticipants) {
  TrackedDatabase db;
  auto a = db.Insert(p1(), Value::Int(1));
  ASSERT_TRUE(db.BeginComplexOperation(p1()).ok());
  EXPECT_FALSE(db.Update(p2(), *a, Value::Int(2)).ok());
  EXPECT_TRUE(db.Update(p1(), *a, Value::Int(3)).ok());
  ASSERT_TRUE(db.EndComplexOperation().ok());
}

TEST_F(TrackedDatabaseTest, ComplexOpAggregateRejected) {
  TrackedDatabase db;
  auto a = db.Insert(p1(), Value::Int(1));
  ASSERT_TRUE(db.BeginComplexOperation(p1()).ok());
  EXPECT_FALSE(db.Aggregate(p1(), {*a}, Value::Int(0)).ok());
  ASSERT_TRUE(db.EndComplexOperation().ok());
}

TEST_F(TrackedDatabaseTest, ComplexOpBatchesBeforeAfterStates) {
  TrackedDatabase db;
  auto root = db.Insert(p1(), Value::String("db"));
  auto cell = db.Insert(p1(), Value::Int(1), *root);

  crypto::Digest before_hash = *db.CurrentHash(*cell);
  ASSERT_TRUE(db.BeginComplexOperation(p2()).ok());
  ASSERT_TRUE(db.Update(p2(), *cell, Value::Int(2)).ok());
  ASSERT_TRUE(db.Update(p2(), *cell, Value::Int(3)).ok());
  ASSERT_TRUE(db.Update(p2(), *cell, Value::Int(4)).ok());
  ASSERT_TRUE(db.EndComplexOperation().ok());

  // One record for the cell covering 1 -> 4 directly, plus the root's.
  EXPECT_EQ(db.last_op_metrics().checksums, 2u);
  auto latest = db.provenance().LatestFor(*cell);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ((*latest)->inputs[0].state_hash, before_hash);
  EXPECT_EQ((*latest)->output.state_hash, *db.CurrentHash(*cell));
}

TEST_F(TrackedDatabaseTest, ComplexOpInsertThenDeleteLeavesNoRecord) {
  TrackedDatabase db;
  auto root = db.Insert(p1(), Value::String("db"));
  uint64_t before = db.provenance().record_count();

  ASSERT_TRUE(db.BeginComplexOperation(p1()).ok());
  auto temp = db.Insert(p1(), Value::Int(9), *root);
  ASSERT_TRUE(temp.ok());
  ASSERT_TRUE(db.Delete(p1(), *temp).ok());
  ASSERT_TRUE(db.EndComplexOperation().ok());

  // Only the root gets a record (its subtree was touched); the transient
  // object vanishes without provenance.
  EXPECT_EQ(db.provenance().record_count() - before, 1u);
  EXPECT_TRUE(db.provenance().ChainOf(*temp).empty());
}

TEST_F(TrackedDatabaseTest, ComplexOpInsertedObjectsGetInsertRecords) {
  TrackedDatabase db;
  auto root = db.Insert(p1(), Value::String("db"));
  ASSERT_TRUE(db.BeginComplexOperation(p2()).ok());
  auto row = db.Insert(p2(), Value::Int(0), *root);
  auto cell = db.Insert(p2(), Value::Int(1), *row);
  ASSERT_TRUE(db.EndComplexOperation().ok());

  auto row_rec = db.provenance().LatestFor(*row);
  auto cell_rec = db.provenance().LatestFor(*cell);
  ASSERT_TRUE(row_rec.ok());
  ASSERT_TRUE(cell_rec.ok());
  EXPECT_EQ((*row_rec)->op, OperationType::kInsert);
  EXPECT_EQ((*cell_rec)->op, OperationType::kInsert);
  EXPECT_EQ((*row_rec)->seq_id, 0u);
  // The insert records carry the *end-of-operation* state (the row's hash
  // includes its cell).
  EXPECT_EQ((*row_rec)->output.state_hash, *db.CurrentHash(*row));
}

TEST_F(TrackedDatabaseTest, ComplexOpDeleteErasesChainState) {
  TrackedDatabase db;
  auto root = db.Insert(p1(), Value::String("db"));
  auto leaf = db.Insert(p1(), Value::Int(1), *root);
  ASSERT_TRUE(db.BeginComplexOperation(p1()).ok());
  ASSERT_TRUE(db.Delete(p1(), *leaf).ok());
  ASSERT_TRUE(db.EndComplexOperation().ok());
  // Reusing the id is impossible (ids are never reused), and the deleted
  // object's chain is gone.
  EXPECT_FALSE(db.tree().Contains(*leaf));
}

TEST_F(TrackedDatabaseTest, ComplexOpSeqContinuesExistingChains) {
  TrackedDatabase db;
  auto root = db.Insert(p1(), Value::String("db"));
  auto cell = db.Insert(p1(), Value::Int(1), *root);  // cell seq 0
  ASSERT_TRUE(db.Update(p1(), *cell, Value::Int(2)).ok());  // seq 1

  ASSERT_TRUE(db.BeginComplexOperation(p1()).ok());
  ASSERT_TRUE(db.Update(p1(), *cell, Value::Int(3)).ok());
  ASSERT_TRUE(db.EndComplexOperation().ok());

  auto latest = db.provenance().LatestFor(*cell);
  EXPECT_EQ((*latest)->seq_id, 2u);
}

TEST_F(TrackedDatabaseTest, ComplexOpDirectVsInheritedFlag) {
  TrackedDatabase db;
  auto root = db.Insert(p1(), Value::String("db"));
  auto cell = db.Insert(p1(), Value::Int(1), *root);
  ASSERT_TRUE(db.BeginComplexOperation(p1()).ok());
  ASSERT_TRUE(db.Update(p1(), *cell, Value::Int(2)).ok());
  ASSERT_TRUE(db.EndComplexOperation().ok());
  EXPECT_FALSE((*db.provenance().LatestFor(*cell))->inherited);
  EXPECT_TRUE((*db.provenance().LatestFor(*root))->inherited);
}

TEST_F(TrackedDatabaseTest, ExportDuringComplexOpRejected) {
  TrackedDatabase db;
  auto a = db.Insert(p1(), Value::Int(1));
  ASSERT_TRUE(db.BeginComplexOperation(p1()).ok());
  EXPECT_FALSE(db.ExportForRecipient(*a).ok());
  ASSERT_TRUE(db.EndComplexOperation().ok());
  EXPECT_TRUE(db.ExportForRecipient(*a).ok());
}

TEST_F(TrackedDatabaseTest, BasicModeMatchesEconomicalRecordCounts) {
  for (HashingMode mode : {HashingMode::kBasic, HashingMode::kEconomical}) {
    TrackedDatabaseOptions opts;
    opts.hashing_mode = mode;
    TrackedDatabase db(opts);
    auto root = db.Insert(p1(), Value::String("db"));
    auto table = db.Insert(p1(), Value::String("t"), *root);
    auto row = db.Insert(p1(), Value::Int(0), *table);
    auto cell = db.Insert(p1(), Value::Int(1), *row);
    ASSERT_TRUE(db.Update(p1(), *cell, Value::Int(2)).ok());
    ASSERT_TRUE(db.Delete(p1(), *cell).ok());
    // 1 + 2 + 3 + 4 inserts, 4 update, 3 delete records.
    EXPECT_EQ(db.provenance().record_count(), 17u)
        << HashingModeName(mode);
  }
}

}  // namespace
}  // namespace provdb::provenance
