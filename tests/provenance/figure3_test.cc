// Reproduces the paper's worked example: Figure 2's non-linear provenance
// DAG and Figure 3's checksum table (C1..C7). Asserts the exact seqIDs,
// participants, chain structure, and — by recomputing each checksum
// payload and verifying the stored RSA signature against it — that every
// checksum was signed over exactly the fields Figure 3 specifies.

#include <gtest/gtest.h>

#include "provenance/checksum.h"
#include "provenance/tracked_database.h"
#include "provenance/verifier.h"
#include "testing/test_pki.h"

namespace provdb::provenance {
namespace {

using provdb::testing::TestPki;
using storage::ObjectId;
using storage::Value;

class Figure3Test : public ::testing::Test {
 protected:
  // Figure 2's history, executed so each aggregation sees the input
  // versions the figure uses (the partial order is exactly the figure's):
  //   C1: p2 inserts A = a1              (A seq 0)
  //   C2: p2 inserts B = b1              (B seq 0)
  //   C4: p2 updates B -> b2             (B seq 1)
  //   C6: p3 aggregates {A@a1, B@b2} = C (C seq 2 = 1 + max(0, 1)... )
  //   C3: p1 updates A -> a2             (A seq 1)
  //   C5: p2 updates A -> a3             (A seq 2)
  //   C7: p1 aggregates {A@a3, C@c1} = D (D seq 3 = 1 + max(2, 2))
  void SetUp() override {
    a_ = *db_.Insert(p2(), Value::String("a1"));
    b_ = *db_.Insert(p2(), Value::String("b1"));
    ASSERT_TRUE(db_.Update(p2(), b_, Value::String("b2")).ok());
    c_ = *db_.Aggregate(p3(), {a_, b_}, Value::String("c1"));
    ASSERT_TRUE(db_.Update(p1(), a_, Value::String("a2")).ok());
    ASSERT_TRUE(db_.Update(p2(), a_, Value::String("a3")).ok());
    d_ = *db_.Aggregate(p1(), {a_, c_}, Value::String("d1"));
  }

  const crypto::Participant& p1() { return TestPki::Instance().participant(0); }
  const crypto::Participant& p2() { return TestPki::Instance().participant(1); }
  const crypto::Participant& p3() { return TestPki::Instance().participant(2); }

  const ProvenanceRecord& RecordAt(ObjectId object, SeqId seq) {
    for (uint64_t idx : db_.provenance().ChainOf(object)) {
      const ProvenanceRecord& rec = db_.provenance().record(idx);
      if (rec.seq_id == seq) return rec;
    }
    ADD_FAILURE() << "no record for object " << object << " at seq " << seq;
    static ProvenanceRecord dummy;
    return dummy;
  }

  // Verifies that `record.checksum` is `participant`'s signature over
  // exactly `payload` — i.e. the Figure 3 formula for that row.
  void ExpectSignedPayload(const ProvenanceRecord& record,
                           const crypto::Participant& participant,
                           const Bytes& payload) {
    EXPECT_EQ(record.participant, participant.id());
    crypto::RsaSignatureVerifier verifier(participant.public_key());
    EXPECT_TRUE(verifier.Verify(payload, record.checksum).ok());
  }

  TrackedDatabase db_;
  ChecksumEngine engine_;
  ObjectId a_, b_, c_, d_;
};

TEST_F(Figure3Test, SeqIdsMatchTheFigure) {
  // Column 1 of Figure 3.
  EXPECT_EQ(RecordAt(a_, 0).op, OperationType::kInsert);   // C1
  EXPECT_EQ(RecordAt(b_, 0).op, OperationType::kInsert);   // C2
  EXPECT_EQ(RecordAt(a_, 1).op, OperationType::kUpdate);   // C3
  EXPECT_EQ(RecordAt(b_, 1).op, OperationType::kUpdate);   // C4
  EXPECT_EQ(RecordAt(a_, 2).op, OperationType::kUpdate);   // C5
  EXPECT_EQ(RecordAt(c_, 2).op, OperationType::kAggregate);  // C6 at seq 2
  EXPECT_EQ(RecordAt(d_, 3).op, OperationType::kAggregate);  // C7 at seq 3
}

TEST_F(Figure3Test, ParticipantsMatchTheFigure) {
  EXPECT_EQ(RecordAt(a_, 0).participant, p2().id());  // C1
  EXPECT_EQ(RecordAt(b_, 0).participant, p2().id());  // C2
  EXPECT_EQ(RecordAt(a_, 1).participant, p1().id());  // C3
  EXPECT_EQ(RecordAt(b_, 1).participant, p2().id());  // C4
  EXPECT_EQ(RecordAt(a_, 2).participant, p2().id());  // C5
  EXPECT_EQ(RecordAt(c_, 2).participant, p3().id());  // C6
  EXPECT_EQ(RecordAt(d_, 3).participant, p1().id());  // C7
}

TEST_F(Figure3Test, C1_InsertChecksumFormula) {
  // C1 = S_p2(0 | h(A, a1) | 0)
  const ProvenanceRecord& c1 = RecordAt(a_, 0);
  Bytes payload = engine_.BuildInsertPayload(c1.output.state_hash);
  ExpectSignedPayload(c1, p2(), payload);
}

TEST_F(Figure3Test, C3_UpdateChecksumChainsC1) {
  // C3 = S_p1(h(A, a1) | h(A, a2) | C1)
  const ProvenanceRecord& c1 = RecordAt(a_, 0);
  const ProvenanceRecord& c3 = RecordAt(a_, 1);
  EXPECT_EQ(c3.inputs[0].state_hash, c1.output.state_hash);
  Bytes payload = engine_.BuildUpdatePayload(
      c3.inputs[0].state_hash, c3.output.state_hash, c1.checksum);
  ExpectSignedPayload(c3, p1(), payload);
}

TEST_F(Figure3Test, C5_UpdateChecksumChainsC3) {
  // C5 = S_p2(h(A, a2) | h(A, a3) | C3)
  const ProvenanceRecord& c3 = RecordAt(a_, 1);
  const ProvenanceRecord& c5 = RecordAt(a_, 2);
  Bytes payload = engine_.BuildUpdatePayload(
      c5.inputs[0].state_hash, c5.output.state_hash, c3.checksum);
  ExpectSignedPayload(c5, p2(), payload);
}

TEST_F(Figure3Test, C6_AggregateChecksumChainsC1AndC4) {
  // C6 = S_p3( h(h(A,a1) | h(B,b2)) | h(C,c1) | C1 | C4 )
  const ProvenanceRecord& c1 = RecordAt(a_, 0);
  const ProvenanceRecord& c4 = RecordAt(b_, 1);
  const ProvenanceRecord& c6 = RecordAt(c_, 2);

  // The aggregation consumed A at its *original* value a1 and B at b2.
  ASSERT_EQ(c6.inputs.size(), 2u);
  EXPECT_EQ(c6.inputs[0].object_id, a_);
  EXPECT_EQ(c6.inputs[0].state_hash, c1.output.state_hash);
  EXPECT_EQ(c6.inputs[1].object_id, b_);
  EXPECT_EQ(c6.inputs[1].state_hash, c4.output.state_hash);

  Bytes payload = engine_.BuildAggregatePayload(
      {c6.inputs[0].state_hash, c6.inputs[1].state_hash},
      c6.output.state_hash, {c1.checksum, c4.checksum});
  ExpectSignedPayload(c6, p3(), payload);
}

TEST_F(Figure3Test, C7_AggregateChecksumChainsC5AndC6) {
  // C7 = S_p1( h(h(A,a3) | h(C,c1)) | h(D,d1) | C5 | C6 )
  const ProvenanceRecord& c5 = RecordAt(a_, 2);
  const ProvenanceRecord& c6 = RecordAt(c_, 2);
  const ProvenanceRecord& c7 = RecordAt(d_, 3);

  ASSERT_EQ(c7.inputs.size(), 2u);
  EXPECT_EQ(c7.inputs[0].object_id, a_);
  EXPECT_EQ(c7.inputs[0].state_hash, c5.output.state_hash);
  EXPECT_EQ(c7.inputs[1].object_id, c_);
  EXPECT_EQ(c7.inputs[1].state_hash, c6.output.state_hash);

  Bytes payload = engine_.BuildAggregatePayload(
      {c7.inputs[0].state_hash, c7.inputs[1].state_hash},
      c7.output.state_hash, {c5.checksum, c6.checksum});
  ExpectSignedPayload(c7, p1(), payload);
}

TEST_F(Figure3Test, RecipientVerificationProcedurePasses) {
  // The two-step recipient check of §3 over D and its provenance object.
  auto bundle = db_.ExportForRecipient(d_);
  ASSERT_TRUE(bundle.ok());
  // The provenance object contains exactly the 7 records of Figure 3.
  EXPECT_EQ(bundle->records.size(), 7u);
  ProvenanceVerifier verifier(&TestPki::Instance().registry());
  VerificationReport report = verifier.Verify(*bundle);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.signatures_verified, 7u);
}

TEST_F(Figure3Test, ProvenanceOfCOmitsLaterUpdatesOfA) {
  // C's provenance object covers A only up to a1 (C1) — the later C3/C5
  // updates postdate the aggregation and belong to D's view, not C's.
  auto bundle = db_.ExportForRecipient(c_);
  ASSERT_TRUE(bundle.ok());
  EXPECT_EQ(bundle->records.size(), 4u);  // C1, C2, C4, C6
  for (const ProvenanceRecord& rec : bundle->records) {
    EXPECT_FALSE(rec.output.object_id == a_ && rec.seq_id > 0)
        << "later update of A leaked into C's provenance";
  }
  ProvenanceVerifier verifier(&TestPki::Instance().registry());
  EXPECT_TRUE(verifier.Verify(*bundle).ok());
}

}  // namespace
}  // namespace provdb::provenance
