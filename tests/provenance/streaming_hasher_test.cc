#include "provenance/streaming_hasher.h"

#include <gtest/gtest.h>

#include "provenance/subtree_hasher.h"
#include "workload/title_source.h"

namespace provdb::provenance {
namespace {

using storage::ObjectId;
using storage::TreeStore;
using storage::Value;

// Builds a TreeStore with explicit sequential ids mirroring the streaming
// source's deterministic layout (root=1, table=2, then row/cell triples),
// then checks the streaming digest equals the in-memory recursive digest.
TEST(StreamingHasherTest, MatchesInMemoryHashOnEquivalentTree) {
  constexpr uint64_t kRows = 37;
  workload::TitleTableSource source(kRows, /*seed=*/7);

  TreeStore tree;
  ObjectId root = *tree.Insert(source.database_value());
  ASSERT_EQ(root, source.database_id());
  ObjectId table = *tree.Insert(source.table_value(), root);
  ASSERT_EQ(table, source.table_id());

  StreamingTableHasher streaming(crypto::HashAlgorithm::kSha1,
                                 source.table_id(), source.table_value());
  StreamingDatabaseHasher db_streaming(crypto::HashAlgorithm::kSha1,
                                       source.database_id(),
                                       source.database_value());

  workload::TitleTableSource::Row row;
  while (source.Next(&row)) {
    ObjectId row_id = *tree.Insert(row.row_value, table);
    ASSERT_EQ(row_id, row.row_id);
    for (const auto& [cell_id, cell_value] : row.cells) {
      ObjectId inserted = *tree.Insert(cell_value, row_id);
      ASSERT_EQ(inserted, cell_id);
    }
    streaming.AddRow(row.row_id, row.row_value, row.cells);
  }
  crypto::Digest table_hash = streaming.Finish();
  db_streaming.AddTable(table_hash);
  crypto::Digest db_hash = db_streaming.Finish();

  SubtreeHasher in_memory(&tree);
  EXPECT_EQ(table_hash, *in_memory.HashSubtreeBasic(table));
  EXPECT_EQ(db_hash, *in_memory.HashSubtreeBasic(root));
}

TEST(StreamingHasherTest, NodeCountAccounting) {
  constexpr uint64_t kRows = 10;
  workload::TitleTableSource source(kRows, 1);
  StreamingTableHasher streaming(crypto::HashAlgorithm::kSha1,
                                 source.table_id(), source.table_value());
  workload::TitleTableSource::Row row;
  while (source.Next(&row)) {
    streaming.AddRow(row.row_id, row.row_value, row.cells);
  }
  EXPECT_EQ(streaming.rows_hashed(), kRows);
  streaming.Finish();
  // 2 cells + 1 row per row, + 1 table node.
  EXPECT_EQ(streaming.nodes_hashed(), 3 * kRows + 1);
}

TEST(StreamingHasherTest, DifferentSeedsDifferentHashes) {
  auto hash_with_seed = [](uint64_t seed) {
    workload::TitleTableSource source(5, seed);
    StreamingTableHasher streaming(crypto::HashAlgorithm::kSha1,
                                   source.table_id(), source.table_value());
    workload::TitleTableSource::Row row;
    while (source.Next(&row)) {
      streaming.AddRow(row.row_id, row.row_value, row.cells);
    }
    return streaming.Finish();
  };
  EXPECT_NE(hash_with_seed(1), hash_with_seed(2));
  EXPECT_EQ(hash_with_seed(3), hash_with_seed(3));
}

TEST(StreamingHasherTest, RowOrderMatters) {
  // Rows must be fed in ascending id order; swapping two rows changes the
  // digest (the compound hash fixes the global total order).
  workload::TitleTableSource source(2, 5);
  workload::TitleTableSource::Row r1, r2;
  ASSERT_TRUE(source.Next(&r1));
  ASSERT_TRUE(source.Next(&r2));

  StreamingTableHasher forward(crypto::HashAlgorithm::kSha1, 2,
                               Value::String("Title"));
  forward.AddRow(r1.row_id, r1.row_value, r1.cells);
  forward.AddRow(r2.row_id, r2.row_value, r2.cells);

  StreamingTableHasher swapped(crypto::HashAlgorithm::kSha1, 2,
                               Value::String("Title"));
  swapped.AddRow(r2.row_id, r2.row_value, r2.cells);
  swapped.AddRow(r1.row_id, r1.row_value, r1.cells);

  EXPECT_NE(forward.Finish(), swapped.Finish());
}

TEST(TitleTableSourceTest, DeterministicAndExhausting) {
  workload::TitleTableSource a(3, 9), b(3, 9);
  workload::TitleTableSource::Row ra, rb;
  int rows = 0;
  while (a.Next(&ra)) {
    ASSERT_TRUE(b.Next(&rb));
    EXPECT_EQ(ra.row_id, rb.row_id);
    ASSERT_EQ(ra.cells.size(), 2u);
    EXPECT_EQ(ra.cells[0].second, rb.cells[0].second);
    EXPECT_EQ(ra.cells[1].second, rb.cells[1].second);
    ++rows;
  }
  EXPECT_EQ(rows, 3);
  EXPECT_FALSE(a.Next(&ra));
  EXPECT_EQ(a.TotalNodes(), 2 + 3 * 3u);
}

TEST(TitleTableSourceTest, PaperScaleConstants) {
  // The full-size configuration reproduces the paper's node arithmetic:
  // 18,962,041 rows -> 56,886,125 nodes (§5.2).
  workload::TitleTableSource source(
      workload::TitleTableSource::kPaperRowCount, 1);
  EXPECT_EQ(source.TotalNodes(), 56886125u);
}

}  // namespace
}  // namespace provdb::provenance
