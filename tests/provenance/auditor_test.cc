#include "provenance/auditor.h"

#include <gtest/gtest.h>

#include "provenance/tracked_database.h"
#include "testing/test_pki.h"

namespace provdb::provenance {
namespace {

using provdb::testing::TestPki;
using storage::ObjectId;
using storage::Value;

class AuditorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = *db_.Insert(p(1), Value::String("db"));
    table_ = *db_.Insert(p(1), Value::String("t"), root_);
    row_ = *db_.Insert(p(2), Value::Int(0), table_);
    cell_ = *db_.Insert(p(2), Value::Int(5), row_);
    ASSERT_TRUE(db_.Update(p(1), cell_, Value::Int(6)).ok());
  }

  const crypto::Participant& p(int i) {
    return TestPki::Instance().participant(i - 1);
  }

  StoreAuditor MakeAuditor() {
    return StoreAuditor(&TestPki::Instance().registry());
  }

  TrackedDatabase db_;
  ObjectId root_, table_, row_, cell_;
};

TEST_F(AuditorTest, CleanDeploymentPasses) {
  auto report = MakeAuditor().Audit(db_.provenance(), db_.tree());
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.records_checked, db_.provenance().record_count());
  EXPECT_EQ(report.signatures_verified, db_.provenance().record_count());
}

TEST_F(AuditorTest, DetectsUndocumentedLiveModification) {
  // Mutate the backing tree behind the provenance system's back (R4
  // against the store itself).
  ASSERT_TRUE(db_.bootstrap_tree().Update(cell_, Value::Int(666)).ok());
  auto report = MakeAuditor().Audit(db_.provenance(), db_.tree());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasIssue(IssueKind::kDataHashMismatch));
  // The mismatch is visible at the cell and propagates to every ancestor.
  EXPECT_GE(report.issues.size(), 4u);
}

TEST_F(AuditorTest, DetectsTamperedStoredChecksum) {
  ProvenanceRecord* rec = db_.mutable_provenance()->mutable_record(0);
  rec->checksum[3] ^= 0x10;
  auto report = MakeAuditor().Audit(db_.provenance(), db_.tree());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasIssue(IssueKind::kBadSignature));
}

TEST_F(AuditorTest, DetectsTamperedStoredHash) {
  ProvenanceRecord* rec = db_.mutable_provenance()->mutable_record(1);
  rec->output.state_hash.mutable_data()[0] ^= 1;
  auto report = MakeAuditor().Audit(db_.provenance(), db_.tree());
  EXPECT_FALSE(report.ok());
}

TEST_F(AuditorTest, DeletedObjectsDoNotFalseAlarm) {
  ASSERT_TRUE(db_.Delete(p(1), cell_).ok());
  auto report = MakeAuditor().Audit(db_.provenance(), db_.tree());
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(AuditorTest, PrunedRecordsAreSkipped) {
  ObjectId solo = *db_.Insert(p(1), Value::Int(1));
  ASSERT_TRUE(db_.Delete(p(1), solo).ok());
  db_.mutable_provenance()->PruneObject(solo).value();
  auto report = MakeAuditor().Audit(db_.provenance(), db_.tree());
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(AuditorTest, BootstrapObjectsWithoutChainsIgnored) {
  TrackedDatabase db;
  db.bootstrap_tree().Insert(Value::Int(1)).value();
  auto report = MakeAuditor().Audit(db.provenance(), db.tree());
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.records_checked, 0u);
}

TEST_F(AuditorTest, AuditCoversAggregates) {
  auto agg = db_.Aggregate(p(3), {root_}, Value::String("agg"));
  ASSERT_TRUE(agg.ok());
  auto report = MakeAuditor().Audit(db_.provenance(), db_.tree());
  EXPECT_TRUE(report.ok()) << report.ToString();

  // Now tamper the aggregate's stored input hash.
  for (uint64_t i = 0; i < db_.provenance().record_count(); ++i) {
    if (db_.provenance().record(i).op == OperationType::kAggregate) {
      db_.mutable_provenance()
          ->mutable_record(i)
          ->inputs[0]
          .state_hash.mutable_data()[0] ^= 1;
    }
  }
  report = MakeAuditor().Audit(db_.provenance(), db_.tree());
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace provdb::provenance
