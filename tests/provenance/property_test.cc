// Property-based suites over randomized operation histories:
//
//   P1 (soundness):    every honestly produced bundle verifies, for every
//                      hashing mode x hash algorithm x random seed.
//   P2 (tamper-evidence): any single random mutation of a bundle's
//                      signed surface is detected.
//   P3 (mode equivalence): Basic and Economical hashing produce identical
//                      records for identical histories.
//
// These sweep the same invariants the hand-written tests pin down, but
// across a much larger slice of the input space.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "provenance/tracked_database.h"
#include "provenance/verifier.h"
#include "testing/test_pki.h"

namespace provdb::provenance {
namespace {

using provdb::testing::TestPki;
using storage::ObjectId;
using storage::Value;

// Applies `steps` random primitive operations to `db`, tracking live
// leaf-ish objects. Returns an object that still exists (preferring one
// with history) to use as the bundle subject.
ObjectId RunRandomHistory(TrackedDatabase* db, Rng* rng, int steps,
                          const TestPki& pki) {
  std::vector<ObjectId> roots;
  std::vector<ObjectId> leaves;

  auto random_participant = [&]() -> const crypto::Participant& {
    return pki.participant(rng->NextBelow(TestPki::kNumParticipants));
  };

  // Seed with a couple of root objects.
  for (int i = 0; i < 2; ++i) {
    ObjectId root =
        db->Insert(random_participant(),
                   Value::Int(static_cast<int64_t>(rng->NextUint64())))
            .value();
    roots.push_back(root);
    leaves.push_back(root);
  }

  for (int step = 0; step < steps; ++step) {
    int action = static_cast<int>(rng->NextBelow(100));
    if (action < 30 && !leaves.empty()) {
      // Update a random live object.
      ObjectId target = leaves[rng->NextBelow(leaves.size())];
      if (db->tree().Contains(target)) {
        EXPECT_TRUE(
            db->Update(random_participant(), target,
                       Value::Int(static_cast<int64_t>(rng->NextUint64())))
                .ok());
      }
    } else if (action < 60) {
      // Insert under a random existing object (or as a new root).
      ObjectId parent = storage::kInvalidObjectId;
      if (!leaves.empty() && rng->NextBool(0.8)) {
        parent = leaves[rng->NextBelow(leaves.size())];
        if (!db->tree().Contains(parent)) parent = storage::kInvalidObjectId;
      }
      auto inserted =
          db->Insert(random_participant(),
                     Value::Int(static_cast<int64_t>(rng->NextUint64())),
                     parent);
      EXPECT_TRUE(inserted.ok());
      leaves.push_back(*inserted);
      if (parent == storage::kInvalidObjectId) roots.push_back(*inserted);
    } else if (action < 75 && !leaves.empty()) {
      // Delete a random live leaf.
      ObjectId target = leaves[rng->NextBelow(leaves.size())];
      if (db->tree().Contains(target) &&
          db->tree().GetNode(target).value()->is_leaf()) {
        EXPECT_TRUE(db->Delete(random_participant(), target).ok());
      }
    } else if (!roots.empty()) {
      // Aggregate 1-3 random existing roots.
      std::vector<ObjectId> inputs;
      size_t n = 1 + rng->NextBelow(3);
      for (size_t i = 0; i < n; ++i) {
        ObjectId candidate = roots[rng->NextBelow(roots.size())];
        if (db->tree().Contains(candidate)) inputs.push_back(candidate);
      }
      if (!inputs.empty()) {
        auto agg = db->Aggregate(
            random_participant(), inputs,
            Value::Int(static_cast<int64_t>(rng->NextUint64())));
        EXPECT_TRUE(agg.ok());
        roots.push_back(*agg);
        leaves.push_back(*agg);
      }
    }
  }

  // Pick a live subject with provenance, preferring later (richer) ones.
  for (size_t i = roots.size(); i-- > 0;) {
    if (db->tree().Contains(roots[i]) &&
        !db->provenance().ChainOf(roots[i]).empty()) {
      return roots[i];
    }
  }
  return roots[0];
}

// ---------------------------------------------------------------------
// P1: honest histories always verify.

class HonestHistoryTest
    : public ::testing::TestWithParam<
          std::tuple<HashingMode, crypto::HashAlgorithm, uint64_t>> {};

TEST_P(HonestHistoryTest, AlwaysVerifies) {
  auto [mode, alg, seed] = GetParam();
  TrackedDatabaseOptions options;
  options.hashing_mode = mode;
  options.hash_algorithm = alg;
  TrackedDatabase db(options);
  Rng rng(seed);
  const TestPki& pki = TestPki::InstanceFor(alg);
  ObjectId subject = RunRandomHistory(&db, &rng, 40, pki);

  auto bundle = db.ExportForRecipient(subject);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  ProvenanceVerifier verifier(&pki.registry(), alg);
  auto report = verifier.Verify(*bundle);
  EXPECT_TRUE(report.ok()) << "mode=" << HashingModeName(mode) << " alg="
                           << crypto::HashAlgorithmName(alg) << " seed="
                           << seed << "\n"
                           << report.ToString();

  // Wire round trip preserves verifiability.
  auto received = RecipientBundle::Deserialize(bundle->Serialize());
  ASSERT_TRUE(received.ok());
  EXPECT_TRUE(verifier.Verify(*received).ok());
}

INSTANTIATE_TEST_SUITE_P(
    ModesAlgorithmsSeeds, HonestHistoryTest,
    ::testing::Combine(
        ::testing::Values(HashingMode::kBasic, HashingMode::kEconomical),
        ::testing::Values(crypto::HashAlgorithm::kSha1,
                          crypto::HashAlgorithm::kSha256,
                          crypto::HashAlgorithm::kMd5),
        ::testing::Values(11u, 22u, 33u)));

// ---------------------------------------------------------------------
// P2: any single random mutation is detected.

class TamperFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TamperFuzzTest, RandomMutationDetected) {
  uint64_t seed = GetParam();
  TrackedDatabase db;
  Rng rng(seed);
  ObjectId subject = RunRandomHistory(&db, &rng, 30, TestPki::Instance());
  auto bundle_or = db.ExportForRecipient(subject);
  ASSERT_TRUE(bundle_or.ok());
  RecipientBundle honest = *bundle_or;

  ProvenanceVerifier verifier(&TestPki::Instance().registry());
  ASSERT_TRUE(verifier.Verify(honest).ok());

  // 24 independent random mutations of the honest bundle.
  for (int trial = 0; trial < 24; ++trial) {
    RecipientBundle tampered = honest;
    Rng mut(seed * 1000 + trial);
    int kind = static_cast<int>(mut.NextBelow(6));
    size_t r = mut.NextBelow(tampered.records.size());
    ProvenanceRecord& rec = tampered.records[r];
    const char* what = "?";
    switch (kind) {
      case 0:
        what = "flip checksum byte";
        rec.checksum[mut.NextBelow(rec.checksum.size())] ^=
            static_cast<uint8_t>(1 + mut.NextBelow(255));
        break;
      case 1:
        what = "flip output hash byte";
        rec.output.state_hash
            .mutable_data()[mut.NextBelow(rec.output.state_hash.size())] ^=
            static_cast<uint8_t>(1 + mut.NextBelow(255));
        break;
      case 2:
        if (rec.inputs.empty()) {
          what = "flip checksum byte (no inputs)";
          rec.checksum[0] ^= 0x01;
        } else {
          what = "flip input hash byte";
          rec.inputs[mut.NextBelow(rec.inputs.size())]
              .state_hash.mutable_data()[0] ^= 0x01;
        }
        break;
      case 3:
        what = "remove record";
        tampered.records.erase(tampered.records.begin() + r);
        break;
      case 4:
        what = "shift seq id";
        rec.seq_id += 1 + mut.NextBelow(5);
        break;
      case 5:
        what = "reassign participant";
        rec.participant =
            rec.participant % TestPki::kNumParticipants + 1;  // different id
        break;
    }
    auto report = verifier.Verify(tampered);
    EXPECT_FALSE(report.ok())
        << "undetected mutation: " << what << " on record " << r
        << " (seed " << seed << ", trial " << trial << ")";
  }

  // Data-side mutations: every node of the shipped snapshot is covered.
  for (const auto& node : honest.data.nodes()) {
    RecipientBundle tampered = honest;
    ASSERT_TRUE(
        tampered.data.TamperValue(node.id, Value::String("evil")).ok());
    EXPECT_FALSE(verifier.Verify(tampered).ok())
        << "undetected data tamper at node " << node.id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TamperFuzzTest,
                         ::testing::Values(101u, 202u, 303u, 404u));

// ---------------------------------------------------------------------
// P3: Basic and Economical modes are observationally equivalent.

class ModeEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ModeEquivalenceTest, IdenticalRecordsForIdenticalHistories) {
  uint64_t seed = GetParam();
  TrackedDatabaseOptions basic_opts;
  basic_opts.hashing_mode = HashingMode::kBasic;
  TrackedDatabase basic_db(basic_opts);
  TrackedDatabase econ_db;  // economical

  Rng rng1(seed), rng2(seed);
  ObjectId s1 = RunRandomHistory(&basic_db, &rng1, 35, TestPki::Instance());
  ObjectId s2 = RunRandomHistory(&econ_db, &rng2, 35, TestPki::Instance());
  ASSERT_EQ(s1, s2);

  ASSERT_EQ(basic_db.provenance().record_count(),
            econ_db.provenance().record_count());
  for (uint64_t i = 0; i < basic_db.provenance().record_count(); ++i) {
    const ProvenanceRecord& a = basic_db.provenance().record(i);
    const ProvenanceRecord& b = econ_db.provenance().record(i);
    EXPECT_EQ(a.seq_id, b.seq_id) << i;
    EXPECT_EQ(a.output.object_id, b.output.object_id) << i;
    // State hashes must agree exactly — the two strategies compute the
    // same function with different caching.
    EXPECT_EQ(a.output.state_hash, b.output.state_hash) << i;
    ASSERT_EQ(a.inputs.size(), b.inputs.size()) << i;
    for (size_t j = 0; j < a.inputs.size(); ++j) {
      EXPECT_EQ(a.inputs[j], b.inputs[j]) << i << "/" << j;
    }
    // Checksums agree too (PKCS#1 v1.5 signing is deterministic).
    EXPECT_EQ(a.checksum, b.checksum) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModeEquivalenceTest,
                         ::testing::Values(7u, 77u, 777u, 7777u));

}  // namespace
}  // namespace provdb::provenance
