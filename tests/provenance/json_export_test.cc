#include "provenance/json_export.h"

#include <gtest/gtest.h>

#include "provenance/attack.h"
#include "provenance/tracked_database.h"
#include "testing/test_pki.h"

namespace provdb::provenance {
namespace {

using provdb::testing::TestPki;
using storage::Value;

TEST(JsonEscapeTest, PassesThroughPlainText) {
  EXPECT_EQ(JsonEscape("hello world"), "hello world");
  EXPECT_EQ(JsonEscape(""), "");
}

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonExportTest, RecordRendersAllFields) {
  ProvenanceRecord rec;
  rec.seq_id = 7;
  rec.participant = 3;
  rec.op = OperationType::kUpdate;
  rec.inherited = true;
  rec.inputs.push_back(
      ObjectState{4, crypto::Digest::FromBytes(Bytes{0xAB, 0xCD})});
  rec.output = ObjectState{4, crypto::Digest::FromBytes(Bytes{0xEF})};
  rec.checksum = Bytes{0x01, 0x02};
  rec.output_snapshot = Value::String("say \"hi\"");
  rec.has_output_snapshot = true;

  std::string json = RecordToJson(rec);
  EXPECT_NE(json.find("\"seq\":7"), std::string::npos);
  EXPECT_NE(json.find("\"participant\":3"), std::string::npos);
  EXPECT_NE(json.find("\"op\":\"update\""), std::string::npos);
  EXPECT_NE(json.find("\"inherited\":true"), std::string::npos);
  EXPECT_NE(json.find("\"hash\":\"abcd\""), std::string::npos);
  EXPECT_NE(json.find("\"checksum\":\"0102\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":\"say \\\"hi\\\"\""), std::string::npos);
}

TEST(JsonExportTest, ValueKindsRenderDistinctly) {
  auto json_of = [](Value v) {
    ProvenanceRecord rec;
    rec.output_snapshot = std::move(v);
    rec.has_output_snapshot = true;
    return RecordToJson(rec);
  };
  EXPECT_NE(json_of(Value::Null()).find("\"value\":null"),
            std::string::npos);
  EXPECT_NE(json_of(Value::Int(-9)).find("\"value\":-9"), std::string::npos);
  EXPECT_NE(json_of(Value::Double(1.5)).find("\"value\":1.5"),
            std::string::npos);
  EXPECT_NE(json_of(Value::Blob({0xFF})).find("\"value\":\"0xff\""),
            std::string::npos);
  double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_NE(json_of(Value::Double(nan)).find("\"value\":\"NaN\""),
            std::string::npos);
}

TEST(JsonExportTest, BundleRoundIsWellFormedAndDeterministic) {
  TrackedDatabase db;
  const auto& p1 = TestPki::Instance().participant(0);
  auto a = db.Insert(p1, Value::String("v1")).value();
  ASSERT_TRUE(db.Update(p1, a, Value::String("v2")).ok());
  auto bundle = db.ExportForRecipient(a).value();

  std::string json = BundleToJson(bundle);
  EXPECT_EQ(json, BundleToJson(bundle));  // deterministic
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  // Balanced braces/brackets (coarse well-formedness check).
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_NE(json.find("\"records\":["), std::string::npos);
}

TEST(JsonExportTest, ReportRendersIssues) {
  TrackedDatabase db;
  const auto& p1 = TestPki::Instance().participant(0);
  auto a = db.Insert(p1, Value::String("v1")).value();
  auto bundle = db.ExportForRecipient(a).value();
  ASSERT_TRUE(
      attacks::TamperDataValue(&bundle, a, Value::String("evil")).ok());

  ProvenanceVerifier verifier(&TestPki::Instance().registry());
  auto report = verifier.Verify(bundle);
  std::string json = ReportToJson(report);
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"DataHashMismatch\""), std::string::npos);

  auto clean = db.ExportForRecipient(a).value();
  std::string clean_json = ReportToJson(verifier.Verify(clean));
  EXPECT_NE(clean_json.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(clean_json.find("\"issues\":[]"), std::string::npos);
}

}  // namespace
}  // namespace provdb::provenance
