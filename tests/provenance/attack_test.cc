// The §2.2 security-requirement suite: one adversarial scenario per
// requirement R1-R8, each asserting that the data recipient's verifier
// detects the attack. The attackers here are *legitimate participants*
// (they hold certified keys and can sign as themselves) — they just cannot
// forge other participants' signatures.

#include "provenance/attack.h"

#include <gtest/gtest.h>

#include "provenance/tracked_database.h"
#include "provenance/verifier.h"
#include "testing/test_pki.h"

namespace provdb::provenance {
namespace {

using provdb::testing::TestPki;
using storage::ObjectId;
using storage::Value;

class AttackTest : public ::testing::Test {
 protected:
  // victim writes an honest 3-record history of object A.
  void SetUp() override {
    a_ = *db_.Insert(victim(), Value::String("v1"));
    ASSERT_TRUE(db_.Update(victim(), a_, Value::String("v2")).ok());
    ASSERT_TRUE(db_.Update(victim(), a_, Value::String("v3")).ok());
    bundle_ = *db_.ExportForRecipient(a_);
    ASSERT_TRUE(Verify(bundle_).ok());  // honest bundle is clean
  }

  const crypto::Participant& victim() {
    return TestPki::Instance().participant(0);
  }
  const crypto::Participant& attacker() {
    return TestPki::Instance().participant(1);
  }
  const crypto::Participant& colluder() {
    return TestPki::Instance().participant(2);
  }

  VerificationReport Verify(const RecipientBundle& bundle) {
    ProvenanceVerifier verifier(&TestPki::Instance().registry());
    return verifier.Verify(bundle);
  }

  size_t RecordIndexAtSeq(const RecipientBundle& bundle, SeqId seq) {
    for (size_t i = 0; i < bundle.records.size(); ++i) {
      if (bundle.records[i].seq_id == seq) return i;
    }
    ADD_FAILURE() << "no record at seq " << seq;
    return 0;
  }

  TrackedDatabase db_;
  ObjectId a_ = storage::kInvalidObjectId;
  RecipientBundle bundle_;
};

// R1: an attacker cannot modify the contents of other participants'
// records (input/output values) without detection.
TEST_F(AttackTest, R1_TamperOutputHashDetected) {
  RecipientBundle tampered = bundle_;
  ASSERT_TRUE(attacks::TamperRecordOutputHash(
                  &tampered, RecordIndexAtSeq(tampered, 1))
                  .ok());
  VerificationReport report = Verify(tampered);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasIssue(IssueKind::kBadSignature));
}

TEST_F(AttackTest, R1_TamperInputHashDetected) {
  RecipientBundle tampered = bundle_;
  ASSERT_TRUE(attacks::TamperRecordInputHash(
                  &tampered, RecordIndexAtSeq(tampered, 1), 0)
                  .ok());
  VerificationReport report = Verify(tampered);
  EXPECT_FALSE(report.ok());
  // Both the chain link and the signature break.
  EXPECT_TRUE(report.HasIssue(IssueKind::kBadSignature));
  EXPECT_TRUE(report.HasIssue(IssueKind::kChainLinkBroken));
}

// R2: an attacker cannot remove other participants' records.
TEST_F(AttackTest, R2_RemoveMiddleRecordDetected) {
  RecipientBundle tampered = bundle_;
  ASSERT_TRUE(
      attacks::RemoveRecord(&tampered, RecordIndexAtSeq(tampered, 1)).ok());
  VerificationReport report = Verify(tampered);
  EXPECT_FALSE(report.ok());
  // The seq gap and the broken checksum chain both witness the removal.
  EXPECT_TRUE(report.HasIssue(IssueKind::kSeqViolation) ||
              report.HasIssue(IssueKind::kChainLinkBroken) ||
              report.HasIssue(IssueKind::kBadSignature));
}

TEST_F(AttackTest, R2_RemoveWithRenumberingStillDetected) {
  // A smarter attacker renumbers seqIDs after removal; the checksum chain
  // still breaks because record @2 signed C_1 as its predecessor.
  RecipientBundle tampered = bundle_;
  ASSERT_TRUE(attacks::RemoveRecordAndRenumber(
                  &tampered, RecordIndexAtSeq(tampered, 1))
                  .ok());
  VerificationReport report = Verify(tampered);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasIssue(IssueKind::kBadSignature) ||
              report.HasIssue(IssueKind::kChainLinkBroken));
}

TEST_F(AttackTest, R2_TruncateHistoryHeadDetected) {
  RecipientBundle tampered = bundle_;
  ASSERT_TRUE(
      attacks::RemoveRecord(&tampered, RecordIndexAtSeq(tampered, 0)).ok());
  VerificationReport report = Verify(tampered);
  EXPECT_FALSE(report.ok());
}

// R3: an attacker cannot insert records (other than appending the most
// recent one via a proper operation).
TEST_F(AttackTest, R3_SpliceForgedRecordDetected) {
  RecipientBundle tampered = bundle_;
  crypto::Digest fake_pre = tampered.records[RecordIndexAtSeq(tampered, 0)]
                                .output.state_hash;
  Bytes fake_raw(20, 0x66);
  crypto::Digest fake_post = crypto::Digest::FromBytes(fake_raw);
  ChecksumEngine engine;
  ASSERT_TRUE(attacks::InsertForgedRecord(&tampered, attacker(), engine, a_,
                                          /*seq_id=*/1, fake_pre, fake_post)
                  .ok());
  VerificationReport report = Verify(tampered);
  EXPECT_FALSE(report.ok());
  // The successor (originally at seq 1) signed different inputs/prev, so
  // its signature check or link check fails.
  EXPECT_TRUE(report.HasIssue(IssueKind::kBadSignature) ||
              report.HasIssue(IssueKind::kChainLinkBroken));
}

// R4: modifying the data object without submitting provenance is caught.
TEST_F(AttackTest, R4_DataModifiedWithoutProvenanceDetected) {
  RecipientBundle tampered = bundle_;
  ASSERT_TRUE(
      attacks::TamperDataValue(&tampered, a_, Value::String("forged")).ok());
  VerificationReport report = Verify(tampered);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasIssue(IssueKind::kDataHashMismatch));
}

// R5: provenance cannot be re-attributed to a different data object.
TEST_F(AttackTest, R5_ReattributeToOtherObjectDetected) {
  // The attacker owns object B and tries to pass A's provenance off as
  // describing B's (different) data.
  auto b = db_.Insert(attacker(), Value::String("other-data"));
  ASSERT_TRUE(b.ok());
  auto b_snapshot = SubtreeSnapshot::Capture(db_.tree(), *b);
  ASSERT_TRUE(b_snapshot.ok());

  RecipientBundle tampered = bundle_;
  ASSERT_TRUE(
      attacks::ReattributeProvenance(&tampered, std::move(*b_snapshot)).ok());
  VerificationReport report = Verify(tampered);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasIssue(IssueKind::kMissingRecords) ||
              report.HasIssue(IssueKind::kDataHashMismatch));
}

TEST_F(AttackTest, R5_RenamingObjectIdsDetected) {
  // Keep the data bytes, rename the root id so the records "describe" a
  // different object. The object id is inside every hashed state, so the
  // hash no longer matches.
  RecipientBundle tampered = bundle_;
  ASSERT_TRUE(attacks::RenameDataObject(&tampered, 4242).ok());
  VerificationReport report = Verify(tampered);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasIssue(IssueKind::kMissingRecords) ||
              report.HasIssue(IssueKind::kDataHashMismatch));
}

// R6: colluders cannot insert records *for a non-colluding participant*.
TEST_F(AttackTest, R6_ColludersCannotForgeVictimRecord) {
  // Attacker and colluder fabricate a record and attribute it to the
  // victim. They cannot produce the victim's signature, so they sign with
  // the attacker's key and rewrite the participant field.
  RecipientBundle tampered = bundle_;
  crypto::Digest fake_pre =
      tampered.records[RecordIndexAtSeq(tampered, 0)].output.state_hash;
  Bytes fake_raw(20, 0x67);
  ChecksumEngine engine;
  ASSERT_TRUE(attacks::InsertForgedRecord(
                  &tampered, attacker(), engine, a_, 1, fake_pre,
                  crypto::Digest::FromBytes(fake_raw))
                  .ok());
  // Frame the victim.
  ASSERT_TRUE(attacks::ReassignRecordParticipant(
                  &tampered, tampered.records.size() - 1, victim().id())
                  .ok());
  VerificationReport report = Verify(tampered);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasIssue(IssueKind::kBadSignature));
}

// R7: colluders cannot selectively remove a non-colluder's records that
// sit between their own.
TEST_F(AttackTest, R7_SelectiveRemovalBetweenColludersDetected) {
  // History: attacker(seq0) -> victim(seq1) -> colluder(seq2). The two
  // colluding endpoints excise the victim's record.
  TrackedDatabase db;
  ObjectId x = *db.Insert(attacker(), Value::String("x1"));
  ASSERT_TRUE(db.Update(victim(), x, Value::String("x2")).ok());
  ASSERT_TRUE(db.Update(colluder(), x, Value::String("x3")).ok());
  RecipientBundle bundle = *db.ExportForRecipient(x);
  ASSERT_TRUE(Verify(bundle).ok());

  size_t victim_idx = 0;
  for (size_t i = 0; i < bundle.records.size(); ++i) {
    if (bundle.records[i].participant == victim().id()) victim_idx = i;
  }
  ASSERT_TRUE(attacks::RemoveRecordAndRenumber(&bundle, victim_idx).ok());
  VerificationReport report = Verify(bundle);
  EXPECT_FALSE(report.ok());
  // The colluder's record signed the victim's checksum as its previous;
  // with the victim's record gone its signature cannot re-verify.
  EXPECT_TRUE(report.HasIssue(IssueKind::kBadSignature) ||
              report.HasIssue(IssueKind::kChainLinkBroken));
}

// R8: participants cannot repudiate their records.
TEST_F(AttackTest, R8_RecordsAreNonRepudiable) {
  // Every record in the honest bundle verifies under exactly the claimed
  // participant's certified key — so a participant cannot later deny
  // having produced it (only their key could have signed it)...
  VerificationReport honest = Verify(bundle_);
  EXPECT_TRUE(honest.ok());
  EXPECT_EQ(honest.signatures_verified, bundle_.records.size());

  // ...and re-attributing a genuine record to someone else fails, so the
  // true author is pinned.
  RecipientBundle reattributed = bundle_;
  ASSERT_TRUE(attacks::ReassignRecordParticipant(
                  &reattributed, RecordIndexAtSeq(reattributed, 1),
                  attacker().id())
                  .ok());
  VerificationReport report = Verify(reattributed);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasIssue(IssueKind::kBadSignature));
}

TEST_F(AttackTest, UncertifiedParticipantDetected) {
  RecipientBundle tampered = bundle_;
  ASSERT_TRUE(attacks::ReassignRecordParticipant(
                  &tampered, RecordIndexAtSeq(tampered, 1), 999)
                  .ok());
  VerificationReport report = Verify(tampered);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasIssue(IssueKind::kUnknownParticipant));
}

TEST_F(AttackTest, TamperChecksumItselfDetected) {
  RecipientBundle tampered = bundle_;
  tampered.records[RecordIndexAtSeq(tampered, 0)].checksum[0] ^= 0x01;
  VerificationReport report = Verify(tampered);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasIssue(IssueKind::kBadSignature));
}

TEST_F(AttackTest, AggregateInputTamperingDetected) {
  // Build a DAG and tamper with the aggregation's recorded input state.
  TrackedDatabase db;
  ObjectId p = *db.Insert(victim(), Value::String("p1"));
  ObjectId q = *db.Insert(victim(), Value::String("q1"));
  auto agg = db.Aggregate(attacker(), {p, q}, Value::String("agg"));
  ASSERT_TRUE(agg.ok());
  RecipientBundle bundle = *db.ExportForRecipient(*agg);
  ASSERT_TRUE(Verify(bundle).ok());

  for (size_t i = 0; i < bundle.records.size(); ++i) {
    if (bundle.records[i].op == OperationType::kAggregate) {
      ASSERT_TRUE(attacks::TamperRecordInputHash(&bundle, i, 0).ok());
      break;
    }
  }
  VerificationReport report = Verify(bundle);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasIssue(IssueKind::kBadSignature) ||
              report.HasIssue(IssueKind::kAggregateInputUnresolved));
}

TEST_F(AttackTest, HonestAppendIsNotAnAttack) {
  // Appending a *properly documented* record is allowed (footnote to R3):
  // the attacker performs a real update through the system.
  ASSERT_TRUE(db_.Update(attacker(), a_, Value::String("v4")).ok());
  RecipientBundle fresh = *db_.ExportForRecipient(a_);
  EXPECT_TRUE(Verify(fresh).ok());
}

}  // namespace
}  // namespace provdb::provenance
