#include "provenance/checksum.h"

#include <gtest/gtest.h>

#include "testing/test_pki.h"

namespace provdb::provenance {
namespace {

using provdb::testing::TestPki;

crypto::Digest D(uint8_t fill) {
  Bytes raw(20, fill);
  return crypto::Digest::FromBytes(raw);
}

TEST(ChecksumEngineTest, InsertPayloadLayout) {
  // 0 | h(A, val) | 0 — zero block, then the output hash, empty prev slot.
  ChecksumEngine engine;
  Bytes payload = engine.BuildInsertPayload(D(0xAB));
  ASSERT_EQ(payload.size(), 40u);
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(payload[i], 0);
    EXPECT_EQ(payload[20 + i], 0xAB);
  }
}

TEST(ChecksumEngineTest, UpdatePayloadLayout) {
  ChecksumEngine engine;
  Bytes prev(128, 0xCC);
  Bytes payload = engine.BuildUpdatePayload(D(0x11), D(0x22), prev);
  ASSERT_EQ(payload.size(), 20 + 20 + 128u);
  EXPECT_EQ(payload[0], 0x11);
  EXPECT_EQ(payload[20], 0x22);
  EXPECT_EQ(payload[40], 0xCC);
}

TEST(ChecksumEngineTest, UpdatePayloadWithEmptyPrev) {
  // Bootstrap-epoch chains have no previous checksum.
  ChecksumEngine engine;
  Bytes payload = engine.BuildUpdatePayload(D(0x11), D(0x22), ByteView());
  EXPECT_EQ(payload.size(), 40u);
}

TEST(ChecksumEngineTest, AggregatePayloadHashesInputBlock) {
  // h( h_1 | ... | h_n ) | h(B) | C_1 | ... | C_n
  ChecksumEngine engine;
  std::vector<crypto::Digest> inputs = {D(0x01), D(0x02)};
  std::vector<Bytes> prevs = {Bytes(128, 0xAA), Bytes(128, 0xBB)};
  Bytes payload = engine.BuildAggregatePayload(inputs, D(0x33), prevs);
  ASSERT_EQ(payload.size(), 20 + 20 + 256u);

  // First 20 bytes are H(h1 | h2), not the raw input hashes.
  Bytes concat;
  AppendBytes(&concat, inputs[0].view());
  AppendBytes(&concat, inputs[1].view());
  crypto::Digest expected =
      crypto::HashBytes(crypto::HashAlgorithm::kSha1, concat);
  EXPECT_TRUE(ByteView(payload).subview(0, 20) == expected.view());
  EXPECT_EQ(payload[20], 0x33);
  EXPECT_EQ(payload[40], 0xAA);
  EXPECT_EQ(payload[168], 0xBB);
}

TEST(ChecksumEngineTest, AggregateOrderSensitivity) {
  // Reordering inputs changes the payload (the formula fixes the global
  // total order, so honest emitters always sort; a forged reorder breaks).
  ChecksumEngine engine;
  std::vector<Bytes> prevs = {{}, {}};
  Bytes forward = engine.BuildAggregatePayload({D(1), D(2)}, D(3), prevs);
  Bytes reversed = engine.BuildAggregatePayload({D(2), D(1)}, D(3), prevs);
  EXPECT_NE(forward, reversed);
}

TEST(ChecksumEngineTest, PayloadsDifferAcrossOperations) {
  ChecksumEngine engine;
  Bytes insert = engine.BuildInsertPayload(D(7));
  Bytes update = engine.BuildUpdatePayload(D(0), D(7), ByteView());
  // Same output hash, but insert has an all-zero input block while this
  // update has an explicit zero digest... lengths coincide, so check the
  // actual distinguishing property: insert == update(zero-hash) by
  // construction would be a forgery vector; the engine distinguishes them
  // because an honest zero input hash never occurs (digests of real
  // subtrees are never all-zero).
  EXPECT_EQ(insert.size(), update.size());
}

TEST(ChecksumEngineTest, SignedPayloadVerifiesUnderSigner) {
  const auto& pki = TestPki::Instance();
  ChecksumEngine engine;
  Bytes payload = engine.BuildUpdatePayload(D(1), D(2), Bytes(64, 0x0F));
  auto checksum = engine.SignPayload(pki.participant(0).signer(), payload);
  ASSERT_TRUE(checksum.ok());

  crypto::RsaSignatureVerifier verifier(pki.participant(0).public_key());
  EXPECT_TRUE(verifier.Verify(payload, *checksum).ok());
  // Any payload perturbation breaks it.
  payload[0] ^= 1;
  EXPECT_FALSE(verifier.Verify(payload, *checksum).ok());
}

TEST(ChecksumEngineTest, AlgorithmWidthsPropagate) {
  ChecksumEngine sha256(crypto::HashAlgorithm::kSha256);
  Bytes raw(32, 0x55);
  Bytes payload =
      sha256.BuildInsertPayload(crypto::Digest::FromBytes(raw));
  EXPECT_EQ(payload.size(), 64u);  // 32-byte zero block + 32-byte hash
  EXPECT_EQ(sha256.algorithm(), crypto::HashAlgorithm::kSha256);
}

}  // namespace
}  // namespace provdb::provenance
