// Unit tests for the sharded batched ingest pipeline: request signing
// semantics, shard routing, group-commit batching, write-ahead ordering
// under fault injection, reopen/recovery, and sequential-vs-parallel
// signing equivalence.

#include "provenance/ingest_pipeline.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "common/hashmix.h"
#include "common/thread_pool.h"
#include "provenance/serialization.h"
#include "storage/fault_injection_env.h"
#include "testing/test_pki.h"

namespace provdb::provenance {
namespace {

using provdb::testing::TestPki;
using storage::Env;
using storage::FaultInjectionEnv;
using storage::ObjectId;

const crypto::Participant& P(size_t i) {
  return TestPki::Instance().participant(i);
}

crypto::Digest D(uint8_t tag) {
  Bytes b(20, tag);
  return crypto::Digest::FromBytes(ByteView(b.data(), b.size()));
}

std::string FreshDir(const std::string& tag) {
  std::string root = ::testing::TempDir() + "/provdb_ingest_" + tag;
  // Shard directories survive across runs; start from scratch.
  auto shards = Env::Default()->ListDir(root);
  if (shards.ok()) {
    for (const std::string& shard : *shards) {
      auto files = Env::Default()->ListDir(root + "/" + shard);
      if (!files.ok()) continue;
      for (const std::string& f : *files) {
        EXPECT_TRUE(
            Env::Default()->RemoveFile(root + "/" + shard + "/" + f).ok());
      }
    }
  }
  return root;
}

IngestRequest Insert(ObjectId id, uint8_t tag, size_t p = 0) {
  IngestRequest r;
  r.op = OperationType::kInsert;
  r.object = id;
  r.post_hash = D(tag);
  r.participant = &P(p);
  return r;
}

IngestRequest Update(ObjectId id, uint8_t pre, uint8_t post, size_t p = 0) {
  IngestRequest r;
  r.op = OperationType::kUpdate;
  r.object = id;
  r.has_pre_hash = true;
  r.pre_hash = D(pre);
  r.post_hash = D(post);
  r.participant = &P(p);
  return r;
}

// ---------------------------------------------------------------------------
// BuildSignedIngestRecord
// ---------------------------------------------------------------------------

TEST(BuildSignedIngestRecordTest, InsertStartsChainAtZero) {
  ChecksumEngine engine;
  auto rec = BuildSignedIngestRecord(engine, {}, Insert(7, 0xA1));
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->seq_id, 0u);
  EXPECT_EQ(rec->op, OperationType::kInsert);
  EXPECT_TRUE(rec->inputs.empty());
  EXPECT_FALSE(rec->checksum.empty());
}

TEST(BuildSignedIngestRecordTest, InsertIntoExistingChainRejected) {
  ChecksumEngine engine;
  LocalChainState::Tail tail{0, Bytes{1, 2, 3}, true};
  EXPECT_EQ(BuildSignedIngestRecord(engine, tail, Insert(7, 0xA1))
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(BuildSignedIngestRecordTest, UpdateContinuesAndBootstraps) {
  ChecksumEngine engine;
  // Bootstrap: no chain yet -> seq 0.
  auto first = BuildSignedIngestRecord(engine, {}, Update(7, 0xA1, 0xA2));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->seq_id, 0u);
  ASSERT_EQ(first->inputs.size(), 1u);
  EXPECT_EQ(first->inputs[0].object_id, 7u);
  // Continuation: tail at seq 4 -> seq 5.
  LocalChainState::Tail tail{4, first->checksum, true};
  auto next = BuildSignedIngestRecord(engine, tail, Update(7, 0xA2, 0xA3));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->seq_id, 5u);
}

TEST(BuildSignedIngestRecordTest, AggregateValidatesInputs) {
  ChecksumEngine engine;
  IngestRequest agg;
  agg.op = OperationType::kAggregate;
  agg.object = 9;
  agg.post_hash = D(0xC1);
  agg.participant = &P(0);
  agg.inputs = {ObjectState{3, D(0x31)}, ObjectState{2, D(0x21)}};
  agg.input_prev_checksums = {Bytes{}, Bytes{}};
  agg.aggregate_seq = 1;
  // Descending inputs violate the global total order.
  EXPECT_EQ(BuildSignedIngestRecord(engine, {}, agg).status().code(),
            StatusCode::kInvalidArgument);
  std::swap(agg.inputs[0], agg.inputs[1]);
  auto rec = BuildSignedIngestRecord(engine, {}, agg);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->seq_id, 1u);
  EXPECT_EQ(rec->inputs.size(), 2u);
}

TEST(BuildSignedIngestRecordTest, NonAggregateWithInputsRejected) {
  ChecksumEngine engine;
  IngestRequest bad = Insert(7, 0xA1);
  bad.inputs.push_back(ObjectState{1, D(0x11)});
  EXPECT_EQ(BuildSignedIngestRecord(engine, {}, bad).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// ShardedProvenanceStore
// ---------------------------------------------------------------------------

TEST(ShardedProvenanceStoreTest, ShardOfIsStableAndInRange) {
  for (ObjectId id = 1; id <= 200; ++id) {
    size_t s = ShardedProvenanceStore::ShardOf(id, 4);
    EXPECT_LT(s, 4u);
    EXPECT_EQ(s, ShardedProvenanceStore::ShardOf(id, 4)) << id;
  }
  // One shard degenerates to everything-in-shard-0.
  EXPECT_EQ(ShardedProvenanceStore::ShardOf(12345, 1), 0u);
}

TEST(ShardedProvenanceStoreTest, ShardDirNamesAreZeroPadded) {
  EXPECT_EQ(ShardedProvenanceStore::ShardDirName("/w", 0), "/w/shard-000");
  EXPECT_EQ(ShardedProvenanceStore::ShardDirName("/w", 12), "/w/shard-012");
}

// ---------------------------------------------------------------------------
// IngestPipeline
// ---------------------------------------------------------------------------

TEST(IngestPipelineTest, RoutesObjectsToTheirShardAndVerifies) {
  std::string root = FreshDir("route");
  IngestOptions options;
  options.num_shards = 4;
  options.max_batch_records = 8;
  auto pipeline = IngestPipeline::Open(Env::Default(), root, options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

  std::vector<ObjectId> ids = {11, 12, 13, 14, 15, 16};
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_TRUE(
        (*pipeline)->Submit(Insert(ids[i], static_cast<uint8_t>(i))).ok());
    ASSERT_TRUE((*pipeline)
                    ->Submit(Update(ids[i], static_cast<uint8_t>(i),
                                    static_cast<uint8_t>(i + 100)))
                    .ok());
  }
  ASSERT_TRUE((*pipeline)->Drain().ok());
  EXPECT_EQ((*pipeline)->committed(), ids.size() * 2);

  const ShardedProvenanceStore& store = (*pipeline)->store();
  EXPECT_EQ(store.record_count(), ids.size() * 2);
  for (ObjectId id : ids) {
    size_t s = ShardedProvenanceStore::ShardOf(id, 4);
    EXPECT_EQ(store.shard(s).ChainOf(id).size(), 2u);
    EXPECT_EQ(store.ChainRecords(id).size(), 2u);
  }
  auto report = store.VerifyChains(TestPki::Instance().registry());
  EXPECT_TRUE(report.ok()) << report.ToString();
  ASSERT_TRUE((*pipeline)->Close().ok());
}

TEST(IngestPipelineTest, GroupCommitDefersDurabilityAndCommitUntilFlush) {
  std::string root = FreshDir("batch");
  IngestOptions options;
  options.num_shards = 1;
  options.max_batch_records = 4;
  auto pipeline = IngestPipeline::Open(Env::Default(), root, options);
  ASSERT_TRUE(pipeline.ok());

  // Three submits: below the batch threshold, so nothing is committed
  // (write-ahead: commit only after the batch's fsync).
  ASSERT_TRUE((*pipeline)->Submit(Insert(1, 0x01)).ok());
  ASSERT_TRUE((*pipeline)->Submit(Insert(2, 0x02)).ok());
  ASSERT_TRUE((*pipeline)->Submit(Insert(3, 0x03)).ok());
  EXPECT_EQ((*pipeline)->store().record_count(), 0u);
  EXPECT_EQ((*pipeline)->shard_wal(0)->appended_records(), 0u);

  // The fourth submit fills the batch: one flush, one durability point.
  uint64_t syncs_before = (*pipeline)->shard_wal(0)->synced_records();
  ASSERT_TRUE((*pipeline)->Submit(Insert(4, 0x04)).ok());
  EXPECT_EQ((*pipeline)->store().record_count(), 4u);
  EXPECT_EQ((*pipeline)->shard_wal(0)->synced_records(), syncs_before + 4);
  ASSERT_TRUE((*pipeline)->Close().ok());
}

TEST(IngestPipelineTest, SyncEveryRecordCommitsImmediately) {
  std::string root = FreshDir("synceach");
  IngestOptions options;
  options.num_shards = 1;
  options.sync_every_record = true;
  auto pipeline = IngestPipeline::Open(Env::Default(), root, options);
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE((*pipeline)->Submit(Insert(1, 0x01)).ok());
  EXPECT_EQ((*pipeline)->store().record_count(), 1u);
  EXPECT_EQ((*pipeline)->shard_wal(0)->synced_records(), 1u);
  ASSERT_TRUE((*pipeline)->Close().ok());
}

TEST(IngestPipelineTest, ReopenContinuesChainsFromRecoveredTails) {
  std::string root = FreshDir("reopen");
  IngestOptions options;
  options.num_shards = 2;
  options.max_batch_records = 3;
  {
    auto pipeline = IngestPipeline::Open(Env::Default(), root, options);
    ASSERT_TRUE(pipeline.ok());
    ASSERT_TRUE((*pipeline)->Submit(Insert(21, 0x01)).ok());
    ASSERT_TRUE((*pipeline)->Submit(Insert(22, 0x02)).ok());
    ASSERT_TRUE((*pipeline)->Close().ok());
  }
  {
    std::vector<storage::WalRecoveryReport> reports;
    auto pipeline =
        IngestPipeline::Open(Env::Default(), root, options, &reports);
    ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    EXPECT_EQ(reports.size(), 2u);
    EXPECT_EQ((*pipeline)->store().record_count(), 2u);
    // Chain continuation across restart: the update must get seq 1 and
    // link against the recovered checksum.
    ASSERT_TRUE((*pipeline)->Submit(Update(21, 0x01, 0x11)).ok());
    ASSERT_TRUE((*pipeline)->Submit(Update(22, 0x02, 0x12)).ok());
    ASSERT_TRUE((*pipeline)->Close().ok());
    auto report =
        (*pipeline)->store().VerifyChains(TestPki::Instance().registry());
    EXPECT_TRUE(report.ok()) << report.ToString();
  }
  auto recovered =
      ShardedProvenanceStore::Recover(Env::Default(), root, 2);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->record_count(), 4u);
  EXPECT_EQ(recovered->ChainRecords(21).back()->seq_id, 1u);
  auto report = recovered->VerifyChains(TestPki::Instance().registry());
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(IngestPipelineTest, MergedStoreFeedsSequentialMachinery) {
  std::string root = FreshDir("merge");
  IngestOptions options;
  options.num_shards = 3;
  auto pipeline = IngestPipeline::Open(Env::Default(), root, options);
  ASSERT_TRUE(pipeline.ok());
  for (ObjectId id = 31; id <= 36; ++id) {
    ASSERT_TRUE(
        (*pipeline)->Submit(Insert(id, static_cast<uint8_t>(id))).ok());
  }
  ASSERT_TRUE((*pipeline)->Close().ok());
  auto merged = (*pipeline)->store().MergedStore();
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->record_count(), 6u);
  for (ObjectId id = 31; id <= 36; ++id) {
    EXPECT_EQ(merged->ChainOf(id).size(), 1u);
  }
}

TEST(IngestPipelineTest, FlushErrorPoisonsThePipeline) {
  std::string root = FreshDir("poison");
  FaultInjectionEnv env(Env::Default());
  IngestOptions options;
  options.num_shards = 1;
  options.max_batch_records = 2;
  auto pipeline = IngestPipeline::Open(&env, root, options);
  ASSERT_TRUE(pipeline.ok());

  // Fail the batch's fsync. The flush errors, nothing is committed, and
  // the pipeline stays poisoned with the same status.
  env.ScheduleSyncFailure(1);
  ASSERT_TRUE((*pipeline)->Submit(Insert(1, 0x01)).ok());
  Status flush = (*pipeline)->Submit(Insert(2, 0x02));
  EXPECT_FALSE(flush.ok());
  EXPECT_EQ((*pipeline)->store().record_count(), 0u);
  env.ClearFaults();
  Status later = (*pipeline)->Submit(Insert(3, 0x03));
  EXPECT_FALSE(later.ok());
  EXPECT_EQ(later.code(), flush.code());
  EXPECT_EQ((*pipeline)->Drain().code(), flush.code());
}

TEST(IngestPipelineTest, SubmitValidatesAggregateShape) {
  std::string root = FreshDir("validate");
  auto pipeline = IngestPipeline::Open(Env::Default(), root, IngestOptions());
  ASSERT_TRUE(pipeline.ok());
  IngestRequest bad;
  bad.op = OperationType::kAggregate;
  bad.object = 5;
  bad.post_hash = D(0x55);
  bad.participant = &P(0);
  EXPECT_EQ((*pipeline)->Submit(bad).code(), StatusCode::kInvalidArgument);
  bad.inputs = {ObjectState{1, D(0x11)}};
  EXPECT_EQ((*pipeline)->Submit(bad).code(), StatusCode::kInvalidArgument);
  // Validation failures do not poison the pipeline.
  EXPECT_TRUE((*pipeline)->Submit(Insert(6, 0x06)).ok());
  ASSERT_TRUE((*pipeline)->Close().ok());
}

// Parallel signing must be bit-identical to sequential signing: RSA
// signing is deterministic and chain groups sign in seqID order
// regardless of which worker runs them. (Also the TSan target for the
// ingest pipeline's concurrency.)
TEST(IngestPipelineParallelTest, ParallelSigningMatchesSequential) {
  std::vector<IngestRequest> requests;
  for (ObjectId id = 41; id <= 48; ++id) {
    requests.push_back(Insert(id, static_cast<uint8_t>(id),
                              static_cast<size_t>(id % 4)));
    requests.push_back(Update(id, static_cast<uint8_t>(id),
                              static_cast<uint8_t>(id + 100),
                              static_cast<size_t>((id + 1) % 4)));
  }

  auto run = [&](int threads, const std::string& tag) {
    std::string root = FreshDir("par_" + tag);
    IngestOptions options;
    options.num_shards = 2;
    options.max_batch_records = 16;
    options.signing.num_threads = threads;
    auto pipeline = IngestPipeline::Open(Env::Default(), root, options);
    EXPECT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    for (size_t i = 0; i < requests.size(); ++i) {
      EXPECT_TRUE((*pipeline)->Submit(requests[i]).ok());
    }
    EXPECT_TRUE((*pipeline)->Close().ok());
    std::vector<Bytes> encoded;
    for (ObjectId id = 41; id <= 48; ++id) {
      for (const ProvenanceRecord* rec : (*pipeline)->store().ChainRecords(id)) {
        encoded.push_back(EncodeRecord(*rec));
      }
    }
    return encoded;
  };

  std::vector<Bytes> sequential = run(1, "seq");
  std::vector<Bytes> parallel = run(4, "par");
  ASSERT_EQ(sequential.size(), parallel.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i], parallel[i]) << "record " << i << " differs";
  }
}

// The pipeline is thread-safe-serialized: every public operation takes the
// pipeline-wide mutex. Four producers hammer Submit from the pool at once;
// each owns a disjoint id range so per-object record order (Insert before
// Update) is program order within one producer, and the final store must
// contain every record and verify clean. ("Concurrent" in the name opts
// this test into the TSan CI stage's filter.)
TEST(IngestPipelineConcurrentTest, ConcurrentProducersSerializeSafely) {
  std::string root = FreshDir("concurrent");
  IngestOptions options;
  options.num_shards = 4;
  options.max_batch_records = 8;
  auto pipeline = IngestPipeline::Open(Env::Default(), root, options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

  constexpr int kProducers = 4;
  constexpr ObjectId kPerProducer = 16;
  ThreadPool pool(kProducers);
  std::vector<std::future<Status>> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.push_back(pool.Submit([&pipeline, p]() -> Status {
      for (ObjectId i = 0; i < kPerProducer; ++i) {
        ObjectId id = 1000 + static_cast<ObjectId>(p) * kPerProducer + i;
        uint8_t tag = static_cast<uint8_t>(id);
        Status s = (*pipeline)->Submit(Insert(id, tag));
        if (!s.ok()) return s;
        s = (*pipeline)->Submit(
            Update(id, tag, static_cast<uint8_t>(tag + 100)));
        if (!s.ok()) return s;
      }
      return Status::OK();
    }));
  }
  for (auto& f : producers) EXPECT_TRUE(f.get().ok());

  ASSERT_TRUE((*pipeline)->Drain().ok());
  EXPECT_EQ((*pipeline)->committed(),
            static_cast<uint64_t>(kProducers) * kPerProducer * 2);
  const ShardedProvenanceStore& store = (*pipeline)->store();
  EXPECT_EQ(store.record_count(),
            static_cast<uint64_t>(kProducers) * kPerProducer * 2);
  auto report = store.VerifyChains(TestPki::Instance().registry());
  EXPECT_TRUE(report.ok()) << report.ToString();
  ASSERT_TRUE((*pipeline)->Close().ok());
}

}  // namespace
}  // namespace provdb::provenance
