#include "provenance/tracked_relational.h"

#include <gtest/gtest.h>

#include "provenance/query.h"
#include "provenance/verifier.h"
#include "testing/test_pki.h"

namespace provdb::provenance {
namespace {

using provdb::testing::TestPki;
using storage::ObjectId;
using storage::Value;

class TrackedRelationalTest : public ::testing::Test {
 protected:
  TrackedRelationalTest() : db_("trial", p(1)) {}

  const crypto::Participant& p(int i) {
    return TestPki::Instance().participant(i - 1);
  }

  ObjectId MakePatients() {
    auto t = db_.CreateTable(p(1), "patients", {"age", "weight"});
    EXPECT_TRUE(t.ok());
    return *t;
  }

  VerificationReport Verify(ObjectId subject) {
    auto bundle = db_.Export(subject);
    EXPECT_TRUE(bundle.ok());
    ProvenanceVerifier verifier(&TestPki::Instance().registry());
    return verifier.Verify(*bundle);
  }

  TrackedRelationalDatabase db_;
};

TEST_F(TrackedRelationalTest, CreationEmitsProvenance) {
  ObjectId table = MakePatients();
  (void)table;
  // Root insert + table insert (with inherited root record) = 3 records.
  EXPECT_EQ(db_.tracked().provenance().record_count(), 3u);
  EXPECT_TRUE(Verify(db_.root()).ok());
}

TEST_F(TrackedRelationalTest, DuplicateTableAndBadSchemaRejected) {
  MakePatients();
  EXPECT_FALSE(db_.CreateTable(p(1), "patients", {"x"}).ok());
  EXPECT_FALSE(db_.CreateTable(p(1), "empty", {}).ok());
}

TEST_F(TrackedRelationalTest, InsertRowIsOneComplexOperation) {
  ObjectId table = MakePatients();
  uint64_t before = db_.tracked().provenance().record_count();
  auto row = db_.InsertRow(p(2), table, {Value::Int(44), Value::Double(81)});
  ASSERT_TRUE(row.ok());
  // Row + 2 cells (inserts) + table + root (inherited) = 5 records.
  EXPECT_EQ(db_.tracked().provenance().record_count() - before, 5u);
  EXPECT_EQ(*db_.GetCell(*row, 0), Value::Int(44));
  EXPECT_TRUE(Verify(db_.root()).ok());
}

TEST_F(TrackedRelationalTest, InsertRowArityChecked) {
  ObjectId table = MakePatients();
  EXPECT_FALSE(db_.InsertRow(p(1), table, {Value::Int(1)}).ok());
  EXPECT_FALSE(db_.InsertRow(p(1), 999, {Value::Int(1)}).ok());
  // Failure paths must leave no complex operation dangling.
  EXPECT_FALSE(db_.tracked().in_complex_operation());
}

TEST_F(TrackedRelationalTest, UpdateCellByNameAndIndex) {
  ObjectId table = MakePatients();
  auto row = db_.InsertRow(p(1), table, {Value::Int(44), Value::Double(81)});
  ASSERT_TRUE(row.ok());

  ASSERT_TRUE(db_.UpdateCell(p(2), *row, "age", Value::Int(45)).ok());
  EXPECT_EQ(*db_.GetCell(*row, 0), Value::Int(45));
  ASSERT_TRUE(db_.UpdateCell(p(2), *row, 1, Value::Double(82.5)).ok());
  EXPECT_EQ(*db_.GetCell(*row, 1), Value::Double(82.5));

  EXPECT_FALSE(db_.UpdateCell(p(2), *row, "missing", Value::Int(0)).ok());
  EXPECT_FALSE(db_.UpdateCell(p(2), *row, 7, Value::Int(0)).ok());
  EXPECT_TRUE(Verify(db_.root()).ok());
}

TEST_F(TrackedRelationalTest, UpdateInheritsUpward) {
  ObjectId table = MakePatients();
  auto row = db_.InsertRow(p(1), table, {Value::Int(44), Value::Double(81)});
  ASSERT_TRUE(row.ok());
  ASSERT_TRUE(db_.UpdateCell(p(2), *row, "age", Value::Int(45)).ok());
  // cell + row + table + root records for the single cell update.
  EXPECT_EQ(db_.tracked().last_op_metrics().checksums, 4u);
  auto latest = db_.tracked().provenance().LatestFor(table);
  ASSERT_TRUE(latest.ok());
  EXPECT_TRUE((*latest)->inherited);
  EXPECT_EQ((*latest)->participant, p(2).id());
}

TEST_F(TrackedRelationalTest, DeleteRowIsOneComplexOperation) {
  ObjectId table = MakePatients();
  auto row = db_.InsertRow(p(1), table, {Value::Int(1), Value::Double(2)});
  ASSERT_TRUE(row.ok());
  uint64_t before = db_.tracked().provenance().record_count();
  ASSERT_TRUE(db_.DeleteRow(p(2), *row).ok());
  // Only table + root survive as touched.
  EXPECT_EQ(db_.tracked().provenance().record_count() - before, 2u);
  EXPECT_FALSE(db_.tracked().tree().Contains(*row));
  EXPECT_TRUE(Verify(db_.root()).ok());
}

TEST_F(TrackedRelationalTest, LookupsAndErrors) {
  ObjectId table = MakePatients();
  EXPECT_EQ(*db_.TableId("patients"), table);
  EXPECT_FALSE(db_.TableId("missing").ok());
  EXPECT_EQ(*db_.ColumnIndex(table, "weight"), 1u);
  EXPECT_FALSE(db_.ColumnIndex(table, "nope").ok());
  EXPECT_FALSE(db_.ColumnIndex(999, "age").ok());
  EXPECT_TRUE(db_.RowsOf(table)->empty());
  EXPECT_FALSE(db_.RowsOf(999).ok());
}

TEST_F(TrackedRelationalTest, MultiParticipantTrialScenario) {
  // A compressed clinical-trial flow through the convenience API.
  ObjectId table = MakePatients();
  std::vector<ObjectId> rows;
  for (int i = 0; i < 3; ++i) {
    auto row = db_.InsertRow(p(1), table,
                             {Value::Int(30 + i), Value::Double(70 + i)});
    ASSERT_TRUE(row.ok());
    rows.push_back(*row);
  }
  ASSERT_TRUE(db_.UpdateCell(p(3), rows[1], "weight", Value::Double(99))
                  .ok());
  ASSERT_TRUE(db_.DeleteRow(p(2), rows[2]).ok());

  VerificationReport report = Verify(db_.root());
  EXPECT_TRUE(report.ok()) << report.ToString();

  // Lineage over the whole database names all three participants.
  auto summary = SummarizeLineage(db_.tracked().provenance(), db_.root());
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->participants.size(), 3u);
}

TEST_F(TrackedRelationalTest, RowOrdinalsAssignedSequentially) {
  ObjectId table = MakePatients();
  auto r0 = db_.InsertRow(p(1), table, {Value::Int(1), Value::Double(1)});
  auto r1 = db_.InsertRow(p(1), table, {Value::Int(2), Value::Double(2)});
  EXPECT_EQ((*db_.tracked().tree().GetNode(*r0))->value, Value::Int(0));
  EXPECT_EQ((*db_.tracked().tree().GetNode(*r1))->value, Value::Int(1));
}

}  // namespace
}  // namespace provdb::provenance
