#include "provenance/chain.h"

#include <gtest/gtest.h>

#include <thread>

namespace provdb::provenance {
namespace {

TEST(LocalChainStateTest, MissingTailHasExistsFalse) {
  LocalChainState chains;
  LocalChainState::Tail tail = chains.Get(7);
  EXPECT_FALSE(tail.exists);
  EXPECT_TRUE(tail.checksum.empty());
  EXPECT_EQ(chains.size(), 0u);
}

TEST(LocalChainStateTest, SetAndGet) {
  LocalChainState chains;
  chains.Set(7, 3, Bytes{1, 2, 3});
  LocalChainState::Tail tail = chains.Get(7);
  EXPECT_TRUE(tail.exists);
  EXPECT_EQ(tail.seq_id, 3u);
  EXPECT_EQ(tail.checksum, (Bytes{1, 2, 3}));
}

TEST(LocalChainStateTest, ObjectsAreIndependent) {
  LocalChainState chains;
  chains.Set(1, 5, Bytes{1});
  chains.Set(2, 9, Bytes{2});
  EXPECT_EQ(chains.Get(1).seq_id, 5u);
  EXPECT_EQ(chains.Get(2).seq_id, 9u);
  EXPECT_EQ(chains.size(), 2u);
}

TEST(LocalChainStateTest, EraseDropsChain) {
  LocalChainState chains;
  chains.Set(1, 5, Bytes{1});
  chains.Erase(1);
  EXPECT_FALSE(chains.Get(1).exists);
  chains.Erase(1);  // idempotent
}

TEST(LocalChainStateTest, OverwriteAdvancesTail) {
  LocalChainState chains;
  chains.Set(1, 0, Bytes{1});
  chains.Set(1, 1, Bytes{2});
  EXPECT_EQ(chains.Get(1).seq_id, 1u);
  EXPECT_EQ(chains.Get(1).checksum, (Bytes{2}));
}

TEST(GlobalChainStateTest, SingleSharedTail) {
  GlobalChainState global;
  EXPECT_FALSE(global.Get().exists);
  global.WithLock([](GlobalChainState& g) {
    g.Set(1, Bytes{1});
    return 0;
  });
  EXPECT_TRUE(global.Get().exists);
  EXPECT_EQ(global.Get().seq_id, 1u);
}

TEST(GlobalChainStateTest, WithLockSerializesWriters) {
  // Two threads appending through the lock never lose an increment — this
  // is the serialization bottleneck of §3.2's rejected design.
  GlobalChainState global;
  global.WithLock([](GlobalChainState& g) {
    g.Set(0, Bytes{0});
    return 0;
  });
  constexpr int kPerThread = 2000;
  auto worker = [&global]() {
    for (int i = 0; i < kPerThread; ++i) {
      global.WithLock([](GlobalChainState& g) {
        GlobalChainState::Tail tail = g.Get();
        g.Set(tail.seq_id + 1, Bytes{static_cast<uint8_t>(tail.seq_id)});
        return 0;
      });
    }
  };
  std::thread t1(worker), t2(worker);
  t1.join();
  t2.join();
  EXPECT_EQ(global.Get().seq_id, 2u * kPerThread);
}

}  // namespace
}  // namespace provdb::provenance
