#include "provenance/subtree_hasher.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace provdb::provenance {
namespace {

using storage::ObjectId;
using storage::TreeStore;
using storage::Value;

// Builds the Figure 4 example: (A,a,{B,C}), (B,b,{D}), (C,c,{}), (D,d,{}).
struct Figure4Tree {
  TreeStore tree;
  ObjectId a, b, c, d;

  Figure4Tree() {
    a = *tree.Insert(Value::String("a"));
    b = *tree.Insert(Value::String("b"), a);
    c = *tree.Insert(Value::String("c"), a);
    d = *tree.Insert(Value::String("d"), b);
  }
};

TEST(SubtreeHasherTest, LeafHashMatchesAtomicHash) {
  TreeStore tree;
  ObjectId leaf = *tree.Insert(Value::Int(7));
  SubtreeHasher hasher(&tree);
  auto subtree = hasher.HashSubtreeBasic(leaf);
  ASSERT_TRUE(subtree.ok());
  EXPECT_EQ(*subtree, hasher.HashAtomic(leaf, Value::Int(7)));
}

TEST(SubtreeHasherTest, Figure5RecursiveStructure) {
  // h_A = h((A,a,{B,C}) | h_B | h_C); h_B = h((B,b,{D}) | h_D).
  Figure4Tree fig;
  SubtreeHasher hasher(&fig.tree);
  crypto::Digest h_d = hasher.HashAtomic(fig.d, Value::String("d"));
  crypto::Digest h_c = hasher.HashAtomic(fig.c, Value::String("c"));
  crypto::Digest h_b = HashTreeNode(hasher.algorithm(), fig.b,
                                    Value::String("b"), {h_d});
  crypto::Digest h_a = HashTreeNode(hasher.algorithm(), fig.a,
                                    Value::String("a"), {h_b, h_c});
  EXPECT_EQ(*hasher.HashSubtreeBasic(fig.d), h_d);
  EXPECT_EQ(*hasher.HashSubtreeBasic(fig.b), h_b);
  EXPECT_EQ(*hasher.HashSubtreeBasic(fig.a), h_a);
}

TEST(SubtreeHasherTest, HashDependsOnObjectId) {
  // Identical values under different ids hash differently — required for
  // detecting provenance re-attribution (R5).
  TreeStore tree;
  ObjectId x = *tree.Insert(Value::Int(5));
  ObjectId y = *tree.Insert(Value::Int(5));
  SubtreeHasher hasher(&tree);
  EXPECT_NE(*hasher.HashSubtreeBasic(x), *hasher.HashSubtreeBasic(y));
}

TEST(SubtreeHasherTest, HashDependsOnValue) {
  Figure4Tree fig;
  SubtreeHasher hasher(&fig.tree);
  crypto::Digest before = *hasher.HashSubtreeBasic(fig.a);
  ASSERT_TRUE(fig.tree.Update(fig.d, Value::String("d'")).ok());
  EXPECT_NE(*hasher.HashSubtreeBasic(fig.a), before);
}

TEST(SubtreeHasherTest, HashDependsOnStructure) {
  // Moving a value from a child into the parent must change the hash even
  // if the multiset of values is unchanged.
  TreeStore t1, t2;
  ObjectId r1 = *t1.Insert(Value::String("x"));
  t1.Insert(Value::String("y"), r1).value();
  ObjectId r2 = *t2.Insert(Value::String("x"));
  ObjectId mid = *t2.Insert(Value::Null(), r2);
  t2.Insert(Value::String("y"), mid).value();
  SubtreeHasher h1(&t1), h2(&t2);
  EXPECT_NE(*h1.HashSubtreeBasic(r1), *h2.HashSubtreeBasic(r2));
}

TEST(SubtreeHasherTest, LeafInteriorDomainSeparation) {
  // A leaf whose value bytes happen to equal an interior node's encoding
  // cannot collide, thanks to the node tags.
  TreeStore tree;
  ObjectId leaf = *tree.Insert(Value::Null());
  SubtreeHasher hasher(&tree);
  crypto::Digest leaf_hash = *hasher.HashSubtreeBasic(leaf);
  crypto::Digest interior_hash =
      HashTreeNode(hasher.algorithm(), leaf, Value::Null(),
                   {crypto::Digest()});
  EXPECT_NE(leaf_hash, interior_hash);
}

TEST(SubtreeHasherTest, NodesHashedCounter) {
  Figure4Tree fig;
  SubtreeHasher hasher(&fig.tree);
  hasher.HashSubtreeBasic(fig.a).value();
  EXPECT_EQ(hasher.nodes_hashed(), 4u);
  hasher.HashSubtreeBasic(fig.a).value();
  EXPECT_EQ(hasher.nodes_hashed(), 8u);  // basic never caches
  hasher.ResetCounters();
  EXPECT_EQ(hasher.nodes_hashed(), 0u);
}

TEST(SubtreeHasherTest, MissingRootFails) {
  TreeStore tree;
  SubtreeHasher hasher(&tree);
  EXPECT_FALSE(hasher.HashSubtreeBasic(42).ok());
}

TEST(SubtreeHasherTest, AlgorithmsProduceDistinctHashes) {
  Figure4Tree fig;
  SubtreeHasher sha1(&fig.tree, crypto::HashAlgorithm::kSha1);
  SubtreeHasher sha256(&fig.tree, crypto::HashAlgorithm::kSha256);
  SubtreeHasher md5(&fig.tree, crypto::HashAlgorithm::kMd5);
  EXPECT_EQ(sha1.HashSubtreeBasic(fig.a)->size(), 20u);
  EXPECT_EQ(sha256.HashSubtreeBasic(fig.a)->size(), 32u);
  EXPECT_EQ(md5.HashSubtreeBasic(fig.a)->size(), 16u);
}

// ---------------------------------------------------------------------
// EconomicalHasher

TEST(EconomicalHasherTest, AgreesWithBasicOnFreshTree) {
  Figure4Tree fig;
  SubtreeHasher basic(&fig.tree);
  EconomicalHasher econ(&fig.tree);
  EXPECT_EQ(*econ.HashSubtree(fig.a), *basic.HashSubtreeBasic(fig.a));
}

TEST(EconomicalHasherTest, SecondHashIsFullyCached) {
  Figure4Tree fig;
  EconomicalHasher econ(&fig.tree);
  econ.HashSubtree(fig.a).value();
  EXPECT_EQ(econ.nodes_hashed(), 4u);
  econ.HashSubtree(fig.a).value();
  EXPECT_EQ(econ.nodes_hashed(), 4u);  // no additional work
}

TEST(EconomicalHasherTest, UpdateRehashesOnlyDirtyPath) {
  Figure4Tree fig;
  EconomicalHasher econ(&fig.tree);
  econ.HashSubtree(fig.a).value();
  ASSERT_TRUE(fig.tree.Update(fig.d, Value::String("d'")).ok());
  econ.Invalidate(fig.d);
  econ.ResetCounters();
  econ.HashSubtree(fig.a).value();
  // Only D, B (D's parent), and A (root) are rehashed; C is reused.
  EXPECT_EQ(econ.nodes_hashed(), 3u);
}

TEST(EconomicalHasherTest, StaysConsistentWithBasicAcrossRandomUpdates) {
  Rng rng(31);
  TreeStore tree;
  ObjectId root = *tree.Insert(Value::Int(0));
  std::vector<ObjectId> leaves;
  for (int r = 0; r < 5; ++r) {
    ObjectId row = *tree.Insert(Value::Int(r), root);
    for (int c = 0; c < 6; ++c) {
      leaves.push_back(*tree.Insert(Value::Int(c), row));
    }
  }
  SubtreeHasher basic(&tree);
  EconomicalHasher econ(&tree);
  econ.HashSubtree(root).value();
  for (int step = 0; step < 100; ++step) {
    ObjectId leaf = leaves[rng.NextBelow(leaves.size())];
    ASSERT_TRUE(
        tree.Update(leaf, Value::Int(static_cast<int64_t>(rng.NextUint64())))
            .ok());
    econ.Invalidate(leaf);
    ASSERT_EQ(*econ.HashSubtree(root), *basic.HashSubtreeBasic(root))
        << "divergence at step " << step;
  }
}

TEST(EconomicalHasherTest, InsertionHandledViaInvalidate) {
  Figure4Tree fig;
  SubtreeHasher basic(&fig.tree);
  EconomicalHasher econ(&fig.tree);
  econ.HashSubtree(fig.a).value();
  ObjectId e = *fig.tree.Insert(Value::String("e"), fig.c);
  econ.Invalidate(e);
  EXPECT_EQ(*econ.HashSubtree(fig.a), *basic.HashSubtreeBasic(fig.a));
}

TEST(EconomicalHasherTest, DeletionHandledViaForgetAndInvalidate) {
  Figure4Tree fig;
  SubtreeHasher basic(&fig.tree);
  EconomicalHasher econ(&fig.tree);
  econ.HashSubtree(fig.a).value();
  ASSERT_TRUE(fig.tree.Delete(fig.d).ok());
  econ.Forget(fig.d);
  econ.Invalidate(fig.b);
  EXPECT_EQ(*econ.HashSubtree(fig.a), *basic.HashSubtreeBasic(fig.a));
  EXPECT_FALSE(econ.CachedDigest(fig.d).ok());
}

TEST(EconomicalHasherTest, CachedDigestOnlyWhenClean) {
  Figure4Tree fig;
  EconomicalHasher econ(&fig.tree);
  EXPECT_FALSE(econ.CachedDigest(fig.a).ok());  // nothing cached yet
  econ.HashSubtree(fig.a).value();
  EXPECT_TRUE(econ.CachedDigest(fig.a).ok());
  EXPECT_TRUE(econ.CachedDigest(fig.d).ok());
  econ.Invalidate(fig.d);
  EXPECT_FALSE(econ.CachedDigest(fig.d).ok());
  EXPECT_FALSE(econ.CachedDigest(fig.a).ok());  // ancestor dirtied
  EXPECT_TRUE(econ.CachedDigest(fig.c).ok());   // sibling untouched
}

TEST(EconomicalHasherTest, PartialSubtreeHashFillsOnlyThatSubtree) {
  Figure4Tree fig;
  EconomicalHasher econ(&fig.tree);
  econ.HashSubtree(fig.b).value();
  EXPECT_EQ(econ.nodes_hashed(), 2u);  // B and D only
  EXPECT_TRUE(econ.CachedDigest(fig.b).ok());
  EXPECT_FALSE(econ.CachedDigest(fig.a).ok());
}

// Regression guard for Invalidate's early break ("already-dirty ancestor
// implies the rest of the path is dirty"). Partial-subtree HashSubtree
// calls clean interior nodes while their ancestors stay dirty; a later
// Invalidate that walks into such a region must still dirty the full path
// to the root, or a clean-but-stale root digest would be served.
TEST(EconomicalHasherTest, InvalidateInterleavedWithPartialHashes) {
  // Depth-4 chain with fan-out: root -> {g1, g2} -> rows -> leaves.
  TreeStore tree;
  ObjectId root = *tree.Insert(Value::Int(0));
  std::vector<ObjectId> groups, rows, leaves;
  for (int g = 0; g < 2; ++g) {
    ObjectId group = *tree.Insert(Value::Int(10 + g), root);
    groups.push_back(group);
    for (int r = 0; r < 3; ++r) {
      ObjectId row = *tree.Insert(Value::Int(100 + g * 10 + r), group);
      rows.push_back(row);
      for (int c = 0; c < 3; ++c) {
        leaves.push_back(*tree.Insert(Value::Int(c), row));
      }
    }
  }

  SubtreeHasher basic(&tree);
  EconomicalHasher econ(&tree);
  econ.HashSubtree(root).value();

  // Targeted interleaving: dirty a deep path, partially re-hash only the
  // middle of it (cleans group/row but leaves root dirty), then dirty a
  // sibling leaf. The second Invalidate meets an already-dirty ancestor
  // and breaks early — which is only sound if everything above it is
  // still dirty.
  ObjectId leaf0 = leaves[0];            // under rows[0] under groups[0]
  ObjectId leaf1 = leaves[1];            // same row
  ASSERT_TRUE(tree.Update(leaf0, Value::Int(-1)).ok());
  econ.Invalidate(leaf0);
  econ.HashSubtree(groups[0]).value();   // partial: cleans groups[0] down
  ASSERT_TRUE(tree.Update(leaf1, Value::Int(-2)).ok());
  econ.Invalidate(leaf1);                // hits clean row, dirty... where?
  EXPECT_EQ(*econ.HashSubtree(root), *basic.HashSubtreeBasic(root));

  // Randomized interleaving of updates, invalidations, and partial
  // hashes at every level; the root digest must always match a fresh
  // basic walk.
  Rng rng(97);
  std::vector<ObjectId> all_targets = leaves;
  all_targets.insert(all_targets.end(), rows.begin(), rows.end());
  for (int step = 0; step < 200; ++step) {
    switch (rng.NextBelow(4)) {
      case 0: {  // update + invalidate a leaf
        ObjectId leaf = leaves[rng.NextBelow(leaves.size())];
        ASSERT_TRUE(
            tree.Update(leaf,
                        Value::Int(static_cast<int64_t>(rng.NextUint64())))
                .ok());
        econ.Invalidate(leaf);
        break;
      }
      case 1: {  // partial hash of a row subtree
        econ.HashSubtree(rows[rng.NextBelow(rows.size())]).value();
        break;
      }
      case 2: {  // partial hash of a group subtree
        econ.HashSubtree(groups[rng.NextBelow(groups.size())]).value();
        break;
      }
      case 3: {  // update + invalidate an interior node
        ObjectId target = all_targets[rng.NextBelow(all_targets.size())];
        ASSERT_TRUE(
            tree.Update(target,
                        Value::Int(static_cast<int64_t>(rng.NextUint64())))
                .ok());
        econ.Invalidate(target);
        break;
      }
    }
    ASSERT_EQ(*econ.HashSubtree(root), *basic.HashSubtreeBasic(root))
        << "stale digest served at step " << step;
  }
}

// ---------------------------------------------------------------------
// Parallel basic hashing

TEST(SubtreeHasherTest, ParallelHashMatchesSequential) {
  Rng rng(11);
  TreeStore tree;
  ObjectId root = *tree.Insert(Value::Int(0));
  for (int r = 0; r < 13; ++r) {
    ObjectId row = *tree.Insert(Value::Int(r), root);
    for (int c = 0; c < 5; ++c) {
      tree.Insert(Value::Int(static_cast<int64_t>(rng.NextUint64())), row)
          .value();
    }
  }
  SubtreeHasher hasher(&tree);
  crypto::Digest sequential = *hasher.HashSubtreeBasic(root);
  ThreadPool pool(4);
  EXPECT_EQ(*hasher.HashSubtreeBasic(root, &pool), sequential);
  // Same digest and same amount of hash work either way.
  hasher.ResetCounters();
  hasher.HashSubtreeBasic(root, &pool).value();
  EXPECT_EQ(hasher.nodes_hashed(), tree.size());
}

TEST(SubtreeHasherTest, ParallelHashFallsBackWithoutPool) {
  Figure4Tree fig;
  SubtreeHasher hasher(&fig.tree);
  EXPECT_EQ(*hasher.HashSubtreeBasic(fig.a, nullptr),
            *hasher.HashSubtreeBasic(fig.a));
  EXPECT_EQ(*hasher.HashSubtreeBasic(fig.d, nullptr),
            *hasher.HashSubtreeBasic(fig.d));  // leaf: no fan-out possible
}

TEST(SubtreeHasherTest, ParallelHashMissingRootFails) {
  TreeStore tree;
  SubtreeHasher hasher(&tree);
  ThreadPool pool(2);
  EXPECT_FALSE(hasher.HashSubtreeBasic(42, &pool).ok());
}

}  // namespace
}  // namespace provdb::provenance
