#include "observability/metrics.h"

#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace provdb::observability {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  MetricsRegistry registry;
  Counter* c = registry.counter("test.counter");
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Add(41);
  EXPECT_EQ(c->value(), 42u);
}

TEST(CounterTest, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter* a = registry.counter("shared.name");
  Counter* b = registry.counter("shared.name");
  EXPECT_EQ(a, b);
  a->Increment();
  EXPECT_EQ(b->value(), 1u);
}

TEST(GaugeTest, SetAddSub) {
  MetricsRegistry registry;
  Gauge* g = registry.gauge("test.gauge");
  EXPECT_EQ(g->value(), 0);
  g->Set(10);
  g->Add(5);
  g->Sub(7);
  EXPECT_EQ(g->value(), 8);
  g->Set(-3);
  EXPECT_EQ(g->value(), -3);
}

TEST(HistogramTest, CountSumMinMax) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("test.hist");
  h->Record(10);
  h->Record(100);
  h->Record(1);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_EQ(h->sum_micros(), 111u);

  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].min_micros, 1u);
  EXPECT_EQ(snap.histograms[0].max_micros, 100u);
}

TEST(HistogramTest, BucketBoundsArePowersOfTwo) {
  EXPECT_EQ(Histogram::BucketUpperMicros(0), 1u);
  EXPECT_EQ(Histogram::BucketUpperMicros(1), 2u);
  EXPECT_EQ(Histogram::BucketUpperMicros(10), 1024u);
  EXPECT_EQ(Histogram::BucketUpperMicros(25), uint64_t{1} << 25);
}

TEST(HistogramTest, SamplesLandInTheRightBuckets) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("test.hist");
  h->Record(0);    // bucket 0: (.., 1]
  h->Record(1);    // bucket 0
  h->Record(2);    // bucket 1: (1, 2]
  h->Record(3);    // bucket 2: (2, 4]
  h->Record(5);    // bucket 3: (4, 8]
  MetricsSnapshot snap = registry.Snapshot();
  const std::vector<uint64_t>& buckets = snap.histograms[0].buckets;
  ASSERT_EQ(buckets.size(), Histogram::kNumBuckets);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(HistogramTest, OverflowBucketCatchesHugeValues) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("test.hist");
  h->Record(UINT64_MAX);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.histograms[0].buckets.back(), 1u);
  // Overflow percentile reports the last finite bound (a documented
  // underestimate), never garbage.
  EXPECT_EQ(snap.histograms[0].p99_micros,
            static_cast<double>(Histogram::BucketUpperMicros(
                Histogram::kNumBuckets - 2)));
}

TEST(HistogramTest, PercentilesInterpolateWithinOneBucket) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("test.hist");
  // 100 samples of 100us each -> all in bucket (64, 128].
  for (int i = 0; i < 100; ++i) {
    h->Record(100);
  }
  MetricsSnapshot snap = registry.Snapshot();
  const HistogramSnapshot& hs = snap.histograms[0];
  // The estimate must land inside the true bucket's bounds.
  EXPECT_GT(hs.p50_micros, 64.0);
  EXPECT_LE(hs.p50_micros, 128.0);
  EXPECT_GT(hs.p99_micros, hs.p50_micros);
  EXPECT_LE(hs.p99_micros, 128.0);
}

TEST(HistogramTest, PercentilesOrderAcrossBuckets) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("test.hist");
  // 90 fast samples, 10 slow ones: p50 fast, p99 slow.
  for (int i = 0; i < 90; ++i) h->Record(10);
  for (int i = 0; i < 10; ++i) h->Record(10000);
  MetricsSnapshot snap = registry.Snapshot();
  const HistogramSnapshot& hs = snap.histograms[0];
  EXPECT_LE(hs.p50_micros, 16.0);
  EXPECT_GT(hs.p99_micros, 8192.0);
  EXPECT_LE(hs.p50_micros, hs.p95_micros);
  EXPECT_LE(hs.p95_micros, hs.p99_micros);
}

TEST(RegistryTest, DisabledRegistryRecordsNothing) {
  MetricsRegistry registry;
  Counter* c = registry.counter("test.counter");
  Gauge* g = registry.gauge("test.gauge");
  Histogram* h = registry.histogram("test.hist");
  registry.set_enabled(false);
  c->Increment();
  g->Set(99);
  h->Record(1000);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->count(), 0u);
  // Re-enabling resumes recording on the same instruments.
  registry.set_enabled(true);
  c->Increment();
  EXPECT_EQ(c->value(), 1u);
}

TEST(RegistryTest, DisabledTimerSkipsRecording) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("test.hist");
  registry.set_enabled(false);
  {
    ScopedLatencyTimer timer(h);
  }
  EXPECT_EQ(h->count(), 0u);
  {
    ScopedLatencyTimer null_timer(nullptr);  // must be inert, not crash
  }
}

TEST(RegistryTest, ScopedTimerRecordsOneSample) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("test.hist");
  {
    ScopedLatencyTimer timer(h);
  }
  EXPECT_EQ(h->count(), 1u);
}

TEST(RegistryTest, ResetZeroesEverything) {
  MetricsRegistry registry;
  Counter* c = registry.counter("test.counter");
  Gauge* g = registry.gauge("test.gauge");
  Histogram* h = registry.histogram("test.hist");
  c->Add(5);
  g->Set(7);
  h->Record(123);
  registry.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->count(), 0u);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.histograms[0].min_micros, 0u);
  EXPECT_EQ(snap.histograms[0].max_micros, 0u);
}

TEST(RegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.counter("z.last");
  registry.counter("a.first");
  registry.counter("m.middle");
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "a.first");
  EXPECT_EQ(snap.counters[1].first, "m.middle");
  EXPECT_EQ(snap.counters[2].first, "z.last");
}

TEST(RegistryTest, SnapshotJsonContainsAllSections) {
  MetricsRegistry registry;
  registry.counter("c.one")->Add(7);
  registry.gauge("g.one")->Set(-2);
  registry.histogram("h.one")->Record(50);
  std::string json = registry.SnapshotJson();
  EXPECT_NE(json.find("\"counters\":{\"c.one\":7}"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{\"g.one\":-2}"), std::string::npos);
  EXPECT_NE(json.find("\"h.one\":{\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"p50_us\":"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(RegistryTest, SnapshotTextListsEveryInstrument) {
  MetricsRegistry registry;
  registry.counter("c.one")->Add(7);
  registry.gauge("g.one")->Set(3);
  registry.histogram("h.one")->Record(50);
  std::string text = registry.SnapshotText();
  EXPECT_NE(text.find("c.one"), std::string::npos);
  EXPECT_NE(text.find("g.one"), std::string::npos);
  EXPECT_NE(text.find("h.one"), std::string::npos);
}

TEST(RegistryTest, GlobalRegistryIsASingleton) {
  MetricsRegistry& a = MetricsRegistry::Global();
  MetricsRegistry& b = GlobalMetrics();
  EXPECT_EQ(&a, &b);
}

// Exercised under `tools/ci.sh tsan`: concurrent recording through every
// instrument type must be race-free and, for counters, exact.
TEST(RegistryTest, ConcurrentRecordingIsExact) {
  MetricsRegistry registry;
  Counter* c = registry.counter("test.counter");
  Gauge* g = registry.gauge("test.gauge");
  Histogram* h = registry.histogram("test.hist");

  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  ThreadPool pool(kThreads);
  std::vector<std::future<void>> tasks;
  tasks.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    tasks.push_back(pool.Submit([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        g->Add(1);
        h->Record(static_cast<uint64_t>(i % 512));
      }
    }));
  }
  for (auto& task : tasks) {
    task.get();
  }
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(g->value(), int64_t{kThreads} * kPerThread);
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

// Registration racing with recording (a component constructed while
// another thread records) must also be clean.
TEST(RegistryTest, ConcurrentRegistrationAndRecording) {
  MetricsRegistry registry;
  Counter* shared = registry.counter("contended.name");
  ThreadPool pool(4);
  std::vector<std::future<void>> tasks;
  for (int t = 0; t < 4; ++t) {
    tasks.push_back(pool.Submit([&registry, shared] {
      for (int i = 0; i < 1000; ++i) {
        Counter* again = registry.counter("contended.name");
        again->Increment();
        (void)shared->value();
      }
    }));
  }
  for (auto& task : tasks) {
    task.get();
  }
  EXPECT_EQ(shared->value(), 4000u);
}

}  // namespace
}  // namespace provdb::observability
