// Pins the zero-allocation guarantee of the observability hot path: once
// an instrument is registered, recording into it — and constructing
// disabled TraceSpans — must never touch the heap. The pin is a global
// operator new/delete override counting every allocation, which is why
// this file lives in its own test binary (observability_alloc_test): the
// override is process-wide and would distort other suites.

#include <atomic>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "common/epoch.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "provenance/provenance_store.h"
#include "provenance/tracked_database.h"
#include "testing/test_pki.h"

namespace {

std::atomic<uint64_t> g_allocations{0};

uint64_t AllocationCount() {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace

void* operator new(size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace provdb::observability {
namespace {

TEST(AllocTest, RecordingAllocatesNothing) {
  MetricsRegistry registry;
  // Registration may allocate — it happens once, at construction time.
  Counter* c = registry.counter("alloc.counter");
  Gauge* g = registry.gauge("alloc.gauge");
  Histogram* h = registry.histogram("alloc.hist");

  uint64_t before = AllocationCount();
  for (int i = 0; i < 1000; ++i) {
    c->Increment();
    c->Add(3);
    g->Set(i);
    g->Add(1);
    h->Record(static_cast<uint64_t>(i));
    ScopedLatencyTimer timer(h);
  }
  EXPECT_EQ(AllocationCount(), before);
}

TEST(AllocTest, DisabledRecordingAllocatesNothing) {
  MetricsRegistry registry;
  Counter* c = registry.counter("alloc.counter");
  Histogram* h = registry.histogram("alloc.hist");
  registry.set_enabled(false);

  uint64_t before = AllocationCount();
  for (int i = 0; i < 1000; ++i) {
    c->Increment();
    h->Record(static_cast<uint64_t>(i));
    ScopedLatencyTimer timer(h);
  }
  EXPECT_EQ(AllocationCount(), before);
}

TEST(AllocTest, DisabledTraceSpansAllocateNothing) {
  ASSERT_FALSE(TraceSink::enabled());
  uint64_t before = AllocationCount();
  for (int i = 0; i < 1000; ++i) {
    TraceSpan span("alloc.span");
  }
  EXPECT_EQ(AllocationCount(), before);
}

// The record-insert path itself allocates (payloads, records) — the pin
// is that its allocation count is *identical* with metrics enabled and
// disabled, i.e. the instrumentation contributes zero allocations.
TEST(AllocTest, InsertPathAllocationsUnchangedByMetrics) {
  using provdb::testing::TestPki;
  const crypto::Participant& p = TestPki::Instance().participant(0);

  auto count_inserts = [&](bool metrics_enabled) {
    GlobalMetrics().set_enabled(metrics_enabled);
    provenance::TrackedDatabase db;
    // Warm up allocators / lazily-built state outside the window.
    EXPECT_TRUE(db.Insert(p, storage::Value::Int(0)).ok());
    uint64_t before = AllocationCount();
    for (int i = 1; i <= 50; ++i) {
      EXPECT_TRUE(db.Insert(p, storage::Value::Int(i)).ok());
    }
    GlobalMetrics().set_enabled(true);
    return AllocationCount() - before;
  };

  uint64_t with_metrics = count_inserts(true);
  uint64_t without_metrics = count_inserts(false);
  EXPECT_EQ(with_metrics, without_metrics);
  EXPECT_GT(with_metrics, 0u);  // sanity: the pin is actually measuring
}

// The snapshot-publish hook sits inside the ingest group-commit critical
// section, so PublishSnapshot() must never allocate: the version skeleton
// is preallocated by the mutation that dirtied the store (MarkDirty), and
// publish itself is POD fills + one atomic store + one intrusive retire +
// one epoch advance (DESIGN.md §16).
TEST(AllocTest, SnapshotPublishHookAllocatesNothing) {
  using provenance::ObjectState;
  using provenance::OperationType;
  using provenance::ProvenanceRecord;
  using provenance::ProvenanceStore;

  auto record = [](storage::ObjectId object, provenance::SeqId seq) {
    ProvenanceRecord rec;
    rec.seq_id = seq;
    rec.participant = 1;
    rec.op = OperationType::kInsert;
    rec.output = ObjectState{
        object, crypto::Digest::FromBytes(Bytes(20, uint8_t(seq + 1)))};
    rec.checksum = Bytes(128, uint8_t(seq + 1));
    return rec;
  };

  EpochDomain domain;
  ProvenanceStore store;
  store.AttachEpochDomain(&domain);
  // Warm up: first mutation + publish build the initial version chain.
  ASSERT_TRUE(store.AddRecord(record(1, 0)).ok());
  store.PublishSnapshot();

  for (provenance::SeqId seq = 1; seq <= 50; ++seq) {
    // The mutation may allocate (records, trie path copies, the next
    // spare version); the publish point itself must not.
    ASSERT_TRUE(store.AddRecord(record(seq + 1, 0)).ok());
    uint64_t before = AllocationCount();
    store.PublishSnapshot();
    EXPECT_EQ(AllocationCount(), before);
    // Re-publishing with nothing dirty is a no-op and equally clean.
    store.PublishSnapshot();
    EXPECT_EQ(AllocationCount(), before);
  }
  // Reclaiming the retired backlog is intrusive list surgery — deletes
  // only, no news.
  domain.Advance();
  uint64_t before = AllocationCount();
  EXPECT_GT(domain.Collect(), 0u);
  EXPECT_EQ(AllocationCount(), before);
}

}  // namespace
}  // namespace provdb::observability
