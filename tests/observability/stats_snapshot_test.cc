// Integration check for the observability layer: one workload that
// touches every instrumented subsystem (checksum signing, subtree
// hashing, WAL append/sync/recovery, verification, auditing, the thread
// pool) must populate the global registry, and every instrument name the
// process ever registers must be documented in docs/OBSERVABILITY.md —
// the same invariant tools/check_metrics_docs.sh enforces statically in
// CI, pinned here dynamically against the real registry.

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "observability/metrics.h"
#include "provenance/auditor.h"
#include "provenance/tracked_database.h"
#include "provenance/verifier.h"
#include "storage/env.h"
#include "storage/wal.h"
#include "testing/test_pki.h"

namespace provdb::observability {
namespace {

using provdb::testing::TestPki;
using storage::ObjectId;
using storage::Value;

uint64_t CounterValue(const MetricsSnapshot& snap, const std::string& name) {
  for (const auto& [counter_name, value] : snap.counters) {
    if (counter_name == name) return value;
  }
  ADD_FAILURE() << "counter " << name << " not registered";
  return 0;
}

const HistogramSnapshot* FindHistogram(const MetricsSnapshot& snap,
                                       const std::string& name) {
  for (const HistogramSnapshot& h : snap.histograms) {
    if (h.name == name) return &h;
  }
  ADD_FAILURE() << "histogram " << name << " not registered";
  return nullptr;
}

class StatsSnapshotTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GlobalMetrics().Reset();

    const crypto::Participant& p1 = TestPki::Instance().participant(0);
    const crypto::Participant& p2 = TestPki::Instance().participant(1);
    // Per-process directory: ctest runs each TEST_F as its own process,
    // concurrently, and each process replays this suite setup. A shared
    // path would race; stale segments would skew the recovery counts.
    std::string dir = ::testing::TempDir() + "/stats_snapshot_wal." +
                      std::to_string(::getpid());
    std::filesystem::remove_all(dir);

    provenance::TrackedDatabase db;
    auto wal = storage::WalWriter::Open(storage::Env::Default(), dir);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    ASSERT_TRUE(db.AttachWal(&*wal).ok());

    auto a = db.Insert(p1, Value::Int(1));
    auto b = db.Insert(p1, Value::Int(2));
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_TRUE(db.Update(p2, *a, Value::Int(3)).ok());
    auto agg = db.Aggregate(p2, {*a, *b}, Value::String("agg"));
    ASSERT_TRUE(agg.ok());
    ASSERT_TRUE(db.SyncWal().ok());

    auto bundle = db.ExportForRecipient(*agg);
    ASSERT_TRUE(bundle.ok());
    provenance::ProvenanceVerifier verifier(&TestPki::Instance().registry());
    EXPECT_TRUE(verifier.Verify(*bundle).ok());

    provenance::StoreAuditor auditor(&TestPki::Instance().registry(),
                                     crypto::HashAlgorithm::kSha1,
                                     ParallelismConfig{4});
    EXPECT_TRUE(auditor.Audit(db.provenance(), db.tree()).ok());

    storage::WalRecoveryReport report;
    auto restored = provenance::ProvenanceStore::RecoverFromWal(
        storage::Env::Default(), dir, &report);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_TRUE(report.clean());
    std::filesystem::remove_all(dir);
  }
};

TEST_F(StatsSnapshotTest, WorkloadPopulatesEverySubsystem) {
  MetricsSnapshot snap = GlobalMetrics().Snapshot();

  // Checksums: 2 inserts + 1 explicit update (+ inherited copies) + 1
  // aggregate were all signed.
  EXPECT_GT(CounterValue(snap, "checksum.payload.insert"), 0u);
  EXPECT_GT(CounterValue(snap, "checksum.payload.update"), 0u);
  EXPECT_GT(CounterValue(snap, "checksum.payload.aggregate"), 0u);
  EXPECT_GT(CounterValue(snap, "checksum.sign.count"), 0u);

  // Hashing, WAL persistence, recovery.
  EXPECT_GT(CounterValue(snap, "hash.nodes_hashed"), 0u);
  EXPECT_GT(CounterValue(snap, "wal.appends"), 0u);
  EXPECT_GT(CounterValue(snap, "wal.append_bytes"), 0u);
  EXPECT_GT(CounterValue(snap, "wal.syncs"), 0u);
  EXPECT_EQ(CounterValue(snap, "wal.recovery.records"),
            CounterValue(snap, "wal.appends"));
  EXPECT_EQ(CounterValue(snap, "wal.recovery.salvages"), 0u);

  // Verification: one bundle verify plus the audit's chain sweep; the
  // clean workload has issues == 0 but signatures and records > 0.
  EXPECT_GT(CounterValue(snap, "verify.runs"), 0u);
  EXPECT_GT(CounterValue(snap, "verify.chains"), 0u);
  EXPECT_GT(CounterValue(snap, "verify.records"), 0u);
  EXPECT_GT(CounterValue(snap, "verify.signatures.ok"), 0u);
  EXPECT_EQ(CounterValue(snap, "verify.signatures.bad"), 0u);
  EXPECT_EQ(CounterValue(snap, "verify.issues"), 0u);

  // Audit sweep (ran with a 4-thread pool, so the pool worked too).
  EXPECT_GT(CounterValue(snap, "audit.runs"), 0u);
  EXPECT_GT(CounterValue(snap, "audit.live_checks"), 0u);
  EXPECT_EQ(CounterValue(snap, "audit.issues"), 0u);
  EXPECT_GT(CounterValue(snap, "threadpool.tasks"), 0u);

  // Latency histograms saw the same operations.
  const HistogramSnapshot* sign = FindHistogram(snap, "checksum.sign.latency_us");
  ASSERT_NE(sign, nullptr);
  EXPECT_EQ(sign->count, CounterValue(snap, "checksum.sign.count"));
  const HistogramSnapshot* sync = FindHistogram(snap, "wal.sync.latency_us");
  ASSERT_NE(sync, nullptr);
  EXPECT_EQ(sync->count, CounterValue(snap, "wal.syncs"));
}

TEST_F(StatsSnapshotTest, SnapshotJsonContainsDocumentedNames) {
  std::string json = GlobalMetrics().SnapshotJson();
  for (const char* name :
       {"checksum.sign.count", "hash.nodes_hashed", "wal.appends",
        "verify.records", "audit.runs", "threadpool.tasks",
        "wal.sync.latency_us"}) {
    EXPECT_NE(json.find(std::string("\"") + name + "\""), std::string::npos)
        << name << " missing from SnapshotJson";
  }
}

// Every instrument this process registered must appear (backticked) in
// docs/OBSERVABILITY.md — the dynamic version of the CI docs cross-check.
TEST_F(StatsSnapshotTest, EveryRegisteredNameIsDocumented) {
  std::ifstream docs(std::string(PROVDB_REPO_ROOT) +
                     "/docs/OBSERVABILITY.md");
  ASSERT_TRUE(docs.is_open()) << "docs/OBSERVABILITY.md not found";
  std::stringstream buffer;
  buffer << docs.rdbuf();
  std::string doc_text = buffer.str();

  MetricsSnapshot snap = GlobalMetrics().Snapshot();
  auto check = [&](const std::string& name) {
    EXPECT_NE(doc_text.find("`" + name + "`"), std::string::npos)
        << "metric " << name
        << " is registered in src/ but undocumented in docs/OBSERVABILITY.md";
  };
  for (const auto& [name, value] : snap.counters) check(name);
  for (const auto& [name, value] : snap.gauges) check(name);
  for (const HistogramSnapshot& h : snap.histograms) check(h.name);
}

}  // namespace
}  // namespace provdb::observability
