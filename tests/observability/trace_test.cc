#include "observability/trace.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace provdb::observability {
namespace {

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

/// Pulls the integer value of `"key":N` out of a JSONL span line.
uint64_t JsonField(const std::string& line, const std::string& key) {
  std::string needle = "\"" + key + "\":";
  size_t pos = line.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in " << line;
  if (pos == std::string::npos) return 0;
  return std::strtoull(line.c_str() + pos + needle.size(), nullptr, 10);
}

class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override { TraceSink::Disable(); }

  std::string TracePath(const char* name) {
    return ::testing::TempDir() + "/" + name + ".jsonl";
  }
};

TEST_F(TraceTest, DisabledSpansAreInert) {
  ASSERT_FALSE(TraceSink::enabled());
  TraceSpan span("never.written");
  EXPECT_EQ(span.id(), 0u);
}

TEST_F(TraceTest, EnableOnUnwritablePathFails) {
  EXPECT_FALSE(TraceSink::Enable("/nonexistent-dir-xyz/trace.jsonl"));
  EXPECT_FALSE(TraceSink::enabled());
}

TEST_F(TraceTest, SpansAreWrittenAsJsonLines) {
  std::string path = TracePath("basic");
  ASSERT_TRUE(TraceSink::Enable(path));
  {
    TraceSpan span("verify.run");
    EXPECT_GT(span.id(), 0u);
  }
  TraceSink::Disable();

  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"name\":\"verify.run\""), std::string::npos);
  EXPECT_GT(JsonField(lines[0], "id"), 0u);
  EXPECT_EQ(JsonField(lines[0], "parent"), 0u);
  EXPECT_GT(JsonField(lines[0], "thread"), 0u);
}

TEST_F(TraceTest, NestedSpansRecordTheirParent) {
  std::string path = TracePath("nested");
  ASSERT_TRUE(TraceSink::Enable(path));
  uint64_t outer_id = 0;
  uint64_t inner_id = 0;
  {
    TraceSpan outer("outer");
    outer_id = outer.id();
    {
      TraceSpan inner("inner");
      inner_id = inner.id();
    }
  }
  TraceSink::Disable();

  // Spans close innermost-first, so line 0 is inner, line 1 is outer.
  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(JsonField(lines[0], "id"), inner_id);
  EXPECT_EQ(JsonField(lines[0], "parent"), outer_id);
  EXPECT_EQ(JsonField(lines[1], "id"), outer_id);
  EXPECT_EQ(JsonField(lines[1], "parent"), 0u);
}

TEST_F(TraceTest, SiblingSpansShareAParent) {
  std::string path = TracePath("siblings");
  ASSERT_TRUE(TraceSink::Enable(path));
  uint64_t outer_id = 0;
  {
    TraceSpan outer("outer");
    outer_id = outer.id();
    { TraceSpan a("first"); }
    { TraceSpan b("second"); }
  }
  TraceSink::Disable();

  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(JsonField(lines[0], "parent"), outer_id);
  EXPECT_EQ(JsonField(lines[1], "parent"), outer_id);
}

TEST_F(TraceTest, StartTimesAreEpochRelativeAndOrdered) {
  std::string path = TracePath("times");
  ASSERT_TRUE(TraceSink::Enable(path));
  { TraceSpan a("a"); }
  { TraceSpan b("b"); }
  TraceSink::Disable();

  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);
  // Epoch-relative: small offsets, not raw monotonic-clock values, and
  // the second span cannot start before the first.
  EXPECT_LE(JsonField(lines[0], "start_us"), JsonField(lines[1], "start_us"));
  EXPECT_LT(JsonField(lines[1], "start_us"), 60'000'000u);
}

TEST_F(TraceTest, InitFromEnvHonorsProvdbTrace) {
  ASSERT_EQ(::unsetenv("PROVDB_TRACE"), 0);
  EXPECT_FALSE(InitTraceFromEnv());
  EXPECT_FALSE(TraceSink::enabled());

  std::string path = TracePath("from_env");
  ASSERT_EQ(::setenv("PROVDB_TRACE", path.c_str(), 1), 0);
  EXPECT_TRUE(InitTraceFromEnv());
  EXPECT_TRUE(TraceSink::enabled());
  { TraceSpan span("env.span"); }
  TraceSink::Disable();
  ASSERT_EQ(::unsetenv("PROVDB_TRACE"), 0);

  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("env.span"), std::string::npos);
}

TEST_F(TraceTest, SpanOpenAcrossDisableIsDroppedNotCrashed) {
  std::string path = TracePath("dropped");
  ASSERT_TRUE(TraceSink::Enable(path));
  {
    TraceSpan span("straddler");
    TraceSink::Disable();
  }  // destructor runs with the sink closed
  EXPECT_TRUE(ReadLines(path).empty());
}

}  // namespace
}  // namespace provdb::observability
