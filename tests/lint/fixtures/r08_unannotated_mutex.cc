// Fixture: violates R08 (unannotated-mutex) when linted under a src/
// path. Both mutexes below are declared but nothing in the file is
// PROVDB_GUARDED_BY / PROVDB_REQUIRES against them, so the clang
// thread-safety tier has nothing to check: forgetting the lock compiles
// silently.
#include <mutex>

#include "common/thread_annotations.h"

namespace provdb {

class UnannotatedCache {
 public:
  void Put(int key) {
    MutexLock lock(&mu_);
    last_key_ = key;
  }

 private:
  mutable Mutex mu_;  // VIOLATION (no PROVDB_GUARDED_BY(mu_) user)
  int last_key_ = 0;  // should be PROVDB_GUARDED_BY(mu_)
};

class LegacyCounter {
 private:
  std::mutex raw_mu_;  // VIOLATION (raw std::mutex, also unannotated)
  int count_ = 0;
};

/// The annotated shape R08 wants — no finding.
class AnnotatedCache {
 private:
  mutable Mutex good_mu_;
  int value_ PROVDB_GUARDED_BY(good_mu_) = 0;
};

}  // namespace provdb
