// Fixture: violates R03 (raw-thread) when linted under a src/ path
// outside src/common/thread_pool.*.
#include <future>
#include <thread>

namespace provdb {

void FanOutByHand() {
  std::thread worker([] {});  // VIOLATION
  worker.join();
  auto pending = std::async([] { return 1; });  // VIOLATION
  (void)pending.get();
}

void SleepIsAllowed() {
  // std::this_thread is a different token and not banned.
  std::this_thread::yield();
}

}  // namespace provdb
