// Fixture: violates R09 (io-under-lock) when linted under a src/ path
// outside the Env layer. An fsync-class call while holding a mutex
// stalls every thread contending for it — the latency cliff the
// pipeline's group-commit design exists to avoid.
#include <mutex>

#include "common/thread_annotations.h"
#include "storage/env.h"

namespace provdb::storage {

class LockedLog {
 public:
  void AppendUnderRaiiGuard(WritableFile* file, ByteView data) {
    MutexLock lock(&mu_);
    file->Append(data).IgnoreError();  // VIOLATION (Append under MutexLock)
  }

  void SyncUnderStdGuard(WritableFile* file) {
    std::lock_guard<std::mutex> guard(raw_mu_);
    file->Sync().IgnoreError();  // VIOLATION (Sync under lock_guard)
  }

  void FlushAfterRelease(WritableFile* file) {
    {
      MutexLock lock(&mu_);
      pending_ = 0;  // bookkeeping only under the lock
    }
    file->Flush().IgnoreError();  // clean: the guard scope has closed
  }

 private:
  mutable Mutex mu_;
  uint64_t pending_ PROVDB_GUARDED_BY(mu_) = 0;
  std::mutex raw_mu_;  // lint:allow unannotated-mutex
};

}  // namespace provdb::storage
