// Fixture: no violations. Banned tokens appear only inside comments and
// string literals, which the scanner must ignore: memcmp(, rand(),
// std::thread, time(NULL).
#include <map>
#include <string>

namespace provdb::provenance {

// A comment mentioning std::unordered_map iteration is not iteration.
int DescribeBannedThings() {
  std::string text = "calling memcmp(a, b, n) or rand() or time(0) here";
  text += "or spawning std::thread; none of it is code";
  std::map<int, int> ordered;   // ordered container: iteration is fine
  int sum = 0;
  for (const auto& [k, v] : ordered) {
    sum += k + v;
  }
  return sum + static_cast<int>(text.size());
}

}  // namespace provdb::provenance
