// Fixture: no violations. Banned tokens appear only inside comments and
// string literals, which the scanner must ignore: memcmp(, rand(),
// std::thread, time(NULL), mu_.lock(), wal.Sync() under a MutexLock.
#include <map>
#include <string>

#include "common/thread_annotations.h"

namespace provdb::provenance {

// A comment mentioning a declaration like `Mutex stray_mu_;` is not a
// declaration, and `.lock()` / `.unlock()` in prose is not a call.
class AnnotatedState {
 public:
  int Get() const {
    MutexLock lock(&mu_);
    // Strings mentioning file->Sync() and wal.Append(frame) are not
    // blocking calls, even inside this live guard scope:
    const char* doc = "never file->Sync() or wal.Append(frame) here";
    (void)doc;
    return value_;
  }

 private:
  mutable Mutex mu_;
  int value_ PROVDB_GUARDED_BY(mu_) = 0;
};

// A comment mentioning std::unordered_map iteration is not iteration.
int DescribeBannedThings() {
  std::string text = "calling memcmp(a, b, n) or rand() or time(0) here";
  text += "or spawning std::thread; none of it is code";
  std::map<int, int> ordered;   // ordered container: iteration is fine
  int sum = 0;
  for (const auto& [k, v] : ordered) {
    sum += k + v;
  }
  return sum + static_cast<int>(text.size());
}

}  // namespace provdb::provenance
