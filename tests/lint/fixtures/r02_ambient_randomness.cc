// Fixture: violates R02 (banned-randomness) when linted under a src/
// path outside src/common/rng.*.
#include <cstdlib>
#include <ctime>
#include <random>

namespace provdb {

unsigned SeedFromEnvironment() {
  std::random_device entropy;                          // VIOLATION
  return entropy();
}

void ShuffleSeed() {
  std::srand(static_cast<unsigned>(std::time(nullptr)));  // VIOLATION (x2)
  (void)std::rand();                                      // VIOLATION
}

int NotRandomAtAll(int operand) {
  // Identifiers merely *containing* the banned words are fine:
  int runtime = operand;
  return runtime;
}

}  // namespace provdb
