// Fixture: every violation carries a lint:allow pragma, so the file must
// lint clean. Exercises same-line pragmas, pragma-on-previous-line, rule
// ids, and rule names.
#include <cstring>
#include <unordered_map>

namespace provdb::provenance {

void OrderInsensitiveFold(const std::unordered_map<int, int>& counters) {
  int sum = 0;
  // The fold is commutative, so iteration order cannot reach any digest.
  // lint:allow R01
  for (const auto& [key, count] : counters) {
    sum += count;
    (void)key;
  }
  (void)sum;
}

bool OrderingComparator(const unsigned char* a, const unsigned char* b) {
  return std::memcmp(a, b, 16) < 0;  // lint:allow ct-memcmp
}

class LegacyAdapter {
 public:
  void Poke() {
    // Bridging to a C API that demands a bare mutex across a callback.
    // lint:allow naked-lock
    legacy_mu_.lock();
    legacy_mu_.unlock();  // lint:allow R10
  }

 private:
  std::mutex legacy_mu_;  // lint:allow unannotated-mutex
};

}  // namespace provdb::provenance
