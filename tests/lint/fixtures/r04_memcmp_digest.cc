// Fixture: violates R04 (ct-memcmp) when linted under a src/crypto/
// path. Early-exit comparison of digest bytes is a timing oracle.
#include <cstring>

namespace provdb::crypto {

bool DigestsMatch(const unsigned char* a, const unsigned char* b,
                  unsigned long n) {
  return std::memcmp(a, b, n) == 0;  // VIOLATION
}

}  // namespace provdb::crypto
