// Fixture: violates R10 (naked-lock) when linted under a src/ path
// outside the lock plumbing. Manual lock()/unlock() pairs leak on every
// early return and exception path, and the clang thread-safety analysis
// cannot pair a manual acquire with its release across branches.
#include <mutex>

namespace provdb {

class NakedLocker {
 public:
  bool Bump(bool should) {
    mu_.lock();  // VIOLATION (manual .lock())
    if (!should) {
      return false;  // the classic leak: unlock never runs
    }
    ++count_;
    mu_.unlock();  // VIOLATION (manual .unlock())
    return true;
  }

  bool TryBump() {
    if (!mu_.try_lock()) return false;  // VIOLATION (manual .try_lock())
    ++count_;
    mu_.unlock();  // VIOLATION (manual .unlock())
    return true;
  }

  void RaiiBump() {
    // Clean: a guard declaration is not a member call, so the RAII
    // spelling `MutexLock lock(&mu_)` / std::lock_guard never fires.
    std::lock_guard<std::mutex> lock(mu_);
    ++count_;
  }

 private:
  std::mutex mu_;  // lint:allow unannotated-mutex
  int count_ = 0;
};

}  // namespace provdb
