// Fixture: violates R07 (adhoc-chrono) when linted under a src/ path
// outside src/common/stopwatch.* and src/observability/. Scattered
// std::chrono reads are timing observability cannot see, and they invite
// system_clock (wall time) into code whose digests must stay
// deterministic.
#include <chrono>  // VIOLATION (chrono)

namespace provdb::storage {

uint64_t ElapsedMicros() {
  auto start = std::chrono::steady_clock::now();  // VIOLATION (chrono)
  // ... work ...
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(  // VIOLATION
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace provdb::storage
