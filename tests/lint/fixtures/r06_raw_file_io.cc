// Fixture: violates R06 (raw-file-io) when linted under a src/ path
// outside src/storage/env.*. Raw file primitives bypass the Env layer's
// durability protocol (fsync before rename, fsync parent dir after) and
// are invisible to FaultInjectionEnv.
#include <cstdio>
#include <fstream>  // VIOLATION (fstream)

namespace provdb::storage {

bool SaveRaw(const char* path, const char* tmp) {
  std::FILE* f = std::fopen(tmp, "wb");  // VIOLATION (fopen)
  if (f == nullptr) return false;
  std::fputs("data", f);
  std::fclose(f);
  // No fsync of the file or its directory: a crash here can publish an
  // empty or half-written file under the final name.
  return std::rename(tmp, path) == 0;  // VIOLATION (rename)
}

}  // namespace provdb::storage
