// Fixture: violates R01 (nondet-iteration) when linted under a
// src/provenance/ path. Iterating a hash table while building a digest
// payload makes the digest depend on iteration order.
#include <unordered_map>
#include <unordered_set>

namespace provdb::provenance {

struct Digest {};

void SerializeStates(const std::unordered_map<int, Digest>& states) {
  for (const auto& [id, digest] : states) {  // VIOLATION: range-for
    (void)id;
    (void)digest;
  }
}

void HashMembers() {
  std::unordered_set<int> members;
  for (auto it = members.begin(); it != members.end(); ++it) {  // VIOLATION
    (void)*it;
  }
}

void LookupOnlyIsFine(const std::unordered_map<int, Digest>& index) {
  (void)index.count(42);  // point lookup: no iteration, no finding
}

}  // namespace provdb::provenance
