// Unit tests for provdb-lint: each rule R01-R10 fires on its fixture,
// pragmas suppress, and a clean file (with banned tokens hidden inside
// comments and strings) stays clean. The fixtures live on disk so they
// double as human-readable documentation of what each rule catches.

#include "lint.h"

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace provdb::lint {
namespace {

std::string ReadFixture(const std::string& name) {
  std::string path = std::string(PROVDB_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::set<std::string> RuleIds(const std::vector<Finding>& findings) {
  std::set<std::string> ids;
  for (const Finding& finding : findings) ids.insert(finding.rule_id);
  return ids;
}

TEST(LintRulesTest, R01FiresOnUnorderedIterationInDigestLayer) {
  Linter linter;
  std::string content = ReadFixture("r01_unordered_iteration.cc");
  auto findings =
      linter.LintContent("src/provenance/serialization.cc", content);
  ASSERT_EQ(findings.size(), 2u) << findings.size();
  EXPECT_EQ(findings[0].rule_id, "R01");
  EXPECT_EQ(findings[0].rule_name, "nondet-iteration");
  EXPECT_EQ(findings[1].rule_id, "R01");
  // Point lookups (`.count`) produce no third finding.

  // The same content outside the digest layer is not R01's business.
  auto elsewhere = linter.LintContent("src/workload/synthetic.cc", content);
  EXPECT_EQ(RuleIds(elsewhere).count("R01"), 0u);
}

TEST(LintRulesTest, R02FiresOnAmbientRandomnessOutsideRng) {
  Linter linter;
  std::string content = ReadFixture("r02_ambient_randomness.cc");
  auto findings = linter.LintContent("src/workload/synthetic.cc", content);
  // random_device, srand/time line, rand — at least three flagged lines.
  ASSERT_GE(findings.size(), 3u);
  for (const Finding& finding : findings) {
    EXPECT_EQ(finding.rule_id, "R02");
  }

  // The sanctioned RNG implementation itself is exempt.
  auto in_rng = linter.LintContent("src/common/rng.cc", content);
  EXPECT_TRUE(in_rng.empty());
}

TEST(LintRulesTest, R03FiresOnRawThreadsOutsideThreadPool) {
  Linter linter;
  std::string content = ReadFixture("r03_raw_thread.cc");
  auto findings = linter.LintContent("src/provenance/verifier.cc", content);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule_id, "R03");
  EXPECT_NE(findings[0].message.find("std::thread"), std::string::npos);
  EXPECT_EQ(findings[1].rule_id, "R03");
  EXPECT_NE(findings[1].message.find("std::async"), std::string::npos);

  // The pool implementation is exempt; std::this_thread never fires.
  auto in_pool = linter.LintContent("src/common/thread_pool.cc", content);
  EXPECT_TRUE(in_pool.empty());
}

TEST(LintRulesTest, R04FiresOnMemcmpInDigestLayer) {
  Linter linter;
  std::string content = ReadFixture("r04_memcmp_digest.cc");
  auto findings = linter.LintContent("src/crypto/hmac.cc", content);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule_id, "R04");
  EXPECT_EQ(findings[0].rule_name, "ct-memcmp");
  EXPECT_FALSE(findings[0].suggestion.empty());

  // memcmp outside the digest/MAC layer is allowed (e.g. src/storage/).
  auto in_storage = linter.LintContent("src/storage/value.cc", content);
  EXPECT_EQ(RuleIds(in_storage).count("R04"), 0u);
}

TEST(LintRulesTest, R05FiresOnlyWithCorpusAndHonorsBothReferenceKinds) {
  Linter no_corpus;
  auto skipped = no_corpus.LintContent("src/crypto/widget.cc", "int x;\n");
  EXPECT_TRUE(skipped.empty()) << "R05 must be skipped without a corpus";

  Linter linter;
  linter.SetTestCorpus({
      {"tests/crypto/covered_test.cc", "#include \"crypto/covered.h\"\n"},
      {"tests/storage/widget_test.cc", "TEST(Widget, Works) {}\n"},
  });

  // Uncovered file: fires at line 1, names both accepted reference kinds.
  auto findings = linter.LintContent("src/crypto/orphan.cc", "int x;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule_id, "R05");
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_NE(findings[0].message.find("orphan_test.cc"), std::string::npos);

  // Covered by a <stem>_test.cc anywhere under tests/.
  EXPECT_TRUE(
      linter.LintContent("src/storage/widget.cc", "int x;\n").empty());
  // Covered by an #include reference from a test.
  EXPECT_TRUE(
      linter.LintContent("src/crypto/covered.cc", "int x;\n").empty());
  // Suppressible with the pragma.
  EXPECT_TRUE(linter
                  .LintContent("src/crypto/orphan.cc",
                               "// lint:allow no-test\nint x;\n")
                  .empty());
  // Headers are out of scope — only .cc files need tests.
  EXPECT_TRUE(linter.LintContent("src/crypto/orphan.h", "int x;\n").empty());
}

TEST(LintRulesTest, R06FiresOnRawFileIoOutsideEnvLayer) {
  Linter linter;
  std::string content = ReadFixture("r06_raw_file_io.cc");
  auto findings = linter.LintContent("src/storage/record_log.cc", content);
  ASSERT_EQ(findings.size(), 3u);
  for (const Finding& finding : findings) {
    EXPECT_EQ(finding.rule_id, "R06");
    EXPECT_EQ(finding.rule_name, "raw-file-io");
  }
  EXPECT_NE(findings[0].message.find("fstream"), std::string::npos);
  EXPECT_NE(findings[1].message.find("fopen"), std::string::npos);
  EXPECT_NE(findings[2].message.find("rename"), std::string::npos);
  EXPECT_NE(findings[0].suggestion.find("storage::Env"), std::string::npos);

  // The Env layer itself is the sanctioned owner of these primitives.
  EXPECT_TRUE(linter.LintContent("src/storage/env.cc", content).empty());
  EXPECT_TRUE(linter.LintContent("src/storage/env.h", content).empty());
  // Tools and tests are out of scope.
  EXPECT_TRUE(linter.LintContent("tools/lint/lint.cc", content).empty());

  // Method calls and distinct identifiers never fire: RenameFile is not
  // rename, and `env->rename(...)`-style member access is left to the
  // Env API itself.
  std::string clean =
      "void F(Env* env) { Status s = env->RenameFile(\"a\", \"b\"); }\n"
      "int rename_count = 0;\n";
  EXPECT_TRUE(linter.LintContent("src/storage/wal.cc", clean).empty());
}

TEST(LintRulesTest, IngestPipelinePathCarriesNoThreadOrFileIoExemption) {
  // The sharded ingest pipeline concentrates exactly the temptations R03
  // and R06 police — hand-rolled signing threads and direct WAL file
  // writes. Pin that its path is NOT on either rule's exemption list, so
  // the real ingest_pipeline.cc must keep routing concurrency through
  // common/thread_pool and I/O through storage::Env to lint clean.
  Linter linter;
  auto r03 = linter.LintContent(
      "src/provenance/ingest_pipeline.cc",
      "void Flush() { std::thread signer(SignBatch); signer.join(); }\n");
  ASSERT_EQ(r03.size(), 1u);
  EXPECT_EQ(r03[0].rule_id, "R03");
  EXPECT_NE(r03[0].message.find("std::thread"), std::string::npos);

  auto r06 = linter.LintContent(
      "src/provenance/ingest_pipeline.cc",
      "void Flush() { std::FILE* f = std::fopen(\"wal.log\", \"ab\"); }\n");
  ASSERT_EQ(r06.size(), 1u);
  EXPECT_EQ(r06[0].rule_id, "R06");
  EXPECT_NE(r06[0].message.find("fopen"), std::string::npos);
  EXPECT_NE(r06[0].suggestion.find("storage::Env"), std::string::npos);
}

TEST(LintRulesTest, CheckpointPathCarriesNoTestOrFileIoExemption) {
  // The checkpoint subsystem writes and parses sealed snapshot files —
  // exactly where untested code (R05) or a direct filesystem call
  // bypassing Env's crash semantics (R06) would be most dangerous. Pin
  // that its path is on both rules' beats: coverage must come from a
  // real checkpoint_test.cc, and all I/O must route through storage::Env.
  Linter linter;
  linter.SetTestCorpus({
      {"tests/provenance/checkpoint_test.cc",
       "#include \"provenance/checkpoint.h\"\n"},
  });
  // Covered by its test; drop the corpus entry and the file must fire.
  EXPECT_TRUE(
      linter.LintContent("src/provenance/checkpoint.cc", "int x;\n").empty());
  Linter uncovered;
  uncovered.SetTestCorpus({{"tests/storage/wal_test.cc", "int y;\n"}});
  auto r05 =
      uncovered.LintContent("src/provenance/checkpoint.cc", "int x;\n");
  ASSERT_EQ(r05.size(), 1u);
  EXPECT_EQ(r05[0].rule_id, "R05");
  EXPECT_NE(r05[0].message.find("checkpoint_test.cc"), std::string::npos);

  auto r06 = linter.LintContent(
      "src/provenance/checkpoint.cc",
      "void Seal() { std::FILE* f = std::fopen(\"c.pvck.tmp\", \"wb\"); }\n");
  ASSERT_EQ(r06.size(), 1u);
  EXPECT_EQ(r06[0].rule_id, "R06");
  EXPECT_NE(r06[0].suggestion.find("storage::Env"), std::string::npos);
}

TEST(LintRulesTest, R07FiresOnAdhocChronoOutsideSanctionedOwners) {
  Linter linter;
  std::string content = ReadFixture("r07_adhoc_chrono.cc");
  auto findings = linter.LintContent("src/storage/wal.cc", content);
  ASSERT_GE(findings.size(), 3u);
  for (const Finding& finding : findings) {
    EXPECT_EQ(finding.rule_id, "R07");
    EXPECT_EQ(finding.rule_name, "adhoc-chrono");
  }
  EXPECT_NE(findings[0].suggestion.find("Stopwatch"), std::string::npos);

  // The two sanctioned clock owners are exempt.
  EXPECT_TRUE(
      linter.LintContent("src/common/stopwatch.h", content).empty());
  EXPECT_TRUE(
      linter.LintContent("src/observability/metrics.cc", content).empty());
  // Bench harnesses and tests are out of scope.
  EXPECT_TRUE(
      linter.LintContent("bench/bench_common.h", content).empty());

  // Suppressible like every rule, by id or name.
  std::string suppressed =
      "#include <chrono>  // lint:allow adhoc-chrono\n";
  EXPECT_TRUE(
      linter.LintContent("src/storage/wal.cc", suppressed).empty());
  // A mention inside a comment or string never fires.
  std::string clean =
      "// std::chrono is banned here; see R07\n"
      "const char* kDoc = \"std::chrono\";\n";
  EXPECT_TRUE(linter.LintContent("src/storage/wal.cc", clean).empty());
}

TEST(LintRulesTest, R08FiresOnMutexWithNoAnnotationUser) {
  Linter linter;
  std::string content = ReadFixture("r08_unannotated_mutex.cc");
  auto findings = linter.LintContent("src/provenance/cache.cc", content);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule_id, "R08");
  EXPECT_EQ(findings[0].rule_name, "unannotated-mutex");
  EXPECT_NE(findings[0].message.find("mu_"), std::string::npos);
  EXPECT_EQ(findings[1].rule_id, "R08");
  EXPECT_NE(findings[1].message.find("raw_mu_"), std::string::npos);
  EXPECT_NE(findings[0].suggestion.find("PROVDB_GUARDED_BY"),
            std::string::npos);

  // The annotation vocabulary itself wraps the raw primitive.
  EXPECT_TRUE(
      linter.LintContent("src/common/thread_annotations.h", content).empty());
  // Tools and tests are out of scope.
  EXPECT_TRUE(linter.LintContent("tools/lint/lint.cc", content).empty());

  // A PROVDB_REQUIRES user counts too: a mutex may guard functions only.
  std::string requires_only =
      "class Store {\n"
      "  void CompactLocked() PROVDB_REQUIRES(mu_);\n"
      "  mutable Mutex mu_;\n"
      "};\n";
  EXPECT_TRUE(
      linter.LintContent("src/storage/store.h", requires_only).empty());
  // Parameters and template arguments are not declarations.
  std::string not_decls =
      "void Wait(Mutex* mu);\n"
      "std::unique_lock<std::mutex> Hold();\n";
  EXPECT_TRUE(linter.LintContent("src/common/sync.h", not_decls).empty());
}

TEST(LintRulesTest, R09FiresOnBlockingIoInsideLiveLockScope) {
  Linter linter;
  std::string content = ReadFixture("r09_io_under_lock.cc");
  auto findings = linter.LintContent("src/storage/locked_log.cc", content);
  ASSERT_EQ(findings.size(), 2u) << findings.front().ToString();
  EXPECT_EQ(findings[0].rule_id, "R09");
  EXPECT_EQ(findings[0].rule_name, "io-under-lock");
  EXPECT_NE(findings[0].message.find("Append"), std::string::npos);
  EXPECT_EQ(findings[1].rule_id, "R09");
  EXPECT_NE(findings[1].message.find("Sync"), std::string::npos);
  EXPECT_NE(findings[0].suggestion.find("FooLocked"), std::string::npos);
  // The I/O after the guard's scope closed (FlushAfterRelease) is clean,
  // pinning that guard liveness tracks braces, not the whole function.

  // The sanctioned I/O layer is exempt: Env owns the primitives, and the
  // fault-injection double deliberately locks across forwarded calls.
  EXPECT_TRUE(linter.LintContent("src/storage/env.cc", content).empty());
  EXPECT_TRUE(
      linter.LintContent("src/storage/fault_injection_env.cc", content)
          .empty());

  // A FooLocked body with no lexical guard is R09-clean by design — the
  // lock is the caller's, expressed via PROVDB_REQUIRES, and clang (not
  // this lexical pass) checks that contract.
  std::string foo_locked =
      "Status Pipe::FlushLocked(Shard* s) {\n"
      "  return s->wal.Sync();\n"
      "}\n";
  EXPECT_TRUE(
      linter.LintContent("src/provenance/pipe.cc", foo_locked).empty());
}

TEST(LintRulesTest, R10FiresOnManualLockCalls) {
  Linter linter;
  std::string content = ReadFixture("r10_naked_lock.cc");
  auto findings = linter.LintContent("src/provenance/locker.cc", content);
  ASSERT_EQ(findings.size(), 4u) << findings.front().ToString();
  for (const Finding& finding : findings) {
    EXPECT_EQ(finding.rule_id, "R10");
    EXPECT_EQ(finding.rule_name, "naked-lock");
  }
  EXPECT_NE(findings[0].message.find(".lock()"), std::string::npos);
  EXPECT_NE(findings[1].message.find(".unlock()"), std::string::npos);
  EXPECT_NE(findings[2].message.find(".try_lock()"), std::string::npos);
  EXPECT_NE(findings[0].suggestion.find("MutexLock"), std::string::npos);

  // The lock plumbing itself is exempt: the annotated Mutex wrapper
  // forwards to std::mutex, and the pool's wait loop manages its own.
  EXPECT_TRUE(
      linter.LintContent("src/common/thread_annotations.h", content).empty());
  EXPECT_TRUE(
      linter.LintContent("src/common/thread_pool.cc", content).empty());
}

TEST(LintRulesTest, PragmasSuppressByIdAndByName) {
  Linter linter;
  std::string content = ReadFixture("suppressed.cc");
  auto findings = linter.LintContent("src/provenance/checksum.cc", content);
  EXPECT_TRUE(findings.empty()) << findings.front().ToString();
}

TEST(LintRulesTest, CleanFileWithBannedTokensInLiteralsStaysClean) {
  Linter linter;
  std::string content = ReadFixture("clean.cc");
  auto findings = linter.LintContent("src/provenance/bundle.cc", content);
  EXPECT_TRUE(findings.empty()) << findings.front().ToString();
}

TEST(LintRulesTest, FindingToStringIsGreppable) {
  Linter linter;
  std::string content = ReadFixture("r04_memcmp_digest.cc");
  auto findings = linter.LintContent("src/crypto/hmac.cc", content);
  ASSERT_EQ(findings.size(), 1u);
  std::string text = findings[0].ToString(/*with_suggestion=*/true);
  EXPECT_NE(text.find("src/crypto/hmac.cc:"), std::string::npos);
  EXPECT_NE(text.find("[R04/ct-memcmp]"), std::string::npos);
  EXPECT_NE(text.find("fix: "), std::string::npos);
}

TEST(LintRulesTest, RuleTableIsCompleteAndOrdered) {
  const auto& rules = Rules();
  ASSERT_EQ(rules.size(), 10u);
  for (size_t i = 0; i < rules.size(); ++i) {
    std::string expected =
        (i < 9 ? "R0" : "R") + std::to_string(i + 1);
    EXPECT_EQ(rules[i].id, expected);
    EXPECT_NE(std::string(rules[i].summary), "");
  }
}

}  // namespace
}  // namespace provdb::lint
