// Deliberately-racy negative fixture for the thread-safety CI tier.
//
// This file is NOT part of any build target. tools/ci.sh's thread-safety
// stage compiles it standalone with clang -Wthread-safety -Werror and
// asserts that the compile FAILS: the write to `balance_` below touches a
// PROVDB_GUARDED_BY(mu_) member without holding mu_, which is exactly the
// bug class the tier exists to reject. If this file ever compiles clean
// under the tier's flags, the analysis is not actually armed (wrong
// compiler, macros expanding to nothing, flags dropped) and the stage
// fails loudly instead of certifying nothing.
#include "common/thread_annotations.h"

namespace provdb {

class Account {
 public:
  void Deposit(int amount) {
    // BUG (on purpose): no MutexLock — a concurrent Deposit races.
    balance_ += amount;  // expected error: writing variable 'balance_'
                         // requires holding mutex 'mu_' exclusively
  }

  int balance() const {
    MutexLock lock(&mu_);
    return balance_;
  }

 private:
  mutable Mutex mu_;
  int balance_ PROVDB_GUARDED_BY(mu_) = 0;
};

}  // namespace provdb
