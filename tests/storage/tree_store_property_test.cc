// Property suite for TreeStore: random operation sequences must preserve
// the structural invariants every higher layer depends on (parent/child
// coherence, sorted children, size bookkeeping, id freshness).

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "storage/tree_store.h"

namespace provdb::storage {
namespace {

// Checks all structural invariants of the forest.
void CheckInvariants(const TreeStore& tree,
                     const std::set<ObjectId>& expected_live) {
  // 1. Size bookkeeping.
  ASSERT_EQ(tree.size(), expected_live.size());

  size_t visited_total = 0;
  std::set<ObjectId> seen;
  for (ObjectId root : tree.SortedRoots()) {
    ASSERT_TRUE(tree.VisitSubtree(root, [&](const TreeNode& node, size_t) {
      // 2. Every visited node is live and visited exactly once.
      EXPECT_TRUE(expected_live.count(node.id)) << node.id;
      EXPECT_TRUE(seen.insert(node.id).second) << node.id;
      ++visited_total;

      // 3. Children sorted strictly ascending; each child's parent is us.
      for (size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) {
          EXPECT_LT(node.children[i - 1], node.children[i]);
        }
        auto child = tree.GetNode(node.children[i]);
        EXPECT_TRUE(child.ok());
        EXPECT_EQ((*child)->parent, node.id);
      }
      // 4. Non-roots have live parents containing us.
      if (!node.is_root()) {
        auto parent = tree.GetNode(node.parent);
        EXPECT_TRUE(parent.ok());
        const auto& kids = (*parent)->children;
        EXPECT_NE(std::find(kids.begin(), kids.end(), node.id), kids.end());
      }
      return Status::OK();
    }).ok());
  }
  // 5. The forest covers all live nodes (no orphans, no cycles).
  EXPECT_EQ(visited_total, expected_live.size());
}

class TreeStorePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TreeStorePropertyTest, RandomOperationsPreserveInvariants) {
  Rng rng(GetParam());
  TreeStore tree;
  std::set<ObjectId> live;
  std::vector<ObjectId> live_list;
  std::set<ObjectId> ever_allocated;

  auto random_live = [&]() -> ObjectId {
    return live_list[rng.NextBelow(live_list.size())];
  };
  auto refresh_list = [&]() {
    live_list.assign(live.begin(), live.end());
  };

  for (int step = 0; step < 500; ++step) {
    int action = static_cast<int>(rng.NextBelow(100));
    if (action < 45 || live.empty()) {
      // Insert (root 20% of the time).
      ObjectId parent = kInvalidObjectId;
      if (!live.empty() && !rng.NextBool(0.2)) {
        refresh_list();
        parent = random_live();
      }
      auto id = tree.Insert(Value::Int(static_cast<int64_t>(step)), parent);
      ASSERT_TRUE(id.ok());
      // Ids are never reused.
      EXPECT_TRUE(ever_allocated.insert(*id).second);
      live.insert(*id);
    } else if (action < 65) {
      // Update.
      refresh_list();
      ASSERT_TRUE(
          tree.Update(random_live(),
                      Value::Int(static_cast<int64_t>(rng.NextUint64())))
              .ok());
    } else if (action < 85) {
      // Delete: legal only on leaves.
      refresh_list();
      ObjectId target = random_live();
      bool is_leaf = tree.GetNode(target).value()->is_leaf();
      Status s = tree.Delete(target);
      EXPECT_EQ(s.ok(), is_leaf);
      if (s.ok()) live.erase(target);
    } else {
      // Aggregate 1-2 live objects.
      refresh_list();
      std::vector<ObjectId> inputs = {random_live()};
      if (rng.NextBool(0.5)) inputs.push_back(random_live());
      size_t before = tree.size();
      auto agg = tree.Aggregate(inputs, Value::Int(-1));
      ASSERT_TRUE(agg.ok());
      // All new ids from the aggregate are fresh; collect them.
      size_t added = tree.size() - before;
      ASSERT_TRUE(tree.VisitSubtree(*agg, [&](const TreeNode& n, size_t) {
        if (!live.count(n.id)) {
          EXPECT_TRUE(ever_allocated.insert(n.id).second);
          live.insert(n.id);
        }
        return Status::OK();
      }).ok());
      EXPECT_EQ(tree.size() - before, added);
    }

    if (step % 50 == 0) {
      CheckInvariants(tree, live);
    }
  }
  CheckInvariants(tree, live);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeStorePropertyTest,
                         ::testing::Values(1u, 17u, 91u, 333u));

}  // namespace
}  // namespace provdb::storage
