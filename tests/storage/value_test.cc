#include "storage/value.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace provdb::storage {
namespace {

std::vector<Value> AllKindsOfValues() {
  return {
      Value::Null(),
      Value::Int(0),
      Value::Int(42),
      Value::Int(-42),
      Value::Int(std::numeric_limits<int64_t>::max()),
      Value::Int(std::numeric_limits<int64_t>::min()),
      Value::Double(0.0),
      Value::Double(-0.0),
      Value::Double(3.14159),
      Value::Double(std::numeric_limits<double>::infinity()),
      Value::String(""),
      Value::String("hello"),
      Value::String(std::string(1000, 'x')),
      Value::Blob({}),
      Value::Blob({0x00, 0xFF, 0x7F}),
  };
}

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_EQ(Value::Int(1).type(), ValueType::kInt);
  EXPECT_EQ(Value::Double(1.0).type(), ValueType::kDouble);
  EXPECT_EQ(Value::String("s").type(), ValueType::kString);
  EXPECT_EQ(Value::Blob({1}).type(), ValueType::kBytes);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_FALSE(Value::Int(0).is_null());
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value::Int(-7).AsInt(), -7);
  EXPECT_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("abc").AsString(), "abc");
  EXPECT_EQ(Value::Blob({1, 2}).AsBlob(), (Bytes{1, 2}));
}

TEST(ValueTest, EqualityIsTypeSensitive) {
  EXPECT_EQ(Value::Int(3), Value::Int(3));
  EXPECT_NE(Value::Int(3), Value::Int(4));
  EXPECT_NE(Value::Int(3), Value::String("3"));
  EXPECT_NE(Value::Null(), Value::Int(0));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, CanonicalEncodeRoundTripAllKinds) {
  for (const Value& v : AllKindsOfValues()) {
    Bytes encoded;
    v.CanonicalEncode(&encoded);
    size_t consumed = 0;
    auto back = Value::CanonicalDecode(encoded, &consumed);
    ASSERT_TRUE(back.ok()) << v.ToString();
    EXPECT_EQ(consumed, encoded.size()) << v.ToString();
    EXPECT_EQ(*back, v) << v.ToString();
  }
}

TEST(ValueTest, CanonicalEncodingIsInjectiveAcrossKinds) {
  // Distinct values (including cross-type "same looking" values) must have
  // distinct encodings — this is what makes the node hash collision-free.
  std::vector<Value> values = AllKindsOfValues();
  std::vector<Bytes> encodings;
  for (const Value& v : values) {
    Bytes e;
    v.CanonicalEncode(&e);
    encodings.push_back(std::move(e));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    for (size_t j = i + 1; j < values.size(); ++j) {
      if (values[i] == values[j]) continue;
      EXPECT_NE(encodings[i], encodings[j])
          << values[i].ToString() << " vs " << values[j].ToString();
    }
  }
}

TEST(ValueTest, NanRoundTripsBitExactly) {
  double nan = std::numeric_limits<double>::quiet_NaN();
  Bytes encoded;
  Value::Double(nan).CanonicalEncode(&encoded);
  auto back = Value::CanonicalDecode(encoded, nullptr);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(std::isnan(back->AsDouble()));
}

TEST(ValueTest, DecodeConsumedAllowsConcatenatedValues) {
  Bytes stream;
  Value::Int(5).CanonicalEncode(&stream);
  Value::String("xy").CanonicalEncode(&stream);
  size_t consumed = 0;
  auto first = Value::CanonicalDecode(stream, &consumed);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->AsInt(), 5);
  auto second = Value::CanonicalDecode(
      ByteView(stream).subview(consumed), nullptr);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->AsString(), "xy");
}

TEST(ValueTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(Value::CanonicalDecode(ByteView(), nullptr).ok());
  Bytes bad_tag = {0x09};
  EXPECT_FALSE(Value::CanonicalDecode(bad_tag, nullptr).ok());
  Bytes truncated_string = {static_cast<uint8_t>(ValueType::kString), 10, 'a'};
  EXPECT_FALSE(Value::CanonicalDecode(truncated_string, nullptr).ok());
  Bytes truncated_double = {static_cast<uint8_t>(ValueType::kDouble), 1, 2};
  EXPECT_FALSE(Value::CanonicalDecode(truncated_double, nullptr).ok());
}

TEST(ValueTest, ApproximateSizeReflectsPayload) {
  EXPECT_EQ(Value::String("abcd").ApproximateSize(), 4u);
  EXPECT_EQ(Value::Blob(Bytes(100, 1)).ApproximateSize(), 100u);
  EXPECT_EQ(Value::Int(5).ApproximateSize(), 8u);
  EXPECT_EQ(Value::Null().ApproximateSize(), 1u);
}

TEST(ValueTest, ToStringRendersReadably) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Int(12).ToString(), "12");
  EXPECT_EQ(Value::String("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Value::Blob({0xAB}).ToString(), "0xab");
}

}  // namespace
}  // namespace provdb::storage
