// WalWriter/WalReader: append, rollover, and the crash-recovery matrix —
// torn tail (salvaged, byte count reported), corrupt CRC mid-log (hard
// Corruption), empty file, frame length overrunning the file, segment
// gaps, and bad headers.

#include "storage/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/crc32.h"
#include "storage/fault_injection_env.h"

namespace provdb::storage {
namespace {

Bytes B(std::string_view s) { return ByteView(s).ToBytes(); }

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = ::testing::TempDir() + "/provdb_wal_" + info->name();
    env_ = Env::Default();
    // Leftover segments from a previous run would be recovered as live
    // history; every test starts from an empty log directory.
    auto names = env_->ListDir(dir_);
    if (names.ok()) {
      for (const std::string& name : *names) {
        ASSERT_TRUE(env_->RemoveFile(dir_ + "/" + name).ok());
      }
    }
  }

  std::string Segment(uint64_t index) const {
    return WalWriter::SegmentFileName(dir_, index);
  }

  /// Overwrites one byte of `path` at `offset` with its value xor `mask`.
  void FlipByte(const std::string& path, long offset, int mask) {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    std::fputc(c ^ mask, f);
    ASSERT_EQ(std::fclose(f), 0);
  }

  /// Appends raw bytes to `path` (simulates tail garbage / torn frames).
  void AppendRaw(const std::string& path, ByteView data) {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f), data.size());
    ASSERT_EQ(std::fclose(f), 0);
  }

  /// A writer with 5 records "rec-0".."rec-4" in segment 1, closed clean.
  void WriteFiveRecords() {
    auto wal = WalWriter::Open(env_, dir_);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(wal->Append(B("rec-" + std::to_string(i))).ok());
    }
    ASSERT_TRUE(wal->Close().ok());
  }

  Env* env_ = nullptr;
  std::string dir_;
};

// Each "rec-N" frame is varint(5)=1 + 5 payload + 4 crc = 10 bytes, so
// frame k spans [20 + 10k, 30 + 10k) of segment 1.
constexpr long kFrame0 = static_cast<long>(kWalHeaderSize);

TEST_F(WalTest, AppendAndRecoverRoundTrip) {
  WriteFiveRecords();
  auto reader = WalReader::Open(env_, dir_);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->report().clean());
  EXPECT_EQ(reader->report().segments, 1u);
  EXPECT_EQ(reader->report().records, 5u);
  ASSERT_EQ(reader->log().record_count(), 5u);
  EXPECT_EQ(reader->log().Get(3)->ToString(), "rec-3");
}

TEST_F(WalTest, ReopenStartsFreshSegmentAndRecoveryMergesAll) {
  WriteFiveRecords();
  {
    auto wal = WalWriter::Open(env_, dir_);
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ(wal->current_segment_index(), 2u);
    ASSERT_TRUE(wal->Append(B("later-0")).ok());
    ASSERT_TRUE(wal->Append(B("later-1")).ok());
    ASSERT_TRUE(wal->Close().ok());
  }
  auto reader = WalReader::Open(env_, dir_);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->report().segments, 2u);
  ASSERT_EQ(reader->log().record_count(), 7u);
  EXPECT_EQ(reader->log().Get(5)->ToString(), "later-0");
}

TEST_F(WalTest, RolloverSplitsSegmentsAtSizeLimit) {
  WalOptions options;
  options.segment_size_limit = 64;  // header 20 + a few 10-byte frames
  auto wal = WalWriter::Open(env_, dir_, options);
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(wal->Append(B("rec-" + std::to_string(i))).ok());
  }
  EXPECT_GT(wal->current_segment_index(), 1u);
  ASSERT_TRUE(wal->Close().ok());

  auto reader = WalReader::Open(env_, dir_);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->report().clean());
  EXPECT_GT(reader->report().segments, 1u);
  ASSERT_EQ(reader->log().record_count(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(reader->log().Get(i)->ToString(), "rec-" + std::to_string(i));
  }
}

TEST_F(WalTest, PayloadLargerThanSegmentLimitStillFits) {
  WalOptions options;
  options.segment_size_limit = 64;
  auto wal = WalWriter::Open(env_, dir_, options);
  ASSERT_TRUE(wal.ok());
  Bytes big(500, 0x7E);
  ASSERT_TRUE(wal->Append(B("small")).ok());
  ASSERT_TRUE(wal->Append(big).ok());
  ASSERT_TRUE(wal->Append(B("after")).ok());
  ASSERT_TRUE(wal->Close().ok());

  auto reader = WalReader::Open(env_, dir_);
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ(reader->log().record_count(), 3u);
  EXPECT_EQ(reader->log().Get(1)->size(), 500u);
}

TEST_F(WalTest, OversizedPayloadRejected) {
  auto wal = WalWriter::Open(env_, dir_);
  ASSERT_TRUE(wal.ok());
  uint8_t byte = 0;
  auto status = wal->Append(ByteView(&byte, static_cast<size_t>(0xFFFFFFFFu) + 1));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(wal->appended_records(), 0u);
  ASSERT_TRUE(wal->Close().ok());
}

TEST_F(WalTest, EmptyDirectoryRecoversToEmptyLog) {
  ASSERT_TRUE(env_->CreateDir(dir_).ok());
  auto reader = WalReader::Open(env_, dir_);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->report().clean());
  EXPECT_EQ(reader->report().segments, 0u);
  EXPECT_EQ(reader->log().record_count(), 0u);
}

TEST_F(WalTest, MissingDirectoryIsAnError) {
  EXPECT_FALSE(WalReader::Open(env_, dir_).ok());
}

// Recovery matrix: empty file. A zero-byte final segment is what a crash
// between file creation and the header write leaves behind.
TEST_F(WalTest, EmptyFinalSegmentFileIsSalvagedClean) {
  WriteFiveRecords();
  auto file = env_->NewWritableFile(Segment(2));
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Close().ok());

  auto reader = WalReader::Open(env_, dir_);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->log().record_count(), 5u);
  EXPECT_EQ(reader->report().dropped_bytes, 0u);
}

// Recovery matrix: torn tail. A half-written final frame is salvaged
// away and the dropped byte count is reported, never hidden.
TEST_F(WalTest, TornTailSalvagedWithByteCountReported) {
  WriteFiveRecords();
  // Half a frame: length says 5, only 2 payload bytes follow, no CRC.
  AppendRaw(Segment(1), B("\x05zz"));

  auto reader = WalReader::Open(env_, dir_);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->log().record_count(), 5u);
  EXPECT_EQ(reader->report().dropped_bytes, 3u);
  EXPECT_EQ(reader->report().salvaged_segment, 1u);
  EXPECT_NE(reader->report().detail.find("dropped 3"), std::string::npos);
}

// Default repair truncates the torn tail, so the next recovery — when
// the tear is no longer at the end of the log — still succeeds.
TEST_F(WalTest, RepairedTornTailStaysRecoverableAfterNewSegments) {
  WriteFiveRecords();
  AppendRaw(Segment(1), B("\x05zz"));
  ASSERT_TRUE(WalReader::Open(env_, dir_).ok());  // salvages + repairs

  {
    auto wal = WalWriter::Open(env_, dir_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(B("after-crash")).ok());
    ASSERT_TRUE(wal->Close().ok());
  }
  auto reader = WalReader::Open(env_, dir_);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_TRUE(reader->report().clean());
  ASSERT_EQ(reader->log().record_count(), 6u);
  EXPECT_EQ(reader->log().Get(5)->ToString(), "after-crash");
}

// Without repair, the same sequence must hard-fail: the tear is now
// *before* the tail, which recovery may not silently drop.
TEST_F(WalTest, UnrepairedTornTailBeforeNewSegmentIsCorruption) {
  WriteFiveRecords();
  AppendRaw(Segment(1), B("\x05zz"));
  WalReaderOptions no_repair;
  no_repair.repair_torn_tail = false;
  ASSERT_TRUE(WalReader::Open(env_, dir_, no_repair).ok());

  {
    auto wal = WalWriter::Open(env_, dir_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(B("after-crash")).ok());
    ASSERT_TRUE(wal->Close().ok());
  }
  auto reader = WalReader::Open(env_, dir_);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
}

// Recovery matrix: corrupt CRC mid-log. Frames follow the damaged one,
// so this cannot be a tear — it is tampering or disk rot: hard error.
TEST_F(WalTest, CorruptCrcMidLogIsHardCorruption) {
  WriteFiveRecords();
  FlipByte(Segment(1), kFrame0 + 10 + 2, 0x01);  // payload byte of rec-1

  auto reader = WalReader::Open(env_, dir_);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
}

// A CRC mismatch on the very last frame is indistinguishable from a torn
// final write, so it is salvaged — and reported.
TEST_F(WalTest, CorruptCrcOnFinalFrameIsSalvaged) {
  WriteFiveRecords();
  FlipByte(Segment(1), kFrame0 + 40 + 2, 0x01);  // payload byte of rec-4

  auto reader = WalReader::Open(env_, dir_);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->log().record_count(), 4u);
  EXPECT_EQ(reader->report().dropped_bytes, 10u);
}

// Recovery matrix: frame length overruns the file.
TEST_F(WalTest, FrameLengthOverrunningFileIsSalvagedAtTail) {
  WriteFiveRecords();
  // Length varint claims 100 bytes; only 3 follow.
  AppendRaw(Segment(1), B("\x64" "abc"));

  auto reader = WalReader::Open(env_, dir_);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->log().record_count(), 5u);
  EXPECT_EQ(reader->report().dropped_bytes, 4u);
}

TEST_F(WalTest, FrameOverrunInNonFinalSegmentIsCorruption) {
  WriteFiveRecords();
  AppendRaw(Segment(1), B("\x64" "abc"));
  {
    // A later segment exists, so the overrun is no longer at the tail.
    auto wal = WalWriter::Open(env_, dir_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(B("next")).ok());
    ASSERT_TRUE(wal->Close().ok());
  }
  auto reader = WalReader::Open(env_, dir_);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
}

TEST_F(WalTest, BadHeaderMagicIsCorruption) {
  WriteFiveRecords();
  FlipByte(Segment(1), 0, 0x01);
  auto reader = WalReader::Open(env_, dir_);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
}

TEST_F(WalTest, HeaderIndexMismatchIsCorruption) {
  WriteFiveRecords();
  // Rename segment 1 to segment 2: name and embedded index now disagree.
  ASSERT_TRUE(env_->RenameFile(Segment(1), Segment(2)).ok());
  auto reader = WalReader::Open(env_, dir_);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
}

TEST_F(WalTest, SegmentGapIsCorruption) {
  for (int i = 0; i < 3; ++i) {
    auto wal = WalWriter::Open(env_, dir_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(B("seg")).ok());
    ASSERT_TRUE(wal->Close().ok());
  }
  ASSERT_TRUE(env_->RemoveFile(Segment(2)).ok());
  auto reader = WalReader::Open(env_, dir_);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
  EXPECT_NE(reader.status().message().find("gap"), std::string::npos);
}

TEST_F(WalTest, HalfWrittenHeaderOnFinalSegmentIsSalvaged) {
  WriteFiveRecords();
  {
    auto file = env_->NewWritableFile(Segment(2));
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(B("PVDBW")).ok());  // 5 of 20 header bytes
    ASSERT_TRUE((*file)->Close().ok());
  }
  auto reader = WalReader::Open(env_, dir_);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->log().record_count(), 5u);
  EXPECT_EQ(reader->report().dropped_bytes, 5u);
  EXPECT_EQ(reader->report().salvaged_segment, 2u);
  // Repair removes the headerless remnant (a zero-byte truncation would
  // become unrecoverable once it is no longer the last segment).
  EXPECT_FALSE(env_->FileExists(Segment(2)));
}

// Double-crash regression: a crash during segment creation leaves a
// sub-header file; after salvage, a writer restarts and appends; every
// later recovery must still succeed — the remnant must not survive as a
// headerless segment stranded before the new tail.
TEST_F(WalTest, HeaderTearThenNewSegmentsStaysRecoverable) {
  WriteFiveRecords();
  {
    auto file = env_->NewWritableFile(Segment(2));
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(B("PVDBW")).ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  ASSERT_TRUE(WalReader::Open(env_, dir_).ok());  // salvages + removes

  {
    auto wal = WalWriter::Open(env_, dir_);
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ(wal->current_segment_index(), 2u) << "index is reused";
    ASSERT_TRUE(wal->Append(B("after-crash")).ok());
    ASSERT_TRUE(wal->Close().ok());
  }
  auto reader = WalReader::Open(env_, dir_);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_TRUE(reader->report().clean());
  ASSERT_EQ(reader->log().record_count(), 6u);
  EXPECT_EQ(reader->log().Get(5)->ToString(), "after-crash");
}

// Same crash, but the writer restarts *without* recovery running first
// (the writer itself must not number past a headerless trailing segment).
TEST_F(WalTest, WriterRemovesHeaderlessTrailingSegment) {
  WriteFiveRecords();
  {
    auto file = env_->NewWritableFile(Segment(2));
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(B("PVDBW")).ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  {
    auto wal = WalWriter::Open(env_, dir_);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    EXPECT_EQ(wal->current_segment_index(), 2u);
    ASSERT_TRUE(wal->Append(B("fresh")).ok());
    ASSERT_TRUE(wal->Close().ok());
  }
  auto reader = WalReader::Open(env_, dir_);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_TRUE(reader->report().clean());
  ASSERT_EQ(reader->log().record_count(), 6u);
}

// An over-long frame-length varint whose 10th byte carries bits above
// bit 0 overflows uint64. Ignoring those bits would decode length 0 and
// accept the 4 bytes that follow as a valid empty frame — a phantom
// record. It must be classified as malformed instead (here: at the
// tail, so salvaged and reported).
TEST_F(WalTest, OverlongVarintFrameLengthIsMalformedNotPhantomRecord) {
  WriteFiveRecords();
  Bytes evil;
  for (int i = 0; i < 9; ++i) AppendByte(&evil, 0x80);
  AppendByte(&evil, 0x02);  // decodes to length 0 if the overflow is kept
  AppendFixed32(&evil, Crc32(ByteView()));  // valid CRC of empty payload
  AppendRaw(Segment(1), evil);

  auto reader = WalReader::Open(env_, dir_);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->log().record_count(), 5u);
  EXPECT_EQ(reader->report().dropped_bytes, 14u);
}

// The writer-side crash-survival contract: everything covered by a
// successful Sync survives DropUnsyncedFileData; nothing half-written is
// ever resurrected.
TEST_F(WalTest, SyncedRecordsSurvivePowerCut) {
  FaultInjectionEnv fault_env(Env::Default());
  {
    auto wal = WalWriter::Open(&fault_env, dir_);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(wal->Append(B("durable-" + std::to_string(i))).ok());
    }
    ASSERT_TRUE(wal->Sync().ok());
    EXPECT_EQ(wal->synced_records(), 5u);
    ASSERT_TRUE(wal->Append(B("volatile-0")).ok());
    ASSERT_TRUE(wal->Append(B("volatile-1")).ok());
    EXPECT_EQ(wal->synced_records(), 5u);
    // Abandon the writer: simulated process death, then power cut.
  }
  ASSERT_TRUE(fault_env.DropUnsyncedFileData().ok());

  auto reader = WalReader::Open(&fault_env, dir_);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_TRUE(reader->report().clean());
  ASSERT_EQ(reader->log().record_count(), 5u);
  EXPECT_EQ(reader->log().Get(4)->ToString(), "durable-4");
}

TEST_F(WalTest, SyncEveryAppendLosesNothing) {
  FaultInjectionEnv fault_env(Env::Default());
  WalOptions options;
  options.sync_every_append = true;
  {
    auto wal = WalWriter::Open(&fault_env, dir_, options);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(wal->Append(B("r" + std::to_string(i))).ok());
    }
    EXPECT_EQ(wal->synced_records(), 4u);
  }
  ASSERT_TRUE(fault_env.DropUnsyncedFileData().ok());
  auto reader = WalReader::Open(&fault_env, dir_);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->log().record_count(), 4u);
}

TEST_F(WalTest, TornAppendIsSalvagedNeverResurrected) {
  FaultInjectionEnv fault_env(Env::Default());
  {
    auto wal = WalWriter::Open(&fault_env, dir_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(B("complete-record")).ok());
    ASSERT_TRUE(wal->Sync().ok());
    // The next frame tears mid-write (half its bytes land), as at a
    // sector boundary during a power cut.
    fault_env.ScheduleAppendFailure(1, /*torn=*/true);
    EXPECT_FALSE(wal->Append(B("half-written-record")).ok());
  }
  // No power cut here (the flushed half-frame survives): recovery must
  // still drop it and report the tear.
  auto reader = WalReader::Open(&fault_env, dir_);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  ASSERT_EQ(reader->log().record_count(), 1u);
  EXPECT_EQ(reader->log().Get(0)->ToString(), "complete-record");
  EXPECT_GT(reader->report().dropped_bytes, 0u);
}

TEST_F(WalTest, AppendAfterCloseFails) {
  auto wal = WalWriter::Open(env_, dir_);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Close().ok());
  EXPECT_EQ(wal->Append(B("late")).code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(wal->Close().ok()) << "Close is idempotent";
}

TEST_F(WalTest, TinySegmentLimitRejected) {
  WalOptions options;
  options.segment_size_limit = 10;  // smaller than the header
  EXPECT_FALSE(WalWriter::Open(env_, dir_, options).ok());
}

// ---------------------------------------------------------------------------
// Segment-name parsing: strict classification, no silent shadowing.
// ---------------------------------------------------------------------------

TEST(ParseWalSegmentNameTest, AcceptsWellFormedNames) {
  uint64_t index = 0;
  EXPECT_EQ(ParseWalSegmentName("wal-000001.log", &index),
            WalSegmentNameKind::kSegment);
  EXPECT_EQ(index, 1u);
  EXPECT_EQ(ParseWalSegmentName("wal-123456.log", &index),
            WalSegmentNameKind::kSegment);
  EXPECT_EQ(index, 123456u);
  // The largest index that round-trips through SegmentFileName.
  EXPECT_EQ(ParseWalSegmentName("wal-18446744073709551615.log", &index),
            WalSegmentNameKind::kSegment);
  EXPECT_EQ(index, 0xFFFFFFFFFFFFFFFFull);
}

TEST(ParseWalSegmentNameTest, IgnoresForeignFiles) {
  uint64_t index = 0;
  EXPECT_EQ(ParseWalSegmentName("checkpoint-000001.pvck", &index),
            WalSegmentNameKind::kNotSegment);
  EXPECT_EQ(ParseWalSegmentName("wal-.log", &index),
            WalSegmentNameKind::kNotSegment);
  EXPECT_EQ(ParseWalSegmentName("wal-12x4.log", &index),
            WalSegmentNameKind::kNotSegment);
  EXPECT_EQ(ParseWalSegmentName("wal-000001.log.tmp", &index),
            WalSegmentNameKind::kNotSegment);
  EXPECT_EQ(ParseWalSegmentName("wal-000001", &index),
            WalSegmentNameKind::kNotSegment);
}

TEST(ParseWalSegmentNameTest, RejectsIndexZero) {
  // Segments are numbered from 1; a wal-000000.log cannot be produced by
  // any writer and must not be silently skipped.
  uint64_t index = 99;
  EXPECT_EQ(ParseWalSegmentName("wal-000000.log", &index),
            WalSegmentNameKind::kInvalid);
  EXPECT_EQ(ParseWalSegmentName("wal-0.log", &index),
            WalSegmentNameKind::kInvalid);
}

TEST(ParseWalSegmentNameTest, RejectsUint64Overflow) {
  uint64_t index = 0;
  // 2^64 exactly: one past the largest representable index.
  EXPECT_EQ(ParseWalSegmentName("wal-18446744073709551616.log", &index),
            WalSegmentNameKind::kInvalid);
  EXPECT_EQ(ParseWalSegmentName("wal-99999999999999999999999.log", &index),
            WalSegmentNameKind::kInvalid);
}

TEST_F(WalTest, InvalidSegmentNameInDirectoryIsCorruption) {
  WriteFiveRecords();
  AppendRaw(dir_ + "/wal-000000.log", B("imposter"));
  auto wal = WalWriter::Open(env_, dir_);
  EXPECT_EQ(wal.status().code(), StatusCode::kCorruption);
  auto reader = WalReader::Open(env_, dir_);
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Rollover failure poisons the writer (regression: it used to leave the
// writer pointing at the closed old segment and keep appending into it).
// ---------------------------------------------------------------------------

TEST_F(WalTest, FailedRolloverPoisonsWriter) {
  FaultInjectionEnv fault_env(Env::Default());
  WalOptions options;
  options.segment_size_limit = 64;  // header 20 + four 10-byte frames
  auto wal = WalWriter::Open(&fault_env, dir_, options);
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(wal->Append(B("rec-" + std::to_string(i))).ok());
  }
  ASSERT_TRUE(wal->Sync().ok());

  // The fifth frame does not fit, so Append must roll — and the new
  // segment's creation fails.
  fault_env.ScheduleNewFileFailure(1);
  EXPECT_EQ(wal->Append(B("rec-4")).code(), StatusCode::kIoError);

  // Poisoned: no later operation may touch the closed (or stale) old
  // segment. Every call reports the rollover failure, not success.
  EXPECT_FALSE(wal->poisoned().ok());
  EXPECT_EQ(wal->Append(B("rec-5")).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(wal->Sync().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(wal->Flush().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(wal->RollSegment().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(wal->Close().code(), StatusCode::kFailedPrecondition);

  // The prefix sealed before the failed rollover recovers intact.
  auto reader = WalReader::Open(&fault_env, dir_);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->log().record_count(), 4u);
}

// ---------------------------------------------------------------------------
// Headerless-trailing cleanup must not walk across a hole (regression:
// Open kept decrementing past a missing segment, reusing an interior
// index and silently shadowing the gap the reader would have caught).
// ---------------------------------------------------------------------------

TEST_F(WalTest, HeaderlessTrailingSegmentBehindGapIsCorruption) {
  WriteFiveRecords();  // segment 1
  // Plant a headerless remnant at index 3 with no segment 2 at all: the
  // cleanup walk removes 3, then must report the missing 2, not reuse it.
  AppendRaw(Segment(3), B("stub"));
  auto wal = WalWriter::Open(env_, dir_);
  ASSERT_EQ(wal.status().code(), StatusCode::kCorruption);
  EXPECT_NE(wal.status().ToString().find("WAL segment gap"),
            std::string::npos)
      << wal.status().ToString();
}

// ---------------------------------------------------------------------------
// RollSegment / GarbageCollect: the checkpoint horizon machinery.
// ---------------------------------------------------------------------------

TEST_F(WalTest, RollSegmentSealsCurrentSegment) {
  auto wal = WalWriter::Open(env_, dir_);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append(B("rec-0")).ok());
  auto sealed = wal->RollSegment();
  ASSERT_TRUE(sealed.ok());
  EXPECT_EQ(*sealed, 1u);
  EXPECT_EQ(wal->current_segment_index(), 2u);

  // An empty current segment already sits behind a boundary: the
  // predecessor index comes back with no disk I/O and no new segment.
  auto again = wal->RollSegment();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 1u);
  EXPECT_EQ(wal->current_segment_index(), 2u);

  ASSERT_TRUE(wal->Append(B("rec-1")).ok());
  auto third = wal->RollSegment();
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(*third, 2u);
  ASSERT_TRUE(wal->Close().ok());

  auto reader = WalReader::Open(env_, dir_);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->log().record_count(), 2u);
}

TEST_F(WalTest, RollSegmentOnEmptyLogReturnsZero) {
  auto wal = WalWriter::Open(env_, dir_);
  ASSERT_TRUE(wal.ok());
  auto sealed = wal->RollSegment();
  ASSERT_TRUE(sealed.ok());
  EXPECT_EQ(*sealed, 0u) << "nothing appended, nothing to seal";
}

TEST_F(WalTest, GarbageCollectRemovesOnlyCoveredSegments) {
  auto wal = WalWriter::Open(env_, dir_);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append(B("old-0")).ok());
  ASSERT_TRUE(wal->RollSegment().ok());
  ASSERT_TRUE(wal->Append(B("old-1")).ok());
  ASSERT_TRUE(wal->RollSegment().ok());
  ASSERT_TRUE(wal->Append(B("new-0")).ok());  // segment 3, active

  // The active segment is never eligible.
  EXPECT_EQ(wal->GarbageCollect(3).code(), StatusCode::kInvalidArgument);

  ASSERT_TRUE(wal->GarbageCollect(2).ok());
  EXPECT_FALSE(env_->FileExists(Segment(1)));
  EXPECT_FALSE(env_->FileExists(Segment(2)));
  EXPECT_TRUE(env_->FileExists(Segment(3)));
  EXPECT_EQ(wal->checkpoint_horizon(), 2u);
  // Idempotent: a crash mid-GC just resumes on the next call.
  EXPECT_TRUE(wal->GarbageCollect(2).ok());
  ASSERT_TRUE(wal->Close().ok());

  // A reader told about the horizon replays exactly the suffix.
  WalReaderOptions horizon_options;
  horizon_options.checkpoint_horizon = 2;
  auto reader = WalReader::Open(env_, dir_, horizon_options);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  ASSERT_EQ(reader->log().record_count(), 1u);
  EXPECT_EQ(reader->log().Get(0)->ToString(), "new-0");

  // A reader *not* told about the horizon must refuse the truncated log:
  // segments vanishing without a sealed checkpoint is a truncation
  // attack, not housekeeping.
  auto blind = WalReader::Open(env_, dir_);
  ASSERT_EQ(blind.status().code(), StatusCode::kCorruption);
  EXPECT_NE(blind.status().ToString().find("WAL segment gap"),
            std::string::npos);
}

TEST_F(WalTest, ReaderRejectsMissingFirstSuffixSegment) {
  auto wal = WalWriter::Open(env_, dir_);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append(B("old-0")).ok());
  ASSERT_TRUE(wal->RollSegment().ok());
  ASSERT_TRUE(wal->Append(B("suffix-0")).ok());
  ASSERT_TRUE(wal->RollSegment().ok());
  ASSERT_TRUE(wal->Append(B("suffix-1")).ok());
  ASSERT_TRUE(wal->GarbageCollect(1).ok());
  ASSERT_TRUE(wal->Close().ok());
  // Segments 2 and 3 are the suffix past horizon 1; losing 2 is a hole,
  // even though the remaining indices are contiguous from 3.
  ASSERT_TRUE(env_->RemoveFile(Segment(2)).ok());

  WalReaderOptions horizon_options;
  horizon_options.checkpoint_horizon = 1;
  auto reader = WalReader::Open(env_, dir_, horizon_options);
  ASSERT_EQ(reader.status().code(), StatusCode::kCorruption);
  EXPECT_NE(reader.status().ToString().find("WAL segment gap"),
            std::string::npos);
}

TEST_F(WalTest, ReopenNumbersSegmentsPastGcedHistory) {
  {
    auto wal = WalWriter::Open(env_, dir_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(B("old-0")).ok());
    ASSERT_TRUE(wal->RollSegment().ok());
    ASSERT_TRUE(wal->Append(B("new-0")).ok());
    ASSERT_TRUE(wal->GarbageCollect(1).ok());
    ASSERT_TRUE(wal->Close().ok());
  }
  // Only segment 2 survives. A reopen that honors the horizon starts at
  // 3; index 1 is spent forever, so a GC'd segment can never come back
  // under its old name.
  WalOptions options;
  options.checkpoint_horizon = 1;
  auto wal = WalWriter::Open(env_, dir_, options);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ(wal->current_segment_index(), 3u);
  ASSERT_TRUE(wal->Close().ok());

  // Even when *every* segment behind the horizon is gone, the writer
  // resumes past it rather than recycling index 1.
  ASSERT_TRUE(env_->RemoveFile(Segment(2)).ok());
  ASSERT_TRUE(env_->RemoveFile(Segment(3)).ok());
  WalOptions all_gced;
  all_gced.checkpoint_horizon = 5;
  auto fresh = WalWriter::Open(env_, dir_, all_gced);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ(fresh->current_segment_index(), 6u);
  ASSERT_TRUE(fresh->Close().ok());
}

}  // namespace
}  // namespace provdb::storage
