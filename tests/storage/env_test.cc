// Env (the filesystem abstraction behind all persistence) and
// FaultInjectionEnv (the crash simulator the recovery tests build on).

#include "storage/env.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "storage/fault_injection_env.h"

namespace provdb::storage {
namespace {

Bytes B(std::string_view s) { return ByteView(s).ToBytes(); }

class EnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = Env::Default();
    dir_ = ::testing::TempDir() + "/provdb_env_test";
    ASSERT_TRUE(env_->CreateDir(dir_).ok());
  }

  std::string Path(const std::string& name) { return dir_ + "/" + name; }

  Env* env_ = nullptr;
  std::string dir_;
};

TEST_F(EnvTest, WriteReadRoundTrip) {
  auto file = env_->NewWritableFile(Path("a.bin"));
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(B("hello ")).ok());
  ASSERT_TRUE((*file)->Append(B("world")).ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());

  auto content = env_->ReadFileToBytes(Path("a.bin"));
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(ByteView(*content).ToString(), "hello world");
  EXPECT_EQ(*env_->FileSize(Path("a.bin")), 11u);
  EXPECT_TRUE(env_->FileExists(Path("a.bin")));
  ASSERT_TRUE(env_->RemoveFile(Path("a.bin")).ok());
  EXPECT_FALSE(env_->FileExists(Path("a.bin")));
}

TEST_F(EnvTest, LargeAppendBypassesBuffer) {
  // Larger than the 64 KiB write buffer: exercises the direct-write path.
  Bytes big(200 * 1024, 0xAB);
  auto file = env_->NewWritableFile(Path("big.bin"));
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(B("x")).ok());
  ASSERT_TRUE((*file)->Append(big).ok());
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_EQ(*env_->FileSize(Path("big.bin")), big.size() + 1);
  ASSERT_TRUE(env_->RemoveFile(Path("big.bin")).ok());
}

TEST_F(EnvTest, CloseWithoutSyncFlushesBufferedData) {
  auto file = env_->NewWritableFile(Path("flush.bin"));
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(B("buffered")).ok());
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_EQ(ByteView(*env_->ReadFileToBytes(Path("flush.bin"))).ToString(),
            "buffered");
  ASSERT_TRUE(env_->RemoveFile(Path("flush.bin")).ok());
}

TEST_F(EnvTest, AppendAfterCloseFails) {
  auto file = env_->NewWritableFile(Path("closed.bin"));
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_FALSE((*file)->Append(B("late")).ok());
  ASSERT_TRUE(env_->RemoveFile(Path("closed.bin")).ok());
}

TEST_F(EnvTest, ListDirSortedAndFiltered) {
  std::string sub = Path("listdir");
  ASSERT_TRUE(env_->CreateDir(sub).ok());
  for (const char* name : {"b.log", "a.log", "c.log"}) {
    auto file = env_->NewWritableFile(sub + "/" + name);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  auto names = env_->ListDir(sub);
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 3u);
  EXPECT_EQ((*names)[0], "a.log");
  EXPECT_EQ((*names)[2], "c.log");
  for (const char* name : {"a.log", "b.log", "c.log"}) {
    ASSERT_TRUE(env_->RemoveFile(sub + "/" + name).ok());
  }
}

TEST_F(EnvTest, ListDirOfMissingDirectoryFails) {
  EXPECT_FALSE(env_->ListDir(dir_ + "/nope").ok());
}

TEST_F(EnvTest, RenameReplacesTarget) {
  auto file = env_->NewWritableFile(Path("src.bin"));
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(B("new")).ok());
  ASSERT_TRUE((*file)->Close().ok());
  auto old = env_->NewWritableFile(Path("dst.bin"));
  ASSERT_TRUE(old.ok());
  ASSERT_TRUE((*old)->Append(B("old-old")).ok());
  ASSERT_TRUE((*old)->Close().ok());

  ASSERT_TRUE(env_->RenameFile(Path("src.bin"), Path("dst.bin")).ok());
  EXPECT_FALSE(env_->FileExists(Path("src.bin")));
  EXPECT_EQ(ByteView(*env_->ReadFileToBytes(Path("dst.bin"))).ToString(),
            "new");
  ASSERT_TRUE(env_->RemoveFile(Path("dst.bin")).ok());
}

TEST_F(EnvTest, TruncateShortensDurably) {
  auto file = env_->NewWritableFile(Path("trunc.bin"));
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(B("0123456789")).ok());
  ASSERT_TRUE((*file)->Close().ok());
  ASSERT_TRUE(env_->TruncateFile(Path("trunc.bin"), 4).ok());
  EXPECT_EQ(ByteView(*env_->ReadFileToBytes(Path("trunc.bin"))).ToString(),
            "0123");
  ASSERT_TRUE(env_->RemoveFile(Path("trunc.bin")).ok());
}

TEST_F(EnvTest, ReadingADirectoryIsAnError) {
  auto content = env_->ReadFileToBytes(dir_);
  ASSERT_FALSE(content.ok());
  EXPECT_EQ(content.status().code(), StatusCode::kIoError);
}

TEST(ParentDirTest, SplitsPaths) {
  EXPECT_EQ(ParentDir("/a/b/c.log"), "/a/b");
  EXPECT_EQ(ParentDir("/c.log"), "/");
  EXPECT_EQ(ParentDir("c.log"), ".");
}

// ---------------------------------------------------------------------------
// FaultInjectionEnv
// ---------------------------------------------------------------------------

class FaultInjectionEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/provdb_fault_env_test";
    ASSERT_TRUE(Env::Default()->CreateDir(dir_).ok());
    env_ = std::make_unique<FaultInjectionEnv>(Env::Default());
  }

  std::string Path(const std::string& name) { return dir_ + "/" + name; }

  std::string dir_;
  std::unique_ptr<FaultInjectionEnv> env_;
};

TEST_F(FaultInjectionEnvTest, CountsAppendsAndSyncs) {
  auto file = env_->NewWritableFile(Path("c.bin"));
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(B("one")).ok());
  ASSERT_TRUE((*file)->Append(B("two")).ok());
  ASSERT_TRUE((*file)->Sync().ok());
  EXPECT_EQ(env_->append_count(), 2u);
  EXPECT_EQ(env_->sync_count(), 1u);
  EXPECT_EQ(env_->appended_bytes(Path("c.bin")), 6u);
  EXPECT_EQ(env_->synced_bytes(Path("c.bin")), 6u);
  ASSERT_TRUE((*file)->Close().ok());
}

TEST_F(FaultInjectionEnvTest, DropUnsyncedFileDataTruncatesToLastSync) {
  auto file = env_->NewWritableFile(Path("d.bin"));
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(B("durable|")).ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Append(B("volatile")).ok());
  ASSERT_TRUE((*file)->Close().ok());

  // Before the crash both halves are visible...
  EXPECT_EQ(*Env::Default()->FileSize(Path("d.bin")), 16u);
  // ...after the power cut only the synced prefix remains.
  ASSERT_TRUE(env_->DropUnsyncedFileData().ok());
  EXPECT_EQ(ByteView(*env_->ReadFileToBytes(Path("d.bin"))).ToString(),
            "durable|");
}

TEST_F(FaultInjectionEnvTest, NeverSyncedFileDropsToEmpty) {
  auto file = env_->NewWritableFile(Path("e.bin"));
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(B("all-volatile")).ok());
  ASSERT_TRUE((*file)->Close().ok());
  ASSERT_TRUE(env_->DropUnsyncedFileData().ok());
  EXPECT_EQ(*env_->FileSize(Path("e.bin")), 0u);
}

TEST_F(FaultInjectionEnvTest, ScheduledAppendFailureFiresOnce) {
  auto file = env_->NewWritableFile(Path("f.bin"));
  ASSERT_TRUE(file.ok());
  env_->ScheduleAppendFailure(2);
  ASSERT_TRUE((*file)->Append(B("ok-1")).ok());
  Status failed = (*file)->Append(B("boom"));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  // The failing append left no bytes and the fault does not re-fire.
  EXPECT_EQ(env_->appended_bytes(Path("f.bin")), 4u);
  ASSERT_TRUE((*file)->Append(B("ok-2")).ok());
  ASSERT_TRUE((*file)->Close().ok());
}

TEST_F(FaultInjectionEnvTest, TornAppendWritesHalfTheData) {
  auto file = env_->NewWritableFile(Path("g.bin"));
  ASSERT_TRUE(file.ok());
  env_->ScheduleAppendFailure(1, /*torn=*/true);
  Status failed = (*file)->Append(B("0123456789"));
  ASSERT_FALSE(failed.ok());
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_EQ(ByteView(*env_->ReadFileToBytes(Path("g.bin"))).ToString(),
            "01234");
}

TEST_F(FaultInjectionEnvTest, ScheduledSyncFailureAndInactiveFilesystem) {
  auto file = env_->NewWritableFile(Path("h.bin"));
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(B("x")).ok());
  env_->ScheduleSyncFailure(1);
  EXPECT_FALSE((*file)->Sync().ok());
  EXPECT_TRUE((*file)->Sync().ok()) << "sync fault must fire exactly once";

  env_->SetFilesystemActive(false);
  EXPECT_FALSE((*file)->Append(B("y")).ok());
  EXPECT_FALSE((*file)->Sync().ok());
  EXPECT_FALSE(env_->NewWritableFile(Path("i.bin")).ok());
  env_->ClearFaults();
  EXPECT_TRUE((*file)->Append(B("z")).ok());
  ASSERT_TRUE((*file)->Close().ok());
}

TEST_F(FaultInjectionEnvTest, RenameCarriesSyncStateAcrossNames) {
  auto file = env_->NewWritableFile(Path("j.tmp"));
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(B("synced")).ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());
  ASSERT_TRUE(env_->RenameFile(Path("j.tmp"), Path("j.bin")).ok());
  EXPECT_GE(env_->dir_sync_count(), 1u);

  ASSERT_TRUE(env_->DropUnsyncedFileData().ok());
  EXPECT_EQ(ByteView(*env_->ReadFileToBytes(Path("j.bin"))).ToString(),
            "synced");
}

}  // namespace
}  // namespace provdb::storage
