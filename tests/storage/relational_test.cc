#include "storage/relational.h"

#include <gtest/gtest.h>

namespace provdb::storage {
namespace {

class RelationalTest : public ::testing::Test {
 protected:
  RelationalTest() : db_("testdb") {}

  ObjectId MakePatientsTable() {
    auto table = db_.CreateTable("patients", {"age", "weight"});
    EXPECT_TRUE(table.ok());
    return *table;
  }

  RelationalDatabase db_;
};

TEST_F(RelationalTest, FreshDatabaseHasOnlyRoot) {
  EXPECT_EQ(db_.NodeCount(), 1u);
  EXPECT_EQ(db_.name(), "testdb");
  auto root = db_.tree().GetNode(db_.root());
  ASSERT_TRUE(root.ok());
  EXPECT_EQ((*root)->value, Value::String("testdb"));
}

TEST_F(RelationalTest, CreateTableAddsNodeUnderRoot) {
  ObjectId table = MakePatientsTable();
  EXPECT_EQ(db_.NodeCount(), 2u);
  EXPECT_EQ((*db_.tree().GetNode(table))->parent, db_.root());
  EXPECT_EQ(*db_.TableId("patients"), table);
  EXPECT_EQ(*db_.Columns(table),
            (std::vector<std::string>{"age", "weight"}));
}

TEST_F(RelationalTest, DuplicateTableNameFails) {
  MakePatientsTable();
  EXPECT_FALSE(db_.CreateTable("patients", {"x"}).ok());
}

TEST_F(RelationalTest, EmptySchemaFails) {
  EXPECT_FALSE(db_.CreateTable("empty", {}).ok());
}

TEST_F(RelationalTest, InsertRowCreatesRowAndCells) {
  ObjectId table = MakePatientsTable();
  auto row = db_.InsertRow(table, {Value::Int(44), Value::Double(81.5)});
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(db_.NodeCount(), 5u);  // root + table + row + 2 cells
  EXPECT_EQ(*db_.GetCell(*row, 0), Value::Int(44));
  EXPECT_EQ(*db_.GetCell(*row, 1), Value::Double(81.5));
}

TEST_F(RelationalTest, InsertRowArityChecked) {
  ObjectId table = MakePatientsTable();
  EXPECT_FALSE(db_.InsertRow(table, {Value::Int(44)}).ok());
  EXPECT_FALSE(db_.InsertRow(table, {Value::Int(1), Value::Int(2),
                                     Value::Int(3)})
                   .ok());
  EXPECT_FALSE(db_.InsertRow(999, {Value::Int(44)}).ok());
}

TEST_F(RelationalTest, UpdateCell) {
  ObjectId table = MakePatientsTable();
  auto row = db_.InsertRow(table, {Value::Int(44), Value::Double(81.5)});
  ASSERT_TRUE(db_.UpdateCell(*row, 0, Value::Int(45)).ok());
  EXPECT_EQ(*db_.GetCell(*row, 0), Value::Int(45));
  EXPECT_FALSE(db_.UpdateCell(*row, 5, Value::Int(0)).ok());
  EXPECT_FALSE(db_.UpdateCell(999, 0, Value::Int(0)).ok());
}

TEST_F(RelationalTest, DeleteRowRemovesRowAndCells) {
  ObjectId table = MakePatientsTable();
  auto row1 = db_.InsertRow(table, {Value::Int(1), Value::Double(1.0)});
  auto row2 = db_.InsertRow(table, {Value::Int(2), Value::Double(2.0)});
  size_t before = db_.NodeCount();
  ASSERT_TRUE(db_.DeleteRow(*row1).ok());
  EXPECT_EQ(db_.NodeCount(), before - 3);  // row + 2 cells
  EXPECT_FALSE(db_.tree().Contains(*row1));
  EXPECT_TRUE(db_.tree().Contains(*row2));
  EXPECT_EQ(db_.RowsOf(table)->size(), 1u);
}

TEST_F(RelationalTest, RowsOfListsAscending) {
  ObjectId table = MakePatientsTable();
  std::vector<ObjectId> rows;
  for (int i = 0; i < 5; ++i) {
    rows.push_back(
        *db_.InsertRow(table, {Value::Int(i), Value::Double(i)}));
  }
  EXPECT_EQ(*db_.RowsOf(table), rows);
}

TEST_F(RelationalTest, RowOrdinalsStoredAsRowValues) {
  ObjectId table = MakePatientsTable();
  auto row0 = db_.InsertRow(table, {Value::Int(0), Value::Double(0)});
  auto row1 = db_.InsertRow(table, {Value::Int(0), Value::Double(0)});
  EXPECT_EQ((*db_.tree().GetNode(*row0))->value, Value::Int(0));
  EXPECT_EQ((*db_.tree().GetNode(*row1))->value, Value::Int(1));
}

TEST_F(RelationalTest, MultipleTablesShareRoot) {
  ObjectId t1 = MakePatientsTable();
  auto t2 = db_.CreateTable("labs", {"wbc"});
  ASSERT_TRUE(t2.ok());
  auto root_node = db_.tree().GetNode(db_.root());
  EXPECT_EQ((*root_node)->children.size(), 2u);
  EXPECT_NE(t1, *t2);
}

TEST_F(RelationalTest, UnknownLookupsFail) {
  EXPECT_FALSE(db_.TableId("missing").ok());
  EXPECT_FALSE(db_.Columns(999).ok());
  EXPECT_FALSE(db_.RowsOf(999).ok());
  EXPECT_FALSE(db_.CellId(999, 0).ok());
}

TEST_F(RelationalTest, DepthFourStructure) {
  // The paper's §5.1 tree: root(0) -> table(1) -> row(2) -> cell(3).
  ObjectId table = MakePatientsTable();
  auto row = db_.InsertRow(table, {Value::Int(1), Value::Double(2)});
  auto cell = db_.CellId(*row, 0);
  EXPECT_EQ(*db_.tree().DepthOf(db_.root()), 0u);
  EXPECT_EQ(*db_.tree().DepthOf(table), 1u);
  EXPECT_EQ(*db_.tree().DepthOf(*row), 2u);
  EXPECT_EQ(*db_.tree().DepthOf(*cell), 3u);
}

}  // namespace
}  // namespace provdb::storage
