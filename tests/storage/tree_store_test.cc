#include "storage/tree_store.h"

#include <gtest/gtest.h>

namespace provdb::storage {
namespace {

TEST(TreeStoreTest, InsertRootsAndChildren) {
  TreeStore tree;
  auto root = tree.Insert(Value::String("db"));
  ASSERT_TRUE(root.ok());
  auto child = tree.Insert(Value::Int(1), *root);
  ASSERT_TRUE(child.ok());
  EXPECT_EQ(tree.size(), 2u);

  auto node = tree.GetNode(*child);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ((*node)->parent, *root);
  EXPECT_EQ((*node)->value, Value::Int(1));
  EXPECT_TRUE((*node)->is_leaf());

  auto root_node = tree.GetNode(*root);
  EXPECT_EQ((*root_node)->children, std::vector<ObjectId>{*child});
  EXPECT_TRUE((*root_node)->is_root());
}

TEST(TreeStoreTest, InsertUnderMissingParentFails) {
  TreeStore tree;
  auto r = tree.Insert(Value::Int(1), 999);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(tree.size(), 0u);
}

TEST(TreeStoreTest, IdsAreUniqueAndNeverReused) {
  TreeStore tree;
  auto a = tree.Insert(Value::Int(1));
  auto b = tree.Insert(Value::Int(2));
  EXPECT_NE(*a, *b);
  ASSERT_TRUE(tree.Delete(*a).ok());
  auto c = tree.Insert(Value::Int(3));
  EXPECT_NE(*c, *a);
  EXPECT_NE(*c, *b);
}

TEST(TreeStoreTest, ChildrenKeptSorted) {
  TreeStore tree;
  auto root = tree.Insert(Value::Int(0));
  std::vector<ObjectId> kids;
  for (int i = 0; i < 10; ++i) {
    kids.push_back(*tree.Insert(Value::Int(i), *root));
  }
  auto node = tree.GetNode(*root);
  std::vector<ObjectId> sorted = kids;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ((*node)->children, sorted);
}

TEST(TreeStoreTest, UpdateReplacesValue) {
  TreeStore tree;
  auto id = tree.Insert(Value::Int(1));
  ASSERT_TRUE(tree.Update(*id, Value::String("new")).ok());
  EXPECT_EQ((*tree.GetNode(*id))->value, Value::String("new"));
  EXPECT_FALSE(tree.Update(12345, Value::Int(0)).ok());
}

TEST(TreeStoreTest, DeleteLeafOnly) {
  TreeStore tree;
  auto root = tree.Insert(Value::Int(0));
  auto child = tree.Insert(Value::Int(1), *root);
  Status s = tree.Delete(*root);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(tree.Delete(*child).ok());
  EXPECT_TRUE(tree.Delete(*root).ok());  // now a leaf
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Delete(*child).ok());  // already gone
}

TEST(TreeStoreTest, DeleteDetachesFromParent) {
  TreeStore tree;
  auto root = tree.Insert(Value::Int(0));
  auto a = tree.Insert(Value::Int(1), *root);
  auto b = tree.Insert(Value::Int(2), *root);
  ASSERT_TRUE(tree.Delete(*a).ok());
  EXPECT_EQ((*tree.GetNode(*root))->children, std::vector<ObjectId>{*b});
}

TEST(TreeStoreTest, AggregateDeepCopiesInputs) {
  TreeStore tree;
  auto a = tree.Insert(Value::String("a"));
  auto a_child = tree.Insert(Value::Int(1), *a);
  auto b = tree.Insert(Value::String("b"));

  auto agg = tree.Aggregate({*a, *b}, Value::String("agg"));
  ASSERT_TRUE(agg.ok());
  // Original inputs untouched and independent.
  EXPECT_TRUE(tree.Contains(*a));
  EXPECT_TRUE(tree.Contains(*b));
  EXPECT_TRUE(tree.Contains(*a_child));

  auto agg_node = tree.GetNode(*agg);
  ASSERT_TRUE(agg_node.ok());
  EXPECT_EQ((*agg_node)->children.size(), 2u);
  EXPECT_TRUE((*agg_node)->is_root());

  // The copies mirror structure and values but have fresh ids.
  auto size = tree.SubtreeSize(*agg);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 4u);  // agg + copy(a) + copy(a_child) + copy(b)

  // Mutating the original does not affect the aggregate copy.
  ASSERT_TRUE(tree.Update(*a_child, Value::Int(999)).ok());
  ObjectId copy_of_a = (*agg_node)->children[0];
  auto copy_children = (*tree.GetNode(copy_of_a))->children;
  ASSERT_EQ(copy_children.size(), 1u);
  EXPECT_EQ((*tree.GetNode(copy_children[0]))->value, Value::Int(1));
}

TEST(TreeStoreTest, AggregateRequiresExistingInputs) {
  TreeStore tree;
  auto a = tree.Insert(Value::Int(1));
  EXPECT_FALSE(tree.Aggregate({*a, 999}, Value::Int(0)).ok());
  EXPECT_FALSE(tree.Aggregate({}, Value::Int(0)).ok());
}

TEST(TreeStoreTest, VisitSubtreePreOrderSortedChildren) {
  TreeStore tree;
  auto root = tree.Insert(Value::Int(0));
  auto r1 = tree.Insert(Value::Int(1), *root);
  auto r2 = tree.Insert(Value::Int(2), *root);
  auto c1 = tree.Insert(Value::Int(11), *r1);
  auto c2 = tree.Insert(Value::Int(12), *r1);

  std::vector<ObjectId> order;
  std::vector<size_t> depths;
  ASSERT_TRUE(tree.VisitSubtree(*root, [&](const TreeNode& n, size_t d) {
    order.push_back(n.id);
    depths.push_back(d);
    return Status::OK();
  }).ok());
  EXPECT_EQ(order, (std::vector<ObjectId>{*root, *r1, *c1, *c2, *r2}));
  EXPECT_EQ(depths, (std::vector<size_t>{0, 1, 2, 2, 1}));
}

TEST(TreeStoreTest, VisitSubtreeStopsOnCallbackError) {
  TreeStore tree;
  auto root = tree.Insert(Value::Int(0));
  tree.Insert(Value::Int(1), *root).value();
  int visits = 0;
  Status s = tree.VisitSubtree(*root, [&](const TreeNode&, size_t) {
    ++visits;
    return Status::Internal("stop");
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(visits, 1);
}

TEST(TreeStoreTest, VisitMissingRootFails) {
  TreeStore tree;
  EXPECT_FALSE(
      tree.VisitSubtree(1, [](const TreeNode&, size_t) { return Status::OK(); })
          .ok());
}

TEST(TreeStoreTest, AncestryQueries) {
  TreeStore tree;
  auto root = tree.Insert(Value::Int(0));
  auto table = tree.Insert(Value::Int(1), *root);
  auto row = tree.Insert(Value::Int(2), *table);
  auto cell = tree.Insert(Value::Int(3), *row);

  EXPECT_EQ(tree.AncestorsOf(*cell),
            (std::vector<ObjectId>{*row, *table, *root}));
  EXPECT_TRUE(tree.AncestorsOf(*root).empty());
  EXPECT_TRUE(tree.AncestorsOf(999).empty());

  EXPECT_EQ(*tree.RootOf(*cell), *root);
  EXPECT_EQ(*tree.RootOf(*root), *root);
  EXPECT_FALSE(tree.RootOf(999).ok());

  EXPECT_EQ(*tree.DepthOf(*cell), 3u);
  EXPECT_EQ(*tree.DepthOf(*root), 0u);
}

TEST(TreeStoreTest, SortedRootsListsAllForestRoots) {
  TreeStore tree;
  auto a = tree.Insert(Value::Int(1));
  auto b = tree.Insert(Value::Int(2));
  tree.Insert(Value::Int(3), *a).value();
  std::vector<ObjectId> roots = tree.SortedRoots();
  EXPECT_EQ(roots, (std::vector<ObjectId>{*a, *b}));
}

TEST(TreeStoreTest, SubtreeSizeCountsAllDescendants) {
  TreeStore tree;
  auto root = tree.Insert(Value::Int(0));
  for (int r = 0; r < 3; ++r) {
    auto row = tree.Insert(Value::Int(r), *root);
    for (int c = 0; c < 4; ++c) {
      tree.Insert(Value::Int(c), *row).value();
    }
  }
  EXPECT_EQ(*tree.SubtreeSize(*root), 16u);  // 1 + 3 + 12
  EXPECT_FALSE(tree.SubtreeSize(999).ok());
}

TEST(TreeStoreTest, DeepTreeTraversalDoesNotOverflowStack) {
  TreeStore tree;
  ObjectId current = *tree.Insert(Value::Int(0));
  ObjectId root = current;
  for (int i = 0; i < 100000; ++i) {
    current = *tree.Insert(Value::Int(i), current);
  }
  EXPECT_EQ(*tree.SubtreeSize(root), 100001u);
}

}  // namespace
}  // namespace provdb::storage
