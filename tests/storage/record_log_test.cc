#include "storage/record_log.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "common/rng.h"

namespace provdb::storage {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Bytes Payload(std::string_view s) { return ByteView(s).ToBytes(); }

TEST(RecordLogTest, AppendAndGet) {
  RecordLog log;
  EXPECT_EQ(log.record_count(), 0u);
  uint64_t i0 = log.Append(Payload("first"));
  uint64_t i1 = log.Append(Payload("second"));
  EXPECT_EQ(i0, 0u);
  EXPECT_EQ(i1, 1u);
  EXPECT_EQ(log.record_count(), 2u);
  EXPECT_EQ(log.Get(0)->ToString(), "first");
  EXPECT_EQ(log.Get(1)->ToString(), "second");
  EXPECT_FALSE(log.Get(2).ok());
}

TEST(RecordLogTest, EmptyPayloadAllowed) {
  RecordLog log;
  log.Append(ByteView());
  EXPECT_EQ(log.record_count(), 1u);
  EXPECT_TRUE(log.Get(0)->empty());
}

TEST(RecordLogTest, ByteAccounting) {
  RecordLog log;
  log.Append(Payload("abc"));
  log.Append(Payload("defgh"));
  EXPECT_EQ(log.total_payload_bytes(), 8u);
  // frame = varint(3)+3+4 + varint(5)+5+4 = 8 + 10 + 2 varint bytes
  EXPECT_EQ(log.total_frame_bytes(), 18u);
}

TEST(RecordLogTest, ForEachVisitsInOrder) {
  RecordLog log;
  for (int i = 0; i < 10; ++i) {
    log.Append(Payload("p" + std::to_string(i)));
  }
  std::vector<std::string> seen;
  ASSERT_TRUE(log.ForEach([&](uint64_t index, ByteView payload) {
    EXPECT_EQ(index, seen.size());
    seen.push_back(payload.ToString());
    return Status::OK();
  }).ok());
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(seen[7], "p7");
}

TEST(RecordLogTest, ForEachPropagatesError) {
  RecordLog log;
  log.Append(Payload("a"));
  log.Append(Payload("b"));
  int visits = 0;
  Status s = log.ForEach([&](uint64_t, ByteView) {
    ++visits;
    return Status::Internal("boom");
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(visits, 1);
}

TEST(RecordLogTest, SaveLoadRoundTrip) {
  std::string path = TempPath("log_roundtrip.bin");
  RecordLog log;
  Rng rng(42);
  std::vector<Bytes> payloads;
  for (int i = 0; i < 50; ++i) {
    Bytes p;
    rng.NextBytes(&p, rng.NextBelow(200));
    payloads.push_back(p);
    log.Append(p);
  }
  ASSERT_TRUE(log.SaveToFile(path).ok());

  auto loaded = RecordLog::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->record_count(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(loaded->Get(i)->ToBytes(), payloads[i]) << i;
  }
  std::remove(path.c_str());
}

TEST(RecordLogTest, EmptyLogRoundTrips) {
  std::string path = TempPath("log_empty.bin");
  RecordLog log;
  ASSERT_TRUE(log.SaveToFile(path).ok());
  auto loaded = RecordLog::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->record_count(), 0u);
  std::remove(path.c_str());
}

TEST(RecordLogTest, CorruptionDetectedOnLoad) {
  std::string path = TempPath("log_corrupt.bin");
  RecordLog log;
  log.Append(Payload("payload-one"));
  log.Append(Payload("payload-two"));
  ASSERT_TRUE(log.SaveToFile(path).ok());

  // Flip one payload byte on disk.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 3, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, 3, SEEK_SET);
  std::fputc(c ^ 0x01, f);
  std::fclose(f);

  auto loaded = RecordLog::LoadFromFile(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(RecordLogTest, TruncationDetectedOnLoad) {
  std::string path = TempPath("log_truncated.bin");
  RecordLog log;
  log.Append(Bytes(100, 0x55));
  ASSERT_TRUE(log.SaveToFile(path).ok());

  // Truncate the file mid-record.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(truncate(path.c_str(), 50), 0);
  std::fclose(f);

  EXPECT_FALSE(RecordLog::LoadFromFile(path).ok());
  std::remove(path.c_str());
}

TEST(RecordLogTest, MissingFileFailsCleanly) {
  auto loaded = RecordLog::LoadFromFile(TempPath("does_not_exist.bin"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace provdb::storage
