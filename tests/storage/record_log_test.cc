#include "storage/record_log.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "common/rng.h"
#include "storage/fault_injection_env.h"

namespace provdb::storage {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Bytes Payload(std::string_view s) { return ByteView(s).ToBytes(); }

TEST(RecordLogTest, AppendAndGet) {
  RecordLog log;
  EXPECT_EQ(log.record_count(), 0u);
  uint64_t i0 = *log.Append(Payload("first"));
  uint64_t i1 = *log.Append(Payload("second"));
  EXPECT_EQ(i0, 0u);
  EXPECT_EQ(i1, 1u);
  EXPECT_EQ(log.record_count(), 2u);
  EXPECT_EQ(log.Get(0)->ToString(), "first");
  EXPECT_EQ(log.Get(1)->ToString(), "second");
  EXPECT_FALSE(log.Get(2).ok());
}

TEST(RecordLogTest, EmptyPayloadAllowed) {
  RecordLog log;
  ASSERT_TRUE(log.Append(ByteView()).ok());
  EXPECT_EQ(log.record_count(), 1u);
  EXPECT_TRUE(log.Get(0)->empty());
}

// Regression (silent frame-length truncation): payloads wider than the
// 32-bit frame length must be rejected, not cast down to a corrupt
// length. The view is never dereferenced, so a fake huge view is safe.
TEST(RecordLogTest, OversizedPayloadRejectedWithStatus) {
  RecordLog log;
  uint8_t byte = 0;
  ByteView huge(&byte, static_cast<size_t>(0xFFFFFFFFu) + 1);
  auto result = log.Append(huge);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(log.record_count(), 0u);
}

TEST(RecordLogTest, ByteAccounting) {
  RecordLog log;
  ASSERT_TRUE(log.Append(Payload("abc")).ok());
  ASSERT_TRUE(log.Append(Payload("defgh")).ok());
  EXPECT_EQ(log.total_payload_bytes(), 8u);
  // frame = varint(3)+3+4 + varint(5)+5+4 = 8 + 10 + 2 varint bytes
  EXPECT_EQ(log.total_frame_bytes(), 18u);
}

TEST(RecordLogTest, ForEachVisitsInOrder) {
  RecordLog log;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(log.Append(Payload("p" + std::to_string(i))).ok());
  }
  std::vector<std::string> seen;
  ASSERT_TRUE(log.ForEach([&](uint64_t index, ByteView payload) {
    EXPECT_EQ(index, seen.size());
    seen.push_back(payload.ToString());
    return Status::OK();
  }).ok());
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(seen[7], "p7");
}

TEST(RecordLogTest, ForEachPropagatesError) {
  RecordLog log;
  ASSERT_TRUE(log.Append(Payload("a")).ok());
  ASSERT_TRUE(log.Append(Payload("b")).ok());
  int visits = 0;
  Status s = log.ForEach([&](uint64_t, ByteView) {
    ++visits;
    return Status::Internal("boom");
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(visits, 1);
}

TEST(RecordLogTest, SaveLoadRoundTrip) {
  std::string path = TempPath("log_roundtrip.bin");
  RecordLog log;
  Rng rng(42);
  std::vector<Bytes> payloads;
  for (int i = 0; i < 50; ++i) {
    Bytes p;
    rng.NextBytes(&p, rng.NextBelow(200));
    payloads.push_back(p);
    ASSERT_TRUE(log.Append(p).ok());
  }
  ASSERT_TRUE(log.SaveToFile(path).ok());

  auto loaded = RecordLog::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->record_count(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(loaded->Get(i)->ToBytes(), payloads[i]) << i;
  }
  std::remove(path.c_str());
}

TEST(RecordLogTest, EmptyLogRoundTrips) {
  std::string path = TempPath("log_empty.bin");
  RecordLog log;
  ASSERT_TRUE(log.SaveToFile(path).ok());
  auto loaded = RecordLog::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->record_count(), 0u);
  std::remove(path.c_str());
}

TEST(RecordLogTest, CorruptionDetectedOnLoad) {
  std::string path = TempPath("log_corrupt.bin");
  RecordLog log;
  ASSERT_TRUE(log.Append(Payload("payload-one")).ok());
  ASSERT_TRUE(log.Append(Payload("payload-two")).ok());
  ASSERT_TRUE(log.SaveToFile(path).ok());

  // Flip one payload byte on disk.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 3, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, 3, SEEK_SET);
  std::fputc(c ^ 0x01, f);
  std::fclose(f);

  auto loaded = RecordLog::LoadFromFile(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(RecordLogTest, TruncationDetectedOnLoad) {
  std::string path = TempPath("log_truncated.bin");
  RecordLog log;
  ASSERT_TRUE(log.Append(Bytes(100, 0x55)).ok());
  ASSERT_TRUE(log.SaveToFile(path).ok());

  // Truncate the file mid-record.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(truncate(path.c_str(), 50), 0);
  std::fclose(f);

  EXPECT_FALSE(RecordLog::LoadFromFile(path).ok());
  std::remove(path.c_str());
}

TEST(RecordLogTest, MissingFileFailsCleanly) {
  auto loaded = RecordLog::LoadFromFile(TempPath("does_not_exist.bin"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

// Regression (fread error == EOF): reading a path whose bytes cannot be
// read must be an I/O error, not a silently empty-but-valid log. A
// directory opens fine but read(2) fails on it, which is exactly the
// failing-disk shape the old fread loop swallowed.
TEST(RecordLogTest, UnreadableFileIsIoErrorNotEmptyLog) {
  std::string dir = TempPath("log_is_a_directory");
  ASSERT_TRUE(Env::Default()->CreateDir(dir).ok());
  auto loaded = RecordLog::LoadFromFile(dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

// Regression (no-fsync-before-rename): SaveToFile must sync the temp
// file before publishing it via rename and sync the directory after.
// With a FaultInjectionEnv, a simulated power cut immediately after
// SaveToFile returns must still find the complete log.
TEST(RecordLogTest, SaveSurvivesPowerCutAfterReturn) {
  FaultInjectionEnv env(Env::Default());
  std::string path = TempPath("log_durable.bin");
  RecordLog log;
  ASSERT_TRUE(log.Append(Payload("must-survive-1")).ok());
  ASSERT_TRUE(log.Append(Payload("must-survive-2")).ok());

  ASSERT_TRUE(log.SaveToFile(&env, path).ok());
  EXPECT_GE(env.sync_count(), 1u) << "temp file was never fsync'd";
  EXPECT_GE(env.dir_sync_count(), 1u) << "parent directory never fsync'd";

  // Power cut: all unsynced data vanishes. The published file must be
  // intact because its bytes were synced before the rename.
  ASSERT_TRUE(env.DropUnsyncedFileData().ok());
  auto loaded = RecordLog::LoadFromFile(&env, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->record_count(), 2u);
  EXPECT_EQ(loaded->Get(1)->ToString(), "must-survive-2");
  std::remove(path.c_str());
}

TEST(RecordLogTest, FailedSaveCleansUpTempAndReportsError) {
  FaultInjectionEnv env(Env::Default());
  std::string path = TempPath("log_failed_save.bin");
  RecordLog log;
  ASSERT_TRUE(log.Append(Payload("doomed")).ok());

  env.ScheduleAppendFailure(1);
  Status s = log.SaveToFile(&env, path);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_FALSE(env.FileExists(path));
  EXPECT_FALSE(env.FileExists(path + ".tmp")) << "temp file leaked";
}

TEST(RecordLogTest, FailedSyncDoesNotPublishTornFile) {
  FaultInjectionEnv env(Env::Default());
  std::string path = TempPath("log_failed_sync.bin");
  RecordLog log;
  ASSERT_TRUE(log.Append(Payload("doomed")).ok());

  env.ScheduleSyncFailure(1);
  Status s = log.SaveToFile(&env, path);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(env.FileExists(path))
      << "rename happened despite the failed fsync";
}

}  // namespace
}  // namespace provdb::storage
