#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace provdb {
namespace {

TEST(ThreadPoolTest, SubmitReturnsResults) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, MoveOnlyResultsAndVoidTasks) {
  ThreadPool pool(2);
  auto unique = pool.Submit(
      [] { return std::make_unique<std::string>("payload"); });
  EXPECT_EQ(*unique.get(), "payload");
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto failing = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  auto fine = pool.Submit([] { return 3; });
  EXPECT_THROW(
      {
        try {
          failing.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "task failed");
          throw;
        }
      },
      std::runtime_error);
  // A throwing task does not take its worker down.
  EXPECT_EQ(fine.get(), 3);
  EXPECT_EQ(pool.Submit([] { return 4; }).get(), 4);
}

TEST(ThreadPoolTest, ShutdownDrainsPendingTasks) {
  std::atomic<int> completed{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      futures.push_back(pool.Submit([&completed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++completed;
      }));
    }
    pool.Shutdown();  // graceful: every queued task runs first
    EXPECT_EQ(completed.load(), 64);
    EXPECT_EQ(pool.tasks_executed(), 64u);
  }
  for (auto& future : futures) {
    EXPECT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
  }
}

TEST(ThreadPoolTest, ShutdownIsIdempotentAndSubmitAfterRunsInline) {
  ThreadPool pool(2);
  pool.Shutdown();
  pool.Shutdown();
  // Late submissions still fulfill their futures (inline execution).
  auto late = pool.Submit([] { return std::this_thread::get_id(); });
  EXPECT_EQ(late.get(), std::this_thread::get_id());
}

TEST(ThreadPoolTest, TasksRunOnMultipleWorkers) {
  // Two tasks that must be in flight simultaneously: each waits for the
  // other to start, so completion proves two distinct workers exist.
  ThreadPool pool(2);
  std::atomic<int> started{0};
  auto rendezvous = [&started] {
    ++started;
    while (started.load() < 2) {
      std::this_thread::yield();
    }
  };
  auto first = pool.Submit(rendezvous);
  auto second = pool.Submit(rendezvous);
  first.get();
  second.get();
  EXPECT_EQ(started.load(), 2);
}

TEST(ThreadPoolTest, ManySubmittersOneConsumerStress) {
  ThreadPool pool(4);
  constexpr int kPerThread = 200;
  std::vector<std::thread> submitters;
  std::vector<std::vector<std::future<int>>> futures(4);
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&pool, &futures, t] {
      for (int i = 0; i < kPerThread; ++i) {
        futures[t].push_back(pool.Submit([t, i] { return t * kPerThread + i; }));
      }
    });
  }
  for (std::thread& submitter : submitters) {
    submitter.join();
  }
  long long sum = 0;
  for (auto& lane : futures) {
    for (auto& future : lane) {
      sum += future.get();
    }
  }
  constexpr long long n = 4LL * kPerThread;
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

}  // namespace
}  // namespace provdb
