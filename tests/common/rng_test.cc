#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace provdb {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowStaysInBounds) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowZeroIsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.NextBelow(0), 0u);
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(rng.NextBelow(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(9);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    heads += rng.NextBool(0.2) ? 1 : 0;
  }
  EXPECT_NEAR(heads / 10000.0, 0.2, 0.02);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(RngTest, NextBytesExactLength) {
  Rng rng(4);
  Bytes out;
  for (size_t n : {0u, 1u, 7u, 8u, 9u, 100u}) {
    rng.NextBytes(&out, n);
    EXPECT_EQ(out.size(), n);
  }
}

TEST(RngTest, NextStringIsLowercaseAscii) {
  Rng rng(6);
  std::string s = rng.NextString(500);
  EXPECT_EQ(s.size(), 500u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

}  // namespace
}  // namespace provdb
