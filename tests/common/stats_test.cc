#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace provdb {
namespace {

TEST(RunningStatsTest, EmptyStats) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.ci95_half_width(), 0.0);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats stats;
  stats.Add(5.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_EQ(stats.mean(), 5.0);
  EXPECT_EQ(stats.min(), 5.0);
  EXPECT_EQ(stats.max(), 5.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, KnownSmallSample) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.Add(x);
  }
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, CiShrinksWithSampleCount) {
  Rng rng(1);
  RunningStats small, large;
  for (int i = 0; i < 10; ++i) small.Add(rng.NextDouble());
  Rng rng2(1);
  for (int i = 0; i < 1000; ++i) large.Add(rng2.NextDouble());
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
}

TEST(RunningStatsTest, CiCoversTrueMeanUsually) {
  // 95% CI over uniform[0,1) samples should cover 0.5 for most seeds.
  int covered = 0;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(seed);
    RunningStats stats;
    for (int i = 0; i < 100; ++i) {
      stats.Add(rng.NextDouble());
    }
    double lo = stats.mean() - stats.ci95_half_width();
    double hi = stats.mean() + stats.ci95_half_width();
    if (lo <= 0.5 && 0.5 <= hi) ++covered;
  }
  EXPECT_GE(covered, 34);  // ~95% of 40, with slack
}

TEST(StudentT95Test, PinnedCriticalValues) {
  // Standard two-sided 95% t-table entries.
  EXPECT_DOUBLE_EQ(StudentT95(1), 12.706);
  EXPECT_DOUBLE_EQ(StudentT95(2), 4.303);
  EXPECT_DOUBLE_EQ(StudentT95(4), 2.776);
  EXPECT_DOUBLE_EQ(StudentT95(9), 2.262);
  EXPECT_DOUBLE_EQ(StudentT95(29), 2.045);
  EXPECT_DOUBLE_EQ(StudentT95(30), 1.96);   // normal approximation from here
  EXPECT_DOUBLE_EQ(StudentT95(99), 1.96);
  EXPECT_DOUBLE_EQ(StudentT95(0), 0.0);
  // Monotone decreasing toward z across the table.
  for (size_t df = 1; df < 29; ++df) {
    EXPECT_GT(StudentT95(df), StudentT95(df + 1)) << "df " << df;
  }
}

TEST(RunningStatsTest, TinySampleUsesStudentT) {
  // Two samples {1, 3}: mean 2, s = sqrt(2), half-width t_1 * s / sqrt(2).
  RunningStats stats;
  stats.Add(1.0);
  stats.Add(3.0);
  EXPECT_NEAR(stats.ci95_half_width(), 12.706 * std::sqrt(2.0) / std::sqrt(2.0),
              1e-9);

  // Five samples 1..5: mean 3, s^2 = 2.5, half-width t_4 * s / sqrt(5).
  RunningStats five;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) five.Add(x);
  EXPECT_NEAR(five.ci95_half_width(),
              2.776 * std::sqrt(2.5) / std::sqrt(5.0), 1e-9);
  // The old z = 1.96 interval was 42% narrower — overconfident.
  EXPECT_GT(five.ci95_half_width(),
            1.96 * std::sqrt(2.5) / std::sqrt(5.0) * 1.4);
}

TEST(RunningStatsTest, LargeSampleKeepsNormalApproximation) {
  RunningStats stats;
  for (int i = 0; i < 100; ++i) stats.Add(static_cast<double>(i % 10));
  EXPECT_NEAR(stats.ci95_half_width(),
              1.96 * stats.stddev() / std::sqrt(100.0), 1e-12);
}

TEST(RunningStatsTest, ConstantSamplesHaveZeroVariance) {
  RunningStats stats;
  for (int i = 0; i < 50; ++i) stats.Add(3.25);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.25);
  EXPECT_NEAR(stats.variance(), 0.0, 1e-18);
  EXPECT_NEAR(stats.ci95_half_width(), 0.0, 1e-12);
}

}  // namespace
}  // namespace provdb
