#include "common/epoch.h"

#include <atomic>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace provdb {
namespace {

// A retirable node whose liveness is externally observable: construction
// installs a magic self-check, destruction scribbles it and bumps a
// counter. Readers assert the self-check, so a premature free shows up as
// a plain test failure (and as a use-after-free under ASan).
constexpr uint64_t kMagic = 0x9E3779B97F4A7C15ull;

struct TestNode : EpochRetired {
  explicit TestNode(uint64_t v, std::atomic<uint64_t>* freed_counter)
      : value(v), check(v ^ kMagic), freed(freed_counter) {}
  ~TestNode() override {
    check = 0xDEADDEADDEADDEADull;
    freed->fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t value;
  uint64_t check;
  std::atomic<uint64_t>* freed;
};

TEST(EpochDomainTest, PinReturnsCurrentEpochAndReleasesSlot) {
  EpochDomain domain;
  EXPECT_EQ(domain.min_pinned_epoch(), 0u);
  {
    EpochDomain::Guard guard = domain.Pin();
    EXPECT_TRUE(guard.pinned());
    EXPECT_EQ(guard.epoch(), domain.current_epoch());
    EXPECT_EQ(domain.min_pinned_epoch(), guard.epoch());
  }
  EXPECT_EQ(domain.min_pinned_epoch(), 0u);
}

TEST(EpochDomainTest, GuardMoveTransfersThePin) {
  EpochDomain domain;
  EpochDomain::Guard outer;
  EXPECT_FALSE(outer.pinned());
  {
    EpochDomain::Guard inner = domain.Pin();
    const uint64_t e = inner.epoch();
    outer = std::move(inner);
    EXPECT_FALSE(inner.pinned());  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(outer.pinned());
    EXPECT_EQ(outer.epoch(), e);
  }
  // The moved-from guard's destruction must not have released the slot.
  EXPECT_EQ(domain.min_pinned_epoch(), outer.epoch());
}

TEST(EpochDomainTest, CollectRequiresAnAdvancePastTheStamp) {
  EpochDomain domain;
  std::atomic<uint64_t> freed{0};
  domain.Retire(new TestNode(1, &freed));
  // Stamp == current global: a reader pinning right now could still have
  // reached the node, so collect must not free it yet.
  EXPECT_EQ(domain.Collect(), 0u);
  EXPECT_EQ(freed.load(), 0u);
  domain.Advance();
  EXPECT_EQ(domain.Collect(), 1u);
  EXPECT_EQ(freed.load(), 1u);
  EXPECT_EQ(domain.retired_pending(), 0u);
}

TEST(EpochDomainTest, PinnedReaderBlocksReclamationUntilRelease) {
  EpochDomain domain;
  std::atomic<uint64_t> freed{0};
  EpochDomain::Guard guard = domain.Pin();
  domain.Retire(new TestNode(7, &freed));
  domain.Advance();
  // The reader pinned at the retire epoch may still hold a reference.
  EXPECT_EQ(domain.Collect(), 0u);
  EXPECT_EQ(domain.retired_pending(), 1u);
  guard = EpochDomain::Guard();  // release
  EXPECT_EQ(domain.Collect(), 1u);
  EXPECT_EQ(freed.load(), 1u);
}

TEST(EpochDomainTest, LateReaderDoesNotBlockOlderGarbage) {
  EpochDomain domain;
  std::atomic<uint64_t> freed{0};
  domain.Retire(new TestNode(1, &freed));
  domain.Advance();
  // Pinned *after* the advance: can only reach post-advance structures,
  // so the pre-advance garbage is still collectible.
  EpochDomain::Guard guard = domain.Pin();
  EXPECT_EQ(domain.Collect(), 1u);
  EXPECT_EQ(freed.load(), 1u);
}

TEST(EpochDomainTest, MinPinnedEpochTracksTheOldestReader) {
  EpochDomain domain;
  EpochDomain::Guard old_reader = domain.Pin();
  const uint64_t old_epoch = old_reader.epoch();
  domain.Advance();
  EpochDomain::Guard new_reader = domain.Pin();
  EXPECT_GT(new_reader.epoch(), old_epoch);
  EXPECT_EQ(domain.min_pinned_epoch(), old_epoch);
  old_reader = EpochDomain::Guard();
  EXPECT_EQ(domain.min_pinned_epoch(), new_reader.epoch());
}

TEST(EpochDomainTest, DestructorDrainsEverythingStillRetired) {
  std::atomic<uint64_t> freed{0};
  {
    EpochDomain domain;
    domain.Retire(new TestNode(1, &freed));
    domain.Retire(new TestNode(2, &freed));
  }
  EXPECT_EQ(freed.load(), 2u);
}

// ---------------------------------------------------------------------
// Randomized reader/writer/reclaimer stress. The writer publishes a
// chain of COW versions through an atomic pointer, retiring and
// collecting as it goes; readers pin, traverse, and self-check. Any
// premature reclamation trips the magic check (and ASan); any data race
// is TSan's to catch — the test names carry "Concurrent" so the TSan CI
// stage selects them.
// ---------------------------------------------------------------------

struct StressResult {
  uint64_t reads = 0;
  uint64_t failures = 0;
};

TEST(EpochDomainConcurrentTest, ConcurrentReadersNeverSeeFreedNodes) {
  const uint64_t kSeed = 0xEB0C0DE5ull;
  SCOPED_TRACE("seed=" + std::to_string(kSeed));
  constexpr int kReaders = 3;
  constexpr uint64_t kVersions = 4000;

  EpochDomain domain;
  std::atomic<uint64_t> freed{0};
  std::atomic<TestNode*> published{new TestNode(0, &freed)};
  std::atomic<bool> done{false};

  ThreadPool pool(kReaders + 1);
  std::vector<std::future<StressResult>> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    const uint64_t reader_seed = kSeed + static_cast<uint64_t>(r) + 1;
    readers.push_back(pool.Submit([&domain, &published, &done, reader_seed] {
      Rng rng(reader_seed);
      StressResult result;
      while (!done.load(std::memory_order_acquire)) {
        EpochDomain::Guard guard = domain.Pin();
        // A pin protects everything reachable from loads made under it;
        // vary how many loads share one pin to exercise slot reuse.
        const uint64_t loads = 1 + rng.NextBelow(4);
        for (uint64_t i = 0; i < loads; ++i) {
          TestNode* node = published.load(std::memory_order_acquire);
          ++result.reads;
          if (node->check != (node->value ^ kMagic)) {
            ++result.failures;
          }
        }
      }
      return result;
    }));
  }

  std::future<void> writer = pool.Submit([&] {
    Rng rng(kSeed);
    for (uint64_t v = 1; v <= kVersions; ++v) {
      TestNode* next = new TestNode(v, &freed);
      TestNode* old = published.exchange(next, std::memory_order_acq_rel);
      domain.Retire(old);
      domain.Advance();
      if (rng.NextBelow(4) == 0) {
        domain.Collect();
      }
    }
    done.store(true, std::memory_order_release);
  });

  writer.get();
  uint64_t total_reads = 0;
  for (auto& reader : readers) {
    StressResult result = reader.get();
    total_reads += result.reads;
    EXPECT_EQ(result.failures, 0u);
  }
  EXPECT_GT(total_reads, 0u);

  // Quiesce: no readers pinned, final advance+collect drains everything
  // except the still-published current version.
  domain.Advance();
  domain.Collect();
  EXPECT_EQ(domain.retired_pending(), 0u);
  // The initial node plus every superseded version — everything except
  // the still-published final version — has been reclaimed.
  EXPECT_EQ(freed.load(), kVersions);
  delete published.load();
}

TEST(EpochDomainConcurrentTest, ConcurrentPinUnpinChurnKeepsCountsExact) {
  const uint64_t kSeed = 0x51075ull;
  SCOPED_TRACE("seed=" + std::to_string(kSeed));
  constexpr int kThreads = 8;
  constexpr uint64_t kPinsPerThread = 5000;

  EpochDomain domain;
  ThreadPool pool(kThreads);
  std::vector<std::future<void>> tasks;
  tasks.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    const uint64_t thread_seed = kSeed + static_cast<uint64_t>(t);
    tasks.push_back(pool.Submit([&domain, thread_seed] {
      Rng rng(thread_seed);
      for (uint64_t i = 0; i < kPinsPerThread; ++i) {
        EpochDomain::Guard a = domain.Pin();
        ASSERT_TRUE(a.pinned());
        if (rng.NextBelow(2) == 0) {
          // Overlapping pins from one thread are legal: protection
          // attaches to the slot, not the thread.
          EpochDomain::Guard b = domain.Pin();
          ASSERT_GE(b.epoch(), a.epoch());
        }
      }
    }));
  }
  for (auto& task : tasks) {
    task.get();
  }
  EXPECT_EQ(domain.min_pinned_epoch(), 0u);
  EXPECT_EQ(domain.retired_pending(), 0u);
}

}  // namespace
}  // namespace provdb
