#include "common/hashmix.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>

namespace provdb {
namespace {

// Mix64 is an on-disk contract: shard assignment is derived from it, so
// these exact values must never change. Pins computed once from the
// SplitMix64 finalizer and frozen here.
TEST(HashMixTest, PinnedValues) {
  EXPECT_EQ(Mix64(0), 0u);
  EXPECT_EQ(Mix64(1), 0x5692161d100b05e5ull);
  EXPECT_EQ(Mix64(2), 0xdbd238973a2b148aull);
  EXPECT_EQ(Mix64(42), 0xa759ea27d4727622ull);
  EXPECT_EQ(Mix64(0xffffffffffffffffull), 0xb4d055fcf2cbbd7bull);
}

TEST(HashMixTest, IsConstexpr) {
  static_assert(Mix64(7) == Mix64(7), "Mix64 must be usable at compile time");
  constexpr uint64_t v = Mix64(7);
  EXPECT_EQ(v, Mix64(7));
}

TEST(HashMixTest, SmallInputsSpreadAcrossShards) {
  // Sequential object ids (the common case: TreeStore allocates them
  // densely from 1) must not all land in one shard.
  for (size_t shards : {2u, 4u, 8u}) {
    std::set<uint64_t> hit;
    for (uint64_t id = 1; id <= 64; ++id) {
      hit.insert(Mix64(id) % shards);
    }
    EXPECT_EQ(hit.size(), shards) << "with " << shards << " shards";
  }
}

TEST(HashMixTest, NoCollisionsOnDenseRange) {
  // The finalizer is a bijection; a dense range must map injectively.
  std::set<uint64_t> out;
  for (uint64_t id = 0; id < 4096; ++id) {
    out.insert(Mix64(id));
  }
  EXPECT_EQ(out.size(), 4096u);
}

}  // namespace
}  // namespace provdb
