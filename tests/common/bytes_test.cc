#include "common/bytes.h"

#include <gtest/gtest.h>

namespace provdb {
namespace {

TEST(ByteViewTest, DefaultIsEmpty) {
  ByteView view;
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.size(), 0u);
}

TEST(ByteViewTest, ViewsBytesWithoutCopy) {
  Bytes data = {1, 2, 3, 4};
  ByteView view(data);
  EXPECT_EQ(view.size(), 4u);
  EXPECT_EQ(view.data(), data.data());
  EXPECT_EQ(view[2], 3);
}

TEST(ByteViewTest, ViewsStringView) {
  ByteView view(std::string_view("abc"));
  EXPECT_EQ(view.size(), 3u);
  EXPECT_EQ(view[0], 'a');
  EXPECT_EQ(view.ToString(), "abc");
}

TEST(ByteViewTest, SubviewClampsToBounds) {
  Bytes data = {10, 20, 30, 40, 50};
  ByteView view(data);
  ByteView mid = view.subview(1, 3);
  EXPECT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid[0], 20);
  EXPECT_EQ(view.subview(4).size(), 1u);
  EXPECT_EQ(view.subview(9).size(), 0u);
  EXPECT_EQ(view.subview(2, 100).size(), 3u);
}

TEST(ByteViewTest, EqualityComparesContents) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  EXPECT_TRUE(ByteView(a) == ByteView(b));
  EXPECT_FALSE(ByteView(a) == ByteView(c));
  EXPECT_FALSE(ByteView(a) == ByteView(a).subview(0, 2));
  EXPECT_TRUE(ByteView() == ByteView());
}

TEST(BytesTest, AppendHelpers) {
  Bytes out;
  AppendString(&out, "hi");
  AppendByte(&out, 0xFF);
  Bytes more = {1, 2};
  AppendBytes(&out, more);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0], 'h');
  EXPECT_EQ(out[2], 0xFF);
  EXPECT_EQ(out[4], 2);
}

TEST(BytesTest, Fixed32RoundTrip) {
  Bytes out;
  AppendFixed32(&out, 0xDEADBEEFu);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], 0xEF);  // little-endian
  EXPECT_EQ(ReadFixed32(out, 0), 0xDEADBEEFu);
}

TEST(BytesTest, Fixed64RoundTrip) {
  Bytes out;
  AppendFixed64(&out, 0x0123456789ABCDEFull);
  ASSERT_EQ(out.size(), 8u);
  EXPECT_EQ(ReadFixed64(out, 0), 0x0123456789ABCDEFull);
}

TEST(BytesTest, FixedReadsAtOffset) {
  Bytes out;
  AppendFixed32(&out, 1);
  AppendFixed32(&out, 0xCAFEBABEu);
  EXPECT_EQ(ReadFixed32(out, 4), 0xCAFEBABEu);
}

TEST(ConstantTimeEqualTest, MatchesMemcmpSemantics) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  Bytes d = {1, 2};
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  EXPECT_FALSE(ConstantTimeEqual(a, c));
  EXPECT_FALSE(ConstantTimeEqual(a, d));
  EXPECT_TRUE(ConstantTimeEqual(ByteView(), ByteView()));
}

}  // namespace
}  // namespace provdb
