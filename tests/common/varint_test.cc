#include "common/varint.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"

namespace provdb {
namespace {

TEST(VarintTest, SmallValuesAreOneByte) {
  for (uint64_t v : {0ull, 1ull, 127ull}) {
    Bytes out;
    AppendVarint64(&out, v);
    EXPECT_EQ(out.size(), 1u) << v;
    VarintReader reader(out);
    auto back = reader.ReadVarint64();
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
  }
}

TEST(VarintTest, BoundaryLengths) {
  struct Case {
    uint64_t value;
    size_t bytes;
  };
  const Case cases[] = {
      {127, 1},           {128, 2},
      {16383, 2},         {16384, 3},
      {(1ull << 35) - 1, 5}, {1ull << 35, 6},
      {std::numeric_limits<uint64_t>::max(), 10},
  };
  for (const Case& c : cases) {
    Bytes out;
    AppendVarint64(&out, c.value);
    EXPECT_EQ(out.size(), c.bytes) << c.value;
  }
}

TEST(VarintTest, RoundTripRandom) {
  Rng rng(99);
  Bytes out;
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    // Mix magnitudes so all byte lengths are exercised.
    uint64_t v = rng.NextUint64() >> rng.NextBelow(64);
    values.push_back(v);
    AppendVarint64(&out, v);
  }
  VarintReader reader(out);
  for (uint64_t v : values) {
    auto back = reader.ReadVarint64();
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
  }
  EXPECT_TRUE(reader.done());
}

TEST(VarintTest, SignedZigzagRoundTrip) {
  const std::vector<int64_t> cases = {
      0, 1, -1, 63, -64, 1234567, -1234567,
      std::numeric_limits<int64_t>::max(),
      std::numeric_limits<int64_t>::min()};
  for (int64_t v : cases) {
    Bytes out;
    AppendVarintSigned64(&out, v);
    VarintReader reader(out);
    auto back = reader.ReadVarintSigned64();
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
  }
}

TEST(VarintTest, SmallNegativesAreShort) {
  Bytes out;
  AppendVarintSigned64(&out, -1);
  EXPECT_EQ(out.size(), 1u);
}

TEST(VarintTest, TruncatedVarintIsCorruption) {
  Bytes out;
  AppendVarint64(&out, 300);  // two bytes
  out.pop_back();
  VarintReader reader(out);
  auto back = reader.ReadVarint64();
  EXPECT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kCorruption);
}

TEST(VarintTest, OverlongVarintIsCorruption) {
  Bytes out(11, 0x80);  // 11 continuation bytes: too long for 64 bits
  VarintReader reader(out);
  EXPECT_FALSE(reader.ReadVarint64().ok());
}

TEST(VarintTest, LengthPrefixedRoundTrip) {
  Bytes out;
  AppendLengthPrefixed(&out, ByteView(std::string_view("hello")));
  AppendLengthPrefixed(&out, ByteView());  // empty payload
  VarintReader reader(out);
  auto first = reader.ReadLengthPrefixed();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(ByteView(*first).ToString(), "hello");
  auto second = reader.ReadLengthPrefixed();
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->empty());
  EXPECT_TRUE(reader.done());
}

TEST(VarintTest, LengthPrefixedOverrunIsCorruption) {
  Bytes out;
  AppendVarint64(&out, 100);  // claims 100 bytes, provides none
  VarintReader reader(out);
  EXPECT_FALSE(reader.ReadLengthPrefixed().ok());
}

TEST(VarintTest, ReadRawBounds) {
  Bytes out = {1, 2, 3};
  VarintReader reader(out);
  auto two = reader.ReadRaw(2);
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(*two, (Bytes{1, 2}));
  EXPECT_FALSE(reader.ReadRaw(2).ok());  // only one byte left
  EXPECT_TRUE(reader.ReadRaw(1).ok());
}

}  // namespace
}  // namespace provdb
