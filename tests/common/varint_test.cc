#include "common/varint.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"

namespace provdb {
namespace {

TEST(VarintTest, SmallValuesAreOneByte) {
  for (uint64_t v : {0ull, 1ull, 127ull}) {
    Bytes out;
    AppendVarint64(&out, v);
    EXPECT_EQ(out.size(), 1u) << v;
    VarintReader reader(out);
    auto back = reader.ReadVarint64();
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
  }
}

TEST(VarintTest, BoundaryLengths) {
  struct Case {
    uint64_t value;
    size_t bytes;
  };
  const Case cases[] = {
      {127, 1},           {128, 2},
      {16383, 2},         {16384, 3},
      {(1ull << 35) - 1, 5}, {1ull << 35, 6},
      {std::numeric_limits<uint64_t>::max(), 10},
  };
  for (const Case& c : cases) {
    Bytes out;
    AppendVarint64(&out, c.value);
    EXPECT_EQ(out.size(), c.bytes) << c.value;
  }
}

TEST(VarintTest, RoundTripRandom) {
  Rng rng(99);
  Bytes out;
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    // Mix magnitudes so all byte lengths are exercised.
    uint64_t v = rng.NextUint64() >> rng.NextBelow(64);
    values.push_back(v);
    AppendVarint64(&out, v);
  }
  VarintReader reader(out);
  for (uint64_t v : values) {
    auto back = reader.ReadVarint64();
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
  }
  EXPECT_TRUE(reader.done());
}

TEST(VarintTest, SignedZigzagRoundTrip) {
  const std::vector<int64_t> cases = {
      0, 1, -1, 63, -64, 1234567, -1234567,
      std::numeric_limits<int64_t>::max(),
      std::numeric_limits<int64_t>::min()};
  for (int64_t v : cases) {
    Bytes out;
    AppendVarintSigned64(&out, v);
    VarintReader reader(out);
    auto back = reader.ReadVarintSigned64();
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
  }
}

TEST(VarintTest, SmallNegativesAreShort) {
  Bytes out;
  AppendVarintSigned64(&out, -1);
  EXPECT_EQ(out.size(), 1u);
}

TEST(VarintTest, TruncatedVarintIsCorruption) {
  Bytes out;
  AppendVarint64(&out, 300);  // two bytes
  out.pop_back();
  VarintReader reader(out);
  auto back = reader.ReadVarint64();
  EXPECT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kCorruption);
}

TEST(VarintTest, OverlongVarintIsCorruption) {
  Bytes out(11, 0x80);  // 11 continuation bytes: too long for 64 bits
  VarintReader reader(out);
  EXPECT_FALSE(reader.ReadVarint64().ok());
}

TEST(VarintTest, NonCanonicalEncodingsRejected) {
  // Overlong encodings decode to the same value as a shorter encoding;
  // accepting them would break the encode/decode bijection that the
  // tamper-evidence tests and the wire protocol rely on. AppendVarint64
  // never produces a terminal zero byte except for the one-byte zero, so
  // any multi-byte sequence ending in 0x00 must be rejected.
  const std::vector<Bytes> overlong = {
      {0x80, 0x00},              // 0 in two bytes
      {0x81, 0x00},              // 1 in two bytes
      {0xFF, 0x00},              // 127 in two bytes
      {0x80, 0x80, 0x00},        // 0 in three bytes
      {0xAC, 0x82, 0x80, 0x00},  // 300 in four bytes
  };
  for (const Bytes& bytes : overlong) {
    VarintReader reader(bytes);
    auto r = reader.ReadVarint64();
    ASSERT_FALSE(r.ok()) << ByteView(bytes).ToString();
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  }
  // The one-byte zero is the canonical encoding and must still decode.
  Bytes zero = {0x00};
  VarintReader reader(zero);
  auto r = reader.ReadVarint64();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 0u);
}

TEST(VarintTest, EncodeDecodeBijection) {
  // Every canonical encoding decodes back to its value (round trip), and
  // decoding then re-encoding reproduces the exact input bytes — i.e. the
  // decoder accepts exactly the image of the encoder.
  Rng rng(321);
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.NextUint64() >> rng.NextBelow(64);
    Bytes enc;
    AppendVarint64(&enc, v);
    VarintReader reader(enc);
    auto back = reader.ReadVarint64();
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
    EXPECT_TRUE(reader.done());
    Bytes re;
    AppendVarint64(&re, *back);
    EXPECT_EQ(re, enc);
  }
}

TEST(VarintTest, LengthPrefixedRoundTrip) {
  Bytes out;
  AppendLengthPrefixed(&out, ByteView(std::string_view("hello")));
  AppendLengthPrefixed(&out, ByteView());  // empty payload
  VarintReader reader(out);
  auto first = reader.ReadLengthPrefixed();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(ByteView(*first).ToString(), "hello");
  auto second = reader.ReadLengthPrefixed();
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->empty());
  EXPECT_TRUE(reader.done());
}

TEST(VarintTest, LengthPrefixedOverrunIsCorruption) {
  Bytes out;
  AppendVarint64(&out, 100);  // claims 100 bytes, provides none
  VarintReader reader(out);
  EXPECT_FALSE(reader.ReadLengthPrefixed().ok());
}

TEST(VarintTest, ReadRawBounds) {
  Bytes out = {1, 2, 3};
  VarintReader reader(out);
  auto two = reader.ReadRaw(2);
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(*two, (Bytes{1, 2}));
  EXPECT_FALSE(reader.ReadRaw(2).ok());  // only one byte left
  EXPECT_TRUE(reader.ReadRaw(1).ok());
}

}  // namespace
}  // namespace provdb
