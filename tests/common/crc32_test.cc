#include "common/crc32.h"

#include <gtest/gtest.h>

namespace provdb {
namespace {

TEST(Crc32Test, KnownVectors) {
  // Standard CRC-32 (IEEE) check values.
  EXPECT_EQ(Crc32(ByteView(std::string_view("123456789"))), 0xCBF43926u);
  EXPECT_EQ(Crc32(ByteView(std::string_view("a"))), 0xE8B7BE43u);
  EXPECT_EQ(Crc32(ByteView(std::string_view("abc"))), 0x352441C2u);
  EXPECT_EQ(Crc32(ByteView()), 0x00000000u);
}

TEST(Crc32Test, ExtendMatchesOneShot) {
  std::string full = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= full.size(); split += 7) {
    uint32_t part = Crc32(ByteView(std::string_view(full).substr(0, split)));
    uint32_t whole =
        Crc32Extend(part, ByteView(std::string_view(full).substr(split)));
    EXPECT_EQ(whole, Crc32(ByteView(std::string_view(full)))) << split;
  }
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  Bytes data(64, 0x5A);
  uint32_t original = Crc32(data);
  for (size_t byte = 0; byte < data.size(); byte += 9) {
    for (int bit = 0; bit < 8; bit += 3) {
      Bytes mutated = data;
      mutated[byte] ^= static_cast<uint8_t>(1 << bit);
      EXPECT_NE(Crc32(mutated), original) << byte << ":" << bit;
    }
  }
}

}  // namespace
}  // namespace provdb
