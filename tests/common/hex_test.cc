#include "common/hex.h"

#include <gtest/gtest.h>

namespace provdb {
namespace {

TEST(HexTest, EncodeEmpty) { EXPECT_EQ(HexEncode(ByteView()), ""); }

TEST(HexTest, EncodeBytes) {
  Bytes data = {0x00, 0x01, 0xAB, 0xFF};
  EXPECT_EQ(HexEncode(data), "0001abff");
}

TEST(HexTest, DecodeLowercase) {
  auto decoded = HexDecode("deadbeef");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, (Bytes{0xDE, 0xAD, 0xBE, 0xEF}));
}

TEST(HexTest, DecodeUppercaseAndMixed) {
  auto decoded = HexDecode("DeAdBeEf");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, (Bytes{0xDE, 0xAD, 0xBE, 0xEF}));
}

TEST(HexTest, DecodeEmptyIsEmpty) {
  auto decoded = HexDecode("");
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(HexTest, OddLengthFails) {
  EXPECT_FALSE(HexDecode("abc").ok());
  EXPECT_EQ(HexDecode("abc").status().code(), StatusCode::kInvalidArgument);
}

TEST(HexTest, NonHexCharacterFails) {
  EXPECT_FALSE(HexDecode("zz").ok());
  EXPECT_FALSE(HexDecode("a ").ok());
}

TEST(HexTest, RoundTripAllByteValues) {
  Bytes all;
  for (int i = 0; i < 256; ++i) {
    all.push_back(static_cast<uint8_t>(i));
  }
  auto decoded = HexDecode(HexEncode(all));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, all);
}

}  // namespace
}  // namespace provdb
