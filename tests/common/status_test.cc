#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace provdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, NamedConstructorsCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    std::string_view name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("m"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("m"), StatusCode::kNotFound, "NotFound"},
      {Status::AlreadyExists("m"), StatusCode::kAlreadyExists,
       "AlreadyExists"},
      {Status::FailedPrecondition("m"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::OutOfRange("m"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::Corruption("m"), StatusCode::kCorruption, "Corruption"},
      {Status::IoError("m"), StatusCode::kIoError, "IoError"},
      {Status::VerificationFailed("m"), StatusCode::kVerificationFailed,
       "VerificationFailed"},
      {Status::Internal("m"), StatusCode::kInternal, "Internal"},
      {Status::Unimplemented("m"), StatusCode::kUnimplemented,
       "Unimplemented"},
      {Status::Unavailable("m"), StatusCode::kUnavailable, "Unavailable"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(c.status.message(), "m");
    EXPECT_EQ(c.status.ToString(), std::string(c.name) + ": m");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Corruption("x"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::Corruption("inner"); };
  auto outer = [&]() -> Status {
    PROVDB_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  Status s = outer();
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_EQ(s.message(), "inner");
}

TEST(StatusTest, ReturnIfErrorPassesThroughOk) {
  int reached = 0;
  auto outer = [&]() -> Status {
    PROVDB_RETURN_IF_ERROR(Status::OK());
    reached = 1;
    return Status::OK();
  };
  EXPECT_TRUE(outer().ok());
  EXPECT_EQ(reached, 1);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValueSupported) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, AssignOrReturnUnwrapsAndPropagates) {
  auto make = [](bool ok) -> Result<int> {
    if (ok) return 10;
    return Status::OutOfRange("nope");
  };
  auto sum = [&](bool ok) -> Result<int> {
    PROVDB_ASSIGN_OR_RETURN(int a, make(ok));
    PROVDB_ASSIGN_OR_RETURN(int b, make(true));
    return a + b;
  };
  Result<int> good = sum(true);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 20);
  Result<int> bad = sum(false);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace provdb
