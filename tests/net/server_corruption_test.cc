// Wire-protocol tamper matrix (mirrors the checkpoint tamper matrix's
// every-byte discipline, applied to the network boundary):
//
//   * every single-byte flip of a valid request frame, sent to a live
//     server on a fresh connection, must end in a typed error response
//     and/or a clean connection close — never a crash, never a hang,
//     never a partial commit;
//   * every length-truncation of a request frame, followed by EOF, must
//     close cleanly with nothing committed;
//   * every single-byte flip and every truncation of a valid *response*
//     frame must be caught by the client-side decoder as typed
//     kCorruption (flip) or need-more (truncation) — never decode into a
//     different message.
//
// After the whole server-side matrix, the store must hold exactly the
// baseline records and still pass full chain verification: no tampered
// frame left any trace.

#include "net/socket.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/varint.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "provenance/ingest_pipeline.h"
#include "storage/env.h"
#include "testing/test_pki.h"

namespace provdb::net {
namespace {

using provdb::testing::TestPki;
using provenance::IngestOptions;
using provenance::IngestPipeline;
using provenance::OperationType;
using storage::Env;

crypto::Digest D(uint8_t tag) {
  Bytes b(20, tag);
  return crypto::Digest::FromBytes(ByteView(b.data(), b.size()));
}

std::string FreshDir(const std::string& tag) {
  std::string root = ::testing::TempDir() + "/provdb_corrupt_" + tag;
  auto shards = Env::Default()->ListDir(root);
  if (shards.ok()) {
    for (const std::string& shard : *shards) {
      auto files = Env::Default()->ListDir(root + "/" + shard);
      if (!files.ok()) continue;
      for (const std::string& f : *files) {
        EXPECT_TRUE(
            Env::Default()->RemoveFile(root + "/" + shard + "/" + f).ok());
      }
    }
  }
  return root;
}

Request SubmitUpdate() {
  Request request;
  request.op = NetOp::kSubmitRecord;
  request.submit.participant_id = 1;
  request.submit.op = OperationType::kUpdate;
  request.submit.object = 5;
  request.submit.has_pre_hash = true;
  request.submit.pre_hash = D(0x50);
  request.submit.post_hash = D(0x51);
  return request;
}

/// Sends `raw` on a fresh connection, half-closes, and drains every
/// response until the server closes. Returns the count of OK responses
/// (any non-OK response and the final EOF/corruption read are the
/// expected outcomes). Fails the test on a hang only via ctest timeout —
/// the server closes tampered connections, so every read terminates.
size_t DrainTamperedExchange(const ProvenanceServer& server, ByteView raw) {
  auto client = ProvenanceClient::Connect("127.0.0.1", server.port());
  EXPECT_TRUE(client.ok());
  if (!client.ok()) return 0;
  EXPECT_TRUE(client->SendBytes(raw).ok());
  client->FinishWrites();
  size_t ok_responses = 0;
  for (;;) {
    auto response = client->ReadResponse();
    if (!response.ok()) break;  // EOF or stream corruption: done
    if (response->ok()) ++ok_responses;
  }
  return ok_responses;
}

class ServerCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pipeline = IngestPipeline::Open(Env::Default(), FreshDir("matrix"),
                                         IngestOptions{});
    ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    pipeline_ = std::move(pipeline).value();
    std::map<crypto::ParticipantId, const crypto::Participant*> participants;
    for (size_t i = 0; i < TestPki::kNumParticipants; ++i) {
      const auto& p = TestPki::Instance().participant(i);
      participants[p.certificate().participant_id] = &p;
    }
    auto server = ProvenanceServer::Start(pipeline_.get(),
                                          &TestPki::Instance().registry(),
                                          participants, ServerOptions{});
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(server).value();

    // Baseline: one real chain, so a tampered update frame that somehow
    // slipped through *could* commit — the matrix proves none does.
    auto client = ProvenanceClient::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(client.ok());
    Request insert;
    insert.op = NetOp::kSubmitRecord;
    insert.submit.participant_id = 1;
    insert.submit.op = OperationType::kInsert;
    insert.submit.object = 5;
    insert.submit.post_hash = D(0x50);
    auto response = client->Call(insert);
    ASSERT_TRUE(response.ok());
    ASSERT_TRUE(response->ok()) << response->message;
  }

  /// Stops the server and asserts the store holds exactly the baseline
  /// record, fully verified — the tamper matrix committed nothing.
  void ExpectStoreUntouched() {
    server_->Stop();
    server_.reset();
    ASSERT_TRUE(pipeline_->Drain().ok());
    EXPECT_EQ(pipeline_->store().record_count(), 1u);
    auto report = pipeline_->store().VerifyChains(
        TestPki::Instance().registry());
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.records_checked, 1u);
  }

  std::unique_ptr<IngestPipeline> pipeline_;
  std::unique_ptr<ProvenanceServer> server_;
};

TEST_F(ServerCorruptionTest, EveryByteFlipOfRequestFrameIsRejected) {
  const Bytes frame = EncodeFrame(EncodeRequest(SubmitUpdate()));
  for (size_t i = 0; i < frame.size(); ++i) {
    Bytes tampered = frame;
    tampered[i] ^= 0x01;
    const size_t committed = DrainTamperedExchange(*server_, tampered);
    // A flipped frame must never execute. (A flip confined to the length
    // prefix can leave the server waiting for bytes that never come; the
    // half-close resolves that as EOF, still with zero commits.)
    EXPECT_EQ(committed, 0u) << "flip at byte " << i;
  }
  ExpectStoreUntouched();
}

TEST_F(ServerCorruptionTest, EveryTruncationOfRequestFrameIsRejected) {
  const Bytes frame = EncodeFrame(EncodeRequest(SubmitUpdate()));
  for (size_t len = 0; len < frame.size(); ++len) {
    const size_t committed =
        DrainTamperedExchange(*server_, ByteView(frame.data(), len));
    EXPECT_EQ(committed, 0u) << "truncated to " << len;
  }
  ExpectStoreUntouched();
}

TEST_F(ServerCorruptionTest, GarbageAfterValidFrameRejectsOnlyTheGarbage) {
  // A valid frame followed by corrupt bytes: the valid request executes
  // (it is a *query*, so nothing commits), the rest kills the connection.
  Request query;
  query.op = NetOp::kQueryChain;
  query.object = 5;
  Bytes raw = EncodeFrame(EncodeRequest(query));
  const Bytes garbage(16, 0xFF);
  raw.insert(raw.end(), garbage.begin(), garbage.end());
  const size_t ok_responses = DrainTamperedExchange(*server_, raw);
  EXPECT_EQ(ok_responses, 1u);
  ExpectStoreUntouched();
}

TEST_F(ServerCorruptionTest, OversizedLengthPrefixClosesImmediately) {
  Bytes raw;
  AppendVarint64(&raw, (64u << 20));  // far over max_frame_payload
  const size_t committed = DrainTamperedExchange(*server_, raw);
  EXPECT_EQ(committed, 0u);
  ExpectStoreUntouched();
}

TEST(ServerResponseCorruptionTest, EveryByteFlipIsTypedCorruption) {
  Response response;
  response.code = StatusCode::kOk;
  response.message = "";
  response.body = Bytes{42, 1, 2, 3};
  const Bytes frame = EncodeFrame(EncodeResponse(response));
  for (size_t i = 0; i < frame.size(); ++i) {
    Bytes tampered = frame;
    tampered[i] ^= 0x01;
    size_t consumed = 0;
    Bytes payload;
    auto decoded =
        TryDecodeFrame(tampered, kMaxFramePayload, &consumed, &payload);
    if (!decoded.ok()) {
      EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption)
          << "flip at byte " << i;
      continue;
    }
    if (!*decoded) continue;  // length flip -> need-more: acceptable
    // Frame layer passed (flip must be... nowhere: CRC covers payload and
    // guards itself). Reaching here with a one-byte flip means CRC
    // failure — flag it.
    ADD_FAILURE() << "flipped frame passed CRC at byte " << i;
  }
}

TEST(ServerResponseCorruptionTest, EveryTruncationIsNeedMoreNeverDecode) {
  Response response;
  response.code = StatusCode::kUnavailable;
  response.message = "server admission budget exhausted";
  const Bytes frame = EncodeFrame(EncodeResponse(response));
  for (size_t len = 0; len < frame.size(); ++len) {
    size_t consumed = 0;
    Bytes payload;
    auto decoded = TryDecodeFrame(ByteView(frame.data(), len),
                                  kMaxFramePayload, &consumed, &payload);
    ASSERT_TRUE(decoded.ok()) << "truncated to " << len;
    EXPECT_FALSE(*decoded) << "truncated to " << len;
  }
}

}  // namespace
}  // namespace provdb::net
