// Loopback integration tests for the provenance service: the four wire
// ops end to end, pipelined response ordering, chain-tail seeding across
// server restarts, remote-poison rejection (a network peer must never be
// able to wedge the pipeline), and the admission-control overload
// contract — saturated budgets shed with typed kUnavailable while every
// *accepted* record stays durable and byte-identical to what a direct
// IngestPipeline ingest of the same accepted set produces.

#include "net/server.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/varint.h"
#include "net/client.h"
#include "observability/metrics.h"
#include "provenance/ingest_pipeline.h"
#include "provenance/serialization.h"
#include "storage/env.h"
#include "testing/test_pki.h"

namespace provdb::net {
namespace {

using provdb::testing::TestPki;
using provenance::IngestOptions;
using provenance::IngestPipeline;
using provenance::OperationType;
using storage::Env;
using storage::ObjectId;

const crypto::Participant& P(size_t i) {
  return TestPki::Instance().participant(i);
}

crypto::Digest D(uint8_t tag) {
  Bytes b(20, tag);
  return crypto::Digest::FromBytes(ByteView(b.data(), b.size()));
}

std::string FreshDir(const std::string& tag) {
  std::string root = ::testing::TempDir() + "/provdb_server_" + tag;
  auto shards = Env::Default()->ListDir(root);
  if (shards.ok()) {
    for (const std::string& shard : *shards) {
      auto files = Env::Default()->ListDir(root + "/" + shard);
      if (!files.ok()) continue;
      for (const std::string& f : *files) {
        EXPECT_TRUE(
            Env::Default()->RemoveFile(root + "/" + shard + "/" + f).ok());
      }
    }
  }
  return root;
}

std::map<crypto::ParticipantId, const crypto::Participant*> Participants() {
  std::map<crypto::ParticipantId, const crypto::Participant*> out;
  for (size_t i = 0; i < TestPki::kNumParticipants; ++i) {
    out[P(i).certificate().participant_id] = &P(i);
  }
  return out;
}

std::unique_ptr<IngestPipeline> OpenPipeline(const std::string& root,
                                             size_t shards = 2) {
  IngestOptions options;
  options.num_shards = shards;
  auto pipeline = IngestPipeline::Open(Env::Default(), root, options);
  EXPECT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  return std::move(pipeline).value();
}

std::unique_ptr<ProvenanceServer> StartServer(
    IngestPipeline* pipeline, ServerOptions options = ServerOptions()) {
  auto server = ProvenanceServer::Start(
      pipeline, &TestPki::Instance().registry(), Participants(), options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return std::move(server).value();
}

ProvenanceClient Connect(const ProvenanceServer& server) {
  auto client = ProvenanceClient::Connect("127.0.0.1", server.port());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client).value();
}

Request Insert(ObjectId object, uint8_t tag, uint64_t participant = 1) {
  Request request;
  request.op = NetOp::kSubmitRecord;
  request.submit.participant_id = participant;
  request.submit.op = OperationType::kInsert;
  request.submit.object = object;
  request.submit.post_hash = D(tag);
  return request;
}

Request Update(ObjectId object, uint8_t pre, uint8_t post,
               uint64_t participant = 1) {
  Request request;
  request.op = NetOp::kSubmitRecord;
  request.submit.participant_id = participant;
  request.submit.op = OperationType::kUpdate;
  request.submit.object = object;
  request.submit.has_pre_hash = true;
  request.submit.pre_hash = D(pre);
  request.submit.post_hash = D(post);
  return request;
}

Request Read(NetOp op, ObjectId object) {
  Request request;
  request.op = op;
  request.object = object;
  return request;
}

uint64_t SeqOf(const Response& response) {
  VarintReader reader(response.body);
  auto seq = reader.ReadVarint64();
  EXPECT_TRUE(seq.ok());
  return seq.ok() ? *seq : UINT64_MAX;
}

/// Turns an accepted SubmitRequest back into the pipeline-level request
/// the differential replay feeds to a direct IngestPipeline.
provenance::IngestRequest ToIngestRequest(const SubmitRequest& submit) {
  provenance::IngestRequest request;
  request.op = submit.op;
  request.object = submit.object;
  request.post_hash = submit.post_hash;
  request.has_pre_hash = submit.has_pre_hash;
  request.pre_hash = submit.pre_hash;
  request.inputs = submit.inputs;
  request.input_prev_checksums = submit.input_prev_checksums;
  request.aggregate_seq = submit.aggregate_seq;
  request.inherited = submit.inherited;
  request.participant = &P(submit.participant_id - 1);
  return request;
}

/// Every record of every chain, flattened in the store's canonical
/// (object id, then seq) order, as EncodeRecord bytes.
std::vector<Bytes> FlattenStore(
    const provenance::ShardedProvenanceStore& store) {
  std::vector<Bytes> out;
  for (const auto& [object, chain] : store.AllChains()) {
    for (const auto* record : chain) {
      out.push_back(provenance::EncodeRecord(*record));
    }
  }
  return out;
}

/// Replays `accepted` into a fresh direct pipeline and requires the
/// resulting store to be byte-identical to `server_store` — the wire path
/// must add nothing, lose nothing, and change nothing.
void ExpectByteIdenticalToDirectIngest(
    const std::string& tag, const std::vector<SubmitRequest>& accepted,
    const provenance::ShardedProvenanceStore& server_store, size_t shards) {
  std::unique_ptr<IngestPipeline> direct =
      OpenPipeline(FreshDir(tag), shards);
  for (const SubmitRequest& submit : accepted) {
    ASSERT_TRUE(direct->Submit(ToIngestRequest(submit)).ok());
  }
  ASSERT_TRUE(direct->Drain().ok());
  EXPECT_EQ(FlattenStore(server_store), FlattenStore(direct->store()));
}

// -- Basic ops ---------------------------------------------------------

TEST(ServerIntegrationTest, InsertUpdateQueryVerifyStats) {
  auto pipeline = OpenPipeline(FreshDir("basic"));
  auto server = StartServer(pipeline.get());
  auto client = Connect(*server);

  auto insert = client.Call(Insert(7, 0x10));
  ASSERT_TRUE(insert.ok()) << insert.status().ToString();
  ASSERT_TRUE(insert->ok()) << insert->message;
  EXPECT_EQ(SeqOf(*insert), 0u);

  auto update = client.Call(Update(7, 0x10, 0x11));
  ASSERT_TRUE(update.ok());
  ASSERT_TRUE(update->ok()) << update->message;
  EXPECT_EQ(SeqOf(*update), 1u);

  auto chain = client.Call(Read(NetOp::kQueryChain, 7));
  ASSERT_TRUE(chain.ok());
  ASSERT_TRUE(chain->ok()) << chain->message;
  auto records = DecodeChainBody(chain->body);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].seq_id, 0u);
  EXPECT_EQ((*records)[0].op, OperationType::kInsert);
  EXPECT_EQ((*records)[0].output.object_id, 7u);
  EXPECT_EQ((*records)[0].output.state_hash, D(0x10));
  EXPECT_EQ((*records)[1].seq_id, 1u);
  EXPECT_EQ((*records)[1].op, OperationType::kUpdate);
  EXPECT_EQ((*records)[1].output.state_hash, D(0x11));

  auto verify = client.Call(Read(NetOp::kVerifyObject, 7));
  ASSERT_TRUE(verify.ok());
  ASSERT_TRUE(verify->ok()) << verify->message;
  auto summary = DecodeVerifySummary(verify->body);
  ASSERT_TRUE(summary.ok());
  EXPECT_TRUE(summary->ok);
  EXPECT_EQ(summary->records_checked, 2u);
  EXPECT_EQ(summary->signatures_verified, 2u);
  EXPECT_EQ(summary->issues, 0u);

  auto stats = client.Call(Read(NetOp::kStats, 0));
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats->ok());
  const std::string json(stats->body.begin(), stats->body.end());
  EXPECT_NE(json.find("server.requests.received"), std::string::npos);
}

TEST(ServerIntegrationTest, UnknownObjectAnswersNotFound) {
  auto pipeline = OpenPipeline(FreshDir("notfound"));
  auto server = StartServer(pipeline.get());
  auto client = Connect(*server);

  for (NetOp op : {NetOp::kQueryChain, NetOp::kVerifyObject}) {
    auto response = client.Call(Read(op, 424242));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->code, StatusCode::kNotFound) << NetOpName(op);
  }
}

TEST(ServerIntegrationTest, MultipleParticipantsSignTheirOwnRecords) {
  auto pipeline = OpenPipeline(FreshDir("multiparty"));
  auto server = StartServer(pipeline.get());
  auto client = Connect(*server);

  ASSERT_TRUE(client.Call(Insert(1, 0x01, 1))->ok());
  ASSERT_TRUE(client.Call(Update(1, 0x01, 0x02, 2))->ok());
  ASSERT_TRUE(client.Call(Update(1, 0x02, 0x03, 3))->ok());

  auto chain = client.Call(Read(NetOp::kQueryChain, 1));
  ASSERT_TRUE(chain.ok() && chain->ok());
  auto records = DecodeChainBody(chain->body);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[0].participant, 1u);
  EXPECT_EQ((*records)[1].participant, 2u);
  EXPECT_EQ((*records)[2].participant, 3u);

  auto verify = client.Call(Read(NetOp::kVerifyObject, 1));
  ASSERT_TRUE(verify.ok() && verify->ok());
  auto summary = DecodeVerifySummary(verify->body);
  ASSERT_TRUE(summary.ok());
  EXPECT_TRUE(summary->ok);
}

// -- Remote poison prevention ------------------------------------------

TEST(ServerIntegrationTest, BadSubmitsRejectedTypedWithoutWedgingIngest) {
  auto pipeline = OpenPipeline(FreshDir("poison"));
  auto server = StartServer(pipeline.get());
  auto client = Connect(*server);

  ASSERT_TRUE(client.Call(Insert(5, 0x50))->ok());

  // Each of these would poison the pipeline if it reached a flush; the
  // executor must reject them up front with the right typed error.
  auto duplicate = client.Call(Insert(5, 0x51));
  ASSERT_TRUE(duplicate.ok());
  EXPECT_EQ(duplicate->code, StatusCode::kFailedPrecondition);

  auto unknown_participant = client.Call(Insert(6, 0x60, 99));
  ASSERT_TRUE(unknown_participant.ok());
  EXPECT_EQ(unknown_participant->code, StatusCode::kNotFound);

  Request zero = Insert(0, 0x00);
  auto invalid_object = client.Call(zero);
  ASSERT_TRUE(invalid_object.ok());
  EXPECT_EQ(invalid_object->code, StatusCode::kInvalidArgument);

  Request insert_with_inputs = Insert(8, 0x80);
  insert_with_inputs.submit.inputs.push_back(
      provenance::ObjectState{5, D(0x50)});
  insert_with_inputs.submit.input_prev_checksums.push_back(Bytes{});
  auto bad_inputs = client.Call(insert_with_inputs);
  ASSERT_TRUE(bad_inputs.ok());
  EXPECT_EQ(bad_inputs->code, StatusCode::kInvalidArgument);

  Request empty_aggregate;
  empty_aggregate.op = NetOp::kSubmitRecord;
  empty_aggregate.submit.participant_id = 1;
  empty_aggregate.submit.op = OperationType::kAggregate;
  empty_aggregate.submit.object = 9;
  empty_aggregate.submit.post_hash = D(0x90);
  empty_aggregate.submit.aggregate_seq = 1;
  auto no_inputs = client.Call(empty_aggregate);
  ASSERT_TRUE(no_inputs.ok());
  EXPECT_EQ(no_inputs->code, StatusCode::kInvalidArgument);

  Request unsorted = empty_aggregate;
  unsorted.submit.inputs = {provenance::ObjectState{5, D(0x50)},
                            provenance::ObjectState{5, D(0x50)}};
  unsorted.submit.input_prev_checksums = {Bytes{}, Bytes{}};
  auto dup_inputs = client.Call(unsorted);
  ASSERT_TRUE(dup_inputs.ok());
  EXPECT_EQ(dup_inputs->code, StatusCode::kInvalidArgument);

  // The pipeline must still ingest: nothing above reached a flush.
  auto good = client.Call(Update(5, 0x50, 0x52));
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->ok()) << good->message;
  EXPECT_EQ(SeqOf(*good), 1u);

  server->Stop();
  server.reset();
  ASSERT_TRUE(pipeline->Drain().ok());
  EXPECT_EQ(pipeline->store().record_count(), 2u);
}

// -- Ordering and restarts ---------------------------------------------

TEST(ServerIntegrationTest, PipelinedResponsesArriveInRequestOrder) {
  auto pipeline = OpenPipeline(FreshDir("pipelined"));
  auto server = StartServer(pipeline.get());
  auto client = Connect(*server);

  constexpr size_t kObjects = 16;
  for (size_t i = 0; i < kObjects; ++i) {
    ASSERT_TRUE(client
                    .SendRequest(Insert(100 + i,
                                        static_cast<uint8_t>(i)))
                    .ok());
  }
  ASSERT_TRUE(client.SendRequest(Read(NetOp::kQueryChain, 100)).ok());

  // Responses must pair positionally: kObjects submit acks, then the
  // chain of the first object.
  for (size_t i = 0; i < kObjects; ++i) {
    auto response = client.ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_TRUE(response->ok()) << i << ": " << response->message;
    EXPECT_EQ(SeqOf(*response), 0u);
  }
  auto chain = client.ReadResponse();
  ASSERT_TRUE(chain.ok());
  ASSERT_TRUE(chain->ok());
  auto records = DecodeChainBody(chain->body);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].output.object_id, 100u);
}

TEST(ServerIntegrationTest, ChainTailsSeededAcrossServerRestart) {
  auto root = FreshDir("restart");
  auto pipeline = OpenPipeline(root);
  auto server = StartServer(pipeline.get());
  {
    auto client = Connect(*server);
    ASSERT_TRUE(client.Call(Insert(3, 0x30))->ok());
  }
  server->Stop();
  server.reset();

  // A new server over the same pipeline must know chain 3 exists.
  server = StartServer(pipeline.get());
  auto client = Connect(*server);
  auto duplicate = client.Call(Insert(3, 0x31));
  ASSERT_TRUE(duplicate.ok());
  EXPECT_EQ(duplicate->code, StatusCode::kFailedPrecondition);
  auto update = client.Call(Update(3, 0x30, 0x32));
  ASSERT_TRUE(update.ok());
  ASSERT_TRUE(update->ok()) << update->message;
  EXPECT_EQ(SeqOf(*update), 1u);
}

TEST(ServerIntegrationTest, ConcurrentConnectionsAllCommit) {
  auto pipeline = OpenPipeline(FreshDir("conns"));
  auto server = StartServer(pipeline.get());

  constexpr size_t kClients = 4;
  constexpr size_t kPerClient = 8;
  std::vector<ProvenanceClient> clients;
  for (size_t c = 0; c < kClients; ++c) clients.push_back(Connect(*server));
  // Interleave pipelined submits across connections (disjoint objects).
  for (size_t i = 0; i < kPerClient; ++i) {
    for (size_t c = 0; c < kClients; ++c) {
      ASSERT_TRUE(clients[c]
                      .SendRequest(Insert(1000 + c * kPerClient + i,
                                          static_cast<uint8_t>(c)))
                      .ok());
    }
  }
  for (size_t c = 0; c < kClients; ++c) {
    for (size_t i = 0; i < kPerClient; ++i) {
      auto response = clients[c].ReadResponse();
      ASSERT_TRUE(response.ok());
      EXPECT_TRUE(response->ok()) << response->message;
    }
  }

  server->Stop();
  server.reset();
  ASSERT_TRUE(pipeline->Drain().ok());
  EXPECT_EQ(pipeline->store().record_count(), kClients * kPerClient);
}

// -- The write-ahead + differential contract ---------------------------

TEST(ServerIntegrationTest, AcceptedRecordsByteIdenticalToDirectIngest) {
  const size_t kShards = 2;
  auto root = FreshDir("diff_server");
  auto pipeline = OpenPipeline(root, kShards);
  auto server = StartServer(pipeline.get());
  auto client = Connect(*server);

  // A mixed accepted stream: inserts then chained updates, several
  // participants, several objects.
  std::vector<SubmitRequest> accepted;
  auto call = [&](const Request& request) {
    auto response = client.Call(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_TRUE(response->ok()) << response->message;
    accepted.push_back(request.submit);
  };
  uint8_t tag = 1;
  for (ObjectId object = 50; object < 58; ++object) {
    call(Insert(object, tag, 1 + object % 4));
    ++tag;
  }
  for (ObjectId object = 50; object < 58; ++object) {
    call(Update(object, static_cast<uint8_t>(object - 49), tag,
                1 + (object + 1) % 4));
    ++tag;
  }

  server->Stop();
  server.reset();
  ASSERT_TRUE(pipeline->Drain().ok());
  ASSERT_EQ(pipeline->store().record_count(), accepted.size());

  ExpectByteIdenticalToDirectIngest("diff_direct", accepted,
                                    pipeline->store(), kShards);

  // And the accepted set is *durable*: a recovery-path reopen of the same
  // root must reconstruct the identical store.
  std::vector<Bytes> before = FlattenStore(pipeline->store());
  pipeline.reset();
  auto reopened = OpenPipeline(root, kShards);
  EXPECT_EQ(FlattenStore(reopened->store()), before);
}

// -- Overload ----------------------------------------------------------

TEST(ServerOverloadTest, SaturatedAdmissionShedsTypedAndCommitsTheRest) {
  const size_t kShards = 2;
  auto root = FreshDir("overload");
  auto pipeline = OpenPipeline(root, kShards);

  ServerOptions options;
  // A budget of a couple of frames and a tiny pending queue: a 64-deep
  // pipelined burst MUST shed.
  options.max_inflight_bytes = 256;
  options.max_pending_per_connection = 2;
  auto server = StartServer(pipeline.get(), options);
  auto client = Connect(*server);

  constexpr size_t kBurst = 64;
  std::vector<Request> requests;
  for (size_t i = 0; i < kBurst; ++i) {
    requests.push_back(
        Insert(700 + i, static_cast<uint8_t>(i), 1 + i % 4));
  }
  // One contiguous write so the burst lands ahead of any response.
  Bytes blob;
  for (const Request& request : requests) {
    Bytes frame = EncodeFrame(EncodeRequest(request));
    blob.insert(blob.end(), frame.begin(), frame.end());
  }
  ASSERT_TRUE(client.SendBytes(blob).ok());

  size_t ok = 0, shed = 0;
  std::vector<SubmitRequest> accepted;
  for (size_t i = 0; i < kBurst; ++i) {
    auto response = client.ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    if (response->ok()) {
      ++ok;
      accepted.push_back(requests[i].submit);
    } else {
      // Overload is exactly kUnavailable — never a corruption verdict on
      // a well-formed frame, never a dropped connection.
      ASSERT_EQ(response->code, StatusCode::kUnavailable)
          << response->message;
      EXPECT_FALSE(response->message.empty());
      ++shed;
    }
  }
  EXPECT_GT(ok, 0u);
  EXPECT_GT(shed, 0u);
  EXPECT_EQ(ok + shed, kBurst);

  // The connection survived the shedding: it still serves requests.
  Request post_burst = Insert(9000, 0xAB);
  auto after = client.Call(post_burst);
  ASSERT_TRUE(after.ok());
  if (after->ok()) accepted.push_back(post_burst.submit);

  server->Stop();
  server.reset();
  ASSERT_TRUE(pipeline->Drain().ok());

  // Exactly the accepted set committed — nothing shed leaked in, nothing
  // accepted got lost — and its bytes match a direct ingest replay.
  ASSERT_EQ(pipeline->store().record_count(), accepted.size());
  ExpectByteIdenticalToDirectIngest("overload_direct", accepted,
                                    pipeline->store(), kShards);

  // Budget fully released once the burst is answered.
  for (const auto& [name, value] :
       observability::GlobalMetrics().Snapshot().gauges) {
    if (name == "server.inflight.bytes") EXPECT_EQ(value, 0);
  }
}

}  // namespace
}  // namespace provdb::net
