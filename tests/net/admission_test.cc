// AdmissionController unit tests: the in-flight byte budget is a hard
// bound (Admit never overshoots), Swap re-charges without shedding, and
// the gauge/counter instrumentation tracks every transition.

#include "net/admission.h"

#include <gtest/gtest.h>

#include "observability/metrics.h"

namespace provdb::net {
namespace {

uint64_t ShedCount(observability::MetricsRegistry* metrics) {
  for (const auto& [name, value] : metrics->Snapshot().counters) {
    if (name == "server.requests.shed") return value;
  }
  return 0;
}

int64_t InFlightGauge(observability::MetricsRegistry* metrics) {
  for (const auto& [name, value] : metrics->Snapshot().gauges) {
    if (name == "server.inflight.bytes") return value;
  }
  return -1;
}

TEST(AdmissionTest, AdmitsUpToBudgetExactly) {
  observability::MetricsRegistry metrics;
  AdmissionController admission(100, &metrics);
  EXPECT_TRUE(admission.Admit(60));
  EXPECT_TRUE(admission.Admit(40));  // exactly at budget
  EXPECT_EQ(admission.in_flight_bytes(), 100u);
  EXPECT_FALSE(admission.Admit(1));  // over
  EXPECT_EQ(admission.in_flight_bytes(), 100u);  // refused charge not taken
  EXPECT_EQ(ShedCount(&metrics), 1u);
}

TEST(AdmissionTest, OversizedSingleRequestRefusedEvenWhenIdle) {
  observability::MetricsRegistry metrics;
  AdmissionController admission(100, &metrics);
  EXPECT_FALSE(admission.Admit(101));
  EXPECT_EQ(admission.in_flight_bytes(), 0u);
}

TEST(AdmissionTest, ReleaseFreesBudget) {
  observability::MetricsRegistry metrics;
  AdmissionController admission(100, &metrics);
  EXPECT_TRUE(admission.Admit(100));
  EXPECT_FALSE(admission.Admit(10));
  admission.Release(50);
  EXPECT_TRUE(admission.Admit(50));
  admission.Release(100);
  EXPECT_EQ(admission.in_flight_bytes(), 0u);
  EXPECT_EQ(InFlightGauge(&metrics), 0);
}

TEST(AdmissionTest, SwapIsUnconditional) {
  observability::MetricsRegistry metrics;
  AdmissionController admission(100, &metrics);
  EXPECT_TRUE(admission.Admit(80));
  // The response is bigger than the remaining budget; the swap still
  // happens (bounded overshoot), but nothing new is admitted while over.
  admission.Swap(80, 150);
  EXPECT_EQ(admission.in_flight_bytes(), 150u);
  EXPECT_FALSE(admission.Admit(1));
  admission.Release(150);
  EXPECT_TRUE(admission.Admit(1));
}

TEST(AdmissionTest, GaugeTracksCharges) {
  observability::MetricsRegistry metrics;
  AdmissionController admission(1000, &metrics);
  EXPECT_TRUE(admission.Admit(300));
  EXPECT_EQ(InFlightGauge(&metrics), 300);
  admission.Swap(300, 120);
  EXPECT_EQ(InFlightGauge(&metrics), 120);
  admission.Release(120);
  EXPECT_EQ(InFlightGauge(&metrics), 0);
}

TEST(AdmissionTest, NoteShedCountsQueueSheds) {
  observability::MetricsRegistry metrics;
  AdmissionController admission(100, &metrics);
  admission.NoteShed();
  admission.NoteShed();
  EXPECT_EQ(ShedCount(&metrics), 2u);
}

}  // namespace
}  // namespace provdb::net
