// Wire protocol codec tests: frame round trips, the need-more vs
// corruption distinction the connection layer depends on, and the strict
// encode/decode bijection for requests and responses (every decodable
// message re-encodes to the identical bytes, and every malformed variant
// is typed kCorruption — the tamper matrix in server_corruption_test.cc
// builds on these per-message guarantees).

#include "net/wire.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/varint.h"

namespace provdb::net {
namespace {

crypto::Digest D(uint8_t tag, size_t n = 20) {
  Bytes b(n, tag);
  return crypto::Digest::FromBytes(ByteView(b.data(), b.size()));
}

Request MakeSubmit() {
  Request request;
  request.op = NetOp::kSubmitRecord;
  request.submit.participant_id = 3;
  request.submit.op = provenance::OperationType::kAggregate;
  request.submit.object = 42;
  request.submit.post_hash = D(0xAA);
  request.submit.has_pre_hash = true;
  request.submit.pre_hash = D(0xBB);
  request.submit.inherited = true;
  request.submit.inputs = {provenance::ObjectState{7, D(0x01)},
                           provenance::ObjectState{9, D(0x02)}};
  request.submit.input_prev_checksums = {Bytes{1, 2, 3}, Bytes{}};
  request.submit.aggregate_seq = 11;
  return request;
}

void ExpectSubmitEq(const SubmitRequest& a, const SubmitRequest& b) {
  EXPECT_EQ(a.participant_id, b.participant_id);
  EXPECT_EQ(a.op, b.op);
  EXPECT_EQ(a.object, b.object);
  EXPECT_EQ(a.post_hash, b.post_hash);
  EXPECT_EQ(a.has_pre_hash, b.has_pre_hash);
  EXPECT_EQ(a.pre_hash, b.pre_hash);
  EXPECT_EQ(a.inherited, b.inherited);
  ASSERT_EQ(a.inputs.size(), b.inputs.size());
  for (size_t i = 0; i < a.inputs.size(); ++i) {
    EXPECT_EQ(a.inputs[i].object_id, b.inputs[i].object_id);
    EXPECT_EQ(a.inputs[i].state_hash, b.inputs[i].state_hash);
  }
  EXPECT_EQ(a.input_prev_checksums, b.input_prev_checksums);
  EXPECT_EQ(a.aggregate_seq, b.aggregate_seq);
}

// -- Framing -----------------------------------------------------------

TEST(WireFrameTest, RoundTrip) {
  Bytes payload{1, 2, 3, 4, 5};
  Bytes frame = EncodeFrame(payload);
  size_t consumed = 0;
  Bytes decoded;
  auto ok = TryDecodeFrame(frame, kMaxFramePayload, &consumed, &decoded);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(*ok);
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(decoded, payload);
}

TEST(WireFrameTest, EmptyPayloadRoundTrip) {
  Bytes frame = EncodeFrame(ByteView());
  size_t consumed = 0;
  Bytes decoded;
  auto ok = TryDecodeFrame(frame, kMaxFramePayload, &consumed, &decoded);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
  EXPECT_EQ(consumed, frame.size());
  EXPECT_TRUE(decoded.empty());
}

TEST(WireFrameTest, EveryTruncationIsNeedMoreNeverError) {
  Bytes payload(300, 0x5A);  // 2-byte length varint
  Bytes frame = EncodeFrame(payload);
  for (size_t len = 0; len < frame.size(); ++len) {
    size_t consumed = 0;
    Bytes decoded;
    auto ok = TryDecodeFrame(ByteView(frame.data(), len), kMaxFramePayload,
                             &consumed, &decoded);
    ASSERT_TRUE(ok.ok()) << "prefix length " << len << ": "
                         << ok.status().ToString();
    EXPECT_FALSE(*ok) << "prefix length " << len;
  }
}

TEST(WireFrameTest, TrailingBytesAreNotConsumed) {
  Bytes payload{9, 8, 7};
  Bytes frame = EncodeFrame(payload);
  const size_t frame_size = frame.size();
  frame.push_back(0xEE);  // start of the next frame
  size_t consumed = 0;
  Bytes decoded;
  auto ok = TryDecodeFrame(frame, kMaxFramePayload, &consumed, &decoded);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
  EXPECT_EQ(consumed, frame_size);
  EXPECT_EQ(decoded, payload);
}

TEST(WireFrameTest, CrcMismatchIsCorruption) {
  Bytes payload{1, 2, 3, 4};
  Bytes frame = EncodeFrame(payload);
  frame[1] ^= 0x01;  // payload byte
  size_t consumed = 0;
  Bytes decoded;
  auto ok = TryDecodeFrame(frame, kMaxFramePayload, &consumed, &decoded);
  ASSERT_FALSE(ok.ok());
  EXPECT_EQ(ok.status().code(), StatusCode::kCorruption);
}

TEST(WireFrameTest, OversizedLengthPrefixIsCorruptionBeforeBuffering) {
  Bytes frame;
  AppendVarint64(&frame, kMaxFramePayload + 1);
  // No payload bytes at all: the bound must trip on the prefix alone.
  size_t consumed = 0;
  Bytes decoded;
  auto ok = TryDecodeFrame(frame, kMaxFramePayload, &consumed, &decoded);
  ASSERT_FALSE(ok.ok());
  EXPECT_EQ(ok.status().code(), StatusCode::kCorruption);
}

TEST(WireFrameTest, OverlongLengthVarintIsCorruption) {
  const Bytes frame{0x85, 0x00};  // 5 encoded with a redundant byte
  size_t consumed = 0;
  Bytes decoded;
  auto ok = TryDecodeFrame(frame, kMaxFramePayload, &consumed, &decoded);
  ASSERT_FALSE(ok.ok());
  EXPECT_EQ(ok.status().code(), StatusCode::kCorruption);
}

TEST(WireFrameTest, LengthVarintOver64BitsIsCorruption) {
  const Bytes frame{0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                    0xFF, 0xFF, 0xFF, 0xFF, 0x7F};
  size_t consumed = 0;
  Bytes decoded;
  auto ok = TryDecodeFrame(frame, kMaxFramePayload, &consumed, &decoded);
  ASSERT_FALSE(ok.ok());
  EXPECT_EQ(ok.status().code(), StatusCode::kCorruption);
}

// -- Requests ----------------------------------------------------------

TEST(WireRequestTest, SubmitRoundTripIsBijective) {
  Request request = MakeSubmit();
  Bytes payload = EncodeRequest(request);
  auto decoded = DecodeRequest(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->op, NetOp::kSubmitRecord);
  ExpectSubmitEq(decoded->submit, request.submit);
  // Bijection: the decoded request re-encodes to the identical bytes.
  EXPECT_EQ(EncodeRequest(*decoded), payload);
}

TEST(WireRequestTest, MinimalInsertRoundTrip) {
  Request request;
  request.op = NetOp::kSubmitRecord;
  request.submit.participant_id = 1;
  request.submit.op = provenance::OperationType::kInsert;
  request.submit.object = 5;
  request.submit.post_hash = D(0x11);
  Bytes payload = EncodeRequest(request);
  auto decoded = DecodeRequest(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectSubmitEq(decoded->submit, request.submit);
  EXPECT_EQ(EncodeRequest(*decoded), payload);
}

TEST(WireRequestTest, ReadOpsRoundTrip) {
  for (NetOp op : {NetOp::kQueryChain, NetOp::kVerifyObject}) {
    Request request;
    request.op = op;
    request.object = 1234;
    Bytes payload = EncodeRequest(request);
    auto decoded = DecodeRequest(payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->op, op);
    EXPECT_EQ(decoded->object, 1234u);
    EXPECT_EQ(EncodeRequest(*decoded), payload);
  }
}

TEST(WireRequestTest, StatsRoundTrip) {
  Request request;
  request.op = NetOp::kStats;
  Bytes payload = EncodeRequest(request);
  auto decoded = DecodeRequest(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->op, NetOp::kStats);
  EXPECT_EQ(EncodeRequest(*decoded), payload);
}

TEST(WireRequestTest, UnknownVersionIsCorruption) {
  Bytes payload = EncodeRequest(MakeSubmit());
  payload[0] = kWireVersion + 1;
  EXPECT_EQ(DecodeRequest(payload).status().code(), StatusCode::kCorruption);
}

TEST(WireRequestTest, UnknownOpIsCorruption) {
  Bytes payload = EncodeRequest(MakeSubmit());
  payload[1] = 0;
  EXPECT_EQ(DecodeRequest(payload).status().code(), StatusCode::kCorruption);
  payload[1] = 5;
  EXPECT_EQ(DecodeRequest(payload).status().code(), StatusCode::kCorruption);
}

TEST(WireRequestTest, TrailingBytesAreCorruption) {
  Bytes payload = EncodeRequest(MakeSubmit());
  payload.push_back(0x00);
  EXPECT_EQ(DecodeRequest(payload).status().code(), StatusCode::kCorruption);
}

TEST(WireRequestTest, UnknownFlagBitsAreCorruption) {
  Request request;
  request.op = NetOp::kSubmitRecord;
  request.submit.participant_id = 1;
  request.submit.op = provenance::OperationType::kInsert;
  request.submit.object = 5;
  request.submit.post_hash = D(0x11);
  Bytes payload = EncodeRequest(request);
  // Layout: version, op, varint participant (1), op byte, varint object
  // (1), flags — index 5.
  ASSERT_GT(payload.size(), 5u);
  payload[5] |= 0x80;
  EXPECT_EQ(DecodeRequest(payload).status().code(), StatusCode::kCorruption);
}

TEST(WireRequestTest, TruncatedSubmitIsCorruption) {
  Bytes payload = EncodeRequest(MakeSubmit());
  for (size_t len = 0; len < payload.size(); ++len) {
    auto decoded = DecodeRequest(ByteView(payload.data(), len));
    EXPECT_FALSE(decoded.ok()) << "prefix length " << len;
  }
}

// -- Responses ---------------------------------------------------------

TEST(WireResponseTest, RoundTripIsBijective) {
  Response response;
  response.code = StatusCode::kUnavailable;
  response.message = "server admission budget exhausted";
  response.body = Bytes{1, 2, 3};
  Bytes payload = EncodeResponse(response);
  auto decoded = DecodeResponse(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->code, response.code);
  EXPECT_EQ(decoded->message, response.message);
  EXPECT_EQ(decoded->body, response.body);
  EXPECT_FALSE(decoded->ok());
  EXPECT_EQ(decoded->ToStatus().code(), StatusCode::kUnavailable);
  EXPECT_EQ(EncodeResponse(*decoded), payload);
}

TEST(WireResponseTest, UnknownStatusCodeIsCorruption) {
  Response response;
  Bytes payload = EncodeResponse(response);
  payload[1] = 0x7F;
  EXPECT_EQ(DecodeResponse(payload).status().code(),
            StatusCode::kCorruption);
}

TEST(WireResponseTest, TrailingBytesAreCorruption) {
  Bytes payload = EncodeResponse(Response{});
  payload.push_back(0x01);
  EXPECT_EQ(DecodeResponse(payload).status().code(),
            StatusCode::kCorruption);
}

TEST(WireResponseTest, VerifySummaryRoundTrip) {
  VerifySummary summary;
  summary.records_checked = 100;
  summary.signatures_verified = 100;
  summary.issues = 2;
  summary.ok = false;
  Bytes body = EncodeVerifySummary(summary);
  auto decoded = DecodeVerifySummary(body);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->records_checked, 100u);
  EXPECT_EQ(decoded->signatures_verified, 100u);
  EXPECT_EQ(decoded->issues, 2u);
  EXPECT_FALSE(decoded->ok);
  EXPECT_EQ(EncodeVerifySummary(*decoded), body);
}

TEST(WireResponseTest, VerifySummaryBadOkFlagIsCorruption) {
  Bytes body = EncodeVerifySummary(VerifySummary{});
  body.back() = 2;
  EXPECT_EQ(DecodeVerifySummary(body).status().code(),
            StatusCode::kCorruption);
}

TEST(WireResponseTest, ChainBodyEmptyChainDecodes) {
  Bytes body;
  AppendVarint64(&body, 0);
  auto records = DecodeChainBody(body);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST(WireResponseTest, ChainBodyCountBeyondPayloadIsCorruption) {
  Bytes body;
  AppendVarint64(&body, 1u << 20);
  EXPECT_EQ(DecodeChainBody(body).status().code(), StatusCode::kCorruption);
}

TEST(WireResponseTest, ChainBodyTrailingBytesAreCorruption) {
  Bytes body;
  AppendVarint64(&body, 0);
  body.push_back(0x01);
  EXPECT_EQ(DecodeChainBody(body).status().code(), StatusCode::kCorruption);
}

TEST(WireRequestTest, RandomSubmitsAreBijective) {
  Rng rng(0xB17E);
  for (int i = 0; i < 200; ++i) {
    Request request;
    request.op = NetOp::kSubmitRecord;
    request.submit.participant_id = rng.NextUint64();
    request.submit.op = static_cast<provenance::OperationType>(
        rng.NextBelow(3));
    request.submit.object = rng.NextUint64();
    request.submit.post_hash = D(static_cast<uint8_t>(rng.NextBelow(256)),
                                 rng.NextBelow(33));
    request.submit.has_pre_hash = rng.NextBool();
    if (request.submit.has_pre_hash) {
      request.submit.pre_hash =
          D(static_cast<uint8_t>(rng.NextBelow(256)), rng.NextBelow(33));
    }
    request.submit.inherited = rng.NextBool();
    const size_t n = rng.NextBelow(4);
    for (size_t k = 0; k < n; ++k) {
      request.submit.inputs.push_back(provenance::ObjectState{
          rng.NextUint64(),
          D(static_cast<uint8_t>(rng.NextBelow(256)), rng.NextBelow(33))});
      Bytes checksum;
      rng.NextBytes(&checksum, rng.NextBelow(24));
      request.submit.input_prev_checksums.push_back(std::move(checksum));
    }
    request.submit.aggregate_seq = rng.NextUint64();

    Bytes payload = EncodeRequest(request);
    auto decoded = DecodeRequest(payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ExpectSubmitEq(decoded->submit, request.submit);
    ASSERT_EQ(EncodeRequest(*decoded), payload);
  }
}

}  // namespace
}  // namespace provdb::net
