// Known-answer vectors for BigUInt, computed with an independent
// arbitrary-precision implementation (CPython ints). These pin exact
// results on multi-limb operands, complementing the property tests in
// bignum_test.cc.

#include <gtest/gtest.h>

#include "crypto/bignum.h"

namespace provdb::crypto {
namespace {

// 521-bit operand.
constexpr const char* kA =
    "d8972a846916419f828b9d2434e465e150bd9c66b3ad3c2d6d1a3d1fa7bc8960a923b8c1"
    "e9392456de3eb13b9046685257bdd640fb06671ad11c80317fa3b1799d";
// 489-bit operand.
constexpr const char* kB =
    "706b65a6a48b8148f6b38a088ca65ed389b74d0fb132e706298fadc1a606cb0fb39a1de6"
    "44815ef6d13b8faa1837f8a88b17fc695a07a0ca6e0822e8f3";
// 512-bit odd modulus with the top bit set.
constexpr const char* kM =
    "f50bea63371ecd7b27cd813047229389571aa8766c307511b2b9437a28df6ec4ce4a2bbd"
    "c241330b01a9e71fde8a774bcf36d58b4737819096da1dac72ff5d2b";
constexpr const char* kE = "562b0f79c37459ee";

BigUInt FromHex(const char* hex) {
  return BigUInt::FromHexString(hex).value();
}

TEST(BigUIntVectorsTest, Addition) {
  EXPECT_EQ(BigUInt::Add(FromHex(kA), FromHex(kB)).ToHexString(),
            "d8972a84d981a74627171e6d2b97efe9dd63fb3a3d64893d1e4d2425d14c3722"
            "4f2a83d19cd3423d22c010326181f7fc6ff5cee9861e63842b2420fbedabd462"
            "90");
}

TEST(BigUIntVectorsTest, Subtraction) {
  EXPECT_EQ(BigUInt::Sub(FromHex(kA), FromHex(kB)).ToHexString(),
            "d8972a83f8aadbf8de001bdb3e30dbd8c4173d9329f5ef1dbbe756197e2cdb9f"
            "031cedb2359f067099bd5244bf0ad8a83f85dd986fee6ab17714df67119b8e90"
            "aa");
}

TEST(BigUIntVectorsTest, Multiplication) {
  EXPECT_EQ(BigUInt::Mul(FromHex(kA), FromHex(kB)).ToHexString(),
            "5f1cffc954545707f3fc49b287935e690ee391c8abc3ce5087afa32d92b6e399"
            "299dd34391c1003b83197e3a28fda7b9faaf220b0fa4d3df12c918f26d4f6652"
            "5e81270f24bb27ee4a0b8c76e4dae8caae6ac5300e3c098b4b6ccd132df37a63"
            "4730fef840f9f9a73a382d4a2d3f1bb9fc50990c0c5877f415564686b807");
}

TEST(BigUIntVectorsTest, Division) {
  auto dm = BigUInt::DivMod(FromHex(kA), FromHex(kB));
  ASSERT_TRUE(dm.ok());
  EXPECT_EQ(dm->quotient.ToHexString(), "1ed376ede");
  EXPECT_EQ(dm->remainder.ToHexString(),
            "4987e76963f6478013069ac1c0fe5ffbcfd91976354a06f9f24e598e6bf80471"
            "254698b2749a1d418b5be864a48b515f0c136c61604c66479921e0ce3");
}

TEST(BigUIntVectorsTest, ModularExponentiation) {
  auto r = BigUInt::ModExp(FromHex(kA), FromHex(kE), FromHex(kM));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToHexString(),
            "32c869b0e9ee49795556cc9df5fddba77b4138efb848446c98216954e6d39c41"
            "1a0a810bcaf29d42b8472ac221c7814a8cd7a7800da816717edb8eb8a78490df");
}

TEST(BigUIntVectorsTest, GcdIsOne) {
  EXPECT_EQ(BigUInt::Gcd(FromHex(kA), FromHex(kB)), BigUInt(1));
}

TEST(BigUIntVectorsTest, ModularInverse) {
  auto inv = BigUInt::ModInverse(FromHex(kB), FromHex(kM));
  ASSERT_TRUE(inv.ok());
  EXPECT_EQ(inv->ToHexString(),
            "9a963897e0f0ee01a5f4a4524a858bbaf8b5c4aca51ef4bf8169c511a8fd65ce"
            "043fdb4eb9790c1323fcb0d5f83ec7210aa09e9d76c4cdf85c2d1d95e81667f7");
}

TEST(BigUIntVectorsTest, DecimalConversion) {
  EXPECT_EQ(FromHex(kA).ToDecimalString(),
            "2904003723044805790862381663070934428184522455171085489933007050"
            "0882108956560804053473990009951267293665772697442723169153964879"
            "89783988846775628220467345821");
  auto back = BigUInt::FromDecimalString(FromHex(kA).ToDecimalString());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, FromHex(kA));
}

TEST(BigUIntVectorsTest, BitLengths) {
  EXPECT_EQ(FromHex(kA).BitLength(), 520u);
  EXPECT_EQ(FromHex(kM).BitLength(), 512u);
}

}  // namespace
}  // namespace provdb::crypto
