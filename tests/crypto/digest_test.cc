#include "crypto/digest.h"

#include <gtest/gtest.h>

#include <map>

namespace provdb::crypto {
namespace {

TEST(DigestTest, DefaultIsEmpty) {
  Digest d;
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.size(), 0u);
  EXPECT_EQ(d.ToHex(), "");
}

TEST(DigestTest, FromBytesCopies) {
  Bytes raw = {0xDE, 0xAD, 0xBE, 0xEF};
  Digest d = Digest::FromBytes(raw);
  EXPECT_EQ(d.size(), 4u);
  EXPECT_EQ(d.ToHex(), "deadbeef");
  raw[0] = 0;  // original mutation does not affect the digest
  EXPECT_EQ(d.ToHex(), "deadbeef");
}

TEST(DigestTest, FromBytesTruncatesAtCapacity) {
  Bytes big(64, 0xAA);
  Digest d = Digest::FromBytes(big);
  EXPECT_EQ(d.size(), Digest::kMaxSize);
}

TEST(DigestTest, EqualityIsContentAndLengthSensitive) {
  Digest a = Digest::FromBytes(Bytes{1, 2, 3});
  Digest b = Digest::FromBytes(Bytes{1, 2, 3});
  Digest c = Digest::FromBytes(Bytes{1, 2, 4});
  Digest d = Digest::FromBytes(Bytes{1, 2});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
}

TEST(DigestTest, OrderingUsableAsMapKey) {
  std::map<Digest, int> m;
  m[Digest::FromBytes(Bytes{1})] = 1;
  m[Digest::FromBytes(Bytes{2})] = 2;
  m[Digest::FromBytes(Bytes{1, 0})] = 3;
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m[Digest::FromBytes(Bytes{2})], 2);
}

TEST(DigestTest, ViewAndToBytesAgree) {
  Digest d = Digest::FromBytes(Bytes{9, 8, 7});
  EXPECT_EQ(d.view().ToBytes(), d.ToBytes());
  EXPECT_EQ(d.ToBytes(), (Bytes{9, 8, 7}));
}

TEST(DigestTest, MutableDataSupportsInPlaceTampering) {
  // The attack simulator relies on this to flip bits.
  Digest d = Digest::FromBytes(Bytes{0x00, 0x01});
  d.mutable_data()[0] = 0xFF;
  EXPECT_EQ(d.ToHex(), "ff01");
}

}  // namespace
}  // namespace provdb::crypto
