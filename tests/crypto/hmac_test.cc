// HMAC tests against RFC 2202 vectors.

#include "crypto/hmac.h"

#include <gtest/gtest.h>

#include <string>

namespace provdb::crypto {
namespace {

TEST(HmacTest, Rfc2202Sha1Case1) {
  Bytes key(20, 0x0b);
  Digest mac =
      HmacCompute(HashAlgorithm::kSha1, key, ByteView(std::string_view("Hi There")));
  EXPECT_EQ(mac.ToHex(), "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(HmacTest, Rfc2202Sha1Case2) {
  Digest mac = HmacCompute(
      HashAlgorithm::kSha1, ByteView(std::string_view("Jefe")),
      ByteView(std::string_view("what do ya want for nothing?")));
  EXPECT_EQ(mac.ToHex(), "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(HmacTest, Rfc2202Sha1Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  Digest mac = HmacCompute(HashAlgorithm::kSha1, key, data);
  EXPECT_EQ(mac.ToHex(), "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
}

TEST(HmacTest, Rfc2202Md5Case1) {
  Bytes key(16, 0x0b);
  Digest mac = HmacCompute(HashAlgorithm::kMd5, key,
                           ByteView(std::string_view("Hi There")));
  EXPECT_EQ(mac.ToHex(), "9294727a3638bb1c13f48ef8158bfc9d");
}

TEST(HmacTest, Rfc4231Sha256Case2) {
  Digest mac = HmacCompute(
      HashAlgorithm::kSha256, ByteView(std::string_view("Jefe")),
      ByteView(std::string_view("what do ya want for nothing?")));
  EXPECT_EQ(mac.ToHex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  // RFC 2202 case 6: 80-byte key (> block size).
  Bytes key(80, 0xaa);
  Digest mac = HmacCompute(
      HashAlgorithm::kSha1, key,
      ByteView(std::string_view("Test Using Larger Than Block-Size Key - "
                                "Hash Key First")));
  EXPECT_EQ(mac.ToHex(), "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

TEST(HmacTest, DifferentKeysDifferentMacs) {
  Bytes key1 = {1, 2, 3};
  Bytes key2 = {1, 2, 4};
  ByteView msg(std::string_view("same message"));
  EXPECT_NE(HmacCompute(HashAlgorithm::kSha1, key1, msg).ToHex(),
            HmacCompute(HashAlgorithm::kSha1, key2, msg).ToHex());
}

TEST(HmacTest, EmptyKeyAndMessageWork) {
  Digest mac = HmacCompute(HashAlgorithm::kSha1, ByteView(), ByteView());
  EXPECT_EQ(mac.size(), 20u);
}

}  // namespace
}  // namespace provdb::crypto
