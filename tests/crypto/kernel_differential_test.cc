// Randomized cross-checks that every registered bignum kernel computes
// the same function (ctest label: differential). The dispatch layer's
// whole contract is "selection trades speed, never results" — these
// sweeps are what lets tools/ci.sh run the golden-digest suite under any
// single kernel and still claim coverage for all of them.

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/bignum.h"
#include "crypto/bignum_kernels.h"
#include "crypto/signer.h"
#include "testing/test_pki.h"

namespace provdb::crypto {
namespace {

BigUInt RandomBig(Rng* rng, size_t bytes) {
  Bytes raw;
  rng->NextBytes(&raw, bytes);
  return BigUInt::FromBytesBigEndian(raw);
}

constexpr ModExpKernel kAllLadders[] = {
    ModExpKernel::kBinary, ModExpKernel::kWindow4, ModExpKernel::kWindow5};

TEST(KernelDifferentialTest, MulKernelsAgreeOnRandomPairs) {
  Rng rng(0xD1FF);
  // Sizes sweep from single-limb through several Karatsuba recursion
  // levels, including the exact threshold and heavily unbalanced pairs.
  const size_t kSizes[] = {1,  4,  kKaratsubaThresholdLimbs * 4 - 4,
                           kKaratsubaThresholdLimbs * 4,
                           kKaratsubaThresholdLimbs * 4 + 4,
                           kKaratsubaThresholdLimbs * 8,
                           kKaratsubaThresholdLimbs * 16};
  for (size_t a_bytes : kSizes) {
    for (size_t b_bytes : kSizes) {
      for (int i = 0; i < 16; ++i) {
        BigUInt a = RandomBig(&rng, a_bytes);
        BigUInt b = RandomBig(&rng, b_bytes);
        BigUInt school =
            BigUInt::MulWithKernel(a, b, MulKernel::kSchoolbook);
        BigUInt kara = BigUInt::MulWithKernel(a, b, MulKernel::kKaratsuba);
        ASSERT_EQ(school, kara)
            << a_bytes << "x" << b_bytes << " iteration " << i;
      }
    }
  }
}

TEST(KernelDifferentialTest, LadderKernelsAgreeOnRandomTriples) {
  Rng rng(0xD1FF + 1);
  // Moduli from one limb up to RSA-prime size; exponents straddle the
  // windowed-ladder fallback cutoff in both directions.
  const size_t kModBytes[] = {4, 5, 12, 33, 64};
  const size_t kExpBytes[] = {1, 8, 15, 16, 17, 40, 64};
  for (size_t m_bytes : kModBytes) {
    for (size_t e_bytes : kExpBytes) {
      for (int i = 0; i < 12; ++i) {
        BigUInt m = RandomBig(&rng, m_bytes);
        if (!m.IsOdd()) m = BigUInt::Add(m, BigUInt(1));
        if (m <= BigUInt(1)) m = BigUInt(3);
        auto ctx = MontgomeryContext::Create(m);
        ASSERT_TRUE(ctx.ok());
        BigUInt base = RandomBig(&rng, m_bytes + 2);  // often >= m
        BigUInt exp = RandomBig(&rng, e_bytes);
        BigUInt binary =
            ctx.value().ModExpWithKernel(base, exp, ModExpKernel::kBinary);
        for (ModExpKernel k :
             {ModExpKernel::kWindow4, ModExpKernel::kWindow5}) {
          ASSERT_EQ(ctx.value().ModExpWithKernel(base, exp, k), binary)
              << ModExpKernelName(k) << " m_bytes=" << m_bytes
              << " e_bytes=" << e_bytes << " iteration " << i;
        }
      }
    }
  }
}

TEST(KernelDifferentialTest, LaddersAgreeWithGenericModExpOnEvenModuli) {
  // Even moduli never reach the Montgomery ladders; pin that the generic
  // path (which routes through the multiply kernels) is kernel-stable.
  Rng rng(0xD1FF + 2);
  for (int i = 0; i < 10; ++i) {
    BigUInt m = RandomBig(&rng, 16);
    if (m.IsOdd()) m = BigUInt::Add(m, BigUInt(1));
    if (m.IsZero()) m = BigUInt(2);
    BigUInt base = RandomBig(&rng, 18);
    BigUInt exp = RandomBig(&rng, 6);
    auto school = [&] {
      BigNumKernelSet set;
      set.mul = MulKernel::kSchoolbook;
      ForceBigNumKernels(set);
      return BigUInt::ModExp(base, exp, m);
    }();
    auto kara = [&] {
      BigNumKernelSet set;
      set.mul = MulKernel::kKaratsuba;
      ForceBigNumKernels(set);
      return BigUInt::ModExp(base, exp, m);
    }();
    ForceBigNumKernels(BigNumKernelSet{});
    ASSERT_TRUE(school.ok());
    ASSERT_TRUE(kara.ok());
    ASSERT_EQ(school.value(), kara.value()) << "iteration " << i;
  }
}

TEST(KernelDifferentialTest, RsaSignaturesAreByteIdenticalAcrossKernels) {
  const auto& p = provdb::testing::TestPki::Instance().participant(0);
  Rng rng(0xD1FF + 3);
  std::vector<Bytes> messages;
  for (int i = 0; i < 8; ++i) {
    Bytes msg;
    rng.NextBytes(&msg, 64);
    messages.push_back(std::move(msg));
  }

  auto sign_all = [&](MulKernel mul, ModExpKernel mod_exp) {
    BigNumKernelSet set;
    set.mul = mul;
    set.mod_exp = mod_exp;
    ForceBigNumKernels(set);
    std::vector<Bytes> sigs;
    for (const Bytes& msg : messages) {
      auto sig = p.signer().Sign(msg);
      EXPECT_TRUE(sig.ok());
      sigs.push_back(sig.value());
    }
    return sigs;
  };

  const std::vector<Bytes> reference =
      sign_all(MulKernel::kSchoolbook, ModExpKernel::kBinary);
  for (MulKernel mul : {MulKernel::kSchoolbook, MulKernel::kKaratsuba}) {
    for (ModExpKernel mod_exp : kAllLadders) {
      EXPECT_EQ(sign_all(mul, mod_exp), reference)
          << MulKernelName(mul) << "+" << ModExpKernelName(mod_exp);
    }
  }
  ForceBigNumKernels(BigNumKernelSet{});

  // And every signature verifies under the default selection.
  RsaSignatureVerifier verifier(p.public_key());
  for (size_t i = 0; i < messages.size(); ++i) {
    EXPECT_TRUE(verifier.Verify(messages[i], reference[i]).ok());
  }
}

}  // namespace
}  // namespace provdb::crypto
