#include "crypto/pki.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace provdb::crypto {
namespace {

class PkiTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(0xCA);
    ca_ = new CertificateAuthority(
        CertificateAuthority::Create(512, &rng).value());
    alice_ = new Participant(
        Participant::Create(1, "alice", 512, &rng, *ca_).value());
    bob_ = new Participant(
        Participant::Create(2, "bob", 512, &rng, *ca_).value());
  }

  static CertificateAuthority* ca_;
  static Participant* alice_;
  static Participant* bob_;
};

CertificateAuthority* PkiTest::ca_ = nullptr;
Participant* PkiTest::alice_ = nullptr;
Participant* PkiTest::bob_ = nullptr;

TEST_F(PkiTest, IssuedCertificateVerifies) {
  EXPECT_TRUE(VerifyCertificate(ca_->public_key(), alice_->certificate()).ok());
  EXPECT_TRUE(VerifyCertificate(ca_->public_key(), bob_->certificate()).ok());
}

TEST_F(PkiTest, TamperedCertificateRejected) {
  ParticipantCertificate cert = alice_->certificate();
  cert.name = "mallory";  // rebind the name
  EXPECT_FALSE(VerifyCertificate(ca_->public_key(), cert).ok());

  cert = alice_->certificate();
  cert.participant_id = 99;  // rebind the id
  EXPECT_FALSE(VerifyCertificate(ca_->public_key(), cert).ok());

  cert = alice_->certificate();
  cert.public_key = bob_->public_key();  // rebind the key
  EXPECT_FALSE(VerifyCertificate(ca_->public_key(), cert).ok());
}

TEST_F(PkiTest, WrongCaRejected) {
  Rng rng(0xCB);
  auto other_ca = CertificateAuthority::Create(512, &rng);
  ASSERT_TRUE(other_ca.ok());
  EXPECT_FALSE(
      VerifyCertificate(other_ca->public_key(), alice_->certificate()).ok());
}

TEST_F(PkiTest, RegistryAcceptsValidCertificates) {
  ParticipantRegistry registry(ca_->public_key());
  EXPECT_TRUE(registry.Register(alice_->certificate()).ok());
  EXPECT_TRUE(registry.Register(bob_->certificate()).ok());
  EXPECT_EQ(registry.size(), 2u);

  auto key = registry.LookupKey(alice_->id());
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(*key, alice_->public_key());
}

TEST_F(PkiTest, RegistryRejectsForgedCertificates) {
  ParticipantRegistry registry(ca_->public_key());
  ParticipantCertificate forged = alice_->certificate();
  forged.public_key = bob_->public_key();
  EXPECT_FALSE(registry.Register(forged).ok());
  EXPECT_EQ(registry.size(), 0u);
}

TEST_F(PkiTest, RegistryIdempotentButRejectsRebinding) {
  ParticipantRegistry registry(ca_->public_key());
  ASSERT_TRUE(registry.Register(alice_->certificate()).ok());
  // Same certificate again: fine.
  EXPECT_TRUE(registry.Register(alice_->certificate()).ok());
  // A *different valid* certificate for the same id: rejected (a second
  // key for an existing participant would enable impersonation).
  auto rebind = ca_->IssueCertificate(alice_->id(), "alice-2",
                                      bob_->public_key());
  ASSERT_TRUE(rebind.ok());
  Status s = registry.Register(*rebind);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST_F(PkiTest, LookupUnknownParticipantFails) {
  ParticipantRegistry registry(ca_->public_key());
  EXPECT_FALSE(registry.Lookup(42).ok());
  EXPECT_EQ(registry.Lookup(42).status().code(), StatusCode::kNotFound);
}

TEST_F(PkiTest, ParticipantSignerBindsToCertifiedKey) {
  ByteView msg(std::string_view("signed by alice"));
  auto sig = alice_->signer().Sign(msg);
  ASSERT_TRUE(sig.ok());
  RsaSignatureVerifier good(alice_->public_key());
  RsaSignatureVerifier bad(bob_->public_key());
  EXPECT_TRUE(good.Verify(msg, *sig).ok());
  EXPECT_FALSE(bad.Verify(msg, *sig).ok());
}

TEST_F(PkiTest, CertificateToBeSignedBytesAreCanonical) {
  Bytes a = alice_->certificate().ToBeSignedBytes();
  Bytes b = alice_->certificate().ToBeSignedBytes();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, bob_->certificate().ToBeSignedBytes());
}

}  // namespace
}  // namespace provdb::crypto
