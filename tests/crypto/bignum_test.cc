#include "crypto/bignum.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace provdb::crypto {
namespace {

BigUInt FromHex(std::string_view hex) {
  auto r = BigUInt::FromHexString(hex);
  EXPECT_TRUE(r.ok());
  return r.value();
}

BigUInt RandomBig(Rng* rng, size_t bytes) {
  Bytes raw;
  rng->NextBytes(&raw, bytes);
  return BigUInt::FromBytesBigEndian(raw);
}

TEST(BigUIntTest, ZeroProperties) {
  BigUInt zero;
  EXPECT_TRUE(zero.IsZero());
  EXPECT_FALSE(zero.IsOdd());
  EXPECT_EQ(zero.BitLength(), 0u);
  EXPECT_EQ(zero.ToHexString(), "0");
  EXPECT_EQ(zero.ToDecimalString(), "0");
  EXPECT_EQ(zero.ToUint64(), 0u);
  EXPECT_EQ(zero.ToBytesBigEndian(), Bytes{0});
}

TEST(BigUIntTest, FromUint64) {
  BigUInt v(0x0123456789ABCDEFull);
  EXPECT_EQ(v.ToUint64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(v.ToHexString(), "123456789abcdef");
  EXPECT_EQ(v.BitLength(), 57u);
  EXPECT_TRUE(v.IsOdd());
}

TEST(BigUIntTest, BytesRoundTrip) {
  Rng rng(1);
  for (size_t bytes = 1; bytes <= 64; bytes += 3) {
    BigUInt v = RandomBig(&rng, bytes);
    BigUInt back = BigUInt::FromBytesBigEndian(v.ToBytesBigEndian());
    EXPECT_EQ(v, back);
  }
}

TEST(BigUIntTest, LeadingZeroBytesIgnored) {
  Bytes raw = {0, 0, 0, 1, 2};
  BigUInt v = BigUInt::FromBytesBigEndian(raw);
  EXPECT_EQ(v.ToUint64(), 0x0102u);
  EXPECT_EQ(v.ToBytesBigEndian(), (Bytes{1, 2}));
}

TEST(BigUIntTest, PaddedBytes) {
  BigUInt v(0xABCD);
  auto padded = v.ToBytesBigEndianPadded(4);
  ASSERT_TRUE(padded.ok());
  EXPECT_EQ(*padded, (Bytes{0, 0, 0xAB, 0xCD}));
  EXPECT_FALSE(v.ToBytesBigEndianPadded(1).ok());
  auto zero_pad = BigUInt().ToBytesBigEndianPadded(3);
  ASSERT_TRUE(zero_pad.ok());
  EXPECT_EQ(*zero_pad, (Bytes{0, 0, 0}));
}

TEST(BigUIntTest, HexParsingAndPrinting) {
  EXPECT_EQ(FromHex("deadBEEF").ToHexString(), "deadbeef");
  EXPECT_EQ(FromHex("0").ToHexString(), "0");
  EXPECT_EQ(FromHex("000001").ToHexString(), "1");
  EXPECT_FALSE(BigUInt::FromHexString("").ok());
  EXPECT_FALSE(BigUInt::FromHexString("xyz").ok());
}

TEST(BigUIntTest, DecimalParsingAndPrinting) {
  auto v = BigUInt::FromDecimalString("340282366920938463463374607431768211456");
  ASSERT_TRUE(v.ok());  // 2^128
  EXPECT_EQ(v->ToHexString(), "100000000000000000000000000000000");
  EXPECT_EQ(v->ToDecimalString(),
            "340282366920938463463374607431768211456");
  EXPECT_FALSE(BigUInt::FromDecimalString("12a").ok());
  EXPECT_FALSE(BigUInt::FromDecimalString("").ok());
}

TEST(BigUIntTest, ComparisonOrdering) {
  BigUInt a(5), b(7), c = FromHex("ffffffffffffffffffffffffffffffff");
  EXPECT_LT(a, b);
  EXPECT_GT(c, b);
  EXPECT_LE(a, a);
  EXPECT_GE(c, c);
  EXPECT_NE(a, b);
  EXPECT_EQ(BigUInt::Compare(a, a), 0);
}

TEST(BigUIntTest, AddSubInverse) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    BigUInt a = RandomBig(&rng, 1 + rng.NextBelow(48));
    BigUInt b = RandomBig(&rng, 1 + rng.NextBelow(48));
    BigUInt sum = BigUInt::Add(a, b);
    EXPECT_EQ(BigUInt::Sub(sum, b), a);
    EXPECT_EQ(BigUInt::Sub(sum, a), b);
  }
}

TEST(BigUIntTest, AdditionMatchesUint64) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    uint64_t a = rng.NextUint64() >> 1;
    uint64_t b = rng.NextUint64() >> 1;
    EXPECT_EQ(BigUInt::Add(BigUInt(a), BigUInt(b)).ToUint64(), a + b);
  }
}

TEST(BigUIntTest, CarryPropagatesThroughAllLimbs) {
  BigUInt max_128 = FromHex("ffffffffffffffffffffffffffffffff");
  BigUInt sum = BigUInt::Add(max_128, BigUInt(1));
  EXPECT_EQ(sum.ToHexString(), "100000000000000000000000000000000");
  EXPECT_EQ(BigUInt::Sub(sum, BigUInt(1)), max_128);
}

TEST(BigUIntTest, MultiplicationKnownValues) {
  EXPECT_EQ(BigUInt::Mul(BigUInt(0), BigUInt(12345)).ToHexString(), "0");
  EXPECT_EQ(BigUInt::Mul(BigUInt(1ull << 32), BigUInt(1ull << 32))
                .ToHexString(),
            "10000000000000000");
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1
  BigUInt m = BigUInt::Mul(BigUInt(~0ull), BigUInt(~0ull));
  EXPECT_EQ(m.ToHexString(), "fffffffffffffffe0000000000000001");
}

TEST(BigUIntTest, MultiplicationCommutesAndDistributes) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    BigUInt a = RandomBig(&rng, 24);
    BigUInt b = RandomBig(&rng, 16);
    BigUInt c = RandomBig(&rng, 8);
    EXPECT_EQ(BigUInt::Mul(a, b), BigUInt::Mul(b, a));
    EXPECT_EQ(BigUInt::Mul(a, BigUInt::Add(b, c)),
              BigUInt::Add(BigUInt::Mul(a, b), BigUInt::Mul(a, c)));
  }
}

TEST(BigUIntTest, ShiftsMatchMultiplication) {
  Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    BigUInt a = RandomBig(&rng, 20);
    size_t shift = rng.NextBelow(130);
    BigUInt shifted = a.ShiftLeft(shift);
    BigUInt pow2 = BigUInt(1).ShiftLeft(shift);
    EXPECT_EQ(shifted, BigUInt::Mul(a, pow2));
    EXPECT_EQ(shifted.ShiftRight(shift), a);
  }
}

TEST(BigUIntTest, ShiftRightBeyondWidthIsZero) {
  EXPECT_TRUE(BigUInt(123).ShiftRight(64).IsZero());
}

TEST(BigUIntTest, DivModByZeroFails) {
  EXPECT_FALSE(BigUInt::DivMod(BigUInt(5), BigUInt()).ok());
  EXPECT_FALSE(BigUInt::Mod(BigUInt(5), BigUInt()).ok());
}

TEST(BigUIntTest, DivModIdentityRandom) {
  Rng rng(6);
  for (int i = 0; i < 300; ++i) {
    BigUInt a = RandomBig(&rng, 1 + rng.NextBelow(64));
    BigUInt b = RandomBig(&rng, 1 + rng.NextBelow(40));
    if (b.IsZero()) continue;
    auto dm = BigUInt::DivMod(a, b);
    ASSERT_TRUE(dm.ok());
    // a == q*b + r and r < b.
    EXPECT_EQ(BigUInt::Add(BigUInt::Mul(dm->quotient, b), dm->remainder), a);
    EXPECT_LT(dm->remainder, b);
  }
}

TEST(BigUIntTest, DivModMatchesUint64) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    uint64_t a = rng.NextUint64();
    uint64_t b = rng.NextUint64() >> rng.NextBelow(32);
    if (b == 0) continue;
    auto dm = BigUInt::DivMod(BigUInt(a), BigUInt(b));
    ASSERT_TRUE(dm.ok());
    EXPECT_EQ(dm->quotient.ToUint64(), a / b);
    EXPECT_EQ(dm->remainder.ToUint64(), a % b);
  }
}

TEST(BigUIntTest, DivModKnuthAddBackCase) {
  // Divisor with small second limb triggers the q_hat adjustment paths.
  BigUInt dividend = FromHex("7fffffff800000010000000000000000");
  BigUInt divisor = FromHex("800000008000000200000005");
  auto dm = BigUInt::DivMod(dividend, divisor);
  ASSERT_TRUE(dm.ok());
  EXPECT_EQ(
      BigUInt::Add(BigUInt::Mul(dm->quotient, divisor), dm->remainder),
      dividend);
  EXPECT_LT(dm->remainder, divisor);
}

TEST(BigUIntTest, ModExpSmallCases) {
  auto r = BigUInt::ModExp(BigUInt(2), BigUInt(10), BigUInt(1000));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToUint64(), 24u);  // 1024 mod 1000
  r = BigUInt::ModExp(BigUInt(3), BigUInt(0), BigUInt(7));
  EXPECT_EQ(r->ToUint64(), 1u);
  r = BigUInt::ModExp(BigUInt(0), BigUInt(5), BigUInt(7));
  EXPECT_EQ(r->ToUint64(), 0u);
  r = BigUInt::ModExp(BigUInt(5), BigUInt(100), BigUInt(1));
  EXPECT_TRUE(r->IsZero());  // everything is 0 mod 1
}

TEST(BigUIntTest, ModExpFermatLittleTheorem) {
  // p prime, a not divisible by p: a^(p-1) = 1 mod p.
  const uint64_t p = 1000000007ull;
  Rng rng(8);
  for (int i = 0; i < 20; ++i) {
    uint64_t a = 2 + rng.NextBelow(p - 3);
    auto r = BigUInt::ModExp(BigUInt(a), BigUInt(p - 1), BigUInt(p));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->ToUint64(), 1u) << a;
  }
}

TEST(BigUIntTest, ModExpEvenModulus) {
  // Even modulus exercises the non-Montgomery path.
  auto r = BigUInt::ModExp(BigUInt(7), BigUInt(13), BigUInt(100));
  ASSERT_TRUE(r.ok());
  // 7^13 = 96889010407 -> mod 100 = 7.
  EXPECT_EQ(r->ToUint64(), 7u);
}

TEST(BigUIntTest, ModExpEvenModulusMatchesReference) {
  // Pins the even-modulus square-and-multiply loop (which now skips the
  // dead squaring after the last exponent bit) against a naive
  // multiply-one-bit-at-a-time reference, across exponents of every small
  // bit length so the loop boundary is exercised directly.
  Rng rng(14);
  for (int i = 0; i < 40; ++i) {
    BigUInt m = RandomBig(&rng, 24);
    if (m.IsOdd()) m = BigUInt::Add(m, BigUInt(1));  // force even
    if (m.IsZero()) continue;
    BigUInt base = RandomBig(&rng, 24);
    uint64_t e = rng.NextUint64() >> rng.NextBelow(58);
    auto got = BigUInt::ModExp(base, BigUInt(e), m);
    ASSERT_TRUE(got.ok());
    // Reference: repeated modular multiplication, one exponent unit at a
    // time would be too slow, so square-and-multiply MSB-first (a
    // structurally different loop from the implementation's LSB-first).
    BigUInt expected = BigUInt::Mod(BigUInt(1), m).value();
    BigUInt b = BigUInt::Mod(base, m).value();
    BigUInt exp(e);
    for (size_t bit = exp.BitLength(); bit-- > 0;) {
      expected = BigUInt::Mod(BigUInt::Mul(expected, expected), m).value();
      if (exp.GetBit(bit)) {
        expected = BigUInt::Mod(BigUInt::Mul(expected, b), m).value();
      }
    }
    EXPECT_EQ(got.value(), expected) << "e=" << e;
  }
}

TEST(BigUIntTest, ModExpEvenModulusHighBitExponent) {
  // Exponent with only the top bit set: the result depends entirely on
  // the squarings before the final bit, making any off-by-one in the
  // loop's last iteration visible.
  // 3^(2^20) mod 2^30: 3^1048576 mod 1073741824.
  BigUInt m = BigUInt(1).ShiftLeft(30);
  auto got = BigUInt::ModExp(BigUInt(3), BigUInt(1ull << 20), m);
  ASSERT_TRUE(got.ok());
  BigUInt expected = BigUInt::Mod(BigUInt(3), m).value();
  for (int i = 0; i < 20; ++i) {
    expected = BigUInt::Mod(BigUInt::Mul(expected, expected), m).value();
  }
  EXPECT_EQ(got.value(), expected);
}

TEST(BigUIntSubDeathTest, UnderflowAbortsInAllBuildTypes) {
  // Sub requires a >= b; a silent wrap inside RSA-CRT or the extended
  // Euclid would be a key-dependent miscomputation, so the precondition
  // is enforced by aborting even in release builds.
  EXPECT_DEATH(BigUInt::Sub(BigUInt(1), BigUInt(2)),
               "Sub precondition violated");
  EXPECT_DEATH(BigUInt::Sub(BigUInt(0), BigUInt(1)),
               "Sub precondition violated");
}

TEST(BigUIntTest, ModExpLargeConsistentWithSquaring) {
  Rng rng(9);
  BigUInt m = RandomBig(&rng, 32);
  if (!m.IsOdd()) m = BigUInt::Add(m, BigUInt(1));
  BigUInt base = RandomBig(&rng, 32);
  // base^4 via ModExp vs repeated Mod-of-Mul.
  auto direct = BigUInt::ModExp(base, BigUInt(4), m);
  ASSERT_TRUE(direct.ok());
  BigUInt b = BigUInt::Mod(base, m).value();
  BigUInt b2 = BigUInt::Mod(BigUInt::Mul(b, b), m).value();
  BigUInt b4 = BigUInt::Mod(BigUInt::Mul(b2, b2), m).value();
  EXPECT_EQ(direct.value(), b4);
}

TEST(BigUIntTest, GcdKnownValues) {
  EXPECT_EQ(BigUInt::Gcd(BigUInt(12), BigUInt(18)).ToUint64(), 6u);
  EXPECT_EQ(BigUInt::Gcd(BigUInt(17), BigUInt(13)).ToUint64(), 1u);
  EXPECT_EQ(BigUInt::Gcd(BigUInt(0), BigUInt(5)).ToUint64(), 5u);
  EXPECT_EQ(BigUInt::Gcd(BigUInt(5), BigUInt(0)).ToUint64(), 5u);
}

TEST(BigUIntTest, ModInverseRoundTrip) {
  Rng rng(10);
  BigUInt m = FromHex("fffffffffffffffffffffffffffffff1");  // odd modulus
  for (int i = 0; i < 50; ++i) {
    BigUInt a = RandomBig(&rng, 14);
    if (a.IsZero() || BigUInt::Gcd(a, m) != BigUInt(1)) continue;
    auto inv = BigUInt::ModInverse(a, m);
    ASSERT_TRUE(inv.ok());
    auto product = BigUInt::Mod(BigUInt::Mul(a, inv.value()), m);
    EXPECT_EQ(product.value().ToUint64(), 1u);
  }
}

TEST(BigUIntTest, ModInverseFailsWithoutCoprimality) {
  EXPECT_FALSE(BigUInt::ModInverse(BigUInt(6), BigUInt(9)).ok());
  EXPECT_FALSE(BigUInt::ModInverse(BigUInt(0), BigUInt(9)).ok());
}

TEST(MontgomeryContextTest, RequiresOddModulus) {
  EXPECT_FALSE(MontgomeryContext::Create(BigUInt(10)).ok());
  EXPECT_FALSE(MontgomeryContext::Create(BigUInt(1)).ok());
  EXPECT_TRUE(MontgomeryContext::Create(BigUInt(9)).ok());
}

TEST(MontgomeryContextTest, RoundTripThroughMontgomeryForm) {
  Rng rng(11);
  BigUInt m = RandomBig(&rng, 32);
  if (!m.IsOdd()) m = BigUInt::Add(m, BigUInt(1));
  auto ctx = MontgomeryContext::Create(m);
  ASSERT_TRUE(ctx.ok());
  for (int i = 0; i < 50; ++i) {
    BigUInt a = BigUInt::Mod(RandomBig(&rng, 32), m).value();
    EXPECT_EQ(ctx->FromMontgomery(ctx->ToMontgomery(a)), a);
  }
}

TEST(MontgomeryContextTest, MulReduceMatchesPlainModMul) {
  Rng rng(12);
  BigUInt m = RandomBig(&rng, 24);
  if (!m.IsOdd()) m = BigUInt::Add(m, BigUInt(1));
  auto ctx = MontgomeryContext::Create(m);
  ASSERT_TRUE(ctx.ok());
  for (int i = 0; i < 50; ++i) {
    BigUInt a = BigUInt::Mod(RandomBig(&rng, 24), m).value();
    BigUInt b = BigUInt::Mod(RandomBig(&rng, 24), m).value();
    BigUInt mont = ctx->FromMontgomery(
        ctx->MulReduce(ctx->ToMontgomery(a), ctx->ToMontgomery(b)));
    BigUInt plain = BigUInt::Mod(BigUInt::Mul(a, b), m).value();
    EXPECT_EQ(mont, plain);
  }
}

TEST(MontgomeryContextTest, ModExpMatchesGenericPath) {
  Rng rng(13);
  BigUInt m = RandomBig(&rng, 16);
  if (!m.IsOdd()) m = BigUInt::Add(m, BigUInt(1));
  auto ctx = MontgomeryContext::Create(m);
  ASSERT_TRUE(ctx.ok());
  for (int i = 0; i < 20; ++i) {
    BigUInt base = RandomBig(&rng, 16);
    BigUInt exp = RandomBig(&rng, 4);
    BigUInt via_ctx = ctx->ModExp(base, exp);
    // Generic square-and-multiply reference.
    BigUInt acc = BigUInt::Mod(base, m).value();
    BigUInt expected(1);
    expected = BigUInt::Mod(expected, m).value();
    for (size_t bit = 0; bit < exp.BitLength(); ++bit) {
      if (exp.GetBit(bit)) {
        expected = BigUInt::Mod(BigUInt::Mul(expected, acc), m).value();
      }
      acc = BigUInt::Mod(BigUInt::Mul(acc, acc), m).value();
    }
    EXPECT_EQ(via_ctx, expected);
  }
}

}  // namespace
}  // namespace provdb::crypto
