// Kernel dispatch layer: spec parsing, selection, multiply/ladder edge
// cases, and the pins that cached signer/verifier paths really do reuse
// their Montgomery contexts. The randomized all-kernels-agree sweeps
// live in crypto_kernel_differential_test.cc (ctest label: differential).

#include "crypto/bignum_kernels.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/bignum.h"
#include "crypto/signer.h"
#include "observability/metrics.h"
#include "testing/test_pki.h"

namespace provdb::crypto {
namespace {

BigUInt FromHex(std::string_view hex) {
  auto r = BigUInt::FromHexString(hex);
  EXPECT_TRUE(r.ok());
  return r.value();
}

BigUInt RandomBig(Rng* rng, size_t bytes) {
  Bytes raw;
  rng->NextBytes(&raw, bytes);
  return BigUInt::FromBytesBigEndian(raw);
}

// Kernel-independent reference: repeated multiply + divide. Slow but
// shares no code with the Montgomery ladders.
BigUInt SlowModExp(const BigUInt& base, const BigUInt& exp,
                   const BigUInt& m) {
  BigUInt acc = BigUInt::Mod(base, m).value();
  BigUInt result = BigUInt::Mod(BigUInt(1), m).value();
  for (size_t i = exp.BitLength(); i-- > 0;) {
    result = BigUInt::Mod(BigUInt::Mul(result, result), m).value();
    if (exp.GetBit(i)) {
      result = BigUInt::Mod(BigUInt::Mul(result, acc), m).value();
    }
  }
  return result;
}

// Restores the default selection when a test that forces kernels exits.
struct KernelGuard {
  ~KernelGuard() { ForceBigNumKernels(BigNumKernelSet{}); }
};

constexpr ModExpKernel kAllLadders[] = {
    ModExpKernel::kBinary, ModExpKernel::kWindow4, ModExpKernel::kWindow5};

// ---------------------------------------------------------------------
// Spec parsing and selection

TEST(BigNumKernelsTest, ParseSingleTokens) {
  auto r = ParseBigNumKernelSpec("schoolbook");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().mul, MulKernel::kSchoolbook);
  EXPECT_EQ(r.value().mod_exp, ModExpKernel::kWindow5);  // default kept

  r = ParseBigNumKernelSpec("binary");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().mul, MulKernel::kKaratsuba);  // default kept
  EXPECT_EQ(r.value().mod_exp, ModExpKernel::kBinary);
}

TEST(BigNumKernelsTest, ParseCombinedSpecs) {
  for (const char* spec :
       {"schoolbook,binary", "schoolbook+binary", "binary schoolbook"}) {
    auto r = ParseBigNumKernelSpec(spec);
    ASSERT_TRUE(r.ok()) << spec;
    EXPECT_EQ(r.value().mul, MulKernel::kSchoolbook) << spec;
    EXPECT_EQ(r.value().mod_exp, ModExpKernel::kBinary) << spec;
  }
}

TEST(BigNumKernelsTest, ParseLastTokenWinsWithinCategory) {
  auto r = ParseBigNumKernelSpec("window4,window5,binary");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().mod_exp, ModExpKernel::kBinary);
}

TEST(BigNumKernelsTest, ParseDefaultToken) {
  auto r = ParseBigNumKernelSpec("default");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), BigNumKernelSet{});
}

TEST(BigNumKernelsTest, ParseRejectsUnknownAndEmpty) {
  EXPECT_FALSE(ParseBigNumKernelSpec("montgomery").ok());
  EXPECT_FALSE(ParseBigNumKernelSpec("").ok());
  EXPECT_FALSE(ParseBigNumKernelSpec(",, ").ok());
  EXPECT_FALSE(ParseBigNumKernelSpec("karatsuba,fast").ok());
}

TEST(BigNumKernelsTest, KernelNamesRoundTripThroughParser) {
  for (MulKernel k : {MulKernel::kSchoolbook, MulKernel::kKaratsuba}) {
    auto r = ParseBigNumKernelSpec(MulKernelName(k));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().mul, k);
  }
  for (ModExpKernel k : kAllLadders) {
    auto r = ParseBigNumKernelSpec(ModExpKernelName(k));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().mod_exp, k);
  }
}

TEST(BigNumKernelsTest, ForcedSelectionIsVisibleAndPublishesGauges) {
  KernelGuard guard;
  BigNumKernelSet set;
  set.mul = MulKernel::kSchoolbook;
  set.mod_exp = ModExpKernel::kWindow4;
  ForceBigNumKernels(set);
  EXPECT_EQ(SelectedBigNumKernels(), set);
  auto& metrics = observability::GlobalMetrics();
  EXPECT_EQ(metrics.gauge("crypto.bignum.kernel")->value(),
            static_cast<int64_t>(ModExpKernel::kWindow4));
  EXPECT_EQ(metrics.gauge("crypto.bignum.kernel.mul")->value(),
            static_cast<int64_t>(MulKernel::kSchoolbook));
}

// ---------------------------------------------------------------------
// Multiply kernels

TEST(BigNumKernelsTest, MulKernelsAgreeAroundKaratsubaThreshold) {
  Rng rng(0xE41);
  // Straddle the recursion cutoff: exactly at, one below, one above, and
  // well above (multiple recursion levels).
  const size_t kThresholdBytes = kKaratsubaThresholdLimbs * 4;
  const size_t sizes[] = {kThresholdBytes - 4, kThresholdBytes,
                          kThresholdBytes + 4, 4 * kThresholdBytes};
  for (size_t a_bytes : sizes) {
    for (size_t b_bytes : sizes) {
      BigUInt a = RandomBig(&rng, a_bytes);
      BigUInt b = RandomBig(&rng, b_bytes);
      BigUInt school = BigUInt::MulWithKernel(a, b, MulKernel::kSchoolbook);
      BigUInt kara = BigUInt::MulWithKernel(a, b, MulKernel::kKaratsuba);
      EXPECT_EQ(school, kara) << a_bytes << "x" << b_bytes;
    }
  }
}

TEST(BigNumKernelsTest, MulKernelsHandleUnbalancedOperands) {
  Rng rng(7);
  // Karatsuba's block-decomposition path: one operand much wider.
  BigUInt wide = RandomBig(&rng, 4 * kKaratsubaThresholdLimbs * 4);
  BigUInt narrow = RandomBig(&rng, kKaratsubaThresholdLimbs * 4 + 8);
  EXPECT_EQ(BigUInt::MulWithKernel(wide, narrow, MulKernel::kSchoolbook),
            BigUInt::MulWithKernel(wide, narrow, MulKernel::kKaratsuba));
  EXPECT_EQ(BigUInt::MulWithKernel(narrow, wide, MulKernel::kSchoolbook),
            BigUInt::MulWithKernel(narrow, wide, MulKernel::kKaratsuba));
}

TEST(BigNumKernelsTest, MulKernelsHandleZeroAndOne) {
  BigUInt zero;
  BigUInt one(1);
  Rng rng(9);
  BigUInt big = RandomBig(&rng, kKaratsubaThresholdLimbs * 8);
  for (MulKernel k : {MulKernel::kSchoolbook, MulKernel::kKaratsuba}) {
    EXPECT_TRUE(BigUInt::MulWithKernel(zero, big, k).IsZero());
    EXPECT_TRUE(BigUInt::MulWithKernel(big, zero, k).IsZero());
    EXPECT_EQ(BigUInt::MulWithKernel(one, big, k), big);
    EXPECT_EQ(BigUInt::MulWithKernel(big, one, k), big);
  }
}

// ---------------------------------------------------------------------
// Ladder kernels (edge cases; randomized sweeps are in the differential
// suite)

TEST(BigNumKernelsTest, ModExpExponentZeroAndOne) {
  Rng rng(11);
  BigUInt m = RandomBig(&rng, 64);
  if (!m.IsOdd()) m = BigUInt::Add(m, BigUInt(1));
  auto ctx = MontgomeryContext::Create(m);
  ASSERT_TRUE(ctx.ok());
  BigUInt base = RandomBig(&rng, 48);
  BigUInt base_mod = BigUInt::Mod(base, m).value();
  for (ModExpKernel k : kAllLadders) {
    EXPECT_EQ(ctx.value().ModExpWithKernel(base, BigUInt(), k), BigUInt(1))
        << ModExpKernelName(k);
    EXPECT_EQ(ctx.value().ModExpWithKernel(base, BigUInt(1), k), base_mod)
        << ModExpKernelName(k);
  }
}

TEST(BigNumKernelsTest, ModExpBaseNotBelowModulus) {
  // base >= m, base == m, and base = 0 must all reduce correctly.
  BigUInt m = FromHex("f123456789abcdef0123456789abcdef1");
  auto ctx = MontgomeryContext::Create(m);
  ASSERT_TRUE(ctx.ok());
  BigUInt exp(0x12345);
  BigUInt big_base = FromHex("ffffffffffffffffffffffffffffffffffffffff");
  for (ModExpKernel k : kAllLadders) {
    EXPECT_EQ(ctx.value().ModExpWithKernel(big_base, exp, k),
              SlowModExp(big_base, exp, m))
        << ModExpKernelName(k);
    EXPECT_TRUE(ctx.value().ModExpWithKernel(m, exp, k).IsZero())
        << ModExpKernelName(k);
    EXPECT_TRUE(ctx.value().ModExpWithKernel(BigUInt(), exp, k).IsZero())
        << ModExpKernelName(k);
  }
}

TEST(BigNumKernelsTest, ModExpSingleLimbModulus) {
  auto ctx = MontgomeryContext::Create(BigUInt(0xFFFFFFFBull));  // prime
  ASSERT_TRUE(ctx.ok());
  Rng rng(13);
  for (int i = 0; i < 20; ++i) {
    BigUInt base = RandomBig(&rng, 9);
    BigUInt exp = RandomBig(&rng, 20);  // crosses the window fallback
    BigUInt want = SlowModExp(base, exp, ctx.value().modulus());
    for (ModExpKernel k : kAllLadders) {
      EXPECT_EQ(ctx.value().ModExpWithKernel(base, exp, k), want)
          << ModExpKernelName(k);
    }
  }
}

TEST(BigNumKernelsTest, ModExpLongExponentMatchesReference) {
  // Long enough that windowed ladders actually window (>= 128 bits).
  Rng rng(17);
  BigUInt m = RandomBig(&rng, 40);
  if (!m.IsOdd()) m = BigUInt::Add(m, BigUInt(1));
  auto ctx = MontgomeryContext::Create(m);
  ASSERT_TRUE(ctx.ok());
  BigUInt base = RandomBig(&rng, 40);
  BigUInt exp = RandomBig(&rng, 40);
  BigUInt want = SlowModExp(base, exp, m);
  for (ModExpKernel k : kAllLadders) {
    EXPECT_EQ(ctx.value().ModExpWithKernel(base, exp, k), want)
        << ModExpKernelName(k);
  }
}

// ---------------------------------------------------------------------
// Context reuse pins

uint64_t MontgomeryContextCount() {
  return observability::GlobalMetrics()
      .counter("crypto.bignum.montgomery_contexts")
      ->value();
}

TEST(BigNumKernelsTest, SigningTwiceReusesTheSigningContext) {
  const auto& p = provdb::testing::TestPki::Instance().participant(0);
  Bytes msg = {'r', 'e', 'u', 's', 'e'};
  // Warm up so lazily built state doesn't count against the window.
  ASSERT_TRUE(p.signer().Sign(msg).ok());
  const uint64_t before = MontgomeryContextCount();
  ASSERT_TRUE(p.signer().Sign(msg).ok());
  ASSERT_TRUE(p.signer().Sign(msg).ok());
  EXPECT_EQ(MontgomeryContextCount(), before)
      << "RsaSigner must not re-derive Montgomery contexts per signature";
}

TEST(BigNumKernelsTest, VerifyingTwiceReusesTheVerifierContext) {
  const auto& p = provdb::testing::TestPki::Instance().participant(0);
  Bytes msg = {'v', 'e', 'r', 'i', 'f', 'y'};
  auto sig = p.signer().Sign(msg);
  ASSERT_TRUE(sig.ok());
  RsaSignatureVerifier verifier(p.public_key());
  const uint64_t before = MontgomeryContextCount();
  EXPECT_TRUE(verifier.Verify(msg, sig.value()).ok());
  EXPECT_TRUE(verifier.Verify(msg, sig.value()).ok());
  EXPECT_EQ(MontgomeryContextCount(), before)
      << "RsaSignatureVerifier must reuse its construction-time context";
}

}  // namespace
}  // namespace provdb::crypto
