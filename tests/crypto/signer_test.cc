#include "crypto/signer.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace provdb::crypto {
namespace {

const RsaKeyPair& SharedPair() {
  static const RsaKeyPair* pair = [] {
    Rng rng(0x515);
    return new RsaKeyPair(GenerateRsaKeyPair(512, &rng).value());
  }();
  return *pair;
}

TEST(RsaSignerTest, SignVerifyRoundTrip) {
  auto signer = RsaSigner::Create(SharedPair().private_key);
  ASSERT_TRUE(signer.ok());
  RsaSignatureVerifier verifier(SharedPair().public_key);

  ByteView msg(std::string_view("the message"));
  auto sig = signer->Sign(msg);
  ASSERT_TRUE(sig.ok());
  EXPECT_EQ(sig->size(), signer->signature_size());
  EXPECT_TRUE(verifier.Verify(msg, *sig).ok());
  EXPECT_FALSE(
      verifier.Verify(ByteView(std::string_view("another")), *sig).ok());
}

TEST(RsaSignerTest, SchemeNameDescribesKeyAndHash) {
  auto signer = RsaSigner::Create(SharedPair().private_key,
                                  HashAlgorithm::kSha256);
  ASSERT_TRUE(signer.ok());
  EXPECT_EQ(signer->scheme_name(), "RSA-512/SHA-256");
}

TEST(RsaSignerTest, HashAlgorithmMustMatchBetweenSignerAndVerifier) {
  auto signer = RsaSigner::Create(SharedPair().private_key,
                                  HashAlgorithm::kSha1);
  ASSERT_TRUE(signer.ok());
  ByteView msg(std::string_view("msg"));
  auto sig = signer->Sign(msg);
  ASSERT_TRUE(sig.ok());
  RsaSignatureVerifier wrong_alg(SharedPair().public_key,
                                 HashAlgorithm::kSha256);
  EXPECT_FALSE(wrong_alg.Verify(msg, *sig).ok());
}

TEST(HmacSignerTest, SymmetricRoundTrip) {
  Bytes key = {1, 2, 3, 4, 5};
  HmacSigner signer(key);
  ByteView msg(std::string_view("payload"));
  auto mac = signer.Sign(msg);
  ASSERT_TRUE(mac.ok());
  EXPECT_EQ(mac->size(), 20u);  // SHA-1 width
  EXPECT_TRUE(signer.Verify(msg, *mac).ok());
  EXPECT_FALSE(
      signer.Verify(ByteView(std::string_view("other")), *mac).ok());
}

TEST(HmacSignerTest, DifferentKeysCannotVerify) {
  HmacSigner a(Bytes{1, 2, 3});
  HmacSigner b(Bytes{1, 2, 4});
  ByteView msg(std::string_view("payload"));
  auto mac = a.Sign(msg);
  ASSERT_TRUE(mac.ok());
  EXPECT_FALSE(b.Verify(msg, *mac).ok());
}

TEST(HmacSignerTest, SchemeName) {
  HmacSigner signer(Bytes{1}, HashAlgorithm::kSha256);
  EXPECT_EQ(signer.scheme_name(), "HMAC/SHA-256");
  EXPECT_EQ(signer.signature_size(), 32u);
}

TEST(SignerTest, PolymorphicUseThroughBaseInterface) {
  auto rsa = RsaSigner::Create(SharedPair().private_key);
  ASSERT_TRUE(rsa.ok());
  HmacSigner hmac(Bytes{9, 9, 9});
  std::vector<const Signer*> signers = {&rsa.value(), &hmac};
  for (const Signer* s : signers) {
    auto sig = s->Sign(ByteView(std::string_view("poly")));
    ASSERT_TRUE(sig.ok());
    EXPECT_EQ(sig->size(), s->signature_size());
  }
}

}  // namespace
}  // namespace provdb::crypto
