#include "crypto/rsa.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace provdb::crypto {
namespace {

// Key generation is the slow part; share one pair per size across tests.
const RsaKeyPair& SharedKeyPair512() {
  static const RsaKeyPair* pair = [] {
    Rng rng(0x51AB);
    return new RsaKeyPair(GenerateRsaKeyPair(512, &rng).value());
  }();
  return *pair;
}

const RsaKeyPair& SharedKeyPair1024() {
  static const RsaKeyPair* pair = [] {
    Rng rng(0x1024);
    return new RsaKeyPair(GenerateRsaKeyPair(1024, &rng).value());
  }();
  return *pair;
}

Digest TestDigest(HashAlgorithm alg, std::string_view message) {
  return HashBytes(alg, ByteView(message));
}

TEST(PrimalityTest, SmallPrimesAndComposites) {
  Rng rng(1);
  for (uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 97ull, 251ull, 257ull,
                     65537ull, 1000000007ull}) {
    EXPECT_TRUE(IsProbablePrime(BigUInt(p), &rng)) << p;
  }
  for (uint64_t c : {0ull, 1ull, 4ull, 9ull, 15ull, 255ull, 65535ull,
                     1000000008ull}) {
    EXPECT_FALSE(IsProbablePrime(BigUInt(c), &rng)) << c;
  }
}

TEST(PrimalityTest, CarmichaelNumbersRejected) {
  Rng rng(2);
  // Carmichael numbers fool Fermat tests but not Miller-Rabin.
  for (uint64_t carmichael : {561ull, 1105ull, 1729ull, 41041ull, 825265ull}) {
    EXPECT_FALSE(IsProbablePrime(BigUInt(carmichael), &rng)) << carmichael;
  }
}

TEST(PrimeGenerationTest, ExactBitLengthAndPrimality) {
  Rng rng(3);
  for (size_t bits : {64u, 128u, 256u}) {
    auto p = GeneratePrime(bits, &rng);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p->BitLength(), bits);
    EXPECT_TRUE(p->IsOdd());
    EXPECT_TRUE(IsProbablePrime(*p, &rng));
    // Top two bits set (so products of two primes reach 2*bits).
    EXPECT_TRUE(p->GetBit(bits - 1));
    EXPECT_TRUE(p->GetBit(bits - 2));
  }
}

TEST(RsaKeyGenTest, RejectsBadParameters) {
  Rng rng(4);
  EXPECT_FALSE(GenerateRsaKeyPair(64, &rng).ok());   // too small
  EXPECT_FALSE(GenerateRsaKeyPair(513, &rng).ok());  // odd
}

TEST(RsaKeyGenTest, KeyComponentsConsistent) {
  const RsaKeyPair& pair = SharedKeyPair512();
  const RsaPrivateKey& key = pair.private_key;
  EXPECT_EQ(key.n.BitLength(), 512u);
  EXPECT_EQ(key.e.ToUint64(), 65537u);
  EXPECT_EQ(BigUInt::Mul(key.p, key.q), key.n);
  EXPECT_GT(key.p, key.q);
  // e*d = 1 mod phi(n)
  BigUInt phi = BigUInt::Mul(BigUInt::Sub(key.p, BigUInt(1)),
                             BigUInt::Sub(key.q, BigUInt(1)));
  EXPECT_EQ(BigUInt::Mod(BigUInt::Mul(key.e, key.d), phi).value(),
            BigUInt(1));
  // CRT components.
  EXPECT_EQ(BigUInt::Mod(key.d, BigUInt::Sub(key.p, BigUInt(1))).value(),
            key.dp);
  EXPECT_EQ(BigUInt::Mod(key.d, BigUInt::Sub(key.q, BigUInt(1))).value(),
            key.dq);
  EXPECT_EQ(BigUInt::Mod(BigUInt::Mul(key.qinv, key.q), key.p).value(),
            BigUInt(1));
  EXPECT_EQ(pair.public_key.ModulusBytes(), 64u);
}

TEST(RsaKeyGenTest, DeterministicFromSeed) {
  Rng rng1(77), rng2(77);
  auto a = GenerateRsaKeyPair(512, &rng1);
  auto b = GenerateRsaKeyPair(512, &rng2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->public_key, b->public_key);
}

TEST(RsaSignTest, RoundTripAllAlgorithms) {
  const RsaKeyPair& pair = SharedKeyPair512();
  for (HashAlgorithm alg : {HashAlgorithm::kSha1, HashAlgorithm::kSha256,
                            HashAlgorithm::kMd5}) {
    Digest d = TestDigest(alg, "sign me");
    auto sig = RsaSignDigest(pair.private_key, alg, d);
    ASSERT_TRUE(sig.ok());
    EXPECT_EQ(sig->size(), 64u);
    EXPECT_TRUE(RsaVerifyDigest(pair.public_key, alg, d, *sig).ok());
  }
}

TEST(RsaSignTest, PaperSize1024ProducesPaper128ByteSignatures) {
  const RsaKeyPair& pair = SharedKeyPair1024();
  Digest d = TestDigest(HashAlgorithm::kSha1, "checksum payload");
  auto sig = RsaSignDigest(pair.private_key, HashAlgorithm::kSha1, d);
  ASSERT_TRUE(sig.ok());
  EXPECT_EQ(sig->size(), 128u);  // the paper's binary(128) checksum column
  EXPECT_TRUE(
      RsaVerifyDigest(pair.public_key, HashAlgorithm::kSha1, d, *sig).ok());
}

TEST(RsaSignTest, CrtSignatureMatchesPlainExponentiation) {
  const RsaKeyPair& pair = SharedKeyPair512();
  Digest d = TestDigest(HashAlgorithm::kSha1, "crt check");
  auto sig = RsaSignDigest(pair.private_key, HashAlgorithm::kSha1, d);
  ASSERT_TRUE(sig.ok());
  // Verify s^e mod n reproduces a correctly padded message by checking the
  // signature verifies — and additionally that s == m^d mod n directly.
  BigUInt s = BigUInt::FromBytesBigEndian(*sig);
  auto m = BigUInt::ModExp(s, pair.private_key.e, pair.private_key.n);
  ASSERT_TRUE(m.ok());
  auto s2 = BigUInt::ModExp(*m, pair.private_key.d, pair.private_key.n);
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s2, s);
}

TEST(RsaVerifyTest, TamperedSignatureRejected) {
  const RsaKeyPair& pair = SharedKeyPair512();
  Digest d = TestDigest(HashAlgorithm::kSha1, "message");
  auto sig = RsaSignDigest(pair.private_key, HashAlgorithm::kSha1, d);
  ASSERT_TRUE(sig.ok());
  for (size_t byte : {0u, 31u, 63u}) {
    Bytes bad = *sig;
    bad[byte] ^= 0x01;
    EXPECT_FALSE(
        RsaVerifyDigest(pair.public_key, HashAlgorithm::kSha1, d, bad).ok());
  }
}

TEST(RsaVerifyTest, WrongDigestRejected) {
  const RsaKeyPair& pair = SharedKeyPair512();
  Digest d1 = TestDigest(HashAlgorithm::kSha1, "message one");
  Digest d2 = TestDigest(HashAlgorithm::kSha1, "message two");
  auto sig = RsaSignDigest(pair.private_key, HashAlgorithm::kSha1, d1);
  ASSERT_TRUE(sig.ok());
  EXPECT_FALSE(
      RsaVerifyDigest(pair.public_key, HashAlgorithm::kSha1, d2, *sig).ok());
}

TEST(RsaVerifyTest, WrongAlgorithmTagRejected) {
  // Same digest bytes presented under a different algorithm tag must fail
  // (prevents cross-algorithm confusion).
  const RsaKeyPair& pair = SharedKeyPair512();
  Digest d = TestDigest(HashAlgorithm::kMd5, "message");
  auto sig = RsaSignDigest(pair.private_key, HashAlgorithm::kMd5, d);
  ASSERT_TRUE(sig.ok());
  EXPECT_FALSE(
      RsaVerifyDigest(pair.public_key, HashAlgorithm::kSha1, d, *sig).ok());
}

TEST(RsaVerifyTest, WrongKeyRejected) {
  const RsaKeyPair& pair = SharedKeyPair512();
  Rng rng(0xBEEF);
  auto other = GenerateRsaKeyPair(512, &rng);
  ASSERT_TRUE(other.ok());
  Digest d = TestDigest(HashAlgorithm::kSha1, "message");
  auto sig = RsaSignDigest(pair.private_key, HashAlgorithm::kSha1, d);
  ASSERT_TRUE(sig.ok());
  EXPECT_FALSE(
      RsaVerifyDigest(other->public_key, HashAlgorithm::kSha1, d, *sig).ok());
}

TEST(RsaVerifyTest, WrongLengthRejected) {
  const RsaKeyPair& pair = SharedKeyPair512();
  Digest d = TestDigest(HashAlgorithm::kSha1, "message");
  Bytes short_sig(32, 0xAA);
  EXPECT_FALSE(
      RsaVerifyDigest(pair.public_key, HashAlgorithm::kSha1, d, short_sig)
          .ok());
}

TEST(RsaSigningContextTest, ReusableAcrossSignatures) {
  const RsaKeyPair& pair = SharedKeyPair512();
  auto ctx = RsaSigningContext::Create(pair.private_key);
  ASSERT_TRUE(ctx.ok());
  for (int i = 0; i < 20; ++i) {
    Digest d = TestDigest(HashAlgorithm::kSha1,
                          "message " + std::to_string(i));
    auto sig = ctx->SignDigest(HashAlgorithm::kSha1, d);
    ASSERT_TRUE(sig.ok());
    EXPECT_TRUE(
        RsaVerifyDigest(pair.public_key, HashAlgorithm::kSha1, d, *sig).ok());
  }
}

TEST(RsaSigningContextTest, DeterministicSignatures) {
  // PKCS#1 v1.5 is deterministic: same digest, same signature.
  const RsaKeyPair& pair = SharedKeyPair512();
  auto ctx = RsaSigningContext::Create(pair.private_key);
  ASSERT_TRUE(ctx.ok());
  Digest d = TestDigest(HashAlgorithm::kSha1, "stable");
  auto s1 = ctx->SignDigest(HashAlgorithm::kSha1, d);
  auto s2 = ctx->SignDigest(HashAlgorithm::kSha1, d);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s1, *s2);
}

TEST(RsaPublicKeyTest, SerializeRoundTrip) {
  const RsaKeyPair& pair = SharedKeyPair512();
  Bytes wire = pair.public_key.Serialize();
  auto back = RsaPublicKey::Deserialize(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, pair.public_key);
}

TEST(RsaPublicKeyTest, DeserializeGarbageFails) {
  Bytes garbage = {0xFF, 0xFF, 0xFF};
  EXPECT_FALSE(RsaPublicKey::Deserialize(garbage).ok());
}

}  // namespace
}  // namespace provdb::crypto
