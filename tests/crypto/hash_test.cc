// Hash-function tests against the published FIPS 180 / RFC 1321 vectors,
// plus streaming-equivalence properties around block boundaries.

#include "crypto/hash.h"

#include <gtest/gtest.h>

#include <string>

#include "crypto/md5.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace provdb::crypto {
namespace {

std::string HashHex(HashAlgorithm alg, std::string_view message) {
  return HashBytes(alg, ByteView(message)).ToHex();
}

TEST(Sha1Test, FipsVectors) {
  EXPECT_EQ(HashHex(HashAlgorithm::kSha1, ""),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(HashHex(HashAlgorithm::kSha1, "abc"),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(HashHex(HashAlgorithm::kSha1,
                    "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
  EXPECT_EQ(
      HashHex(HashAlgorithm::kSha1,
              "The quick brown fox jumps over the lazy dog"),
      "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1Test, MillionAs) {
  Sha1Hasher hasher;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    hasher.Update(ByteView(chunk));
  }
  EXPECT_EQ(hasher.Finish().ToHex(),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha256Test, FipsVectors) {
  EXPECT_EQ(
      HashHex(HashAlgorithm::kSha256, ""),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      HashHex(HashAlgorithm::kSha256, "abc"),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      HashHex(HashAlgorithm::kSha256,
              "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256Hasher hasher;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    hasher.Update(ByteView(chunk));
  }
  EXPECT_EQ(
      hasher.Finish().ToHex(),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Md5Test, Rfc1321Vectors) {
  EXPECT_EQ(HashHex(HashAlgorithm::kMd5, ""),
            "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(HashHex(HashAlgorithm::kMd5, "a"),
            "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(HashHex(HashAlgorithm::kMd5, "abc"),
            "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(HashHex(HashAlgorithm::kMd5, "message digest"),
            "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(HashHex(HashAlgorithm::kMd5, "abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(HashHex(HashAlgorithm::kMd5,
                    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
                    "0123456789"),
            "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(HashHex(HashAlgorithm::kMd5,
                    "1234567890123456789012345678901234567890123456789012345"
                    "6789012345678901234567890"),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(HashTest, AlgorithmMetadata) {
  EXPECT_EQ(HashAlgorithmName(HashAlgorithm::kSha1), "SHA-1");
  EXPECT_EQ(HashAlgorithmName(HashAlgorithm::kSha256), "SHA-256");
  EXPECT_EQ(HashAlgorithmName(HashAlgorithm::kMd5), "MD5");
  EXPECT_EQ(HashDigestSize(HashAlgorithm::kSha1), 20u);
  EXPECT_EQ(HashDigestSize(HashAlgorithm::kSha256), 32u);
  EXPECT_EQ(HashDigestSize(HashAlgorithm::kMd5), 16u);
}

TEST(HashTest, FactoryMatchesOneShot) {
  std::string message = "factory test message";
  for (HashAlgorithm alg : {HashAlgorithm::kSha1, HashAlgorithm::kSha256,
                            HashAlgorithm::kMd5}) {
    auto hasher = CreateHasher(alg);
    ASSERT_NE(hasher, nullptr);
    EXPECT_EQ(hasher->digest_size(), HashDigestSize(alg));
    EXPECT_EQ(hasher->algorithm(), alg);
    EXPECT_EQ(hasher->Hash(ByteView(message)).ToHex(),
              HashBytes(alg, ByteView(message)).ToHex());
  }
}

// Streaming property: one-shot == byte-at-a-time == random chunking, for
// message lengths straddling the 64-byte block boundary and the 56-byte
// padding boundary.
class HashStreamingTest
    : public ::testing::TestWithParam<std::tuple<HashAlgorithm, size_t>> {};

TEST_P(HashStreamingTest, ChunkedMatchesOneShot) {
  auto [alg, length] = GetParam();
  std::string message;
  for (size_t i = 0; i < length; ++i) {
    message.push_back(static_cast<char>('A' + (i % 26)));
  }
  Digest one_shot = HashBytes(alg, ByteView(message));

  // Byte-at-a-time.
  auto hasher = CreateHasher(alg);
  for (char c : message) {
    hasher->Update(ByteView(&reinterpret_cast<const uint8_t&>(c), 1));
  }
  EXPECT_EQ(hasher->Finish().ToHex(), one_shot.ToHex());

  // Uneven chunks (7 bytes).
  hasher->Reset();
  for (size_t pos = 0; pos < message.size(); pos += 7) {
    hasher->Update(ByteView(std::string_view(message).substr(pos, 7)));
  }
  EXPECT_EQ(hasher->Finish().ToHex(), one_shot.ToHex());
}

INSTANTIATE_TEST_SUITE_P(
    BoundaryLengths, HashStreamingTest,
    ::testing::Combine(
        ::testing::Values(HashAlgorithm::kSha1, HashAlgorithm::kSha256,
                          HashAlgorithm::kMd5),
        ::testing::Values(0u, 1u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u,
                          128u, 1000u)));

TEST(HashTest, ResetClearsState) {
  Sha1Hasher hasher;
  hasher.Update(ByteView(std::string_view("garbage")));
  hasher.Reset();
  hasher.Update(ByteView(std::string_view("abc")));
  EXPECT_EQ(hasher.Finish().ToHex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(HashTest, ReuseAfterFinish) {
  Sha256Hasher hasher;
  hasher.Update(ByteView(std::string_view("abc")));
  Digest first = hasher.Finish();
  hasher.Reset();
  hasher.Update(ByteView(std::string_view("abc")));
  EXPECT_EQ(hasher.Finish().ToHex(), first.ToHex());
}

TEST(HashTest, DistinctMessagesDistinctDigests) {
  // Not a collision test — a sanity check that close inputs diverge.
  for (HashAlgorithm alg : {HashAlgorithm::kSha1, HashAlgorithm::kSha256,
                            HashAlgorithm::kMd5}) {
    EXPECT_NE(HashHex(alg, "message1"), HashHex(alg, "message2"));
    EXPECT_NE(HashHex(alg, ""), HashHex(alg, std::string(1, '\0')));
  }
}

}  // namespace
}  // namespace provdb::crypto
