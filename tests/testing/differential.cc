#include "testing/differential.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <utility>

#include "common/thread_pool.h"
#include "provenance/serialization.h"
#include "provenance/snapshot.h"

namespace provdb::testing {

using provenance::BuildSignedIngestRecord;
using provenance::IngestRequest;
using provenance::ObjectState;
using provenance::OperationType;
using provenance::ProvenanceRecord;

IngestWorkloadBuilder::IngestWorkloadBuilder(crypto::HashAlgorithm alg)
    : alg_(alg),
      pki_(&TestPki::InstanceFor(alg)),
      engine_(alg),
      hasher_(&tree_, alg) {}

Status IngestWorkloadBuilder::Apply(IngestRequest request) {
  PROVDB_ASSIGN_OR_RETURN(
      ProvenanceRecord record,
      BuildSignedIngestRecord(engine_, chains_.Get(request.object), request));
  const storage::ObjectId id = record.output.object_id;
  const provenance::SeqId seq = record.seq_id;
  Bytes checksum = record.checksum;
  PROVDB_RETURN_IF_ERROR(reference_.AddRecord(std::move(record)).status());
  chains_.Set(id, seq, std::move(checksum));
  requests_.push_back(std::move(request));
  return Status::OK();
}

Result<storage::ObjectId> IngestWorkloadBuilder::Insert(
    size_t participant_idx, const storage::Value& value) {
  PROVDB_ASSIGN_OR_RETURN(storage::ObjectId id, tree_.Insert(value));
  PROVDB_ASSIGN_OR_RETURN(crypto::Digest hash, hasher_.HashSubtreeBasic(id));
  IngestRequest request;
  request.op = OperationType::kInsert;
  request.object = id;
  request.post_hash = hash;
  request.participant = &pki_->participant(participant_idx);
  PROVDB_RETURN_IF_ERROR(Apply(std::move(request)));
  tracked_.push_back(id);
  return id;
}

Result<storage::ObjectId> IngestWorkloadBuilder::AddBootstrapObject(
    const storage::Value& value) {
  return tree_.Insert(value);
}

Status IngestWorkloadBuilder::Update(storage::ObjectId id,
                                     size_t participant_idx,
                                     const storage::Value& value) {
  const bool first_record = !chains_.Get(id).exists;
  PROVDB_ASSIGN_OR_RETURN(crypto::Digest pre, hasher_.HashSubtreeBasic(id));
  PROVDB_RETURN_IF_ERROR(tree_.Update(id, value));
  PROVDB_ASSIGN_OR_RETURN(crypto::Digest post, hasher_.HashSubtreeBasic(id));
  IngestRequest request;
  request.op = OperationType::kUpdate;
  request.object = id;
  request.has_pre_hash = true;
  request.pre_hash = pre;
  request.post_hash = post;
  request.participant = &pki_->participant(participant_idx);
  PROVDB_RETURN_IF_ERROR(Apply(std::move(request)));
  if (first_record) {
    tracked_.push_back(id);
  }
  return Status::OK();
}

Result<storage::ObjectId> IngestWorkloadBuilder::Aggregate(
    const std::vector<storage::ObjectId>& inputs, size_t participant_idx,
    const storage::Value& root_value) {
  if (inputs.empty()) {
    return Status::InvalidArgument("aggregate requires at least one input");
  }
  std::vector<storage::ObjectId> sorted = inputs;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  IngestRequest request;
  request.op = OperationType::kAggregate;
  provenance::SeqId max_seq = 0;
  for (storage::ObjectId in : sorted) {
    PROVDB_RETURN_IF_ERROR(tree_.GetNode(in).status());
    PROVDB_ASSIGN_OR_RETURN(crypto::Digest h, hasher_.HashSubtreeBasic(in));
    request.inputs.push_back(ObjectState{in, h});
    provenance::LocalChainState::Tail tail = chains_.Get(in);
    request.input_prev_checksums.push_back(tail.checksum);
    if (tail.exists && tail.seq_id > max_seq) {
      max_seq = tail.seq_id;
    }
  }
  PROVDB_ASSIGN_OR_RETURN(storage::ObjectId out_id,
                          tree_.Aggregate(sorted, root_value));
  PROVDB_ASSIGN_OR_RETURN(crypto::Digest out_hash,
                          hasher_.HashSubtreeBasic(out_id));
  request.object = out_id;
  request.post_hash = out_hash;
  request.aggregate_seq = max_seq + 1;
  request.participant = &pki_->participant(participant_idx);
  PROVDB_RETURN_IF_ERROR(Apply(std::move(request)));
  tracked_.push_back(out_id);
  return out_id;
}

Status RandomDifferentialWorkload(IngestWorkloadBuilder* builder,
                                  uint64_t seed,
                                  const DifferentialWorkloadOptions& options) {
  Rng rng(seed);
  const size_t participants = TestPki::kNumParticipants;

  auto random_value = [&]() -> storage::Value {
    switch (rng.NextBelow(3)) {
      case 0:
        return storage::Value::Int(rng.NextInRange(-1000, 1000));
      case 1:
        return storage::Value::String(rng.NextString(1 + rng.NextBelow(12)));
      default: {
        Bytes blob;
        rng.NextBytes(&blob, 1 + rng.NextBelow(16));
        return storage::Value::Blob(std::move(blob));
      }
    }
  };

  // Objects eligible as update victims / aggregate inputs, in creation
  // order. A quadratically-skewed pick keeps early objects hot, so long
  // chains (and thus cross-batch chain continuation) actually occur.
  std::vector<storage::ObjectId> live;
  auto skewed_pick = [&]() -> storage::ObjectId {
    double d = rng.NextDouble();
    size_t idx = static_cast<size_t>(d * d * static_cast<double>(live.size()));
    if (idx >= live.size()) idx = live.size() - 1;
    return live[idx];
  };

  for (size_t i = 0; i < options.bootstrap_objects; ++i) {
    PROVDB_ASSIGN_OR_RETURN(storage::ObjectId id,
                            builder->AddBootstrapObject(random_value()));
    live.push_back(id);
  }

  for (size_t op = 0; op < options.num_ops; ++op) {
    const size_t p = rng.NextBelow(participants);
    const double r = rng.NextDouble();
    if (live.empty() || r < options.insert_weight) {
      PROVDB_ASSIGN_OR_RETURN(storage::ObjectId id,
                              builder->Insert(p, random_value()));
      live.push_back(id);
    } else if (live.size() < 2 ||
               r < options.insert_weight + options.update_weight) {
      PROVDB_RETURN_IF_ERROR(builder->Update(skewed_pick(), p,
                                             random_value()));
    } else {
      const size_t want = 2 + rng.NextBelow(3);
      std::vector<storage::ObjectId> inputs;
      for (size_t k = 0; k < want; ++k) {
        storage::ObjectId candidate = skewed_pick();
        // Only tracked inputs: aggregating an untracked object that is
        // updated later leaves an input state the verifier can never
        // resolve to a record (see IsTracked).
        if (builder->IsTracked(candidate)) {
          inputs.push_back(candidate);
        }
      }
      std::sort(inputs.begin(), inputs.end());
      inputs.erase(std::unique(inputs.begin(), inputs.end()), inputs.end());
      if (inputs.size() < 2) {
        // Degenerate pick; fall back to an update so aggregates stay
        // genuinely multi-input.
        PROVDB_RETURN_IF_ERROR(builder->Update(skewed_pick(), p,
                                               random_value()));
        continue;
      }
      PROVDB_ASSIGN_OR_RETURN(storage::ObjectId id,
                              builder->Aggregate(inputs, p, random_value()));
      live.push_back(id);
    }
  }
  return Status::OK();
}

Status WipeIngestRoot(storage::Env* env, const std::string& root) {
  auto entries = env->ListDir(root);
  if (!entries.ok()) return Status::OK();  // nothing there yet
  for (const std::string& entry : *entries) {
    if (entry.rfind("shard-", 0) != 0) continue;
    const std::string dir = root + "/" + entry;
    PROVDB_ASSIGN_OR_RETURN(std::vector<std::string> files,
                            env->ListDir(dir));
    for (const std::string& f : files) {
      PROVDB_RETURN_IF_ERROR(env->RemoveFile(dir + "/" + f));
    }
  }
  return Status::OK();
}

Status CheckSnapshotIsBatchPrefix(const provenance::StoreSnapshot& snapshot,
                                  const IngestWorkloadBuilder& builder,
                                  size_t max_batch_records) {
  const size_t num_shards = snapshot.num_shards();
  const std::vector<IngestRequest>& requests = builder.requests();
  const provenance::ProvenanceStore& reference = builder.reference_store();

  // Request i produced reference record i (the builder applies them in
  // submission order), so each shard's durable prefix is a prefix of
  // that shard's subsequence of reference record indices.
  std::vector<std::vector<uint64_t>> shard_seq(num_shards);
  for (uint64_t i = 0; i < requests.size(); ++i) {
    const size_t s = provenance::ShardedProvenanceStore::ShardOf(
        requests[i].object, num_shards);
    shard_seq[s].push_back(i);
  }

  // Per-shard: boundary-count legality, then byte-identical chains.
  std::map<storage::ObjectId, std::vector<const ProvenanceRecord*>>
      expected_all;
  for (size_t s = 0; s < num_shards; ++s) {
    const provenance::StoreReadView& view = snapshot.shard_view(s);
    const uint64_t n = view.record_count();
    if (n > shard_seq[s].size()) {
      return Status::Internal("shard " + std::to_string(s) + " cut at " +
                              std::to_string(n) + " records but only " +
                              std::to_string(shard_seq[s].size()) +
                              " were ever routed to it");
    }
    const bool at_boundary =
        n == shard_seq[s].size() ||
        (max_batch_records != 0 && n % max_batch_records == 0);
    if (!at_boundary) {
      return Status::Internal(
          "shard " + std::to_string(s) + " cut at " + std::to_string(n) +
          " records, which is not a group-commit batch boundary (batch " +
          "size " + std::to_string(max_batch_records) + ")");
    }

    std::map<storage::ObjectId, std::vector<const ProvenanceRecord*>>
        expected;
    for (uint64_t k = 0; k < n; ++k) {
      const ProvenanceRecord& rec = reference.record(shard_seq[s][k]);
      expected[rec.output.object_id].push_back(&rec);
      expected_all[rec.output.object_id].push_back(&rec);
    }
    std::map<storage::ObjectId, std::vector<const ProvenanceRecord*>> actual;
    view.AppendChains(&actual);
    if (actual.size() != expected.size()) {
      return Status::Internal("shard " + std::to_string(s) + " cut has " +
                              std::to_string(actual.size()) +
                              " chains, expected " +
                              std::to_string(expected.size()));
    }
    for (const auto& [object, chain] : expected) {
      auto it = actual.find(object);
      if (it == actual.end()) {
        return Status::Internal("shard " + std::to_string(s) +
                                " cut is missing the chain of object " +
                                std::to_string(object));
      }
      if (it->second.size() != chain.size()) {
        return Status::Internal(
            "object " + std::to_string(object) + " has " +
            std::to_string(it->second.size()) + " records in the cut, " +
            std::to_string(chain.size()) + " in the reference prefix");
      }
      for (size_t i = 0; i < chain.size(); ++i) {
        if (provenance::EncodeRecord(*it->second[i]) !=
            provenance::EncodeRecord(*chain[i])) {
          return Status::Internal(
              "record " + std::to_string(i) + " of object " +
              std::to_string(object) +
              " differs between the cut and the reference prefix");
        }
      }
    }
  }

  // The report over the cut must be byte-identical to the report over a
  // quiesced store stopped at the same per-shard prefixes. A cut may
  // legitimately leave a cross-shard aggregate input unresolved — but
  // then the quiesced replay of that exact prefix reports it too.
  provenance::ChecksumEngine engine(builder.algorithm());
  provenance::VerificationReport expected_report;
  provenance::VerifyRecordChains(builder.registry(), engine, expected_all,
                                 &expected_report);
  provenance::VerificationReport cut_report;
  provenance::VerifyRecordChains(builder.registry(), engine,
                                 snapshot.AllChains(), &cut_report);
  if (cut_report.ToString() != expected_report.ToString()) {
    return Status::Internal(
        "verification report over the cut differs from the quiesced "
        "replay of the same prefix:\n--- cut ---\n" +
        cut_report.ToString() + "\n--- quiesced ---\n" +
        expected_report.ToString());
  }
  return Status::OK();
}

Result<ConcurrentAuditStats> RunConcurrentAuditDifferential(
    storage::Env* env, const std::string& root,
    const IngestWorkloadBuilder& builder, provenance::IngestOptions options) {
  // Only the record-count threshold may fire, or cuts could land on
  // byte/time boundaries CheckSnapshotIsBatchPrefix cannot predict.
  options.max_batch_bytes = 1ull << 30;
  options.flush_interval_seconds = 0;
  options.sync_every_record = false;
  PROVDB_RETURN_IF_ERROR(WipeIngestRoot(env, root));
  PROVDB_ASSIGN_OR_RETURN(
      std::unique_ptr<provenance::IngestPipeline> pipeline,
      provenance::IngestPipeline::Open(env, root, options));

  // Writer on a pool task (R03: no raw threads); auditor on this thread.
  std::atomic<bool> done{false};
  ThreadPool pool(1);
  provenance::IngestPipeline* live = pipeline.get();
  const std::vector<IngestRequest>* requests = &builder.requests();
  std::future<Status> writer =
      pool.Submit([live, requests, &done]() -> Status {
        Status status = Status::OK();
        for (const IngestRequest& request : *requests) {
          status = live->Submit(request);
          if (!status.ok()) break;
        }
        if (status.ok()) {
          status = live->Drain();
        }
        done.store(true, std::memory_order_release);
        return status;
      });

  ConcurrentAuditStats stats;
  std::set<uint64_t> cut_sizes;
  Status cut_check = Status::OK();
  while (!done.load(std::memory_order_acquire)) {
    provenance::StoreSnapshot snapshot = live->OpenSnapshot();
    cut_check =
        CheckSnapshotIsBatchPrefix(snapshot, builder, options.max_batch_records);
    ++stats.snapshots_checked;
    if (snapshot.record_count() > 0) {
      ++stats.nonempty_snapshots;
    }
    cut_sizes.insert(snapshot.record_count());
    if (!cut_check.ok()) {
      break;
    }
  }
  Status writer_status = writer.get();
  PROVDB_RETURN_IF_ERROR(writer_status);
  PROVDB_RETURN_IF_ERROR(cut_check);

  // Quiesced epilogue: the final cut is the whole workload, and it still
  // validates as a (complete) prefix.
  provenance::StoreSnapshot final_cut = pipeline->OpenSnapshot();
  if (final_cut.record_count() != builder.requests().size()) {
    return Status::Internal(
        "drained pipeline published " +
        std::to_string(final_cut.record_count()) + " records, expected " +
        std::to_string(builder.requests().size()));
  }
  PROVDB_RETURN_IF_ERROR(CheckSnapshotIsBatchPrefix(
      final_cut, builder, options.max_batch_records));
  cut_sizes.insert(final_cut.record_count());
  ++stats.snapshots_checked;
  ++stats.nonempty_snapshots;
  stats.distinct_cuts = cut_sizes.size();
  PROVDB_RETURN_IF_ERROR(pipeline->Close());
  return stats;
}

Result<std::unique_ptr<provenance::IngestPipeline>> ReplayThroughPipeline(
    storage::Env* env, const std::string& root_dir,
    const std::vector<provenance::IngestRequest>& requests,
    provenance::IngestOptions options) {
  PROVDB_ASSIGN_OR_RETURN(
      std::unique_ptr<provenance::IngestPipeline> pipeline,
      provenance::IngestPipeline::Open(env, root_dir, options));
  for (size_t i = 0; i < requests.size(); ++i) {
    PROVDB_RETURN_IF_ERROR(pipeline->Submit(requests[i]));
  }
  PROVDB_RETURN_IF_ERROR(pipeline->Close());
  return pipeline;
}

}  // namespace provdb::testing
