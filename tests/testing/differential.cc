#include "testing/differential.h"

#include <algorithm>
#include <utility>

namespace provdb::testing {

using provenance::BuildSignedIngestRecord;
using provenance::IngestRequest;
using provenance::ObjectState;
using provenance::OperationType;
using provenance::ProvenanceRecord;

IngestWorkloadBuilder::IngestWorkloadBuilder(crypto::HashAlgorithm alg)
    : alg_(alg),
      pki_(&TestPki::InstanceFor(alg)),
      engine_(alg),
      hasher_(&tree_, alg) {}

Status IngestWorkloadBuilder::Apply(IngestRequest request) {
  PROVDB_ASSIGN_OR_RETURN(
      ProvenanceRecord record,
      BuildSignedIngestRecord(engine_, chains_.Get(request.object), request));
  const storage::ObjectId id = record.output.object_id;
  const provenance::SeqId seq = record.seq_id;
  Bytes checksum = record.checksum;
  PROVDB_RETURN_IF_ERROR(reference_.AddRecord(std::move(record)).status());
  chains_.Set(id, seq, std::move(checksum));
  requests_.push_back(std::move(request));
  return Status::OK();
}

Result<storage::ObjectId> IngestWorkloadBuilder::Insert(
    size_t participant_idx, const storage::Value& value) {
  PROVDB_ASSIGN_OR_RETURN(storage::ObjectId id, tree_.Insert(value));
  PROVDB_ASSIGN_OR_RETURN(crypto::Digest hash, hasher_.HashSubtreeBasic(id));
  IngestRequest request;
  request.op = OperationType::kInsert;
  request.object = id;
  request.post_hash = hash;
  request.participant = &pki_->participant(participant_idx);
  PROVDB_RETURN_IF_ERROR(Apply(std::move(request)));
  tracked_.push_back(id);
  return id;
}

Result<storage::ObjectId> IngestWorkloadBuilder::AddBootstrapObject(
    const storage::Value& value) {
  return tree_.Insert(value);
}

Status IngestWorkloadBuilder::Update(storage::ObjectId id,
                                     size_t participant_idx,
                                     const storage::Value& value) {
  const bool first_record = !chains_.Get(id).exists;
  PROVDB_ASSIGN_OR_RETURN(crypto::Digest pre, hasher_.HashSubtreeBasic(id));
  PROVDB_RETURN_IF_ERROR(tree_.Update(id, value));
  PROVDB_ASSIGN_OR_RETURN(crypto::Digest post, hasher_.HashSubtreeBasic(id));
  IngestRequest request;
  request.op = OperationType::kUpdate;
  request.object = id;
  request.has_pre_hash = true;
  request.pre_hash = pre;
  request.post_hash = post;
  request.participant = &pki_->participant(participant_idx);
  PROVDB_RETURN_IF_ERROR(Apply(std::move(request)));
  if (first_record) {
    tracked_.push_back(id);
  }
  return Status::OK();
}

Result<storage::ObjectId> IngestWorkloadBuilder::Aggregate(
    const std::vector<storage::ObjectId>& inputs, size_t participant_idx,
    const storage::Value& root_value) {
  if (inputs.empty()) {
    return Status::InvalidArgument("aggregate requires at least one input");
  }
  std::vector<storage::ObjectId> sorted = inputs;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  IngestRequest request;
  request.op = OperationType::kAggregate;
  provenance::SeqId max_seq = 0;
  for (storage::ObjectId in : sorted) {
    PROVDB_RETURN_IF_ERROR(tree_.GetNode(in).status());
    PROVDB_ASSIGN_OR_RETURN(crypto::Digest h, hasher_.HashSubtreeBasic(in));
    request.inputs.push_back(ObjectState{in, h});
    provenance::LocalChainState::Tail tail = chains_.Get(in);
    request.input_prev_checksums.push_back(tail.checksum);
    if (tail.exists && tail.seq_id > max_seq) {
      max_seq = tail.seq_id;
    }
  }
  PROVDB_ASSIGN_OR_RETURN(storage::ObjectId out_id,
                          tree_.Aggregate(sorted, root_value));
  PROVDB_ASSIGN_OR_RETURN(crypto::Digest out_hash,
                          hasher_.HashSubtreeBasic(out_id));
  request.object = out_id;
  request.post_hash = out_hash;
  request.aggregate_seq = max_seq + 1;
  request.participant = &pki_->participant(participant_idx);
  PROVDB_RETURN_IF_ERROR(Apply(std::move(request)));
  tracked_.push_back(out_id);
  return out_id;
}

Status RandomDifferentialWorkload(IngestWorkloadBuilder* builder,
                                  uint64_t seed,
                                  const DifferentialWorkloadOptions& options) {
  Rng rng(seed);
  const size_t participants = TestPki::kNumParticipants;

  auto random_value = [&]() -> storage::Value {
    switch (rng.NextBelow(3)) {
      case 0:
        return storage::Value::Int(rng.NextInRange(-1000, 1000));
      case 1:
        return storage::Value::String(rng.NextString(1 + rng.NextBelow(12)));
      default: {
        Bytes blob;
        rng.NextBytes(&blob, 1 + rng.NextBelow(16));
        return storage::Value::Blob(std::move(blob));
      }
    }
  };

  // Objects eligible as update victims / aggregate inputs, in creation
  // order. A quadratically-skewed pick keeps early objects hot, so long
  // chains (and thus cross-batch chain continuation) actually occur.
  std::vector<storage::ObjectId> live;
  auto skewed_pick = [&]() -> storage::ObjectId {
    double d = rng.NextDouble();
    size_t idx = static_cast<size_t>(d * d * static_cast<double>(live.size()));
    if (idx >= live.size()) idx = live.size() - 1;
    return live[idx];
  };

  for (size_t i = 0; i < options.bootstrap_objects; ++i) {
    PROVDB_ASSIGN_OR_RETURN(storage::ObjectId id,
                            builder->AddBootstrapObject(random_value()));
    live.push_back(id);
  }

  for (size_t op = 0; op < options.num_ops; ++op) {
    const size_t p = rng.NextBelow(participants);
    const double r = rng.NextDouble();
    if (live.empty() || r < options.insert_weight) {
      PROVDB_ASSIGN_OR_RETURN(storage::ObjectId id,
                              builder->Insert(p, random_value()));
      live.push_back(id);
    } else if (live.size() < 2 ||
               r < options.insert_weight + options.update_weight) {
      PROVDB_RETURN_IF_ERROR(builder->Update(skewed_pick(), p,
                                             random_value()));
    } else {
      const size_t want = 2 + rng.NextBelow(3);
      std::vector<storage::ObjectId> inputs;
      for (size_t k = 0; k < want; ++k) {
        storage::ObjectId candidate = skewed_pick();
        // Only tracked inputs: aggregating an untracked object that is
        // updated later leaves an input state the verifier can never
        // resolve to a record (see IsTracked).
        if (builder->IsTracked(candidate)) {
          inputs.push_back(candidate);
        }
      }
      std::sort(inputs.begin(), inputs.end());
      inputs.erase(std::unique(inputs.begin(), inputs.end()), inputs.end());
      if (inputs.size() < 2) {
        // Degenerate pick; fall back to an update so aggregates stay
        // genuinely multi-input.
        PROVDB_RETURN_IF_ERROR(builder->Update(skewed_pick(), p,
                                               random_value()));
        continue;
      }
      PROVDB_ASSIGN_OR_RETURN(storage::ObjectId id,
                              builder->Aggregate(inputs, p, random_value()));
      live.push_back(id);
    }
  }
  return Status::OK();
}

Status WipeIngestRoot(storage::Env* env, const std::string& root) {
  auto entries = env->ListDir(root);
  if (!entries.ok()) return Status::OK();  // nothing there yet
  for (const std::string& entry : *entries) {
    if (entry.rfind("shard-", 0) != 0) continue;
    const std::string dir = root + "/" + entry;
    PROVDB_ASSIGN_OR_RETURN(std::vector<std::string> files,
                            env->ListDir(dir));
    for (const std::string& f : files) {
      PROVDB_RETURN_IF_ERROR(env->RemoveFile(dir + "/" + f));
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<provenance::IngestPipeline>> ReplayThroughPipeline(
    storage::Env* env, const std::string& root_dir,
    const std::vector<provenance::IngestRequest>& requests,
    provenance::IngestOptions options) {
  PROVDB_ASSIGN_OR_RETURN(
      std::unique_ptr<provenance::IngestPipeline> pipeline,
      provenance::IngestPipeline::Open(env, root_dir, options));
  for (size_t i = 0; i < requests.size(); ++i) {
    PROVDB_RETURN_IF_ERROR(pipeline->Submit(requests[i]));
  }
  PROVDB_RETURN_IF_ERROR(pipeline->Close());
  return pipeline;
}

}  // namespace provdb::testing
