#ifndef PROVDB_TESTS_TESTING_TEST_PKI_H_
#define PROVDB_TESTS_TESTING_TEST_PKI_H_

#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "crypto/pki.h"

namespace provdb::testing {

/// Shared PKI for tests: one CA plus a handful of participants with small
/// (512-bit) RSA keys, generated once per test binary from a fixed seed.
/// 512-bit keys keep test runtime low; production-size keys are covered by
/// the crypto tests and the benchmarks.
class TestPki {
 public:
  static constexpr size_t kNumParticipants = 4;
  static constexpr size_t kKeyBits = 512;

  static TestPki& Instance() {
    return InstanceFor(crypto::HashAlgorithm::kSha1);
  }

  /// PKI whose participants hash-then-sign with `alg` (a deployment uses
  /// one algorithm system-wide). Instances are cached per algorithm. Safe
  /// to call from concurrent test threads: the cache is mutex-guarded
  /// (first touch of an algorithm mutates the map, and tests drive this
  /// from thread-pool workers).
  static TestPki& InstanceFor(crypto::HashAlgorithm alg) {
    static std::mutex* mu = new std::mutex();
    static std::map<crypto::HashAlgorithm, TestPki*>* instances =
        new std::map<crypto::HashAlgorithm, TestPki*>();
    std::lock_guard<std::mutex> lock(*mu);
    auto it = instances->find(alg);
    if (it == instances->end()) {
      it = instances->emplace(alg, new TestPki(alg)).first;
    }
    return *it->second;
  }

  const crypto::CertificateAuthority& ca() const { return *ca_; }
  const crypto::ParticipantRegistry& registry() const { return *registry_; }

  /// Participant by index (1-based ids: participant(0) has id 1).
  const crypto::Participant& participant(size_t i) const {
    return *participants_.at(i);
  }

 private:
  explicit TestPki(crypto::HashAlgorithm alg) {
    Rng rng(0xC0FFEE);
    auto ca = crypto::CertificateAuthority::Create(kKeyBits, &rng);
    ca_ = std::make_unique<crypto::CertificateAuthority>(
        std::move(ca).value());
    registry_ =
        std::make_unique<crypto::ParticipantRegistry>(ca_->public_key());
    for (size_t i = 0; i < kNumParticipants; ++i) {
      auto p = crypto::Participant::Create(
          i + 1, "participant" + std::to_string(i + 1), kKeyBits, &rng, *ca_,
          alg);
      participants_.push_back(
          std::make_unique<crypto::Participant>(std::move(p).value()));
      Status registered =
          registry_->Register(participants_.back()->certificate());
      if (!registered.ok()) std::abort();  // fixed-seed setup cannot fail
    }
  }

  std::unique_ptr<crypto::CertificateAuthority> ca_;
  std::unique_ptr<crypto::ParticipantRegistry> registry_;
  std::vector<std::unique_ptr<crypto::Participant>> participants_;
};

}  // namespace provdb::testing

#endif  // PROVDB_TESTS_TESTING_TEST_PKI_H_
