#ifndef PROVDB_TESTS_TESTING_DIFFERENTIAL_H_
#define PROVDB_TESTS_TESTING_DIFFERENTIAL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "provenance/chain.h"
#include "provenance/checksum.h"
#include "provenance/ingest_pipeline.h"
#include "provenance/provenance_store.h"
#include "provenance/subtree_hasher.h"
#include "storage/env.h"
#include "storage/tree_store.h"
#include "storage/value.h"
#include "testing/test_pki.h"

namespace provdb::testing {

/// Differential-test harness: builds one workload twice — as a stream of
/// fully-resolved IngestRequests (to replay through the sharded
/// pipeline) and as a sequential reference ProvenanceStore built inline
/// through the same BuildSignedIngestRecord — so tests can assert the
/// two sides are bit-identical. RSA signing is deterministic, which is
/// what makes byte-level comparison possible at all.
///
/// The builder owns a real TreeStore and hashes real subtree state, so
/// the reference side is also auditable against the live tree.
class IngestWorkloadBuilder {
 public:
  explicit IngestWorkloadBuilder(
      crypto::HashAlgorithm alg = crypto::HashAlgorithm::kSha1);

  IngestWorkloadBuilder(const IngestWorkloadBuilder&) = delete;
  IngestWorkloadBuilder& operator=(const IngestWorkloadBuilder&) = delete;

  /// Tracked insert: new root-level object with a provenance record.
  Result<storage::ObjectId> Insert(size_t participant_idx,
                                   const storage::Value& value);

  /// Bootstrap data: an object placed in the tree with *no* provenance
  /// record — it predates collection; its first update starts the chain
  /// at seq 0 with an empty previous-checksum slot.
  Result<storage::ObjectId> AddBootstrapObject(const storage::Value& value);

  /// Tracked update of an existing object.
  Status Update(storage::ObjectId id, size_t participant_idx,
                const storage::Value& value);

  /// Tracked aggregation of ≥1 existing objects into a fresh compound
  /// object (inputs deduplicated and sorted into the global order).
  Result<storage::ObjectId> Aggregate(
      const std::vector<storage::ObjectId>& inputs, size_t participant_idx,
      const storage::Value& root_value);

  const std::vector<provenance::IngestRequest>& requests() const {
    return requests_;
  }
  const provenance::ProvenanceStore& reference_store() const {
    return reference_;
  }
  const storage::TreeStore& tree() const { return tree_; }
  const crypto::ParticipantRegistry& registry() const {
    return pki_->registry();
  }
  crypto::HashAlgorithm algorithm() const { return alg_; }
  /// Every object with at least one provenance record, in creation order.
  const std::vector<storage::ObjectId>& tracked_objects() const {
    return tracked_;
  }

  /// True once `id` has a chain. Aggregates must only consume tracked
  /// inputs: an aggregate over an untracked object whose chain starts
  /// *later* records an input state no record output ever matches, which
  /// the verifier rightly reports as unresolvable.
  bool IsTracked(storage::ObjectId id) const {
    return chains_.Get(id).exists;
  }

 private:
  /// Signs `request` against the reference chain tail, commits it to the
  /// reference store, and appends it to the request stream.
  Status Apply(provenance::IngestRequest request);

  crypto::HashAlgorithm alg_;
  TestPki* pki_;
  provenance::ChecksumEngine engine_;
  storage::TreeStore tree_;
  provenance::SubtreeHasher hasher_;
  provenance::LocalChainState chains_;
  provenance::ProvenanceStore reference_;
  std::vector<provenance::IngestRequest> requests_;
  std::vector<storage::ObjectId> tracked_;
};

/// Shape of the random workload.
struct DifferentialWorkloadOptions {
  size_t num_ops = 60;
  size_t bootstrap_objects = 3;
  double insert_weight = 0.40;
  double update_weight = 0.45;  // remainder is aggregate
};

/// Drives `num_ops` random operations (insert/update/aggregate mix with
/// skewed object popularity — early objects are hot) into `builder`,
/// reproducibly from `seed`. Log the seed on failure to replay.
Status RandomDifferentialWorkload(IngestWorkloadBuilder* builder,
                                  uint64_t seed,
                                  const DifferentialWorkloadOptions& options =
                                      DifferentialWorkloadOptions());

/// Removes every file under `root`'s shard-* subdirectories (leftovers
/// from a previous test-binary run would be recovered as live history).
/// The directories themselves may remain; an empty shard dir recovers to
/// an empty shard.
Status WipeIngestRoot(storage::Env* env, const std::string& root);

/// Replays a request stream through a fresh sharded pipeline rooted at
/// `root_dir` and closes it cleanly; the returned (closed) pipeline
/// exposes the resulting ShardedProvenanceStore for comparison.
Result<std::unique_ptr<provenance::IngestPipeline>> ReplayThroughPipeline(
    storage::Env* env, const std::string& root_dir,
    const std::vector<provenance::IngestRequest>& requests,
    provenance::IngestOptions options);

// ---------------------------------------------------------------------
// Concurrent-auditor mode (DESIGN.md §16): audit a *moving* pipeline.
// ---------------------------------------------------------------------

/// What the auditor side of RunConcurrentAuditDifferential observed.
struct ConcurrentAuditStats {
  /// Snapshots opened and fully validated while the writer was live.
  size_t snapshots_checked = 0;
  /// How many of them were non-empty (saw at least one durable batch).
  size_t nonempty_snapshots = 0;
  /// Distinct total record counts observed across cuts — > 1 proves the
  /// auditor actually raced a moving store rather than a finished one.
  size_t distinct_cuts = 0;
};

/// Asserts that `snapshot` is an *exact durable batch prefix* of the
/// builder's request stream: for every shard, the cut's record count
/// lies on a group-commit boundary (a multiple of `max_batch_records`,
/// or the shard's whole subsequence), its chains are byte-identical to
/// replaying exactly that prefix of the shard's requests, and the
/// verification report over the cut is byte-identical to the report a
/// quiesced store stopped at the same per-shard prefixes would produce
/// (cross-shard aggregate-input resolution included). Requires the
/// pipeline to be configured so only the record-count threshold can
/// fire (huge max_batch_bytes, no interval flush).
Status CheckSnapshotIsBatchPrefix(const provenance::StoreSnapshot& snapshot,
                                  const IngestWorkloadBuilder& builder,
                                  size_t max_batch_records);

/// The concurrent-auditor differential proper: replays the builder's
/// requests through a fresh pipeline at `root` on a ThreadPool writer
/// task while the calling thread continuously opens snapshots and runs
/// CheckSnapshotIsBatchPrefix on each. After the writer drains, the
/// final cut must equal the full workload. Fails on the first cut that
/// is not an exact durable batch prefix. Callers log their workload
/// seed so failures replay.
Result<ConcurrentAuditStats> RunConcurrentAuditDifferential(
    storage::Env* env, const std::string& root,
    const IngestWorkloadBuilder& builder, provenance::IngestOptions options);

}  // namespace provdb::testing

#endif  // PROVDB_TESTS_TESTING_DIFFERENTIAL_H_
