#include "workload/synthetic.h"

#include <gtest/gtest.h>

namespace provdb::workload {
namespace {

using storage::ObjectId;
using storage::TreeStore;

TEST(SyntheticTest, PaperTableSpecsMatchTable1a) {
  const auto& specs = PaperTableSpecs();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].num_attributes, 8);
  EXPECT_EQ(specs[0].num_rows, 4000);
  EXPECT_EQ(specs[1].num_attributes, 9);
  EXPECT_EQ(specs[1].num_rows, 3000);
  EXPECT_EQ(specs[2].num_attributes, 10);
  EXPECT_EQ(specs[2].num_rows, 2000);
  EXPECT_EQ(specs[3].num_attributes, 5);
  EXPECT_EQ(specs[3].num_rows, 5000);
}

TEST(SyntheticTest, NodeCountsMatchTable1b) {
  const auto& specs = PaperTableSpecs();
  // Cumulative combinations from Table 1(b). The paper prints 36002,
  // 66000, 88004, 118006; exact arithmetic gives 36002, 66003, 88004,
  // 118005 (the paper's 2nd and 4th entries carry small slips).
  EXPECT_EQ(ExpectedNodeCount({specs[0]}), 36002u);
  EXPECT_EQ(ExpectedNodeCount({specs[0], specs[1]}), 66003u);
  EXPECT_EQ(ExpectedNodeCount({specs[0], specs[1], specs[2]}), 88004u);
  EXPECT_EQ(ExpectedNodeCount(specs), 118005u);
}

TEST(SyntheticTest, BuiltDatabaseMatchesExpectedCounts) {
  Rng rng(1);
  TreeStore tree;
  auto layout = BuildSyntheticDatabase(
      &tree, {{3, 10}, {2, 5}}, &rng);
  ASSERT_TRUE(layout.ok());
  // 1 root + 2 tables + 15 rows + (30 + 10) cells.
  EXPECT_EQ(tree.size(), ExpectedNodeCount({{3, 10}, {2, 5}}));
  EXPECT_EQ(tree.size(), 58u);
  ASSERT_EQ(layout->tables.size(), 2u);
  EXPECT_EQ(layout->tables[0].rows.size(), 10u);
  EXPECT_EQ(layout->tables[1].rows.size(), 5u);
  EXPECT_EQ(layout->tables[0].num_attributes, 3);
}

TEST(SyntheticTest, DepthFourStructure) {
  Rng rng(2);
  TreeStore tree;
  auto layout = BuildSyntheticDatabase(&tree, {{2, 3}}, &rng);
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(*tree.DepthOf(layout->root), 0u);
  EXPECT_EQ(*tree.DepthOf(layout->tables[0].table_id), 1u);
  ObjectId row = layout->tables[0].rows[0];
  EXPECT_EQ(*tree.DepthOf(row), 2u);
  auto cell = CellIdOf(tree, row, 0);
  ASSERT_TRUE(cell.ok());
  EXPECT_EQ(*tree.DepthOf(*cell), 3u);
}

TEST(SyntheticTest, AllCellsAreIntegers) {
  Rng rng(3);
  TreeStore tree;
  auto layout = BuildSyntheticDatabase(&tree, {{4, 6}}, &rng);
  ASSERT_TRUE(layout.ok());
  for (ObjectId row : layout->tables[0].rows) {
    for (size_t c = 0; c < 4; ++c) {
      auto cell = CellIdOf(tree, row, c);
      ASSERT_TRUE(cell.ok());
      EXPECT_EQ((*tree.GetNode(*cell))->value.type(),
                storage::ValueType::kInt);
    }
  }
}

TEST(SyntheticTest, DeterministicGivenSeed) {
  TreeStore t1, t2;
  Rng rng1(42), rng2(42);
  BuildSyntheticDatabase(&t1, {{3, 4}}, &rng1).value();
  auto layout2 = BuildSyntheticDatabase(&t2, {{3, 4}}, &rng2);
  ASSERT_TRUE(layout2.ok());
  // Same seeds -> identical values at identical positions.
  for (ObjectId row : layout2->tables[0].rows) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_EQ((*t1.GetNode(*CellIdOf(t1, row, c)))->value,
                (*t2.GetNode(*CellIdOf(t2, row, c)))->value);
    }
  }
}

TEST(SyntheticTest, CellIdOfBoundsChecked) {
  Rng rng(4);
  TreeStore tree;
  auto layout = BuildSyntheticDatabase(&tree, {{2, 2}}, &rng);
  ObjectId row = layout->tables[0].rows[0];
  EXPECT_TRUE(CellIdOf(tree, row, 1).ok());
  EXPECT_FALSE(CellIdOf(tree, row, 2).ok());
  EXPECT_FALSE(CellIdOf(tree, 99999, 0).ok());
}

}  // namespace
}  // namespace provdb::workload
