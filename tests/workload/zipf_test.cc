// ZipfGenerator tests: range, determinism, and the skew shape (rank 0
// hottest, frequencies decaying with rank) that makes the server bench's
// hot chains hot.

#include "workload/zipf.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace provdb::workload {
namespace {

TEST(ZipfTest, DrawsStayInRange) {
  ZipfGenerator zipf(64, 0.99);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Next(&rng), 64u);
  }
}

TEST(ZipfTest, SingleKeyDomainAlwaysZero) {
  ZipfGenerator zipf(1, 0.99);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(zipf.Next(&rng), 0u);
  }
}

TEST(ZipfTest, DeterministicGivenSeed) {
  ZipfGenerator zipf(1000, 0.99);
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(zipf.Next(&a), zipf.Next(&b));
  }
}

TEST(ZipfTest, RankZeroIsHottestAndHeadDominates) {
  const uint64_t n = 100;
  ZipfGenerator zipf(n, 0.99);
  Rng rng(7);
  std::vector<uint64_t> counts(n, 0);
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) counts[zipf.Next(&rng)]++;

  // Rank 0 beats every other rank.
  for (uint64_t k = 1; k < n; ++k) {
    EXPECT_GT(counts[0], counts[k]) << "rank " << k;
  }
  // theta=0.99 over 100 keys: the top decile draws well over half the
  // traffic (analytically ~63%); assert a loose 50% floor.
  uint64_t head = 0;
  for (uint64_t k = 0; k < n / 10; ++k) head += counts[k];
  EXPECT_GT(head, static_cast<uint64_t>(kDraws) / 2);
  // And the tail is still reachable: no key starves entirely at 200k
  // draws over 100 keys.
  for (uint64_t k = 0; k < n; ++k) {
    EXPECT_GT(counts[k], 0u) << "rank " << k;
  }
}

TEST(ZipfTest, LowerThetaIsFlatter) {
  const uint64_t n = 100;
  ZipfGenerator skewed(n, 0.99);
  ZipfGenerator flatter(n, 0.5);
  Rng a(9), b(9);
  uint64_t skewed_head = 0, flatter_head = 0;
  for (int i = 0; i < 100000; ++i) {
    if (skewed.Next(&a) < n / 10) ++skewed_head;
    if (flatter.Next(&b) < n / 10) ++flatter_head;
  }
  EXPECT_GT(skewed_head, flatter_head);
}

}  // namespace
}  // namespace provdb::workload
