#include "workload/operations.h"

#include <gtest/gtest.h>

#include <set>

#include "provenance/verifier.h"
#include "testing/test_pki.h"

namespace provdb::workload {
namespace {

using provdb::testing::TestPki;
using provenance::TrackedDatabase;
using storage::ObjectId;

class OperationsTest : public ::testing::Test {
 protected:
  // A small synthetic table (4 attrs x 20 rows) inside a TrackedDatabase,
  // bootstrapped untracked like the paper's experiments.
  void SetUp() override {
    Rng rng(99);
    auto layout = BuildSyntheticDatabase(&db_.bootstrap_tree(),
                                         {{4, 20}}, &rng);
    ASSERT_TRUE(layout.ok());
    layout_ = *layout;
  }

  const crypto::Participant& participant() {
    return TestPki::Instance().participant(0);
  }

  TrackedDatabase db_;
  SyntheticLayout layout_;
};

TEST_F(OperationsTest, UpdateScriptTargetsDistinctCells) {
  Rng rng(1);
  auto script = MakeUpdateScript(layout_.tables[0], 12, 6, &rng);
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->ops.size(), 12u);
  std::set<std::pair<ObjectId, size_t>> cells;
  std::set<ObjectId> rows;
  for (const PrimitiveOp& op : script->ops) {
    EXPECT_EQ(op.kind, PrimitiveOp::Kind::kUpdateCell);
    EXPECT_TRUE(cells.insert({op.row, op.column}).second)
        << "duplicate cell target";
    rows.insert(op.row);
  }
  EXPECT_EQ(rows.size(), 6u);
}

TEST_F(OperationsTest, UpdateScriptValidatesParameters) {
  Rng rng(2);
  // More per-row updates than columns.
  EXPECT_FALSE(MakeUpdateScript(layout_.tables[0], 100, 2, &rng).ok());
  // More rows than the table has.
  EXPECT_FALSE(MakeUpdateScript(layout_.tables[0], 25, 25, &rng).ok());
  EXPECT_FALSE(MakeUpdateScript(layout_.tables[0], 0, 0, &rng).ok());
}

TEST_F(OperationsTest, DeleteScriptPicksDistinctRows) {
  Rng rng(3);
  auto script = MakeDeleteScript(layout_.tables[0], 5, &rng);
  ASSERT_TRUE(script.ok());
  std::set<ObjectId> rows;
  for (const PrimitiveOp& op : script->ops) {
    EXPECT_EQ(op.kind, PrimitiveOp::Kind::kDeleteRow);
    EXPECT_TRUE(rows.insert(op.row).second);
  }
  EXPECT_EQ(rows.size(), 5u);
  EXPECT_FALSE(MakeDeleteScript(layout_.tables[0], 21, &rng).ok());
}

TEST_F(OperationsTest, MixedScriptDisjointTargetsAndShuffled) {
  Rng rng(4);
  auto script = MakeMixedScript(layout_.tables[0], 4, 3, 5, &rng);
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->ops.size(), 12u);
  std::set<ObjectId> deleted, updated;
  size_t inserts = 0;
  for (const PrimitiveOp& op : script->ops) {
    switch (op.kind) {
      case PrimitiveOp::Kind::kDeleteRow:
        deleted.insert(op.row);
        break;
      case PrimitiveOp::Kind::kUpdateCell:
        updated.insert(op.row);
        break;
      case PrimitiveOp::Kind::kInsertRow:
        ++inserts;
        break;
    }
  }
  EXPECT_EQ(deleted.size(), 4u);
  EXPECT_EQ(inserts, 3u);
  for (ObjectId row : updated) {
    EXPECT_EQ(deleted.count(row), 0u) << "update targets a deleted row";
  }
}

TEST_F(OperationsTest, MixedScriptRejectsOverlappingDemand) {
  Rng rng(5);
  EXPECT_FALSE(MakeMixedScript(layout_.tables[0], 15, 0, 10, &rng).ok());
}

TEST_F(OperationsTest, ExecuteUpdateScriptRecordCount) {
  Rng rng(6);
  auto script = MakeUpdateScript(layout_.tables[0], 8, 4, &rng);
  ASSERT_TRUE(script.ok());
  ASSERT_TRUE(
      ExecuteAsComplexOperation(&db_, participant(), *script, &rng).ok());
  // 8 cells + 4 rows + table + root.
  EXPECT_EQ(db_.last_op_metrics().checksums, 14u);
}

TEST_F(OperationsTest, ExecuteDeleteScriptRecordCount) {
  Rng rng(7);
  auto script = MakeDeleteScript(layout_.tables[0], 3, &rng);
  ASSERT_TRUE(script.ok());
  size_t nodes_before = db_.tree().size();
  ASSERT_TRUE(
      ExecuteAsComplexOperation(&db_, participant(), *script, &rng).ok());
  // Rows and their cells are gone; only table + root survive as touched.
  EXPECT_EQ(db_.last_op_metrics().checksums, 2u);
  EXPECT_EQ(db_.tree().size(), nodes_before - 3 * 5);  // 3 rows x (1+4)
}

TEST_F(OperationsTest, ExecuteInsertScriptRecordCount) {
  Rng rng(8);
  auto script = MakeInsertScript(layout_.tables[0], 2, &rng);
  ASSERT_TRUE(script.ok());
  ASSERT_TRUE(
      ExecuteAsComplexOperation(&db_, participant(), *script, &rng).ok());
  // 2 rows + 8 cells inserted, + table + root inherited.
  EXPECT_EQ(db_.last_op_metrics().checksums, 12u);
  EXPECT_EQ(db_.tree().size(), ExpectedNodeCount({{4, 20}}) + 2 * 5);
}

TEST_F(OperationsTest, ExecutedScriptsProduceVerifiableProvenance) {
  Rng rng(9);
  auto script = MakeMixedScript(layout_.tables[0], 2, 2, 4, &rng);
  ASSERT_TRUE(script.ok());
  ASSERT_TRUE(
      ExecuteAsComplexOperation(&db_, participant(), *script, &rng).ok());

  auto bundle = db_.ExportForRecipient(layout_.root);
  ASSERT_TRUE(bundle.ok());
  provenance::ProvenanceVerifier verifier(&TestPki::Instance().registry());
  auto report = verifier.Verify(*bundle);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(OperationsTest, SequentialComplexOperationsCompose) {
  Rng rng(10);
  for (int round = 0; round < 3; ++round) {
    auto script = MakeUpdateScript(layout_.tables[0], 4, 4, &rng);
    ASSERT_TRUE(script.ok());
    ASSERT_TRUE(
        ExecuteAsComplexOperation(&db_, participant(), *script, &rng).ok());
  }
  auto bundle = db_.ExportForRecipient(layout_.root);
  ASSERT_TRUE(bundle.ok());
  provenance::ProvenanceVerifier verifier(&TestPki::Instance().registry());
  EXPECT_TRUE(verifier.Verify(*bundle).ok());
  // Root chain advanced once per complex operation.
  EXPECT_EQ(db_.provenance().ChainOf(layout_.root).size(), 3u);
}

TEST_F(OperationsTest, PaperSetupCMixesSumTo500) {
  for (const MixSpec& mix : PaperSetupCMixes()) {
    EXPECT_EQ(mix.deletes + mix.inserts + mix.updates, 500u);
  }
  ASSERT_EQ(PaperSetupCMixes().size(), 4u);
  // Delete share strictly increases across the four mixes (Fig. 10's
  // x-axis ordering).
  const auto& mixes = PaperSetupCMixes();
  for (size_t i = 1; i < mixes.size(); ++i) {
    EXPECT_GT(mixes[i].deletes, mixes[i - 1].deletes);
  }
}

}  // namespace
}  // namespace provdb::workload
