// Load generator against a live server: every request accepted when the
// server is unconstrained, chains perfectly linked afterward (the
// generator's one-in-flight-per-object discipline), and graceful
// accounting — accepted + shed + failed always equals sent — when
// admission control sheds. Suite named Server* so the TSan stage covers
// the full client/driver/poll/executor thread soup.

#include "workload/load_generator.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "net/server.h"
#include "provenance/ingest_pipeline.h"
#include "storage/env.h"
#include "testing/test_pki.h"

namespace provdb::workload {
namespace {

using provdb::testing::TestPki;
using provenance::IngestOptions;
using provenance::IngestPipeline;
using storage::Env;

std::string FreshDir(const std::string& tag) {
  std::string root = ::testing::TempDir() + "/provdb_loadgen_" + tag;
  auto shards = Env::Default()->ListDir(root);
  if (shards.ok()) {
    for (const std::string& shard : *shards) {
      auto files = Env::Default()->ListDir(root + "/" + shard);
      if (!files.ok()) continue;
      for (const std::string& f : *files) {
        EXPECT_TRUE(
            Env::Default()->RemoveFile(root + "/" + shard + "/" + f).ok());
      }
    }
  }
  return root;
}

struct Harness {
  std::unique_ptr<IngestPipeline> pipeline;
  std::unique_ptr<net::ProvenanceServer> server;
};

Harness StartHarness(const std::string& tag,
                     net::ServerOptions options = net::ServerOptions()) {
  Harness harness;
  IngestOptions ingest;
  ingest.num_shards = 2;
  auto pipeline = IngestPipeline::Open(Env::Default(), FreshDir(tag), ingest);
  EXPECT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  harness.pipeline = std::move(pipeline).value();

  std::map<crypto::ParticipantId, const crypto::Participant*> participants;
  for (size_t i = 0; i < TestPki::kNumParticipants; ++i) {
    const auto& p = TestPki::Instance().participant(i);
    participants[p.certificate().participant_id] = &p;
  }
  auto server = net::ProvenanceServer::Start(
      harness.pipeline.get(), &TestPki::Instance().registry(), participants,
      options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  harness.server = std::move(server).value();
  return harness;
}

LoadOptions BaseOptions(const Harness& harness) {
  LoadOptions options;
  options.port = harness.server->port();
  for (size_t i = 0; i < TestPki::kNumParticipants; ++i) {
    options.participant_ids.push_back(
        TestPki::Instance().participant(i).certificate().participant_id);
  }
  return options;
}

TEST(ServerLoadGeneratorTest, UnconstrainedRunAcceptsEverythingVerified) {
  Harness harness = StartHarness("clean");
  LoadOptions options = BaseOptions(harness);
  options.num_clients = 4;
  options.num_driver_threads = 2;
  options.requests_per_client = 48;
  options.objects_per_client = 8;
  options.pipeline_depth = 8;

  auto report = RunLoad(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->requests_sent, 4u * 48u);
  EXPECT_EQ(report->accepted, report->requests_sent);
  EXPECT_EQ(report->shed, 0u);
  EXPECT_EQ(report->failed, 0u);
  EXPECT_GT(report->records_per_second, 0.0);

  harness.server->Stop();
  harness.server.reset();
  ASSERT_TRUE(harness.pipeline->Drain().ok());
  EXPECT_EQ(harness.pipeline->store().record_count(), report->accepted);
  // The generator's chain discipline must yield fully-linked,
  // signature-valid chains — the same gate the throughput bench enforces.
  auto verification = harness.pipeline->store().VerifyChains(
      TestPki::Instance().registry());
  EXPECT_TRUE(verification.ok());
  EXPECT_EQ(verification.records_checked, report->accepted);
}

TEST(ServerLoadGeneratorTest, ShedRequestsAccountedAndChainsStayLinked) {
  net::ServerOptions server_options;
  // Pending cap 1: any poll-loop read that parses two frames back-to-back
  // sheds the second. The executor fsyncs per batch (hundreds of µs)
  // while the client writes its whole window in microseconds, so a
  // 16-deep window sheds with near-certainty on every batch.
  server_options.max_pending_per_connection = 1;
  Harness harness = StartHarness("shed", server_options);
  LoadOptions options = BaseOptions(harness);
  options.num_clients = 2;
  options.num_driver_threads = 2;
  options.requests_per_client = 64;
  options.objects_per_client = 32;
  options.pipeline_depth = 16;

  auto report = RunLoad(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->requests_sent, 2u * 64u);
  EXPECT_EQ(report->accepted + report->shed + report->failed,
            report->requests_sent);
  EXPECT_EQ(report->failed, 0u);
  EXPECT_GT(report->shed, 0u);
  EXPECT_GT(report->accepted, 0u);

  harness.server->Stop();
  harness.server.reset();
  ASSERT_TRUE(harness.pipeline->Drain().ok());
  EXPECT_EQ(harness.pipeline->store().record_count(), report->accepted);
  auto verification = harness.pipeline->store().VerifyChains(
      TestPki::Instance().registry());
  EXPECT_TRUE(verification.ok());
  EXPECT_EQ(verification.records_checked, report->accepted);
}

TEST(ServerLoadGeneratorTest, DisjointObjectSlicesNeverCollide) {
  Harness harness = StartHarness("slices");
  LoadOptions options = BaseOptions(harness);
  options.num_clients = 3;
  options.requests_per_client = 24;
  options.objects_per_client = 4;
  options.first_object = 100;

  auto report = RunLoad(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Striped slices mean no client ever races another for a chain, so
  // nothing can fail with kFailedPrecondition.
  EXPECT_EQ(report->failed, 0u);
  EXPECT_EQ(report->accepted, report->requests_sent);

  harness.server->Stop();
  harness.server.reset();
  ASSERT_TRUE(harness.pipeline->Drain().ok());
  // Every chain's object id lies inside some client's stripe.
  for (const auto& [object, chain] : harness.pipeline->store().AllChains()) {
    EXPECT_GE(object, options.first_object);
    EXPECT_LT(object, options.first_object +
                          options.num_clients * options.objects_per_client);
  }
}

TEST(ServerLoadGeneratorTest, InvalidOptionsRejected) {
  LoadOptions options;
  options.participant_ids = {1};
  options.num_clients = 0;
  EXPECT_FALSE(RunLoad(options).ok());
  options.num_clients = 1;
  options.objects_per_client = 0;
  EXPECT_FALSE(RunLoad(options).ok());
  options.objects_per_client = 1;
  options.participant_ids.clear();
  EXPECT_FALSE(RunLoad(options).ok());
}

}  // namespace
}  // namespace provdb::workload
