// Curated scientific database example: transactional *complex operations*
// (§4.4), Basic vs Economical hashing metrics (§4.3), and durable
// provenance — saving the record store with its checksums to disk,
// reloading it, and verifying after the round trip.
//
// Models a small curated genome-annotation table maintained by two
// curators over several editing sessions, the usage pattern §4.4's
// transactional-storage idea comes from (Buneman et al.).

#include <cstdio>

#include "common/rng.h"
#include "crypto/pki.h"
#include "example_util.h"
#include "provenance/tracked_database.h"
#include "provenance/verifier.h"
#include "storage/record_log.h"

using namespace provdb;

int main() {
  provdb::examples::InitObservability();
  std::printf("curated database — complex operations & durable provenance\n");
  std::printf("===========================================================\n\n");

  Rng rng(1859);
  auto ca = crypto::CertificateAuthority::Create(1024, &rng).value();
  auto ada = crypto::Participant::Create(1, "curator ada", 1024, &rng, ca)
                 .value();
  auto grace = crypto::Participant::Create(2, "curator grace", 1024, &rng, ca)
                   .value();
  crypto::ParticipantRegistry registry(ca.public_key());
  examples::OrDie(registry.Register(ada.certificate()));
  examples::OrDie(registry.Register(grace.certificate()));

  provenance::TrackedDatabase db;

  // Session 1 (ada): create the annotation table with three gene rows.
  // One complex operation = one editing session; each surviving object
  // gets exactly one record documenting its session-wide before/after.
  examples::OrDie(db.BeginComplexOperation(ada));
  auto root = db.Insert(ada, storage::Value::String("genome-annotations"))
                  .value();
  std::vector<storage::ObjectId> genes;
  const char* names[] = {"BRCA2", "TP53", "EGFR"};
  for (const char* name : names) {
    auto gene = db.Insert(ada, storage::Value::String(name), root).value();
    db.Insert(ada, storage::Value::String("protein_coding"), gene).value();
    db.Insert(ada, storage::Value::Int(0), gene).value();  // review count
    genes.push_back(gene);
  }
  examples::OrDie(db.EndComplexOperation());
  std::printf("session 1 (ada):   created %zu genes  -> %llu records, "
              "%.1f ms (%.1f ms signing)\n",
              genes.size(),
              static_cast<unsigned long long>(db.last_op_metrics().checksums),
              db.last_op_metrics().total_seconds() * 1e3,
              db.last_op_metrics().sign_seconds * 1e3);

  // Session 2 (grace): review pass — bump review counts, fix a biotype.
  examples::OrDie(db.BeginComplexOperation(grace));
  for (storage::ObjectId gene : genes) {
    const storage::TreeNode* node = db.tree().GetNode(gene).value();
    storage::ObjectId review_cell = node->children[1];
    examples::OrDie(db.Update(grace, review_cell, storage::Value::Int(1)));
  }
  {
    const storage::TreeNode* tp53 = db.tree().GetNode(genes[1]).value();
    examples::OrDie(db.Update(grace, tp53->children[0],
                              storage::Value::String("tumor_suppressor")));
  }
  examples::OrDie(db.EndComplexOperation());
  std::printf("session 2 (grace): review pass        -> %llu records, "
              "%.1f ms\n",
              static_cast<unsigned long long>(db.last_op_metrics().checksums),
              db.last_op_metrics().total_seconds() * 1e3);

  // Session 3 (ada): retire EGFR (delete its cells, then the row).
  examples::OrDie(db.BeginComplexOperation(ada));
  {
    const storage::TreeNode* egfr = db.tree().GetNode(genes[2]).value();
    std::vector<storage::ObjectId> cells = egfr->children;
    for (storage::ObjectId cell : cells) {
      examples::OrDie(db.Delete(ada, cell));
    }
    examples::OrDie(db.Delete(ada, genes[2]));
  }
  examples::OrDie(db.EndComplexOperation());
  std::printf("session 3 (ada):   retired EGFR       -> %llu records "
              "(deletes are cheap: no records for deleted objects)\n\n",
              static_cast<unsigned long long>(db.last_op_metrics().checksums));

  // --- Durable provenance -------------------------------------------------
  // The provenance database persists as a CRC-framed record log.
  const std::string log_path = "/tmp/provdb_curated_example.log";
  storage::RecordLog log;
  examples::OrDie(db.provenance().SaveToLog(&log));
  examples::OrDie(log.SaveToFile(log_path));
  std::printf("persisted %llu provenance records (%llu bytes framed) "
              "to %s\n",
              static_cast<unsigned long long>(log.record_count()),
              static_cast<unsigned long long>(log.total_frame_bytes()),
              log_path.c_str());

  auto reloaded_log = storage::RecordLog::LoadFromFile(log_path).value();
  auto reloaded = provenance::ProvenanceStore::LoadFromLog(reloaded_log)
                      .value();
  std::printf("reloaded store: %llu records, paper-schema footprint "
              "%.1f KB\n\n",
              static_cast<unsigned long long>(reloaded.record_count()),
              reloaded.PaperSchemaBytes() / 1024.0);

  // Verify the live database state against the *reloaded* records.
  provenance::RecipientBundle bundle;
  bundle.subject = root;
  bundle.data =
      provenance::SubtreeSnapshot::Capture(db.tree(), root).value();
  bundle.records = reloaded.ExtractProvenance(root).value();

  provenance::ProvenanceVerifier verifier(&registry);
  auto report = verifier.Verify(bundle);
  std::printf("verification after disk round trip: %s\n",
              report.ToString().c_str());

  // Per-gene provenance survives too: BRCA2's own chain.
  auto brca2_chain = reloaded.ChainOf(genes[0]);
  std::printf("BRCA2's own chain has %zu records (insert + one per "
              "session that touched it)\n",
              brca2_chain.size());

  std::remove(log_path.c_str());
  return report.ok() ? 0 : 1;
}
