// Guided tour of the threat model (§2.2): runs one attack per security
// requirement R1–R8 against a shared honest history and shows the
// verifier catching each. Mirrors tests/provenance/attack_test.cc in
// runnable, narrated form.

#include <cstdio>
#include <functional>

#include "common/rng.h"
#include "crypto/pki.h"
#include "example_util.h"
#include "provenance/attack.h"
#include "provenance/tracked_database.h"
#include "provenance/verifier.h"

using namespace provdb;
using provenance::RecipientBundle;

namespace {

struct Scenario {
  const char* requirement;
  const char* description;
  std::function<void(RecipientBundle*)> attack;
};

size_t IndexAtSeq(const RecipientBundle& bundle, provenance::SeqId seq) {
  for (size_t i = 0; i < bundle.records.size(); ++i) {
    if (bundle.records[i].seq_id == seq) return i;
  }
  return 0;
}

}  // namespace

int main() {
  provdb::examples::InitObservability();
  std::printf("tamper detection tour — requirements R1..R8 (§2.2)\n");
  std::printf("===================================================\n\n");

  Rng rng(8);
  auto ca = crypto::CertificateAuthority::Create(1024, &rng).value();
  auto victim = crypto::Participant::Create(1, "victim", 1024, &rng, ca).value();
  auto attacker =
      crypto::Participant::Create(2, "attacker", 1024, &rng, ca).value();
  crypto::ParticipantRegistry registry(ca.public_key());
  examples::OrDie(registry.Register(victim.certificate()));
  examples::OrDie(registry.Register(attacker.certificate()));

  // Honest history: victim inserts and twice updates object A; the
  // attacker (a legitimate participant!) appends one more honest update.
  provenance::TrackedDatabase db;
  auto a = db.Insert(victim, storage::Value::String("v1")).value();
  examples::OrDie(db.Update(victim, a, storage::Value::String("v2")));
  examples::OrDie(db.Update(attacker, a, storage::Value::String("v3")));
  examples::OrDie(db.Update(victim, a, storage::Value::String("v4")));
  RecipientBundle honest = db.ExportForRecipient(a).value();

  provenance::ProvenanceVerifier verifier(&registry);
  std::printf("honest bundle: %s\n\n",
              verifier.Verify(honest).ToString().c_str());

  provenance::ChecksumEngine engine;
  const Scenario scenarios[] = {
      {"R1", "modify another participant's recorded output value",
       [&](RecipientBundle* b) {
         examples::OrDie(
             provenance::attacks::TamperRecordOutputHash(b, IndexAtSeq(*b, 1)));
       }},
      {"R2", "remove the victim's record at seq 1 (and renumber)",
       [&](RecipientBundle* b) {
         examples::OrDie(
             provenance::attacks::RemoveRecordAndRenumber(b, IndexAtSeq(*b, 1)));
       }},
      {"R3", "splice a forged (attacker-signed) record into the chain",
       [&](RecipientBundle* b) {
         crypto::Digest pre = b->records[IndexAtSeq(*b, 0)].output.state_hash;
         Bytes fake(20, 0x5A);
         examples::OrDie(provenance::attacks::InsertForgedRecord(
             b, attacker, engine, a, 1, pre, crypto::Digest::FromBytes(fake)));
       }},
      {"R4", "modify the shipped data without submitting provenance",
       [&](RecipientBundle* b) {
         examples::OrDie(provenance::attacks::TamperDataValue(
             b, a, storage::Value::String("doctored")));
       }},
      {"R5", "re-attribute the provenance to a different data object",
       [&](RecipientBundle* b) {
         examples::OrDie(provenance::attacks::RenameDataObject(b, 777));
       }},
      {"R6", "colluders insert a record framed as the victim's",
       [&](RecipientBundle* b) {
         crypto::Digest pre = b->records[IndexAtSeq(*b, 0)].output.state_hash;
         Bytes fake(20, 0x77);
         examples::OrDie(provenance::attacks::InsertForgedRecord(
             b, attacker, engine, a, 1, pre, crypto::Digest::FromBytes(fake)));
         examples::OrDie(provenance::attacks::ReassignRecordParticipant(
             b, b->records.size() - 1, victim.id()));
       }},
      {"R7", "colluders excise the victim's record between their own",
       [&](RecipientBundle* b) {
         // seq 2 (attacker) and the ends collude; remove victim's seq 1.
         examples::OrDie(
             provenance::attacks::RemoveRecordAndRenumber(b, IndexAtSeq(*b, 1)));
       }},
      {"R8", "victim tries to repudiate: reassign own record to attacker",
       [&](RecipientBundle* b) {
         examples::OrDie(provenance::attacks::ReassignRecordParticipant(
             b, IndexAtSeq(*b, 1), attacker.id()));
       }},
  };

  int detected = 0;
  for (const Scenario& scenario : scenarios) {
    RecipientBundle tampered = honest;
    scenario.attack(&tampered);
    auto report = verifier.Verify(tampered);
    bool caught = !report.ok();
    detected += caught ? 1 : 0;
    std::printf("[%s] %-58s %s\n", scenario.requirement,
                scenario.description, caught ? "DETECTED" : "MISSED (!)");
    if (caught) {
      std::printf("     first issue: %s\n",
                  report.issues.front().ToString().c_str());
    }
  }

  std::printf("\n%d of %zu attacks detected.\n", detected,
              std::size(scenarios));
  return detected == static_cast<int>(std::size(scenarios)) ? 0 : 1;
}
