// The paper's motivating scenario (Example 1, Figure 1): pharmaceutical
// company TrustUsRx submits clinical-trial results to the FDA. Patient
// data is a *compound object* whose cells have different provenance:
//
//   * PCP Paul collected Age and Weight,
//   * the Perfect Saints Clinic produced Endocrine measurements,
//   * PCP Pamela later amended the Endocrine value for patient #4555,
//   * GoodStewards Labs determined White_Count from blood samples,
//   * TrustUsRx aggregated all patient data into the submission.
//
// The FDA (data recipient) verifies the provenance — and catches
// TrustUsRx when it tries to erase Pamela's amendment.

#include <cstdio>

#include "common/rng.h"
#include "crypto/pki.h"
#include "example_util.h"
#include "provenance/attack.h"
#include "provenance/tracked_database.h"
#include "provenance/verifier.h"

using namespace provdb;

namespace {

struct Patient {
  int64_t id;
  int64_t age;
  double weight;
  double endocrine;
  int64_t white_count;
};

}  // namespace

int main() {
  provdb::examples::InitObservability();
  std::printf("TrustUsRx clinical trial — tamper-evident provenance demo\n");
  std::printf("==========================================================\n\n");

  // One certificate authority; four certified participants.
  Rng rng(4555);
  auto ca = crypto::CertificateAuthority::Create(1024, &rng).value();
  auto paul = crypto::Participant::Create(1, "PCP Paul", 1024, &rng, ca).value();
  auto clinic =
      crypto::Participant::Create(2, "Perfect Saints Clinic", 1024, &rng, ca)
          .value();
  auto pamela =
      crypto::Participant::Create(3, "PCP Pamela", 1024, &rng, ca).value();
  auto lab = crypto::Participant::Create(4, "GoodStewards Labs", 1024, &rng, ca)
                 .value();
  auto trustusrx =
      crypto::Participant::Create(5, "TrustUsRx", 1024, &rng, ca).value();

  crypto::ParticipantRegistry fda_registry(ca.public_key());
  for (const auto* p : {&paul, &clinic, &pamela, &lab, &trustusrx}) {
    examples::OrDie(fda_registry.Register(p->certificate()));
  }

  // --- Data collection, cell by cell, each by its true author ----------
  provenance::TrackedDatabase db;
  const Patient patients[] = {
      {4553, 34, 71.2, 1.8, 6100},
      {4554, 58, 84.9, 2.4, 7300},
      {4555, 47, 66.0, 9.9, 5400},  // endocrine later amended by Pamela
  };

  std::vector<storage::ObjectId> patient_rows;
  storage::ObjectId patient_4555_endocrine = storage::kInvalidObjectId;
  for (const Patient& patient : patients) {
    // Each patient record is a small compound object rooted at a row.
    auto row = db.Insert(paul, storage::Value::Int(patient.id)).value();
    db.Insert(paul, storage::Value::Int(patient.age), row).value();
    db.Insert(paul, storage::Value::Double(patient.weight), row).value();
    auto endocrine =
        db.Insert(clinic, storage::Value::Double(patient.endocrine), row)
            .value();
    db.Insert(lab, storage::Value::Int(patient.white_count), row).value();
    if (patient.id == 4555) {
      patient_4555_endocrine = endocrine;
    }
    patient_rows.push_back(row);
  }
  std::printf("collected %zu patient records "
              "(age/weight by Paul, endocrine by the clinic, WBC by the lab)\n",
              patient_rows.size());

  // Pamela amends the endocrine value for patient #4555 (Fig. 1). The
  // update also generates an inherited record for the patient row.
  examples::OrDie(
      db.Update(pamela, patient_4555_endocrine, storage::Value::Double(2.1)));
  std::printf("PCP Pamela amended patient #4555's endocrine value "
              "(9.9 -> 2.1)\n");

  // TrustUsRx aggregates the patient records into the FDA submission.
  auto submission =
      db.Aggregate(trustusrx, patient_rows,
                   storage::Value::String("trial-results-v1")).value();
  std::printf("TrustUsRx aggregated the trial submission (object %llu)\n\n",
              static_cast<unsigned long long>(submission));

  // --- The FDA receives and verifies ------------------------------------
  provenance::RecipientBundle bundle =
      db.ExportForRecipient(submission).value();
  provenance::ProvenanceVerifier fda(&fda_registry);

  auto report = fda.Verify(bundle);
  std::printf("FDA verification: %s\n", report.ToString().c_str());

  // The FDA can read the fine-grained history: who touched what.
  std::printf("\nprovenance of the submission (%zu records):\n",
              bundle.records.size());
  std::map<crypto::ParticipantId, std::pair<std::string, int>> by_participant;
  by_participant[1] = {"PCP Paul", 0};
  by_participant[2] = {"Perfect Saints Clinic", 0};
  by_participant[3] = {"PCP Pamela", 0};
  by_participant[4] = {"GoodStewards Labs", 0};
  by_participant[5] = {"TrustUsRx", 0};
  for (const auto& rec : bundle.records) {
    ++by_participant[rec.participant].second;
  }
  for (const auto& [id, entry] : by_participant) {
    std::printf("  %-24s signed %d record(s)\n", entry.first.c_str(),
                entry.second);
  }

  // --- TrustUsRx tries to falsify history --------------------------------
  // Scrubbing Pamela's amendment would make the trial data look untouched.
  std::printf("\nTrustUsRx attempts to remove Pamela's amendment...\n");
  provenance::RecipientBundle doctored = bundle;
  // The submission's provenance DAG contains Pamela's record for the
  // patient row (the cell update was inherited upward, §4.2); that is the
  // trace TrustUsRx must scrub.
  size_t pamela_record = doctored.records.size();
  for (size_t i = 0; i < doctored.records.size(); ++i) {
    if (doctored.records[i].participant == pamela.id()) {
      pamela_record = i;
      break;
    }
  }
  if (pamela_record == doctored.records.size()) {
    std::printf("internal error: Pamela's record not found\n");
    return 1;
  }
  examples::OrDie(
      provenance::attacks::RemoveRecordAndRenumber(&doctored, pamela_record));
  auto caught = fda.Verify(doctored);
  std::printf("FDA verification of the doctored submission: %s\n",
              caught.ok() ? "PASSED (!!)" : "REJECTED");
  for (const auto& issue : caught.issues) {
    std::printf("  - %s\n", issue.ToString().c_str());
  }

  std::printf("\nconclusion: the checksum chain pinned Pamela's amendment "
              "into the history;\nits removal is cryptographically "
              "detectable (requirements R2/R7).\n");
  return report.ok() && !caught.ok() ? 0 : 1;
}
