#ifndef PROVDB_EXAMPLES_EXAMPLE_UTIL_H_
#define PROVDB_EXAMPLES_EXAMPLE_UTIL_H_

#include <cstdio>
#include <cstdlib>

#include "common/status.h"
#include "observability/trace.h"

namespace provdb::examples {

/// First line of every example's main: honours PROVDB_TRACE so any
/// example can stream JSONL operation spans (docs/OBSERVABILITY.md).
inline void InitObservability() { observability::InitTraceFromEnv(); }

/// Aborts the example with a message when `s` is not OK. Examples favour
/// linear narration over error plumbing, but an ignored Status would be
/// exactly the anti-pattern the library's [[nodiscard]] sweep exists to
/// prevent — so failures stop the program instead of being dropped.
inline void OrDie(const Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "fatal: %s\n", s.ToString().c_str());
    std::abort();
  }
}

}  // namespace provdb::examples

#endif  // PROVDB_EXAMPLES_EXAMPLE_UTIL_H_
