// Fine-grained audit: combines provenance verification with Merkle
// inclusion proofs and lineage queries.
//
// Scenario: a data owner maintains a tracked table. An auditor verifies
// the table's provenance once, which gives them a *trusted root digest*
// (the output state of the newest signed record). From then on, the owner
// can answer point queries — "what is row 2, column 1?" — with the value
// plus an inclusion proof against that digest: the auditor checks single
// cells without re-downloading or re-hashing the whole table, and without
// trusting the owner.

#include <cstdio>

#include "common/rng.h"
#include "crypto/pki.h"
#include "example_util.h"
#include "provenance/merkle_proof.h"
#include "provenance/query.h"
#include "provenance/tracked_database.h"
#include "provenance/verifier.h"

using namespace provdb;

int main() {
  provdb::examples::InitObservability();
  std::printf("fine-grained audit — inclusion proofs over verified "
              "provenance\n");
  std::printf("============================================================"
              "\n\n");

  Rng rng(31337);
  auto ca = crypto::CertificateAuthority::Create(1024, &rng).value();
  auto owner = crypto::Participant::Create(1, "owner", 1024, &rng, ca).value();
  auto curator =
      crypto::Participant::Create(2, "curator", 1024, &rng, ca).value();
  crypto::ParticipantRegistry registry(ca.public_key());
  examples::OrDie(registry.Register(owner.certificate()));
  examples::OrDie(registry.Register(curator.certificate()));

  // The owner builds a tracked 4x3 table.
  provenance::TrackedDatabase db;
  auto table = db.Insert(owner, storage::Value::String("measurements"))
                   .value();
  std::vector<storage::ObjectId> rows;
  for (int r = 0; r < 4; ++r) {
    auto row = db.Insert(owner, storage::Value::Int(r), table).value();
    for (int c = 0; c < 3; ++c) {
      db.Insert(owner, storage::Value::Int(100 * r + c), row).value();
    }
    rows.push_back(row);
  }
  // The curator corrects one reading.
  storage::ObjectId target_cell =
      db.tree().GetNode(rows[2]).value()->children[1];
  examples::OrDie(db.Update(curator, target_cell, storage::Value::Int(999)));

  // --- One-time verification gives the auditor a trusted digest --------
  auto bundle = db.ExportForRecipient(table).value();
  provenance::ProvenanceVerifier verifier(&registry);
  auto report = verifier.Verify(bundle);
  std::printf("auditor verified the table's provenance: %s\n",
              report.ToString().c_str());
  if (!report.ok()) return 1;

  // The trusted digest is the output state of the newest verified record.
  crypto::Digest trusted_root;
  provenance::SeqId best = 0;
  for (const auto& rec : bundle.records) {
    if (rec.output.object_id == table && rec.seq_id >= best) {
      best = rec.seq_id;
      trusted_root = rec.output.state_hash;
    }
  }
  std::printf("trusted table digest: %s...\n\n",
              trusted_root.ToHex().substr(0, 16).c_str());

  // --- Point queries with inclusion proofs ------------------------------
  auto proof = provenance::BuildInclusionProof(
                   db.tree(), target_cell, table, crypto::HashAlgorithm::kSha1)
                   .value();
  Bytes wire = proof.Serialize();
  std::printf("owner answers 'row 2, col 1?' with value 999 + a %zu-byte "
              "proof (%zu sibling hashes)\n",
              wire.size(), proof.SiblingCount());

  Status check = provenance::VerifyLeafInclusion(
      proof, storage::Value::Int(999), trusted_root,
      crypto::HashAlgorithm::kSha1);
  std::printf("auditor checks the proof:                 %s\n",
              check.ok() ? "ACCEPTED" : "REJECTED");

  Status lie = provenance::VerifyLeafInclusion(
      proof, storage::Value::Int(123), trusted_root,
      crypto::HashAlgorithm::kSha1);
  std::printf("owner lies about the value (123):         %s\n\n",
              lie.ok() ? "ACCEPTED (!!)" : "REJECTED");

  // --- Lineage queries over the verified history -------------------------
  auto summary =
      provenance::SummarizeLineage(db.provenance(), table).value();
  std::printf("table lineage: %s\n", summary.ToString().c_str());
  bool curator_touched =
      provenance::ParticipantTouched(db.provenance(), table, curator.id())
          .value();
  std::printf("did the curator ever touch this table? %s\n",
              curator_touched ? "yes" : "no");
  auto cell_history =
      provenance::HistorySlice(db.provenance(), target_cell, 0, 100).value();
  std::printf("the corrected cell has %zu records (insert by owner, update "
              "by curator)\n",
              cell_history.size());

  return check.ok() && !lie.ok() && curator_touched ? 0 : 1;
}
