// Walks the paper's Figure 2 / Figure 3 example end to end, printing the
// provenance DAG and checksum table, then demonstrates the key property
// of non-linear provenance: an aggregate's provenance object freezes the
// input versions it consumed, while the inputs keep evolving.

#include <cstdio>
#include <map>

#include "common/rng.h"
#include "crypto/pki.h"
#include "example_util.h"
#include "provenance/tracked_database.h"
#include "provenance/verifier.h"

using namespace provdb;

int main() {
  provdb::examples::InitObservability();
  std::printf("non-linear provenance — the Figure 2/3 worked example\n");
  std::printf("======================================================\n\n");

  Rng rng(23);
  auto ca = crypto::CertificateAuthority::Create(1024, &rng).value();
  auto p1 = crypto::Participant::Create(1, "p1", 1024, &rng, ca).value();
  auto p2 = crypto::Participant::Create(2, "p2", 1024, &rng, ca).value();
  auto p3 = crypto::Participant::Create(3, "p3", 1024, &rng, ca).value();
  crypto::ParticipantRegistry registry(ca.public_key());
  for (const auto* p : {&p1, &p2, &p3}) {
    examples::OrDie(registry.Register(p->certificate()));
  }

  provenance::TrackedDatabase db;
  auto a = db.Insert(p2, storage::Value::String("a1")).value();   // C1
  auto b = db.Insert(p2, storage::Value::String("b1")).value();   // C2
  db.Update(p2, b, storage::Value::String("b2")).ok();            // C4
  auto c = db.Aggregate(p3, {a, b}, storage::Value::String("c1"))
               .value();                                          // C6
  db.Update(p1, a, storage::Value::String("a2")).ok();            // C3
  db.Update(p2, a, storage::Value::String("a3")).ok();            // C5
  auto d = db.Aggregate(p1, {a, c}, storage::Value::String("d1"))
               .value();                                          // C7

  std::map<storage::ObjectId, char> names = {
      {a, 'A'}, {b, 'B'}, {c, 'C'}, {d, 'D'}};

  auto print_provenance = [&](storage::ObjectId subject) {
    auto bundle = db.ExportForRecipient(subject).value();
    std::printf("provenance object of %c (%zu records):\n", names[subject],
                bundle.records.size());
    for (const auto& rec : bundle.records) {
      std::string in = "{";
      for (size_t i = 0; i < rec.inputs.size(); ++i) {
        if (i) in += ",";
        in += names[rec.inputs[i].object_id];
      }
      in += "}";
      std::printf("  seq %llu  p%llu  %-9s in=%-6s out=%c\n",
                  static_cast<unsigned long long>(rec.seq_id),
                  static_cast<unsigned long long>(rec.participant),
                  std::string(OperationTypeName(rec.op)).c_str(), in.c_str(),
                  names[rec.output.object_id]);
    }
    provenance::ProvenanceVerifier verifier(&registry);
    auto report = verifier.Verify(bundle);
    std::printf("  verification: %s\n\n", report.ToString().c_str());
    return bundle.records.size();
  };

  // D's provenance is the whole DAG (Figure 3's 7 rows).
  size_t d_records = print_provenance(d);

  // C's provenance *excludes* the updates of A that postdate the first
  // aggregation: C consumed A at a1, so C3/C5 belong only to D's view.
  size_t c_records = print_provenance(c);

  std::printf("D's provenance covers %zu records; C's only %zu — the DAG\n"
              "freezes each aggregate's input versions (Definition 1).\n",
              d_records, c_records);
  return d_records == 7 && c_records == 4 ? 0 : 1;
}
