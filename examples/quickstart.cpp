// Quickstart: the smallest complete tour of the provdb public API.
//
//   1. Set up a PKI (certificate authority + participants).
//   2. Track database operations with integrity checksums.
//   3. Ship a data object + provenance to a recipient.
//   4. Verify — and watch tampering get caught.
//
// Build & run:  ./build/examples/example_quickstart

#include <cstdio>

#include "common/rng.h"
#include "crypto/pki.h"
#include "example_util.h"
#include "provenance/attack.h"
#include "provenance/tracked_database.h"
#include "provenance/verifier.h"

using namespace provdb;  // examples prioritize brevity

int main() {
  provdb::examples::InitObservability();
  std::printf("provdb quickstart\n=================\n\n");

  // --- 1. PKI -----------------------------------------------------------
  // Every participant holds an RSA key pair; a certificate authority binds
  // participant ids to public keys. (Deterministic RNG for reproducible
  // output; use a real entropy source in production.)
  Rng rng(2024);
  auto ca = crypto::CertificateAuthority::Create(1024, &rng).value();
  auto alice = crypto::Participant::Create(1, "alice", 1024, &rng, ca).value();
  auto bob = crypto::Participant::Create(2, "bob", 1024, &rng, ca).value();

  crypto::ParticipantRegistry registry(ca.public_key());
  examples::OrDie(registry.Register(alice.certificate()));
  examples::OrDie(registry.Register(bob.certificate()));
  std::printf("PKI ready: CA + %zu certified participants\n\n",
              registry.size());

  // --- 2. Tracked operations --------------------------------------------
  // Every insert/update/aggregate writes a provenance record whose
  // checksum is the acting participant's signature over
  //   h(state before) | h(state after) | previous checksum.
  provenance::TrackedDatabase db;

  auto temperature = db.Insert(alice, storage::Value::Double(21.5)).value();
  examples::OrDie(db.Update(bob, temperature, storage::Value::Double(22.0)));
  examples::OrDie(db.Update(alice, temperature, storage::Value::Double(22.5)));

  auto pressure = db.Insert(bob, storage::Value::Double(1013.0)).value();

  // Aggregation merges histories: the result's provenance is a DAG.
  auto report =
      db.Aggregate(alice, {temperature, pressure},
                   storage::Value::String("weather-report")).value();

  std::printf("tracked %llu operations -> %llu provenance records\n",
              5ull,
              static_cast<unsigned long long>(db.provenance().record_count()));

  // --- 3. Ship to a recipient --------------------------------------------
  provenance::RecipientBundle bundle = db.ExportForRecipient(report).value();
  Bytes wire = bundle.Serialize();
  std::printf("recipient bundle: %zu records, %zu bytes on the wire\n\n",
              bundle.records.size(), wire.size());

  // --- 4. Verify ----------------------------------------------------------
  auto received = provenance::RecipientBundle::Deserialize(wire).value();
  provenance::ProvenanceVerifier verifier(&registry);

  auto honest = verifier.Verify(received);
  std::printf("honest bundle:   %s\n", honest.ToString().c_str());

  // A recipient-side forgery: silently change the data.
  provenance::RecipientBundle tampered = received;
  examples::OrDie(provenance::attacks::TamperDataValue(
      &tampered, report, storage::Value::String("faked")));
  auto caught = verifier.Verify(tampered);
  std::printf("tampered bundle: %s\n", caught.ToString().c_str());

  return honest.ok() && !caught.ok() ? 0 : 1;
}
