#ifndef PROVDB_STORAGE_RELATIONAL_H_
#define PROVDB_STORAGE_RELATIONAL_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/tree_store.h"

namespace provdb::storage {

/// Relational facade over the forest model: one depth-4 tree per database
/// (§5.1) — root (database) → tables → rows → cells. Operations here are
/// *untracked* (no provenance records); they are used to bootstrap initial
/// database states and by the pure-hashing experiments (Fig. 6). Tracked
/// mutation goes through provenance::TrackedDatabase instead.
class RelationalDatabase {
 public:
  /// Creates a database with a single root node carrying `name`.
  explicit RelationalDatabase(const std::string& name);

  const TreeStore& tree() const { return tree_; }
  TreeStore& mutable_tree() { return tree_; }
  ObjectId root() const { return root_; }
  const std::string& name() const { return name_; }

  /// Creates a table node under the root. Column names define the schema;
  /// each row must supply exactly one cell per column.
  Result<ObjectId> CreateTable(const std::string& table_name,
                               std::vector<std::string> columns);

  /// Inserts a row (value = row ordinal) with one cell per column.
  Result<ObjectId> InsertRow(ObjectId table, const std::vector<Value>& cells);

  /// Updates the cell at `column_index` of `row`.
  Status UpdateCell(ObjectId row, size_t column_index, const Value& value);

  /// Deletes all cells of `row`, then the row itself (leaf-wise, matching
  /// the primitive operation model).
  Status DeleteRow(ObjectId row);

  /// The object id of the cell at `column_index` of `row`.
  Result<ObjectId> CellId(ObjectId row, size_t column_index) const;

  /// The current value of the cell at `column_index` of `row`.
  Result<Value> GetCell(ObjectId row, size_t column_index) const;

  /// Table id by name.
  Result<ObjectId> TableId(const std::string& table_name) const;

  /// Column names of `table`.
  Result<std::vector<std::string>> Columns(ObjectId table) const;

  /// Row object ids of `table`, ascending.
  Result<std::vector<ObjectId>> RowsOf(ObjectId table) const;

  /// Total node count of the database tree (root + tables + rows + cells);
  /// the x-axis of Figure 6.
  size_t NodeCount() const { return tree_.size(); }

 private:
  TreeStore tree_;
  ObjectId root_;
  std::string name_;
  std::map<std::string, ObjectId> tables_by_name_;
  std::map<ObjectId, std::vector<std::string>> columns_by_table_;
};

}  // namespace provdb::storage

#endif  // PROVDB_STORAGE_RELATIONAL_H_
