#ifndef PROVDB_STORAGE_VALUE_H_
#define PROVDB_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/bytes.h"
#include "common/result.h"

namespace provdb::storage {

/// Value type tags, also used as serialization discriminators.
enum class ValueType : uint8_t {
  kNull = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
  kBytes = 4,
};

/// The atomic value stored in a database object (a cell, or the name of a
/// row/table/database node). Values are immutable once constructed.
class Value {
 public:
  /// Null value.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value String(std::string v) { return Value(std::move(v)); }
  static Value Blob(Bytes v) { return Value(std::move(v)); }

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors; calling the wrong one is a programming error
  /// (checked by std::get).
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  const Bytes& AsBlob() const { return std::get<Bytes>(data_); }

  /// Canonical byte encoding: 1-byte type tag + fixed/length-prefixed
  /// payload. Two Values compare equal iff their encodings are identical,
  /// so hashing the encoding is collision-free across types (an Int(3) and
  /// a String("3") hash differently).
  void CanonicalEncode(Bytes* out) const;

  /// Parses a value previously written by CanonicalEncode. `consumed`
  /// receives the number of bytes read.
  static Result<Value> CanonicalDecode(ByteView data, size_t* consumed);

  /// Approximate in-memory footprint in bytes (used for space accounting).
  size_t ApproximateSize() const;

  /// Debug rendering, e.g. `42`, `"abc"`, `null`.
  std::string ToString() const;

  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

 private:
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(Bytes v) : data_(std::move(v)) {}

  std::variant<std::monostate, int64_t, double, std::string, Bytes> data_;
};

}  // namespace provdb::storage

#endif  // PROVDB_STORAGE_VALUE_H_
