#ifndef PROVDB_STORAGE_WAL_H_
#define PROVDB_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/result.h"
#include "observability/metrics.h"
#include "storage/env.h"
#include "storage/record_log.h"

namespace provdb::storage {

/// On-disk layout of the write-ahead provenance log.
///
/// A WAL is a directory of segment files `wal-NNNNNN.log`, numbered from
/// 1 with no gaps. Each segment is:
///
///   +--------+---------------+----------------------+
///   | magic  | segment index | crc32(magic||index)  |   20-byte header
///   | 8 B    | fixed64       | fixed32              |
///   +--------+---------------+----------------------+
///   | varint(len) | payload bytes | crc32(payload)  |   frame, repeated
///   +-------------+---------------+-----------------+
///
/// Frames reuse RecordLog's framing so a recovered WAL replays through
/// the same code path as a snapshot file. A writer never appends to an
/// existing segment: each WalWriter::Open starts segment max+1, so the
/// only file that can legally end mid-frame is the one that was being
/// appended when the process (or the power) died.
inline constexpr char kWalMagic[8] = {'P', 'V', 'D', 'B', 'W', 'A', 'L', '1'};
inline constexpr size_t kWalHeaderSize = 8 + 8 + 4;

/// Largest payload a frame can carry (the length field is persisted as a
/// 32-bit quantity everywhere downstream).
inline constexpr uint64_t kWalMaxPayload = 0xFFFFFFFFu;

/// Classification of a directory entry by ParseWalSegmentName.
enum class WalSegmentNameKind {
  kNotSegment,  // some other file; ignore it
  kInvalid,     // segment-shaped but illegal: index 0 or uint64 overflow
  kSegment,     // a well-formed segment name; *index holds its number
};

/// Strict parse of "wal-NNNNNN.log". Segments are numbered from 1, so an
/// index of 0 is not a name the writer can ever produce, and a digit run
/// that overflows uint64_t cannot round-trip through SegmentFileName —
/// both are kInvalid rather than silently ignored: a file that *claims*
/// to be a segment but cannot be one is evidence of tampering or of a
/// foreign file that would otherwise shadow real log state.
WalSegmentNameKind ParseWalSegmentName(const std::string& name,
                                       uint64_t* index);

struct WalOptions {
  /// A segment is closed (synced) and a new one started once it would
  /// exceed this many bytes. A segment always accepts at least one frame,
  /// so payloads larger than the limit still fit.
  uint64_t segment_size_limit = 64ull << 20;

  /// When true, every Append also Syncs — the paper-grade durability
  /// setting (nothing acknowledged can be lost). When false the caller
  /// batches durability points by calling Sync explicitly (or via the
  /// group-commit thresholds below).
  bool sync_every_append = false;

  /// Group commit: when > 0, Append Syncs automatically once this many
  /// records have accumulated since the last durability point. Ignored
  /// under sync_every_append (which is the degenerate batch of 1).
  uint64_t group_commit_records = 0;

  /// Group commit: when > 0, Append Syncs automatically once this many
  /// frame bytes have accumulated since the last durability point.
  /// Either threshold firing triggers the Sync.
  uint64_t group_commit_bytes = 0;

  /// Index of the last WAL segment covered by a sealed checkpoint (0 =
  /// none). Segments at or below the horizon are checkpoint history: the
  /// writer numbers new segments past it even when they have been
  /// garbage-collected, and never reuses an index at or below it, so a
  /// GC'd segment can never be resurrected under its old name.
  uint64_t checkpoint_horizon = 0;
};

/// Incremental appender. Unlike RecordLog::SaveToFile (which rewrites the
/// world), WalWriter makes each record durable in O(record) I/O.
///
/// Externally synchronized: a WalWriter holds no mutex of its own.
/// Exactly one owner drives it at a time — in the sharded pipeline that
/// owner is IngestPipeline, whose pipeline-wide lock `mu_` serializes all
/// shard WAL calls (the shards_ vector that reaches the writers is
/// PROVDB_GUARDED_BY(mu_), so the analysis enforces the ownership path
/// even though the writer itself carries no annotations).
class WalWriter {
 public:
  WalWriter(WalWriter&&) = default;
  WalWriter& operator=(WalWriter&&) = default;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  /// Creates `dir` if needed and starts a fresh segment after the highest
  /// existing one. Trailing segments shorter than a header (the remains
  /// of a crash during a previous Open) are removed and their index
  /// reused; beyond that, old segments are not read or validated — that
  /// is WalReader's job.
  static Result<WalWriter> Open(Env* env, const std::string& dir,
                                WalOptions options = WalOptions());

  /// Appends one record frame. Rejects payloads over kWalMaxPayload with
  /// kInvalidArgument. The record is durable only after the next
  /// successful Sync (immediately, under sync_every_append).
  Status Append(ByteView payload);

  /// Pushes buffered frames to the OS (survives process crash only).
  Status Flush();

  /// Makes everything appended so far durable.
  Status Sync();

  /// Syncs and closes the current segment. Further Appends fail.
  Status Close();

  /// Seals everything appended so far behind a segment boundary and
  /// returns the sealed index — the checkpoint horizon a snapshot taken
  /// *now* covers. When the current segment already holds records it is
  /// synced, closed, and a fresh segment is started; when it is empty the
  /// boundary already exists and the predecessor index is returned
  /// without touching the disk.
  Result<uint64_t> RollSegment();

  /// Deletes every segment with index <= `horizon` — history wholly
  /// covered by a sealed checkpoint. The active segment is never
  /// eligible (kInvalidArgument when `horizon` reaches it). Idempotent:
  /// already-missing segments are skipped, so a crash mid-GC just
  /// resumes on the next call.
  Status GarbageCollect(uint64_t horizon);

  /// Full path of segment `index` under `dir`.
  static std::string SegmentFileName(const std::string& dir, uint64_t index);

  uint64_t appended_records() const { return appended_records_; }

  /// Records covered by the last successful Sync — the crash-survival
  /// guarantee the fault-injection sweep checks against.
  uint64_t synced_records() const { return synced_records_; }

  /// Frame bytes appended since the last durability point. The
  /// group-commit thresholds fire against this.
  uint64_t unsynced_bytes() const { return unsynced_bytes_; }

  uint64_t current_segment_index() const { return segment_index_; }
  uint64_t current_segment_bytes() const { return segment_bytes_; }
  uint64_t current_segment_records() const { return segment_records_; }
  const std::string& dir() const { return dir_; }
  Env* env() const { return env_; }

  /// The checkpoint horizon this writer was opened with (see WalOptions).
  uint64_t checkpoint_horizon() const { return options_.checkpoint_horizon; }

  /// Non-OK once the writer is poisoned (a failed segment rollover left
  /// no segment that can legally accept frames); every later Append,
  /// Sync, and RollSegment returns this status.
  const Status& poisoned() const { return poisoned_; }

 private:
  WalWriter(Env* env, std::string dir, WalOptions options);

  Status OpenSegment(uint64_t index);

  /// Seals the current segment and opens `segment_index_ + 1`. Any
  /// failure poisons the writer: the old segment is (or may be) closed
  /// and no replacement exists, so a later Append would write into a
  /// closed or stale file.
  Status RollToNextSegment();

  Env* env_;
  std::string dir_;
  WalOptions options_;
  std::unique_ptr<WritableFile> file_;
  uint64_t segment_index_ = 0;
  uint64_t segment_bytes_ = 0;
  uint64_t segment_records_ = 0;
  uint64_t appended_records_ = 0;
  uint64_t synced_records_ = 0;
  uint64_t unsynced_bytes_ = 0;
  bool closed_ = false;
  Status poisoned_ = Status::OK();  // see poisoned()

  // WAL observability (docs/OBSERVABILITY.md). Shared process-wide, so
  // several writers aggregate into the same instruments.
  observability::Counter* appends_;
  observability::Counter* append_bytes_;
  observability::Counter* syncs_;
  observability::Counter* rollovers_;
  observability::Histogram* sync_latency_;
};

/// What recovery found and what it had to discard. `dropped_bytes > 0`
/// means the final segment ended in a torn (half-written) region that was
/// salvaged away; it is reported, never hidden — a verifier that blesses
/// a silently shortened log has blessed a truncation attack (§2.2).
struct WalRecoveryReport {
  uint64_t segments = 0;
  uint64_t records = 0;
  uint64_t dropped_bytes = 0;     // torn-tail bytes discarded
  uint64_t salvaged_segment = 0;  // segment index of the torn tail, 0 = none
  std::string detail;             // human-readable summary of any salvage

  /// Checkpoint-bounded recovery (filled in by the provenance layer):
  /// the WAL horizon of the checkpoint the suffix was replayed on top
  /// of (0 = full-history replay) and the records restored from the
  /// checkpoint itself rather than from WAL frames.
  uint64_t checkpoint_horizon = 0;
  uint64_t checkpoint_records = 0;

  bool clean() const { return dropped_bytes == 0; }
};

struct WalReaderOptions {
  /// After salvaging a torn tail, truncate it off the segment (durably)
  /// so the next recovery — by which time a newer segment may exist and
  /// the tear would no longer be *at* the tail — sees a clean log. A
  /// final segment whose salvaged prefix is shorter than its header
  /// holds no records and is removed outright rather than left behind
  /// as a headerless (hence unrecoverable) zero-byte file.
  bool repair_torn_tail = true;

  /// Segments at or below this index are checkpoint history: their
  /// records live in the sealed snapshot, so the reader skips them
  /// (they may already be garbage-collected) and replays only the
  /// suffix. The first surviving segment must be exactly horizon + 1 —
  /// anything later means a suffix segment vanished, which is the same
  /// "WAL segment gap" corruption as an interior hole.
  uint64_t checkpoint_horizon = 0;
};

/// Crash recovery: scans all segments, validates headers and CRCs, and
/// replays the valid record prefix.
///
/// Decision rule (LevelDB-style, documented in DESIGN.md §8): a
/// malformed region that extends to the end of the *final* segment is a
/// torn write — salvage the prefix and report the dropped bytes. Any
/// malformed or CRC-failing frame *before* that point cannot be produced
/// by an append-only crash, so it is tampering or disk rot: hard
/// kCorruption, no salvage.
class WalReader {
 public:
  WalReader(WalReader&&) = default;
  WalReader& operator=(WalReader&&) = default;
  WalReader(const WalReader&) = delete;
  WalReader& operator=(const WalReader&) = delete;

  static Result<WalReader> Open(Env* env, const std::string& dir,
                                WalReaderOptions options = WalReaderOptions());

  /// The recovered records, in append order, as a RecordLog — so existing
  /// consumers (ProvenanceStore::LoadFromLog) replay it unchanged.
  const RecordLog& log() const { return log_; }
  RecordLog&& TakeLog() { return std::move(log_); }

  const WalRecoveryReport& report() const { return report_; }

 private:
  WalReader() = default;

  RecordLog log_;
  WalRecoveryReport report_;
};

}  // namespace provdb::storage

#endif  // PROVDB_STORAGE_WAL_H_
