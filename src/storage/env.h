#ifndef PROVDB_STORAGE_ENV_H_
#define PROVDB_STORAGE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace provdb::storage {

/// A file opened for appending. Durability is a two-step contract:
/// `Flush` pushes user-space buffers to the OS (survives a process
/// crash), `Sync` pushes OS buffers to stable storage (survives a power
/// cut). Nothing appended is durable until a `Sync` returns OK.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  WritableFile() = default;
  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;

  /// Appends `data` at the end of the file (buffered).
  virtual Status Append(ByteView data) = 0;

  /// Flushes user-space buffers into the OS page cache.
  virtual Status Flush() = 0;

  /// Flush, then fsync: everything appended so far is on stable storage
  /// when this returns OK.
  virtual Status Sync() = 0;

  /// Flushes and closes the descriptor. Does NOT imply Sync.
  virtual Status Close() = 0;
};

/// Narrow filesystem abstraction — the only sanctioned route to the disk
/// for persistence code (enforced by lint rule R06 `raw-file-io`). The
/// indirection exists so tests can substitute a FaultInjectionEnv and
/// prove crash-recovery invariants that the real filesystem only
/// exercises during actual power cuts.
class Env {
 public:
  virtual ~Env() = default;

  Env() = default;
  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  /// The process-wide POSIX environment (never null, never deleted).
  static Env* Default();

  /// Creates (or truncates) `path` for writing.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  /// Reads the whole file. A mid-read I/O failure is an error, never a
  /// silently short buffer.
  virtual Result<Bytes> ReadFileToBytes(const std::string& path) = 0;

  /// Atomically renames `from` to `to` and fsyncs the target's parent
  /// directory, so the new name itself survives a power cut. The *file
  /// contents* must already have been Sync'd by the caller.
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  virtual Status RemoveFile(const std::string& path) = 0;

  /// Creates a directory; succeeds if it already exists.
  virtual Status CreateDir(const std::string& path) = 0;

  /// Names (not paths) of the entries in `dir`, sorted, '.'/'..' excluded.
  virtual Result<std::vector<std::string>> ListDir(
      const std::string& dir) = 0;

  virtual Result<uint64_t> FileSize(const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  /// Truncates `path` to `size` bytes.
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;

  /// fsyncs a directory so previously created/renamed entries are durable.
  virtual Status SyncDir(const std::string& dir) = 0;
};

/// Directory part of `path` ("." when there is no separator).
std::string ParentDir(const std::string& path);

}  // namespace provdb::storage

#endif  // PROVDB_STORAGE_ENV_H_
