#include "storage/relational.h"

namespace provdb::storage {

RelationalDatabase::RelationalDatabase(const std::string& name) : name_(name) {
  root_ = tree_.Insert(Value::String(name)).value();
}

Result<ObjectId> RelationalDatabase::CreateTable(
    const std::string& table_name, std::vector<std::string> columns) {
  if (tables_by_name_.count(table_name) > 0) {
    return Status::AlreadyExists("table '" + table_name + "' already exists");
  }
  if (columns.empty()) {
    return Status::InvalidArgument("a table needs at least one column");
  }
  PROVDB_ASSIGN_OR_RETURN(ObjectId table,
                          tree_.Insert(Value::String(table_name), root_));
  tables_by_name_[table_name] = table;
  columns_by_table_[table] = std::move(columns);
  return table;
}

Result<ObjectId> RelationalDatabase::InsertRow(ObjectId table,
                                               const std::vector<Value>& cells) {
  auto cols_it = columns_by_table_.find(table);
  if (cols_it == columns_by_table_.end()) {
    return Status::NotFound("unknown table id " + std::to_string(table));
  }
  if (cells.size() != cols_it->second.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(cells.size()) + " cells; table has " +
        std::to_string(cols_it->second.size()) + " columns");
  }
  PROVDB_ASSIGN_OR_RETURN(const TreeNode* table_node, tree_.GetNode(table));
  int64_t ordinal = static_cast<int64_t>(table_node->children.size());
  PROVDB_ASSIGN_OR_RETURN(ObjectId row,
                          tree_.Insert(Value::Int(ordinal), table));
  for (const Value& cell : cells) {
    PROVDB_RETURN_IF_ERROR(tree_.Insert(cell, row).status());
  }
  return row;
}

Result<ObjectId> RelationalDatabase::CellId(ObjectId row,
                                            size_t column_index) const {
  PROVDB_ASSIGN_OR_RETURN(const TreeNode* row_node, tree_.GetNode(row));
  if (column_index >= row_node->children.size()) {
    return Status::OutOfRange("column index " + std::to_string(column_index) +
                              " out of range");
  }
  return row_node->children[column_index];
}

Status RelationalDatabase::UpdateCell(ObjectId row, size_t column_index,
                                      const Value& value) {
  PROVDB_ASSIGN_OR_RETURN(ObjectId cell, CellId(row, column_index));
  return tree_.Update(cell, value);
}

Result<Value> RelationalDatabase::GetCell(ObjectId row,
                                          size_t column_index) const {
  PROVDB_ASSIGN_OR_RETURN(ObjectId cell, CellId(row, column_index));
  PROVDB_ASSIGN_OR_RETURN(const TreeNode* node, tree_.GetNode(cell));
  return node->value;
}

Status RelationalDatabase::DeleteRow(ObjectId row) {
  PROVDB_ASSIGN_OR_RETURN(const TreeNode* row_node, tree_.GetNode(row));
  std::vector<ObjectId> cells = row_node->children;
  for (ObjectId cell : cells) {
    PROVDB_RETURN_IF_ERROR(tree_.Delete(cell));
  }
  return tree_.Delete(row);
}

Result<ObjectId> RelationalDatabase::TableId(
    const std::string& table_name) const {
  auto it = tables_by_name_.find(table_name);
  if (it == tables_by_name_.end()) {
    return Status::NotFound("table '" + table_name + "' does not exist");
  }
  return it->second;
}

Result<std::vector<std::string>> RelationalDatabase::Columns(
    ObjectId table) const {
  auto it = columns_by_table_.find(table);
  if (it == columns_by_table_.end()) {
    return Status::NotFound("unknown table id " + std::to_string(table));
  }
  return it->second;
}

Result<std::vector<ObjectId>> RelationalDatabase::RowsOf(
    ObjectId table) const {
  if (columns_by_table_.count(table) == 0) {
    return Status::NotFound("unknown table id " + std::to_string(table));
  }
  PROVDB_ASSIGN_OR_RETURN(const TreeNode* node, tree_.GetNode(table));
  return node->children;
}

}  // namespace provdb::storage
