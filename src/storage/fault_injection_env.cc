#include "storage/fault_injection_env.h"

#include <utility>

namespace provdb::storage {

/// Wrapper that forwards to the base env's file while updating the
/// owning FaultInjectionEnv's bookkeeping and applying scheduled faults.
class FaultInjectionWritableFile final : public WritableFile {
 public:
  FaultInjectionWritableFile(FaultInjectionEnv* env, std::string path,
                             std::unique_ptr<WritableFile> base)
      : env_(env), path_(std::move(path)), base_(std::move(base)) {}

  Status Append(ByteView data) override {
    MutexLock lock(&env_->mu_);
    PROVDB_RETURN_IF_ERROR(env_->BeginMutatingOpLocked("append " + path_));
    if (!env_->active_) {
      return Status::IoError("injected fault: filesystem inactive (append " +
                             path_ + ")");
    }
    if (env_->fail_append_in_ > 0 && --env_->fail_append_in_ == 0) {
      if (env_->torn_append_ && data.size() > 1) {
        // A torn write: the front half reaches the disk image, the rest
        // never does. Recovery must treat the half-frame as garbage.
        ByteView prefix = data.subview(0, data.size() / 2);
        PROVDB_RETURN_IF_ERROR(base_->Append(prefix));
        PROVDB_RETURN_IF_ERROR(base_->Flush());
        env_->files_[path_].appended += prefix.size();
      }
      return Status::IoError("injected fault: append failure at " + path_);
    }
    PROVDB_RETURN_IF_ERROR(base_->Append(data));
    // Flush eagerly so the on-disk length is exact at write granularity;
    // "what survives a crash" is then decided solely by Sync tracking.
    PROVDB_RETURN_IF_ERROR(base_->Flush());
    env_->files_[path_].appended += data.size();
    ++env_->append_count_;
    return Status::OK();
  }

  Status Flush() override { return base_->Flush(); }

  Status Sync() override {
    MutexLock lock(&env_->mu_);
    PROVDB_RETURN_IF_ERROR(env_->BeginMutatingOpLocked("sync " + path_));
    if (!env_->active_) {
      return Status::IoError("injected fault: filesystem inactive (sync " +
                             path_ + ")");
    }
    if (env_->fail_sync_in_ > 0 && --env_->fail_sync_in_ == 0) {
      return Status::IoError("injected fault: sync failure at " + path_);
    }
    PROVDB_RETURN_IF_ERROR(base_->Sync());
    FaultInjectionEnv::FileState& state = env_->files_[path_];
    state.synced = state.appended;
    ++env_->sync_count_;
    return Status::OK();
  }

  Status Close() override { return base_->Close(); }

 private:
  FaultInjectionEnv* env_;
  std::string path_;
  std::unique_ptr<WritableFile> base_;
};

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path) {
  MutexLock lock(&mu_);
  PROVDB_RETURN_IF_ERROR(BeginMutatingOpLocked("create " + path));
  if (!active_) {
    return Status::IoError("injected fault: filesystem inactive (create " +
                           path + ")");
  }
  if (fail_new_file_in_ > 0 && --fail_new_file_in_ == 0) {
    return Status::IoError("injected fault: create failure at " + path);
  }
  PROVDB_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                          base_->NewWritableFile(path));
  files_[path] = FileState{};  // O_TRUNC semantics: fresh, nothing synced
  return std::unique_ptr<WritableFile>(new FaultInjectionWritableFile(
      this, path, std::move(base)));
}

Result<Bytes> FaultInjectionEnv::ReadFileToBytes(const std::string& path) {
  return base_->ReadFileToBytes(path);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  MutexLock lock(&mu_);
  PROVDB_RETURN_IF_ERROR(BeginMutatingOpLocked("rename " + from));
  if (!active_) {
    return Status::IoError("injected fault: filesystem inactive (rename " +
                           from + ")");
  }
  PROVDB_RETURN_IF_ERROR(base_->RenameFile(from, to));
  auto it = files_.find(from);
  if (it != files_.end()) {
    files_[to] = it->second;
    files_.erase(it);
  }
  ++dir_sync_count_;  // base RenameFile fsyncs the target directory
  return Status::OK();
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  MutexLock lock(&mu_);
  PROVDB_RETURN_IF_ERROR(BeginMutatingOpLocked("remove " + path));
  if (!active_) {
    return Status::IoError("injected fault: filesystem inactive (remove " +
                           path + ")");
  }
  files_.erase(path);
  return base_->RemoveFile(path);
}

Status FaultInjectionEnv::CreateDir(const std::string& path) {
  MutexLock lock(&mu_);
  PROVDB_RETURN_IF_ERROR(BeginMutatingOpLocked("mkdir " + path));
  if (!active_) {
    return Status::IoError("injected fault: filesystem inactive (mkdir " +
                           path + ")");
  }
  return base_->CreateDir(path);
}

Result<std::vector<std::string>> FaultInjectionEnv::ListDir(
    const std::string& dir) {
  return base_->ListDir(dir);
}

Result<uint64_t> FaultInjectionEnv::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultInjectionEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  MutexLock lock(&mu_);
  PROVDB_RETURN_IF_ERROR(BeginMutatingOpLocked("truncate " + path));
  if (!active_) {
    return Status::IoError("injected fault: filesystem inactive (truncate " +
                           path + ")");
  }
  return base_->TruncateFile(path, size);
}

Status FaultInjectionEnv::SyncDir(const std::string& dir) {
  MutexLock lock(&mu_);
  PROVDB_RETURN_IF_ERROR(BeginMutatingOpLocked("syncdir " + dir));
  if (!active_) {
    return Status::IoError("injected fault: filesystem inactive (syncdir " +
                           dir + ")");
  }
  PROVDB_RETURN_IF_ERROR(base_->SyncDir(dir));
  ++dir_sync_count_;
  return Status::OK();
}

void FaultInjectionEnv::ScheduleAppendFailure(uint64_t nth, bool torn) {
  MutexLock lock(&mu_);
  fail_append_in_ = nth;
  torn_append_ = torn;
}

void FaultInjectionEnv::ScheduleSyncFailure(uint64_t nth) {
  MutexLock lock(&mu_);
  fail_sync_in_ = nth;
}

void FaultInjectionEnv::ScheduleNewFileFailure(uint64_t nth) {
  MutexLock lock(&mu_);
  fail_new_file_in_ = nth;
}

void FaultInjectionEnv::ScheduleCrashAtOp(uint64_t nth) {
  MutexLock lock(&mu_);
  crash_at_op_ = nth == 0 ? 0 : mutating_op_count_ + nth;
}

Status FaultInjectionEnv::BeginMutatingOpLocked(const std::string& what) {
  ++mutating_op_count_;
  if (crash_at_op_ > 0 && mutating_op_count_ >= crash_at_op_) {
    // The crash point: this operation fails and the disk image freezes,
    // exactly as if the process died here.
    active_ = false;
    return Status::IoError("injected fault: crash at op #" +
                           std::to_string(mutating_op_count_) + " (" + what +
                           ")");
  }
  return Status::OK();
}

void FaultInjectionEnv::ClearFaults() {
  MutexLock lock(&mu_);
  active_ = true;
  fail_append_in_ = 0;
  torn_append_ = false;
  fail_sync_in_ = 0;
  fail_new_file_in_ = 0;
  crash_at_op_ = 0;
}

Status FaultInjectionEnv::DropUnsyncedFileData() {
  MutexLock lock(&mu_);
  for (const auto& [path, state] : files_) {
    if (!base_->FileExists(path)) {
      continue;
    }
    if (state.synced < state.appended) {
      PROVDB_RETURN_IF_ERROR(base_->TruncateFile(path, state.synced));
    }
  }
  return Status::OK();
}

uint64_t FaultInjectionEnv::synced_bytes(const std::string& path) const {
  MutexLock lock(&mu_);
  auto it = files_.find(path);
  return it == files_.end() ? 0 : it->second.synced;
}

uint64_t FaultInjectionEnv::appended_bytes(const std::string& path) const {
  MutexLock lock(&mu_);
  auto it = files_.find(path);
  return it == files_.end() ? 0 : it->second.appended;
}

}  // namespace provdb::storage
