#include "storage/wal.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/crc32.h"
#include "common/varint.h"
#include "observability/trace.h"

namespace provdb::storage {

WalSegmentNameKind ParseWalSegmentName(const std::string& name,
                                       uint64_t* index) {
  const std::string prefix = "wal-";
  const std::string suffix = ".log";
  if (name.size() <= prefix.size() + suffix.size()) {
    return WalSegmentNameKind::kNotSegment;
  }
  if (name.compare(0, prefix.size(), prefix) != 0) {
    return WalSegmentNameKind::kNotSegment;
  }
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return WalSegmentNameKind::kNotSegment;
  }
  uint64_t value = 0;
  for (size_t i = prefix.size(); i < name.size() - suffix.size(); ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return WalSegmentNameKind::kNotSegment;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      // A digit run that overflows uint64_t cannot name a segment the
      // writer ever produced; treating it modulo 2^64 would let a forged
      // file alias (and shadow) a real low-numbered segment.
      return WalSegmentNameKind::kInvalid;
    }
    value = value * 10 + digit;
  }
  if (value == 0) {
    // Segments are numbered from 1: "wal-000000.log" is segment-shaped
    // but impossible, so it is flagged instead of silently skipped.
    return WalSegmentNameKind::kInvalid;
  }
  *index = value;
  return WalSegmentNameKind::kSegment;
}

namespace {

Bytes BuildSegmentHeader(uint64_t index) {
  Bytes header;
  header.reserve(kWalHeaderSize);
  AppendBytes(&header, ByteView(
      reinterpret_cast<const uint8_t*>(kWalMagic), sizeof(kWalMagic)));
  AppendFixed64(&header, index);
  AppendFixed32(&header, Crc32(ByteView(header.data(), header.size())));
  return header;
}

/// Decodes a varint at `pos`. Returns +1 and advances on success, 0 when
/// the buffer ends mid-varint (a torn tail candidate), -1 when the
/// encoding itself is malformed (> 10 bytes of continuation bits).
int TryReadVarint(const Bytes& content, size_t* pos, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  size_t p = *pos;
  while (p < content.size() && shift <= 63) {
    uint8_t byte = content[p++];
    if (shift == 63 && (byte & 0xFE) != 0) {
      // The 10th byte can only contribute bit 0 of a uint64; any higher
      // payload bit (or a further continuation bit) overflows. Shifting
      // it out would decode a wrong small length and misclassify the
      // frame as well-formed.
      return -1;
    }
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *pos = p;
      *value = result;
      return 1;
    }
    shift += 7;
  }
  return p >= content.size() && shift <= 63 ? 0 : -1;
}

}  // namespace

// ---------------------------------------------------------------------------
// WalWriter
// ---------------------------------------------------------------------------

std::string WalWriter::SegmentFileName(const std::string& dir,
                                       uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%06llu.log",
                static_cast<unsigned long long>(index));
  return dir + "/" + buf;
}

WalWriter::~WalWriter() = default;

WalWriter::WalWriter(Env* env, std::string dir, WalOptions options)
    : env_(env),
      dir_(std::move(dir)),
      options_(options),
      appends_(observability::GlobalMetrics().counter("wal.appends")),
      append_bytes_(
          observability::GlobalMetrics().counter("wal.append_bytes")),
      syncs_(observability::GlobalMetrics().counter("wal.syncs")),
      rollovers_(observability::GlobalMetrics().counter("wal.rollovers")),
      sync_latency_(
          observability::GlobalMetrics().histogram("wal.sync.latency_us")) {}

Result<WalWriter> WalWriter::Open(Env* env, const std::string& dir,
                                  WalOptions options) {
  if (options.segment_size_limit <= kWalHeaderSize) {
    return Status::InvalidArgument(
        "wal segment_size_limit must exceed the segment header size");
  }
  PROVDB_RETURN_IF_ERROR(env->CreateDir(dir));
  PROVDB_ASSIGN_OR_RETURN(std::vector<std::string> names, env->ListDir(dir));
  // The checkpoint horizon is a floor: even when every segment at or
  // below it has been garbage-collected, new segments keep numbering
  // past it so a GC'd index is never reused (reused indices would let a
  // pre-GC segment masquerade as post-checkpoint history).
  uint64_t max_index = options.checkpoint_horizon;
  for (const std::string& name : names) {
    uint64_t index = 0;
    switch (ParseWalSegmentName(name, &index)) {
      case WalSegmentNameKind::kSegment:
        max_index = std::max(max_index, index);
        break;
      case WalSegmentNameKind::kInvalid:
        return Status::Corruption("invalid WAL segment name '" + name +
                                  "' in " + dir);
      case WalSegmentNameKind::kNotSegment:
        break;
    }
  }
  // A crash during a previous OpenSegment can leave the highest segment
  // shorter than its header (the header is only Flushed, not Synced,
  // before the first Append). Such a segment holds no records; reuse its
  // index rather than numbering past it — otherwise it would sit
  // headerless *before* the new segment forever, and recovery must treat
  // a headerless non-final segment as corruption.
  while (max_index > options.checkpoint_horizon) {
    const std::string last = SegmentFileName(dir, max_index);
    if (!env->FileExists(last)) {
      // The predecessor of a removed headerless segment is itself
      // missing: a hole inside the live suffix, exactly what
      // WalReader::Open reports — not an I/O error to fumble over.
      return Status::Corruption("WAL segment gap: wal segment " +
                                std::to_string(max_index) + " is missing in " +
                                dir);
    }
    PROVDB_ASSIGN_OR_RETURN(uint64_t size, env->FileSize(last));
    if (size >= kWalHeaderSize) break;
    PROVDB_RETURN_IF_ERROR(env->RemoveFile(last));
    PROVDB_RETURN_IF_ERROR(env->SyncDir(dir));
    --max_index;
  }
  WalWriter writer(env, dir, options);
  PROVDB_RETURN_IF_ERROR(writer.OpenSegment(max_index + 1));
  return writer;
}

Status WalWriter::OpenSegment(uint64_t index) {
  PROVDB_ASSIGN_OR_RETURN(file_,
                          env_->NewWritableFile(SegmentFileName(dir_, index)));
  PROVDB_RETURN_IF_ERROR(file_->Append(BuildSegmentHeader(index)));
  PROVDB_RETURN_IF_ERROR(file_->Flush());
  // Make the segment's directory entry itself crash-durable; otherwise a
  // power cut could forget the file while keeping later ones.
  PROVDB_RETURN_IF_ERROR(env_->SyncDir(dir_));
  segment_index_ = index;
  segment_bytes_ = kWalHeaderSize;
  segment_records_ = 0;
  return Status::OK();
}

Status WalWriter::RollToNextSegment() {
  // The old segment must be durable before the new one can receive
  // data: recovery hard-fails on a torn frame that is no longer at the
  // tail of the log. Any failure in the sequence leaves the writer with
  // no segment that can legally accept frames (the old one is closed or
  // in an unknown state, the new one never opened), so it poisons the
  // writer: a later Append into the stale handle would write records
  // recovery can never see.
  Status roll = Sync();
  if (roll.ok()) roll = file_->Close();
  if (roll.ok()) roll = OpenSegment(segment_index_ + 1);
  if (!roll.ok()) {
    poisoned_ = Status::FailedPrecondition(
        "WAL writer poisoned by a failed segment rollover in " + dir_ +
        ": " + roll.ToString());
    return roll;
  }
  rollovers_->Increment();
  return Status::OK();
}

Status WalWriter::Append(ByteView payload) {
  if (!poisoned_.ok()) {
    return poisoned_;
  }
  if (closed_) {
    return Status::FailedPrecondition("append to closed WAL " + dir_);
  }
  if (payload.size() > kWalMaxPayload) {
    return Status::InvalidArgument(
        "WAL payload of " + std::to_string(payload.size()) +
        " bytes exceeds the 32-bit frame length limit");
  }
  Bytes frame;
  AppendVarint64(&frame, payload.size());
  AppendBytes(&frame, payload);
  AppendFixed32(&frame, Crc32(payload));

  if (segment_records_ > 0 &&
      segment_bytes_ + frame.size() > options_.segment_size_limit) {
    PROVDB_RETURN_IF_ERROR(RollToNextSegment());
  }

  PROVDB_RETURN_IF_ERROR(file_->Append(frame));
  segment_bytes_ += frame.size();
  ++segment_records_;
  ++appended_records_;
  unsynced_bytes_ += frame.size();
  appends_->Increment();
  append_bytes_->Add(frame.size());
  if (options_.sync_every_append) {
    PROVDB_RETURN_IF_ERROR(Sync());
  } else if ((options_.group_commit_records > 0 &&
              appended_records_ - synced_records_ >=
                  options_.group_commit_records) ||
             (options_.group_commit_bytes > 0 &&
              unsynced_bytes_ >= options_.group_commit_bytes)) {
    PROVDB_RETURN_IF_ERROR(Sync());
  }
  return Status::OK();
}

Status WalWriter::Flush() {
  if (!poisoned_.ok()) {
    return poisoned_;
  }
  if (closed_) {
    return Status::OK();
  }
  return file_->Flush();
}

Status WalWriter::Sync() {
  if (!poisoned_.ok()) {
    return poisoned_;
  }
  if (closed_) {
    return Status::FailedPrecondition("sync of closed WAL " + dir_);
  }
  observability::ScopedLatencyTimer timer(sync_latency_);
  observability::TraceSpan span("wal.sync");
  PROVDB_RETURN_IF_ERROR(file_->Sync());
  synced_records_ = appended_records_;
  unsynced_bytes_ = 0;
  syncs_->Increment();
  return Status::OK();
}

Status WalWriter::Close() {
  if (closed_) {
    return Status::OK();
  }
  if (!poisoned_.ok()) {
    // The active file handle is stale (closed, or never replaced, by the
    // failed rollover); touching it again is not safe. Surface the
    // poison instead.
    file_.reset();
    closed_ = true;
    return poisoned_;
  }
  Status s = Sync();
  Status c = file_->Close();
  file_.reset();
  closed_ = true;
  PROVDB_RETURN_IF_ERROR(s);
  return c;
}

Result<uint64_t> WalWriter::RollSegment() {
  if (!poisoned_.ok()) {
    return poisoned_;
  }
  if (closed_) {
    return Status::FailedPrecondition("roll of closed WAL " + dir_);
  }
  if (segment_records_ == 0) {
    // The current segment is empty: everything appended so far already
    // sits behind the boundary to its predecessor, so that boundary is
    // the seal — no I/O needed (and no empty segment left behind).
    return segment_index_ - 1;
  }
  uint64_t sealed = segment_index_;
  PROVDB_RETURN_IF_ERROR(RollToNextSegment());
  return sealed;
}

Status WalWriter::GarbageCollect(uint64_t horizon) {
  if (horizon >= segment_index_) {
    return Status::InvalidArgument(
        "WAL GC horizon " + std::to_string(horizon) +
        " would cover the active segment " + std::to_string(segment_index_) +
        " of " + dir_);
  }
  observability::Counter* gc_segments =
      observability::GlobalMetrics().counter("wal.gc.segments");
  PROVDB_ASSIGN_OR_RETURN(std::vector<std::string> names, env_->ListDir(dir_));
  bool removed_any = false;
  for (const std::string& name : names) {
    uint64_t index = 0;
    if (ParseWalSegmentName(name, &index) != WalSegmentNameKind::kSegment) {
      continue;
    }
    if (index > horizon) {
      continue;
    }
    PROVDB_RETURN_IF_ERROR(env_->RemoveFile(dir_ + "/" + name));
    gc_segments->Increment();
    removed_any = true;
  }
  if (removed_any) {
    // One directory fsync covers the batch: until it lands, a power cut
    // may resurrect some deleted names, which recovery tolerates — the
    // checkpoint horizon makes it skip them either way.
    PROVDB_RETURN_IF_ERROR(env_->SyncDir(dir_));
  }
  options_.checkpoint_horizon = std::max(options_.checkpoint_horizon, horizon);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// WalReader
// ---------------------------------------------------------------------------

Result<WalReader> WalReader::Open(Env* env, const std::string& dir,
                                  WalReaderOptions options) {
  // Recovery observability (docs/OBSERVABILITY.md). Resolved here rather
  // than held as members because recovery is a one-shot static pass.
  observability::MetricsRegistry& metrics = observability::GlobalMetrics();
  observability::Counter* recovered_records =
      metrics.counter("wal.recovery.records");
  observability::Counter* salvages = metrics.counter("wal.recovery.salvages");
  observability::Counter* dropped_total =
      metrics.counter("wal.recovery.dropped_bytes");
  observability::TraceSpan recover_span("wal.recover");

  PROVDB_ASSIGN_OR_RETURN(std::vector<std::string> names, env->ListDir(dir));
  std::vector<std::pair<uint64_t, std::string>> segments;
  for (const std::string& name : names) {
    uint64_t index = 0;
    switch (ParseWalSegmentName(name, &index)) {
      case WalSegmentNameKind::kSegment:
        // Segments at or below the checkpoint horizon are history the
        // sealed snapshot already covers; they are skipped whether or
        // not GC got to them before the crash.
        if (index > options.checkpoint_horizon) {
          segments.emplace_back(index, dir + "/" + name);
        }
        break;
      case WalSegmentNameKind::kInvalid:
        return Status::Corruption("invalid WAL segment name '" + name +
                                  "' in " + dir);
      case WalSegmentNameKind::kNotSegment:
        break;
    }
  }
  std::sort(segments.begin(), segments.end());
  // The replayable suffix must start exactly one past the horizon (the
  // very first segment a fresh log writes is 1). A later start means a
  // segment vanished — silent truncation of acknowledged history, the
  // same corruption as an interior hole.
  if (!segments.empty() &&
      segments[0].first != options.checkpoint_horizon + 1) {
    return Status::Corruption(
        "WAL segment gap: wal segment " +
        std::to_string(options.checkpoint_horizon + 1) + " is missing in " +
        dir);
  }
  for (size_t i = 1; i < segments.size(); ++i) {
    if (segments[i].first != segments[i - 1].first + 1) {
      return Status::Corruption(
          "WAL segment gap: wal segment " +
          std::to_string(segments[i - 1].first + 1) + " is missing in " + dir);
    }
  }

  WalReader reader;
  reader.report_.segments = segments.size();

  for (size_t s = 0; s < segments.size(); ++s) {
    const uint64_t seg_index = segments[s].first;
    const std::string& path = segments[s].second;
    const bool last_segment = s + 1 == segments.size();
    PROVDB_ASSIGN_OR_RETURN(Bytes content, env->ReadFileToBytes(path));

    // Salvage a torn region [tear_at, EOF) of the final segment, or fail.
    auto torn_or_corrupt = [&](size_t tear_at, const std::string& what,
                               bool salvageable) -> Status {
      if (!last_segment || !salvageable) {
        return Status::Corruption(what + " in segment " + path +
                                  " at offset " + std::to_string(tear_at) +
                                  " (not a recoverable tail tear)");
      }
      uint64_t dropped = content.size() - tear_at;
      salvages->Increment();
      dropped_total->Add(dropped);
      reader.report_.dropped_bytes += dropped;
      reader.report_.salvaged_segment = seg_index;
      reader.report_.detail = what + ": salvaged " + path + ", dropped " +
                              std::to_string(dropped) + " byte(s) at offset " +
                              std::to_string(tear_at);
      if (options.repair_torn_tail) {
        if (tear_at < kWalHeaderSize) {
          // The salvaged prefix is not even a full header: the segment
          // holds no records. Truncating would leave a headerless file
          // that a later recovery — once newer segments exist and it is
          // no longer last — must reject as corrupt. Remove it instead;
          // the next WalWriter::Open reuses its index, so no gap forms.
          PROVDB_RETURN_IF_ERROR(env->RemoveFile(path));
          PROVDB_RETURN_IF_ERROR(env->SyncDir(ParentDir(path)));
        } else {
          PROVDB_RETURN_IF_ERROR(env->TruncateFile(path, tear_at));
        }
      }
      return Status::OK();
    };

    if (content.size() < kWalHeaderSize) {
      // An empty (or half-written-header) segment can only be the one
      // being created when the crash hit.
      PROVDB_RETURN_IF_ERROR(
          torn_or_corrupt(0, "short segment header", /*salvageable=*/true));
      continue;
    }
    if (std::memcmp(content.data(), kWalMagic, sizeof(kWalMagic)) != 0 ||
        ReadFixed32(content, 16) != Crc32(ByteView(content.data(), 16)) ||
        ReadFixed64(content, 8) != seg_index) {
      // A complete header that fails validation was not torn — the bytes
      // are all there, they are just wrong.
      return Status::Corruption("bad WAL segment header in " + path);
    }

    size_t pos = kWalHeaderSize;
    while (pos < content.size()) {
      const size_t frame_start = pos;
      uint64_t len = 0;
      int varint_state = TryReadVarint(content, &pos, &len);
      if (varint_state <= 0) {
        PROVDB_RETURN_IF_ERROR(torn_or_corrupt(
            frame_start,
            varint_state == 0 ? "truncated frame length"
                              : "malformed frame length",
            /*salvageable=*/true));
        break;
      }
      if (len > kWalMaxPayload) {
        PROVDB_RETURN_IF_ERROR(torn_or_corrupt(
            frame_start, "frame length exceeds 32-bit limit",
            /*salvageable=*/true));
        break;
      }
      if (len + 4 > content.size() - pos) {
        PROVDB_RETURN_IF_ERROR(torn_or_corrupt(
            frame_start, "frame overruns end of segment",
            /*salvageable=*/true));
        break;
      }
      ByteView payload(content.data() + pos, static_cast<size_t>(len));
      pos += static_cast<size_t>(len);
      uint32_t stored_crc = ReadFixed32(content, pos);
      pos += 4;
      if (stored_crc != Crc32(payload)) {
        // A structurally complete frame with a bad CRC is only a
        // plausible tear when nothing follows it; with more log after
        // it, the bytes were fully written and later damaged.
        PROVDB_RETURN_IF_ERROR(torn_or_corrupt(
            frame_start, "frame CRC mismatch",
            /*salvageable=*/pos == content.size()));
        break;
      }
      PROVDB_RETURN_IF_ERROR(reader.log_.Append(payload).status());
      ++reader.report_.records;
      recovered_records->Increment();
    }
  }
  return reader;
}

}  // namespace provdb::storage
