#ifndef PROVDB_STORAGE_FAULT_INJECTION_ENV_H_
#define PROVDB_STORAGE_FAULT_INJECTION_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "storage/env.h"

namespace provdb::storage {

/// Test double that wraps a real Env and simulates crashes and disk
/// faults deterministically (modelled on LevelDB's FaultInjectionTestEnv):
///
///  * every Append through this env is flushed to the OS immediately, so
///    the on-disk state is exact at each write boundary;
///  * `DropUnsyncedFileData` truncates every file back to its last
///    synced size — the worst legal outcome of a power cut;
///  * `ScheduleAppendFailure(n)` makes the n-th subsequent Append fail,
///    optionally after writing only a prefix (a torn write);
///  * `SetFilesystemActive(false)` fails all writes and syncs, freezing
///    the disk image at the crash point.
///
/// Counters expose how many appends / syncs / dir-syncs reached the
/// underlying Env, so tests can assert sync contracts ("SaveToFile syncs
/// the file before renaming") rather than trust comments.
///
/// Thread-safe: one coarse mutex serializes every operation and all
/// bookkeeping (it is a test double — fidelity beats parallelism), so it
/// can sit under components exercised from several threads, e.g. the
/// serialized IngestPipeline driven by concurrent producers. Fault
/// scheduling ("the nth append fails") stays deterministic only when the
/// *workload* is deterministic; concurrent tests should assert on the
/// counters and the sync contract, not on which thread hits the fault.
class FaultInjectionEnv final : public Env {
 public:
  /// `base` must outlive this env. Typically Env::Default().
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  // --- Env interface ----------------------------------------------------

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<Bytes> ReadFileToBytes(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status SyncDir(const std::string& dir) override;

  // --- Fault controls ---------------------------------------------------

  /// When false, every Append/Sync/rename fails with kIoError.
  void SetFilesystemActive(bool active) {
    MutexLock lock(&mu_);
    active_ = active;
  }
  bool filesystem_active() const {
    MutexLock lock(&mu_);
    return active_;
  }

  /// The `nth` Append from now (1-based) fails with kIoError. With
  /// `torn`, the failing append first writes the front half of its
  /// payload — a torn frame, as a real sector-boundary power cut leaves.
  void ScheduleAppendFailure(uint64_t nth, bool torn = false);

  /// The `nth` Sync from now (1-based) fails with kIoError.
  void ScheduleSyncFailure(uint64_t nth);

  /// The `nth` NewWritableFile from now (1-based) fails with kIoError —
  /// e.g. the segment creation inside a WAL rollover.
  void ScheduleNewFileFailure(uint64_t nth);

  /// Crash sweep control: the `nth` mutating filesystem operation from
  /// now (append, sync, dir-sync, create, rename, remove, truncate,
  /// mkdir) fails with kIoError *and* freezes the filesystem, so the
  /// process cannot touch the disk image past the crash point. Use
  /// `mutating_ops()` from a fault-free dry run to size the sweep.
  void ScheduleCrashAtOp(uint64_t nth);

  /// Mutating operations attempted through this env so far (the unit
  /// ScheduleCrashAtOp counts in).
  uint64_t mutating_ops() const {
    MutexLock lock(&mu_);
    return mutating_op_count_;
  }

  /// Clears scheduled failures and re-activates the filesystem (does not
  /// reset counters or tracked file state).
  void ClearFaults();

  /// Simulates a power cut: truncates every file written through this
  /// env back to the bytes covered by its last successful Sync. Close
  /// writers (or abandon them) before calling.
  Status DropUnsyncedFileData();

  // --- Observability ----------------------------------------------------

  uint64_t append_count() const {
    MutexLock lock(&mu_);
    return append_count_;
  }
  uint64_t sync_count() const {
    MutexLock lock(&mu_);
    return sync_count_;
  }
  uint64_t dir_sync_count() const {
    MutexLock lock(&mu_);
    return dir_sync_count_;
  }

  /// Bytes currently guaranteed durable for `path` (0 if untracked).
  uint64_t synced_bytes(const std::string& path) const;

  /// Bytes appended so far for `path` (0 if untracked).
  uint64_t appended_bytes(const std::string& path) const;

 private:
  friend class FaultInjectionWritableFile;

  struct FileState {
    uint64_t appended = 0;
    uint64_t synced = 0;
  };

  /// Bumps the mutating-op counter and applies a scheduled crash: when
  /// the counter hits the crash point the filesystem freezes and the
  /// current operation fails. Returns OK otherwise.
  Status BeginMutatingOpLocked(const std::string& what) PROVDB_REQUIRES(mu_);

  Env* base_;
  /// The coarse lock: held across each operation's bookkeeping *and* its
  /// forwarded base-env call, so the tracked state (appended/synced
  /// bytes) never disagrees with the real disk image mid-operation.
  mutable Mutex mu_;
  bool active_ PROVDB_GUARDED_BY(mu_) = true;
  std::map<std::string, FileState> files_ PROVDB_GUARDED_BY(mu_);
  uint64_t append_count_ PROVDB_GUARDED_BY(mu_) = 0;
  uint64_t sync_count_ PROVDB_GUARDED_BY(mu_) = 0;
  uint64_t dir_sync_count_ PROVDB_GUARDED_BY(mu_) = 0;
  uint64_t mutating_op_count_ PROVDB_GUARDED_BY(mu_) = 0;
  // 0 = no failure scheduled
  uint64_t fail_append_in_ PROVDB_GUARDED_BY(mu_) = 0;
  bool torn_append_ PROVDB_GUARDED_BY(mu_) = false;
  uint64_t fail_sync_in_ PROVDB_GUARDED_BY(mu_) = 0;
  uint64_t fail_new_file_in_ PROVDB_GUARDED_BY(mu_) = 0;
  uint64_t crash_at_op_ PROVDB_GUARDED_BY(mu_) = 0;  // 0 = no crash
};

}  // namespace provdb::storage

#endif  // PROVDB_STORAGE_FAULT_INJECTION_ENV_H_
