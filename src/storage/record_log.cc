#include "storage/record_log.h"

#include "common/crc32.h"
#include "common/varint.h"
#include "storage/env.h"

namespace provdb::storage {

Result<uint64_t> RecordLog::Append(ByteView payload) {
  if (payload.size() > 0xFFFFFFFFu) {
    return Status::InvalidArgument(
        "record payload of " + std::to_string(payload.size()) +
        " bytes exceeds the 32-bit frame length limit");
  }
  uint64_t index = offsets_.size();
  offsets_.push_back(arena_.size());
  lengths_.push_back(static_cast<uint32_t>(payload.size()));
  AppendBytes(&arena_, payload);
  return index;
}

Result<ByteView> RecordLog::Get(uint64_t index) const {
  if (index >= offsets_.size()) {
    return Status::OutOfRange("record index " + std::to_string(index) +
                              " out of range");
  }
  return ByteView(arena_.data() + offsets_[index], lengths_[index]);
}

uint64_t RecordLog::total_frame_bytes() const {
  uint64_t total = 0;
  for (uint32_t len : lengths_) {
    Bytes varint;
    AppendVarint64(&varint, len);
    total += varint.size() + len + 4;  // length + payload + crc32
  }
  return total;
}

Status RecordLog::ForEach(
    const std::function<Status(uint64_t, ByteView)>& fn) const {
  for (uint64_t i = 0; i < offsets_.size(); ++i) {
    PROVDB_RETURN_IF_ERROR(
        fn(i, ByteView(arena_.data() + offsets_[i], lengths_[i])));
  }
  return Status::OK();
}

Status RecordLog::SaveToFile(const std::string& path) const {
  return SaveToFile(Env::Default(), path);
}

Status RecordLog::SaveToFile(Env* env, const std::string& path) const {
  Bytes framed;
  framed.reserve(total_frame_bytes());
  for (uint64_t i = 0; i < offsets_.size(); ++i) {
    ByteView payload(arena_.data() + offsets_[i], lengths_[i]);
    AppendVarint64(&framed, payload.size());
    AppendBytes(&framed, payload);
    AppendFixed32(&framed, Crc32(payload));
  }

  std::string tmp_path = path + ".tmp";
  auto file = env->NewWritableFile(tmp_path);
  if (!file.ok()) {
    return file.status();
  }
  Status write_status = (*file)->Append(framed);
  if (write_status.ok()) {
    // The atomic-rename contract is vacuous unless the temp file's
    // *contents* are on stable storage before the rename publishes it:
    // otherwise a power cut can leave the new name pointing at torn or
    // empty data.
    write_status = (*file)->Sync();
  }
  Status close_status = (*file)->Close();
  if (write_status.ok()) {
    write_status = close_status;
  }
  if (!write_status.ok()) {
    (void)env->RemoveFile(tmp_path);  // best-effort cleanup
    return write_status;
  }
  // Env::RenameFile fsyncs the parent directory, making the new name
  // itself durable.
  Status rename_status = env->RenameFile(tmp_path, path);
  if (!rename_status.ok()) {
    (void)env->RemoveFile(tmp_path);
    return rename_status;
  }
  return Status::OK();
}

Result<RecordLog> RecordLog::LoadFromFile(const std::string& path) {
  return LoadFromFile(Env::Default(), path);
}

Result<RecordLog> RecordLog::LoadFromFile(Env* env, const std::string& path) {
  // Env::ReadFileToBytes surfaces mid-read failures as kIoError; a
  // failing disk must never yield a short buffer that parses as a valid,
  // shorter log.
  PROVDB_ASSIGN_OR_RETURN(Bytes content, env->ReadFileToBytes(path));

  RecordLog log;
  VarintReader reader(content);
  while (!reader.done()) {
    PROVDB_ASSIGN_OR_RETURN(uint64_t len, reader.ReadVarint64());
    PROVDB_ASSIGN_OR_RETURN(Bytes payload, reader.ReadRaw(len));
    PROVDB_ASSIGN_OR_RETURN(Bytes crc_raw, reader.ReadRaw(4));
    uint32_t stored_crc = ReadFixed32(crc_raw, 0);
    if (stored_crc != Crc32(payload)) {
      return Status::Corruption("CRC mismatch in record " +
                                std::to_string(log.record_count()) + " of " +
                                path);
    }
    PROVDB_RETURN_IF_ERROR(log.Append(payload).status());
  }
  return log;
}

}  // namespace provdb::storage
