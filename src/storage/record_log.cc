#include "storage/record_log.h"

#include <cstdio>

#include "common/crc32.h"
#include "common/varint.h"

namespace provdb::storage {

uint64_t RecordLog::Append(ByteView payload) {
  uint64_t index = offsets_.size();
  offsets_.push_back(arena_.size());
  lengths_.push_back(static_cast<uint32_t>(payload.size()));
  AppendBytes(&arena_, payload);
  return index;
}

Result<ByteView> RecordLog::Get(uint64_t index) const {
  if (index >= offsets_.size()) {
    return Status::OutOfRange("record index " + std::to_string(index) +
                              " out of range");
  }
  return ByteView(arena_.data() + offsets_[index], lengths_[index]);
}

uint64_t RecordLog::total_frame_bytes() const {
  uint64_t total = 0;
  for (uint32_t len : lengths_) {
    Bytes varint;
    AppendVarint64(&varint, len);
    total += varint.size() + len + 4;  // length + payload + crc32
  }
  return total;
}

Status RecordLog::ForEach(
    const std::function<Status(uint64_t, ByteView)>& fn) const {
  for (uint64_t i = 0; i < offsets_.size(); ++i) {
    PROVDB_RETURN_IF_ERROR(
        fn(i, ByteView(arena_.data() + offsets_[i], lengths_[i])));
  }
  return Status::OK();
}

Status RecordLog::SaveToFile(const std::string& path) const {
  Bytes framed;
  framed.reserve(total_frame_bytes());
  for (uint64_t i = 0; i < offsets_.size(); ++i) {
    ByteView payload(arena_.data() + offsets_[i], lengths_[i]);
    AppendVarint64(&framed, payload.size());
    AppendBytes(&framed, payload);
    AppendFixed32(&framed, Crc32(payload));
  }

  std::string tmp_path = path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open " + tmp_path + " for writing");
  }
  size_t written = framed.empty()
                       ? 0
                       : std::fwrite(framed.data(), 1, framed.size(), f);
  bool flush_ok = std::fclose(f) == 0;
  if (written != framed.size() || !flush_ok) {
    std::remove(tmp_path.c_str());
    return Status::IoError("short write to " + tmp_path);
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IoError("cannot rename " + tmp_path + " to " + path);
  }
  return Status::OK();
}

Result<RecordLog> RecordLog::LoadFromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path + " for reading");
  }
  Bytes content;
  uint8_t buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.insert(content.end(), buf, buf + n);
  }
  std::fclose(f);

  RecordLog log;
  VarintReader reader(content);
  while (!reader.done()) {
    PROVDB_ASSIGN_OR_RETURN(uint64_t len, reader.ReadVarint64());
    PROVDB_ASSIGN_OR_RETURN(Bytes payload, reader.ReadRaw(len));
    PROVDB_ASSIGN_OR_RETURN(Bytes crc_raw, reader.ReadRaw(4));
    uint32_t stored_crc = ReadFixed32(crc_raw, 0);
    if (stored_crc != Crc32(payload)) {
      return Status::Corruption("CRC mismatch in record " +
                                std::to_string(log.record_count()) + " of " +
                                path);
    }
    log.Append(payload);
  }
  return log;
}

}  // namespace provdb::storage
