#include "storage/value.h"

#include <cstring>

#include "common/hex.h"
#include "common/varint.h"

namespace provdb::storage {

void Value::CanonicalEncode(Bytes* out) const {
  AppendByte(out, static_cast<uint8_t>(type()));
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      AppendVarintSigned64(out, AsInt());
      break;
    case ValueType::kDouble: {
      // Bit-exact encoding; NaN payloads and signed zeros round-trip.
      uint64_t bits;
      double d = AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      AppendFixed64(out, bits);
      break;
    }
    case ValueType::kString:
      AppendLengthPrefixed(out, ByteView(AsString()));
      break;
    case ValueType::kBytes:
      AppendLengthPrefixed(out, AsBlob());
      break;
  }
}

Result<Value> Value::CanonicalDecode(ByteView data, size_t* consumed) {
  if (data.empty()) {
    return Status::Corruption("empty value encoding");
  }
  VarintReader reader(data.subview(1));
  Value out;
  switch (static_cast<ValueType>(data[0])) {
    case ValueType::kNull:
      out = Value::Null();
      break;
    case ValueType::kInt: {
      PROVDB_ASSIGN_OR_RETURN(int64_t v, reader.ReadVarintSigned64());
      out = Value::Int(v);
      break;
    }
    case ValueType::kDouble: {
      PROVDB_ASSIGN_OR_RETURN(Bytes raw, reader.ReadRaw(8));
      uint64_t bits = ReadFixed64(raw, 0);
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      out = Value::Double(d);
      break;
    }
    case ValueType::kString: {
      PROVDB_ASSIGN_OR_RETURN(Bytes raw, reader.ReadLengthPrefixed());
      out = Value::String(ByteView(raw).ToString());
      break;
    }
    case ValueType::kBytes: {
      PROVDB_ASSIGN_OR_RETURN(Bytes raw, reader.ReadLengthPrefixed());
      out = Value::Blob(std::move(raw));
      break;
    }
    default:
      return Status::Corruption("unknown value type tag");
  }
  if (consumed != nullptr) {
    *consumed = 1 + reader.position();
  }
  return out;
}

size_t Value::ApproximateSize() const {
  switch (type()) {
    case ValueType::kNull:
      return 1;
    case ValueType::kInt:
      return 8;
    case ValueType::kDouble:
      return 8;
    case ValueType::kString:
      return AsString().size();
    case ValueType::kBytes:
      return AsBlob().size();
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble:
      return std::to_string(AsDouble());
    case ValueType::kString:
      return "\"" + AsString() + "\"";
    case ValueType::kBytes:
      return "0x" + HexEncode(AsBlob());
  }
  return "?";
}

}  // namespace provdb::storage
