#include "storage/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace provdb::storage {
namespace {

std::string ErrnoMessage(const std::string& context) {
  return context + ": " + std::strerror(errno);
}

/// Buffered append-only file over a POSIX descriptor.
class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {
    buffer_.reserve(kBufferSize);
  }

  ~PosixWritableFile() override {
    if (fd_ >= 0) {
      // Best-effort: abandoning a writer without Close loses buffered
      // data, exactly like a process crash would.
      ::close(fd_);
    }
  }

  Status Append(ByteView data) override {
    if (fd_ < 0) {
      return Status::FailedPrecondition("append to closed file " + path_);
    }
    if (buffer_.size() + data.size() <= kBufferSize) {
      AppendBytes(&buffer_, data);
      return Status::OK();
    }
    PROVDB_RETURN_IF_ERROR(Flush());
    if (data.size() <= kBufferSize) {
      AppendBytes(&buffer_, data);
      return Status::OK();
    }
    return WriteRaw(data);
  }

  Status Flush() override {
    if (fd_ < 0) {
      return Status::FailedPrecondition("flush of closed file " + path_);
    }
    if (buffer_.empty()) {
      return Status::OK();
    }
    Status s = WriteRaw(buffer_);
    buffer_.clear();
    return s;
  }

  Status Sync() override {
    PROVDB_RETURN_IF_ERROR(Flush());
    if (::fsync(fd_) != 0) {
      return Status::IoError(ErrnoMessage("fsync " + path_));
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) {
      return Status::OK();
    }
    Status s = Flush();
    if (::close(fd_) != 0 && s.ok()) {
      s = Status::IoError(ErrnoMessage("close " + path_));
    }
    fd_ = -1;
    return s;
  }

 private:
  static constexpr size_t kBufferSize = 1 << 16;

  Status WriteRaw(ByteView data) {
    const uint8_t* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return Status::IoError(ErrnoMessage("write " + path_));
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  std::string path_;
  int fd_;
  Bytes buffer_;
};

class PosixEnv final : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644);
    if (fd < 0) {
      return Status::IoError(ErrnoMessage("open " + path + " for writing"));
    }
    return std::unique_ptr<WritableFile>(
        new PosixWritableFile(path, fd));
  }

  Result<Bytes> ReadFileToBytes(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      return Status::IoError(ErrnoMessage("open " + path + " for reading"));
    }
    Bytes content;
    uint8_t buf[1 << 16];
    for (;;) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        // The satellite bug this interface exists to kill: a mid-read
        // failure must never masquerade as a short-but-valid file.
        Status s = Status::IoError(ErrnoMessage("read " + path));
        ::close(fd);
        return s;
      }
      if (n == 0) {
        break;
      }
      content.insert(content.end(), buf, buf + n);
    }
    ::close(fd);
    return content;
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IoError(ErrnoMessage("rename " + from + " -> " + to));
    }
    // The rename is only durable once the directory entry is on disk.
    return SyncDir(ParentDir(to));
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return Status::IoError(ErrnoMessage("unlink " + path));
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IoError(ErrnoMessage("mkdir " + path));
    }
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) {
      return Status::IoError(ErrnoMessage("opendir " + dir));
    }
    std::vector<std::string> names;
    struct dirent* entry;
    while ((entry = ::readdir(d)) != nullptr) {
      std::string name = entry->d_name;
      if (name != "." && name != "..") {
        names.push_back(std::move(name));
      }
    }
    ::closedir(d);
    std::sort(names.begin(), names.end());
    return names;
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return Status::IoError(ErrnoMessage("stat " + path));
    }
    return static_cast<uint64_t>(st.st_size);
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    // Open + ftruncate + fsync (not ::truncate): WAL tail repair relies
    // on the shortened length being durable before recovery reports
    // success.
    int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
    if (fd < 0) {
      return Status::IoError(ErrnoMessage("open " + path + " for truncate"));
    }
    Status s;
    if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
      s = Status::IoError(ErrnoMessage("ftruncate " + path));
    } else if (::fsync(fd) != 0) {
      s = Status::IoError(ErrnoMessage("fsync " + path));
    }
    ::close(fd);
    return s;
  }

  Status SyncDir(const std::string& dir) override {
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) {
      return Status::IoError(ErrnoMessage("open dir " + dir));
    }
    Status s;
    if (::fsync(fd) != 0) {
      s = Status::IoError(ErrnoMessage("fsync dir " + dir));
    }
    ::close(fd);
    return s;
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return ".";
  }
  if (slash == 0) {
    return "/";
  }
  return path.substr(0, slash);
}

}  // namespace provdb::storage
