#include "storage/tree_store.h"

#include <algorithm>

namespace provdb::storage {

void TreeStore::AttachChild(TreeNode* parent, ObjectId child) {
  auto& kids = parent->children;
  kids.insert(std::lower_bound(kids.begin(), kids.end(), child), child);
}

Result<ObjectId> TreeStore::Insert(const Value& value, ObjectId parent) {
  TreeNode* parent_node = nullptr;
  if (parent != kInvalidObjectId) {
    auto it = nodes_.find(parent);
    if (it == nodes_.end()) {
      return Status::NotFound("parent object " + std::to_string(parent) +
                              " does not exist");
    }
    parent_node = &it->second;
  }
  ObjectId id = AllocateId();
  TreeNode node;
  node.id = id;
  node.value = value;
  node.parent = parent;
  nodes_.emplace(id, std::move(node));
  if (parent_node != nullptr) {
    AttachChild(parent_node, id);
  }
  return id;
}

Status TreeStore::Delete(ObjectId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return Status::NotFound("object " + std::to_string(id) +
                            " does not exist");
  }
  if (!it->second.is_leaf()) {
    return Status::FailedPrecondition(
        "only leaf objects can be deleted by the primitive Delete");
  }
  ObjectId parent = it->second.parent;
  if (parent != kInvalidObjectId) {
    auto& kids = nodes_.at(parent).children;
    kids.erase(std::remove(kids.begin(), kids.end(), id), kids.end());
  }
  nodes_.erase(it);
  return Status::OK();
}

Status TreeStore::Update(ObjectId id, Value value) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return Status::NotFound("object " + std::to_string(id) +
                            " does not exist");
  }
  it->second.value = std::move(value);
  return Status::OK();
}

ObjectId TreeStore::CopySubtree(ObjectId source, ObjectId new_parent) {
  const TreeNode& src = nodes_.at(source);
  ObjectId id = AllocateId();
  TreeNode copy;
  copy.id = id;
  copy.value = src.value;
  copy.parent = new_parent;
  // Children of the source, captured before inserting (nodes_ may rehash).
  std::vector<ObjectId> src_children = src.children;
  nodes_.emplace(id, std::move(copy));
  for (ObjectId child : src_children) {
    ObjectId child_copy = CopySubtree(child, id);
    AttachChild(&nodes_.at(id), child_copy);
  }
  return id;
}

Result<ObjectId> TreeStore::Aggregate(const std::vector<ObjectId>& input_roots,
                                      const Value& root_value) {
  if (input_roots.empty()) {
    return Status::InvalidArgument("aggregate requires at least one input");
  }
  for (ObjectId id : input_roots) {
    if (!Contains(id)) {
      return Status::NotFound("aggregate input " + std::to_string(id) +
                              " does not exist");
    }
  }
  ObjectId root = AllocateId();
  TreeNode node;
  node.id = root;
  node.value = root_value;
  nodes_.emplace(root, std::move(node));
  for (ObjectId input : input_roots) {
    ObjectId copy = CopySubtree(input, root);
    AttachChild(&nodes_.at(root), copy);
  }
  return root;
}

Result<const TreeNode*> TreeStore::GetNode(ObjectId id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return Status::NotFound("object " + std::to_string(id) +
                            " does not exist");
  }
  return &it->second;
}

Result<size_t> TreeStore::SubtreeSize(ObjectId id) const {
  size_t count = 0;
  PROVDB_RETURN_IF_ERROR(VisitSubtree(id, [&](const TreeNode&, size_t) {
    ++count;
    return Status::OK();
  }));
  return count;
}

std::vector<ObjectId> TreeStore::SortedRoots() const {
  std::vector<ObjectId> roots;
  for (const auto& [id, node] : nodes_) {
    if (node.is_root()) {
      roots.push_back(id);
    }
  }
  std::sort(roots.begin(), roots.end());
  return roots;
}

Status TreeStore::VisitSubtree(
    ObjectId root,
    const std::function<Status(const TreeNode&, size_t depth)>& fn) const {
  auto it = nodes_.find(root);
  if (it == nodes_.end()) {
    return Status::NotFound("object " + std::to_string(root) +
                            " does not exist");
  }
  // Explicit stack to survive deep trees; children pushed in reverse so
  // the smallest id pops first (pre-order, ascending).
  struct Frame {
    ObjectId id;
    size_t depth;
  };
  std::vector<Frame> stack{{root, 0}};
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    const TreeNode& node = nodes_.at(frame.id);
    PROVDB_RETURN_IF_ERROR(fn(node, frame.depth));
    for (size_t i = node.children.size(); i-- > 0;) {
      stack.push_back({node.children[i], frame.depth + 1});
    }
  }
  return Status::OK();
}

std::vector<ObjectId> TreeStore::AncestorsOf(ObjectId id) const {
  std::vector<ObjectId> out;
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return out;
  }
  ObjectId cur = it->second.parent;
  while (cur != kInvalidObjectId) {
    out.push_back(cur);
    cur = nodes_.at(cur).parent;
  }
  return out;
}

Result<ObjectId> TreeStore::RootOf(ObjectId id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return Status::NotFound("object " + std::to_string(id) +
                            " does not exist");
  }
  ObjectId cur = id;
  while (nodes_.at(cur).parent != kInvalidObjectId) {
    cur = nodes_.at(cur).parent;
  }
  return cur;
}

Result<size_t> TreeStore::DepthOf(ObjectId id) const {
  if (!Contains(id)) {
    return Status::NotFound("object " + std::to_string(id) +
                            " does not exist");
  }
  return AncestorsOf(id).size();
}

}  // namespace provdb::storage
