#ifndef PROVDB_STORAGE_RECORD_LOG_H_
#define PROVDB_STORAGE_RECORD_LOG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "storage/env.h"

namespace provdb::storage {

/// Append-only log of opaque payloads — the persistence substrate of the
/// provenance database. The paper stores provenance records in a second
/// (MySQL) database; this embedded log plays that role.
///
/// In memory, payloads live contiguously in an arena. On disk, each record
/// is framed as `varint(length) || payload || crc32` so corruption —
/// including the record-tampering attacks of §2.2 — is detected at load
/// time even before cryptographic verification runs.
class RecordLog {
 public:
  RecordLog() = default;

  RecordLog(const RecordLog&) = delete;
  RecordLog& operator=(const RecordLog&) = delete;
  RecordLog(RecordLog&&) = default;
  RecordLog& operator=(RecordLog&&) = default;

  /// Appends a payload; returns its stable record index (0-based).
  /// Payloads larger than the 32-bit frame length limit are rejected with
  /// kInvalidArgument (they used to be silently truncated to a corrupt
  /// frame length).
  Result<uint64_t> Append(ByteView payload);

  /// Number of records in the log.
  uint64_t record_count() const { return offsets_.size(); }

  /// Payload of record `index`. The view is invalidated by Append.
  Result<ByteView> Get(uint64_t index) const;

  /// Sum of payload sizes (the paper's space-overhead metric counts the
  /// stored record tuples; framing is excluded).
  uint64_t total_payload_bytes() const { return arena_.size(); }

  /// Bytes the log would occupy on disk, framing included.
  uint64_t total_frame_bytes() const;

  /// Calls `fn(index, payload)` for every record, in append order.
  Status ForEach(
      const std::function<Status(uint64_t, ByteView)>& fn) const;

  /// Writes the framed log to `path` atomically *and durably*: the temp
  /// file is fsync'd before the rename and the parent directory after, so
  /// a power cut leaves either the old file or the complete new one —
  /// never an empty or torn file. `env` defaults to Env::Default().
  Status SaveToFile(const std::string& path) const;
  Status SaveToFile(Env* env, const std::string& path) const;

  /// Reads a framed log, validating every CRC. A mid-read I/O failure is
  /// kIoError — never silently treated as end-of-file.
  static Result<RecordLog> LoadFromFile(const std::string& path);
  static Result<RecordLog> LoadFromFile(Env* env, const std::string& path);

 private:
  Bytes arena_;
  std::vector<uint64_t> offsets_;  // start of each payload in arena_
  std::vector<uint32_t> lengths_;
};

}  // namespace provdb::storage

#endif  // PROVDB_STORAGE_RECORD_LOG_H_
