#ifndef PROVDB_STORAGE_TREE_STORE_H_
#define PROVDB_STORAGE_TREE_STORE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/value.h"

namespace provdb::storage {

/// Uniquely identifies a data object (the `A`, `B`, ... of the paper).
/// Ids are never reused, so a deleted object's id stays retired.
using ObjectId = uint64_t;

/// Sentinel: "no object" / "no parent".
constexpr ObjectId kInvalidObjectId = 0;

/// One atomic object of the extended data model (§4.1): a triple
/// (id, value, {child_ids}). A compound object is the subtree rooted at a
/// node.
struct TreeNode {
  ObjectId id = kInvalidObjectId;
  Value value;
  ObjectId parent = kInvalidObjectId;
  /// Kept sorted ascending — this is the paper's "pre-defined total order
  /// over atomic objects" that makes compound hashes deterministic (§4.3).
  std::vector<ObjectId> children;

  bool is_leaf() const { return children.empty(); }
  bool is_root() const { return parent == kInvalidObjectId; }
};

/// The back-end database D, modeled abstractly as a forest (§4.1). In the
/// relational reading, depth-4 trees represent database → tables → rows →
/// cells. The store supports the paper's four primitive operations:
/// Insert (leaf), Delete (leaf), Update, and Aggregate.
class TreeStore {
 public:
  TreeStore() = default;

  // Movable but not copyable (copies of a database are never implicit).
  TreeStore(const TreeStore&) = delete;
  TreeStore& operator=(const TreeStore&) = delete;
  TreeStore(TreeStore&&) = default;
  TreeStore& operator=(TreeStore&&) = default;

  /// Inserts a new object with `value` under `parent`
  /// (kInvalidObjectId = new root). Returns the fresh object id.
  Result<ObjectId> Insert(const Value& value,
                          ObjectId parent = kInvalidObjectId);

  /// Removes a leaf object. Fails with kFailedPrecondition on interior
  /// nodes (the primitive model only deletes leaves, §4.1).
  Status Delete(ObjectId id);

  /// Replaces the value of an existing object.
  Status Update(ObjectId id, Value value);

  /// Aggregate({A_1..A_n}, B): deep-copies the input subtrees (fresh ids)
  /// as children of a new root object with value `root_value`. Inputs are
  /// left untouched, matching Figure 2 where A keeps evolving after
  /// C = Aggregate(A, B). Returns the new root's id.
  Result<ObjectId> Aggregate(const std::vector<ObjectId>& input_roots,
                             const Value& root_value);

  /// Node lookup; the pointer is invalidated by subsequent mutations.
  Result<const TreeNode*> GetNode(ObjectId id) const;

  bool Contains(ObjectId id) const { return nodes_.count(id) > 0; }

  /// Total live objects in the forest.
  size_t size() const { return nodes_.size(); }

  /// Number of objects in subtree(id), including the root.
  Result<size_t> SubtreeSize(ObjectId id) const;

  /// Root object ids, ascending.
  std::vector<ObjectId> SortedRoots() const;

  /// Pre-order traversal of subtree(root); children visited in ascending
  /// id order (the global total order). The callback may not mutate the
  /// store. Stops early if the callback returns a non-OK status.
  Status VisitSubtree(
      ObjectId root,
      const std::function<Status(const TreeNode&, size_t depth)>& fn) const;

  /// Ancestors of `id`, nearest first (parent, grandparent, ..., root).
  /// Empty for roots and unknown ids.
  std::vector<ObjectId> AncestorsOf(ObjectId id) const;

  /// The root of the tree containing `id` (`id` itself if it is a root).
  Result<ObjectId> RootOf(ObjectId id) const;

  /// Depth of `id` below its root (root = 0).
  Result<size_t> DepthOf(ObjectId id) const;

 private:
  ObjectId AllocateId() { return next_id_++; }
  ObjectId CopySubtree(ObjectId source, ObjectId new_parent);
  void AttachChild(TreeNode* parent, ObjectId child);

  std::unordered_map<ObjectId, TreeNode> nodes_;
  ObjectId next_id_ = 1;  // 0 is kInvalidObjectId
};

}  // namespace provdb::storage

#endif  // PROVDB_STORAGE_TREE_STORE_H_
