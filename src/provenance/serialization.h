#ifndef PROVDB_PROVENANCE_SERIALIZATION_H_
#define PROVDB_PROVENANCE_SERIALIZATION_H_

#include "common/bytes.h"
#include "common/result.h"
#include "provenance/record.h"

namespace provdb::provenance {

/// Binary wire encoding of a provenance record. Used for persistence in
/// the RecordLog and for shipping recipient bundles. The format is
/// versioned with a leading tag byte so it can evolve.
Bytes EncodeRecord(const ProvenanceRecord& record);

/// Parses a record written by EncodeRecord.
Result<ProvenanceRecord> DecodeRecord(ByteView data);

/// WAL entry framing. A ProvenanceStore-attached WAL carries more than
/// bare records: prunes must reach the log too, or crash recovery would
/// replay the appends and resurrect pruned history. Every WAL payload is
/// therefore one entry — a leading type byte, then a type-specific body.
/// (Snapshot RecordLog files keep carrying bare EncodeRecord payloads.)
enum class WalEntryType : uint8_t {
  kRecord = 1,  // body: EncodeRecord bytes
  kPrune = 2,   // body: varint object id
};

/// Encodes a record append: [kRecord] || EncodeRecord(record).
Bytes EncodeWalRecordEntry(const ProvenanceRecord& record);

/// Encodes a prune marker: [kPrune] || varint(id).
Bytes EncodeWalPruneEntry(storage::ObjectId id);

}  // namespace provdb::provenance

#endif  // PROVDB_PROVENANCE_SERIALIZATION_H_
