#ifndef PROVDB_PROVENANCE_SERIALIZATION_H_
#define PROVDB_PROVENANCE_SERIALIZATION_H_

#include "common/bytes.h"
#include "common/result.h"
#include "provenance/record.h"

namespace provdb::provenance {

/// Binary wire encoding of a provenance record. Used for persistence in
/// the RecordLog and for shipping recipient bundles. The format is
/// versioned with a leading tag byte so it can evolve.
Bytes EncodeRecord(const ProvenanceRecord& record);

/// Parses a record written by EncodeRecord.
Result<ProvenanceRecord> DecodeRecord(ByteView data);

}  // namespace provdb::provenance

#endif  // PROVDB_PROVENANCE_SERIALIZATION_H_
