#ifndef PROVDB_PROVENANCE_SNAPSHOT_H_
#define PROVDB_PROVENANCE_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/epoch.h"
#include "common/hashmix.h"
#include "common/result.h"
#include "provenance/chain_index.h"
#include "provenance/record.h"
#include "storage/tree_store.h"

namespace provdb::provenance {

/// One shard's immutable state at a publish point (a group-commit batch
/// boundary). The writer fills a preallocated spare and publishes it with
/// a single atomic store — the ingest hot path's snapshot cost is that
/// store plus retiring the previous version, nothing else. Readers reach
/// versions only through an epoch pin (StoreSnapshot), which is what
/// keeps `root` traversable while the writer keeps path-copying.
struct StoreVersion : EpochRetired {
  const ChainIndex::Node* root = nullptr;
  uint64_t record_count = 0;
  uint64_t live_records = 0;
  /// Publish sequence number: the how-many-th batch boundary this is for
  /// the shard. Strictly increasing; the differential harness uses it to
  /// name the durable batch prefix a snapshot corresponds to.
  uint64_t tick = 0;
};

/// Read-only view of one shard at one version. Plain value type: copying
/// copies three pointers-worth of state, no ownership. A view is only
/// valid while the version it came from is protected — either by the
/// snapshot's epoch pin or by caller-guaranteed store quiescence
/// (ProvenanceStore::CurrentView).
class StoreReadView {
 public:
  StoreReadView() = default;
  /// From a published version; a null version is an empty view (shard
  /// that has never published — zero durable batches).
  explicit StoreReadView(const StoreVersion* version)
      : root_(version != nullptr ? version->root : nullptr),
        record_count_(version != nullptr ? version->record_count : 0),
        live_records_(version != nullptr ? version->live_records : 0),
        tick_(version != nullptr ? version->tick : 0) {}
  StoreReadView(const ChainIndex::Node* root, uint64_t record_count,
                uint64_t live_records, uint64_t tick)
      : root_(root),
        record_count_(record_count),
        live_records_(live_records),
        tick_(tick) {}

  uint64_t record_count() const { return record_count_; }
  uint64_t live_record_count() const { return live_records_; }
  uint64_t tick() const { return tick_; }

  /// Newest chain cell for `id`; null when the object has no live chain
  /// in this view (unknown, or pruned — tombstone).
  const ChainNode* head_for(storage::ObjectId id) const;

  /// The object's chain in seqID order (empty when none).
  std::vector<const ProvenanceRecord*> ChainRecords(storage::ObjectId id) const;

  /// Every live chain, appended into `out` keyed by object id — the
  /// exact shape VerifyRecordChains consumes. Within an object the chain
  /// is in seqID order.
  void AppendChains(
      std::map<storage::ObjectId, std::vector<const ProvenanceRecord*>>* out)
      const;

  /// Visits each live chain head (tombstones skipped).
  template <typename Fn>
  void ForEachChain(Fn&& fn) const {
    ChainIndex::ForEachLeaf(root_, [&](const ChainIndex::Leaf& leaf) {
      if (leaf.head != nullptr) {
        fn(leaf.key, leaf.head);
      }
    });
  }

 private:
  const ChainIndex::Node* root_ = nullptr;
  uint64_t record_count_ = 0;
  uint64_t live_records_ = 0;
  uint64_t tick_ = 0;
};

/// A consistent cross-shard cut of a (possibly moving) sharded store,
/// pinned in the store's epoch domain for its whole lifetime. Each
/// shard's view is that shard's latest *published* version — always an
/// exact prefix of its durable, fsynced batches, never a half-applied
/// batch — so verify/audit/query over a snapshot read stable immutable
/// state while ingest keeps committing.
///
/// Shards are cut independently (each at its own batch boundary), which
/// is the strongest guarantee a sharded store offers: §3.2 chains are
/// per-object and objects never span shards, so every chain in a
/// snapshot is internally consistent; only cross-shard aggregate-input
/// lookups can see "input chain not yet caught up", exactly as a
/// quiesced store stopped at the same per-shard prefixes would.
///
/// A snapshot borrows the store: it must not outlive the
/// ShardedProvenanceStore (or IngestPipeline) it was opened on. Holding
/// one blocks no writer — it only defers reclamation of superseded
/// chain/index nodes.
class StoreSnapshot {
 public:
  StoreSnapshot() = default;
  StoreSnapshot(EpochDomain::Guard guard, std::vector<StoreReadView> views)
      : guard_(std::move(guard)), views_(std::move(views)) {}
  StoreSnapshot(StoreSnapshot&&) = default;
  StoreSnapshot& operator=(StoreSnapshot&&) = default;

  size_t num_shards() const { return views_.size(); }
  const StoreReadView& shard_view(size_t index) const { return views_[index]; }
  const StoreReadView& view_for(storage::ObjectId id) const {
    return views_[ShardOf(id)];
  }
  size_t ShardOf(storage::ObjectId id) const {
    return static_cast<size_t>(Mix64(id) % views_.size());
  }

  /// The epoch this snapshot is pinned at (0 for an empty snapshot).
  uint64_t epoch() const { return guard_.epoch(); }

  uint64_t record_count() const;
  uint64_t live_record_count() const;

  /// Every live chain across all shards, keyed (hence ordered) by
  /// object id — same shape and order as ShardedProvenanceStore::
  /// AllChains, so reports built from either are byte-identical on a
  /// quiescent store.
  std::map<storage::ObjectId, std::vector<const ProvenanceRecord*>>
  AllChains() const;

  /// The live chain of one object (empty when unknown or pruned).
  std::vector<const ProvenanceRecord*> ChainRecords(storage::ObjectId id)
      const;

  /// Snapshot counterpart of ProvenanceStore::ExtractProvenance: the
  /// subject's chain plus, transitively, every aggregation input's chain
  /// up to the matching state. Records come back in ascending
  /// (object id, seqID) order — the sharded deployment's canonical
  /// linear extension of the seqID partial order (the order MergedStore
  /// materializes).
  Result<std::vector<ProvenanceRecord>> ExtractProvenance(
      storage::ObjectId subject) const;

  /// Snapshot counterpart of ProvenanceStore::ExtractProvenanceDeep.
  Result<std::vector<ProvenanceRecord>> ExtractProvenanceDeep(
      storage::ObjectId subject,
      const std::vector<storage::ObjectId>& descendants) const;

 private:
  std::vector<ProvenanceRecord> CollectClosure(
      std::vector<std::pair<storage::ObjectId, size_t>> seeds) const;

  EpochDomain::Guard guard_;
  std::vector<StoreReadView> views_;
};

}  // namespace provdb::provenance

#endif  // PROVDB_PROVENANCE_SNAPSHOT_H_
