#ifndef PROVDB_PROVENANCE_PROVENANCE_STORE_H_
#define PROVDB_PROVENANCE_PROVENANCE_STORE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/epoch.h"
#include "common/result.h"
#include "provenance/chain_index.h"
#include "provenance/record.h"
#include "provenance/snapshot.h"
#include "storage/record_log.h"
#include "storage/wal.h"

namespace provdb::crypto {
class SignatureVerifier;
}  // namespace provdb::crypto

namespace provdb::provenance {

/// The provenance database (§5.1): an append-only collection of provenance
/// records with a per-output-object index. A provenance *object* —
/// Definition 1's partially-ordered record set for one data object — is
/// materialized on demand by ExtractProvenance, which follows aggregation
/// edges transitively (the non-linear DAG of Figure 2).
///
/// Concurrency model (DESIGN.md §16): the store is single-writer. Records
/// live in chunked stable storage (a record, once added, never moves) and
/// the per-object chain index is a copy-on-write radix trie whose
/// replaced nodes are retired through an attached epoch domain. The
/// writer makes its state visible to concurrent readers only at explicit
/// PublishSnapshot() points (the ingest pipeline calls one per
/// group-commit fsync), so a published version is always an exact prefix
/// of durable batches. Readers never touch writer state: they pin the
/// epoch domain and traverse a published version (see StoreSnapshot).
/// Without an attached domain the store behaves exactly as before:
/// mutations and reads must be externally serialized (quiescence), and
/// superseded index nodes are freed immediately.
class ProvenanceStore {
 public:
  ProvenanceStore() = default;
  ~ProvenanceStore();

  ProvenanceStore(const ProvenanceStore&) = delete;
  ProvenanceStore& operator=(const ProvenanceStore&) = delete;
  ProvenanceStore(ProvenanceStore&& other) noexcept;
  ProvenanceStore& operator=(ProvenanceStore&& other) noexcept;

  /// Appends a record; returns its stable index. Records for the same
  /// output object must arrive in increasing seqID order (enforced).
  Result<uint64_t> AddRecord(ProvenanceRecord record);

  uint64_t record_count() const { return record_count_; }

  const ProvenanceRecord& record(uint64_t index) const {
    return chunks_[index / kChunkRecords]->slots[index % kChunkRecords];
  }

  /// Mutable access — exists solely so the attack simulator and tests can
  /// model a tampering adversary. Honest code never calls this.
  ProvenanceRecord* mutable_record(uint64_t index) {
    return &chunks_[index / kChunkRecords]->slots[index % kChunkRecords];
  }

  /// Indices of the records whose *output* object is `id`, in seqID order
  /// (the object's chain, §3).
  std::vector<uint64_t> ChainOf(storage::ObjectId id) const;

  /// Latest (greatest-seqID) record for `id`, or kNotFound.
  Result<const ProvenanceRecord*> LatestFor(storage::ObjectId id) const;

  /// Materializes the provenance object for `subject`: its full chain plus,
  /// transitively, the chains (up to the matching state) of every
  /// aggregation input. Records are returned in index order, which is a
  /// linear extension of the seqID partial order.
  Result<std::vector<ProvenanceRecord>> ExtractProvenance(
      storage::ObjectId subject) const;

  /// Fine-grained variant: everything ExtractProvenance returns, plus the
  /// full chains of `descendants` (every object inside the shipped
  /// compound object, so recipients see cell-level history — e.g. exactly
  /// who amended which cell — not just the subject's inherited records).
  Result<std::vector<ProvenanceRecord>> ExtractProvenanceDeep(
      storage::ObjectId subject,
      const std::vector<storage::ObjectId>& descendants) const;

  /// Space occupied under the paper's experiment schema (§5.1):
  /// <SeqID(int), Participant(int), Oid(int), Checksum(binary(128))>,
  /// i.e. 12 bytes + the actual checksum width per record. This is the
  /// metric behind Figures 9 and 11.
  uint64_t PaperSchemaBytes() const { return paper_schema_bytes_; }

  /// Total bytes of the stored checksums alone.
  uint64_t ChecksumBytes() const { return checksum_bytes_; }

  /// Size of the full serialized records (hashes, snapshots, framing
  /// excluded) — what RecordLog persistence would store.
  uint64_t SerializedBytes() const;

  /// Persists all live records into `log` (EncodeRecord payloads).
  /// Compatibility shim for snapshot-style persistence; incremental
  /// durability goes through AttachWal / RecoverFromWal.
  Status SaveToLog(storage::RecordLog* log) const;

  /// Rebuilds a store from a record log.
  static Result<ProvenanceStore> LoadFromLog(const storage::RecordLog& log);

  /// Write-ahead logging: after this, every AddRecord (and PruneObject)
  /// first appends a typed WAL entry — record append or prune marker,
  /// see serialization.h — to `wal` and fails (without mutating the
  /// store) if the WAL append fails. With `checkpoint_existing`, the
  /// store's current live records are appended to the WAL first, so a
  /// WAL attached to a non-empty store still replays to the full store.
  /// Recovery flows (store already rebuilt *from* this WAL) pass false.
  /// `wal` is borrowed, not owned, and must outlive the store or be
  /// detached.
  Status AttachWal(storage::WalWriter* wal, bool checkpoint_existing = true);

  void DetachWal() { wal_ = nullptr; }

  storage::WalWriter* attached_wal() const { return wal_; }

  /// Crash recovery: replays the WAL directory at `dir` into a fresh
  /// store — record entries re-add, prune markers re-prune, so pruned
  /// history stays pruned after recovery. Torn-tail salvage details
  /// (dropped byte counts) are returned through `report` when non-null;
  /// corruption before the tail fails with kCorruption (see DESIGN.md §8
  /// for the decision rule).
  ///
  /// Checkpoint-bounded recovery (DESIGN.md §13): when `dir` holds a
  /// sealed checkpoint, the store is rebuilt from the newest one and only
  /// the WAL suffix past its horizon is replayed — O(delta), not
  /// O(history). The checkpoint's seal must verify under
  /// `checkpoint_verifier`; a checkpoint with no verifier supplied is
  /// kFailedPrecondition (recovering *around* an unverifiable snapshot
  /// would silently drop its history), and a tampered one is refused
  /// exactly like a tampered record.
  static Result<ProvenanceStore> RecoverFromWal(
      storage::Env* env, const std::string& dir,
      storage::WalRecoveryReport* report = nullptr,
      const crypto::SignatureVerifier* checkpoint_verifier = nullptr);

  /// Footnote-3 optimization: after an object is deleted, its provenance
  /// object is no longer relevant and its records may be dropped. Refuses
  /// (kFailedPrecondition) when the object is an aggregation input of any
  /// record — that history *is* still referenced by downstream provenance
  /// and pruning it would break verification of the aggregate (this is
  /// also why local chaining makes pruning safe at all, §3.2). With a
  /// WAL attached, a prune marker is logged write-ahead so the prune
  /// survives crash recovery. Returns the number of records pruned.
  Result<size_t> PruneObject(storage::ObjectId id);

  /// True when `index` refers to a pruned (tombstoned) record.
  bool is_pruned(uint64_t index) const { return pruned_[index]; }

  /// Records currently live (record_count() minus pruned ones).
  uint64_t live_record_count() const { return live_count_; }

  // --- Snapshot machinery (DESIGN.md §16) ---

  /// Attaches the epoch domain that retires superseded index nodes and
  /// store versions. Set by the owning ShardedProvenanceStore; a store
  /// without a domain frees superseded nodes immediately and never
  /// publishes (single-threaded contract).
  void AttachEpochDomain(EpochDomain* domain) { domain_ = domain; }
  EpochDomain* epoch_domain() const { return domain_; }

  /// Publishes the current state as an immutable StoreVersion and starts
  /// a new epoch. The hot-path cost is POD fills, one atomic store, one
  /// intrusive retire, and one epoch advance — zero allocation (the
  /// version skeleton is preallocated by the mutation that dirtied the
  /// store; pinned by the alloc test). Writer-side: must be externally
  /// serialized with mutations. No-op when nothing changed or no domain
  /// is attached. The ingest pipeline calls this once per group-commit
  /// fsync, so published versions are always durable-batch prefixes.
  void PublishSnapshot();

  /// Last published version (null before the first publish). Readers
  /// must hold an epoch pin to traverse it — see StoreSnapshot.
  const StoreVersion* published_version() const {
    return published_.load(std::memory_order_acquire);
  }

  /// View of the *writer-current* state (which may be ahead of the last
  /// published version). Only valid under the single-writer contract:
  /// the caller must guarantee no concurrent mutation for the view's
  /// lifetime — the quiescent entry points (StoreAuditor::Audit over a
  /// bare store, SaveToLog, ...) run on exactly that contract.
  StoreReadView CurrentView() const {
    return StoreReadView(chain_root_, record_count_, live_count_,
                         publish_tick_);
  }

 private:
  /// Records per storage chunk. Chunked storage gives every record a
  /// stable address for its whole lifetime (chain cells and snapshot
  /// readers hold plain pointers), unlike a reallocating vector.
  static constexpr uint64_t kChunkRecords = 256;
  struct Chunk {
    std::array<ProvenanceRecord, kChunkRecords> slots;
  };

  /// Shared DAG-closure walk behind both Extract variants: includes each
  /// seed object's chain up to the given position, following aggregation
  /// edges transitively.
  std::vector<ProvenanceRecord> CollectClosure(
      std::vector<std::pair<storage::ObjectId, size_t>> seeds) const;

  /// Appends into chunked storage; returns the record's stable address.
  ProvenanceRecord* ArenaAppend(ProvenanceRecord record);

  /// Marks writer state as ahead of the published version and
  /// preallocates the next publish's version skeleton (so the publish
  /// hook itself never allocates).
  void MarkDirty();

  /// Retires through the domain, or frees immediately without one.
  void RetireOrDelete(EpochRetired* node);

  /// Frees everything this store owns (current trie + chain cells,
  /// published/spare versions). Retired nodes belong to the domain.
  void DestroyOwned();

  std::vector<std::unique_ptr<Chunk>> chunks_;
  uint64_t record_count_ = 0;
  std::vector<bool> pruned_;
  /// Copy-on-write chain index over the records (current writer root).
  const ChainIndex::Node* chain_root_ = nullptr;
  /// Objects consumed by some aggregation (prune-protected).
  std::unordered_map<storage::ObjectId, uint64_t> aggregation_input_refs_;
  uint64_t live_count_ = 0;
  uint64_t paper_schema_bytes_ = 0;
  uint64_t checksum_bytes_ = 0;
  storage::WalWriter* wal_ = nullptr;  // borrowed; see AttachWal

  EpochDomain* domain_ = nullptr;  // borrowed; see AttachEpochDomain
  std::atomic<StoreVersion*> published_{nullptr};
  StoreVersion* spare_ = nullptr;  // preallocated next version
  bool dirty_ = false;             // writer state ahead of published_
  uint64_t publish_tick_ = 0;
};

}  // namespace provdb::provenance

#endif  // PROVDB_PROVENANCE_PROVENANCE_STORE_H_
