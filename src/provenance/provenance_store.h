#ifndef PROVDB_PROVENANCE_PROVENANCE_STORE_H_
#define PROVDB_PROVENANCE_PROVENANCE_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "provenance/record.h"
#include "storage/record_log.h"
#include "storage/wal.h"

namespace provdb::crypto {
class SignatureVerifier;
}  // namespace provdb::crypto

namespace provdb::provenance {

/// The provenance database (§5.1): an append-only collection of provenance
/// records with a per-output-object index. A provenance *object* —
/// Definition 1's partially-ordered record set for one data object — is
/// materialized on demand by ExtractProvenance, which follows aggregation
/// edges transitively (the non-linear DAG of Figure 2).
class ProvenanceStore {
 public:
  ProvenanceStore() = default;

  ProvenanceStore(const ProvenanceStore&) = delete;
  ProvenanceStore& operator=(const ProvenanceStore&) = delete;
  ProvenanceStore(ProvenanceStore&&) = default;
  ProvenanceStore& operator=(ProvenanceStore&&) = default;

  /// Appends a record; returns its stable index. Records for the same
  /// output object must arrive in increasing seqID order (enforced).
  Result<uint64_t> AddRecord(ProvenanceRecord record);

  uint64_t record_count() const { return records_.size(); }

  const ProvenanceRecord& record(uint64_t index) const {
    return records_[index];
  }

  /// Mutable access — exists solely so the attack simulator and tests can
  /// model a tampering adversary. Honest code never calls this.
  ProvenanceRecord* mutable_record(uint64_t index) {
    return &records_[index];
  }

  /// Indices of the records whose *output* object is `id`, in seqID order
  /// (the object's chain, §3).
  std::vector<uint64_t> ChainOf(storage::ObjectId id) const;

  /// Latest (greatest-seqID) record for `id`, or kNotFound.
  Result<const ProvenanceRecord*> LatestFor(storage::ObjectId id) const;

  /// Materializes the provenance object for `subject`: its full chain plus,
  /// transitively, the chains (up to the matching state) of every
  /// aggregation input. Records are returned in index order, which is a
  /// linear extension of the seqID partial order.
  Result<std::vector<ProvenanceRecord>> ExtractProvenance(
      storage::ObjectId subject) const;

  /// Fine-grained variant: everything ExtractProvenance returns, plus the
  /// full chains of `descendants` (every object inside the shipped
  /// compound object, so recipients see cell-level history — e.g. exactly
  /// who amended which cell — not just the subject's inherited records).
  Result<std::vector<ProvenanceRecord>> ExtractProvenanceDeep(
      storage::ObjectId subject,
      const std::vector<storage::ObjectId>& descendants) const;

  /// Space occupied under the paper's experiment schema (§5.1):
  /// <SeqID(int), Participant(int), Oid(int), Checksum(binary(128))>,
  /// i.e. 12 bytes + the actual checksum width per record. This is the
  /// metric behind Figures 9 and 11.
  uint64_t PaperSchemaBytes() const { return paper_schema_bytes_; }

  /// Total bytes of the stored checksums alone.
  uint64_t ChecksumBytes() const { return checksum_bytes_; }

  /// Size of the full serialized records (hashes, snapshots, framing
  /// excluded) — what RecordLog persistence would store.
  uint64_t SerializedBytes() const;

  /// Persists all live records into `log` (EncodeRecord payloads).
  /// Compatibility shim for snapshot-style persistence; incremental
  /// durability goes through AttachWal / RecoverFromWal.
  Status SaveToLog(storage::RecordLog* log) const;

  /// Rebuilds a store from a record log.
  static Result<ProvenanceStore> LoadFromLog(const storage::RecordLog& log);

  /// Write-ahead logging: after this, every AddRecord (and PruneObject)
  /// first appends a typed WAL entry — record append or prune marker,
  /// see serialization.h — to `wal` and fails (without mutating the
  /// store) if the WAL append fails. With `checkpoint_existing`, the
  /// store's current live records are appended to the WAL first, so a
  /// WAL attached to a non-empty store still replays to the full store.
  /// Recovery flows (store already rebuilt *from* this WAL) pass false.
  /// `wal` is borrowed, not owned, and must outlive the store or be
  /// detached.
  Status AttachWal(storage::WalWriter* wal, bool checkpoint_existing = true);

  void DetachWal() { wal_ = nullptr; }

  storage::WalWriter* attached_wal() const { return wal_; }

  /// Crash recovery: replays the WAL directory at `dir` into a fresh
  /// store — record entries re-add, prune markers re-prune, so pruned
  /// history stays pruned after recovery. Torn-tail salvage details
  /// (dropped byte counts) are returned through `report` when non-null;
  /// corruption before the tail fails with kCorruption (see DESIGN.md §8
  /// for the decision rule).
  ///
  /// Checkpoint-bounded recovery (DESIGN.md §13): when `dir` holds a
  /// sealed checkpoint, the store is rebuilt from the newest one and only
  /// the WAL suffix past its horizon is replayed — O(delta), not
  /// O(history). The checkpoint's seal must verify under
  /// `checkpoint_verifier`; a checkpoint with no verifier supplied is
  /// kFailedPrecondition (recovering *around* an unverifiable snapshot
  /// would silently drop its history), and a tampered one is refused
  /// exactly like a tampered record.
  static Result<ProvenanceStore> RecoverFromWal(
      storage::Env* env, const std::string& dir,
      storage::WalRecoveryReport* report = nullptr,
      const crypto::SignatureVerifier* checkpoint_verifier = nullptr);

  /// Footnote-3 optimization: after an object is deleted, its provenance
  /// object is no longer relevant and its records may be dropped. Refuses
  /// (kFailedPrecondition) when the object is an aggregation input of any
  /// record — that history *is* still referenced by downstream provenance
  /// and pruning it would break verification of the aggregate (this is
  /// also why local chaining makes pruning safe at all, §3.2). With a
  /// WAL attached, a prune marker is logged write-ahead so the prune
  /// survives crash recovery. Returns the number of records pruned.
  Result<size_t> PruneObject(storage::ObjectId id);

  /// True when `index` refers to a pruned (tombstoned) record.
  bool is_pruned(uint64_t index) const { return pruned_[index]; }

  /// Records currently live (record_count() minus pruned ones).
  uint64_t live_record_count() const { return live_count_; }

 private:
  /// Shared DAG-closure walk behind both Extract variants: includes each
  /// seed object's chain up to the given position, following aggregation
  /// edges transitively.
  std::vector<ProvenanceRecord> CollectClosure(
      std::vector<std::pair<storage::ObjectId, size_t>> seeds) const;

  std::vector<ProvenanceRecord> records_;
  std::vector<bool> pruned_;
  std::unordered_map<storage::ObjectId, std::vector<uint64_t>> by_output_;
  /// Objects consumed by some aggregation (prune-protected).
  std::unordered_map<storage::ObjectId, uint64_t> aggregation_input_refs_;
  uint64_t live_count_ = 0;
  uint64_t paper_schema_bytes_ = 0;
  uint64_t checksum_bytes_ = 0;
  storage::WalWriter* wal_ = nullptr;  // borrowed; see AttachWal
};

}  // namespace provdb::provenance

#endif  // PROVDB_PROVENANCE_PROVENANCE_STORE_H_
