#include "provenance/json_export.h"

#include <cstdio>

#include "common/hex.h"

namespace provdb::provenance {

std::string JsonEscape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 8);
  for (unsigned char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

std::string ValueToJson(const storage::Value& value) {
  switch (value.type()) {
    case storage::ValueType::kNull:
      return "null";
    case storage::ValueType::kInt:
      return std::to_string(value.AsInt());
    case storage::ValueType::kDouble: {
      // %.17g round-trips doubles; JSON has no Inf/NaN, so emit strings.
      double d = value.AsDouble();
      if (d != d) return "\"NaN\"";
      if (d > 1.7976931348623157e308) return "\"Infinity\"";
      if (d < -1.7976931348623157e308) return "\"-Infinity\"";
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      return buf;
    }
    case storage::ValueType::kString:
      return "\"" + JsonEscape(value.AsString()) + "\"";
    case storage::ValueType::kBytes:
      return "\"0x" + HexEncode(value.AsBlob()) + "\"";
  }
  return "null";
}

std::string ObjectStateToJson(const ObjectState& state) {
  return "{\"object\":" + std::to_string(state.object_id) + ",\"hash\":\"" +
         state.state_hash.ToHex() + "\"}";
}

}  // namespace

std::string RecordToJson(const ProvenanceRecord& record) {
  std::string out = "{";
  out += "\"seq\":" + std::to_string(record.seq_id);
  out += ",\"participant\":" + std::to_string(record.participant);
  out += ",\"op\":\"" + std::string(OperationTypeName(record.op)) + "\"";
  out += ",\"inherited\":" + std::string(record.inherited ? "true" : "false");
  out += ",\"inputs\":[";
  for (size_t i = 0; i < record.inputs.size(); ++i) {
    if (i > 0) out += ",";
    out += ObjectStateToJson(record.inputs[i]);
  }
  out += "],\"output\":" + ObjectStateToJson(record.output);
  out += ",\"checksum\":\"" + HexEncode(record.checksum) + "\"";
  if (record.has_output_snapshot) {
    out += ",\"value\":" + ValueToJson(record.output_snapshot);
  }
  out += "}";
  return out;
}

std::string BundleToJson(const RecipientBundle& bundle) {
  std::string out = "{";
  out += "\"subject\":" + std::to_string(bundle.subject);
  out += ",\"data\":[";
  const auto& nodes = bundle.data.nodes();
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"id\":" + std::to_string(nodes[i].id);
    out += ",\"parent\":" + std::to_string(nodes[i].parent);
    out += ",\"value\":" + ValueToJson(nodes[i].value) + "}";
  }
  out += "],\"records\":[";
  for (size_t i = 0; i < bundle.records.size(); ++i) {
    if (i > 0) out += ",";
    out += RecordToJson(bundle.records[i]);
  }
  out += "]}";
  return out;
}

std::string ReportToJson(const VerificationReport& report) {
  std::string out = "{";
  out += "\"ok\":" + std::string(report.ok() ? "true" : "false");
  out += ",\"records_checked\":" + std::to_string(report.records_checked);
  out +=
      ",\"signatures_verified\":" + std::to_string(report.signatures_verified);
  out += ",\"issues\":[";
  for (size_t i = 0; i < report.issues.size(); ++i) {
    if (i > 0) out += ",";
    const VerificationIssue& issue = report.issues[i];
    out += "{\"kind\":\"" + std::string(IssueKindName(issue.kind)) + "\"";
    out += ",\"object\":" + std::to_string(issue.object);
    out += ",\"seq\":" + std::to_string(issue.seq_id);
    out += ",\"message\":\"" + JsonEscape(issue.message) + "\"}";
  }
  out += "]}";
  return out;
}

}  // namespace provdb::provenance
