#include "provenance/query.h"

namespace provdb::provenance {

std::string LineageSummary::ToString() const {
  std::string out = "lineage: " + std::to_string(record_count) +
                    " records (" + std::to_string(insert_count) + " ins, " +
                    std::to_string(update_count) + " upd, " +
                    std::to_string(aggregate_count) + " agg; " +
                    std::to_string(inherited_count) + " inherited), " +
                    std::to_string(participants.size()) + " participant(s), " +
                    std::to_string(contributing_objects.size()) +
                    " contributing object(s), max seq " +
                    std::to_string(max_seq_id);
  return out;
}

namespace {

LineageSummary SummarizeRecords(const std::vector<ProvenanceRecord>& records,
                                storage::ObjectId subject) {
  LineageSummary summary;
  for (const ProvenanceRecord& rec : records) {
    ++summary.record_count;
    summary.participants.insert(rec.participant);
    if (rec.output.object_id != subject) {
      summary.contributing_objects.insert(rec.output.object_id);
    }
    switch (rec.op) {
      case OperationType::kInsert:
        ++summary.insert_count;
        break;
      case OperationType::kUpdate:
        ++summary.update_count;
        break;
      case OperationType::kAggregate:
        ++summary.aggregate_count;
        break;
    }
    if (rec.inherited) {
      ++summary.inherited_count;
    }
    if (rec.seq_id > summary.max_seq_id) {
      summary.max_seq_id = rec.seq_id;
    }
  }
  return summary;
}

}  // namespace

Result<LineageSummary> SummarizeLineage(const ProvenanceStore& store,
                                        storage::ObjectId subject) {
  PROVDB_ASSIGN_OR_RETURN(std::vector<ProvenanceRecord> records,
                          store.ExtractProvenance(subject));
  return SummarizeRecords(records, subject);
}

Result<LineageSummary> SummarizeLineage(const StoreSnapshot& snapshot,
                                        storage::ObjectId subject) {
  PROVDB_ASSIGN_OR_RETURN(std::vector<ProvenanceRecord> records,
                          snapshot.ExtractProvenance(subject));
  return SummarizeRecords(records, subject);
}

std::vector<uint64_t> RecordsByParticipant(const ProvenanceStore& store,
                                           crypto::ParticipantId participant) {
  std::vector<uint64_t> out;
  for (uint64_t i = 0; i < store.record_count(); ++i) {
    if (!store.is_pruned(i) && store.record(i).participant == participant) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<const ProvenanceRecord*> RecordsByParticipant(
    const StoreSnapshot& snapshot, crypto::ParticipantId participant) {
  std::vector<const ProvenanceRecord*> out;
  // AllChains iterates objects in ascending id order and chains in seqID
  // order, giving the canonical cross-shard record order.
  for (const auto& [object, chain] : snapshot.AllChains()) {
    (void)object;
    for (const ProvenanceRecord* rec : chain) {
      if (rec->participant == participant) {
        out.push_back(rec);
      }
    }
  }
  return out;
}

Result<bool> ParticipantTouched(const ProvenanceStore& store,
                                storage::ObjectId subject,
                                crypto::ParticipantId participant) {
  PROVDB_ASSIGN_OR_RETURN(std::vector<ProvenanceRecord> records,
                          store.ExtractProvenance(subject));
  for (const ProvenanceRecord& rec : records) {
    if (rec.participant == participant) {
      return true;
    }
  }
  return false;
}

Result<bool> ParticipantTouched(const StoreSnapshot& snapshot,
                                storage::ObjectId subject,
                                crypto::ParticipantId participant) {
  PROVDB_ASSIGN_OR_RETURN(std::vector<ProvenanceRecord> records,
                          snapshot.ExtractProvenance(subject));
  for (const ProvenanceRecord& rec : records) {
    if (rec.participant == participant) {
      return true;
    }
  }
  return false;
}

Result<std::vector<ProvenanceRecord>> HistorySlice(
    const ProvenanceStore& store, storage::ObjectId subject, SeqId from_seq,
    SeqId to_seq) {
  if (from_seq > to_seq) {
    return Status::InvalidArgument("from_seq must be <= to_seq");
  }
  std::vector<uint64_t> chain = store.ChainOf(subject);
  if (chain.empty()) {
    return Status::NotFound("no provenance records for object " +
                            std::to_string(subject));
  }
  std::vector<ProvenanceRecord> out;
  for (uint64_t index : chain) {
    const ProvenanceRecord& rec = store.record(index);
    if (rec.seq_id >= from_seq && rec.seq_id <= to_seq) {
      out.push_back(rec);
    }
  }
  return out;
}

Result<std::vector<ProvenanceRecord>> HistorySlice(
    const StoreSnapshot& snapshot, storage::ObjectId subject, SeqId from_seq,
    SeqId to_seq) {
  if (from_seq > to_seq) {
    return Status::InvalidArgument("from_seq must be <= to_seq");
  }
  std::vector<const ProvenanceRecord*> chain = snapshot.ChainRecords(subject);
  if (chain.empty()) {
    return Status::NotFound("no provenance records for object " +
                            std::to_string(subject));
  }
  std::vector<ProvenanceRecord> out;
  for (const ProvenanceRecord* rec : chain) {
    if (rec->seq_id >= from_seq && rec->seq_id <= to_seq) {
      out.push_back(*rec);
    }
  }
  return out;
}

Result<std::vector<ObjectState>> DirectSources(const ProvenanceStore& store,
                                               storage::ObjectId subject) {
  std::vector<uint64_t> chain = store.ChainOf(subject);
  if (chain.empty()) {
    return Status::NotFound("no provenance records for object " +
                            std::to_string(subject));
  }
  const ProvenanceRecord& first = store.record(chain.front());
  if (first.op != OperationType::kAggregate) {
    return std::vector<ObjectState>{};
  }
  return first.inputs;
}

Result<std::vector<ObjectState>> DirectSources(const StoreSnapshot& snapshot,
                                               storage::ObjectId subject) {
  std::vector<const ProvenanceRecord*> chain = snapshot.ChainRecords(subject);
  if (chain.empty()) {
    return Status::NotFound("no provenance records for object " +
                            std::to_string(subject));
  }
  const ProvenanceRecord& first = *chain.front();
  if (first.op != OperationType::kAggregate) {
    return std::vector<ObjectState>{};
  }
  return first.inputs;
}

}  // namespace provdb::provenance
