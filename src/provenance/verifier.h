#ifndef PROVDB_PROVENANCE_VERIFIER_H_
#define PROVDB_PROVENANCE_VERIFIER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "crypto/pki.h"
#include "observability/metrics.h"
#include "provenance/bundle.h"
#include "provenance/checksum.h"
#include "provenance/record.h"
#include "provenance/snapshot.h"

namespace provdb::provenance {

/// Classification of verification failures, each annotated with the §2.2
/// requirement whose violation it witnesses.
enum class IssueKind {
  /// The shipped data does not hash to the latest record's output — the
  /// object was modified without provenance (R4) or the provenance was
  /// re-attributed to different data (R5).
  kDataHashMismatch,
  /// The snapshot root is not the bundle subject (re-attribution, R5).
  kSubjectMismatch,
  /// The bundle has no records for the subject at all.
  kMissingRecords,
  /// An update's input state does not match the previous record's output —
  /// a record was removed (R2/R7), inserted (R3/R6), or its values
  /// modified (R1).
  kChainLinkBroken,
  /// seqIDs of a chain are not the required consecutive sequence.
  kSeqViolation,
  /// A record's checksum fails signature verification (R1, R8).
  kBadSignature,
  /// The signing participant has no CA-endorsed certificate (R8).
  kUnknownParticipant,
  /// A record is structurally invalid (e.g. update without input).
  kMalformedRecord,
  /// An aggregation input cannot be resolved to any record in the bundle,
  /// yet a previous checksum was signed for it.
  kAggregateInputUnresolved,
  /// The data snapshot itself is structurally corrupt.
  kSnapshotMalformed,
};

std::string_view IssueKindName(IssueKind kind);

/// One verification failure.
struct VerificationIssue {
  IssueKind kind;
  storage::ObjectId object = storage::kInvalidObjectId;
  SeqId seq_id = 0;
  std::string message;

  std::string ToString() const;
};

/// Outcome of verifying a recipient bundle.
struct VerificationReport {
  std::vector<VerificationIssue> issues;
  uint64_t records_checked = 0;
  uint64_t signatures_verified = 0;

  bool ok() const { return issues.empty(); }
  bool HasIssue(IssueKind kind) const;
  std::string ToString() const;
};

/// Core of check 2 (§3): given per-object record chains (each sorted by
/// seqID), recompute every checksum payload and verify every signature,
/// appending issues and counters to `report`. Shared by the recipient-side
/// ProvenanceVerifier and the in-place StoreAuditor.
///
/// Chains are per-object and self-contained (§3.2), so when `pool` is
/// non-null (and has more than one worker) each chain is verified as an
/// independent pool task. Per-chain results are merged back in ascending
/// object-id order — and issues within a chain stay in seqID order — so
/// the report is byte-identical to the sequential one.
void VerifyRecordChains(
    const crypto::ParticipantRegistry& registry, const ChecksumEngine& engine,
    const std::map<storage::ObjectId, std::vector<const ProvenanceRecord*>>&
        chains,
    VerificationReport* report, ThreadPool* pool = nullptr);

/// The data recipient's verification procedure (§3):
///   1. the data object matches the output of its most recent provenance
///      record, and
///   2. every stored checksum re-verifies from the record's input/output
///      states and the previous checksum(s) under the acting participant's
///      certified public key.
/// Together these detect every attack in the threat model (R1–R8), as
/// argued in §3.1.
class ProvenanceVerifier {
 public:
  /// `registry` resolves participant ids to CA-endorsed public keys and
  /// must outlive the verifier. With `parallelism.num_threads > 1` the
  /// verifier owns a ThreadPool and fans per-object chain verification out
  /// across it; the report is identical to the sequential one.
  ProvenanceVerifier(const crypto::ParticipantRegistry* registry,
                     crypto::HashAlgorithm alg = crypto::HashAlgorithm::kSha1,
                     ParallelismConfig parallelism = {});

  /// Runs all checks over `bundle` and reports every issue found (the
  /// verifier does not stop at the first failure). [[nodiscard]]: an
  /// unread report is an undetected tamper.
  ///
  /// Bundles are value snapshots, so Verify itself never races ingest;
  /// but *building* a bundle from a live store requires quiescence — to
  /// verify a moving deployment, pin a StoreSnapshot and use VerifyStore
  /// (DESIGN.md §16).
  [[nodiscard]] VerificationReport Verify(const RecipientBundle& bundle) const;

  /// Check 2 over every chain in a pinned snapshot: recompute every
  /// checksum payload and verify every signature. Safe while ingest is
  /// live — the snapshot is an immutable batch-boundary cut, so this
  /// takes no store lock and blocks no writer. (Check 1 needs the
  /// back-end tree; that is StoreAuditor's job.)
  [[nodiscard]] VerificationReport VerifyStore(
      const StoreSnapshot& snapshot) const;

 private:
  const crypto::ParticipantRegistry* registry_;
  ChecksumEngine engine_;
  std::unique_ptr<ThreadPool> pool_;  // null when sequential

  // Whole-run observability (docs/OBSERVABILITY.md); per-chain counters
  // live inside VerifyRecordChains so the auditor shares them.
  observability::Counter* runs_;
  observability::Histogram* run_latency_;
};

}  // namespace provdb::provenance

#endif  // PROVDB_PROVENANCE_VERIFIER_H_
